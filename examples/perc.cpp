//===- examples/perc.cpp - The command-line driver ------------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `perc`: compile and run a surface-language program from a file.
///
///   perc FILE.perc [options] [ARGS...]
///
///   --config=NAME     perceus (default) | perceus-noopt |
///                     perceus-borrow | scoped-rc | gc
///   --engine=NAME     cek (default) | vm — the tree-walking machine or
///                     the bytecode interpreter (observably identical)
///   --no-peephole     run the VM on the raw compiler output, skipping
///                     the superinstruction/RC-elision rewrite (on by
///                     default; the CEK machine ignores this)
///   --entry=NAME      entry function (default: main)
///   --stats           print heap/machine statistics after the run
///   --stats-json=FILE run, then dump heap stats, run stats, and the
///                     per-site RC event table as JSON to FILE
///   --pass-stats      print static dup/drop/reuse instruction counts
///                     after each pipeline pass (plus the bytecode
///                     peephole report with --engine=vm), then exit
///   --dump=FN         print FN after the pipeline instead of running
///   --stages=FN       print FN at every Figure 1 pipeline stage
///   --fuel=N          trap after N machine steps (out-of-fuel)
///   --deadline-ms=N   trap when the run exceeds N ms of wall clock
///   --max-depth=N     trap at N live non-tail calls (stack-overflow)
///   --max-heap=N      trap when live heap would exceed N bytes
///   --max-cells=N     trap when live heap would exceed N cells
///   --alloc-budget=N  trap after N allocations (heap lifetime)
///   --fail-alloc=N    fault injection: fail the Nth allocation
///   --workers=N       run N machine instances concurrently, each with a
///                     private heap (the parallel engine, src/parallel)
///   --shared-input=FN build FN's result once, mark it thread-shared
///                     (tshare), and pass it as the entry's last argument
///   --shared-arg=N    integer argument for the shared-input builder
///                     (repeatable)
///   ARGS              integer arguments for the entry function
///
/// Service batch mode (the long-lived session engine, src/service,
/// dispatched through the hash-routed shards of src/net):
///
///   perc FILE.perc --serve [--requests=FILE] [--shards=N]
///        [--serve-workers=N] [--queue-cap=N] [--max-retained=BYTES]
///        [--tenant=NAME] [--max-cache-bytes=BYTES] [--chaos-seed=N]
///
/// compiles the program once and executes one request per input line
/// (stdin by default) against pooled worker heaps, printing one
/// perceus-wire-v1 JSON document per request. A request line is
///
///   ENTRY [ARGS...] [--fuel=N] [--deadline-ms=N] [--fail-alloc=N]
///         [--max-depth=N] [--engine=cek|vm] [--config=NAME]
///         [--tenant=NAME]
///
/// or a single flat JSON object ({"entry":"main","args":[3],...} — see
/// parseServiceRequestJson). `#` starts a comment; blank lines are
/// skipped. A malformed line (unknown option, bad number, invalid JSON)
/// produces a structured "bad-request" JSON response line — never a
/// silent skip, never an abort. Rejections and traps are structured
/// results in the JSON, not process failures: the exit code is 0
/// whenever serving itself worked. `--tenant=` sets the default tenant
/// for every request; `--max-cache-bytes=` bounds each shard's artifact
/// cache (LRU eviction); `--chaos-seed=` enables seeded fault injection
/// at every service boundary (ChaosConfig::defaults).
///
/// Socket mode (the event-loop front end, src/net):
///
///   perc FILE.perc --listen=HOST:PORT [--shards=N] [--serve-workers=N]
///        [--queue-cap=N] [--max-retained=BYTES] [--tenant=NAME]
///        [--max-cache-bytes=BYTES] [--chaos-seed=N]
///        [--max-frame-bytes=N] [--idle-timeout-ms=N] [--max-conns=N]
///        [--max-requests=N]
///
/// serves the same perceus-wire-v1 documents over TCP, framed either as
/// newline-delimited JSON or as 4-byte big-endian length-prefixed JSON
/// (auto-detected per connection; see net/Wire.h). Requests route to N
/// service shards by (tenant, source) hash; every response carries its
/// shard id. `--shards=0` / `--serve-workers=0` size from the hardware
/// (clamped). Port 0 binds an ephemeral port; the chosen port is
/// printed in the `[listen]` banner on stderr. SIGINT/SIGTERM (or
/// `--max-requests=N` responses) shut down cleanly with aggregated and
/// per-shard stats on stderr and exit 0.
///
//===----------------------------------------------------------------------===//

#include "eval/Runner.h"
#include "eval/StatsJson.h"
#include "ir/Printer.h"
#include "lang/Resolver.h"
#include "net/Poller.h"
#include "net/Server.h"
#include "net/ShardedService.h"
#include "parallel/ParallelRunner.h"
#include "perceus/Pipeline.h"
#include "service/Service.h"
#include "service/ServiceJson.h"
#include "support/FaultInjector.h"
#include "support/JsonWriter.h"
#include "support/Telemetry.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <poll.h>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

using namespace perceus;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: perc FILE.perc [--config=NAME] [--engine=cek|vm] "
               "[--no-peephole] [--entry=NAME] [--stats] [--stats-json=FILE] "
               "[--pass-stats]\n"
               "            [--dump=FN] [--stages=FN] "
               "[--fuel=N] [--deadline-ms=N] [--max-depth=N] [--max-heap=N]\n"
               "            [--max-cells=N] [--alloc-budget=N] "
               "[--fail-alloc=N] [--workers=N]\n"
               "            [--shared-input=FN] [--shared-arg=N] "
               "[ARGS...]\n"
               "       perc FILE.perc --serve [--requests=FILE] "
               "[--shards=N] [--serve-workers=N] [--queue-cap=N]\n"
               "            [--max-retained=BYTES] [--tenant=NAME] "
               "[--max-cache-bytes=BYTES] [--chaos-seed=N]\n"
               "       perc FILE.perc --listen=HOST:PORT [--shards=N] "
               "[--serve-workers=N] [--queue-cap=N]\n"
               "            [--max-retained=BYTES] [--tenant=NAME] "
               "[--max-cache-bytes=BYTES] [--chaos-seed=N]\n"
               "            [--max-frame-bytes=N] [--idle-timeout-ms=N] "
               "[--max-conns=N] [--max-requests=N]\n");
}

bool parsePassConfig(const char *Name, PassConfig &Out) {
  if (!std::strcmp(Name, "perceus"))
    Out = PassConfig::perceusFull();
  else if (!std::strcmp(Name, "perceus-noopt"))
    Out = PassConfig::perceusNoOpt();
  else if (!std::strcmp(Name, "perceus-borrow"))
    Out = PassConfig::perceusBorrow();
  else if (!std::strcmp(Name, "scoped-rc"))
    Out = PassConfig::scoped();
  else if (!std::strcmp(Name, "gc"))
    Out = PassConfig::gc();
  else
    return false;
  return true;
}

bool parseCount(const char *A, const char *Flag, uint64_t &Out) {
  size_t Len = std::strlen(Flag);
  if (std::strncmp(A, Flag, Len) != 0)
    return false;
  char *End = nullptr;
  unsigned long long V = std::strtoull(A + Len, &End, 10);
  if (End == A + Len || *End != '\0') {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", Flag,
                 A + Len);
    std::exit(1);
  }
  Out = V;
  return true;
}

void printPassStats(const std::vector<PassStat> &Stats) {
  std::printf("%-34s %6s %6s %6s %7s %8s %7s %7s %6s %7s\n", "pass", "dup",
              "drop", "free", "decref", "is-uniq", "drop-ru", "con@ru",
              "token", "nodes");
  for (const PassStat &S : Stats) {
    const IrOpCounts &C = S.Counts;
    std::printf("%-34s %6llu %6llu %6llu %7llu %8llu %7llu %7llu %6llu "
                "%7llu\n",
                S.Pass.c_str(), (unsigned long long)C.Dups,
                (unsigned long long)C.Drops, (unsigned long long)C.Frees,
                (unsigned long long)C.DecRefs,
                (unsigned long long)C.IsUniques,
                (unsigned long long)C.DropReuses,
                (unsigned long long)C.ReuseCons,
                (unsigned long long)C.TokenOps, (unsigned long long)C.Nodes);
  }
}

bool writeStatsJson(const std::string &Path, const std::string &File,
                    const std::string &Entry, Runner &R,
                    const std::vector<int64_t> &Args, const RunResult &Res,
                    const SiteTableSink &Sites) {
  JsonWriter W;
  W.beginObject()
      .member("schema", "perceus-stats-v1")
      .member("program", std::string_view(File))
      .member("entry", std::string_view(Entry))
      .member("config", R.config().name());
  W.key("args").beginArray();
  for (int64_t A : Args)
    W.value(A);
  W.endArray();
  W.member("ok", Res.Ok);
  W.key("result");
  if (Res.Ok && Res.Result.Kind == ValueKind::Int)
    W.value(Res.Result.Int);
  else if (Res.Ok && Res.Result.Kind == ValueKind::Bool)
    W.value(Res.Result.asBool());
  else
    W.null();
  W.key("heap");
  writeHeapStatsJson(W, R.heap().stats());
  W.key("run");
  writeRunResultJson(W, Res);
  W.key("sites");
  Sites.writeJson(W);
  W.endObject();

  std::FILE *Out = std::fopen(Path.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  std::string Text = W.take();
  std::fwrite(Text.data(), 1, Text.size(), Out);
  std::fputc('\n', Out);
  std::fclose(Out);
  return true;
}

/// Result of parsing one request line.
enum class LineParse {
  Ok,   ///< request filled in
  Skip, ///< blank line or comment — nothing to do
  Bad,  ///< malformed: the caller emits a structured bad-request line
};

/// One request line: ENTRY [ARGS...] with optional per-request overrides,
/// or a single JSON object (see parseServiceRequestJson). A malformed
/// line is Bad with a diagnostic in \p Error — the serve loop answers it
/// with a structured "bad-request" response; it is never silently
/// ignored and never kills the batch.
LineParse parseRequestLine(const std::string &Line, ServiceRequest &R,
                           std::string &Error) {
  size_t First = Line.find_first_not_of(" \t");
  if (First == std::string::npos || Line[First] == '#')
    return LineParse::Skip;
  if (Line[First] == '{')
    return parseServiceRequestJson(
               std::string_view(Line).substr(First), R, Error)
               ? LineParse::Ok
               : LineParse::Bad;

  std::istringstream Toks(Line);
  std::string Tok;
  bool HaveEntry = false;
  bool BadNum = false;
  auto matchNum = [&](const char *Flag, uint64_t &Out) {
    size_t Len = std::strlen(Flag);
    if (Tok.compare(0, Len, Flag) != 0)
      return false;
    char *End = nullptr;
    Out = std::strtoull(Tok.c_str() + Len, &End, 10);
    if (End == Tok.c_str() + Len || *End != '\0') {
      Error = std::string(Flag) + " expects a number, got '" + Tok + "'";
      BadNum = true;
    }
    return true;
  };
  while (Toks >> Tok) {
    if (Tok[0] == '#')
      break;
    if (matchNum("--fuel=", R.Limits.Fuel) ||
        matchNum("--deadline-ms=", R.Limits.DeadlineMs) ||
        matchNum("--max-depth=", R.Limits.MaxCallDepth) ||
        matchNum("--fail-alloc=", R.FailAlloc)) {
      if (BadNum)
        return LineParse::Bad;
      continue;
    }
    if (Tok.compare(0, 9, "--engine=") == 0) {
      if (!parseEngineKind(Tok.c_str() + 9, R.Engine)) {
        Error = "unknown engine '" + Tok.substr(9) + "'";
        return LineParse::Bad;
      }
      continue;
    }
    if (Tok.compare(0, 9, "--config=") == 0) {
      if (!parsePassConfig(Tok.c_str() + 9, R.Config)) {
        Error = "unknown config '" + Tok.substr(9) + "'";
        return LineParse::Bad;
      }
      continue;
    }
    if (Tok.compare(0, 9, "--tenant=") == 0) {
      if (Tok.size() == 9) {
        Error = "--tenant= expects a name";
        return LineParse::Bad;
      }
      R.Tenant = Tok.substr(9);
      continue;
    }
    // Any other option-shaped token is a client bug; answer it
    // structurally instead of misreading it as an entry point or an
    // argument (which is what silent fall-through used to do).
    if (Tok.size() >= 2 && Tok[0] == '-' && Tok[1] == '-') {
      Error = "unknown request option '" + Tok + "'";
      return LineParse::Bad;
    }
    if (!HaveEntry) {
      R.Entry = Tok;
      HaveEntry = true;
    } else {
      char *End = nullptr;
      long long V = std::strtoll(Tok.c_str(), &End, 10);
      if (End == Tok.c_str() || *End != '\0') {
        Error = "argument '" + Tok + "' is not an integer";
        return LineParse::Bad;
      }
      R.Args.push_back(Value::makeInt(V));
    }
  }
  if (!HaveEntry) {
    Error = "request line has no entry point";
    return LineParse::Bad;
  }
  return LineParse::Ok;
}

int serveMain(const std::string &Source, const PassConfig &DefConfig,
              EngineKind DefEngine, const RunLimits &DefLimits,
              const std::string &RequestsPath, const FrontEndConfig &FC,
              const std::string &DefTenant) {
  std::ifstream FileIn;
  std::istream *In = &std::cin;
  if (RequestsPath != "-") {
    FileIn.open(RequestsPath);
    if (!FileIn) {
      std::fprintf(stderr, "error: cannot open '%s'\n",
                   RequestsPath.c_str());
      return 1;
    }
    In = &FileIn;
  }

  // stdin serve is a compatibility transport over the same sharded
  // dispatcher the socket front end uses: same routing, same wire
  // documents, with the input line number as the transport seq.
  ShardedService S(FC);

  // Compile failures reject every request identically; diagnose once on
  // stderr and make the batch exit nonzero.
  bool CompileFailed = false;
  uint64_t OkCount = 0, Trapped = 0, Rejected = 0, BadLines = 0;

  // The CLI applies backpressure by keeping at most the queue capacity
  // in flight; responses print in submission order, one JSON per line.
  std::deque<std::pair<uint64_t, std::future<ServiceResponse>>> InFlight;
  auto drainOne = [&] {
    ServiceResponse R = InFlight.front().second.get();
    R.Seq = InFlight.front().first;
    InFlight.pop_front();
    if (R.Reject != RejectKind::None) {
      ++Rejected;
      if (R.Reject == RejectKind::CompileError && !CompileFailed) {
        CompileFailed = true;
        std::fprintf(stderr, "%s", R.Error.c_str());
      }
    } else if (R.Run.Ok) {
      ++OkCount;
    } else {
      ++Trapped;
    }
    std::printf("%s\n", wireResponseJson(R).c_str());
  };

  std::string Line;
  size_t LineNo = 0;
  while (std::getline(*In, Line)) {
    ++LineNo;
    ServiceRequest R;
    R.Tenant = DefTenant;
    R.Source = Source;
    R.Config = DefConfig;
    R.Engine = DefEngine;
    R.Limits = DefLimits;
    std::string ParseError;
    switch (parseRequestLine(Line, R, ParseError)) {
    case LineParse::Skip:
      continue;
    case LineParse::Bad: {
      // A malformed line gets a structured response of its own — the
      // client sees exactly which line was refused and why, in the same
      // one-JSON-per-request protocol as everything else.
      ++BadLines;
      ServiceResponse Bad;
      Bad.Seq = LineNo;
      Bad.Tenant = R.Tenant;
      Bad.Reject = RejectKind::BadRequest;
      Bad.Error = "line " + std::to_string(LineNo) + ": " + ParseError;
      std::printf("%s\n", wireResponseJson(Bad).c_str());
      continue;
    }
    case LineParse::Ok:
      break;
    }
    if (InFlight.size() >= FC.Shard.QueueCapacity)
      drainOne();
    InFlight.emplace_back(LineNo, S.submit(std::move(R)));
  }
  while (!InFlight.empty())
    drainOne();
  S.stop();

  ServiceStats ST = S.stats();
  std::fprintf(stderr,
               "[serve] requests=%llu ok=%llu traps=%llu rejected=%llu "
               "bad-lines=%llu shards=%zu cache-hits=%llu compiles=%llu "
               "evictions=%llu trimmed=%lluB\n",
               (unsigned long long)ST.Submitted, (unsigned long long)OkCount,
               (unsigned long long)Trapped, (unsigned long long)Rejected,
               (unsigned long long)BadLines, S.shardCount(),
               (unsigned long long)ST.CacheHits,
               (unsigned long long)ST.CacheCompiles,
               (unsigned long long)ST.CacheEvictions,
               (unsigned long long)ST.TrimmedBytes);
  return CompileFailed ? 1 : 0;
}

/// Self-pipe for signal-safe shutdown: the handler writes one byte; the
/// main thread blocks on the read end.
int SignalPipe[2] = {-1, -1};

void onShutdownSignal(int) {
  char B = 1;
  ssize_t Ignored = write(SignalPipe[1], &B, 1);
  (void)Ignored;
}

void printServiceStatsLine(const char *Tag, const ServiceStats &ST) {
  std::fprintf(stderr,
               "%s submitted=%llu executed=%llu traps=%llu rejected=%llu "
               "cache-hits=%llu compiles=%llu evictions=%llu trimmed=%lluB\n",
               Tag, (unsigned long long)ST.Submitted,
               (unsigned long long)ST.Executed, (unsigned long long)ST.Traps,
               (unsigned long long)(ST.RejectedQueueFull + ST.RejectedShedding +
                                    ST.RejectedCompileError +
                                    ST.RejectedRateLimited +
                                    ST.RejectedTenantQuota +
                                    ST.RejectedCircuitOpen +
                                    ST.RejectedBadRequest),
               (unsigned long long)ST.CacheHits,
               (unsigned long long)ST.CacheCompiles,
               (unsigned long long)ST.CacheEvictions,
               (unsigned long long)ST.TrimmedBytes);
}

int listenMain(const std::string &Source, const PassConfig &DefConfig,
               EngineKind DefEngine, const RunLimits &DefLimits,
               const std::string &ListenAddr, const FrontEndConfig &FC,
               const std::string &DefTenant, uint64_t MaxRequests) {
  ServiceRequest Defaults;
  Defaults.Tenant = DefTenant;
  Defaults.Source = Source;
  Defaults.Config = DefConfig;
  Defaults.Engine = DefEngine;
  Defaults.Limits = DefLimits;

  ShardedService SS(FC);
  Server Srv(SS, FC, std::move(Defaults));
  std::string Err;
  if (!Srv.listen(ListenAddr, &Err)) {
    std::fprintf(stderr, "error: cannot listen on %s: %s\n",
                 ListenAddr.c_str(), Err.c_str());
    return 1;
  }
  if (pipe(SignalPipe) != 0) {
    std::fprintf(stderr, "error: cannot create signal pipe\n");
    return 1;
  }
  std::signal(SIGINT, onShutdownSignal);
  std::signal(SIGTERM, onShutdownSignal);
  if (!Srv.start()) {
    std::fprintf(stderr, "error: cannot start the event loop\n");
    return 1;
  }
  // The banner is the contract for scripted clients: it carries the
  // bound (possibly ephemeral) port and is flushed before any traffic.
  std::fprintf(stderr,
               "[listen] schema=%s backend=%s port=%u shards=%zu "
               "workers-per-shard=%u max-frame=%zu\n",
               kWireSchemaName, Poller::backendName(), Srv.port(),
               SS.shardCount(), SS.shard(0).config().Workers,
               FC.MaxFrameBytes);
  std::fflush(stderr);

  for (;;) {
    pollfd PFd{};
    PFd.fd = SignalPipe[0];
    PFd.events = POLLIN;
    int N = ::poll(&PFd, 1, 200);
    if (N > 0)
      break; // SIGINT/SIGTERM
    if (MaxRequests && Srv.stats().FramesOut >= MaxRequests)
      break;
  }

  Srv.stop();
  SS.stop();

  ServerStats NS = Srv.stats();
  std::fprintf(stderr,
               "[listen] conns=%llu refused=%llu closed=%llu idle-closed=%llu "
               "frames-in=%llu frames-out=%llu bad-requests=%llu "
               "protocol-errors=%llu truncated=%llu dropped-responses=%llu "
               "bytes-in=%llu bytes-out=%llu\n",
               (unsigned long long)NS.Accepted, (unsigned long long)NS.Refused,
               (unsigned long long)NS.Closed,
               (unsigned long long)NS.IdleClosed,
               (unsigned long long)NS.FramesIn,
               (unsigned long long)NS.FramesOut,
               (unsigned long long)NS.BadRequests,
               (unsigned long long)NS.ProtocolErrors,
               (unsigned long long)NS.TruncatedFrames,
               (unsigned long long)NS.DroppedResponses,
               (unsigned long long)NS.BytesIn, (unsigned long long)NS.BytesOut);
  printServiceStatsLine("[service]", SS.stats());
  for (size_t I = 0; I != SS.shardCount(); ++I) {
    std::string Tag = "[shard " + std::to_string(I) + "]";
    printServiceStatsLine(Tag.c_str(), SS.shardStats(I));
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string File, Entry = "main", Dump, Stages, StatsJson;
  PassConfig Config = PassConfig::perceusFull();
  bool Stats = false;
  bool PassStats = false;
  EngineConfig EC;
  RunLimits Limits;
  uint64_t MaxHeapBytes = 0, FailAlloc = 0, Workers = 0, SharedArg = 0;
  bool Serve = false;
  std::string Requests = "-";
  std::string Listen;
  uint64_t ServeWorkers = 1, QueueCap = 64, MaxRetained = 8u << 20;
  uint64_t MaxCacheBytes = 0, ChaosSeed = 0, Shards = 1;
  uint64_t MaxFrameBytes = 64 * 1024, IdleTimeoutMs = 0, MaxConns = 1024;
  uint64_t MaxRequests = 0;
  std::string Tenant = "default";
  std::string SharedInput;
  std::vector<int64_t> SharedArgs;
  std::vector<int64_t> Args;

  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strncmp(A, "--config=", 9) == 0) {
      if (!parsePassConfig(A + 9, Config)) {
        std::fprintf(stderr, "error: unknown config '%s'\n", A + 9);
        return 1;
      }
    } else if (std::strncmp(A, "--engine=", 9) == 0) {
      if (!parseEngineKind(A + 9, EC.Engine)) {
        std::fprintf(stderr, "error: unknown engine '%s' (cek or vm)\n",
                     A + 9);
        return 1;
      }
    } else if (std::strncmp(A, "--entry=", 8) == 0) {
      Entry = A + 8;
    } else if (std::strncmp(A, "--dump=", 7) == 0) {
      Dump = A + 7;
    } else if (std::strncmp(A, "--stages=", 9) == 0) {
      Stages = A + 9;
    } else if (!std::strcmp(A, "--stats")) {
      Stats = true;
    } else if (std::strncmp(A, "--stats-json=", 13) == 0) {
      StatsJson = A + 13;
    } else if (!std::strcmp(A, "--pass-stats")) {
      PassStats = true;
    } else if (!std::strcmp(A, "--no-peephole")) {
      EC.Peephole = false;
    } else if (std::strncmp(A, "--shared-input=", 15) == 0) {
      SharedInput = A + 15;
    } else if (parseCount(A, "--shared-arg=", SharedArg)) {
      SharedArgs.push_back(static_cast<int64_t>(SharedArg));
    } else if (parseCount(A, "--workers=", Workers)) {
      // handled below
    } else if (!std::strcmp(A, "--serve")) {
      Serve = true;
    } else if (std::strncmp(A, "--listen=", 9) == 0) {
      Listen = A + 9;
      if (Listen.empty()) {
        std::fprintf(stderr, "error: --listen= expects HOST:PORT\n");
        return 1;
      }
    } else if (std::strncmp(A, "--requests=", 11) == 0) {
      Requests = A + 11;
    } else if (parseCount(A, "--serve-workers=", ServeWorkers) ||
               parseCount(A, "--queue-cap=", QueueCap) ||
               parseCount(A, "--max-retained=", MaxRetained) ||
               parseCount(A, "--max-cache-bytes=", MaxCacheBytes) ||
               parseCount(A, "--chaos-seed=", ChaosSeed) ||
               parseCount(A, "--shards=", Shards) ||
               parseCount(A, "--max-frame-bytes=", MaxFrameBytes) ||
               parseCount(A, "--idle-timeout-ms=", IdleTimeoutMs) ||
               parseCount(A, "--max-conns=", MaxConns) ||
               parseCount(A, "--max-requests=", MaxRequests)) {
      // handled in serve/listen mode below
    } else if (std::strncmp(A, "--tenant=", 9) == 0) {
      Tenant = A + 9;
      if (Tenant.empty()) {
        std::fprintf(stderr, "error: --tenant= expects a name\n");
        return 1;
      }
    } else if (parseCount(A, "--fuel=", Limits.Fuel) ||
               parseCount(A, "--deadline-ms=", Limits.DeadlineMs) ||
               parseCount(A, "--max-depth=", Limits.MaxCallDepth) ||
               parseCount(A, "--max-heap=", MaxHeapBytes) ||
               parseCount(A, "--max-cells=", Limits.Heap.MaxLiveCells) ||
               parseCount(A, "--alloc-budget=", Limits.Heap.AllocBudget) ||
               parseCount(A, "--fail-alloc=", FailAlloc)) {
      Limits.Heap.MaxLiveBytes = MaxHeapBytes;
    } else if (A[0] == '-' && !std::isdigit((unsigned char)A[1])) {
      usage();
      return 1;
    } else if (File.empty()) {
      File = A;
    } else {
      Args.push_back(std::atoll(A));
    }
  }
  if (File.empty()) {
    usage();
    return 1;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", File.c_str());
    return 1;
  }
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  if (Serve || !Listen.empty()) {
    ServiceConfig SC;
    SC.withWorkers(static_cast<unsigned>(ServeWorkers))
        .withQueueCapacity(static_cast<size_t>(QueueCap))
        .withMaxRetainedBytes(static_cast<size_t>(MaxRetained))
        .withMaxCacheBytes(static_cast<size_t>(MaxCacheBytes));
    if (ChaosSeed)
      SC.withChaos(ChaosConfig::defaults(ChaosSeed));
    FrontEndConfig FC;
    FC.withShards(static_cast<unsigned>(Shards))
        .withShard(SC)
        .withMaxFrameBytes(static_cast<size_t>(MaxFrameBytes))
        .withIdleTimeoutMs(IdleTimeoutMs)
        .withMaxConnections(static_cast<size_t>(MaxConns));
    if (!Listen.empty())
      return listenMain(Source, Config, EC.Engine, Limits, Listen, FC,
                        Tenant, MaxRequests);
    return serveMain(Source, Config, EC.Engine, Limits, Requests, FC, Tenant);
  }

  if (PassStats) {
    Program P;
    DiagnosticEngine Diags;
    if (!compileSource(Source, P, Diags)) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    std::printf("config: %s\n", Config.name());
    printPassStats(runPipelineWithStats(P, Config));
    if (EC.Engine == EngineKind::Vm && EC.Peephole) {
      // The bytecode tier's own rewrite, below the IR passes: what the
      // peephole deleted (proven-immediate RC ops) and fused.
      Runner R(Source, Config, EC);
      const PeepholeReport &Rep = R.peepholeReport();
      std::printf("\npeephole (immediacy rounds: %u)\n",
                  Rep.AnalysisRounds);
      std::printf("%-34s %7s %7s %7s %7s\n", "chunk", "before", "after",
                  "elided", "fused");
      for (const PeepholeChunkStats &C : Rep.Chunks)
        if (C.Elided || C.Fused)
          std::printf("%-34s %7u %7u %7u %7u\n", C.Name.c_str(), C.Before,
                      C.After, C.Elided, C.Fused);
      std::printf("%-34s %7s %7s %7llu %7llu\n", "total", "", "",
                  (unsigned long long)Rep.totalElided(),
                  (unsigned long long)Rep.totalFused());
    }
    return 0;
  }

  if (!Stages.empty()) {
    Program P;
    DiagnosticEngine Diags;
    if (!compileSource(Source, P, Diags)) {
      std::fprintf(stderr, "%s", Diags.str().c_str());
      return 1;
    }
    FuncId F = P.findFunction(P.symbols().intern(Stages));
    if (F == InvalidId) {
      std::fprintf(stderr, "error: no function '%s'\n", Stages.c_str());
      return 1;
    }
    for (const StageDump &S : runPipelineWithStages(P, F))
      std::printf("----- %s -----\n%s\n", S.Stage.c_str(), S.Text.c_str());
    return 0;
  }

  if (Workers || !SharedInput.empty()) {
    if (!StatsJson.empty() || FailAlloc) {
      std::fprintf(stderr, "error: --workers is incompatible with "
                           "--stats-json and --fail-alloc\n");
      return 1;
    }
    ParallelRunner PR(Source, Config);
    if (!PR.ok()) {
      std::fprintf(stderr, "%s", PR.diagnostics().str().c_str());
      return 1;
    }
    EC.Workers = Workers ? static_cast<unsigned>(Workers) : 1;
    EC.SharedBuilder = SharedInput;
    for (int64_t A : SharedArgs)
      EC.SharedArgs.push_back(Value::makeInt(A));
    EC.Limits = Limits;
    std::vector<Value> VArgs;
    for (int64_t A : Args)
      VArgs.push_back(Value::makeInt(A));
    ParallelOutcome Out = PR.run(EC, Entry, std::move(VArgs));
    if (!Out.Error.empty()) {
      std::fprintf(stderr, "error: %s\n", Out.Error.c_str());
      return 1;
    }
    for (size_t W = 0; W != Out.Workers.size(); ++W) {
      const WorkerOutcome &WO = Out.Workers[W];
      if (WO.Run.Ok && WO.Run.Result.Kind == ValueKind::Int)
        std::printf("worker %zu: %lld (%.3fs)\n", W,
                    (long long)WO.Run.Result.Int, WO.Seconds);
      else if (WO.Run.Ok)
        std::printf("worker %zu: ok (%.3fs)\n", W, WO.Seconds);
      else
        std::printf("worker %zu: trap (%s): %s\n", W,
                    trapKindName(WO.Run.Trap), WO.Run.Error.c_str());
    }
    if (Stats) {
      const HeapStats &S = Out.Combined;
      std::fprintf(stderr,
                   "[%s x%zu] wall=%.3fs allocs=%llu frees=%llu "
                   "dup=%llu drop=%llu atomic-rc=%llu coalesced-rc=%llu "
                   "peak=%zuB leaked-cells=%llu\n",
                   Config.name(), Out.Workers.size(), Out.Seconds,
                   (unsigned long long)S.Allocs,
                   (unsigned long long)S.Frees,
                   (unsigned long long)S.DupOps,
                   (unsigned long long)S.DropOps,
                   (unsigned long long)S.AtomicRcOps,
                   (unsigned long long)S.CoalescedRcOps, S.PeakBytes,
                   (unsigned long long)(S.LiveCells + Out.Shared.LiveCells));
      if (!SharedInput.empty())
        std::fprintf(stderr,
                     "[shared segment] allocs=%llu frees=%llu "
                     "atomic-rc=%llu swept-after-trap=%llu\n",
                     (unsigned long long)Out.Shared.Allocs,
                     (unsigned long long)Out.Shared.Frees,
                     (unsigned long long)Out.Shared.AtomicRcOps,
                     (unsigned long long)Out.SharedLeaked);
    }
    return Out.Ok ? 0 : 1;
  }

  EC.Limits = Limits;
  FaultInjector FI = FaultInjector::failNth(FailAlloc);
  if (FailAlloc)
    EC.Injector = &FI;
  SiteTableSink Sites;
  if (!StatsJson.empty())
    EC.Sink = &Sites;

  Runner R(Source, Config, EC);
  if (!R.ok()) {
    std::fprintf(stderr, "%s", R.diagnostics().str().c_str());
    return 1;
  }

  if (!Dump.empty()) {
    FuncId F = R.program().findFunction(R.program().symbols().intern(Dump));
    if (F == InvalidId) {
      std::fprintf(stderr, "error: no function '%s'\n", Dump.c_str());
      return 1;
    }
    std::printf("%s", printFunction(R.program(), F).c_str());
    return 0;
  }

  RunResult Res = R.callInt(Entry, Args);
  // The JSON dump is most valuable exactly when something went wrong, so
  // it is written on trapped runs too.
  if (!StatsJson.empty() &&
      !writeStatsJson(StatsJson, File, Entry, R, Args, Res, Sites))
    return 1;
  if (!Res.Ok) {
    std::fprintf(stderr, "runtime error (%s): %s\n", trapKindName(Res.Trap),
                 Res.Error.c_str());
    if (Stats) {
      const HeapStats &S = R.heap().stats();
      std::fprintf(stderr,
                   "[%s] trap=%s unwound-cells=%llu leaked-cells=%llu\n",
                   R.config().name(), trapKindName(Res.Trap),
                   (unsigned long long)Res.UnwoundCells,
                   (unsigned long long)S.LiveCells);
    }
    return 1;
  }
  std::fputs(Res.Output.c_str(), stdout);
  switch (Res.Result.Kind) {
  case ValueKind::Int:
    std::printf("%lld\n", (long long)Res.Result.Int);
    break;
  case ValueKind::Bool:
    std::printf("%s\n", Res.Result.asBool() ? "True" : "False");
    break;
  case ValueKind::Unit:
    break;
  default:
    std::printf("<%s value>\n",
                Res.Result.Kind == ValueKind::HeapRef ? "heap" : "opaque");
    break;
  }

  if (Stats) {
    const HeapStats &S = R.heap().stats();
    std::fprintf(stderr,
                 "[%s] steps=%llu allocs=%llu frees=%llu dup=%llu "
                 "drop=%llu reuse=%llu peak=%zuB leaked-cells=%llu\n",
                 R.config().name(), (unsigned long long)Res.Steps,
                 (unsigned long long)S.Allocs, (unsigned long long)S.Frees,
                 (unsigned long long)S.DupOps,
                 (unsigned long long)S.DropOps,
                 (unsigned long long)Res.ReuseHits, S.PeakBytes,
                 (unsigned long long)S.LiveCells);
  }
  return 0;
}
