//===- examples/quickstart.cpp - Five-minute tour of the API ------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quickstart from the README: compile a small functional program,
/// run it under the full Perceus pipeline, and inspect what the
/// reference-counting optimizations did — including the "garbage free"
/// guarantee (an empty heap at exit) and in-place reuse.
///
//===----------------------------------------------------------------------===//

#include "eval/Runner.h"
#include "ir/Printer.h"

#include <cstdio>

using namespace perceus;

int main() {
  // 1. A program in the surface language: reverse a list in place.
  const char *Source = R"(
    type list {
      Cons(head, tail)
      Nil
    }

    fun iota(n) {
      if n <= 0 then Nil else Cons(n, iota(n - 1))
    }

    // Tail-recursive reverse: each matched Cons pairs with the new Cons,
    // so a unique list is reversed with zero allocations (FBIP).
    fun reverse-onto(xs, acc) {
      match xs {
        Cons(x, xx) -> reverse-onto(xx, Cons(x, acc))
        Nil -> acc
      }
    }

    fun sum(xs, acc) {
      match xs {
        Cons(x, xx) -> sum(xx, acc + x)
        Nil -> acc
      }
    }

    fun main(n) {
      sum(reverse-onto(iota(n), Nil), 0)
    }
  )";

  // 2. Compile under the full Perceus pipeline (precise dup/drop
  //    insertion + drop specialization + fusion + reuse + reuse
  //    specialization).
  Runner R(Source, PassConfig::perceusFull());
  if (!R.ok()) {
    std::printf("compile error:\n%s", R.diagnostics().str().c_str());
    return 1;
  }

  // 3. Inspect the instrumented code the pipeline produced.
  Program &P = R.program();
  FuncId Rev = P.findFunction(P.symbols().intern("reverse-onto"));
  std::printf("reverse-onto after the Perceus pipeline:\n%s\n",
              printFunction(P, Rev).c_str());

  // 4. Run it.
  RunResult Res = R.callInt("main", {100000});
  if (!Res.Ok) {
    std::printf("runtime error: %s\n", Res.Error.c_str());
    return 1;
  }

  const HeapStats &S = R.heap().stats();
  std::printf("result              : %lld\n", (long long)Res.Result.Int);
  std::printf("cells allocated     : %llu (the iota list)\n",
              (unsigned long long)S.Allocs);
  std::printf("in-place reuses     : %llu (reverse allocated nothing)\n",
              (unsigned long long)Res.ReuseHits);
  std::printf("rc ops executed     : %llu dup / %llu drop\n",
              (unsigned long long)S.DupOps, (unsigned long long)S.DropOps);
  std::printf("peak live heap      : %zu bytes\n", S.PeakBytes);
  std::printf("heap empty at exit  : %s  <- the garbage-free guarantee\n",
              R.heapIsEmpty() ? "yes" : "NO (bug!)");
  return R.heapIsEmpty() ? 0 : 1;
}
