//===- examples/fbip_traversal.cpp - Section 2.6's FBIP paradigm --------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 2.6 demonstration: a purely functional visitor-
/// based in-order tree map (Figure 3) that — thanks to guaranteed reuse —
/// runs as an in-place, constant-stack imperative loop, just like
/// Morris's pointer-rotating traversal (Figure 2). We run both (the
/// functional one on the abstract machine, Morris natively), check they
/// agree, and show the functional one performed zero net allocations and
/// used constant machine stack.
///
//===----------------------------------------------------------------------===//

#include "eval/Runner.h"
#include "native/Native.h"
#include "programs/Programs.h"

#include <cstdio>

using namespace perceus;

int main() {
  const int64_t Depth = 14;
  const int64_t Nodes = (1ll << Depth) - 1;

  std::printf("Mapping +1 over a perfect binary tree of depth %lld "
              "(%lld nodes), in order.\n\n",
              (long long)Depth, (long long)Nodes);

  // Native baseline: Morris traversal (Figure 2).
  int64_t Native = native::tmapMorris(Depth);
  std::printf("%-34s checksum=%lld, O(1) stack, 0 allocations\n",
              "Morris traversal (native C++):", (long long)Native);

  // Figure 3's functional visitor, full Perceus pipeline.
  Runner R(tmapSource(), PassConfig::perceusFull());
  if (!R.ok()) {
    std::printf("compile error:\n%s", R.diagnostics().str().c_str());
    return 1;
  }
  RunResult Fbip = R.callInt("bench_tmap_fbip", {Depth});
  if (!Fbip.Ok) {
    std::printf("runtime error: %s\n", Fbip.Error.c_str());
    return 1;
  }
  const HeapStats &S = R.heap().stats();
  int64_t NetAllocs = int64_t(S.Allocs) - Nodes;
  std::printf("%-34s checksum=%lld\n", "FBIP visitor (Figure 3):",
              (long long)Fbip.Result.Int);
  std::printf("  allocations beyond the input tree : %lld\n",
              (long long)NetAllocs);
  std::printf("  in-place cell reuses              : %llu\n",
              (unsigned long long)Fbip.ReuseHits);
  std::printf("  peak machine stack (slots)        : %llu "
              "(constant: all calls are tail calls)\n",
              (unsigned long long)Fbip.MaxLocalsSlots);
  std::printf("  tail calls                        : %llu\n",
              (unsigned long long)Fbip.TailCalls);

  // Compare with the naive recursive map: also reuses in place, but the
  // machine stack grows with the tree depth.
  Runner R2(tmapSource(), PassConfig::perceusFull());
  RunResult Naive = R2.callInt("bench_tmap_naive", {Depth});
  std::printf("%-34s checksum=%lld, peak stack %llu slots\n",
              "Naive recursion (for contrast):",
              (long long)Naive.Result.Int,
              (unsigned long long)Naive.MaxLocalsSlots);

  // The stack contrast is starkest on a degenerate tree: a right spine
  // of 50000 nodes (Knuth's challenge: traverse with no extra space).
  const int64_t SpineLen = 50000;
  Runner R3(tmapSource(), PassConfig::perceusFull());
  RunResult SpineF = R3.callInt("bench_spine_fbip", {SpineLen});
  Runner R4(tmapSource(), PassConfig::perceusFull());
  RunResult SpineN = R4.callInt("bench_spine_naive", {SpineLen});
  std::printf("\nRight spine of %lld nodes:\n", (long long)SpineLen);
  std::printf("  FBIP visitor peak stack  : %llu slots (constant)\n",
              (unsigned long long)SpineF.MaxLocalsSlots);
  std::printf("  naive recursion          : %llu slots (grows with the "
              "spine)\n",
              (unsigned long long)SpineN.MaxLocalsSlots);

  bool Agree = Fbip.Result.Int == Native && Naive.Result.Int == Native &&
               SpineF.Result.Int == SpineN.Result.Int;
  std::printf("\nAll three agree: %s\n", Agree ? "yes" : "NO (bug!)");
  return Agree ? 0 : 1;
}
