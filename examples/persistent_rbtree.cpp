//===- examples/persistent_rbtree.cpp - Adaptive in-place vs persistent -------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Section 2.5's punchline: the purely functional red-black insertion of
/// Appendix A "adapts at runtime to an in-place mutating re-balancing
/// algorithm" when the tree is unique, and "adapts to copying exactly
/// the shared spine of the tree" when it is used persistently. We insert
/// the same keys twice — once threading a unique tree, once retaining
/// every 5th version — and compare allocations and reuse.
///
//===----------------------------------------------------------------------===//

#include "eval/Runner.h"
#include "programs/Programs.h"

#include <cstdio>

using namespace perceus;

namespace {

struct Stats {
  uint64_t Allocs = 0;
  uint64_t ReuseHits = 0;
  uint64_t ReuseMisses = 0;
  int64_t Result = 0;
};

Stats runInsertions(const char *Source, const char *Entry, int64_t N) {
  Runner R(Source, PassConfig::perceusFull());
  if (!R.ok()) {
    std::printf("compile error:\n%s", R.diagnostics().str().c_str());
    std::exit(1);
  }
  RunResult Res = R.callInt(Entry, {N});
  if (!Res.Ok) {
    std::printf("runtime error: %s\n", Res.Error.c_str());
    std::exit(1);
  }
  return {R.heap().stats().Allocs, Res.ReuseHits, Res.ReuseMisses,
          Res.Result.Int};
}

} // namespace

int main() {
  const int64_t N = 20000;
  std::printf("Okasaki red-black insertion of %lld keys (Appendix A), "
              "full Perceus pipeline.\n\n",
              (long long)N);

  Stats Unique = runInsertions(rbtreeSource(), "bench_rbtree", N);
  std::printf("unique tree (rbtree):\n");
  std::printf("  fresh allocations : %llu\n",
              (unsigned long long)Unique.Allocs);
  std::printf("  in-place reuses   : %llu  (rebalancing mutates in "
              "place)\n",
              (unsigned long long)Unique.ReuseHits);

  Stats Shared = runInsertions(rbtreeCkSource(), "bench_rbtree_ck", N);
  std::printf("\npersistent use (rbtree-ck, every 5th tree retained):\n");
  std::printf("  fresh allocations : %llu  (the shared spines are "
              "copied...)\n",
              (unsigned long long)Shared.Allocs);
  std::printf("  in-place reuses   : %llu  (...but unshared parts are "
              "still reused)\n",
              (unsigned long long)Shared.ReuseHits);
  std::printf("  reuse misses      : %llu  (shared cells: drop-reuse "
              "yielded NULL)\n",
              (unsigned long long)Shared.ReuseMisses);

  double UniqueRate =
      100.0 * Unique.ReuseHits / (Unique.ReuseHits + Unique.ReuseMisses);
  double SharedRate =
      100.0 * Shared.ReuseHits / (Shared.ReuseHits + Shared.ReuseMisses);
  std::printf("\nreuse success: %.1f%% on the unique tree vs %.1f%% under "
              "persistence —\n"
              "the same functional program, adapting to sharing at "
              "runtime.\n",
              UniqueRate, SharedRate);
  std::printf("checksums: %lld / %lld\n", (long long)Unique.Result,
              (long long)Shared.Result);
  return 0;
}
