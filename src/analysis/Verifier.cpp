//===- analysis/Verifier.cpp - IR well-formedness checks -------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Verifier.h"

#include "analysis/FreeVars.h"
#include "support/Casting.h"

#include <unordered_set>

using namespace perceus;

namespace {

class VerifierImpl {
public:
  VerifierImpl(const Program &P) : P(P) {}

  std::vector<std::string> Errors;

  void error(std::string Msg) { Errors.push_back(std::move(Msg)); }

  std::string name(Symbol S) const {
    return S.isValid() ? std::string(P.symbols().name(S)) : "<invalid>";
  }

  void bind(Symbol X, VarSet &Scope) {
    if (!X.isValid()) {
      error("invalid binder symbol");
      return;
    }
    if (!AllBinders.insert(X).second)
      error("binder '" + name(X) + "' is bound more than once in the program "
            "(alpha-renaming invariant violated)");
    Scope.insert(X);
  }

  void checkUse(Symbol X, const VarSet &Scope, const char *What) {
    if (!Scope.contains(X))
      error(std::string(What) + " of out-of-scope variable '" + name(X) + "'");
  }

  void checkExpr(const Expr *E, VarSet Scope) {
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::NullToken:
      return;
    case ExprKind::Var:
      checkUse(cast<VarExpr>(E)->name(), Scope, "use");
      return;
    case ExprKind::Global: {
      FuncId F = cast<GlobalExpr>(E)->func();
      if (F >= P.numFunctions())
        error("reference to unknown function id " + std::to_string(F));
      return;
    }
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      // The capture list must be exactly the free variables of the lambda.
      FreeVarAnalysis FV;
      VarSet BodyFree = FV.freeVars(L->body());
      for (Symbol Pm : L->params())
        BodyFree.erase(Pm);
      VarSet Caps;
      for (Symbol C : L->captures()) {
        Caps.insert(C);
        checkUse(C, Scope, "capture");
      }
      if (!(Caps == BodyFree))
        error("lambda capture list does not equal its free variables");
      VarSet Inner;
      for (Symbol C : L->captures())
        Inner.insert(C); // captures were bound at their origin
      for (Symbol Pm : L->params())
        bind(Pm, Inner);
      checkExpr(L->body(), Inner);
      return;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      checkExpr(A->fn(), Scope);
      for (const Expr *Arg : A->args())
        checkExpr(Arg, Scope);
      return;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      checkExpr(L->bound(), Scope);
      bind(L->name(), Scope);
      checkExpr(L->body(), Scope);
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      checkExpr(S->first(), Scope);
      checkExpr(S->second(), Scope);
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      checkExpr(I->cond(), Scope);
      checkExpr(I->thenExpr(), Scope);
      checkExpr(I->elseExpr(), Scope);
      return;
    }
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      checkUse(M->scrutinee(), Scope, "match");
      if (M->arms().empty())
        error("match with no arms");
      unsigned NumDefaults = 0;
      uint32_t DataId = InvalidId;
      for (const MatchArm &Arm : M->arms()) {
        VarSet ArmScope = Scope;
        switch (Arm.Kind) {
        case ArmKind::Ctor: {
          if (Arm.Ctor >= P.numCtors()) {
            error("match arm on unknown constructor");
            break;
          }
          const CtorDecl &C = P.ctor(Arm.Ctor);
          if (Arm.Binders.size() != C.Arity)
            error("pattern arity mismatch for constructor '" + name(C.Name) +
                  "'");
          if (DataId == InvalidId)
            DataId = C.DataId;
          else if (DataId != C.DataId)
            error("match arms mix constructors of different data types");
          for (Symbol B : Arm.Binders)
            bind(B, ArmScope);
          break;
        }
        case ArmKind::IntLit:
        case ArmKind::BoolLit:
          break;
        case ArmKind::Default:
          ++NumDefaults;
          break;
        }
        checkExpr(Arm.Body, ArmScope);
      }
      if (NumDefaults > 1)
        error("match with multiple default arms");
      return;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      if (C->ctor() >= P.numCtors()) {
        error("unknown constructor in Con");
        return;
      }
      const CtorDecl &D = P.ctor(C->ctor());
      if (C->args().size() != D.Arity)
        error("constructor arity mismatch for '" + name(D.Name) + "'");
      if (C->hasReuseToken()) {
        if (D.isEnumLike())
          error("reuse token on enum-like constructor '" + name(D.Name) + "'");
        checkUse(C->reuseToken(), Scope, "reuse-token use");
      }
      for (const Expr *Arg : C->args())
        checkExpr(Arg, Scope);
      return;
    }
    case ExprKind::Prim: {
      for (const Expr *Arg : cast<PrimExpr>(E)->args())
        checkExpr(Arg, Scope);
      return;
    }
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef: {
      const auto *R = cast<RcStmtExpr>(E);
      checkUse(R->var(), Scope, "rc operation");
      checkExpr(R->rest(), Scope);
      return;
    }
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      checkUse(U->var(), Scope, "is-unique");
      checkExpr(U->thenExpr(), Scope);
      checkExpr(U->elseExpr(), Scope);
      return;
    }
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      checkUse(D->var(), Scope, "drop-reuse");
      bind(D->token(), Scope);
      checkExpr(D->rest(), Scope);
      return;
    }
    case ExprKind::ReuseAddr:
      checkUse(cast<ReuseAddrExpr>(E)->var(), Scope, "reuse-addr");
      return;
    case ExprKind::IsNullToken: {
      const auto *N = cast<IsNullTokenExpr>(E);
      checkUse(N->token(), Scope, "token test");
      checkExpr(N->thenExpr(), Scope);
      checkExpr(N->elseExpr(), Scope);
      return;
    }
    case ExprKind::SetField: {
      const auto *F = cast<SetFieldExpr>(E);
      checkUse(F->token(), Scope, "field assignment");
      checkExpr(F->value(), Scope);
      checkExpr(F->rest(), Scope);
      return;
    }
    case ExprKind::TokenValue: {
      const auto *T = cast<TokenValueExpr>(E);
      checkUse(T->token(), Scope, "token value");
      if (T->ctor() >= P.numCtors())
        error("unknown constructor in token value");
      for (Symbol K : T->keptFields())
        checkUse(K, Scope, "kept field");
      return;
    }
    }
  }

  void checkFunction(FuncId F) {
    const FunctionDecl &Fn = P.function(F);
    if (!Fn.Body) {
      error("function '" + name(Fn.Name) + "' has no body");
      return;
    }
    VarSet Scope;
    for (Symbol Pm : Fn.Params)
      bind(Pm, Scope);
    checkExpr(Fn.Body, Scope);
  }

private:
  const Program &P;
  std::unordered_set<Symbol> AllBinders;
};

} // namespace

std::vector<std::string> perceus::verifyProgram(const Program &P) {
  VerifierImpl V(P);
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    V.checkFunction(F);
  return std::move(V.Errors);
}

std::vector<std::string> perceus::verifyFunction(const Program &P, FuncId F) {
  VerifierImpl V(P);
  V.checkFunction(F);
  return std::move(V.Errors);
}
