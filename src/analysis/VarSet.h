//===- analysis/VarSet.h - Ordered variable sets ----------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small ordered set of Symbols (sorted by id, duplicate-free) used for
/// the borrowed/owned environments (Delta and Gamma) of the Perceus
/// derivation rules. Sets are tiny in practice, so a sorted vector wins;
/// the ordering also makes emitted dup/drop sequences deterministic.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_ANALYSIS_VARSET_H
#define PERCEUS_ANALYSIS_VARSET_H

#include "support/Symbol.h"

#include <algorithm>
#include <initializer_list>
#include <vector>

namespace perceus {

/// An ordered, duplicate-free set of symbols.
class VarSet {
public:
  VarSet() = default;
  VarSet(std::initializer_list<Symbol> Xs) {
    for (Symbol X : Xs)
      insert(X);
  }

  bool contains(Symbol X) const {
    return std::binary_search(Items.begin(), Items.end(), X);
  }

  /// Inserts \p X; returns true if it was not present.
  bool insert(Symbol X) {
    auto It = std::lower_bound(Items.begin(), Items.end(), X);
    if (It != Items.end() && *It == X)
      return false;
    Items.insert(It, X);
    return true;
  }

  /// Removes \p X; returns true if it was present.
  bool erase(Symbol X) {
    auto It = std::lower_bound(Items.begin(), Items.end(), X);
    if (It == Items.end() || *It != X)
      return false;
    Items.erase(It);
    return true;
  }

  void insertAll(const VarSet &Other) {
    for (Symbol X : Other.Items)
      insert(X);
  }
  void eraseAll(const VarSet &Other) {
    for (Symbol X : Other.Items)
      erase(X);
  }

  /// Set intersection.
  VarSet intersect(const VarSet &Other) const {
    VarSet R;
    std::set_intersection(Items.begin(), Items.end(), Other.Items.begin(),
                          Other.Items.end(), std::back_inserter(R.Items));
    return R;
  }

  /// Set difference (this minus Other).
  VarSet minus(const VarSet &Other) const {
    VarSet R;
    std::set_difference(Items.begin(), Items.end(), Other.Items.begin(),
                        Other.Items.end(), std::back_inserter(R.Items));
    return R;
  }

  /// Set union.
  VarSet unite(const VarSet &Other) const {
    VarSet R;
    std::set_union(Items.begin(), Items.end(), Other.Items.begin(),
                   Other.Items.end(), std::back_inserter(R.Items));
    return R;
  }

  bool empty() const { return Items.empty(); }
  size_t size() const { return Items.size(); }

  auto begin() const { return Items.begin(); }
  auto end() const { return Items.end(); }

  friend bool operator==(const VarSet &A, const VarSet &B) {
    return A.Items == B.Items;
  }

private:
  std::vector<Symbol> Items;
};

} // namespace perceus

#endif // PERCEUS_ANALYSIS_VARSET_H
