//===- analysis/Verifier.h - IR well-formedness checks ----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural well-formedness checks for IR programs: scoping, constructor
/// arities, match-arm shape, capture-list accuracy, and program-wide binder
/// uniqueness (the alpha-renaming invariant the passes rely on).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_ANALYSIS_VERIFIER_H
#define PERCEUS_ANALYSIS_VERIFIER_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace perceus {

/// Verifies \p P; returns human-readable violations (empty when valid).
std::vector<std::string> verifyProgram(const Program &P);

/// Verifies a single function body.
std::vector<std::string> verifyFunction(const Program &P, FuncId F);

} // namespace perceus

#endif // PERCEUS_ANALYSIS_VERIFIER_H
