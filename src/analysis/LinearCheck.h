//===- analysis/LinearCheck.h - Linear ownership verification ---*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A static verifier of the linear resource discipline of lambda-1
/// (Figure 5 / Figure 8 of the paper): in RC-instrumented code, every
/// owned reference must be consumed exactly once on every control-flow
/// path, borrowed references may only be dup'ed, and no reference may be
/// used after the last owner released it.
///
/// The checker models the ownership-transfer semantics of the specialized
/// operations: `free x` and `&x` release only the cell and transfer each
/// field's reference to the corresponding pattern binder — exactly the
/// property that makes the fused fast paths of Figures 1d/1g sound.
///
/// All Perceus outputs (after any subset of the optimization passes) must
/// pass this checker; the property tests rely on it.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_ANALYSIS_LINEARCHECK_H
#define PERCEUS_ANALYSIS_LINEARCHECK_H

#include "ir/Program.h"
#include "perceus/Borrow.h"

#include <string>
#include <vector>

namespace perceus {

/// Checks every function of \p P; returns violations (empty when linear).
/// With \p Borrow, borrowed parameters are held (not consumed) by the
/// callee, and call sites pass borrowed-position variable arguments
/// without transferring ownership (the Section 6 extension).
std::vector<std::string>
checkLinearity(const Program &P, const BorrowSignatures *Borrow = nullptr);

/// Checks one function.
std::vector<std::string>
checkLinearity(const Program &P, FuncId F,
               const BorrowSignatures *Borrow = nullptr);

} // namespace perceus

#endif // PERCEUS_ANALYSIS_LINEARCHECK_H
