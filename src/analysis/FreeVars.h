//===- analysis/FreeVars.h - Free variable analysis -------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Free local variables of an expression (fv(e) in the paper, Figure 4).
/// Globals are static and do not count. The analysis memoizes per node,
/// since the Perceus insertion rules (Figure 8) query fv of subexpressions
/// repeatedly while splitting the owned environment.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_ANALYSIS_FREEVARS_H
#define PERCEUS_ANALYSIS_FREEVARS_H

#include "analysis/VarSet.h"
#include "ir/Expr.h"

#include <unordered_map>

namespace perceus {

/// Computes and caches free-variable sets.
class FreeVarAnalysis {
public:
  /// The free local variables of \p E.
  const VarSet &freeVars(const Expr *E);

  /// Convenience: is \p X free in \p E?
  bool isFreeIn(Symbol X, const Expr *E) { return freeVars(E).contains(X); }

  /// Drops all cached results (call after rewriting).
  void invalidate() { Cache.clear(); }

private:
  VarSet compute(const Expr *E);

  std::unordered_map<const Expr *, VarSet> Cache;
};

} // namespace perceus

#endif // PERCEUS_ANALYSIS_FREEVARS_H
