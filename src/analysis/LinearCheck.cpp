//===- analysis/LinearCheck.cpp - Linear ownership verification ------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LinearCheck.h"

#include "support/Casting.h"

#include <map>

using namespace perceus;

namespace {

/// Per-variable ownership state.
struct VarState {
  int Credits = 0;      ///< Owned references currently held.
  bool Borrowed = false; ///< Alive through an enclosing owner (match binder).
  bool Dead = false;     ///< No longer usable.
  bool IsToken = false;  ///< Reuse token: excluded from strict accounting.
  Symbol Parent;         ///< For binders: the scrutinee they project from.
};

/// Ordered map keyed by symbol id for deterministic error messages and
/// cheap whole-environment comparison at merge points.
using Env = std::map<Symbol, VarState>;

class LinearChecker {
public:
  LinearChecker(const Program &P, const BorrowSignatures *Borrow)
      : P(P), Borrow(Borrow) {}

  std::vector<std::string> Errors;

  std::string name(Symbol S) const { return std::string(P.symbols().name(S)); }

  void error(const std::string &Msg) {
    // Cap noise: one function can trip many cascading errors.
    if (Errors.size() < 64)
      Errors.push_back(Where + ": " + Msg);
  }

  bool alive(Env &E, Symbol X) {
    auto It = E.find(X);
    if (It == E.end())
      return false;
    const VarState &S = It->second;
    return !S.Dead && (S.Credits > 0 || S.Borrowed);
  }

  /// Marks \p X dead and revokes the borrows of its pattern binders.
  /// If \p TransferToChildren, each live binder of \p X inherits one
  /// credit (the semantics of `free`/`&x`).
  void die(Env &E, Symbol X, bool TransferToChildren) {
    auto It = E.find(X);
    if (It != E.end())
      It->second.Dead = true;
    for (auto &[Sym, S] : E) {
      if (S.Parent != X || !S.Borrowed)
        continue;
      S.Borrowed = false;
      if (TransferToChildren)
        S.Credits += 1;
      else if (S.Credits == 0)
        die(E, Sym, false);
    }
  }

  /// Consumes one owned credit of \p X via operation \p What.
  void consume(Env &E, Symbol X, const char *What,
               bool TransferToChildren = false) {
    auto It = E.find(X);
    if (It == E.end()) {
      error(std::string(What) + " of unbound variable '" + name(X) + "'");
      return;
    }
    VarState &S = It->second;
    if (S.Dead) {
      error(std::string(What) + " of dead variable '" + name(X) + "'");
      return;
    }
    if (S.Credits <= 0) {
      error(std::string(What) + " of variable '" + name(X) +
            "' without an owned reference");
      return;
    }
    S.Credits -= 1;
    if (S.Credits == 0 && !S.Borrowed)
      die(E, X, TransferToChildren);
    else if (TransferToChildren)
      error(std::string(What) + " on non-uniquely-owned '" + name(X) + "'");
  }

  void bind(Env &E, Symbol X, VarState S) { E[X] = S; }

  /// Checks \p A and \p B agree (the two sides of a branch merge).
  void requireMergeable(const Env &A, const Env &B, const char *What) {
    auto AI = A.begin();
    auto BI = B.begin();
    while (AI != A.end() && BI != B.end()) {
      if (AI->first != BI->first) {
        // A variable bound in only one branch (e.g. a token) is fine as
        // long as it carries no owned credits.
        const auto &[Sym, S] =
            (AI->first < BI->first) ? *AI : *BI;
        if (S.Credits != 0 && !S.IsToken)
          error(std::string(What) + ": variable '" + name(Sym) +
                "' owned on only one branch");
        (AI->first < BI->first) ? (void)++AI : (void)++BI;
        continue;
      }
      if (!AI->second.IsToken &&
          (AI->second.Credits != BI->second.Credits ||
           AI->second.Dead != BI->second.Dead))
        error(std::string(What) + ": branches disagree on ownership of '" +
              name(AI->first) + "' (" + std::to_string(AI->second.Credits) +
              (AI->second.Dead ? " dead" : "") + " vs " +
              std::to_string(BI->second.Credits) +
              (BI->second.Dead ? " dead" : "") + ")");
      ++AI;
      ++BI;
    }
    for (; AI != A.end(); ++AI)
      if (AI->second.Credits != 0 && !AI->second.IsToken)
        error(std::string(What) + ": variable '" + name(AI->first) +
              "' owned on only one branch");
    for (; BI != B.end(); ++BI)
      if (BI->second.Credits != 0 && !BI->second.IsToken)
        error(std::string(What) + ": variable '" + name(BI->first) +
              "' owned on only one branch");
  }

  /// Walks \p Ex in evaluation order, consuming from \p E.
  ///
  /// \p UniqueCtx names the variable tested by an enclosing
  /// `is-unique` whose then-branch we are inside (through a chain of RC
  /// statements only). On that unique path, dropping a borrowed,
  /// zero-credit binder of UniqueCtx is legal: it consumes the parent's
  /// field reference ahead of the `free`/`&x` (drop specialization,
  /// Section 2.3).
  void check(const Expr *Ex, Env &E, Symbol UniqueCtx = Symbol()) {
    switch (Ex->kind()) {
    case ExprKind::Lit:
    case ExprKind::Global:
    case ExprKind::NullToken:
      return;
    case ExprKind::Var:
      consume(E, cast<VarExpr>(Ex)->name(), "use");
      return;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(Ex);
      // The closure takes ownership of each captured reference.
      for (Symbol C : L->captures())
        consume(E, C, "capture");
      // The body runs later in a fresh environment owning captures+params.
      Env Inner;
      for (Symbol C : L->captures()) {
        VarState S;
        S.Credits += 1;
        auto It = Inner.find(C);
        if (It != Inner.end())
          It->second.Credits += 1; // multiset captures
        else
          Inner[C] = S;
      }
      for (Symbol Pm : L->params()) {
        VarState S;
        S.Credits = 1;
        Inner[Pm] = S;
      }
      check(L->body(), Inner);
      requireAllConsumed(Inner, "lambda body");
      return;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(Ex);
      check(A->fn(), E);
      const auto *G = dyn_cast<GlobalExpr>(A->fn());
      for (size_t I = 0; I != A->args().size(); ++I) {
        const Expr *Arg = A->args()[I];
        // A variable at a borrowed position is lent, not consumed.
        if (Borrow && G && I < (*Borrow)[G->func()].size() &&
            (*Borrow)[G->func()][I]) {
          if (const auto *V = dyn_cast<VarExpr>(Arg)) {
            if (!alive(E, V->name()))
              error("borrowed argument '" + name(V->name()) +
                    "' is dead or unbound");
            continue;
          }
        }
        check(Arg, E);
      }
      return;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(Ex);
      check(L->bound(), E);
      VarState S;
      S.Credits = 1;
      bind(E, L->name(), S);
      check(L->body(), E);
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(Ex);
      check(S->first(), E);
      check(S->second(), E);
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(Ex);
      check(I->cond(), E);
      Env ElseEnv = E;
      check(I->thenExpr(), E);
      check(I->elseExpr(), ElseEnv);
      requireMergeable(E, ElseEnv, "if");
      return;
    }
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(Ex);
      Symbol X = M->scrutinee();
      if (!alive(E, X))
        error("match on dead or unbound variable '" + name(X) + "'");
      bool First = true;
      Env Merged;
      for (const MatchArm &Arm : M->arms()) {
        Env ArmEnv = E;
        for (Symbol B : Arm.Binders) {
          VarState S;
          S.Borrowed = true;
          S.Parent = X;
          bind(ArmEnv, B, S);
        }
        check(Arm.Body, ArmEnv);
        // Binders must not carry credits out of their scope.
        for (Symbol B : Arm.Binders) {
          auto It = ArmEnv.find(B);
          if (It != ArmEnv.end()) {
            if (It->second.Credits != 0)
              error("match binder '" + name(B) +
                    "' leaks an owned reference");
            ArmEnv.erase(It);
          }
        }
        if (First) {
          Merged = std::move(ArmEnv);
          First = false;
        } else {
          requireMergeable(Merged, ArmEnv, "match");
        }
      }
      if (!First)
        E = std::move(Merged);
      return;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(Ex);
      for (const Expr *Arg : C->args())
        check(Arg, E);
      // `Con@ru` consumes the reuse token (fresh-allocating when null).
      if (C->hasReuseToken())
        consume(E, C->reuseToken(), "constructor reuse");
      return;
    }
    case ExprKind::Prim: {
      for (const Expr *Arg : cast<PrimExpr>(Ex)->args())
        check(Arg, E);
      return;
    }
    case ExprKind::Dup: {
      const auto *D = cast<DupExpr>(Ex);
      Symbol X = D->var();
      auto It = E.find(X);
      if (It == E.end() || (It->second.Dead) ||
          (It->second.Credits == 0 && !It->second.Borrowed))
        error("dup of dead or unbound variable '" + name(X) + "'");
      else if (!It->second.IsToken)
        It->second.Credits += 1;
      check(D->rest(), E, UniqueCtx);
      return;
    }
    case ExprKind::Drop: {
      Symbol X = cast<DropExpr>(Ex)->var();
      auto It = E.find(X);
      if (UniqueCtx.isValid() && It != E.end() && It->second.Borrowed &&
          It->second.Credits == 0 && It->second.Parent == UniqueCtx) {
        // Unique path: this drop releases the freed parent's field
        // reference; the binder is spent.
        It->second.Borrowed = false;
        It->second.Dead = true;
      } else {
        consume(E, X, "drop");
      }
      check(cast<DropExpr>(Ex)->rest(), E, UniqueCtx);
      return;
    }
    case ExprKind::DecRef:
      consume(E, cast<DecRefExpr>(Ex)->var(), "decref");
      check(cast<DecRefExpr>(Ex)->rest(), E, UniqueCtx);
      return;
    case ExprKind::Free:
      // Releases the cell only; field ownership transfers to the binders.
      consume(E, cast<FreeExpr>(Ex)->var(), "free",
              /*TransferToChildren=*/true);
      check(cast<FreeExpr>(Ex)->rest(), E, UniqueCtx);
      return;
    case ExprKind::ReuseAddr:
      consume(E, cast<ReuseAddrExpr>(Ex)->var(), "reuse-addr",
              /*TransferToChildren=*/true);
      return;
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(Ex);
      consume(E, D->var(), "drop-reuse");
      VarState S;
      S.Credits = 1;
      S.IsToken = true;
      bind(E, D->token(), S);
      check(D->rest(), E);
      return;
    }
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(Ex);
      if (!alive(E, U->var()))
        error("is-unique on dead or unbound variable '" + name(U->var()) +
              "'");
      Env ElseEnv = E;
      check(U->thenExpr(), E, U->var());
      check(U->elseExpr(), ElseEnv);
      requireMergeable(E, ElseEnv, "is-unique");
      return;
    }
    case ExprKind::IsNullToken: {
      const auto *N = cast<IsNullTokenExpr>(Ex);
      Env ElseEnv = E;
      // On the then (null) branch the token is known empty; its
      // obligation is discharged here. The else branch consumes it via
      // TokenValue.
      consume(E, N->token(), "null-token branch");
      check(N->thenExpr(), E);
      check(N->elseExpr(), ElseEnv);
      requireMergeable(E, ElseEnv, "token test");
      return;
    }
    case ExprKind::SetField: {
      const auto *F = cast<SetFieldExpr>(Ex);
      check(F->value(), E);
      check(F->rest(), E);
      return;
    }
    case ExprKind::TokenValue:
      consume(E, cast<TokenValueExpr>(Ex)->token(), "token value");
      // Kept fields statically absorb the binders' ownership back into
      // the reused cell (no runtime effect; see TokenValueExpr).
      for (Symbol K : cast<TokenValueExpr>(Ex)->keptFields())
        consume(E, K, "kept field");
      return;
    }
  }

  void requireAllConsumed(const Env &E, const char *What) {
    for (const auto &[Sym, S] : E) {
      if (S.IsToken)
        continue;
      if (S.Credits != 0)
        error(std::string(What) + " ends with '" + name(Sym) +
              "' still holding " + std::to_string(S.Credits) +
              " owned reference(s)");
    }
  }

  void checkFunction(FuncId F) {
    const FunctionDecl &Fn = P.function(F);
    Where = name(Fn.Name);
    if (!Fn.Body)
      return;
    Env E;
    for (size_t I = 0; I != Fn.Params.size(); ++I) {
      VarState S;
      if (Borrow && I < (*Borrow)[F].size() && (*Borrow)[F][I])
        S.Borrowed = true; // held for the caller; never consumed
      else
        S.Credits = 1;
      E[Fn.Params[I]] = S;
    }
    check(Fn.Body, E);
    requireAllConsumed(E, "function body");
  }

private:
  const Program &P;
  const BorrowSignatures *Borrow;
  std::string Where;
};

} // namespace

std::vector<std::string>
perceus::checkLinearity(const Program &P, const BorrowSignatures *Borrow) {
  LinearChecker C(P, Borrow);
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    C.checkFunction(F);
  return std::move(C.Errors);
}

std::vector<std::string>
perceus::checkLinearity(const Program &P, FuncId F,
                        const BorrowSignatures *Borrow) {
  LinearChecker C(P, Borrow);
  C.checkFunction(F);
  return std::move(C.Errors);
}
