//===- analysis/ImmediateAnalysis.h - Static immediacy proofs ---*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A whole-program analysis proving which RC statements operate on values
/// that can only ever be immediates (Int/Bool/Enum/FnRef/Unit). Value
/// types are never heap allocated (paper Section 2.7.1), so dup/drop/
/// decref on them are dynamic no-ops today — the bytecode peephole pass
/// uses this analysis to delete them statically.
///
/// The analysis runs an optimistic interprocedural fixpoint over three
/// families of facts, all on the two-point lattice {immediate, unknown}:
///
///   FieldImm[ctor][i]  — field i of ctor only ever holds an immediate.
///                        Constrained by every Con site (per-ctor precise),
///                        every SetField site (per-index, joined across
///                        all ctors: a reuse token's eventual constructor
///                        is not statically known here), and — because a
///                        reused cell keeps the unwritten fields of the
///                        same-arity cell it came from — each TokenValue
///                        ctor joins the fields of every arity-equal ctor.
///   ParamImm[f][i]     — parameter i of top-level f only receives
///                        immediates. Constrained by every direct
///                        full-arity call; functions whose reference
///                        escapes as a value get no assumptions.
///   RetImm[f]          — f only returns immediates.
///
/// Match binders take their immediacy from FieldImm of the arm's ctor,
/// which is what makes the analysis bite on the Figure-9 programs (their
/// hottest dups are on destructured int fields).
///
/// Soundness boundary: ParamImm/FieldImm assume every value entering the
/// program is an immediate and every heap cell was built by this
/// program's own constructor sites. Runs whose *entry* arguments include
/// heap references void that assumption — VM::run detects this and runs
/// the unoptimized code instead (see CompiledProgram::Peepholed).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_ANALYSIS_IMMEDIATEANALYSIS_H
#define PERCEUS_ANALYSIS_IMMEDIATEANALYSIS_H

#include "ir/Program.h"

#include <unordered_set>
#include <vector>

namespace perceus {

/// Result of the immediacy analysis over one Program.
struct ImmediateInfo {
  /// Dup/Drop/DecRef statement nodes whose operand is a proven
  /// immediate on every path that reaches them (shared subtrees are
  /// marked only when every occurrence qualifies). Free is never here:
  /// it disposes real memory.
  std::unordered_set<const Expr *> ElidableRcOps;

  /// Per-function bitmask (params 0..31) of parameters proven to only
  /// receive immediates at direct call sites. Informational.
  std::vector<uint32_t> ParamImmMask;

  /// How many fixpoint rounds the interprocedural loop took.
  uint32_t Rounds = 0;
};

/// Runs the analysis on \p P (after RC insertion — the interesting nodes
/// are the inserted dup/drop/decref statements).
ImmediateInfo analyzeImmediates(const Program &P);

} // namespace perceus

#endif // PERCEUS_ANALYSIS_IMMEDIATEANALYSIS_H
