//===- analysis/ImmediateAnalysis.cpp - Static immediacy proofs ----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/ImmediateAnalysis.h"

#include "support/Casting.h"

#include <unordered_map>

using namespace perceus;

namespace {

/// The two-point lattice: true = proven immediate, false = unknown.
/// Meet is logical AND; the fixpoint starts optimistic (all true) and
/// facts only ever fall, so termination is by bit count.
class Analyzer {
public:
  explicit Analyzer(const Program &P) : P(P) {
    FieldImm.resize(P.numCtors());
    for (CtorId C = 0; C != P.numCtors(); ++C)
      FieldImm[C].assign(P.ctor(C).Arity, true);
    ParamImm.resize(P.numFunctions());
    RetImm.assign(P.numFunctions(), true);
    for (FuncId F = 0; F != P.numFunctions(); ++F)
      ParamImm[F].assign(P.function(F).Params.size(), true);
    findEscapingFunctions();
  }

  ImmediateInfo run() {
    ImmediateInfo Info;
    do {
      Changed = false;
      ++Info.Rounds;
      for (FuncId F = 0; F != P.numFunctions(); ++F)
        analyzeFunction(F);
    } while (Changed);

    // One more pass with the converged facts to mark elidable RC ops.
    // A node shared between several contexts is marked only if every
    // visit proves its operand immediate (meet across visits).
    Marking = true;
    for (FuncId F = 0; F != P.numFunctions(); ++F)
      analyzeFunction(F);
    for (const auto &[E, Imm] : Marks)
      if (Imm)
        Info.ElidableRcOps.insert(E);

    Info.ParamImmMask.assign(P.numFunctions(), 0);
    for (FuncId F = 0; F != P.numFunctions(); ++F)
      for (size_t I = 0; I != ParamImm[F].size() && I != 32; ++I)
        if (ParamImm[F][I])
          Info.ParamImmMask[F] |= 1u << I;
    return Info;
  }

private:
  /// A function whose reference is used as a value (not the callee of a
  /// direct full-arity call) can be invoked through any closure call
  /// site, so its parameters get no assumptions.
  void findEscapingFunctions() {
    Escapes.assign(P.numFunctions(), false);
    for (FuncId F = 0; F != P.numFunctions(); ++F)
      if (P.function(F).Body)
        scanEscapes(P.function(F).Body);
    for (FuncId F = 0; F != P.numFunctions(); ++F)
      if (Escapes[F]) {
        ParamImm[F].assign(ParamImm[F].size(), false);
        RetImm[F] = false;
      }
  }

  void scanEscapes(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Var:
    case ExprKind::NullToken:
    case ExprKind::ReuseAddr:
    case ExprKind::TokenValue:
      return;
    case ExprKind::Global:
      Escapes[cast<GlobalExpr>(E)->func()] = true;
      return;
    case ExprKind::Lam:
      scanEscapes(cast<LamExpr>(E)->body());
      return;
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      const auto *G = dyn_cast<GlobalExpr>(A->fn());
      // The callee of a direct full-arity call does not escape.
      if (!G || P.function(G->func()).Params.size() != A->args().size())
        scanEscapes(A->fn());
      for (const Expr *Arg : A->args())
        scanEscapes(Arg);
      return;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      scanEscapes(L->bound());
      scanEscapes(L->body());
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      scanEscapes(S->first());
      scanEscapes(S->second());
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      scanEscapes(I->cond());
      scanEscapes(I->thenExpr());
      scanEscapes(I->elseExpr());
      return;
    }
    case ExprKind::Match:
      for (const MatchArm &Arm : cast<MatchExpr>(E)->arms())
        scanEscapes(Arm.Body);
      return;
    case ExprKind::Con:
      for (const Expr *Arg : cast<ConExpr>(E)->args())
        scanEscapes(Arg);
      return;
    case ExprKind::Prim:
      for (const Expr *Arg : cast<PrimExpr>(E)->args())
        scanEscapes(Arg);
      return;
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef:
      scanEscapes(cast<RcStmtExpr>(E)->rest());
      return;
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      scanEscapes(U->thenExpr());
      scanEscapes(U->elseExpr());
      return;
    }
    case ExprKind::DropReuse:
      scanEscapes(cast<DropReuseExpr>(E)->rest());
      return;
    case ExprKind::IsNullToken: {
      const auto *T = cast<IsNullTokenExpr>(E);
      scanEscapes(T->thenExpr());
      scanEscapes(T->elseExpr());
      return;
    }
    case ExprKind::SetField: {
      const auto *S = cast<SetFieldExpr>(E);
      scanEscapes(S->value());
      scanEscapes(S->rest());
      return;
    }
    }
  }

  void analyzeFunction(FuncId F) {
    const FunctionDecl &Fn = P.function(F);
    if (!Fn.Body)
      return;
    Env.clear();
    for (size_t I = 0; I != Fn.Params.size(); ++I)
      Env[Fn.Params[I]] = ParamImm[F][I];
    bool R = eval(Fn.Body);
    constrainRet(F, R);
  }

  void constrainField(CtorId C, uint32_t I, bool V) {
    if (!V && I < FieldImm[C].size() && FieldImm[C][I]) {
      FieldImm[C][I] = false;
      Changed = true;
    }
  }

  void constrainParam(FuncId F, size_t I, bool V) {
    if (!V && I < ParamImm[F].size() && ParamImm[F][I]) {
      ParamImm[F][I] = false;
      Changed = true;
    }
  }

  void constrainRet(FuncId F, bool V) {
    if (!V && RetImm[F]) {
      RetImm[F] = false;
      Changed = true;
    }
  }

  void bind(Symbol S, bool V) {
    // Binders are alpha-renamed unique, but rewritten trees may share
    // subtrees; meet across rebinds so sharing can only lose precision.
    auto It = Env.find(S);
    if (It == Env.end())
      Env.emplace(S, V);
    else
      It->second = It->second && V;
  }

  bool lookup(Symbol S) const {
    auto It = Env.find(S);
    return It != Env.end() && It->second;
  }

  /// Evaluates \p E to its immediacy, applying constraints along the way.
  bool eval(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lit:
      return true;
    case ExprKind::Var:
      return lookup(cast<VarExpr>(E)->name());
    case ExprKind::Global:
      return true; // FnRef: a static, non-heap value.
    case ExprKind::Lam: {
      // Analyze the body at the creation site: captures keep the
      // immediacy they have here (the closure snapshots these values),
      // parameters get no assumptions (any call site may invoke it).
      const auto *L = cast<LamExpr>(E);
      for (Symbol Param : L->params())
        bind(Param, false);
      eval(L->body());
      return false; // the closure itself is a heap cell
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      const auto *G = dyn_cast<GlobalExpr>(A->fn());
      if (G && P.function(G->func()).Params.size() == A->args().size()) {
        for (size_t I = 0; I != A->args().size(); ++I)
          constrainParam(G->func(), I, eval(A->args()[I]));
        return RetImm[G->func()];
      }
      eval(A->fn());
      for (const Expr *Arg : A->args())
        eval(Arg);
      return false;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      bind(L->name(), eval(L->bound()));
      return eval(L->body());
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      eval(S->first());
      return eval(S->second());
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      eval(I->cond());
      bool T = eval(I->thenExpr());
      bool F = eval(I->elseExpr());
      return T && F;
    }
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      bool R = true;
      for (const MatchArm &Arm : M->arms()) {
        if (Arm.Kind == ArmKind::Ctor)
          for (size_t I = 0; I != Arm.Binders.size(); ++I)
            bind(Arm.Binders[I], I < FieldImm[Arm.Ctor].size() &&
                                     FieldImm[Arm.Ctor][I]);
        R = eval(Arm.Body) && R;
      }
      return R;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      const CtorDecl &D = P.ctor(C->ctor());
      for (size_t I = 0; I != C->args().size(); ++I)
        constrainField(C->ctor(), static_cast<uint32_t>(I),
                       eval(C->args()[I]));
      return D.isEnumLike(); // nullary ctors are unboxed immediates
    }
    case ExprKind::Prim: {
      const auto *Pr = cast<PrimExpr>(E);
      for (const Expr *Arg : Pr->args())
        eval(Arg);
      switch (Pr->op()) {
      case PrimOp::RefNew:
      case PrimOp::RefGet:
        return false;
      default:
        return true; // ints, bools, unit
      }
    }
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::DecRef: {
      const auto *S = cast<RcStmtExpr>(E);
      if (Marking) {
        bool Imm = lookup(S->var());
        auto It = Marks.find(E);
        if (It == Marks.end())
          Marks.emplace(E, Imm);
        else
          It->second = It->second && Imm;
      }
      return eval(S->rest());
    }
    case ExprKind::Free:
      // Never elidable: disposes a real cell's memory.
      return eval(cast<RcStmtExpr>(E)->rest());
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      bool T = eval(U->thenExpr());
      bool F = eval(U->elseExpr());
      return T && F;
    }
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      bind(D->token(), false);
      return eval(D->rest());
    }
    case ExprKind::ReuseAddr:
    case ExprKind::NullToken:
      return false; // tokens are not immediates
    case ExprKind::IsNullToken: {
      const auto *T = cast<IsNullTokenExpr>(E);
      bool A = eval(T->thenExpr());
      bool B = eval(T->elseExpr());
      return A && B;
    }
    case ExprKind::SetField: {
      const auto *S = cast<SetFieldExpr>(E);
      bool V = eval(S->value());
      // The token's eventual constructor is not statically known here:
      // join the write into this field index of every ctor that has it.
      for (CtorId C = 0; C != P.numCtors(); ++C)
        constrainField(C, S->index(), V);
      return eval(S->rest());
    }
    case ExprKind::TokenValue: {
      // A reused cell keeps the unwritten fields of the same-arity cell
      // the token came from, so this ctor's field facts must cover every
      // arity-equal ctor's.
      const auto *T = cast<TokenValueExpr>(E);
      const CtorDecl &D = P.ctor(T->ctor());
      for (CtorId C = 0; C != P.numCtors(); ++C)
        if (C != T->ctor() && P.ctor(C).Arity == D.Arity)
          for (uint32_t I = 0; I != D.Arity; ++I)
            constrainField(T->ctor(), I, FieldImm[C][I]);
      return false;
    }
    }
    return false;
  }

  const Program &P;
  std::vector<std::vector<char>> FieldImm;
  std::vector<std::vector<char>> ParamImm;
  std::vector<char> RetImm;
  std::vector<char> Escapes;
  std::unordered_map<Symbol, bool> Env;
  std::unordered_map<const Expr *, bool> Marks;
  bool Changed = false;
  bool Marking = false;
};

} // namespace

ImmediateInfo perceus::analyzeImmediates(const Program &P) {
  return Analyzer(P).run();
}
