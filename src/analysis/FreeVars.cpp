//===- analysis/FreeVars.cpp - Free variable analysis ----------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/FreeVars.h"

#include "support/Casting.h"

using namespace perceus;

const VarSet &FreeVarAnalysis::freeVars(const Expr *E) {
  auto It = Cache.find(E);
  if (It != Cache.end())
    return It->second;
  VarSet S = compute(E);
  return Cache.emplace(E, std::move(S)).first->second;
}

VarSet FreeVarAnalysis::compute(const Expr *E) {
  VarSet S;
  switch (E->kind()) {
  case ExprKind::Lit:
  case ExprKind::Global:
  case ExprKind::NullToken:
    break;
  case ExprKind::Var:
    S.insert(cast<VarExpr>(E)->name());
    break;
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    S = freeVars(L->body());
    for (Symbol P : L->params())
      S.erase(P);
    break;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    S = freeVars(A->fn());
    for (const Expr *Arg : A->args())
      S.insertAll(freeVars(Arg));
    break;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    S = freeVars(L->body());
    S.erase(L->name());
    S.insertAll(freeVars(L->bound()));
    break;
  }
  case ExprKind::Seq: {
    const auto *Q = cast<SeqExpr>(E);
    S = freeVars(Q->first()).unite(freeVars(Q->second()));
    break;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    S = freeVars(I->cond())
            .unite(freeVars(I->thenExpr()))
            .unite(freeVars(I->elseExpr()));
    break;
  }
  case ExprKind::Match: {
    const auto *M = cast<MatchExpr>(E);
    S.insert(M->scrutinee());
    for (const MatchArm &Arm : M->arms()) {
      VarSet B = freeVars(Arm.Body);
      for (Symbol X : Arm.Binders)
        B.erase(X);
      S.insertAll(B);
    }
    break;
  }
  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    for (const Expr *Arg : C->args())
      S.insertAll(freeVars(Arg));
    if (C->hasReuseToken())
      S.insert(C->reuseToken());
    break;
  }
  case ExprKind::Prim: {
    const auto *Pr = cast<PrimExpr>(E);
    for (const Expr *Arg : Pr->args())
      S.insertAll(freeVars(Arg));
    break;
  }
  case ExprKind::Dup:
  case ExprKind::Drop:
  case ExprKind::Free:
  case ExprKind::DecRef: {
    const auto *R = cast<RcStmtExpr>(E);
    S = freeVars(R->rest());
    S.insert(R->var());
    break;
  }
  case ExprKind::IsUnique: {
    const auto *U = cast<IsUniqueExpr>(E);
    S = freeVars(U->thenExpr()).unite(freeVars(U->elseExpr()));
    S.insert(U->var());
    break;
  }
  case ExprKind::DropReuse: {
    const auto *D = cast<DropReuseExpr>(E);
    S = freeVars(D->rest());
    S.erase(D->token());
    S.insert(D->var());
    break;
  }
  case ExprKind::ReuseAddr:
    S.insert(cast<ReuseAddrExpr>(E)->var());
    break;
  case ExprKind::IsNullToken: {
    const auto *N = cast<IsNullTokenExpr>(E);
    S = freeVars(N->thenExpr()).unite(freeVars(N->elseExpr()));
    S.insert(N->token());
    break;
  }
  case ExprKind::SetField: {
    const auto *F = cast<SetFieldExpr>(E);
    S = freeVars(F->value()).unite(freeVars(F->rest()));
    S.insert(F->token());
    break;
  }
  case ExprKind::TokenValue: {
    const auto *T = cast<TokenValueExpr>(E);
    S.insert(T->token());
    for (Symbol K : T->keptFields())
      S.insert(K);
    break;
  }
  }
  return S;
}
