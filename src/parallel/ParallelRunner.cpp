//===- parallel/ParallelRunner.cpp - Worker-pool execution ---------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "parallel/ParallelRunner.h"

#include "bytecode/Compiler.h"
#include "bytecode/Peephole.h"
#include "bytecode/VM.h"
#include "eval/Machine.h"
#include "gc/MarkSweep.h"
#include "lang/Resolver.h"
#include "runtime/SharedPool.h"

#include <chrono>
#include <thread>

using namespace perceus;

namespace {
double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}
} // namespace

ParallelRunner::ParallelRunner(std::string_view Source,
                               const PassConfig &Config)
    : Config(Config) {
  Prog = std::make_unique<Program>();
  if (!compileSource(Source, *Prog, Diags))
    return;
  runPipeline(*Prog, Config);
  Layout.emplace(layoutProgram(*Prog));
  Ok = true;
}

ParallelRunner::~ParallelRunner() = default;

ParallelOutcome ParallelRunner::run(const EngineConfig &EC,
                                    std::string_view Entry,
                                    std::vector<Value> Args) {
  ParallelOutcome Out;
  if (!Ok) {
    Out.Error = "program failed to compile:\n" + Diags.str();
    return Out;
  }
  unsigned Workers = EC.Workers ? EC.Workers : 1;

  // All symbol interning — and, for the VM, the one shared bytecode
  // compilation — happens here, before any thread exists: the Program
  // and CompiledProgram are strictly read-only once workers run.
  FuncId EntryFn = Prog->findFunction(Prog->symbols().intern(Entry));
  if (EntryFn == InvalidId) {
    Out.Error = "no such entry function: " + std::string(Entry);
    return Out;
  }
  if (EC.Engine == EngineKind::Vm && !Compiled) {
    Compiled.emplace(compileProgram(*Prog, *Layout));
    // The peephole flag is captured by whichever run compiles first (the
    // CompiledProgram is cached across runs). Shared-segment runs stay
    // correct either way: every worker's entry args include the shared
    // heap reference, so VM::run falls back to the raw chunks.
    if (EC.Peephole)
      runPeephole(*Compiled);
  }

  auto makeEngine = [&](Heap &H) -> std::unique_ptr<Engine> {
    if (EC.Engine == EngineKind::Vm)
      return std::make_unique<VM>(*Compiled, H);
    return std::make_unique<Machine>(*Prog, *Layout, H);
  };

  bool HasShared = !EC.SharedBuilder.empty();
  FuncId Builder = InvalidId;
  if (HasShared) {
    if (Config.Mode == RcMode::None) {
      Out.Error = "shared-input mode requires a reference-counting "
                  "configuration (the tracing collector has no tshare)";
      return Out;
    }
    Builder = Prog->findFunction(Prog->symbols().intern(EC.SharedBuilder));
    if (Builder == InvalidId) {
      Out.Error = "no such shared-input builder: " + EC.SharedBuilder;
      return Out;
    }
  }

  // Phase 1: build the shared segment on the owner heap. The registry
  // enables the post-join leak sweep; the result is kept alive past the
  // engine's final result drop by the inspector's dup, then published
  // with markShared — after this point every RC update on the segment is
  // atomic, from any thread.
  Heap Owner(HeapMode::Rc, EC.GcThresholdBytes);
  Value Root = Value::unit();
  if (HasShared) {
    Owner.enableCellRegistry();
    std::unique_ptr<Engine> B = makeEngine(Owner);
    B->setResultInspector([&](Value V) {
      Root = V;
      Owner.dup(V);
    });
    RunResult BR = B->run(Builder, EC.SharedArgs);
    if (!BR.Ok) {
      Out.Error = "shared-input builder trapped: " + BR.Error;
      return Out;
    }
    Owner.markShared(Root);
    // One reference per worker (callee-owns: each worker's entry call
    // consumes the reference its argument carries). The dups are issued
    // here, single-threaded, so the owner still has exclusive access.
    for (unsigned W = 0; W != Workers; ++W)
      Owner.dup(Root);
  }

  // Phase 2: run the workers. Each owns a private heap and engine;
  // frees of foreign shared cells park in the pool. Workers write their
  // outcomes into cache-line-padded slots — the elements of Out.Workers
  // are adjacent, and per-worker stores during the run must not bounce a
  // line between cores (the same false-sharing rule as the pool shards).
  SharedCellPool Pool;
  struct alignas(64) PaddedOutcome {
    WorkerOutcome WO;
  };
  std::vector<PaddedOutcome> Slots(Workers);
  HeapMode WorkerMode =
      Config.Mode == RcMode::None ? HeapMode::Gc : HeapMode::Rc;
  auto T0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> Threads;
    Threads.reserve(Workers);
    for (unsigned W = 0; W != Workers; ++W) {
      Threads.emplace_back([&, W] {
        WorkerOutcome &WO = Slots[W].WO;
        Heap H(WorkerMode, EC.GcThresholdBytes);
        H.setSharedPool(&Pool);
        // Coalesce the shared-count traffic: net deltas accumulate in a
        // per-worker buffer and flush in batches (engine safepoints, the
        // unconditional post-run flush below, and trap unwinds inside
        // run()). Safe here because the owner retains its root reference
        // until after join — no shared count can reach zero out from
        // under a worker's pending increment (DESIGN.md §7d).
        if (HasShared)
          H.enableSharedCoalescing();
        H.setLimits(EC.Limits.Heap);
        std::unique_ptr<Engine> M = makeEngine(H);
        M->setStepLimit(EC.Limits.Fuel);
        M->setCallDepthLimit(EC.Limits.MaxCallDepth);
        M->setDeadline(EC.Limits.DeadlineMs);
        if (H.mode() == HeapMode::Gc) {
          Engine *E = M.get();
          attachCollector(H, [E](const std::function<void(Value)> &Fn) {
            E->enumerateRoots(Fn);
          });
        }
        std::vector<Value> WArgs = Args;
        if (HasShared)
          WArgs.push_back(Root);
        auto W0 = std::chrono::steady_clock::now();
        WO.Run = M->run(EntryFn, std::move(WArgs));
        // Every buffered delta must be published before this worker's
        // stats and heap-empty flag are read at join.
        H.flushSharedDeltas();
        WO.Seconds = secondsSince(W0);
        WO.Heap = H.stats();
        WO.HeapEmpty = H.empty();
      });
    }
    for (std::thread &T : Threads)
      T.join();
  }
  Out.Seconds = secondsSince(T0);
  // Every thread that could park has joined: quiesce the pool, making
  // parkedCells() exact and any late park() a checked contract violation.
  Pool.setQuiesced(true);
  Out.Workers.resize(Workers);
  for (unsigned W = 0; W != Workers; ++W)
    Out.Workers[W] = std::move(Slots[W].WO);

  // Phase 3: join bookkeeping, single-threaded again. Absorb the pool
  // (reconciling the owner's live-cell accounting), release the owner's
  // own reference, and — when trapped workers leaked references into the
  // segment — sweep the stragglers via the registry so the garbage-free
  // guarantee holds across threads too.
  Out.Ok = true;
  for (WorkerOutcome &WO : Out.Workers) {
    Out.Ok = Out.Ok && WO.Run.Ok;
    accumulate(Out.Combined, WO.Heap);
  }
  if (HasShared) {
    Owner.absorbSharedFrees(Pool);
    Owner.drop(Root);
    if (!Owner.empty())
      Out.SharedLeaked = Owner.reclaimLeaked();
    Out.Shared = Owner.stats();
  }
  Out.AllHeapsEmpty = Owner.empty();
  for (const WorkerOutcome &WO : Out.Workers)
    Out.AllHeapsEmpty = Out.AllHeapsEmpty && WO.HeapEmpty;
  return Out;
}
