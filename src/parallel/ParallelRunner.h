//===- parallel/ParallelRunner.h - Worker-pool execution --------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A worker-pool engine that executes N engine instances concurrently —
/// the execution layer that puts Section 2.7.2's thread-shared counts
/// under *real* threads.
///
/// The program is compiled once (parse, pipeline, layout — plus one
/// shared bytecode image when the VM engine is selected); the resulting
/// Program, ProgramLayout and CompiledProgram are read-only at run time
/// and shared by all workers. Each worker owns a private Heap and engine
/// for its working set, so thread-local counts stay non-atomic.
/// Optionally a **shared segment** is built first: a builder function
/// runs on a dedicated owner heap, its result is published with
/// `markShared` (the paper's `tshare` contract — counts flip negative,
/// all further RC updates are atomic), and every worker receives the
/// shared root as its entry function's final argument. Workers
/// dup/drop/decref the segment concurrently; when one of them observes
/// the last reference its heap parks the cell in a SharedCellPool, which
/// the owner heap absorbs after join (see runtime/SharedPool.h).
///
/// The join merges per-worker HeapStats into one combined view and
/// enforces the garbage-free guarantee across threads: every worker heap
/// and the shared owner heap must be empty after every run — including
/// runs where workers trapped, in which case the owner sweeps leaked
/// shared cells via its cell registry (Heap::reclaimLeaked).
///
/// Contract: worker programs must not call `tshare` themselves when a
/// shared segment is configured — the engine performs the sharing on
/// their behalf, exactly once, before any worker starts.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PARALLEL_PARALLELRUNNER_H
#define PERCEUS_PARALLEL_PARALLELRUNNER_H

#include "bytecode/Bytecode.h"
#include "eval/Engine.h"
#include "eval/EngineConfig.h"
#include "eval/Layout.h"
#include "perceus/Pipeline.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace perceus {

/// One worker's results after join.
struct WorkerOutcome {
  RunResult Run;         ///< the engine's run result (trap, checksum, rc)
  HeapStats Heap;        ///< the worker heap's final statistics
  double Seconds = 0;    ///< this worker's own wall clock
  bool HeapEmpty = false;///< Heap::empty() held after the run
};

/// The whole run's results after join.
struct ParallelOutcome {
  bool Ok = false;            ///< every worker ran to completion
  std::string Error;          ///< setup failure (compile, lookup, builder)
  std::vector<WorkerOutcome> Workers;
  HeapStats Combined;         ///< field-wise sum of worker heap stats
  HeapStats Shared;           ///< owner-heap stats after absorb/sweep
  double Seconds = 0;         ///< wall clock spawn-to-join
  bool AllHeapsEmpty = false; ///< workers' and owner's Heap::empty()
  uint64_t SharedLeaked = 0;  ///< shared cells swept after trapped
                              ///< workers (0 on clean runs)
};

/// See the file comment.
class ParallelRunner {
public:
  /// Compiles \p Source under \p Config once for all workers. Check
  /// `ok()` before running.
  ParallelRunner(std::string_view Source, const PassConfig &Config);
  ~ParallelRunner();
  ParallelRunner(const ParallelRunner &) = delete;
  ParallelRunner &operator=(const ParallelRunner &) = delete;

  bool ok() const { return Ok; }
  const DiagnosticEngine &diagnostics() const { return Diags; }
  Program &program() { return *Prog; }
  const PassConfig &config() const { return Config; }

  /// Executes \p EC.Workers engines of kind \p EC.Engine concurrently,
  /// each calling \p Entry on \p Args (plus the shared root when
  /// \p EC.SharedBuilder is set); blocks until all joined. May be called
  /// repeatedly. EC's injector/sink hooks are single-engine facilities
  /// and are not installed on worker heaps.
  ParallelOutcome run(const EngineConfig &EC, std::string_view Entry = "main",
                      std::vector<Value> Args = {});

private:
  PassConfig Config;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> Prog;
  std::optional<ProgramLayout> Layout;
  std::optional<CompiledProgram> Compiled; // VM engine, compiled on demand
  bool Ok = false;
};

} // namespace perceus

#endif // PERCEUS_PARALLEL_PARALLELRUNNER_H
