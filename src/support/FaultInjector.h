//===- support/FaultInjector.h - Deterministic fault injection --*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault injection for the resource governor. The heap
/// consults an installed injector once per allocation attempt; when the
/// injector says "fail", the allocation reports out-of-memory instead of
/// returning a cell. Two policies cover the test patterns we need:
///
///   * failNth(k): the k-th attempt (1-based) fails, everything else
///     succeeds. Driving k across the full allocation count of a program
///     is the SQLite-style exhaustive OOM sweep
///     (tests/integration/fault_sweep_test.cpp).
///   * probabilistic(seed, num, den): each attempt independently fails
///     with probability num/den, reproducibly from a seeded Rng.
///
/// Injectors are cheap value types; the heap holds a non-owning pointer
/// so a test can keep the injector on its stack and inspect the attempt
/// counters after the run.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_FAULTINJECTOR_H
#define PERCEUS_SUPPORT_FAULTINJECTOR_H

#include "support/Rng.h"

#include <cstdint>

namespace perceus {

/// Decides, per allocation attempt, whether to inject a failure.
class FaultInjector {
public:
  /// Fails the \p N-th attempt (1-based); all other attempts succeed.
  /// N == 0 never fails (a pure attempt counter).
  static FaultInjector failNth(uint64_t N) {
    FaultInjector F;
    F.FailAt = N;
    return F;
  }

  /// Fails each attempt independently with probability Num/Den.
  static FaultInjector probabilistic(uint64_t Seed, uint64_t Num,
                                     uint64_t Den) {
    FaultInjector F;
    F.Seed0 = Seed;
    F.R = Rng(Seed);
    F.Num = Num;
    F.Den = Den;
    return F;
  }

  /// Called by the heap once per allocation attempt. Counts the attempt
  /// and returns true when it should fail.
  bool shouldFailAllocation() {
    ++Attempts;
    bool Fail = false;
    if (FailAt)
      Fail = Attempts == FailAt;
    else if (Den)
      Fail = R.chance(Num, Den);
    if (Fail)
      ++Injected;
    return Fail;
  }

  /// Allocation attempts observed so far (including failed ones).
  uint64_t attempts() const { return Attempts; }

  /// Failures injected so far.
  uint64_t injected() const { return Injected; }

  /// Rewinds the counters (and the probabilistic stream) so the same
  /// injector can govern a fresh run.
  void reset() {
    Attempts = Injected = 0;
    if (Den)
      R = Rng(Seed0);
  }

private:
  FaultInjector() = default;

  uint64_t FailAt = 0; ///< failNth policy; 0 = disabled
  uint64_t Num = 0, Den = 0, Seed0 = 0;
  Rng R{0};
  uint64_t Attempts = 0;
  uint64_t Injected = 0;
};

} // namespace perceus

#endif // PERCEUS_SUPPORT_FAULTINJECTOR_H
