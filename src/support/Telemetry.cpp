//===- support/Telemetry.cpp - Per-site RC event attribution --------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/JsonWriter.h"

#include <algorithm>
#include <cstdio>

namespace perceus {

const char *rcEventName(RcEvent E) {
  switch (E) {
  case RcEvent::DupCall:
    return "dup";
  case RcEvent::DropCall:
    return "drop";
  case RcEvent::DecRefCall:
    return "decref";
  case RcEvent::IsUniqueCall:
    return "is_unique";
  case RcEvent::Alloc:
    return "alloc";
  case RcEvent::Free:
    return "free";
  case RcEvent::ReuseHit:
    return "reuse_hit";
  case RcEvent::ReuseMiss:
    return "reuse_miss";
  }
  return "?";
}

StatsSink::~StatsSink() = default;

void CountingSink::record(RcEvent E, size_t Bytes) {
  ++Counts[static_cast<unsigned>(E)];
  switch (E) {
  case RcEvent::Alloc:
    ShadowLive += Bytes;
    ShadowPeak = std::max(ShadowPeak, ShadowLive);
    break;
  case RcEvent::Free:
    // A free larger than the shadow balance means the heap freed bytes
    // the sink never saw allocated — clamp so the mismatch shows up as
    // a live-byte discrepancy rather than wraparound.
    ShadowLive -= std::min(ShadowLive, Bytes);
    break;
  default:
    break;
  }
}

SiteTableSink::Row &SiteTableSink::rowFor(const void *Site) {
  if (!Site)
    return Orphan;
  if (Site == LastSite && LastSlot < Rows.size())
    return Rows[LastSlot];
  auto [It, Inserted] = Index.try_emplace(Site, Rows.size());
  if (Inserted) {
    Row R;
    R.Site = Site;
    R.Label = CurLabel ? CurLabel : "?";
    R.Loc = CurLoc;
    Rows.push_back(std::move(R));
  }
  LastSite = Site;
  LastSlot = It->second;
  return Rows[LastSlot];
}

void SiteTableSink::record(RcEvent E, size_t Bytes) {
  Row &R = rowFor(CurSite);
  ++R.Counts[static_cast<unsigned>(E)];
  if (E == RcEvent::Alloc)
    R.Bytes += Bytes;
}

void SiteTableSink::writeJson(JsonWriter &W) const {
  auto emitRow = [&W](const Row &R, bool Attributed) {
    W.beginObject();
    if (Attributed) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%p", R.Site);
      W.member("site", std::string_view(Buf));
      W.member("label", std::string_view(R.Label));
      W.member("line", R.Loc.Line);
      W.member("col", R.Loc.Col);
    } else {
      W.key("site").null();
      W.member("label", "unattributed");
      W.member("line", 0u);
      W.member("col", 0u);
    }
    for (unsigned I = 0; I < NumRcEvents; ++I)
      W.member(rcEventName(static_cast<RcEvent>(I)), R.Counts[I]);
    W.member("bytes", R.Bytes);
    W.endObject();
  };

  W.beginArray();
  for (const Row &R : Rows)
    emitRow(R, /*Attributed=*/true);
  bool OrphanUsed = false;
  for (uint64_t C : Orphan.Counts)
    OrphanUsed |= C != 0;
  if (OrphanUsed)
    emitRow(Orphan, /*Attributed=*/false);
  W.endArray();
}

std::string SiteTableSink::toText() const {
  std::string Out;
  char Line[256];
  std::snprintf(Line, sizeof(Line), "%-14s %5s %5s  %8s %8s %8s %8s %8s %8s\n",
                "label", "line", "col", "dup", "drop", "decref", "alloc",
                "reuse+", "bytes");
  Out += Line;
  auto emit = [&](const Row &R, const char *Label) {
    std::snprintf(
        Line, sizeof(Line),
        "%-14s %5u %5u  %8llu %8llu %8llu %8llu %8llu %8llu\n", Label,
        R.Loc.Line, R.Loc.Col,
        (unsigned long long)R.Counts[(unsigned)RcEvent::DupCall],
        (unsigned long long)R.Counts[(unsigned)RcEvent::DropCall],
        (unsigned long long)R.Counts[(unsigned)RcEvent::DecRefCall],
        (unsigned long long)R.Counts[(unsigned)RcEvent::Alloc],
        (unsigned long long)R.Counts[(unsigned)RcEvent::ReuseHit],
        (unsigned long long)R.Bytes);
    Out += Line;
  };
  for (const Row &R : Rows)
    emit(R, R.Label.c_str());
  for (uint64_t C : Orphan.Counts)
    if (C != 0) {
      emit(Orphan, "<unattributed>");
      break;
    }
  return Out;
}

} // namespace perceus
