//===- support/Symbol.h - Interned identifiers ------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers. A Symbol is a dense 32-bit id; the SymbolTable
/// owns the backing strings. Every binder in a resolved program carries a
/// unique Symbol (alpha-renamed), which lets downstream passes use plain
/// dense arrays keyed by symbol id.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_SYMBOL_H
#define PERCEUS_SUPPORT_SYMBOL_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace perceus {

/// A lightweight interned identifier. Value-semantic; compares by id.
class Symbol {
public:
  Symbol() = default;

  bool isValid() const { return Id != 0; }
  explicit operator bool() const { return isValid(); }

  uint32_t id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

  static Symbol fromId(uint32_t Id) {
    Symbol S;
    S.Id = Id;
    return S;
  }

private:
  uint32_t Id = 0; // 0 is the invalid sentinel.
};

/// Interns strings into Symbols and mints fresh (unique) symbols.
///
/// Fresh symbols keep a base name for printing but never collide with any
/// interned name or other fresh symbol.
class SymbolTable {
public:
  SymbolTable() {
    // Reserve id 0 as invalid.
    Names.emplace_back();
  }

  /// Returns the symbol for \p Name, interning it on first use.
  Symbol intern(std::string_view Name) {
    auto It = Map.find(std::string(Name));
    if (It != Map.end())
      return It->second;
    Symbol S = Symbol::fromId(static_cast<uint32_t>(Names.size()));
    Names.emplace_back(Name);
    Map.emplace(std::string(Name), S);
    return S;
  }

  /// Mints a brand new symbol whose printed name derives from \p Base.
  /// The result never compares equal to any other symbol.
  Symbol fresh(std::string_view Base) {
    Symbol S = Symbol::fromId(static_cast<uint32_t>(Names.size()));
    Names.emplace_back(std::string(Base) + "." +
                       std::to_string(FreshCounter++));
    return S;
  }

  /// The printed name of \p S.
  std::string_view name(Symbol S) const {
    assert(S.id() < Names.size() && "unknown symbol");
    return Names[S.id()];
  }

  /// Number of symbols minted so far (ids are < this bound).
  uint32_t size() const { return static_cast<uint32_t>(Names.size()); }

private:
  std::vector<std::string> Names;
  std::unordered_map<std::string, Symbol> Map;
  uint32_t FreshCounter = 0;
};

} // namespace perceus

template <> struct std::hash<perceus::Symbol> {
  size_t operator()(perceus::Symbol S) const noexcept {
    return std::hash<uint32_t>()(S.id());
  }
};

#endif // PERCEUS_SUPPORT_SYMBOL_H
