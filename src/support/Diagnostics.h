//===- support/Diagnostics.h - Error reporting ------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink. The library never throws or
/// prints; errors accumulate in a DiagnosticEngine and callers decide what
/// to do with them.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_DIAGNOSTICS_H
#define PERCEUS_SUPPORT_DIAGNOSTICS_H

#include <cstdint>
#include <string>
#include <vector>

namespace perceus {

/// A 1-based line/column source position. Line 0 means "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
};

/// Severity of a diagnostic.
enum class DiagKind { Error, Warning, Note };

/// One reported diagnostic.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced by the front end and the passes.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagKind::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "line:col: severity: message" lines.
  std::string str() const {
    std::string Out;
    for (const Diagnostic &D : Diags) {
      if (D.Loc.isValid()) {
        Out += std::to_string(D.Loc.Line) + ":" + std::to_string(D.Loc.Col) +
               ": ";
      }
      switch (D.Kind) {
      case DiagKind::Error:
        Out += "error: ";
        break;
      case DiagKind::Warning:
        Out += "warning: ";
        break;
      case DiagKind::Note:
        Out += "note: ";
        break;
      }
      Out += D.Message;
      Out += '\n';
    }
    return Out;
  }

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace perceus

#endif // PERCEUS_SUPPORT_DIAGNOSTICS_H
