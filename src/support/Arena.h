//===- support/Arena.h - Bump-pointer arena allocator -----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple bump-pointer arena used for allocating IR nodes. Objects
/// allocated in an arena are never individually freed; the whole arena is
/// released at once when it is destroyed. Trivially-destructible payloads
/// only (IR nodes keep their variable-length parts in the arena as well).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_ARENA_H
#define PERCEUS_SUPPORT_ARENA_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace perceus {

/// A bump-pointer allocator with geometrically growing slabs.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    assert((Align & (Align - 1)) == 0 && "alignment must be a power of two");
    uintptr_t P = (Cur + Align - 1) & ~uintptr_t(Align - 1);
    if (P + Size > End) {
      growSlab(Size + Align);
      P = (Cur + Align - 1) & ~uintptr_t(Align - 1);
    }
    Cur = P + Size;
    BytesAllocated += Size;
    return reinterpret_cast<void *>(P);
  }

  /// Constructs a \p T in the arena, forwarding \p Args to its constructor.
  template <typename T, typename... Args> T *make(Args &&...As) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(As)...);
  }

  /// Allocates an uninitialized array of \p N objects of type \p T.
  template <typename T> T *allocateArray(size_t N) {
    if (N == 0)
      return nullptr;
    return static_cast<T *>(allocate(sizeof(T) * N, alignof(T)));
  }

  /// Copies \p N elements from \p Src into the arena and returns the copy.
  template <typename T> T *copyArray(const T *Src, size_t N) {
    T *Dst = allocateArray<T>(N);
    for (size_t I = 0; I != N; ++I)
      new (Dst + I) T(Src[I]);
    return Dst;
  }

  /// Total payload bytes handed out so far (excludes slab slack).
  size_t bytesAllocated() const { return BytesAllocated; }

  /// Number of slabs owned by this arena.
  size_t numSlabs() const { return Slabs.size(); }

private:
  void growSlab(size_t MinBytes) {
    size_t SlabSize = Slabs.empty() ? 4096 : SlabBytes * 2;
    if (SlabSize < MinBytes)
      SlabSize = MinBytes;
    SlabBytes = SlabSize;
    Slabs.push_back(std::make_unique<char[]>(SlabSize));
    Cur = reinterpret_cast<uintptr_t>(Slabs.back().get());
    End = Cur + SlabSize;
  }

  std::vector<std::unique_ptr<char[]>> Slabs;
  uintptr_t Cur = 0;
  uintptr_t End = 0;
  size_t SlabBytes = 0;
  size_t BytesAllocated = 0;
};

} // namespace perceus

#endif // PERCEUS_SUPPORT_ARENA_H
