//===- support/Telemetry.h - Per-site RC event attribution ------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry hook that makes every reference-count event attributable
/// to the IR instruction that caused it.
///
/// Design constraints, in order:
///
///  1. The unhooked fast path must stay free: the heap keeps a single
///     `StatsSink *` that is null in ordinary runs, and every event site
///     is a predicted-false `if (Sink)` branch — the same pattern as the
///     PR 1 resource governor's `Governed` flag.
///  2. No dependency inversion: `support` must not know about `ir`, so a
///     site is an opaque `const void *` (in practice the `Expr *` of the
///     RC instruction) plus a static label and a `SourceLoc`.
///  3. Events are recorded at the heap's public API boundary, *before*
///     classification — so a sink sees exactly the calls the machine
///     made, and the stats-invariant test can check the heap's
///     classification counters against them.
///
/// Event vocabulary:
///
///   DupCall / DropCall / DecRefCall / IsUniqueCall — one per call of the
///     corresponding `Heap` entry point, regardless of how the heap
///     classifies it (heap cell, non-heap immediate, GC mode). Internal
///     cascades (dropping children of a freed cell) are NOT events, to
///     match the API-level semantics of `HeapStats`.
///   Alloc / Free — cell lifetime, with the payload size in bytes so a
///     sink can shadow the heap's LiveBytes/PeakBytes accounting.
///   ReuseHit / ReuseMiss — reuse-token consumption in `Con@ru`. A hit
///     deliberately emits neither Alloc nor Free: in-place reuse must
///     leave LiveBytes unchanged (the satellite-6 invariant).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_TELEMETRY_H
#define PERCEUS_SUPPORT_TELEMETRY_H

#include "support/Diagnostics.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace perceus {

class JsonWriter;

/// What happened. See the file comment for exact semantics.
enum class RcEvent : uint8_t {
  DupCall,
  DropCall,
  DecRefCall,
  IsUniqueCall,
  Alloc,
  Free,
  ReuseHit,
  ReuseMiss,
};

constexpr unsigned NumRcEvents = 8;

/// Printable name of an event kind ("dup", "alloc", ...).
const char *rcEventName(RcEvent E);

/// Receiver for RC events. Non-owning and externally synchronized: the
/// heap and machine call it from the interpreter thread only.
class StatsSink {
public:
  virtual ~StatsSink();

  /// Stamps the site subsequent events are attributed to. The machine
  /// calls this right before executing an RC/alloc instruction; events
  /// recorded until the next stamp belong to that site. \p Site is an
  /// opaque identity (the instruction's `Expr *`), \p Label a static
  /// string ("dup", "con@ru", "app", ...), \p Loc its surface location.
  void setSite(const void *Site, const char *Label, SourceLoc Loc) {
    CurSite = Site;
    CurLabel = Label;
    CurLoc = Loc;
  }

  /// Records one event. \p Bytes is the payload size for Alloc/Free and
  /// ReuseHit, zero otherwise.
  virtual void record(RcEvent E, size_t Bytes) = 0;

protected:
  const void *CurSite = nullptr;
  const char *CurLabel = nullptr;
  SourceLoc CurLoc{};
};

/// Sink that only tallies event totals, plus a shadow byte ledger
/// reconstructed purely from Alloc/Free events. The stats-invariant and
/// reuse-accounting tests compare these against the heap's own counters:
/// if the heap ever double-counts a reuse or leaks an alloc past the
/// hook, the two ledgers disagree.
class CountingSink : public StatsSink {
public:
  void record(RcEvent E, size_t Bytes) override;

  uint64_t count(RcEvent E) const {
    return Counts[static_cast<unsigned>(E)];
  }
  uint64_t totalRcCalls() const {
    return count(RcEvent::DupCall) + count(RcEvent::DropCall) +
           count(RcEvent::DecRefCall) + count(RcEvent::IsUniqueCall);
  }

  /// Shadow ledger: bytes currently live / high-water mark, as implied
  /// by the event stream alone.
  size_t shadowLiveBytes() const { return ShadowLive; }
  size_t shadowPeakBytes() const { return ShadowPeak; }

private:
  uint64_t Counts[NumRcEvents] = {};
  size_t ShadowLive = 0;
  size_t ShadowPeak = 0;
};

/// Sink that builds a per-site table: for every stamping site, how many
/// of each event it caused. This is the `perc --stats-json` payload and
/// the bench_reuse per-site report.
class SiteTableSink : public StatsSink {
public:
  struct Row {
    const void *Site = nullptr;
    std::string Label;
    SourceLoc Loc;
    uint64_t Counts[NumRcEvents] = {};
    uint64_t Bytes = 0; ///< total bytes allocated at this site
  };

  void record(RcEvent E, size_t Bytes) override;

  const std::vector<Row> &rows() const { return Rows; }
  const Row &unattributed() const { return Orphan; }

  /// Emits the table as a JSON array value (caller owns surrounding
  /// object structure): [{"site":"0x..","label":..,"line":..,"col":..,
  /// "dup":..,...,"bytes":..}, ...].
  void writeJson(JsonWriter &W) const;

  /// Human-readable table, one line per site, for stderr reports.
  std::string toText() const;

private:
  Row &rowFor(const void *Site);

  std::vector<Row> Rows; // insertion order, for stable reports
  std::unordered_map<const void *, size_t> Index; // Site -> Rows slot
  Row Orphan;            // events recorded with no site stamped
  const void *LastSite = nullptr;
  size_t LastSlot = 0;   // one-entry cache: sites repeat in loops
};

} // namespace perceus

#endif // PERCEUS_SUPPORT_TELEMETRY_H
