//===- support/JsonWriter.cpp - Minimal JSON emitter and parser -----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/JsonWriter.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace perceus {

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::beforeValue() {
  if (Stack.empty())
    return;
  Frame &F = Stack.back();
  if (F.S == Scope::Object) {
    assert(PendingKey && "object member emitted without key()");
    PendingKey = false;
    return;
  }
  if (!F.First)
    Out += ',';
  F.First = false;
}

void JsonWriter::writeEscaped(std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

JsonWriter &JsonWriter::beginObject() {
  beforeValue();
  Out += '{';
  Stack.push_back({Scope::Object, true});
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  assert(!Stack.empty() && Stack.back().S == Scope::Object && !PendingKey);
  Stack.pop_back();
  Out += '}';
  return *this;
}

JsonWriter &JsonWriter::beginArray() {
  beforeValue();
  Out += '[';
  Stack.push_back({Scope::Array, true});
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  assert(!Stack.empty() && Stack.back().S == Scope::Array);
  Stack.pop_back();
  Out += ']';
  return *this;
}

JsonWriter &JsonWriter::key(std::string_view K) {
  assert(!Stack.empty() && Stack.back().S == Scope::Object && !PendingKey);
  Frame &F = Stack.back();
  if (!F.First)
    Out += ',';
  F.First = false;
  writeEscaped(K);
  Out += ':';
  PendingKey = true;
  return *this;
}

JsonWriter &JsonWriter::value(std::string_view S) {
  beforeValue();
  writeEscaped(S);
  return *this;
}

JsonWriter &JsonWriter::value(bool B) {
  beforeValue();
  Out += B ? "true" : "false";
  return *this;
}

JsonWriter &JsonWriter::value(int64_t N) {
  beforeValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(N));
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(uint64_t N) {
  beforeValue();
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(N));
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::value(double D) {
  if (!std::isfinite(D))
    return null();
  beforeValue();
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
  return *this;
}

JsonWriter &JsonWriter::null() {
  beforeValue();
  Out += "null";
  return *this;
}

std::string JsonWriter::take() {
  assert(Stack.empty() && "take() on an unbalanced document");
  std::string S = std::move(Out);
  Out.clear();
  Stack.clear();
  PendingKey = false;
  return S;
}

//===----------------------------------------------------------------------===//
// JsonValue / parseJson
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, V] : Members)
    if (Name == Key)
      return &V;
  return nullptr;
}

namespace {

class Parser {
public:
  Parser(std::string_view Text, std::string *Err)
      : Text(Text), Pos(0), Err(Err) {}

  std::optional<JsonValue> parseDocument() {
    std::optional<JsonValue> V = parseValue();
    if (!V)
      return std::nullopt;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return V;
  }

private:
  std::string_view Text;
  size_t Pos;
  std::string *Err;

  std::nullopt_t fail(const char *Msg) {
    if (Err && Err->empty()) {
      *Err = Msg;
      *Err += " at offset " + std::to_string(Pos);
    }
    return std::nullopt;
  }

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  std::optional<JsonValue> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject();
    case '[':
      return parseArray();
    case '"':
      return parseString();
    case 't':
      if (literal("true")) {
        JsonValue V;
        V.K = JsonValue::Kind::Bool;
        V.B = true;
        return V;
      }
      return fail("bad literal");
    case 'f':
      if (literal("false")) {
        JsonValue V;
        V.K = JsonValue::Kind::Bool;
        V.B = false;
        return V;
      }
      return fail("bad literal");
    case 'n':
      if (literal("null"))
        return JsonValue{};
      return fail("bad literal");
    default:
      if (C == '-' || (C >= '0' && C <= '9'))
        return parseNumber();
      return fail("unexpected character");
    }
  }

  std::optional<JsonValue> parseObject() {
    ++Pos; // '{'
    JsonValue V;
    V.K = JsonValue::Kind::Object;
    skipWs();
    if (consume('}'))
      return V;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::optional<JsonValue> Key = parseString();
      if (!Key)
        return std::nullopt;
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after key");
      std::optional<JsonValue> Member = parseValue();
      if (!Member)
        return std::nullopt;
      V.Members.emplace_back(std::move(Key->Str), std::move(*Member));
      skipWs();
      if (consume(','))
        continue;
      if (consume('}'))
        return V;
      return fail("expected ',' or '}' in object");
    }
  }

  std::optional<JsonValue> parseArray() {
    ++Pos; // '['
    JsonValue V;
    V.K = JsonValue::Kind::Array;
    skipWs();
    if (consume(']'))
      return V;
    for (;;) {
      std::optional<JsonValue> Item = parseValue();
      if (!Item)
        return std::nullopt;
      V.Items.push_back(std::move(*Item));
      skipWs();
      if (consume(','))
        continue;
      if (consume(']'))
        return V;
      return fail("expected ',' or ']' in array");
    }
  }

  std::optional<JsonValue> parseString() {
    ++Pos; // '"'
    JsonValue V;
    V.K = JsonValue::Kind::String;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return V;
      if (C == '\\') {
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          V.Str += '"';
          break;
        case '\\':
          V.Str += '\\';
          break;
        case '/':
          V.Str += '/';
          break;
        case 'n':
          V.Str += '\n';
          break;
        case 'r':
          V.Str += '\r';
          break;
        case 't':
          V.Str += '\t';
          break;
        case 'b':
          V.Str += '\b';
          break;
        case 'f':
          V.Str += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= H - '0';
            else if (H >= 'a' && H <= 'f')
              Code |= H - 'a' + 10;
            else if (H >= 'A' && H <= 'F')
              Code |= H - 'A' + 10;
            else
              return fail("bad \\u escape");
          }
          // The writer only emits \u00xx for control bytes; decode BMP
          // code points as UTF-8 and reject surrogates.
          if (Code >= 0xD800 && Code <= 0xDFFF)
            return fail("surrogate \\u escape unsupported");
          if (Code < 0x80) {
            V.Str += static_cast<char>(Code);
          } else if (Code < 0x800) {
            V.Str += static_cast<char>(0xC0 | (Code >> 6));
            V.Str += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            V.Str += static_cast<char>(0xE0 | (Code >> 12));
            V.Str += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            V.Str += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      V.Str += C;
    }
    return fail("unterminated string");
  }

  std::optional<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    if (!consume('0')) {
      if (Pos >= Text.size() || Text[Pos] < '1' || Text[Pos] > '9')
        return fail("bad number");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (consume('.')) {
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("bad fraction");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("bad exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    JsonValue V;
    V.K = JsonValue::Kind::Number;
    V.Num = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                        nullptr);
    return V;
  }
};

} // namespace

std::optional<JsonValue> parseJson(std::string_view Text, std::string *Err) {
  return Parser(Text, Err).parseDocument();
}

} // namespace perceus
