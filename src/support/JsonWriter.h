//===- support/JsonWriter.h - Minimal JSON emitter and parser ---*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free JSON layer for the telemetry subsystem:
///
///   * JsonWriter — a streaming emitter with automatic comma/nesting
///     management. Every machine-readable artifact this repository
///     produces (`BENCH_<name>.json` from the bench harnesses,
///     `perc --stats-json`) goes through it, so the output is well-formed
///     by construction.
///   * JsonValue / parseJson — a small recursive-descent parser used by
///     the schema-validation tests to round-trip what the writer emitted.
///     It is a validator's parser (strict, no extensions), not a general
///     JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_JSONWRITER_H
#define PERCEUS_SUPPORT_JSONWRITER_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace perceus {

/// Streaming JSON emitter; see the file comment.
///
/// Usage:
///   JsonWriter W;
///   W.beginObject().key("schema").value("perceus-bench-v1")
///    .key("rows").beginArray() ... .endArray().endObject();
///   std::string Text = W.take();
///
/// Misuse (a key outside an object, unbalanced end calls) is caught by
/// assertions in debug builds and yields well-formed-but-wrong JSON in
/// release builds — the schema tests catch the latter.
class JsonWriter {
public:
  JsonWriter &beginObject();
  JsonWriter &endObject();
  JsonWriter &beginArray();
  JsonWriter &endArray();

  /// Emits the key of the next object member.
  JsonWriter &key(std::string_view K);

  JsonWriter &value(std::string_view S);
  JsonWriter &value(const char *S) { return value(std::string_view(S)); }
  JsonWriter &value(bool B);
  JsonWriter &value(int64_t N);
  JsonWriter &value(uint64_t N);
  JsonWriter &value(int N) { return value(static_cast<int64_t>(N)); }
  JsonWriter &value(unsigned N) { return value(static_cast<uint64_t>(N)); }
  /// Non-finite doubles are emitted as null (JSON has no NaN/Inf).
  JsonWriter &value(double D);
  JsonWriter &null();

  /// Shorthand for key(K).value(V).
  template <typename T> JsonWriter &member(std::string_view K, T V) {
    key(K);
    return value(V);
  }

  /// The document so far. take() moves it out and resets the writer.
  const std::string &str() const { return Out; }
  std::string take();

  /// True when every begun object/array has been ended.
  bool balanced() const { return Stack.empty(); }

private:
  void beforeValue();
  void writeEscaped(std::string_view S);

  enum class Scope : uint8_t { Object, Array };
  struct Frame {
    Scope S;
    bool First = true;
  };
  std::string Out;
  std::vector<Frame> Stack;
  bool PendingKey = false;
};

/// A parsed JSON document node (see parseJson).
struct JsonValue {
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Items;                          ///< arrays
  std::vector<std::pair<std::string, JsonValue>> Members; ///< objects

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue *find(std::string_view Key) const;

  /// find() that also requires the member to be of kind \p Want.
  const JsonValue *find(std::string_view Key, Kind Want) const {
    const JsonValue *V = find(Key);
    return V && V->K == Want ? V : nullptr;
  }
};

/// Parses a complete JSON document (trailing garbage is an error).
/// Returns nullopt and fills \p Err (when non-null) on malformed input.
std::optional<JsonValue> parseJson(std::string_view Text,
                                   std::string *Err = nullptr);

} // namespace perceus

#endif // PERCEUS_SUPPORT_JSONWRITER_H
