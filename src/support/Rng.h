//===- support/Rng.h - Deterministic pseudo-random numbers ------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64: a small, fast, deterministic PRNG used by the property-test
/// program generator and the benchmark workload generators. Deterministic
/// across platforms so golden results are stable.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_RNG_H
#define PERCEUS_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace perceus {

/// SplitMix64 pseudo-random generator.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t below(uint64_t Bound) {
    assert(Bound != 0 && "bound must be nonzero");
    return next() % Bound;
  }

  /// Uniform value in [Lo, Hi] inclusive.
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// True with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

private:
  uint64_t State;
};

} // namespace perceus

#endif // PERCEUS_SUPPORT_RNG_H
