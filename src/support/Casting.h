//===- support/Casting.h - LLVM-style isa/cast/dyn_cast ---------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal hand-rolled RTTI in the LLVM style. A class opts in by
/// providing `static bool classof(const Base *)`.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SUPPORT_CASTING_H
#define PERCEUS_SUPPORT_CASTING_H

#include <cassert>

namespace perceus {

template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on null pointer");
  return To::classof(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> to incompatible type");
  return static_cast<const To *>(V);
}

template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(static_cast<const From *>(V)) &&
         "cast<> to incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return isa<To>(V) ? static_cast<const To *>(V) : nullptr;
}

template <typename To, typename From> To *dyn_cast(From *V) {
  return isa<To>(static_cast<const From *>(V)) ? static_cast<To *>(V)
                                               : nullptr;
}

} // namespace perceus

#endif // PERCEUS_SUPPORT_CASTING_H
