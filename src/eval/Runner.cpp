//===- eval/Runner.cpp - One-stop compile-and-run facade ----------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Runner.h"

#include "bytecode/Compiler.h"
#include "bytecode/VM.h"
#include "eval/Machine.h"
#include "gc/MarkSweep.h"
#include "lang/Resolver.h"

using namespace perceus;

Runner::Runner(std::string_view Source, const PassConfig &Config,
               const EngineConfig &EC)
    : Config(Config), EC(EC) {
  OwnedProg = std::make_unique<Program>();
  Prog = OwnedProg.get();
  if (!compileSource(Source, *Prog, Diags))
    return;
  finishSetup();
}

Runner::Runner(Program &P, const PassConfig &Config, const EngineConfig &EC)
    : Config(Config), EC(EC), Prog(&P) {
  finishSetup();
}

Runner::~Runner() = default;

void Runner::finishSetup() {
  runPipeline(*Prog, Config);
  Layout.emplace(layoutProgram(*Prog));
  TheHeap = std::make_unique<Heap>(
      Config.Mode == RcMode::None ? HeapMode::Gc : HeapMode::Rc,
      EC.GcThresholdBytes);
  if (EC.Engine == EngineKind::Vm) {
    Compiled.emplace(compileProgram(*Prog, *Layout));
    if (EC.Peephole)
      PeepReport = runPeephole(*Compiled);
    TheEngine = std::make_unique<VM>(*Compiled, *TheHeap);
  } else {
    TheEngine = std::make_unique<Machine>(*Prog, *Layout, *TheHeap);
  }
  if (TheHeap->mode() == HeapMode::Gc) {
    Engine *E = TheEngine.get();
    attachCollector(*TheHeap,
                    [E](const std::function<void(Value)> &Fn) {
                      E->enumerateRoots(Fn);
                    });
  }
  Ok = true;
  setLimits(EC.Limits);
  if (EC.Injector)
    setFaultInjector(EC.Injector);
  if (EC.Sink)
    setStatsSink(EC.Sink);
}

RunResult Runner::callInt(std::string_view Name, std::vector<int64_t> Args) {
  std::vector<Value> Vals;
  Vals.reserve(Args.size());
  for (int64_t A : Args)
    Vals.push_back(Value::makeInt(A));
  return call(Name, std::move(Vals));
}

RunResult Runner::call(std::string_view Name, std::vector<Value> Args) {
  RunResult R;
  if (!Ok) {
    R.Trap = TrapKind::RuntimeError;
    R.Error = "program failed to compile:\n" + Diags.str();
    return R;
  }
  FuncId F = Prog->findFunction(Prog->symbols().intern(Name));
  if (F == InvalidId) {
    R.Trap = TrapKind::RuntimeError;
    R.Error = "no such function: " + std::string(Name);
    return R;
  }
  return TheEngine->run(F, std::move(Args));
}

void Runner::setLimits(const RunLimits &L) {
  if (!Ok)
    return;
  TheHeap->setLimits(L.Heap);
  TheEngine->setStepLimit(L.Fuel);
  TheEngine->setCallDepthLimit(L.MaxCallDepth);
  TheEngine->setDeadline(L.DeadlineMs);
}

void Runner::setFaultInjector(FaultInjector *FI) {
  if (!Ok)
    return;
  TheHeap->setFaultInjector(FI);
}

void Runner::setStatsSink(StatsSink *S) {
  if (!Ok)
    return;
  TheHeap->setStatsSink(S);
}
