//===- eval/StatsJson.h - JSON emission of runtime statistics ---*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared serialization of HeapStats and RunResult so `perc --stats-json`
/// and every bench harness emit byte-identical key sets — the schema the
/// validation tests (and CI's artifact check) pin down. Each function
/// emits one JSON *object value*; the caller supplies the surrounding
/// key/array structure.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_STATSJSON_H
#define PERCEUS_EVAL_STATSJSON_H

namespace perceus {

class JsonWriter;
struct HeapStats;
struct RunResult;

/// {"allocs":..,"frees":..,"dup_ops":..,...,"peak_bytes":..}
void writeHeapStatsJson(JsonWriter &W, const HeapStats &S);

/// {"ok":..,"trap":..,"steps":..,...,"rc_instrs":{...}}
void writeRunResultJson(JsonWriter &W, const RunResult &R);

} // namespace perceus

#endif // PERCEUS_EVAL_STATSJSON_H
