//===- eval/Machine.h - The abstract machine --------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit-stack (CEK-style) abstract machine executing RC-
/// instrumented IR against a Heap. It is the operational counterpart of
/// the reference-counted heap semantics of Figure 7:
///
///   * callee-owns calling convention: argument ownership transfers to
///     the callee; applying a closure dups its captured environment and
///     drops the closure (rule app_r);
///   * all other RC behaviour is explicit in the instrumented IR, so the
///     machine itself performs no hidden dup/drop — what the Perceus
///     passes emit is exactly what runs;
///   * proper tail calls: a call whose continuation is the frame return
///     reuses the frame, so FBIP loops run in constant stack space
///     (Section 2.6);
///   * explicit local/operand stacks double as precise GC roots for the
///     tracing-collector configuration.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_MACHINE_H
#define PERCEUS_EVAL_MACHINE_H

#include "eval/Engine.h"
#include "eval/Layout.h"
#include "ir/Program.h"
#include "runtime/Heap.h"

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace perceus {

/// Executes programs; see the file comment.
class Machine : public Engine {
public:
  /// \p Layout must have been produced from \p P *after* all passes ran.
  Machine(const Program &P, const ProgramLayout &Layout, Heap &H);

  /// Runs function \p F on \p Args (ownership of heap arguments
  /// transfers to the callee). A heap-valued result is dropped before
  /// returning (reported in Result.Kind).
  RunResult run(FuncId F, std::vector<Value> Args) override;

  /// Step fuel: maximum expression dispatches before trapping with
  /// OutOfFuel (0 = unlimited).
  void setStepLimit(uint64_t Limit) override { StepLimit = Limit; }

  /// Maximum simultaneously-live non-tail call frames before trapping
  /// with StackOverflow (0 = unlimited). Tail calls reuse their frame
  /// and never count against the limit.
  void setCallDepthLimit(uint64_t Limit) override { CallDepthLimit = Limit; }

  /// Wall-clock budget per run (0 = none); armed at run() entry and
  /// checked every DeadlineCheckInterval dispatches.
  void setDeadline(uint64_t Ms) override { DeadlineMs = Ms; }

  /// Enumerates every GC root (locals, operands, pending result).
  void enumerateRoots(const std::function<void(Value)> &Fn) const override;

  /// Called with the final value right before the machine releases it
  /// (heap results are dropped to keep runs garbage free); lets callers
  /// inspect structured results.
  void setResultInspector(std::function<void(Value)> Fn) override {
    ResultInspector = std::move(Fn);
  }

  Heap &heap() override { return H; }

private:
  struct Kont {
    enum class K : uint8_t { Ret, Let, Seq, If, Args, SetField } Kind;
    const Expr *Node = nullptr;
    uint32_t Next = 0;    // Args: next component index
    size_t Base = 0;      // Ret: previous frame base; Args: operand base
    size_t FrameStart = 0; // Ret: where the returning frame begins
  };

  bool step();
  const Expr *tryRunRcChainToUnit(const Expr *E);
  bool tryRunRcChainToToken(const Expr *E, Value &Tok);
  void runRcChain(const Expr *E, const Expr *End);
  void trap(std::string Msg, TrapKind Kind = TrapKind::RuntimeError);
  void unwind();
  void finishArgs(const Kont &K);
  void doCall(size_t OperandBase, SourceLoc Loc);
  void finishCon(const ConExpr *C, size_t OperandBase);
  void finishPrim(const PrimExpr *Pr, size_t OperandBase);

  Value &local(uint32_t Slot) { return Locals[CurBase + Slot]; }

  const Program &P;
  const ProgramLayout &Layout;
  Heap &H;

  // Machine registers.
  const Expr *Code = nullptr; // expression being evaluated (or null)
  Value Result;               // value produced when Code is null
  size_t CurBase = 0;
  std::vector<Value> Locals;
  std::vector<Value> Operands;
  std::vector<Kont> Konts;

  RunResult *Run = nullptr;
  StatsSink *Sink = nullptr; // cached from H.statsSink() at run() entry
  uint64_t StepLimit = 0;
  uint64_t CallDepthLimit = 0;
  uint64_t CallDepth = 0; // live non-tail (Ret) frames
  uint64_t DeadlineMs = 0;
  std::chrono::steady_clock::time_point DeadlineAt{};
  // Safepoints fire every DeadlineCheckInterval dispatches when armed
  // (a deadline is set, or the heap coalesces shared counts and must
  // flush periodically so other workers observe bounded-stale counts).
  bool SafepointArmed = false;
  uint64_t SafepointCountdown = 0; // dispatches until the next safepoint
  uint64_t SafepointsSeen = 0;     // paces the coalescing-buffer flush
  bool Trapped = false;
  std::function<void(Value)> ResultInspector;
};

} // namespace perceus

#endif // PERCEUS_EVAL_MACHINE_H
