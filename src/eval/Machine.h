//===- eval/Machine.h - The abstract machine --------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An explicit-stack (CEK-style) abstract machine executing RC-
/// instrumented IR against a Heap. It is the operational counterpart of
/// the reference-counted heap semantics of Figure 7:
///
///   * callee-owns calling convention: argument ownership transfers to
///     the callee; applying a closure dups its captured environment and
///     drops the closure (rule app_r);
///   * all other RC behaviour is explicit in the instrumented IR, so the
///     machine itself performs no hidden dup/drop — what the Perceus
///     passes emit is exactly what runs;
///   * proper tail calls: a call whose continuation is the frame return
///     reuses the frame, so FBIP loops run in constant stack space
///     (Section 2.6);
///   * explicit local/operand stacks double as precise GC roots for the
///     tracing-collector configuration.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_MACHINE_H
#define PERCEUS_EVAL_MACHINE_H

#include "eval/Layout.h"
#include "ir/Program.h"
#include "runtime/Heap.h"

#include <functional>
#include <string>
#include <vector>

namespace perceus {

/// Why a run stopped. `Ok` is the only kind with a result value; all
/// others are traps, after which the machine has unwound its frames and
/// released every reachable cell (the heap is empty again — the
/// garbage-free guarantee extends to the error path).
enum class TrapKind : uint8_t {
  Ok,            ///< ran to completion
  OutOfMemory,   ///< the heap governor refused an allocation
  OutOfFuel,     ///< the step-fuel limit was exhausted
  StackOverflow, ///< the call-depth limit was exceeded
  RuntimeError,  ///< dynamic error: arity/tag/type mismatch, div-0, abort
};

/// Short stable name ("ok", "out-of-memory", ...) for messages/tables.
const char *trapKindName(TrapKind K);

/// How many RC operations the machine issued against the heap, counted
/// at the machine side so tests can cross-check them against the heap's
/// classification counters (see the invariant on HeapStats). The
/// explicit counters tally instructions in the instrumented IR; the
/// Implicit* counters tally heap calls the machine makes on its own
/// behalf — closure application (rule app_r: dup each capture, drop the
/// closure), ref cell primitives, tshare's consuming drop, the final
/// heap-result release, and drop-reuse's expansion (dropChildren on the
/// unique path, decref on the shared path). By construction:
///
///   heap dup calls    == Dups + ImplicitDups
///   heap drop calls   == Drops + ImplicitDrops
///   heap decref calls == DecRefs + ImplicitDecRefs
///   heap is-unique calls == IsUniques
struct RcInstrCounts {
  uint64_t Dups = 0;       ///< dup instructions executed
  uint64_t Drops = 0;      ///< drop instructions executed
  uint64_t Frees = 0;      ///< free instructions executed (memory-only)
  uint64_t DecRefs = 0;    ///< decref instructions executed
  uint64_t IsUniques = 0;  ///< is-unique tests executed (all forms)
  uint64_t DropReuses = 0; ///< drop-reuse instructions executed
  uint64_t ImplicitDups = 0;
  uint64_t ImplicitDrops = 0;
  uint64_t ImplicitDecRefs = 0;

  uint64_t totalCalls() const {
    return Dups + ImplicitDups + Drops + ImplicitDrops + DecRefs +
           ImplicitDecRefs + IsUniques;
  }
};

/// Per-run execution statistics and results.
struct RunResult {
  bool Ok = false;
  TrapKind Trap = TrapKind::Ok; ///< structured trap cause when !Ok
  std::string Error;       ///< trap message when !Ok
  Value Result;            ///< final value (immediates only; heap results
                           ///< are reported as kind HeapRef and dropped)
  std::string Output;      ///< accumulated println output
  uint64_t Steps = 0;      ///< expression dispatches executed
  uint64_t ReuseHits = 0;  ///< Con@ru with a non-null token (in-place)
  uint64_t ReuseMisses = 0;///< Con@ru that had to allocate fresh
  uint64_t TailCalls = 0;  ///< frame-reusing calls
  uint64_t MaxCallDepth = 0;  ///< high-water mark of live non-tail call
                              ///< frames — true continuation depth (tail
                              ///< calls reuse their frame; FBIP loops
                              ///< stay at depth 1)
  uint64_t MaxLocalsSlots = 0;///< high-water mark of the locals stack in
                              ///< slots (sums frame sizes, not depth)
  uint64_t UnwoundCells = 0;  ///< cells reclaimed by the trap unwind
  RcInstrCounts Rc;        ///< machine-side RC operation counts
};

/// Executes programs; see the file comment.
class Machine {
public:
  /// \p Layout must have been produced from \p P *after* all passes ran.
  Machine(const Program &P, const ProgramLayout &Layout, Heap &H);

  /// Runs function \p F on \p Args (ownership of heap arguments
  /// transfers to the callee). A heap-valued result is dropped before
  /// returning (reported in Result.Kind).
  RunResult run(FuncId F, std::vector<Value> Args);

  /// Step fuel: maximum expression dispatches before trapping with
  /// OutOfFuel (0 = unlimited).
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

  /// Maximum simultaneously-live non-tail call frames before trapping
  /// with StackOverflow (0 = unlimited). Tail calls reuse their frame
  /// and never count against the limit.
  void setCallDepthLimit(uint64_t Limit) { CallDepthLimit = Limit; }

  /// Enumerates every GC root (locals, operands, pending result).
  void enumerateRoots(const std::function<void(Value)> &Fn) const;

  /// Called with the final value right before the machine releases it
  /// (heap results are dropped to keep runs garbage free); lets callers
  /// inspect structured results.
  void setResultInspector(std::function<void(Value)> Fn) {
    ResultInspector = std::move(Fn);
  }

  Heap &heap() { return H; }

private:
  struct Kont {
    enum class K : uint8_t { Ret, Let, Seq, If, Args, SetField } Kind;
    const Expr *Node = nullptr;
    uint32_t Next = 0;    // Args: next component index
    size_t Base = 0;      // Ret: previous frame base; Args: operand base
    size_t FrameStart = 0; // Ret: where the returning frame begins
  };

  bool step();
  const Expr *tryRunRcChainToUnit(const Expr *E);
  bool tryRunRcChainToToken(const Expr *E, Value &Tok);
  void runRcChain(const Expr *E, const Expr *End);
  void trap(std::string Msg, TrapKind Kind = TrapKind::RuntimeError);
  void unwind();
  void finishArgs(const Kont &K);
  void doCall(size_t OperandBase, SourceLoc Loc);
  void finishCon(const ConExpr *C, size_t OperandBase);
  void finishPrim(const PrimExpr *Pr, size_t OperandBase);

  Value &local(uint32_t Slot) { return Locals[CurBase + Slot]; }

  const Program &P;
  const ProgramLayout &Layout;
  Heap &H;

  // Machine registers.
  const Expr *Code = nullptr; // expression being evaluated (or null)
  Value Result;               // value produced when Code is null
  size_t CurBase = 0;
  std::vector<Value> Locals;
  std::vector<Value> Operands;
  std::vector<Kont> Konts;

  RunResult *Run = nullptr;
  StatsSink *Sink = nullptr; // cached from H.statsSink() at run() entry
  uint64_t StepLimit = 0;
  uint64_t CallDepthLimit = 0;
  uint64_t CallDepth = 0; // live non-tail (Ret) frames
  bool Trapped = false;
  std::function<void(Value)> ResultInspector;
};

} // namespace perceus

#endif // PERCEUS_EVAL_MACHINE_H
