//===- eval/Layout.cpp - Frame layout for the abstract machine ----------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Layout.h"

#include "support/Casting.h"

#include <unordered_map>

using namespace perceus;

namespace {

class LayoutPass {
public:
  LayoutPass(const Program &P, ProgramLayout &L) : P(P), L(L) {}

  void run() {
    L.FuncFrameSize.resize(P.numFunctions(), 0);
    for (FuncId F = 0; F != P.numFunctions(); ++F) {
      const FunctionDecl &Fn = P.function(F);
      Env.clear();
      NextSlot = 0;
      for (Symbol Pm : Fn.Params)
        bind(Pm);
      walk(Fn.Body);
      L.FuncFrameSize[F] = NextSlot;
    }
  }

private:
  uint32_t bind(Symbol S) {
    uint32_t Slot = NextSlot++;
    Env[S] = Slot;
    return Slot;
  }

  uint32_t slotOf(Symbol S) const {
    auto It = Env.find(S);
    assert(It != Env.end() && "unbound variable during layout");
    return It->second;
  }

  void walk(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Global:
    case ExprKind::NullToken:
      return;
    case ExprKind::Var:
      E->setLayout(slotOf(cast<VarExpr>(E)->name()), ~0u);
      return;
    case ExprKind::Lam: {
      const auto *Lm = cast<LamExpr>(E);
      std::vector<uint32_t> List;
      for (Symbol C : Lm->captures())
        List.push_back(slotOf(C)); // source slots (enclosing frame)
      // Switch to the lambda's own frame.
      std::unordered_map<Symbol, uint32_t> SavedEnv = std::move(Env);
      uint32_t SavedNext = NextSlot;
      Env.clear();
      NextSlot = 0;
      for (Symbol Pm : Lm->params())
        bind(Pm);
      for (Symbol C : Lm->captures())
        List.push_back(bind(C)); // target slots (lambda frame)
      walk(Lm->body());
      uint32_t FrameSize = NextSlot;
      Env = std::move(SavedEnv);
      NextSlot = SavedNext;
      E->setLayout(addList(std::move(List)), FrameSize);
      return;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      walk(A->fn());
      for (const Expr *Arg : A->args())
        walk(Arg);
      return;
    }
    case ExprKind::Let: {
      const auto *Lt = cast<LetExpr>(E);
      walk(Lt->bound());
      E->setLayout(bind(Lt->name()), ~0u);
      walk(Lt->body());
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      walk(S->first());
      walk(S->second());
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      walk(I->cond());
      walk(I->thenExpr());
      walk(I->elseExpr());
      return;
    }
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      std::vector<uint32_t> List;
      for (const MatchArm &Arm : M->arms()) {
        for (Symbol B : Arm.Binders)
          List.push_back(bind(B));
        walk(Arm.Body);
      }
      E->setLayout(slotOf(M->scrutinee()), addList(std::move(List)));
      return;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      for (const Expr *Arg : C->args())
        walk(Arg);
      if (C->hasReuseToken())
        E->setLayout(slotOf(C->reuseToken()), ~0u);
      return;
    }
    case ExprKind::Prim: {
      for (const Expr *Arg : cast<PrimExpr>(E)->args())
        walk(Arg);
      return;
    }
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef: {
      const auto *R = cast<RcStmtExpr>(E);
      E->setLayout(slotOf(R->var()), ~0u);
      walk(R->rest());
      return;
    }
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      E->setLayout(slotOf(U->var()), ~0u);
      walk(U->thenExpr());
      walk(U->elseExpr());
      return;
    }
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      uint32_t VarSlot = slotOf(D->var());
      uint32_t TokSlot = bind(D->token());
      E->setLayout(VarSlot, TokSlot);
      walk(D->rest());
      return;
    }
    case ExprKind::ReuseAddr:
      E->setLayout(slotOf(cast<ReuseAddrExpr>(E)->var()), ~0u);
      return;
    case ExprKind::IsNullToken: {
      const auto *N = cast<IsNullTokenExpr>(E);
      E->setLayout(slotOf(N->token()), ~0u);
      walk(N->thenExpr());
      walk(N->elseExpr());
      return;
    }
    case ExprKind::SetField: {
      const auto *F = cast<SetFieldExpr>(E);
      E->setLayout(slotOf(F->token()), ~0u);
      walk(F->value());
      walk(F->rest());
      return;
    }
    case ExprKind::TokenValue:
      E->setLayout(slotOf(cast<TokenValueExpr>(E)->token()), ~0u);
      return;
    }
  }

  uint32_t addList(std::vector<uint32_t> List) {
    L.SlotLists.push_back(std::move(List));
    return static_cast<uint32_t>(L.SlotLists.size() - 1);
  }

  const Program &P;
  ProgramLayout &L;
  std::unordered_map<Symbol, uint32_t> Env;
  uint32_t NextSlot = 0;
};

} // namespace

ProgramLayout perceus::layoutProgram(const Program &P) {
  ProgramLayout L;
  LayoutPass(P, L).run();
  return L;
}
