//===- eval/EngineConfig.cpp - Unified engine configuration -------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/EngineConfig.h"

using namespace perceus;

const char *perceus::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Cek:
    return "cek";
  case EngineKind::Vm:
    return "vm";
  }
  return "unknown";
}

bool perceus::parseEngineKind(std::string_view Name, EngineKind &Out) {
  if (Name == "cek") {
    Out = EngineKind::Cek;
    return true;
  }
  if (Name == "vm") {
    Out = EngineKind::Vm;
    return true;
  }
  return false;
}
