//===- eval/Runner.h - One-stop compile-and-run facade ----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runner bundles the whole stack — parse, resolve, Perceus pipeline,
/// frame layout, heap, collector, abstract machine — behind the API the
/// examples, tests and benchmarks use:
///
///   Runner R(Source, PassConfig::perceusFull());
///   RunResult Res = R.callInt("main", {});
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_RUNNER_H
#define PERCEUS_EVAL_RUNNER_H

#include "eval/Machine.h"
#include "perceus/Pipeline.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string_view>

namespace perceus {

class FaultInjector;
class StatsSink;

/// Resource limits for one Runner: heap governor plus machine fuel and
/// call depth. Zero fields mean "unlimited"; the default is the
/// ungoverned fast path.
struct RunLimits {
  HeapLimits Heap;            ///< live bytes / live cells / alloc budget
  uint64_t Fuel = 0;          ///< max machine steps (0 = unlimited)
  uint64_t MaxCallDepth = 0;  ///< max live non-tail frames (0 = unlimited)

  static RunLimits unlimited() { return {}; }
};

/// See the file comment.
class Runner {
public:
  /// Compiles \p Source under \p Config. Check `ok()` before running.
  Runner(std::string_view Source, const PassConfig &Config,
         size_t GcThresholdBytes = 4u << 20);

  /// Wraps an already-resolved program (takes no ownership); runs the
  /// pipeline on it.
  Runner(Program &P, const PassConfig &Config,
         size_t GcThresholdBytes = 4u << 20);

  ~Runner();
  Runner(const Runner &) = delete;
  Runner &operator=(const Runner &) = delete;

  bool ok() const { return Ok; }
  const DiagnosticEngine &diagnostics() const { return Diags; }
  Program &program() { return *Prog; }
  Heap &heap() { return *TheHeap; }
  Machine &machine() { return *TheMachine; }
  const PassConfig &config() const { return Config; }

  /// Calls function \p Name with integer arguments.
  RunResult callInt(std::string_view Name, std::vector<int64_t> Args);

  /// Calls function \p Name with arbitrary values.
  RunResult call(std::string_view Name, std::vector<Value> Args);

  /// After a run in an RC configuration, true iff no cell leaked —
  /// the dynamic garbage-free-at-exit check. With the clean-unwind path
  /// this holds after trapped runs too.
  bool heapIsEmpty() const { return TheHeap->empty(); }

  /// Installs resource limits on the heap and the machine. May be called
  /// between runs; RunLimits::unlimited() restores the ungoverned path.
  void setLimits(const RunLimits &L);

  /// Installs a fault injector on the heap (non-owning; null uninstalls).
  void setFaultInjector(FaultInjector *FI);

  /// Installs a telemetry sink on the heap (non-owning; null uninstalls).
  /// The machine picks it up at the start of the next run and attributes
  /// every RC/alloc/reuse event to its IR site.
  void setStatsSink(StatsSink *S);

private:
  void finishSetup(size_t GcThresholdBytes);

  PassConfig Config;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> OwnedProg;
  Program *Prog = nullptr;
  std::optional<ProgramLayout> Layout;
  std::unique_ptr<Heap> TheHeap;
  std::unique_ptr<Machine> TheMachine;
  bool Ok = false;
};

} // namespace perceus

#endif // PERCEUS_EVAL_RUNNER_H
