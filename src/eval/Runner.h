//===- eval/Runner.h - One-stop compile-and-run facade ----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runner bundles the whole stack — parse, resolve, Perceus pipeline,
/// frame layout, heap, collector, execution engine — behind the API the
/// examples, tests and benchmarks use:
///
///   Runner R(Source, PassConfig::perceusFull());
///   RunResult Res = R.callInt("main", {});
///
/// The execution engine is selected by EngineConfig::Engine: the CEK
/// tree-walker (default) or the bytecode VM, which compiles the laid-out
/// program once at setup:
///
///   Runner R(Source, PassConfig::perceusFull(),
///            EngineConfig{}.withEngine(EngineKind::Vm));
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_RUNNER_H
#define PERCEUS_EVAL_RUNNER_H

#include "bytecode/Bytecode.h"
#include "bytecode/Peephole.h"
#include "eval/Engine.h"
#include "eval/EngineConfig.h"
#include "eval/Layout.h"
#include "perceus/Pipeline.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <string_view>

namespace perceus {

/// See the file comment.
class Runner {
public:
  /// Compiles \p Source under \p Config and sets up the engine \p EC
  /// selects. Check `ok()` before running.
  Runner(std::string_view Source, const PassConfig &Config,
         const EngineConfig &EC = {});

  /// Wraps an already-resolved program (takes no ownership); runs the
  /// pipeline on it.
  Runner(Program &P, const PassConfig &Config, const EngineConfig &EC = {});

  ~Runner();
  Runner(const Runner &) = delete;
  Runner &operator=(const Runner &) = delete;

  bool ok() const { return Ok; }
  const DiagnosticEngine &diagnostics() const { return Diags; }
  Program &program() { return *Prog; }
  Heap &heap() { return *TheHeap; }
  /// The selected execution engine (CEK machine or bytecode VM).
  Engine &engine() { return *TheEngine; }
  /// Legacy name for engine(), from when the CEK machine was the only
  /// engine; every member it exposes is on the Engine interface.
  Engine &machine() { return *TheEngine; }
  const PassConfig &config() const { return Config; }
  const EngineConfig &engineConfig() const { return EC; }
  /// The peephole rewrite report (VM engine with EngineConfig::Peephole
  /// only; empty otherwise). Consumed by `perc --pass-stats`.
  const PeepholeReport &peepholeReport() const { return PeepReport; }

  /// Calls function \p Name with integer arguments.
  RunResult callInt(std::string_view Name, std::vector<int64_t> Args);

  /// Calls function \p Name with arbitrary values.
  RunResult call(std::string_view Name, std::vector<Value> Args);

  /// After a run in an RC configuration, true iff no cell leaked —
  /// the dynamic garbage-free-at-exit check. With the clean-unwind path
  /// this holds after trapped runs too.
  bool heapIsEmpty() const { return TheHeap->empty(); }

  /// Installs resource limits on the heap and the engine. May be called
  /// between runs; RunLimits::unlimited() restores the ungoverned path.
  void setLimits(const RunLimits &L);

  /// Installs a fault injector on the heap (non-owning; null uninstalls).
  void setFaultInjector(FaultInjector *FI);

  /// Installs a telemetry sink on the heap (non-owning; null uninstalls).
  /// The engine picks it up at the start of the next run and attributes
  /// every RC/alloc/reuse event to its IR site.
  void setStatsSink(StatsSink *S);

private:
  void finishSetup();

  PassConfig Config;
  EngineConfig EC;
  DiagnosticEngine Diags;
  std::unique_ptr<Program> OwnedProg;
  Program *Prog = nullptr;
  std::optional<ProgramLayout> Layout;
  std::optional<CompiledProgram> Compiled; // VM engine only
  PeepholeReport PeepReport;               // VM + peephole only
  std::unique_ptr<Heap> TheHeap;
  std::unique_ptr<Engine> TheEngine;
  bool Ok = false;
};

} // namespace perceus

#endif // PERCEUS_EVAL_RUNNER_H
