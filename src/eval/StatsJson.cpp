//===- eval/StatsJson.cpp - JSON emission of runtime statistics -----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/StatsJson.h"

#include "eval/Machine.h"
#include "support/JsonWriter.h"

namespace perceus {

void writeHeapStatsJson(JsonWriter &W, const HeapStats &S) {
  W.beginObject()
      .member("allocs", S.Allocs)
      .member("frees", S.Frees)
      .member("dup_ops", S.DupOps)
      .member("drop_ops", S.DropOps)
      .member("decref_ops", S.DecRefOps)
      .member("non_heap_rc_ops", S.NonHeapRcOps)
      .member("atomic_rc_ops", S.AtomicRcOps)
      .member("coalesced_rc_ops", S.CoalescedRcOps)
      .member("is_unique_tests", S.IsUniqueTests)
      .member("collections", S.Collections)
      .member("failed_allocs", S.FailedAllocs)
      .member("emergency_collections", S.EmergencyCollections)
      .member("unwind_frees", S.UnwindFrees)
      .member("live_bytes", S.LiveBytes)
      .member("peak_bytes", S.PeakBytes)
      .member("live_cells", S.LiveCells)
      .endObject();
}

void writeRunResultJson(JsonWriter &W, const RunResult &R) {
  W.beginObject()
      .member("ok", R.Ok)
      .member("trap", trapKindName(R.Trap))
      .member("steps", R.Steps)
      .member("reuse_hits", R.ReuseHits)
      .member("reuse_misses", R.ReuseMisses)
      .member("tail_calls", R.TailCalls)
      // max_stack_depth is true continuation depth (live non-tail call
      // frames). It historically reported the locals high-water in
      // *slots*; that quantity now lives in max_locals_slots.
      .member("max_stack_depth", R.MaxCallDepth)
      .member("max_call_depth", R.MaxCallDepth)
      .member("max_locals_slots", R.MaxLocalsSlots)
      .member("unwound_cells", R.UnwoundCells);
  W.key("rc_instrs")
      .beginObject()
      .member("dups", R.Rc.Dups)
      .member("drops", R.Rc.Drops)
      .member("frees", R.Rc.Frees)
      .member("decrefs", R.Rc.DecRefs)
      .member("is_uniques", R.Rc.IsUniques)
      .member("drop_reuses", R.Rc.DropReuses)
      .member("implicit_dups", R.Rc.ImplicitDups)
      .member("implicit_drops", R.Rc.ImplicitDrops)
      .member("implicit_decrefs", R.Rc.ImplicitDecRefs)
      .member("fused_ops", R.Rc.FusedOps)
      .member("fused_rc_ops", R.Rc.FusedRcOps)
      .endObject();
  W.endObject();
}

} // namespace perceus
