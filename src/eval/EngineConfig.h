//===- eval/EngineConfig.h - Unified engine configuration -------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One configuration object for every way of running a program. It names
/// the engine (the CEK tree-walker or the bytecode VM), bundles every
/// resource limit, and carries the cross-cutting hooks (fault injector,
/// stats sink) plus the parallel-run fields (worker count, shared
/// segment). `Runner`, `ParallelRunner`, the `perc` CLI and the bench
/// harnesses all consume the same struct, so a flag like `--engine=vm`
/// or `--fuel=N` is parsed once and threaded everywhere — replacing the
/// per-field setter sprawl that accumulated across Runner/ParallelOptions.
///
/// The pass configuration (PassConfig) stays separate on purpose: it
/// selects what code the compiler emits, while EngineConfig selects how
/// the emitted code is executed.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_ENGINECONFIG_H
#define PERCEUS_EVAL_ENGINECONFIG_H

#include "runtime/Heap.h"

#include <string>
#include <string_view>
#include <vector>

namespace perceus {

class FaultInjector;
class StatsSink;

/// Which execution engine runs the instrumented IR.
enum class EngineKind : uint8_t {
  Cek, ///< the tree-walking CEK machine (eval/Machine.h)
  Vm,  ///< the register-based bytecode interpreter (bytecode/VM.h)
};

/// Short stable name ("cek", "vm") for flags and tables.
const char *engineKindName(EngineKind K);

/// Parses "cek" or "vm" into \p Out; returns false on anything else.
bool parseEngineKind(std::string_view Name, EngineKind &Out);

/// Resource limits for one engine: heap governor plus fuel and call
/// depth. Zero fields mean "unlimited"; the default is the ungoverned
/// fast path.
struct RunLimits {
  HeapLimits Heap;            ///< live bytes / live cells / alloc budget
  uint64_t Fuel = 0;          ///< max engine dispatches (0 = unlimited)
  uint64_t MaxCallDepth = 0;  ///< max live non-tail frames (0 = unlimited)
  uint64_t DeadlineMs = 0;    ///< wall-clock budget per run in ms (0 =
                              ///< none); expiry traps with
                              ///< TrapKind::Deadline, clean-unwound

  static RunLimits unlimited() { return {}; }
};

/// See the file comment. Value-semantic and cheap to copy; the injector
/// and sink are non-owning (null = not installed).
struct EngineConfig {
  EngineKind Engine = EngineKind::Cek; ///< which interpreter executes
  RunLimits Limits;                    ///< governor + fuel + depth

  //===--- Parallel runs (consumed by ParallelRunner only) ----------------===//
  unsigned Workers = 1;          ///< number of concurrent engines
  std::string SharedBuilder;     ///< when non-empty: builder function whose
                                 ///< result becomes the tshare'd segment
  std::vector<Value> SharedArgs; ///< builder arguments (immediates)

  //===--- Cross-cutting hooks (non-owning) -------------------------------===//
  FaultInjector *Injector = nullptr; ///< sees every allocation attempt
  StatsSink *Sink = nullptr;         ///< per-site RC/alloc telemetry

  size_t GcThresholdBytes = 4u << 20; ///< GC collection threshold

  /// Run the post-compile superinstruction/RC-elision pass on VM
  /// bytecode (bytecode/Peephole.h). On by default; `--no-peephole`
  /// turns it off for debugging and for exact (rather than semantic)
  /// cross-engine stats comparisons. Ignored by the CEK engine.
  bool Peephole = true;

  /// Convenience builders for the common axes.
  EngineConfig &withEngine(EngineKind K) {
    Engine = K;
    return *this;
  }
  EngineConfig &withLimits(const RunLimits &L) {
    Limits = L;
    return *this;
  }
  EngineConfig &withSink(StatsSink *S) {
    Sink = S;
    return *this;
  }
  EngineConfig &withGcThreshold(size_t Bytes) {
    GcThresholdBytes = Bytes;
    return *this;
  }
  EngineConfig &withPeephole(bool On) {
    Peephole = On;
    return *this;
  }
};

} // namespace perceus

#endif // PERCEUS_EVAL_ENGINECONFIG_H
