//===- eval/Engine.h - Execution-engine interface ---------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract interface every execution engine implements, plus the
/// result/trap/counter types shared by all of them. Two engines exist:
///
///   * eval/Machine.h   — the CEK-style tree-walking machine;
///   * bytecode/VM.h    — the register-based bytecode interpreter.
///
/// Both run the same RC-instrumented IR against the same Heap, issue the
/// same sequence of heap operations (dup/drop/decref/is-unique/alloc) and
/// honor the same trap model with the clean-unwind guarantee: after every
/// trap the engine has reclaimed everything it still referenced, so
/// Heap::empty() holds on the error path too. Engine-independent
/// statistics (RcInstrCounts, reuse hits/misses, the heap's own counters)
/// are bit-identical across engines; dispatch-granularity metrics (Steps,
/// TailCalls, MaxCallDepth, MaxLocalsSlots) are engine-specific.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_ENGINE_H
#define PERCEUS_EVAL_ENGINE_H

#include "ir/Program.h"
#include "runtime/Heap.h"

#include <functional>
#include <string>
#include <vector>

namespace perceus {

/// Why a run stopped. `Ok` is the only kind with a result value; all
/// others are traps, after which the engine has unwound its frames and
/// released every reachable cell (the heap is empty again — the
/// garbage-free guarantee extends to the error path).
enum class TrapKind : uint8_t {
  Ok,            ///< ran to completion
  OutOfMemory,   ///< the heap governor refused an allocation
  OutOfFuel,     ///< the step-fuel limit was exhausted
  StackOverflow, ///< the call-depth limit was exceeded
  RuntimeError,  ///< dynamic error: arity/tag/type mismatch, div-0, abort
  Deadline,      ///< the wall-clock deadline expired mid-run
};

/// Short stable name ("ok", "out-of-memory", ...) for messages/tables.
const char *trapKindName(TrapKind K);

/// How many RC operations the engine issued against the heap, counted
/// at the engine side so tests can cross-check them against the heap's
/// classification counters (see the invariant on HeapStats). The
/// explicit counters tally instructions in the instrumented IR; the
/// Implicit* counters tally heap calls the engine makes on its own
/// behalf — closure application (rule app_r: dup each capture, drop the
/// closure), ref cell primitives, tshare's consuming drop, the final
/// heap-result release, and drop-reuse's expansion (dropChildren on the
/// unique path, decref on the shared path). By construction:
///
///   heap dup calls    == Dups + ImplicitDups
///   heap drop calls   == Drops + ImplicitDrops
///   heap decref calls == DecRefs + ImplicitDecRefs
///   heap is-unique calls == IsUniques
struct RcInstrCounts {
  uint64_t Dups = 0;       ///< dup instructions executed
  uint64_t Drops = 0;      ///< drop instructions executed
  uint64_t Frees = 0;      ///< free instructions executed (memory-only)
  uint64_t DecRefs = 0;    ///< decref instructions executed
  uint64_t IsUniques = 0;  ///< is-unique tests executed (all forms)
  uint64_t DropReuses = 0; ///< drop-reuse instructions executed
  uint64_t ImplicitDups = 0;
  uint64_t ImplicitDrops = 0;
  uint64_t ImplicitDecRefs = 0;

  /// Superinstructions executed (VM peephole tier only; always 0 on the
  /// CEK machine). Their RC components increment the counters above
  /// exactly as the unfused instructions would — FusedOps counts the
  /// combined dispatches, FusedRcOps the RC operations that executed
  /// inside them, so dispatch savings stay auditable without touching
  /// the classification invariant.
  uint64_t FusedOps = 0;
  uint64_t FusedRcOps = 0;

  uint64_t totalCalls() const {
    return Dups + ImplicitDups + Drops + ImplicitDrops + DecRefs +
           ImplicitDecRefs + IsUniques;
  }
};

/// Per-run execution statistics and results.
struct RunResult {
  bool Ok = false;
  TrapKind Trap = TrapKind::Ok; ///< structured trap cause when !Ok
  std::string Error;       ///< trap message when !Ok
  Value Result;            ///< final value (immediates only; heap results
                           ///< are reported as kind HeapRef and dropped)
  std::string Output;      ///< accumulated println output
  uint64_t Steps = 0;      ///< dispatches executed (engine granularity:
                           ///< expression nodes on the CEK machine,
                           ///< bytecode instructions on the VM)
  uint64_t ReuseHits = 0;  ///< Con@ru with a non-null token (in-place)
  uint64_t ReuseMisses = 0;///< Con@ru that had to allocate fresh
  uint64_t TailCalls = 0;  ///< frame-reusing calls
  uint64_t MaxCallDepth = 0;  ///< high-water mark of live non-tail call
                              ///< frames — true continuation depth (tail
                              ///< calls reuse their frame; FBIP loops
                              ///< stay at depth 1)
  uint64_t MaxLocalsSlots = 0;///< high-water mark of the locals stack in
                              ///< slots (sums frame sizes, not depth)
  uint64_t UnwoundCells = 0;  ///< cells reclaimed by the trap unwind
  RcInstrCounts Rc;        ///< engine-side RC operation counts
};

/// The interface both engines implement; see the file comment.
class Engine {
public:
  virtual ~Engine() = default;

  /// Runs function \p F on \p Args (ownership of heap arguments
  /// transfers to the callee). A heap-valued result is dropped before
  /// returning (reported in Result.Kind).
  virtual RunResult run(FuncId F, std::vector<Value> Args) = 0;

  /// Step fuel: maximum dispatches before trapping with OutOfFuel
  /// (0 = unlimited). The unit is the engine's own dispatch granularity.
  virtual void setStepLimit(uint64_t Limit) = 0;

  /// Maximum simultaneously-live non-tail call frames before trapping
  /// with StackOverflow (0 = unlimited). Tail calls reuse their frame
  /// and never count against the limit.
  virtual void setCallDepthLimit(uint64_t Limit) = 0;

  /// Wall-clock budget per run in milliseconds (0 = none). The clock
  /// starts at the next run() entry; when it expires the engine traps
  /// with TrapKind::Deadline and clean-unwinds like every other trap.
  /// The check is step-batched (one steady_clock read every
  /// DeadlineCheckInterval dispatches), so expiry is detected within a
  /// batch, not on the exact instruction.
  virtual void setDeadline(uint64_t Ms) = 0;

  /// How many dispatches both engines run between deadline clock reads.
  static constexpr uint64_t DeadlineCheckInterval = 1024;

  /// How many safepoints pass between full flushes of the heap's
  /// shared-count coalescing buffer (Heap::flushSharedDeltas). Flushing
  /// every safepoint would defeat coalescing: the dominant cancellation
  /// is a dup from one traversal round netting against the decref from
  /// the previous round, and a round usually spans many safepoint
  /// intervals. A longer stride keeps staleness bounded (other workers
  /// see counts at most this many dispatches old) without forcing one
  /// RMW per operation. Correctness never depends on the stride: a
  /// shared count cannot reach zero while any worker still runs (the
  /// segment owner retains its root reference until after join), and
  /// trap unwind and join flush unconditionally.
  static constexpr uint64_t SharedFlushSafepointStride = 32;

  /// Enumerates every GC root the engine currently holds.
  virtual void enumerateRoots(const std::function<void(Value)> &Fn) const = 0;

  /// Called with the final value right before the engine releases it
  /// (heap results are dropped to keep runs garbage free); lets callers
  /// inspect structured results.
  virtual void setResultInspector(std::function<void(Value)> Fn) = 0;

  /// The heap this engine allocates from.
  virtual Heap &heap() = 0;
};

} // namespace perceus

#endif // PERCEUS_EVAL_ENGINE_H
