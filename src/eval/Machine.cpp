//===- eval/Machine.cpp - The abstract machine --------------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/Machine.h"

#include "support/Casting.h"
#include "support/Telemetry.h"

using namespace perceus;

Machine::Machine(const Program &P, const ProgramLayout &Layout, Heap &H)
    : P(P), Layout(Layout), H(H) {}

const char *perceus::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::Ok:
    return "ok";
  case TrapKind::OutOfMemory:
    return "out-of-memory";
  case TrapKind::OutOfFuel:
    return "out-of-fuel";
  case TrapKind::StackOverflow:
    return "stack-overflow";
  case TrapKind::RuntimeError:
    return "runtime-error";
  case TrapKind::Deadline:
    return "deadline";
  }
  return "unknown";
}

void Machine::trap(std::string Msg, TrapKind Kind) {
  Trapped = true;
  Run->Ok = false;
  Run->Trap = Kind;
  Run->Error = std::move(Msg);
}

/// The clean-unwind path: a trap abandons the run, so every value still
/// held by a live frame, the operand stack, or the result register is
/// garbage. Reclaim all of it so the garbage-free guarantee holds on the
/// error path too (the fault sweep asserts Heap::empty() after every
/// injected failure). Slots may be stale — ownership already moved, or
/// the cell already freed — which Heap::reclaim tolerates by design.
void Machine::unwind() {
  size_t Freed;
  if (H.mode() == HeapMode::Gc) {
    // Tracing mode: no roots survive the trap, everything is garbage.
    Freed = H.reclaimAll();
  } else {
    std::vector<Value> Roots;
    Roots.reserve(Locals.size() + Operands.size() + 1);
    Roots.insert(Roots.end(), Locals.begin(), Locals.end());
    Roots.insert(Roots.end(), Operands.begin(), Operands.end());
    Roots.push_back(Result);
    Freed = H.reclaim(Roots);
  }
  Locals.clear();
  Operands.clear();
  Konts.clear();
  CurBase = 0;
  Code = nullptr;
  Result = Value::unit();
  Run->UnwoundCells = Freed;
}

RunResult Machine::run(FuncId F, std::vector<Value> Args) {
  RunResult R;
  Run = &R;
  Sink = H.statsSink();
  Trapped = false;
  CallDepth = 0;
  if (DeadlineMs)
    DeadlineAt = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(DeadlineMs);
  SafepointArmed = DeadlineMs != 0 || H.sharedCoalescingEnabled();
  if (SafepointArmed)
    SafepointCountdown = DeadlineCheckInterval;
  Locals.clear();
  Operands.clear();
  Konts.clear();
  Result = Value::unit();

  const FunctionDecl &Fn = P.function(F);
  if (Args.size() != Fn.Params.size()) {
    trap("entry function arity mismatch");
    // Ownership of the arguments transferred to us; unwind them.
    for (Value V : Args)
      Operands.push_back(V);
    unwind();
    Run = nullptr;
    return R;
  }
  CurBase = 0;
  Locals.resize(Layout.FuncFrameSize[F]);
  for (size_t I = 0; I != Args.size(); ++I)
    Locals[I] = Args[I];
  Code = Fn.Body;

  while (!Trapped) {
    if (!step())
      break;
  }

  if (!Trapped) {
    R.Ok = true;
    R.Result = Result;
    if (ResultInspector)
      ResultInspector(Result);
    // The caller of the entry point owns the result; release heap
    // results so a garbage-free run ends with an empty heap.
    if (Result.isHeap()) {
      if (Sink)
        Sink->setSite(this, "result", SourceLoc{});
      ++R.Rc.ImplicitDrops;
      H.drop(Result);
    }
  } else {
    unwind();
  }
  Run = nullptr;
  return R;
}

/// One machine transition. Returns false when the run completed.
bool Machine::step() {
  if (Code) {
    ++Run->Steps;
    if (StepLimit && Run->Steps > StepLimit) {
      trap("step limit exceeded (out of fuel)", TrapKind::OutOfFuel);
      return false;
    }
    if (SafepointArmed && --SafepointCountdown == 0) {
      SafepointCountdown = DeadlineCheckInterval;
      // Safepoint: every SharedFlushSafepointStride-th one publishes the
      // buffered shared-count deltas (bounded staleness for other
      // workers; see Engine.h for why not every safepoint), then the
      // deadline clock read.
      if (++SafepointsSeen % SharedFlushSafepointStride == 0)
        H.flushSharedDeltas();
      if (DeadlineMs && std::chrono::steady_clock::now() >= DeadlineAt) {
        trap("wall-clock deadline exceeded", TrapKind::Deadline);
        return false;
      }
    }
    if (Locals.size() > Run->MaxLocalsSlots)
      Run->MaxLocalsSlots = Locals.size();
    const Expr *E = Code;
    switch (E->kind()) {
    case ExprKind::Lit: {
      const LitValue &V = cast<LitExpr>(E)->value();
      switch (V.Kind) {
      case LitKind::Int:
        Result = Value::makeInt(V.Int);
        break;
      case LitKind::Bool:
        Result = Value::makeBool(V.Int != 0);
        break;
      case LitKind::Unit:
        Result = Value::unit();
        break;
      }
      Code = nullptr;
      return true;
    }
    case ExprKind::Var:
      Result = local(E->layoutA());
      Code = nullptr;
      return true;
    case ExprKind::Global:
      Result = Value::makeFnRef(cast<GlobalExpr>(E)->func());
      Code = nullptr;
      return true;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      size_t NCaps = L->captures().size();
      const std::vector<uint32_t> &List = Layout.SlotLists[E->layoutA()];
      if (Sink)
        Sink->setSite(E, "lambda", E->loc());
      Cell *C = H.alloc(static_cast<uint32_t>(NCaps + 1), 0,
                        CellKind::Closure);
      if (!C) {
        trap("out of memory allocating a closure", TrapKind::OutOfMemory);
        return false;
      }
      Value *Fields = C->fields();
      Fields[0] = Value::makeRaw(L);
      for (size_t I = 0; I != NCaps; ++I)
        Fields[1 + I] = local(List[I]); // ownership moves into the closure
      Result = Value::makeRef(C);
      Code = nullptr;
      return true;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      Kont K;
      K.Kind = Kont::K::Args;
      K.Node = E;
      K.Next = 1; // component 0 (the callee) is evaluated first
      K.Base = Operands.size();
      Konts.push_back(K);
      Code = A->fn();
      return true;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      // Superinstruction: the drop-reuse specialized form
      //   val ru = if is-unique(x) then {rc ops; &v} else {rc ops; NULL}
      // executes in one dispatch.
      if (const auto *U = dyn_cast<IsUniqueExpr>(L->bound())) {
        if (Sink)
          Sink->setSite(U, "is-unique", U->loc());
        ++Run->Rc.IsUniques;
        const Expr *Branch = H.isUnique(local(U->layoutA()))
                                 ? U->thenExpr()
                                 : U->elseExpr();
        Value Tok;
        if (tryRunRcChainToToken(Branch, Tok)) {
          local(L->layoutA()) = Tok;
          Code = L->body();
          return true;
        }
      }
      Kont K;
      K.Kind = Kont::K::Let;
      K.Node = E;
      Konts.push_back(K);
      Code = L->bound();
      return true;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      // Superinstruction: a drop-specialized statement
      //   if is-unique(x) then {rc ops; ()} else {rc ops; ()}; rest
      // executes in one dispatch, like the straight-line code a compiler
      // would emit for it.
      if (const auto *U = dyn_cast<IsUniqueExpr>(S->first())) {
        if (Sink)
          Sink->setSite(U, "is-unique", U->loc());
        ++Run->Rc.IsUniques;
        const Expr *Branch = H.isUnique(local(U->layoutA()))
                                 ? U->thenExpr()
                                 : U->elseExpr();
        if (const Expr *Rest = tryRunRcChainToUnit(Branch)) {
          (void)Rest;
          Code = S->second();
          return true;
        }
        // Unusual branch shape: evaluate generically.
      }
      Kont K;
      K.Kind = Kont::K::Seq;
      K.Node = S->second();
      Konts.push_back(K);
      Code = S->first();
      return true;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      Kont K;
      K.Kind = Kont::K::If;
      K.Node = E;
      Konts.push_back(K);
      Code = I->cond();
      return true;
    }
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      Value V = local(E->layoutA());
      const std::vector<uint32_t> &Binders = Layout.SlotLists[E->layoutB()];
      size_t Offset = 0;
      const MatchArm *Default = nullptr;
      size_t DefaultOffset = 0;
      for (const MatchArm &Arm : M->arms()) {
        bool Matches = false;
        switch (Arm.Kind) {
        case ArmKind::Ctor: {
          const CtorDecl &C = P.ctor(Arm.Ctor);
          if (V.Kind == ValueKind::Enum)
            Matches = V.enumTag() == C.Tag;
          else if (V.Kind == ValueKind::HeapRef &&
                   V.Ref->H.Kind == CellKind::Ctor)
            Matches = V.Ref->H.Tag == C.Tag;
          else if (V.Kind != ValueKind::Enum &&
                   V.Kind != ValueKind::HeapRef) {
            trap("match on a non-constructor value");
            return false;
          }
          break;
        }
        case ArmKind::IntLit:
          if (V.Kind != ValueKind::Int) {
            trap("integer pattern on a non-integer value");
            return false;
          }
          Matches = V.Int == Arm.Lit.Int;
          break;
        case ArmKind::BoolLit:
          if (V.Kind != ValueKind::Bool) {
            trap("boolean pattern on a non-boolean value");
            return false;
          }
          Matches = (V.Int != 0) == (Arm.Lit.Int != 0);
          break;
        case ArmKind::Default:
          Default = &Arm;
          DefaultOffset = Offset;
          break;
        }
        if (Matches) {
          for (size_t I = 0; I != Arm.Binders.size(); ++I)
            Locals[CurBase + Binders[Offset + I]] = V.Ref->fields()[I];
          Code = Arm.Body;
          return true;
        }
        Offset += Arm.Binders.size();
      }
      if (Default) {
        (void)DefaultOffset;
        Code = Default->Body;
        return true;
      }
      trap("non-exhaustive match");
      return false;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      const CtorDecl &D = P.ctor(C->ctor());
      if (D.Arity == 0) {
        Result = Value::makeEnum(D.DataId, D.Tag);
        Code = nullptr;
        return true;
      }
      Kont K;
      K.Kind = Kont::K::Args;
      K.Node = E;
      K.Next = 1;
      K.Base = Operands.size();
      Konts.push_back(K);
      Code = C->args()[0];
      return true;
    }
    case ExprKind::Prim: {
      const auto *Pr = cast<PrimExpr>(E);
      if (Pr->args().empty()) {
        finishPrim(Pr, Operands.size());
        return !Trapped;
      }
      Kont K;
      K.Kind = Kont::K::Args;
      K.Node = E;
      K.Next = 1;
      K.Base = Operands.size();
      Konts.push_back(K);
      Code = Pr->args()[0];
      return true;
    }

    //===--- RC instructions ------------------------------------------------//
    case ExprKind::Dup:
      if (Sink)
        Sink->setSite(E, "dup", E->loc());
      ++Run->Rc.Dups;
      H.dup(local(E->layoutA()));
      Code = cast<DupExpr>(E)->rest();
      return true;
    case ExprKind::Drop:
      if (Sink)
        Sink->setSite(E, "drop", E->loc());
      ++Run->Rc.Drops;
      H.drop(local(E->layoutA()));
      Code = cast<DropExpr>(E)->rest();
      return true;
    case ExprKind::Free: {
      // `free` is memory-only disposal, not an RC operation: it never
      // reaches the heap's dup/drop/decref API, so it stays outside the
      // HeapStats classification invariant (tracked in Rc.Frees only).
      if (Sink)
        Sink->setSite(E, "free", E->loc());
      ++Run->Rc.Frees;
      Value V = local(E->layoutA());
      if (V.Kind == ValueKind::HeapRef) {
        H.freeMemoryOnly(V.Ref);
      } else if (V.Kind == ValueKind::Token) {
        if (V.Tok)
          H.freeMemoryOnly(V.Tok);
      }
      Code = cast<FreeExpr>(E)->rest();
      return true;
    }
    case ExprKind::DecRef:
      if (Sink)
        Sink->setSite(E, "decref", E->loc());
      ++Run->Rc.DecRefs;
      H.decref(local(E->layoutA()));
      Code = cast<DecRefExpr>(E)->rest();
      return true;
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      if (Sink)
        Sink->setSite(E, "is-unique", E->loc());
      ++Run->Rc.IsUniques;
      Code = H.isUnique(local(E->layoutA())) ? U->thenExpr() : U->elseExpr();
      return true;
    }
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      Value V = local(E->layoutA());
      if (V.Kind != ValueKind::HeapRef) {
        trap("drop-reuse of a non-heap value");
        return false;
      }
      if (Sink)
        Sink->setSite(E, "drop-reuse", E->loc());
      ++Run->Rc.DropReuses;
      ++Run->Rc.IsUniques; // the probe below is a real is-unique test
      if (H.isUnique(V)) {
        Run->Rc.ImplicitDrops += V.Ref->H.Arity; // dropChildren drops each
        H.dropChildren(V.Ref);
        local(E->layoutB()) = Value::makeToken(V.Ref);
      } else {
        ++Run->Rc.ImplicitDecRefs;
        H.decref(V);
        local(E->layoutB()) = Value::makeToken(nullptr);
      }
      Code = D->rest();
      return true;
    }
    case ExprKind::ReuseAddr: {
      Value V = local(E->layoutA());
      if (V.Kind != ValueKind::HeapRef) {
        trap("reuse-addr of a non-heap value");
        return false;
      }
      Result = Value::makeToken(V.Ref);
      Code = nullptr;
      return true;
    }
    case ExprKind::NullToken:
      Result = Value::makeToken(nullptr);
      Code = nullptr;
      return true;
    case ExprKind::IsNullToken: {
      const auto *N = cast<IsNullTokenExpr>(E);
      Value V = local(E->layoutA());
      if (V.Tok == nullptr) {
        // The reuse-specialized fresh path: the pairing missed.
        ++Run->ReuseMisses;
        if (Sink) {
          Sink->setSite(E, "is-null-token", E->loc());
          Sink->record(RcEvent::ReuseMiss, 0);
        }
        Code = N->thenExpr();
      } else {
        Code = N->elseExpr();
      }
      return true;
    }
    case ExprKind::SetField: {
      const auto *S = cast<SetFieldExpr>(E);
      Kont K;
      K.Kind = Kont::K::SetField;
      K.Node = E;
      Konts.push_back(K);
      Code = S->value();
      return true;
    }
    case ExprKind::TokenValue: {
      const auto *T = cast<TokenValueExpr>(E);
      Value V = local(E->layoutA());
      if (V.Kind != ValueKind::Token || !V.Tok) {
        trap("token value of a null or non-token");
        return false;
      }
      Cell *C = V.Tok;
      C->H.Tag = static_cast<uint8_t>(P.ctor(T->ctor()).Tag);
      C->H.Kind = CellKind::Ctor;
      ++Run->ReuseHits;
      if (Sink) {
        Sink->setSite(E, "token-value", E->loc());
        Sink->record(RcEvent::ReuseHit, Cell::allocSize(C->H.Arity));
      }
      Result = Value::makeRef(C);
      Code = nullptr;
      return true;
    }
    }
    trap("unhandled expression kind");
    return false;
  }

  // Apply phase: feed Result to the top continuation.
  if (Konts.empty())
    return false; // run complete
  Kont K = Konts.back();
  switch (K.Kind) {
  case Kont::K::Ret:
    Konts.pop_back();
    Locals.resize(K.FrameStart);
    CurBase = K.Base;
    --CallDepth;
    return true;
  case Kont::K::Let: {
    Konts.pop_back();
    const auto *L = cast<LetExpr>(K.Node);
    local(L->layoutA()) = Result;
    Code = L->body();
    return true;
  }
  case Kont::K::Seq:
    Konts.pop_back();
    Code = K.Node;
    return true;
  case Kont::K::If: {
    Konts.pop_back();
    const auto *I = cast<IfExpr>(K.Node);
    if (Result.Kind != ValueKind::Bool) {
      trap("if condition is not a boolean");
      return false;
    }
    Code = Result.asBool() ? I->thenExpr() : I->elseExpr();
    return true;
  }
  case Kont::K::SetField: {
    Konts.pop_back();
    const auto *S = cast<SetFieldExpr>(K.Node);
    Value Tok = local(S->layoutA());
    if (Tok.Kind != ValueKind::Token || !Tok.Tok) {
      trap("field assignment through a null token");
      return false;
    }
    Tok.Tok->fields()[S->index()] = Result;
    Code = S->rest();
    return true;
  }
  case Kont::K::Args:
    finishArgs(K);
    return !Trapped;
  }
  return false;
}

/// Collects the just-produced value and either evaluates the next
/// component or completes the application/constructor/primitive.
void Machine::finishArgs(const Kont &K) {
  Operands.push_back(Result);
  Kont &Top = Konts.back();
  const Expr *Node = K.Node;
  switch (Node->kind()) {
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(Node);
    size_t Total = 1 + A->args().size();
    if (Top.Next < Total) {
      Code = A->args()[Top.Next - 1];
      ++Top.Next;
      return;
    }
    size_t Base = Top.Base;
    Konts.pop_back();
    doCall(Base, Node->loc());
    return;
  }
  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(Node);
    if (Top.Next < C->args().size()) {
      Code = C->args()[Top.Next];
      ++Top.Next;
      return;
    }
    size_t Base = Top.Base;
    Konts.pop_back();
    finishCon(C, Base);
    return;
  }
  case ExprKind::Prim: {
    const auto *Pr = cast<PrimExpr>(Node);
    if (Top.Next < Pr->args().size()) {
      Code = Pr->args()[Top.Next];
      ++Top.Next;
      return;
    }
    size_t Base = Top.Base;
    Konts.pop_back();
    finishPrim(Pr, Base);
    return;
  }
  default:
    trap("corrupt argument continuation");
  }
}

void Machine::doCall(size_t OperandBase, SourceLoc Loc) {
  Value Callee = Operands[OperandBase];
  size_t NArgs = Operands.size() - OperandBase - 1;

  const Expr *Body = nullptr;
  uint32_t FrameSize = 0;
  const LamExpr *Lam = nullptr;
  Cell *Closure = nullptr;

  if (Callee.Kind == ValueKind::FnRef) {
    const FunctionDecl &Fn = P.function(Callee.fnId());
    if (Fn.Params.size() != NArgs) {
      trap("arity mismatch calling '" +
           std::string(P.symbols().name(Fn.Name)) + "'");
      return;
    }
    Body = Fn.Body;
    FrameSize = Layout.FuncFrameSize[Callee.fnId()];
  } else if (Callee.Kind == ValueKind::HeapRef &&
             Callee.Ref->H.Kind == CellKind::Closure) {
    Closure = Callee.Ref;
    Lam = static_cast<const LamExpr *>(Closure->fields()[0].rawPtr());
    if (Lam->params().size() != NArgs) {
      trap("arity mismatch calling a closure");
      return;
    }
    Body = Lam->body();
    FrameSize = Lam->layoutB();
  } else {
    trap("calling a non-function value");
    return;
  }

  // Tail call: the continuation is this frame's return — reuse it.
  bool Tail = !Konts.empty() && Konts.back().Kind == Kont::K::Ret;
  size_t NewBase;
  if (Tail) {
    ++Run->TailCalls;
    NewBase = Konts.back().FrameStart;
    // Keep the frame's Ret continuation; replace the frame itself.
  } else {
    if (CallDepthLimit && CallDepth >= CallDepthLimit) {
      trap("call depth limit exceeded (stack overflow)",
           TrapKind::StackOverflow);
      return;
    }
    ++CallDepth;
    if (CallDepth > Run->MaxCallDepth)
      Run->MaxCallDepth = CallDepth;
    Kont K;
    K.Kind = Kont::K::Ret;
    K.Base = CurBase;
    K.FrameStart = Locals.size();
    Konts.push_back(K);
    NewBase = K.FrameStart;
  }

  // Bind arguments (params occupy slots 0..n-1), then captures.
  // Copy args aside first: a tail call shrinks the locals the operands
  // do not live in, but the operand stack itself must be popped before
  // we touch Locals to keep sizes consistent.
  size_t ArgStart = OperandBase + 1;
  if (Tail) {
    Locals.resize(NewBase);
  }
  Locals.resize(NewBase + FrameSize);
  for (size_t I = 0; I != NArgs; ++I)
    Locals[NewBase + I] = Operands[ArgStart + I];
  CurBase = NewBase;
  Operands.resize(OperandBase);

  if (Lam) {
    // Rule (app_r): dup the captured environment, then drop the closure.
    if (Sink)
      Sink->setSite(Lam, "app", Loc);
    const std::vector<uint32_t> &List = Layout.SlotLists[Lam->layoutA()];
    size_t NCaps = Lam->captures().size();
    const uint32_t *Targets = List.data() + NCaps;
    Value *Fields = Closure->fields();
    for (size_t I = 0; I != NCaps; ++I) {
      Value Cap = Fields[1 + I];
      ++Run->Rc.ImplicitDups;
      H.dup(Cap);
      Locals[NewBase + Targets[I]] = Cap;
    }
    ++Run->Rc.ImplicitDrops;
    H.drop(Value::makeRef(Closure));
  }

  Code = Body;
}

void Machine::finishCon(const ConExpr *C, size_t OperandBase) {
  const CtorDecl &D = P.ctor(C->ctor());
  Cell *Cl = nullptr;
  if (Sink)
    Sink->setSite(C, C->hasReuseToken() ? "con@ru" : "con", C->loc());
  if (C->hasReuseToken()) {
    Value Tok = local(C->layoutA());
    if (Tok.Kind != ValueKind::Token) {
      trap("constructor reuse with a non-token");
      return;
    }
    if (Tok.Tok) {
      Cl = Tok.Tok; // in-place reuse: same memory, fresh identity
      assert(Cl->H.Arity == D.Arity && "reuse token arity mismatch");
      Cl->H.Rc.store(1, std::memory_order_relaxed);
      Cl->H.Tag = static_cast<uint8_t>(D.Tag);
      Cl->H.Kind = CellKind::Ctor;
      ++Run->ReuseHits;
      if (Sink)
        Sink->record(RcEvent::ReuseHit, Cell::allocSize(D.Arity));
    } else {
      ++Run->ReuseMisses;
      if (Sink)
        Sink->record(RcEvent::ReuseMiss, 0);
    }
  }
  if (!Cl) {
    Cl = H.alloc(D.Arity, D.Tag, CellKind::Ctor);
    if (!Cl) {
      // The field values stay on the operand stack for the unwind.
      trap("out of memory allocating a constructor", TrapKind::OutOfMemory);
      return;
    }
  }
  Value *Fields = Cl->fields();
  for (uint32_t I = 0; I != D.Arity; ++I)
    Fields[I] = Operands[OperandBase + I];
  Operands.resize(OperandBase);
  Result = Value::makeRef(Cl);
  Code = nullptr;
}

void Machine::finishPrim(const PrimExpr *Pr, size_t OperandBase) {
  size_t N = Operands.size() - OperandBase;
  auto arg = [&](size_t I) { return Operands[OperandBase + I]; };
  auto intArg = [&](size_t I, bool &OkFlag) {
    if (arg(I).Kind != ValueKind::Int) {
      OkFlag = false;
      return int64_t(0);
    }
    return arg(I).Int;
  };

  bool OkArgs = true;
  Value Out = Value::unit();
  switch (Pr->op()) {
  case PrimOp::Add:
  case PrimOp::Sub:
  case PrimOp::Mul:
  case PrimOp::Div:
  case PrimOp::Mod: {
    if (N != 2) {
      trap("arithmetic primitive arity");
      return;
    }
    int64_t A = intArg(0, OkArgs);
    int64_t B = intArg(1, OkArgs);
    if (!OkArgs) {
      trap("arithmetic on a non-integer");
      return;
    }
    switch (Pr->op()) {
    case PrimOp::Add:
      Out = Value::makeInt(A + B);
      break;
    case PrimOp::Sub:
      Out = Value::makeInt(A - B);
      break;
    case PrimOp::Mul:
      Out = Value::makeInt(A * B);
      break;
    case PrimOp::Div:
      if (B == 0) {
        trap("division by zero");
        return;
      }
      if (A == INT64_MIN && B == -1) {
        trap("integer overflow in division");
        return;
      }
      Out = Value::makeInt(A / B);
      break;
    default:
      if (B == 0) {
        trap("modulo by zero");
        return;
      }
      if (A == INT64_MIN && B == -1) {
        trap("integer overflow in modulo");
        return;
      }
      Out = Value::makeInt(A % B);
      break;
    }
    break;
  }
  case PrimOp::Neg: {
    int64_t A = intArg(0, OkArgs);
    if (!OkArgs) {
      trap("negation of a non-integer");
      return;
    }
    if (A == INT64_MIN) {
      trap("integer overflow in negation");
      return;
    }
    Out = Value::makeInt(-A);
    break;
  }
  case PrimOp::Lt:
  case PrimOp::Le:
  case PrimOp::Gt:
  case PrimOp::Ge: {
    int64_t A = intArg(0, OkArgs);
    int64_t B = intArg(1, OkArgs);
    if (!OkArgs) {
      trap("comparison of non-integers");
      return;
    }
    bool R = false;
    switch (Pr->op()) {
    case PrimOp::Lt:
      R = A < B;
      break;
    case PrimOp::Le:
      R = A <= B;
      break;
    case PrimOp::Gt:
      R = A > B;
      break;
    default:
      R = A >= B;
      break;
    }
    Out = Value::makeBool(R);
    break;
  }
  case PrimOp::EqInt:
  case PrimOp::NeInt: {
    Value A = arg(0);
    Value B = arg(1);
    bool Eq;
    if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
      Eq = A.Int == B.Int;
    else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
      Eq = (A.Int != 0) == (B.Int != 0);
    else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
      Eq = A.Bits == B.Bits;
    else {
      trap("equality on incompatible or heap values");
      return;
    }
    Out = Value::makeBool(Pr->op() == PrimOp::EqInt ? Eq : !Eq);
    break;
  }
  case PrimOp::Not: {
    if (arg(0).Kind != ValueKind::Bool) {
      trap("negation of a non-boolean");
      return;
    }
    Out = Value::makeBool(!arg(0).asBool());
    break;
  }
  case PrimOp::PrintLn: {
    if (arg(0).Kind == ValueKind::Int)
      Run->Output += std::to_string(arg(0).Int);
    else if (arg(0).Kind == ValueKind::Bool)
      Run->Output += arg(0).asBool() ? "True" : "False";
    else if (arg(0).Kind == ValueKind::Unit)
      Run->Output += "()";
    else {
      trap("println of a non-printable value");
      return;
    }
    Run->Output += '\n';
    break;
  }
  case PrimOp::MarkShared: {
    // tshare consumes its argument (the reference is transferred in).
    if (Sink)
      Sink->setSite(Pr, "tshare", Pr->loc());
    H.markShared(arg(0));
    ++Run->Rc.ImplicitDrops;
    H.drop(arg(0));
    break;
  }
  case PrimOp::Abort:
    trap("abort: non-exhaustive match or explicit failure");
    return;
  case PrimOp::RefNew: {
    // Ownership of the content moves into the cell.
    if (Sink)
      Sink->setSite(Pr, "ref-new", Pr->loc());
    Cell *C = H.alloc(1, 0, CellKind::Ref);
    if (!C) {
      trap("out of memory allocating a reference", TrapKind::OutOfMemory);
      return;
    }
    C->fields()[0] = arg(0);
    Out = Value::makeRef(C);
    break;
  }
  case PrimOp::RefGet: {
    Value R = arg(0);
    if (R.Kind != ValueKind::HeapRef || R.Ref->H.Kind != CellKind::Ref) {
      trap("deref of a non-reference");
      return;
    }
    Out = R.Ref->fields()[0];
    // The paper's read: dup the content, then release the handle. (Our
    // machine is single-threaded; Section 2.7.3's dup/write race needs
    // the atomic path only under concurrent mutation.)
    if (Sink)
      Sink->setSite(Pr, "ref-get", Pr->loc());
    ++Run->Rc.ImplicitDups;
    H.dup(Out);
    ++Run->Rc.ImplicitDrops;
    H.drop(R);
    break;
  }
  case PrimOp::RefSet: {
    Value R = arg(0);
    if (R.Kind != ValueKind::HeapRef || R.Ref->H.Kind != CellKind::Ref) {
      trap("set-ref of a non-reference");
      return;
    }
    Value Old = R.Ref->fields()[0];
    R.Ref->fields()[0] = arg(1); // content ownership moves in
    if (Sink)
      Sink->setSite(Pr, "ref-set", Pr->loc());
    Run->Rc.ImplicitDrops += 2;
    H.drop(Old);
    H.drop(R); // release the handle
    break;
  }
  }
  Operands.resize(OperandBase);
  Result = Out;
  Code = nullptr;
}

/// If \p E is a chain of RC statements ending in the unit literal,
/// executes the chain and returns the terminal; otherwise returns null
/// without side effects (the shape is validated before execution).
const Expr *Machine::tryRunRcChainToUnit(const Expr *E) {
  const Expr *T = E;
  while (isa<RcStmtExpr>(T))
    T = cast<RcStmtExpr>(T)->rest();
  const auto *L = dyn_cast<LitExpr>(T);
  if (!L || L->value().Kind != LitKind::Unit)
    return nullptr;
  runRcChain(E, T);
  return T;
}

/// Like tryRunRcChainToUnit but for chains ending in `&v` or `NULL`
/// (the drop-reuse specialized branches); yields the token value.
bool Machine::tryRunRcChainToToken(const Expr *E, Value &Tok) {
  const Expr *T = E;
  while (isa<RcStmtExpr>(T))
    T = cast<RcStmtExpr>(T)->rest();
  if (const auto *R = dyn_cast<ReuseAddrExpr>(T)) {
    runRcChain(E, T);
    Value V = local(R->layoutA());
    if (V.Kind != ValueKind::HeapRef) {
      trap("reuse-addr of a non-heap value");
      return false;
    }
    Tok = Value::makeToken(V.Ref);
    return true;
  }
  if (isa<NullTokenExpr>(T)) {
    runRcChain(E, T);
    Tok = Value::makeToken(nullptr);
    return true;
  }
  return false;
}

/// Executes the RC statements from \p E up to (excluding) \p End.
void Machine::runRcChain(const Expr *E, const Expr *End) {
  while (E != End) {
    const auto *R = cast<RcStmtExpr>(E);
    Value V = local(R->layoutA());
    switch (E->kind()) {
    case ExprKind::Dup:
      if (Sink)
        Sink->setSite(E, "dup", E->loc());
      ++Run->Rc.Dups;
      H.dup(V);
      break;
    case ExprKind::Drop:
      if (Sink)
        Sink->setSite(E, "drop", E->loc());
      ++Run->Rc.Drops;
      H.drop(V);
      break;
    case ExprKind::DecRef:
      if (Sink)
        Sink->setSite(E, "decref", E->loc());
      ++Run->Rc.DecRefs;
      H.decref(V);
      break;
    default: // Free
      if (Sink)
        Sink->setSite(E, "free", E->loc());
      ++Run->Rc.Frees;
      if (V.Kind == ValueKind::HeapRef)
        H.freeMemoryOnly(V.Ref);
      else if (V.Kind == ValueKind::Token && V.Tok)
        H.freeMemoryOnly(V.Tok);
      break;
    }
    E = R->rest();
  }
}

void Machine::enumerateRoots(const std::function<void(Value)> &Fn) const {
  for (const Value &V : Locals)
    Fn(V);
  for (const Value &V : Operands)
    Fn(V);
  if (!Code)
    Fn(Result);
}
