//===- eval/Layout.h - Frame layout for the abstract machine ----*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns every binder a dense slot index within its enclosing frame
/// (function or lambda activation) and annotates every variable-bearing
/// IR node with the slots it touches, so the abstract machine runs with
/// plain array indexing instead of environment lookups.
///
/// Annotation scheme (via Expr::layoutA/layoutB):
///   Var              A = slot
///   Let              A = binder slot
///   Match            A = scrutinee slot, B = slot-list index (binder
///                        slots of all arms, concatenated in arm order)
///   Lam              A = slot-list index ([capture source slots in the
///                        enclosing frame] ++ [capture target slots in
///                        the lambda frame]), B = lambda frame size
///   Dup/Drop/Free/DecRef/IsUnique/ReuseAddr   A = variable slot
///   DropReuse        A = variable slot, B = token slot
///   IsNullToken/SetField/TokenValue           A = token slot
///   Con (with token) A = token slot
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_EVAL_LAYOUT_H
#define PERCEUS_EVAL_LAYOUT_H

#include "ir/Program.h"

#include <vector>

namespace perceus {

/// The side tables produced by frame layout.
struct ProgramLayout {
  /// Frame size (in slots) of each top-level function.
  std::vector<uint32_t> FuncFrameSize;
  /// Slot lists referenced by node annotations.
  std::vector<std::vector<uint32_t>> SlotLists;
};

/// Runs frame layout over every function of \p P, writing node
/// annotations and returning the side tables. Must be re-run after any
/// pass changes function bodies.
ProgramLayout layoutProgram(const Program &P);

} // namespace perceus

#endif // PERCEUS_EVAL_LAYOUT_H
