//===- bytecode/Peephole.h - Post-compile superinstruction tier -*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The peephole tier: a post-compile rewrite of every chunk in a
/// CompiledProgram that (a) deletes RC instructions the immediacy
/// analysis (analysis/ImmediateAnalysis.h) proved to be dynamic no-ops,
/// and (b) fuses hot adjacent instruction pairs/triples into the
/// superinstructions at the tail of the Op enum. Both transforms
/// preserve the engine parity contract from Bytecode.h:
///
///   * Elision only removes dup/drop/decref whose operand is a proven
///     immediate — operations the heap classifies as NonHeapRcOps. Every
///     heap-semantic counter (allocs, frees, heap dups/drops, reuse
///     hits, peak bytes) is bit-identical before and after; only the
///     non-heap RC tallies and the engine's own Dups/Drops/DecRefs
///     shrink, by exactly the same amount on both sides of the heap/
///     engine classification invariant.
///   * Fusion is literal handler concatenation — the fused opcode runs
///     the same heap calls, telemetry stamps and traps at the same
///     points as the pair it replaces, and additionally counts itself
///     in RcInstrCounts::FusedOps/FusedRcOps.
///
/// Control-flow safety: an instruction that is a jump target (a
/// "leader") never becomes the second-or-later component of a fusion,
/// and no fusion spans a leader — including the pcs of elided
/// instructions inside the fused span, since their remapped targets
/// would otherwise land mid-superinstruction. Match tables of rewritten
/// chunks are cloned (arm targets remapped) so the retained raw chunks
/// keep their original tables.
///
/// The pre-rewrite chunks move to CompiledProgram::RawFuncs/RawLams;
/// VM::run falls back to them for any run whose entry arguments include
/// heap references (see the soundness boundary in ImmediateAnalysis.h).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BYTECODE_PEEPHOLE_H
#define PERCEUS_BYTECODE_PEEPHOLE_H

#include "bytecode/Bytecode.h"

#include <cstdint>
#include <string>
#include <vector>

namespace perceus {

/// Per-chunk rewrite statistics, reported by `perc --pass-stats`.
struct PeepholeChunkStats {
  std::string Name;     ///< function name, or "lambda#N"
  uint32_t Before = 0;  ///< instructions pre-rewrite
  uint32_t After = 0;   ///< instructions post-rewrite
  uint32_t Elided = 0;  ///< RC instructions deleted (proven immediate)
  uint32_t Fused = 0;   ///< fusions performed (each removes >=1 instr)
};

struct PeepholeReport {
  std::vector<PeepholeChunkStats> Chunks;
  uint32_t AnalysisRounds = 0; ///< immediacy fixpoint rounds
  uint64_t totalElided() const {
    uint64_t N = 0;
    for (const auto &C : Chunks)
      N += C.Elided;
    return N;
  }
  uint64_t totalFused() const {
    uint64_t N = 0;
    for (const auto &C : Chunks)
      N += C.Fused;
    return N;
  }
};

/// Rewrites \p CP in place (idempotent: a second call on an already
/// peepholed program is a no-op returning an empty report). Runs the
/// immediacy analysis on CP.Prog, then elides and fuses every function
/// and lambda chunk.
PeepholeReport runPeephole(CompiledProgram &CP);

} // namespace perceus

#endif // PERCEUS_BYTECODE_PEEPHOLE_H
