//===- bytecode/Peephole.cpp - Post-compile superinstruction tier ---------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Peephole.h"

#include "analysis/ImmediateAnalysis.h"

#include <cassert>

namespace perceus {

namespace {

/// Does this opcode's E field hold a pc target that must be remapped
/// after instructions move? (MatchOp is handled separately: its targets
/// live in the match table, which gets cloned per rewritten chunk.)
bool isBranchOp(Op O) {
  switch (O) {
  case Op::Jump:
  case Op::JumpIfFalse:
  case Op::IsUniqueBr:
  case Op::IsNullTokenBr:
  case Op::IsUniqueReuse:
  case Op::LtBr:
  case Op::LeBr:
  case Op::GtBr:
  case Op::GeBr:
  case Op::EqBr:
  case Op::NeBr:
  case Op::CmpConstBr:
  case Op::IsUniqueBrDup2:
  case Op::JfMove:
  case Op::JfDrop:
  case Op::MoveCmpConstBr:
    return true;
  default:
    return false;
  }
}

/// Maps an arithmetic opcode to the kind byte shared by MoveArith /
/// ArithMove (0 add, 1 sub, 2 mul), or returns false. Div/Mod/Neg stay
/// unfused: their trap repertoire (zero divisors, INT64_MIN overflow)
/// is pinned by dedicated tests and they are cold in every benchmark.
bool arithKind(Op O, uint8_t &K) {
  switch (O) {
  case Op::Add:
    K = 0;
    return true;
  case Op::Sub:
    K = 1;
    return true;
  case Op::Mul:
    K = 2;
    return true;
  default:
    return false;
  }
}

/// Maps a compare opcode to its branch-fused twin, or returns false.
bool cmpToBr(Op Cmp, Op &Br, CmpBrKind &K) {
  switch (Cmp) {
  case Op::Lt:
    Br = Op::LtBr;
    K = CmpBrKind::Lt;
    return true;
  case Op::Le:
    Br = Op::LeBr;
    K = CmpBrKind::Le;
    return true;
  case Op::Gt:
    Br = Op::GtBr;
    K = CmpBrKind::Gt;
    return true;
  case Op::Ge:
    Br = Op::GeBr;
    K = CmpBrKind::Ge;
    return true;
  case Op::EqVal:
    Br = Op::EqBr;
    K = CmpBrKind::Eq;
    return true;
  case Op::NeVal:
    Br = Op::NeBr;
    K = CmpBrKind::Ne;
    return true;
  default:
    return false;
  }
}

/// Rewrites one chunk: elide proven-immediate RC ops, fuse adjacent
/// pairs/triples, remap every branch target and clone the chunk's match
/// tables. \p CP is needed for the match-table pool (clones append).
void rewriteChunk(Chunk &Ch, CompiledProgram &CP, const ImmediateInfo &Info,
                  PeepholeChunkStats &St) {
  const std::vector<Instr> OldCode = std::move(Ch.Code);
  const std::vector<const Expr *> OldSites = std::move(Ch.Sites);
  const size_t N = OldCode.size();
  St.Before = static_cast<uint32_t>(N);

  // Instructions whose site the immediacy analysis proved elidable.
  std::vector<char> Elide(N, 0);
  for (size_t P = 0; P != N; ++P) {
    Op O = OldCode[P].O;
    if ((O == Op::Dup || O == Op::Drop || O == Op::DecRef) &&
        Info.ElidableRcOps.count(OldSites[P]))
      Elide[P] = 1;
  }

  // The next non-elided pc strictly after P, or N.
  auto nextKept = [&](size_t P) {
    ++P;
    while (P < N && Elide[P])
      ++P;
    return P;
  };

  // Leaders: every pc some branch or match arm can land on. A fusion
  // must not span one (jumping into the middle of a superinstruction
  // would re-run or skip components), and neither may the elided gap
  // inside a fused span — the gap's remapped target would otherwise
  // resolve mid-superinstruction.
  std::vector<char> Leader(N + 1, 0);
  for (size_t P = 0; P != N; ++P) {
    const Instr &I = OldCode[P];
    if (I.O == Op::Jump || I.O == Op::JumpIfFalse || I.O == Op::IsUniqueBr ||
        I.O == Op::IsNullTokenBr)
      Leader[I.E] = 1;
    else if (I.O == Op::MatchOp)
      for (const MatchArmCode &Arm : CP.Matches[I.E].Arms)
        Leader[Arm.Target] = 1;
  }

  // Jump-threading pre-pass: a CmpJmp fusion branches straight to the
  // *successor* of the JumpIfFalse it skips, so that successor becomes a
  // jump target and must be a leader before the greedy scan decides any
  // fusions (otherwise a later fusion at the JumpIfFalse could swallow
  // it and the threaded true-edge would land mid-superinstruction).
  // Over-marking is safe — leaders only restrict fusion.
  for (size_t P = 0; P != N; ++P) {
    Op Br;
    CmpBrKind K;
    if (Elide[P] || !cmpToBr(OldCode[P].O, Br, K))
      continue;
    const size_t Q = nextKept(P);
    if (Q >= N || OldCode[Q].O != Op::Jump)
      continue;
    const uint32_t L = OldCode[Q].E;
    if (L < N && OldCode[L].O == Op::JumpIfFalse &&
        OldCode[L].B == OldCode[P].B && OldCode[P].B >= Ch.FirstTemp &&
        L + 1 <= 0xffff)
      Leader[L + 1] = 1;
  }

  std::vector<Instr> Code;
  std::vector<const Expr *> Sites, Sites2, Sites3;
  Code.reserve(N);
  Sites.reserve(N);
  Sites2.reserve(N);
  Sites3.reserve(N);
  // OldToNew[p] = new index of the instruction covering old pc p, or of
  // the next emitted instruction when p was elided (an elided RC op is a
  // dynamic no-op, so branching to its successor is equivalent).
  std::vector<uint32_t> OldToNew(N + 1, 0);

  auto emit = [&](Instr I, const Expr *S1, const Expr *S2, const Expr *S3) {
    Code.push_back(I);
    Sites.push_back(S1);
    Sites2.push_back(S2);
    Sites3.push_back(S3);
  };

  // True when no old pc in (P0, Last] is a leader — the whole candidate
  // span, elided gaps included, is only enterable at its head.
  auto spanFree = [&](size_t P0, size_t Last) {
    for (size_t T = P0 + 1; T <= Last; ++T)
      if (Leader[T])
        return false;
    return true;
  };
  size_t P = 0;
  while (P < N) {
    if (Elide[P]) {
      OldToNew[P] = static_cast<uint32_t>(Code.size());
      ++St.Elided;
      ++P;
      continue;
    }
    const Instr &X = OldCode[P];
    const size_t Q = nextKept(P);
    const size_t R2 = Q < N ? nextKept(Q) : N;
    const size_t S3 = R2 < N ? nextKept(R2) : N;
    const Instr *NQ = Q < N ? &OldCode[Q] : nullptr;
    const Instr *NR = R2 < N ? &OldCode[R2] : nullptr;
    const Instr *NS = S3 < N ? &OldCode[S3] : nullptr;
    const uint32_t Idx = static_cast<uint32_t>(Code.size());

    auto fuse = [&](size_t Last, Instr I, const Expr *S1, const Expr *S2,
                    const Expr *S3) {
      for (size_t T = P; T <= Last; ++T)
        OldToNew[T] = Idx;
      emit(I, S1, S2, S3);
      ++St.Fused;
      P = Last + 1;
    };

    bool Fused = false;
    switch (X.O) {
    case Op::Dup:
      if (NQ && NQ->O == Op::Dup && NR && NR->O == Op::DecRef && NS &&
          NS->O == Op::LoadConst && NS->B <= 0xff && spanFree(P, S3)) {
        // The else-block of a unique check: dup the fields that survive,
        // release the shared cell, load the arm's constant.
        fuse(S3,
             {Op::Dup2DecLoadConst, static_cast<uint8_t>(NS->B), NR->C, X.C,
              NQ->C, NS->E},
             OldSites[P], OldSites[Q], OldSites[R2]);
        Fused = true;
      } else if (NQ && NQ->O == Op::Move && NQ->C == X.C && NR &&
                 NR->O == Op::Dup && NS && NS->O == Op::Move &&
                 NS->C == NR->C && spanFree(P, S3)) {
        // Match-binder materialization: two dup-then-copy pairs where each
        // move reads the slot its dup just retained.
        fuse(S3, {Op::Dup2Move2, 0, NQ->B, X.C, NS->B, NR->C}, OldSites[P],
             OldSites[R2], nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::DecRef && NR && NR->O == Op::LoadConst &&
                 spanFree(P, R2)) {
        fuse(R2, {Op::DupDecLoadConst, 0, NR->B, X.C, NQ->C, NR->E},
             OldSites[P], OldSites[Q], nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::CallStatic && spanFree(P, Q)) {
        fuse(Q,
             {Op::DupCallStatic, NQ->A, NQ->B, NQ->C, X.C, NQ->E},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Call && spanFree(P, Q)) {
        // Sites holds the call site (applyClosure stamps through it);
        // the dup's own site rides in Sites2.
        fuse(Q, {Op::DupCall, NQ->A, NQ->B, NQ->C, X.C, 0}, OldSites[Q],
             OldSites[P], nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Dup && NR && NR->O == Op::Dup &&
                 spanFree(P, R2)) {
        fuse(R2, {Op::Dup3, 0, 0, X.C, NQ->C, NR->C}, OldSites[P],
             OldSites[Q], OldSites[R2]);
        Fused = true;
      } else if (NQ && NQ->O == Op::Dup && spanFree(P, Q)) {
        fuse(Q, {Op::Dup2, 0, 0, X.C, NQ->C, 0}, OldSites[P], OldSites[Q],
             nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Move && spanFree(P, Q)) {
        fuse(Q, {Op::DupMove, 0, NQ->B, NQ->C, X.C, 0}, OldSites[P], nullptr,
             nullptr);
        Fused = true;
      }
      break;
    case Op::Drop:
      if (NQ && NQ->O == Op::Drop && NR && NR->O == Op::Drop &&
          spanFree(P, R2)) {
        fuse(R2, {Op::Drop3, 0, 0, X.C, NQ->C, NR->C}, OldSites[P],
             OldSites[Q], OldSites[R2]);
        Fused = true;
      } else if (NQ && NQ->O == Op::Drop && spanFree(P, Q)) {
        fuse(Q, {Op::Drop2, 0, 0, X.C, NQ->C, 0}, OldSites[P], OldSites[Q],
             nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::LoadConst && NR && NR->O == Op::Ret &&
                 NR->B == NQ->B && NQ->B >= Ch.FirstTemp && spanFree(P, R2)) {
        // The tail of almost every arm body: drop the scrutinee, return
        // a constant through a dead temp.
        fuse(R2, {Op::DropRetConst, 0, 0, X.C, 0, NQ->E}, OldSites[P],
             nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::LoadConst && spanFree(P, Q)) {
        fuse(Q, {Op::DropLoadConst, 0, NQ->B, X.C, 0, NQ->E}, OldSites[P],
             nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Move && spanFree(P, Q)) {
        fuse(Q, {Op::DropMove, 0, NQ->B, X.C, NQ->C, 0}, OldSites[P], nullptr,
             nullptr);
        Fused = true;
      }
      break;
    case Op::DecRef:
      if (NQ && NQ->O == Op::LoadConst && spanFree(P, Q)) {
        fuse(Q, {Op::DecLoadConst, 0, NQ->B, X.C, 0, NQ->E}, OldSites[P],
             nullptr, nullptr);
        Fused = true;
      }
      break;
    case Op::JumpIfFalse:
      // The fall-through component runs only on the true path, exactly
      // as it did when it merely followed the branch.
      if (NQ && NQ->O == Op::Move && spanFree(P, Q)) {
        fuse(Q, {Op::JfMove, 0, X.B, NQ->B, NQ->C, X.E}, OldSites[P], nullptr,
             nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Drop && spanFree(P, Q)) {
        fuse(Q, {Op::JfDrop, 0, X.B, NQ->C, 0, X.E}, OldSites[P], OldSites[Q],
             nullptr);
        Fused = true;
      }
      break;
    case Op::IsUniqueBr:
      // The unique path falls through straight into the token
      // materialization; isUnique is false for every non-heap value, so
      // ReuseAddr's non-heap trap was unreachable in this shape.
      if (NQ && NQ->O == Op::ReuseAddr && NQ->C == X.C && NR &&
          NR->O == Op::Jump && NR->E <= 0xffff && spanFree(P, R2)) {
        // The unique path's whole tail: probe, materialize the token,
        // jump to the reuse-specialized arm. New pcs only shrink, so the
        // jump target still fits the 16-bit D field after remapping.
        fuse(R2,
             {Op::IsUniqueReuseJmp, 0, NQ->B, X.C,
              static_cast<uint16_t>(NR->E), X.E},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::ReuseAddr && NQ->C == X.C &&
                 spanFree(P, Q)) {
        fuse(Q, {Op::IsUniqueReuse, 0, NQ->B, X.C, 0, X.E}, OldSites[P],
             nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Dup && NR && NR->O == Op::Dup &&
                 spanFree(P, R2)) {
        // Reuse-specialized arm prologue: probe then dup the fields. The
        // else-edge skipped both dups before; the fused handler runs
        // them only on the unique path, so spanFree (which covers the
        // else target, a leader) keeps the edge out of the span.
        fuse(R2, {Op::IsUniqueBrDup2, 0, NQ->C, X.C, NR->C, X.E}, OldSites[P],
             OldSites[Q], OldSites[R2]);
        Fused = true;
      }
      break;
    case Op::LoadConst: {
      Op Br;
      CmpBrKind K;
      if (NQ && NR && cmpToBr(NQ->O, Br, K) && NR->O == Op::JumpIfFalse &&
          NQ->D == X.B && NR->B == NQ->B && NQ->B >= Ch.FirstTemp &&
          X.B >= Ch.FirstTemp && NQ->C != X.B && X.E <= 0xffff &&
          spanFree(P, R2)) {
        // Both the constant temp and the boolean temp are dead outside
        // this expression; CmpConstBr reads the pool directly and never
        // writes either.
        fuse(R2,
             {Op::CmpConstBr, static_cast<uint8_t>(K), 0, NQ->C,
              static_cast<uint16_t>(X.E), NR->E},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Ret && NQ->B == X.B &&
                 X.B >= Ch.FirstTemp && spanFree(P, Q)) {
        fuse(Q, {Op::RetConst, 0, 0, 0, 0, X.E}, OldSites[P], nullptr,
             nullptr);
        Fused = true;
      } else if (uint8_t AK;
                 NQ && arithKind(NQ->O, AK) && X.B >= Ch.FirstTemp &&
                 X.E <= 0xffff &&
                 ((NQ->D == X.B && NQ->C != X.B) ||
                  (NQ->C == X.B && NQ->D != X.B)) &&
                 spanFree(P, Q)) {
        // The constant temp is dead past the arith that consumes it.
        // Kind byte: 0 x+K, 1 x-K, 2 K-x, 3 x*K — add and mul commute,
        // so only sub needs the operand-order split.
        const bool ConstRhs = NQ->D == X.B;
        uint8_t K = NQ->O == Op::Add   ? 0
                    : NQ->O == Op::Mul ? 3
                    : ConstRhs         ? 1
                                       : 2;
        const uint16_t XReg = ConstRhs ? NQ->C : NQ->D;
        if (NR && NR->O == Op::Ret && NR->B == NQ->B && spanFree(P, R2)) {
          // The arith feeds the return directly; the frame dies there,
          // so the dst write is unobservable and elided.
          fuse(R2,
               {Op::ArithConstRet, K, NQ->B, XReg, static_cast<uint16_t>(X.E),
                0},
               OldSites[P], nullptr, nullptr);
        } else if (NR && NR->O == Op::Move && spanFree(P, R2)) {
          fuse(R2,
               {Op::ArithConstMove, K, NQ->B, XReg,
                static_cast<uint16_t>(X.E),
                (static_cast<uint32_t>(NR->B) << 16) | NR->C},
               OldSites[P], nullptr, nullptr);
        } else {
          fuse(Q,
               {Op::ArithConst, K, NQ->B, XReg, static_cast<uint16_t>(X.E),
                0},
               OldSites[P], nullptr, nullptr);
        }
        Fused = true;
      } else if (NQ && NQ->O == Op::Move && spanFree(P, Q)) {
        fuse(Q, {Op::LoadConstMove, 0, NQ->B, NQ->C, X.B, X.E}, OldSites[P],
             nullptr, nullptr);
        Fused = true;
      }
      break;
    }
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::EqVal:
    case Op::NeVal: {
      Op Br;
      CmpBrKind K;
      if (NQ && NQ->O == Op::Jump && cmpToBr(X.O, Br, K) &&
          X.B >= Ch.FirstTemp && NQ->E < N &&
          OldCode[NQ->E].O == Op::JumpIfFalse && OldCode[NQ->E].B == X.B &&
          NQ->E + 1 <= 0xffff && spanFree(P, Q)) {
        // Loop rotation: the condition computed at the bottom jumps to
        // the header's JumpIfFalse on the same dead temp. Thread both
        // edges — B gets the skipped test's successor (marked a leader
        // by the pre-pass and remapped below), E its else target.
        fuse(Q,
             {Op::CmpJmp, static_cast<uint8_t>(K),
              static_cast<uint16_t>(NQ->E + 1), X.C, X.D, OldCode[NQ->E].E},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::JumpIfFalse && NQ->B == X.B &&
                 X.B >= Ch.FirstTemp && cmpToBr(X.O, Br, K) &&
                 spanFree(P, Q)) {
        fuse(Q, {Br, 0, 0, X.C, X.D, NQ->E}, OldSites[P], nullptr, nullptr);
        Fused = true;
      }
      break;
    }
    case Op::Add:
    case Op::Sub:
    case Op::Mul: {
      uint8_t AK;
      if (NQ && NQ->O == Op::Move && arithKind(X.O, AK) && spanFree(P, Q)) {
        fuse(Q,
             {Op::ArithMove, AK, X.B, X.C, X.D,
              (static_cast<uint32_t>(NQ->B) << 16) | NQ->C},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      }
      break;
    }
    case Op::Move: {
      uint8_t AK;
      Op Br;
      CmpBrKind CK;
      if (NQ && NQ->O == Op::Ret && NQ->B == X.B && spanFree(P, Q)) {
        // Not a new opcode: the move's only consumer is the return, and
        // the frame dies there, so Ret reads the source directly.
        fuse(Q, {Op::Ret, 0, X.C, 0, 0, 0}, OldSites[Q], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::TailCallStatic && spanFree(P, Q)) {
        fuse(Q, {Op::MoveTailCallStatic, NQ->A, X.B, NQ->C, X.C, NQ->E},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::LoadConst && NR && NS &&
                 cmpToBr(NR->O, Br, CK) && NS->O == Op::JumpIfFalse &&
                 NR->D == NQ->B && NS->B == NR->B && NR->B >= Ch.FirstTemp &&
                 NQ->B >= Ch.FirstTemp && NR->C == X.B && NR->C != NQ->B &&
                 NQ->E <= 0xffff && spanFree(P, S3)) {
        // The loop-header prologue: refresh the induction variable, then
        // the CmpConstBr quad on it. The fused move feeds the compare's
        // lhs, so the whole four-instruction header is one dispatch.
        fuse(S3,
             {Op::MoveCmpConstBr, static_cast<uint8_t>(CK), X.C, X.B,
              static_cast<uint16_t>(NQ->E), NS->E},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Dup && NR && NR->O == Op::Move &&
                 NR->C == NQ->C && NR->B <= 0xffff && spanFree(P, R2)) {
        // Copy, retain, copy: the second move reads the slot the dup
        // just retained (match binders feeding a recursive call window).
        fuse(R2, {Op::MoveDupMove, 0, X.B, X.C, NQ->C, NR->B}, OldSites[Q],
             nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::LoadConst && NR && arithKind(NR->O, AK) &&
                 NQ->B >= Ch.FirstTemp && NQ->E <= 0xffff && X.B != NQ->B &&
                 ((NR->D == NQ->B && NR->C != NQ->B) ||
                  (NR->C == NQ->B && NR->D != NQ->B)) &&
                 spanFree(P, R2)) {
        // The ArithConst triple with a leading move — typically the
        // refreshed loop variable the arith then advances.
        const bool ConstRhs = NR->D == NQ->B;
        const uint8_t K = NR->O == Op::Add   ? 0
                          : NR->O == Op::Mul ? 3
                          : ConstRhs         ? 1
                                             : 2;
        fuse(R2,
             {Op::MoveArithConst, K, NR->B, ConstRhs ? NR->C : NR->D,
              static_cast<uint16_t>(NQ->E),
              (static_cast<uint32_t>(X.B) << 16) | X.C},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Move && NR && NR->O == Op::Move &&
                 NR->C <= 0xff && spanFree(P, R2)) {
        fuse(R2,
             {Op::Move3, static_cast<uint8_t>(NR->C), X.B, X.C, NQ->B,
              (static_cast<uint32_t>(NR->B) << 16) | NQ->C},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && arithKind(NQ->O, AK) && spanFree(P, Q)) {
        fuse(Q,
             {Op::MoveArith, AK, NQ->B, NQ->C, NQ->D,
              (static_cast<uint32_t>(X.B) << 16) | X.C},
             OldSites[P], nullptr, nullptr);
        Fused = true;
      } else if (NQ && NQ->O == Op::Move && spanFree(P, Q)) {
        fuse(Q, {Op::Move2, 0, X.B, X.C, NQ->B, NQ->C}, OldSites[P], nullptr,
             nullptr);
        Fused = true;
      }
      break;
    }
    case Op::Con:
      // The constructed cell is the return value; ConRet keeps the dst
      // write (for a clean unwind) and pops the frame in one dispatch.
      if (NQ && NQ->O == Op::Ret && NQ->B == X.B && spanFree(P, Q)) {
        fuse(Q, {Op::ConRet, X.A, X.B, X.C, X.D, 0}, OldSites[P], nullptr,
             nullptr);
        Fused = true;
      }
      break;
    case Op::SetField:
      // Same token slot: the set-field's null check subsumes the
      // token-value's, and the fused handler traps with the set-field
      // message first, exactly like the unfused pair.
      if (NQ && NQ->O == Op::TokenValue && NQ->C == X.C && spanFree(P, Q)) {
        fuse(Q, {Op::SetFieldToken, X.A, NQ->B, X.C, X.D, NQ->D}, OldSites[Q],
             nullptr, nullptr);
        Fused = true;
      }
      break;
    default:
      break;
    }

    if (!Fused) {
      OldToNew[P] = Idx;
      if (X.O == Op::Jump && X.E < N &&
          (OldCode[X.E].O == Op::Ret || OldCode[X.E].O == Op::Jump ||
           OldCode[X.E].O == Op::MatchOp)) {
        // Branch-target replication: the target fully transfers control
        // itself (returns, jumps on, or dispatches a match — MatchOp
        // always assigns the pc or traps), so a copy of it here saves
        // the trampoline dispatch. The replica's own target is remapped
        // by the patch pass below — a replicated MatchOp gets its own
        // per-occurrence table clone, so the shared original is safe.
        emit(OldCode[X.E], OldSites[X.E], nullptr, nullptr);
      } else {
        emit(X, OldSites[P], nullptr, nullptr);
      }
      ++P;
    }
  }
  OldToNew[N] = static_cast<uint32_t>(Code.size());

  // Remap branch targets; clone match tables so the raw chunks keep
  // their originals.
  for (Instr &I : Code) {
    if (I.O == Op::CmpJmp) {
      // Both edges are pc targets: B (true, the skipped test's
      // successor — new indices only shrink, so it still fits 16 bits)
      // and E (false, the skipped test's else target).
      I.B = static_cast<uint16_t>(OldToNew[I.B]);
      I.E = OldToNew[I.E];
    } else if (I.O == Op::IsUniqueReuseJmp) {
      // Two pc targets: D (unique, the fused Jump) and E (else).
      I.D = static_cast<uint16_t>(OldToNew[I.D]);
      I.E = OldToNew[I.E];
    } else if (isBranchOp(I.O)) {
      I.E = OldToNew[I.E];
    } else if (I.O == Op::MatchOp) {
      MatchTable NT = CP.Matches[I.E];
      for (MatchArmCode &Arm : NT.Arms)
        Arm.Target = OldToNew[Arm.Target];
      I.E = static_cast<uint32_t>(CP.Matches.size());
      CP.Matches.push_back(std::move(NT));
    }
  }

  Ch.Code = std::move(Code);
  Ch.Sites = std::move(Sites);
  Ch.Sites2 = std::move(Sites2);
  Ch.Sites3 = std::move(Sites3);
  St.After = static_cast<uint32_t>(Ch.Code.size());
}

} // namespace

PeepholeReport runPeephole(CompiledProgram &CP) {
  PeepholeReport Rep;
  if (CP.Peepholed || !CP.Prog)
    return Rep;

  ImmediateInfo Info = analyzeImmediates(*CP.Prog);
  Rep.AnalysisRounds = Info.Rounds;

  CP.RawFuncs = CP.Funcs;
  CP.RawLams = CP.Lams;

  for (size_t F = 0; F != CP.Funcs.size(); ++F) {
    PeepholeChunkStats St;
    St.Name = std::string(CP.Prog->symbols().name(CP.Funcs[F].Fn->Name));
    rewriteChunk(CP.Funcs[F], CP, Info, St);
    Rep.Chunks.push_back(std::move(St));
  }
  for (size_t L = 0; L != CP.Lams.size(); ++L) {
    PeepholeChunkStats St;
    St.Name = "lambda#" + std::to_string(L);
    rewriteChunk(CP.Lams[L], CP, Info, St);
    Rep.Chunks.push_back(std::move(St));
  }

  CP.Peepholed = true;
  return Rep;
}

} // namespace perceus
