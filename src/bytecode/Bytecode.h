//===- bytecode/Bytecode.h - Flat register bytecode -------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, register-based bytecode for the RC-instrumented IR. The
/// compiler (bytecode/Compiler.h) lowers each function and each lambda
/// body into a Chunk of fixed-width instructions over the frame layout
/// the CEK machine already uses: the layout pass's named slots become the
/// low registers of the frame, and expression temporaries live above
/// them. Operand windows for calls, constructors and primitives are
/// contiguous register ranges, Lua-style, so a call binds its arguments
/// by re-basing the register file instead of copying.
///
/// Design constraints, in priority order:
///
///  1. *Observable parity with the CEK machine.* The VM must issue the
///     exact same sequence of heap operations (alloc, dup, drop, decref,
///     is-unique, free, markShared) with the same telemetry sites, so
///     HeapStats, RcInstrCounts, reuse counters and fault-injection
///     behaviour are bit-identical across engines. This dictates the
///     evaluation order baked into the compiler (callee before
///     arguments, constructor fields before the allocation, value before
///     the token check in set-field) and the first-class RC opcodes.
///  2. *Dispatch speed.* Every RC instruction, the is-unique and
///     null-token branches, and each primitive is a single opcode;
///     constructor tag/arity are inline immediates resolved at compile
///     time (the "inline cache" — no CtorDecl lookup at run time); calls
///     to statically-known functions skip callee resolution entirely.
///
/// Instructions are 12 bytes: opcode, an 8-bit immediate A, three 16-bit
/// register/immediate fields B/C/D, and a 32-bit extended field E used
/// for jump targets, pool indices and function/lambda ids. Register
/// indices are frame-relative; a frame holds at most 65535 registers.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BYTECODE_BYTECODE_H
#define PERCEUS_BYTECODE_BYTECODE_H

#include "ir/Program.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace perceus {

/// Bytecode operations. Operand conventions are listed per opcode;
/// unnamed fields are unused. "window" is the first register of a
/// contiguous run of operands.
enum class Op : uint8_t {
  //===--- Moves and constants --------------------------------------------===//
  LoadConst,   ///< B=dst, E=constant-pool index
  Move,        ///< B=dst, C=src

  //===--- Control flow ---------------------------------------------------===//
  Jump,        ///< E=target pc
  JumpIfFalse, ///< B=cond, E=target pc (traps on a non-boolean)
  MatchOp,     ///< B=scrutinee slot, E=match-table index
  Call,        ///< A=nargs, B=dst, C=window (callee; args at window+1)
  CallStatic,  ///< A=nargs, B=dst, C=window (args), E=FuncId
  TailCall,    ///< A=nargs, C=window (callee; args at window+1)
  TailCallStatic, ///< A=nargs, C=window (args), E=FuncId
  Ret,         ///< B=src

  //===--- Heap allocation ------------------------------------------------===//
  MakeClosure, ///< B=dst, E=LamId (captures resolved via the lam chunk)
  Con,         ///< A=arity, B=dst, C=window (fields), D=ctor tag
  ConReuse,    ///< A=arity, B=dst, C=window, D=token slot, E=ctor tag

  //===--- RC instructions (first-class; see eval/Machine.h) --------------===//
  Dup,          ///< C=slot
  Drop,         ///< C=slot
  FreeOp,       ///< C=slot (memory-only disposal)
  DecRef,       ///< C=slot
  IsUniqueBr,   ///< C=slot, E=else target (unique path falls through)
  DropReuse,    ///< C=var slot, D=token slot
  ReuseAddr,    ///< B=dst, C=var slot
  IsNullTokenBr,///< C=token slot, E=else target (null path falls through)
  SetField,     ///< A=field index, C=token slot, D=value reg
  TokenValue,   ///< B=dst, C=token slot, D=ctor tag

  //===--- Primitives (one opcode each; fast unboxed paths) ---------------===//
  Add,          ///< B=dst, C=lhs, D=rhs (likewise through Ge)
  Sub,
  Mul,
  Div,
  Mod,
  Neg,          ///< B=dst, C=src
  Lt,
  Le,
  Gt,
  Ge,
  EqVal,        ///< B=dst, C=lhs, D=rhs (Int/Bool/Enum equality)
  NeVal,
  Not,          ///< B=dst, C=src
  PrintLn,      ///< B=dst, C=src
  MarkSharedOp, ///< B=dst, C=src (tshare: markShared + consuming drop)
  AbortOp,      ///< traps
  RefNew,       ///< B=dst, C=src
  RefGet,       ///< B=dst, C=src
  RefSet,       ///< B=dst, C=ref reg, D=value reg

  TrapOp,       ///< E=message index (compile-time-known runtime error)

  //===--- Superinstructions (emitted only by bytecode/Peephole.h) --------===//
  // Each fused opcode is semantically the exact concatenation of its
  // component handlers: same heap calls, same counter increments, same
  // telemetry stamps, same trap points. The compiler never emits these;
  // the peephole pass rewrites hot adjacent pairs/triples post-compile.
  DupMove,       ///< D=dup slot, B=move dst, C=move src
  Dup2,          ///< C=slot1, D=slot2
  Drop2,         ///< C=slot1, D=slot2
  Dup3,          ///< C=slot1, D=slot2, E=slot3
  Drop3,         ///< C=slot1, D=slot2, E=slot3
  DupCallStatic, ///< A=nargs, B=dst, C=window, D=dup slot, E=FuncId
  DupCall,       ///< A=nargs, B=dst, C=window (callee; args at window+1),
                 ///< D=dup slot
  IsUniqueReuse, ///< B=token dst, C=slot, E=else target (unique path
                 ///< materializes the reuse token and falls through)
  SetFieldToken, ///< A=field index, B=dst, C=token slot, D=value reg,
                 ///< E=ctor tag
  Move2,         ///< B=dst1, C=src1, D=dst2, E=src2 (sequential semantics)
  LoadConstMove, ///< D=const dst, E=constant-pool index, B=move dst,
                 ///< C=move src (const first, then the move)
  RetConst,      ///< E=constant-pool index
  LtBr,          ///< C=lhs, D=rhs, E=target (branches when the compare
  LeBr,          ///< is false, like JumpIfFalse; the boolean register
  GtBr,          ///< write of the component compare is elided — the
  GeBr,          ///< compiler only ever materializes it into a dead temp)
  EqBr,
  NeBr,
  CmpConstBr,    ///< A=CmpBrKind, C=lhs, D=constant-pool index, E=target
  CmpJmp,        ///< A=CmpBrKind, C=lhs, D=rhs, B=pc when true, E=pc when
                 ///< false. Jump-threads `cmp; Jump L` when L is the
                 ///< JumpIfFalse consuming the compare's dead temp: the
                 ///< loop-rotation shape every while-style recursion
                 ///< compiles into. Skips the target test entirely.
  MoveArith,     ///< A=0 add/1 sub/2 mul, B=dst, C=lhs, D=rhs,
                 ///< E=(move dst<<16)|move src — move first, then arith
  ArithMove,     ///< same fields as MoveArith; arith first, then move
  ArithConst,    ///< A=0 x+K/1 x-K/2 K-x/3 x*K, B=dst, C=x,
                 ///< D=constant-pool index of K
  Move3,         ///< B=dst1, C=src1, D=dst2, E=(dst3<<16)|src2, A=src3
                 ///< (sequential; src3 must fit in 8 bits)
  MoveTailCallStatic, ///< A=nargs, C=window, E=FuncId, B=move dst,
                 ///< D=move src (move first, then the tail call)
  IsUniqueBrDup2,///< C=slot, E=else target, B=dup1, D=dup2 — the dups
                 ///< run only on the unique fall-through path
  DecLoadConst,  ///< C=decref slot, B=dst, E=constant-pool index
  JfMove,        ///< B=cond, E=target, C=move dst, D=move src (the move
                 ///< runs only on the true fall-through path)
  JfDrop,        ///< B=cond, E=target, C=drop slot (drop only if true)
  DropLoadConst, ///< C=drop slot, B=dst, E=constant-pool index
  DropRetConst,  ///< C=drop slot, E=constant-pool index
  DupDecLoadConst,  ///< C=dup slot, D=decref slot, B=dst,
                    ///< E=constant-pool index — the shared-cell match
                    ///< arm epilogue (dup the field, decref the cell,
                    ///< load the null token)
  Dup2DecLoadConst, ///< C=dup1, D=dup2, B=decref slot, A=dst (must fit
                    ///< 8 bits), E=constant-pool index
  Dup2Move2,        ///< B=dst1, C=dup1 (also src1), D=dst2,
                    ///< E=dup2 (also src2) — two dup-then-copy pairs
  MoveDupMove,      ///< B=dst1, C=src1, D=dup slot (also src2), E=dst2
  MoveArithConst,   ///< A=0 x+K/1 x-K/2 K-x/3 x*K, B=dst, C=x,
                    ///< D=constant-pool index of K,
                    ///< E=(move dst<<16)|move src — move first, then arith
  ArithConstMove,   ///< same fields as MoveArithConst; arith first
  MoveCmpConstBr,   ///< A=CmpBrKind, B=move src, C=move dst (also lhs),
                    ///< D=constant-pool index, E=target when false
  ConRet,           ///< A=arity, B=dst, C=window, D=ctor tag — Con, then
                    ///< return the fresh cell
  DropMove,         ///< C=drop slot, B=move dst, D=move src
  ArithConstRet,    ///< A=kind, B=dst, C=x, D=constant-pool index — the
                    ///< ArithConst whose result is immediately returned
  IsUniqueReuseJmp, ///< B=token dst, C=slot, D=pc when unique, E=else
                    ///< target — IsUniqueReuse whose unique path jumps
};

/// The compare kind carried in CmpConstBr's A field; numbering matches
/// the LtBr..NeBr opcode order.
enum class CmpBrKind : uint8_t { Lt, Le, Gt, Ge, Eq, Ne };

constexpr size_t NumOpcodes = static_cast<size_t>(Op::IsUniqueReuseJmp) + 1;

/// One fixed-width instruction; see the Op comments for field use.
struct Instr {
  Op O;
  uint8_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint16_t D = 0;
  uint32_t E = 0;
};

/// One arm of a compiled match. Arms keep their source order — the VM
/// scans them exactly like the CEK machine does, including recording a
/// default arm and *continuing* the scan (a later ill-typed arm still
/// traps even when a default exists).
struct MatchArmCode {
  ArmKind Kind = ArmKind::Default;
  uint32_t Tag = 0;        ///< Ctor arms: the constructor tag
  int64_t Lit = 0;         ///< IntLit/BoolLit arms
  uint32_t BinderBase = 0; ///< into CompiledProgram::BinderSlots
  uint32_t NumBinders = 0;
  uint32_t Target = 0;     ///< pc of the arm body
};

struct MatchTable {
  std::vector<MatchArmCode> Arms;
};

/// The compiled body of one function or one lambda.
struct Chunk {
  std::vector<Instr> Code;
  /// Telemetry sites, parallel to Code: the IR node an instruction's
  /// heap events attribute to (null when the instruction reports none).
  /// Only consulted when a StatsSink is installed.
  std::vector<const Expr *> Sites;
  /// Secondary/tertiary telemetry sites for fused instructions whose
  /// components each stamp a site (e.g. Dup2/Drop2). Empty on chunks the
  /// peephole pass has not rewritten; parallel to Code otherwise.
  std::vector<const Expr *> Sites2;
  std::vector<const Expr *> Sites3;
  uint32_t NumRegs = 0;   ///< frame size: named slots + temporaries
  uint32_t NumParams = 0; ///< parameters occupy registers 0..NumParams-1
  /// First expression-temporary register: the layout's named slots occupy
  /// 0..FirstTemp-1. Temporaries above this line are dead outside the
  /// single expression that allocates them (every read is dominated by a
  /// write within that expression), which is what licenses the peephole
  /// pass to elide writes into them when fusing.
  uint32_t FirstTemp = 0;

  //===--- Lambda chunks only ---------------------------------------------===//
  const LamExpr *Lam = nullptr;    ///< the IR node (telemetry site identity)
  std::vector<uint16_t> CaptureSrc;///< capture slots in the enclosing frame
  std::vector<uint16_t> CaptureDst;///< capture slots in this chunk's frame

  //===--- Function chunks only -------------------------------------------===//
  const FunctionDecl *Fn = nullptr; ///< for arity-mismatch trap messages
};

/// A whole compiled program: per-function and per-lambda chunks over
/// shared constant/match/message pools. Read-only after compilation, so
/// one CompiledProgram can back any number of concurrent VMs (the
/// parallel engine compiles once and shares it across workers).
struct CompiledProgram {
  const Program *Prog = nullptr;
  std::vector<Chunk> Funcs; ///< indexed by FuncId
  std::vector<Chunk> Lams;  ///< indexed by LamId
  std::vector<Value> Consts;
  std::vector<MatchTable> Matches;
  std::vector<uint16_t> BinderSlots; ///< flat per-arm binder slot lists
  std::vector<std::string> Messages; ///< TrapOp messages

  //===--- Peephole tier (set by bytecode/Peephole.h) ---------------------===//
  /// True once runPeephole has rewritten Funcs/Lams in place. The
  /// pre-peephole chunks are retained: the RC elision in the rewritten
  /// code assumes every heap cell reachable during the run was built by
  /// this program's own constructor sites, which holds for any run whose
  /// entry arguments are all immediates. VM::run checks that at entry and
  /// falls back to the raw tables otherwise (e.g. a parallel run handed a
  /// thread-shared heap segment).
  bool Peepholed = false;
  std::vector<Chunk> RawFuncs;
  std::vector<Chunk> RawLams;
};

} // namespace perceus

#endif // PERCEUS_BYTECODE_BYTECODE_H
