//===- bytecode/Bytecode.h - Flat register bytecode -------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, register-based bytecode for the RC-instrumented IR. The
/// compiler (bytecode/Compiler.h) lowers each function and each lambda
/// body into a Chunk of fixed-width instructions over the frame layout
/// the CEK machine already uses: the layout pass's named slots become the
/// low registers of the frame, and expression temporaries live above
/// them. Operand windows for calls, constructors and primitives are
/// contiguous register ranges, Lua-style, so a call binds its arguments
/// by re-basing the register file instead of copying.
///
/// Design constraints, in priority order:
///
///  1. *Observable parity with the CEK machine.* The VM must issue the
///     exact same sequence of heap operations (alloc, dup, drop, decref,
///     is-unique, free, markShared) with the same telemetry sites, so
///     HeapStats, RcInstrCounts, reuse counters and fault-injection
///     behaviour are bit-identical across engines. This dictates the
///     evaluation order baked into the compiler (callee before
///     arguments, constructor fields before the allocation, value before
///     the token check in set-field) and the first-class RC opcodes.
///  2. *Dispatch speed.* Every RC instruction, the is-unique and
///     null-token branches, and each primitive is a single opcode;
///     constructor tag/arity are inline immediates resolved at compile
///     time (the "inline cache" — no CtorDecl lookup at run time); calls
///     to statically-known functions skip callee resolution entirely.
///
/// Instructions are 12 bytes: opcode, an 8-bit immediate A, three 16-bit
/// register/immediate fields B/C/D, and a 32-bit extended field E used
/// for jump targets, pool indices and function/lambda ids. Register
/// indices are frame-relative; a frame holds at most 65535 registers.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BYTECODE_BYTECODE_H
#define PERCEUS_BYTECODE_BYTECODE_H

#include "ir/Program.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace perceus {

/// Bytecode operations. Operand conventions are listed per opcode;
/// unnamed fields are unused. "window" is the first register of a
/// contiguous run of operands.
enum class Op : uint8_t {
  //===--- Moves and constants --------------------------------------------===//
  LoadConst,   ///< B=dst, E=constant-pool index
  Move,        ///< B=dst, C=src

  //===--- Control flow ---------------------------------------------------===//
  Jump,        ///< E=target pc
  JumpIfFalse, ///< B=cond, E=target pc (traps on a non-boolean)
  MatchOp,     ///< B=scrutinee slot, E=match-table index
  Call,        ///< A=nargs, B=dst, C=window (callee; args at window+1)
  CallStatic,  ///< A=nargs, B=dst, C=window (args), E=FuncId
  TailCall,    ///< A=nargs, C=window (callee; args at window+1)
  TailCallStatic, ///< A=nargs, C=window (args), E=FuncId
  Ret,         ///< B=src

  //===--- Heap allocation ------------------------------------------------===//
  MakeClosure, ///< B=dst, E=LamId (captures resolved via the lam chunk)
  Con,         ///< A=arity, B=dst, C=window (fields), D=ctor tag
  ConReuse,    ///< A=arity, B=dst, C=window, D=token slot, E=ctor tag

  //===--- RC instructions (first-class; see eval/Machine.h) --------------===//
  Dup,          ///< C=slot
  Drop,         ///< C=slot
  FreeOp,       ///< C=slot (memory-only disposal)
  DecRef,       ///< C=slot
  IsUniqueBr,   ///< C=slot, E=else target (unique path falls through)
  DropReuse,    ///< C=var slot, D=token slot
  ReuseAddr,    ///< B=dst, C=var slot
  IsNullTokenBr,///< C=token slot, E=else target (null path falls through)
  SetField,     ///< A=field index, C=token slot, D=value reg
  TokenValue,   ///< B=dst, C=token slot, D=ctor tag

  //===--- Primitives (one opcode each; fast unboxed paths) ---------------===//
  Add,          ///< B=dst, C=lhs, D=rhs (likewise through Ge)
  Sub,
  Mul,
  Div,
  Mod,
  Neg,          ///< B=dst, C=src
  Lt,
  Le,
  Gt,
  Ge,
  EqVal,        ///< B=dst, C=lhs, D=rhs (Int/Bool/Enum equality)
  NeVal,
  Not,          ///< B=dst, C=src
  PrintLn,      ///< B=dst, C=src
  MarkSharedOp, ///< B=dst, C=src (tshare: markShared + consuming drop)
  AbortOp,      ///< traps
  RefNew,       ///< B=dst, C=src
  RefGet,       ///< B=dst, C=src
  RefSet,       ///< B=dst, C=ref reg, D=value reg

  TrapOp,       ///< E=message index (compile-time-known runtime error)
};

constexpr size_t NumOpcodes = static_cast<size_t>(Op::TrapOp) + 1;

/// One fixed-width instruction; see the Op comments for field use.
struct Instr {
  Op O;
  uint8_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint16_t D = 0;
  uint32_t E = 0;
};

/// One arm of a compiled match. Arms keep their source order — the VM
/// scans them exactly like the CEK machine does, including recording a
/// default arm and *continuing* the scan (a later ill-typed arm still
/// traps even when a default exists).
struct MatchArmCode {
  ArmKind Kind = ArmKind::Default;
  uint32_t Tag = 0;        ///< Ctor arms: the constructor tag
  int64_t Lit = 0;         ///< IntLit/BoolLit arms
  uint32_t BinderBase = 0; ///< into CompiledProgram::BinderSlots
  uint32_t NumBinders = 0;
  uint32_t Target = 0;     ///< pc of the arm body
};

struct MatchTable {
  std::vector<MatchArmCode> Arms;
};

/// The compiled body of one function or one lambda.
struct Chunk {
  std::vector<Instr> Code;
  /// Telemetry sites, parallel to Code: the IR node an instruction's
  /// heap events attribute to (null when the instruction reports none).
  /// Only consulted when a StatsSink is installed.
  std::vector<const Expr *> Sites;
  uint32_t NumRegs = 0;   ///< frame size: named slots + temporaries
  uint32_t NumParams = 0; ///< parameters occupy registers 0..NumParams-1

  //===--- Lambda chunks only ---------------------------------------------===//
  const LamExpr *Lam = nullptr;    ///< the IR node (telemetry site identity)
  std::vector<uint16_t> CaptureSrc;///< capture slots in the enclosing frame
  std::vector<uint16_t> CaptureDst;///< capture slots in this chunk's frame

  //===--- Function chunks only -------------------------------------------===//
  const FunctionDecl *Fn = nullptr; ///< for arity-mismatch trap messages
};

/// A whole compiled program: per-function and per-lambda chunks over
/// shared constant/match/message pools. Read-only after compilation, so
/// one CompiledProgram can back any number of concurrent VMs (the
/// parallel engine compiles once and shares it across workers).
struct CompiledProgram {
  const Program *Prog = nullptr;
  std::vector<Chunk> Funcs; ///< indexed by FuncId
  std::vector<Chunk> Lams;  ///< indexed by LamId
  std::vector<Value> Consts;
  std::vector<MatchTable> Matches;
  std::vector<uint16_t> BinderSlots; ///< flat per-arm binder slot lists
  std::vector<std::string> Messages; ///< TrapOp messages
};

} // namespace perceus

#endif // PERCEUS_BYTECODE_BYTECODE_H
