//===- bytecode/Compiler.cpp - IR-to-bytecode compiler ------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bytecode/Compiler.h"

#include "support/Casting.h"

#include <cassert>
#include <unordered_map>

using namespace perceus;

namespace {

class Compiler {
public:
  Compiler(const Program &P, const ProgramLayout &L) : P(P), L(L) {}

  CompiledProgram run() {
    CP.Prog = &P;
    CP.Funcs.resize(P.numFunctions());
    CP.Lams.resize(P.numLamIds());
    for (FuncId F = 0; F != P.numFunctions(); ++F) {
      const FunctionDecl &Fn = P.function(F);
      Chunk &C = CP.Funcs[F];
      C.Fn = &Fn;
      C.NumParams = static_cast<uint32_t>(Fn.Params.size());
      compileChunk(C, Fn.Body, L.FuncFrameSize[F]);
    }
    return std::move(CP);
  }

private:
  //===--- Emission helpers -----------------------------------------------===//

  uint32_t emit(Op O, uint8_t A, uint32_t B, uint32_t C, uint32_t D,
                uint32_t E, const Expr *Site = nullptr) {
    assert(B <= 0xffff && C <= 0xffff && D <= 0xffff && "register overflow");
    Instr I;
    I.O = O;
    I.A = A;
    I.B = static_cast<uint16_t>(B);
    I.C = static_cast<uint16_t>(C);
    I.D = static_cast<uint16_t>(D);
    I.E = E;
    Ch->Code.push_back(I);
    Ch->Sites.push_back(Site);
    return static_cast<uint32_t>(Ch->Code.size() - 1);
  }

  uint32_t here() const { return static_cast<uint32_t>(Ch->Code.size()); }

  void patch(uint32_t Pc, uint32_t Target) { Ch->Code[Pc].E = Target; }

  uint32_t allocTemps(uint32_t N) {
    uint32_t R = TempTop;
    TempTop += N;
    assert(TempTop <= 0xffff && "frame register overflow");
    if (TempTop > Ch->NumRegs)
      Ch->NumRegs = TempTop;
    return R;
  }

  uint32_t constIdx(Value V) {
    uint64_t Key = (uint64_t(V.Kind) << 56) ^ V.Bits;
    auto It = ConstMap.find(Key);
    if (It != ConstMap.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(CP.Consts.size());
    CP.Consts.push_back(V);
    ConstMap.emplace(Key, Idx);
    return Idx;
  }

  uint32_t messageIdx(std::string Msg) {
    CP.Messages.push_back(std::move(Msg));
    return static_cast<uint32_t>(CP.Messages.size() - 1);
  }

  //===--- Chunk compilation ----------------------------------------------===//

  void compileChunk(Chunk &C, const Expr *Body, uint32_t NamedSlots) {
    Chunk *SavedCh = Ch;
    uint32_t SavedTop = TempTop;
    Ch = &C;
    TempTop = NamedSlots;
    C.NumRegs = NamedSlots;
    C.FirstTemp = NamedSlots;
    compileTail(Body);
    Ch = SavedCh;
    TempTop = SavedTop;
  }

  /// Compiles the lambda's chunk once (a LamExpr occurs at one syntactic
  /// site, but be tolerant of shared subtrees after rewrites).
  void ensureLamCompiled(const LamExpr *Lm) {
    Chunk &C = CP.Lams[Lm->lamId()];
    if (C.Lam)
      return;
    C.Lam = Lm;
    C.NumParams = static_cast<uint32_t>(Lm->params().size());
    const std::vector<uint32_t> &List = L.SlotLists[Lm->layoutA()];
    size_t NCaps = Lm->captures().size();
    for (size_t I = 0; I != NCaps; ++I)
      C.CaptureSrc.push_back(static_cast<uint16_t>(List[I]));
    for (size_t I = 0; I != NCaps; ++I)
      C.CaptureDst.push_back(static_cast<uint16_t>(List[NCaps + I]));
    compileChunk(C, Lm->body(), Lm->layoutB());
  }

  //===--- Expression compilation -----------------------------------------===//

  /// Compiles \p E in tail position: every path ends in Ret, a tail
  /// call, or a trap. The CEK machine discovers tail calls dynamically
  /// (the continuation on top is the frame return); syntactic tail
  /// position is the same set of call sites, modulo the entry frame,
  /// which the VM handles uniformly by replacing it.
  void compileTail(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::App:
      compileCall(cast<AppExpr>(E), 0, /*Tail=*/true);
      return;
    case ExprKind::Let: {
      const auto *Lt = cast<LetExpr>(E);
      compileVal(Lt->bound(), Lt->layoutA());
      compileTail(Lt->body());
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      uint32_t Save = TempTop;
      compileVal(S->first(), allocTemps(1));
      TempTop = Save;
      compileTail(S->second());
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      uint32_t Save = TempTop;
      uint32_t T = allocTemps(1);
      compileVal(I->cond(), T);
      TempTop = Save;
      uint32_t Jf = emit(Op::JumpIfFalse, 0, T, 0, 0, 0);
      compileTail(I->thenExpr());
      patch(Jf, here());
      compileTail(I->elseExpr());
      return;
    }
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      uint32_t Br = emit(Op::IsUniqueBr, 0, 0, E->layoutA(), 0, 0, E);
      compileTail(U->thenExpr());
      patch(Br, here());
      compileTail(U->elseExpr());
      return;
    }
    case ExprKind::IsNullToken: {
      const auto *N = cast<IsNullTokenExpr>(E);
      uint32_t Br = emit(Op::IsNullTokenBr, 0, 0, E->layoutA(), 0, 0, E);
      compileTail(N->thenExpr());
      patch(Br, here());
      compileTail(N->elseExpr());
      return;
    }
    case ExprKind::Match:
      compileMatch(cast<MatchExpr>(E), 0, /*Tail=*/true);
      return;
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef:
      emitRcStmt(E);
      compileTail(cast<RcStmtExpr>(E)->rest());
      return;
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      emit(Op::DropReuse, 0, 0, E->layoutA(), E->layoutB(), 0, E);
      compileTail(D->rest());
      return;
    }
    case ExprKind::SetField: {
      const auto *S = cast<SetFieldExpr>(E);
      emitSetField(S);
      compileTail(S->rest());
      return;
    }
    default: {
      uint32_t Save = TempTop;
      uint32_t R = allocTemps(1);
      compileVal(E, R);
      emit(Op::Ret, 0, R, 0, 0, 0);
      TempTop = Save;
      return;
    }
    }
  }

  /// Compiles \p E so its value lands in register \p Dst. Dst is either
  /// a named slot (layout slots are never reused, so mid-evaluation
  /// writes cannot clobber anything live) or a temporary below every
  /// window this compilation opens.
  void compileVal(const Expr *E, uint32_t Dst) {
    switch (E->kind()) {
    case ExprKind::Lit: {
      const LitValue &V = cast<LitExpr>(E)->value();
      Value C;
      switch (V.Kind) {
      case LitKind::Int:
        C = Value::makeInt(V.Int);
        break;
      case LitKind::Bool:
        C = Value::makeBool(V.Int != 0);
        break;
      case LitKind::Unit:
        C = Value::unit();
        break;
      }
      emit(Op::LoadConst, 0, Dst, 0, 0, constIdx(C));
      return;
    }
    case ExprKind::Var: {
      uint32_t Slot = E->layoutA();
      if (Slot != Dst)
        emit(Op::Move, 0, Dst, Slot, 0, 0);
      return;
    }
    case ExprKind::Global:
      emit(Op::LoadConst, 0, Dst, 0, 0,
           constIdx(Value::makeFnRef(cast<GlobalExpr>(E)->func())));
      return;
    case ExprKind::NullToken:
      emit(Op::LoadConst, 0, Dst, 0, 0, constIdx(Value::makeToken(nullptr)));
      return;
    case ExprKind::Lam: {
      const auto *Lm = cast<LamExpr>(E);
      ensureLamCompiled(Lm);
      emit(Op::MakeClosure, 0, Dst, 0, 0, Lm->lamId(), E);
      return;
    }
    case ExprKind::App:
      compileCall(cast<AppExpr>(E), Dst, /*Tail=*/false);
      return;
    case ExprKind::Let: {
      const auto *Lt = cast<LetExpr>(E);
      compileVal(Lt->bound(), Lt->layoutA());
      compileVal(Lt->body(), Dst);
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      uint32_t Save = TempTop;
      compileVal(S->first(), allocTemps(1));
      TempTop = Save;
      compileVal(S->second(), Dst);
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      uint32_t Save = TempTop;
      uint32_t T = allocTemps(1);
      compileVal(I->cond(), T);
      TempTop = Save;
      uint32_t Jf = emit(Op::JumpIfFalse, 0, T, 0, 0, 0);
      compileVal(I->thenExpr(), Dst);
      uint32_t Je = emit(Op::Jump, 0, 0, 0, 0, 0);
      patch(Jf, here());
      compileVal(I->elseExpr(), Dst);
      patch(Je, here());
      return;
    }
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      uint32_t Br = emit(Op::IsUniqueBr, 0, 0, E->layoutA(), 0, 0, E);
      compileVal(U->thenExpr(), Dst);
      uint32_t Je = emit(Op::Jump, 0, 0, 0, 0, 0);
      patch(Br, here());
      compileVal(U->elseExpr(), Dst);
      patch(Je, here());
      return;
    }
    case ExprKind::IsNullToken: {
      const auto *N = cast<IsNullTokenExpr>(E);
      uint32_t Br = emit(Op::IsNullTokenBr, 0, 0, E->layoutA(), 0, 0, E);
      compileVal(N->thenExpr(), Dst);
      uint32_t Je = emit(Op::Jump, 0, 0, 0, 0, 0);
      patch(Br, here());
      compileVal(N->elseExpr(), Dst);
      patch(Je, here());
      return;
    }
    case ExprKind::Match:
      compileMatch(cast<MatchExpr>(E), Dst, /*Tail=*/false);
      return;
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      const CtorDecl &D = P.ctor(C->ctor());
      if (D.Arity == 0) {
        emit(Op::LoadConst, 0, Dst, 0, 0,
             constIdx(Value::makeEnum(D.DataId, D.Tag)));
        return;
      }
      assert(C->args().size() == D.Arity && "constructor arity mismatch");
      uint32_t Save = TempTop;
      uint32_t W = allocTemps(D.Arity);
      for (uint32_t I = 0; I != D.Arity; ++I)
        compileVal(C->args()[I], W + I);
      if (C->hasReuseToken())
        emit(Op::ConReuse, static_cast<uint8_t>(D.Arity), Dst, W,
             E->layoutA(), D.Tag, E);
      else
        emit(Op::Con, static_cast<uint8_t>(D.Arity), Dst, W, D.Tag, 0, E);
      TempTop = Save;
      return;
    }
    case ExprKind::Prim:
      compilePrim(cast<PrimExpr>(E), Dst);
      return;
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef:
      emitRcStmt(E);
      compileVal(cast<RcStmtExpr>(E)->rest(), Dst);
      return;
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      emit(Op::DropReuse, 0, 0, E->layoutA(), E->layoutB(), 0, E);
      compileVal(D->rest(), Dst);
      return;
    }
    case ExprKind::ReuseAddr:
      emit(Op::ReuseAddr, 0, Dst, E->layoutA(), 0, 0);
      return;
    case ExprKind::SetField: {
      const auto *S = cast<SetFieldExpr>(E);
      emitSetField(S);
      compileVal(S->rest(), Dst);
      return;
    }
    case ExprKind::TokenValue: {
      const auto *T = cast<TokenValueExpr>(E);
      emit(Op::TokenValue, 0, Dst, E->layoutA(), P.ctor(T->ctor()).Tag, 0, E);
      return;
    }
    }
    assert(false && "unhandled expression kind");
  }

  void emitRcStmt(const Expr *E) {
    Op O;
    switch (E->kind()) {
    case ExprKind::Dup:
      O = Op::Dup;
      break;
    case ExprKind::Drop:
      O = Op::Drop;
      break;
    case ExprKind::Free:
      O = Op::FreeOp;
      break;
    default:
      O = Op::DecRef;
      break;
    }
    emit(O, 0, 0, E->layoutA(), 0, 0, E);
  }

  void emitSetField(const SetFieldExpr *S) {
    uint32_t Save = TempTop;
    uint32_t V = allocTemps(1);
    compileVal(S->value(), V);
    emit(Op::SetField, static_cast<uint8_t>(S->index()), 0, S->layoutA(), V,
         0);
    TempTop = Save;
  }

  void compileCall(const AppExpr *A, uint32_t Dst, bool Tail) {
    uint32_t N = static_cast<uint32_t>(A->args().size());
    const auto *G = dyn_cast<GlobalExpr>(A->fn());
    uint32_t Save = TempTop;
    if (G && P.function(G->func()).Params.size() == N) {
      uint32_t W = allocTemps(N);
      for (uint32_t I = 0; I != N; ++I)
        compileVal(A->args()[I], W + I);
      emit(Tail ? Op::TailCallStatic : Op::CallStatic,
           static_cast<uint8_t>(N), Dst, W, 0, G->func(), A);
    } else {
      uint32_t W = allocTemps(1 + N);
      compileVal(A->fn(), W);
      for (uint32_t I = 0; I != N; ++I)
        compileVal(A->args()[I], W + 1 + I);
      emit(Tail ? Op::TailCall : Op::Call, static_cast<uint8_t>(N), Dst, W, 0,
           0, A);
    }
    TempTop = Save;
  }

  void compileMatch(const MatchExpr *M, uint32_t Dst, bool Tail) {
    uint32_t TableIdx = static_cast<uint32_t>(CP.Matches.size());
    CP.Matches.emplace_back();
    emit(Op::MatchOp, 0, M->layoutA(), 0, 0, TableIdx);

    // Build the arm table in source order, mirroring the CEK scan.
    const std::vector<uint32_t> &Binders = L.SlotLists[M->layoutB()];
    size_t Offset = 0;
    {
      MatchTable &T = CP.Matches[TableIdx];
      for (const MatchArm &Arm : M->arms()) {
        MatchArmCode AC;
        AC.Kind = Arm.Kind;
        if (Arm.Kind == ArmKind::Ctor)
          AC.Tag = P.ctor(Arm.Ctor).Tag;
        AC.Lit = Arm.Lit.Int;
        AC.BinderBase = static_cast<uint32_t>(CP.BinderSlots.size());
        AC.NumBinders = static_cast<uint32_t>(Arm.Binders.size());
        for (size_t I = 0; I != Arm.Binders.size(); ++I)
          CP.BinderSlots.push_back(
              static_cast<uint16_t>(Binders[Offset + I]));
        Offset += Arm.Binders.size();
        T.Arms.push_back(AC);
      }
    }

    std::vector<uint32_t> JoinJumps;
    for (size_t I = 0; I != M->arms().size(); ++I) {
      CP.Matches[TableIdx].Arms[I].Target = here();
      if (Tail) {
        compileTail(M->arms()[I].Body);
      } else {
        compileVal(M->arms()[I].Body, Dst);
        JoinJumps.push_back(emit(Op::Jump, 0, 0, 0, 0, 0));
      }
    }
    for (uint32_t J : JoinJumps)
      patch(J, here());
  }

  void compilePrim(const PrimExpr *Pr, uint32_t Dst) {
    uint32_t N = static_cast<uint32_t>(Pr->args().size());
    uint32_t Save = TempTop;
    uint32_t W = N ? allocTemps(N) : 0;
    for (uint32_t I = 0; I != N; ++I)
      compileVal(Pr->args()[I], W + I);

    switch (Pr->op()) {
    case PrimOp::Add:
    case PrimOp::Sub:
    case PrimOp::Mul:
    case PrimOp::Div:
    case PrimOp::Mod: {
      if (N != 2) {
        emit(Op::TrapOp, 0, 0, 0, 0,
             messageIdx("arithmetic primitive arity"));
        break;
      }
      Op O = Pr->op() == PrimOp::Add   ? Op::Add
             : Pr->op() == PrimOp::Sub ? Op::Sub
             : Pr->op() == PrimOp::Mul ? Op::Mul
             : Pr->op() == PrimOp::Div ? Op::Div
                                       : Op::Mod;
      emit(O, 0, Dst, W, W + 1, 0);
      break;
    }
    case PrimOp::Neg:
      emit(Op::Neg, 0, Dst, W, 0, 0);
      break;
    case PrimOp::Lt:
    case PrimOp::Le:
    case PrimOp::Gt:
    case PrimOp::Ge: {
      Op O = Pr->op() == PrimOp::Lt   ? Op::Lt
             : Pr->op() == PrimOp::Le ? Op::Le
             : Pr->op() == PrimOp::Gt ? Op::Gt
                                      : Op::Ge;
      emit(O, 0, Dst, W, W + 1, 0);
      break;
    }
    case PrimOp::EqInt:
      emit(Op::EqVal, 0, Dst, W, W + 1, 0);
      break;
    case PrimOp::NeInt:
      emit(Op::NeVal, 0, Dst, W, W + 1, 0);
      break;
    case PrimOp::Not:
      emit(Op::Not, 0, Dst, W, 0, 0);
      break;
    case PrimOp::PrintLn:
      emit(Op::PrintLn, 0, Dst, W, 0, 0);
      break;
    case PrimOp::MarkShared:
      emit(Op::MarkSharedOp, 0, Dst, W, 0, 0, Pr);
      break;
    case PrimOp::Abort:
      emit(Op::AbortOp, 0, 0, 0, 0, 0);
      break;
    case PrimOp::RefNew:
      emit(Op::RefNew, 0, Dst, W, 0, 0, Pr);
      break;
    case PrimOp::RefGet:
      emit(Op::RefGet, 0, Dst, W, 0, 0, Pr);
      break;
    case PrimOp::RefSet:
      emit(Op::RefSet, 0, Dst, W, W + 1, 0, Pr);
      break;
    }
    TempTop = Save;
  }

  const Program &P;
  const ProgramLayout &L;
  CompiledProgram CP;
  Chunk *Ch = nullptr;
  uint32_t TempTop = 0;
  std::unordered_map<uint64_t, uint32_t> ConstMap;
};

} // namespace

CompiledProgram perceus::compileProgram(const Program &P,
                                        const ProgramLayout &Layout) {
  return Compiler(P, Layout).run();
}
