//===- bytecode/Compiler.h - IR-to-bytecode compiler ------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a laid-out program (ir/Expr.h trees annotated by
/// eval/Layout.h) to the flat bytecode of bytecode/Bytecode.h. The
/// compiler preserves the CEK machine's observable evaluation order
/// exactly — see the parity contract in Bytecode.h — while resolving
/// everything resolvable at compile time: constructor tags/arities,
/// match binder slots, capture slot lists, direct calls to top-level
/// functions, and syntactic tail positions (which the CEK machine
/// discovers dynamically from its continuation stack).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BYTECODE_COMPILER_H
#define PERCEUS_BYTECODE_COMPILER_H

#include "bytecode/Bytecode.h"
#include "eval/Layout.h"
#include "ir/Program.h"

namespace perceus {

/// Compiles every function (and reachable lambda) of \p P. \p Layout
/// must have been produced from \p P *after* all passes ran — the same
/// precondition the CEK machine has.
CompiledProgram compileProgram(const Program &P, const ProgramLayout &Layout);

} // namespace perceus

#endif // PERCEUS_BYTECODE_COMPILER_H
