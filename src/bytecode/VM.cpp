//===- bytecode/VM.cpp - Register bytecode interpreter ------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Dispatch is threaded (computed goto) on GCC/Clang and a plain switch
// elsewhere; the handler bodies are written once and shared by both
// forms through the VM_CASE/VM_NEXT macros, whose control transfer is
// goto-based in both modes so handlers may use VM_NEXT from inside
// nested loops without capture-by-break surprises.
//
// Parity note: every heap call, telemetry stamp, counter increment and
// trap message below mirrors eval/Machine.cpp line for line — when
// changing one engine, change the other. Differences are confined to the
// engine-specific metrics (Steps, TailCalls, MaxCallDepth,
// MaxLocalsSlots), which count dispatches and frames at this engine's
// own granularity.
//
//===----------------------------------------------------------------------===//

#include "bytecode/VM.h"

#include "support/Telemetry.h"

#include <algorithm>

using namespace perceus;

#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(PERCEUS_VM_FORCE_SWITCH)
#define PERCEUS_VM_COMPUTED_GOTO 1
#else
#define PERCEUS_VM_COMPUTED_GOTO 0
#endif

// Build with -DPERCEUS_VM_PROFILE=1 to tally every executed opcode pair
// into perceus::VmPairProfile (indexed [prev][cur]). This is how the
// superinstruction set in bytecode/Peephole.cpp was chosen: run the
// benchmarks on a profiled build, rank the pair counts, fuse the top
// ones. Off by default — the counter write would cost more than some
// handlers.
#ifndef PERCEUS_VM_PROFILE
#define PERCEUS_VM_PROFILE 0
#endif
#if PERCEUS_VM_PROFILE
namespace perceus {
uint64_t VmPairProfile[NumOpcodes][NumOpcodes];
}
#define VM_PROFILE_PAIR()                                                      \
  do {                                                                         \
    VmPairProfile[ProfPrevOp][static_cast<size_t>(I.O)]++;                     \
    ProfPrevOp = static_cast<size_t>(I.O);                                     \
  } while (0)
#else
#define VM_PROFILE_PAIR() (void)0
#endif

/// Every opcode, in the exact order of the Op enum (the computed-goto
/// table is indexed by the raw opcode byte).
#define PERCEUS_VM_OPCODES(X)                                                  \
  X(LoadConst) X(Move)                                                         \
  X(Jump) X(JumpIfFalse) X(MatchOp)                                            \
  X(Call) X(CallStatic) X(TailCall) X(TailCallStatic) X(Ret)                   \
  X(MakeClosure) X(Con) X(ConReuse)                                            \
  X(Dup) X(Drop) X(FreeOp) X(DecRef) X(IsUniqueBr) X(DropReuse)                \
  X(ReuseAddr) X(IsNullTokenBr) X(SetField) X(TokenValue)                      \
  X(Add) X(Sub) X(Mul) X(Div) X(Mod) X(Neg)                                    \
  X(Lt) X(Le) X(Gt) X(Ge) X(EqVal) X(NeVal) X(Not)                             \
  X(PrintLn) X(MarkSharedOp) X(AbortOp)                                        \
  X(RefNew) X(RefGet) X(RefSet)                                                \
  X(TrapOp)                                                                    \
  X(DupMove) X(Dup2) X(Drop2) X(Dup3) X(Drop3)                                 \
  X(DupCallStatic) X(DupCall) X(IsUniqueReuse) X(SetFieldToken)                \
  X(Move2) X(LoadConstMove) X(RetConst)                                        \
  X(LtBr) X(LeBr) X(GtBr) X(GeBr) X(EqBr) X(NeBr) X(CmpConstBr)            \
  X(CmpJmp) X(MoveArith) X(ArithMove) X(ArithConst) X(Move3)                   \
  X(MoveTailCallStatic) X(IsUniqueBrDup2) X(DecLoadConst)                      \
  X(JfMove) X(JfDrop) X(DropLoadConst) X(DropRetConst)                         \
  X(DupDecLoadConst) X(Dup2DecLoadConst) X(Dup2Move2) X(MoveDupMove)       \
  X(MoveArithConst) X(ArithConstMove) X(MoveCmpConstBr) X(ConRet)          \
  X(DropMove) X(ArithConstRet) X(IsUniqueReuseJmp)

/// Capacity growth is the only out-of-line RegStack path: doubling keeps
/// it amortized to the deepest frame ever reached, after which every
/// reframe is a size update plus the unit-fill.
void RegStack::grow(size_t N) {
  size_t NewCap = Cap ? Cap * 2 : 64;
  if (NewCap < N)
    NewCap = N;
  std::unique_ptr<Value[]> NewMem(new Value[NewCap]);
  std::copy(Mem.get(), Mem.get() + Sz, NewMem.get());
  Mem = std::move(NewMem);
  Cap = NewCap;
}

void VM::trap(std::string Msg, TrapKind Kind) {
  Trapped = true;
  Run->Ok = false;
  Run->Trap = Kind;
  Run->Error = std::move(Msg);
}

/// The clean-unwind path, identical in effect to Machine::unwind: after
/// a trap every value still held in a register or the result is garbage;
/// reclaim it all so Heap::empty() holds on the error path too. Registers
/// may be stale — ownership already moved on, or the cell already freed —
/// which Heap::reclaim tolerates by design (registry check + dedup).
void VM::unwind() {
  size_t Freed;
  if (H.mode() == HeapMode::Gc) {
    Freed = H.reclaimAll();
  } else {
    std::vector<Value> Roots;
    Roots.reserve(Regs.size() + 1);
    Roots.insert(Roots.end(), Regs.begin(), Regs.end());
    Roots.push_back(Result);
    Freed = H.reclaim(Roots);
  }
  Regs.clear();
  Frames.clear();
  Result = Value::unit();
  Run->UnwoundCells = Freed;
}

/// Rule (app_r), same order as Machine::doCall: the callee's arguments
/// are already bound (the operand window is the parameter region), so
/// dup each capture into its frame slot, then drop the closure.
void VM::applyClosure(const Chunk *T, Cell *Clo, const Expr *CallSite,
                      Value *RF) {
  if (Sink)
    Sink->setSite(T->Lam, "app", CallSite->loc());
  Value *Fields = Clo->fields();
  for (size_t I = 0; I != T->CaptureDst.size(); ++I) {
    Value Cap = Fields[1 + I];
    ++Run->Rc.ImplicitDups;
    H.dup(Cap);
    RF[T->CaptureDst[I]] = Cap;
  }
  ++Run->Rc.ImplicitDrops;
  H.drop(Value::makeRef(Clo));
}

RunResult VM::run(FuncId F, std::vector<Value> Args) {
  RunResult R;
  Run = &R;
  Sink = H.statsSink();
  Trapped = false;
  CallDepth = 0;
  if (DeadlineMs)
    DeadlineAt = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(DeadlineMs);
  Frames.clear();
  Result = Value::unit();

  // The peephole tier's RC elision assumes every heap cell in the run
  // was built by this program's own constructor sites. A heap-valued
  // entry argument (e.g. a thread-shared segment from the parallel
  // runner) voids that, so such runs execute the retained raw chunks.
  UseRawChunks = false;
  if (CP.Peepholed)
    for (const Value &A : Args)
      if (A.isHeap()) {
        UseRawChunks = true;
        break;
      }

  const Chunk &Entry = (UseRawChunks ? CP.RawFuncs : CP.Funcs)[F];
  if (Args.size() != Entry.NumParams) {
    trap("entry function arity mismatch");
    // Ownership of the arguments transferred to us; unwind them.
    Regs.assign(Args.data(), Args.data() + Args.size());
    unwind();
    Run = nullptr;
    return R;
  }
  Regs.assign(Entry.NumRegs, Value::unit());
  for (size_t I = 0; I != Args.size(); ++I)
    Regs[I] = Args[I];
  if (Regs.size() > R.MaxLocalsSlots)
    R.MaxLocalsSlots = Regs.size();

  execute(&Entry, R);

  if (!Trapped) {
    R.Ok = true;
    R.Result = Result;
    if (ResultInspector)
      ResultInspector(Result);
    // The caller of the entry point owns the result; release heap
    // results so a garbage-free run ends with an empty heap.
    if (Result.isHeap()) {
      if (Sink)
        Sink->setSite(this, "result", SourceLoc{});
      ++R.Rc.ImplicitDrops;
      H.drop(Result);
    }
    Regs.clear();
    Result = Value::unit();
  } else {
    unwind();
  }
  Run = nullptr;
  return R;
}

void VM::execute(const Chunk *Entry, RunResult &R) {
  const Chunk *Ch = Entry;
  const Instr *Code = Ch->Code.data();
  const Expr *const *Sites = Ch->Sites.data();
  const Expr *const *Sites2 = Ch->Sites2.data();
  const Expr *const *Sites3 = Ch->Sites3.data();
  const std::vector<Chunk> &FuncTab = UseRawChunks ? CP.RawFuncs : CP.Funcs;
  const std::vector<Chunk> &LamTab = UseRawChunks ? CP.RawLams : CP.Lams;
  uint32_t BaseL = 0;
  Value *RF = Regs.data();
  const Value *Consts = CP.Consts.data();
  uint32_t Pc = 0;
  uint64_t Steps = 0;
  const uint64_t Fuel = StepLimit;
  const bool HasDeadline = DeadlineMs != 0;
  // Safepoints fire on the deadline cadence when armed: a deadline is
  // set, or the heap coalesces shared counts and must flush buffered
  // deltas periodically so other workers observe bounded-stale counts.
  const bool HasSafepoint = HasDeadline || H.sharedCoalescingEnabled();
  Instr I{};
#if PERCEUS_VM_PROFILE
  size_t ProfPrevOp = 0;
#endif

#define VM_TRAP(Msg, Kind)                                                     \
  do {                                                                         \
    trap(Msg, Kind);                                                           \
    goto Exit;                                                                 \
  } while (0)

#define VM_FUEL_CHECK()                                                        \
  do {                                                                         \
    ++Steps;                                                                   \
    if (Fuel && Steps > Fuel)                                                  \
      VM_TRAP("step limit exceeded (out of fuel)", TrapKind::OutOfFuel);       \
    if (HasSafepoint && (Steps & (DeadlineCheckInterval - 1)) == 0) {          \
      if ((Steps &                                                             \
           (DeadlineCheckInterval * SharedFlushSafepointStride - 1)) == 0)     \
        H.flushSharedDeltas();                                                 \
      if (HasDeadline && std::chrono::steady_clock::now() >= DeadlineAt)       \
        VM_TRAP("wall-clock deadline exceeded", TrapKind::Deadline);           \
    }                                                                          \
  } while (0)

  // Re-derive the cached frame pointer / chunk pointers after anything
  // that resizes the register stack or switches frames.
#define VM_REFRAME() (RF = Regs.data() + BaseL)
#define VM_SWITCH_CHUNK(NewCh)                                                 \
  do {                                                                         \
    Ch = (NewCh);                                                              \
    Code = Ch->Code.data();                                                    \
    Sites = Ch->Sites.data();                                                  \
    Sites2 = Ch->Sites2.data();                                                \
    Sites3 = Ch->Sites3.data();                                                \
  } while (0)

#if PERCEUS_VM_COMPUTED_GOTO
  static const void *const Tab[] = {
#define PERCEUS_VM_LABEL(Name) &&L_##Name,
      PERCEUS_VM_OPCODES(PERCEUS_VM_LABEL)
#undef PERCEUS_VM_LABEL
  };
  static_assert(sizeof(Tab) / sizeof(Tab[0]) == NumOpcodes,
                "dispatch table out of sync with the Op enum");
#define VM_CASE(Name) L_##Name:
#define VM_NEXT()                                                              \
  do {                                                                         \
    VM_FUEL_CHECK();                                                           \
    I = Code[Pc++];                                                            \
    VM_PROFILE_PAIR();                                                         \
    goto *Tab[static_cast<size_t>(I.O)];                                       \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(Name) case Op::Name:
#define VM_NEXT() goto NextInstr
NextInstr:
  VM_FUEL_CHECK();
  I = Code[Pc++];
  VM_PROFILE_PAIR();
  switch (I.O) {
#endif

  VM_CASE(LoadConst) {
    RF[I.B] = Consts[I.E];
    VM_NEXT();
  }
  VM_CASE(Move) {
    RF[I.B] = RF[I.C];
    VM_NEXT();
  }

  //===--- Control flow ---------------------------------------------------===//
  VM_CASE(Jump) {
    Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(JumpIfFalse) {
    Value V = RF[I.B];
    if (V.Kind != ValueKind::Bool)
      VM_TRAP("if condition is not a boolean", TrapKind::RuntimeError);
    if (!V.asBool())
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(MatchOp) {
    Value V = RF[I.B];
    const MatchTable &T = CP.Matches[I.E];
    const MatchArmCode *Default = nullptr;
    for (const MatchArmCode &Arm : T.Arms) {
      bool Matches = false;
      switch (Arm.Kind) {
      case ArmKind::Ctor:
        if (V.Kind == ValueKind::Enum)
          Matches = V.enumTag() == Arm.Tag;
        else if (V.Kind == ValueKind::HeapRef &&
                 V.Ref->H.Kind == CellKind::Ctor)
          Matches = V.Ref->H.Tag == Arm.Tag;
        else if (V.Kind != ValueKind::Enum && V.Kind != ValueKind::HeapRef)
          VM_TRAP("match on a non-constructor value", TrapKind::RuntimeError);
        break;
      case ArmKind::IntLit:
        if (V.Kind != ValueKind::Int)
          VM_TRAP("integer pattern on a non-integer value",
                  TrapKind::RuntimeError);
        Matches = V.Int == Arm.Lit;
        break;
      case ArmKind::BoolLit:
        if (V.Kind != ValueKind::Bool)
          VM_TRAP("boolean pattern on a non-boolean value",
                  TrapKind::RuntimeError);
        Matches = (V.Int != 0) == (Arm.Lit != 0);
        break;
      case ArmKind::Default:
        // Recorded, but the scan continues: a later ill-typed arm still
        // traps even when a default exists (CEK parity).
        Default = &Arm;
        break;
      }
      if (Matches) {
        const uint16_t *Binders = CP.BinderSlots.data() + Arm.BinderBase;
        for (uint32_t J = 0; J != Arm.NumBinders; ++J)
          RF[Binders[J]] = V.Ref->fields()[J];
        Pc = Arm.Target;
        VM_NEXT();
      }
    }
    if (Default) {
      Pc = Default->Target;
      VM_NEXT();
    }
    VM_TRAP("non-exhaustive match", TrapKind::RuntimeError);
  }

  //===--- Calls ----------------------------------------------------------===//
  VM_CASE(CallStatic) {
    const Chunk *T = &FuncTab[I.E];
    if (CallDepthLimit && CallDepth >= CallDepthLimit)
      VM_TRAP("call depth limit exceeded (stack overflow)",
              TrapKind::StackOverflow);
    ++CallDepth;
    if (CallDepth > R.MaxCallDepth)
      R.MaxCallDepth = CallDepth;
    Frames.push_back(Frame{Ch, Pc, BaseL, I.B});
    BaseL += I.C; // the argument window is the callee's parameter region
    Regs.reframe(BaseL + T->NumRegs, BaseL + I.A);
    if (Regs.size() > R.MaxLocalsSlots)
      R.MaxLocalsSlots = Regs.size();
    VM_SWITCH_CHUNK(T);
    VM_REFRAME();
    Pc = 0;
    VM_NEXT();
  }
  VM_CASE(Call) {
    Value Callee = RF[I.C];
    const Chunk *T;
    Cell *Clo = nullptr;
    if (Callee.Kind == ValueKind::FnRef) {
      T = &FuncTab[Callee.fnId()];
      if (T->NumParams != I.A)
        VM_TRAP("arity mismatch calling '" +
                    std::string(CP.Prog->symbols().name(T->Fn->Name)) + "'",
                TrapKind::RuntimeError);
    } else if (Callee.Kind == ValueKind::HeapRef &&
               Callee.Ref->H.Kind == CellKind::Closure) {
      Clo = Callee.Ref;
      const auto *Lm =
          static_cast<const LamExpr *>(Clo->fields()[0].rawPtr());
      T = &LamTab[Lm->lamId()];
      if (T->NumParams != I.A)
        VM_TRAP("arity mismatch calling a closure", TrapKind::RuntimeError);
    } else {
      VM_TRAP("calling a non-function value", TrapKind::RuntimeError);
    }
    if (CallDepthLimit && CallDepth >= CallDepthLimit)
      VM_TRAP("call depth limit exceeded (stack overflow)",
              TrapKind::StackOverflow);
    ++CallDepth;
    if (CallDepth > R.MaxCallDepth)
      R.MaxCallDepth = CallDepth;
    const Expr *SiteE = Sites[Pc - 1];
    Frames.push_back(Frame{Ch, Pc, BaseL, I.B});
    BaseL += I.C + 1; // arguments start one past the callee register
    Regs.reframe(BaseL + T->NumRegs, BaseL + I.A);
    if (Regs.size() > R.MaxLocalsSlots)
      R.MaxLocalsSlots = Regs.size();
    VM_SWITCH_CHUNK(T);
    VM_REFRAME();
    Pc = 0;
    if (Clo)
      applyClosure(T, Clo, SiteE, RF);
    VM_NEXT();
  }
  VM_CASE(TailCallStatic) {
    const Chunk *T = &FuncTab[I.E];
    ++R.TailCalls;
    for (uint32_t J = 0; J != I.A; ++J) // forward copy; window >= dst
      RF[J] = RF[I.C + J];
    Regs.reframe(BaseL + T->NumRegs, BaseL + I.A);
    if (Regs.size() > R.MaxLocalsSlots)
      R.MaxLocalsSlots = Regs.size();
    VM_SWITCH_CHUNK(T);
    VM_REFRAME();
    Pc = 0;
    VM_NEXT();
  }
  VM_CASE(TailCall) {
    Value Callee = RF[I.C];
    const Chunk *T;
    Cell *Clo = nullptr;
    if (Callee.Kind == ValueKind::FnRef) {
      T = &FuncTab[Callee.fnId()];
      if (T->NumParams != I.A)
        VM_TRAP("arity mismatch calling '" +
                    std::string(CP.Prog->symbols().name(T->Fn->Name)) + "'",
                TrapKind::RuntimeError);
    } else if (Callee.Kind == ValueKind::HeapRef &&
               Callee.Ref->H.Kind == CellKind::Closure) {
      Clo = Callee.Ref;
      const auto *Lm =
          static_cast<const LamExpr *>(Clo->fields()[0].rawPtr());
      T = &LamTab[Lm->lamId()];
      if (T->NumParams != I.A)
        VM_TRAP("arity mismatch calling a closure", TrapKind::RuntimeError);
    } else {
      VM_TRAP("calling a non-function value", TrapKind::RuntimeError);
    }
    ++R.TailCalls;
    const Expr *SiteE = Sites[Pc - 1];
    for (uint32_t J = 0; J != I.A; ++J) // forward copy; window+1 > dst
      RF[J] = RF[I.C + 1 + J];
    Regs.reframe(BaseL + T->NumRegs, BaseL + I.A);
    if (Regs.size() > R.MaxLocalsSlots)
      R.MaxLocalsSlots = Regs.size();
    VM_SWITCH_CHUNK(T);
    VM_REFRAME();
    Pc = 0;
    if (Clo)
      applyClosure(T, Clo, SiteE, RF);
    VM_NEXT();
  }
  VM_CASE(Ret) {
    Value V = RF[I.B];
    if (Frames.empty()) {
      Result = V;
      goto Done;
    }
    Frame F = Frames.back();
    Frames.pop_back();
    --CallDepth;
    BaseL = F.Base;
    Regs.resize(BaseL + F.Ch->NumRegs);
    VM_SWITCH_CHUNK(F.Ch);
    VM_REFRAME();
    Pc = F.Pc;
    RF[F.Dst] = V;
    VM_NEXT();
  }

  //===--- Heap allocation ------------------------------------------------===//
  VM_CASE(MakeClosure) {
    const Chunk *LC = &LamTab[I.E];
    size_t NCaps = LC->CaptureSrc.size();
    if (Sink)
      Sink->setSite(LC->Lam, "lambda", LC->Lam->loc());
    Cell *C =
        H.alloc(static_cast<uint32_t>(NCaps + 1), 0, CellKind::Closure);
    if (!C)
      VM_TRAP("out of memory allocating a closure", TrapKind::OutOfMemory);
    VM_REFRAME(); // a GC-mode alloc may have collected, never resized;
                  // reframe anyway for uniformity
    Value *Fields = C->fields();
    Fields[0] = Value::makeRaw(LC->Lam);
    for (size_t J = 0; J != NCaps; ++J)
      Fields[1 + J] = RF[LC->CaptureSrc[J]]; // ownership moves in
    RF[I.B] = Value::makeRef(C);
    VM_NEXT();
  }
  VM_CASE(Con) {
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "con", Sites[Pc - 1]->loc());
    Cell *C = H.alloc(I.A, I.D, CellKind::Ctor);
    if (!C)
      VM_TRAP("out of memory allocating a constructor", TrapKind::OutOfMemory);
    VM_REFRAME();
    Value *Fields = C->fields();
    for (uint32_t J = 0; J != I.A; ++J)
      Fields[J] = RF[I.C + J];
    RF[I.B] = Value::makeRef(C);
    VM_NEXT();
  }
  VM_CASE(ConReuse) {
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "con@ru", Sites[Pc - 1]->loc());
    Value Tok = RF[I.D];
    if (Tok.Kind != ValueKind::Token)
      VM_TRAP("constructor reuse with a non-token", TrapKind::RuntimeError);
    Cell *C = nullptr;
    if (Tok.Tok) {
      C = Tok.Tok; // in-place reuse: same memory, fresh identity
      assert(C->H.Arity == I.A && "reuse token arity mismatch");
      C->H.Rc.store(1, std::memory_order_relaxed);
      C->H.Tag = static_cast<uint8_t>(I.E);
      C->H.Kind = CellKind::Ctor;
      ++R.ReuseHits;
      if (Sink)
        Sink->record(RcEvent::ReuseHit, Cell::allocSize(I.A));
    } else {
      ++R.ReuseMisses;
      if (Sink)
        Sink->record(RcEvent::ReuseMiss, 0);
    }
    if (!C) {
      C = H.alloc(I.A, I.E, CellKind::Ctor);
      if (!C)
        VM_TRAP("out of memory allocating a constructor",
                TrapKind::OutOfMemory);
      VM_REFRAME();
    }
    Value *Fields = C->fields();
    for (uint32_t J = 0; J != I.A; ++J)
      Fields[J] = RF[I.C + J];
    RF[I.B] = Value::makeRef(C);
    VM_NEXT();
  }

  //===--- RC instructions ------------------------------------------------===//
  VM_CASE(Dup) {
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.C]);
    VM_NEXT();
  }
  VM_CASE(Drop) {
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "drop", Sites[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.C]);
    VM_NEXT();
  }
  VM_CASE(FreeOp) {
    // `free` is memory-only disposal, not an RC operation (Rc.Frees
    // only; see Machine.cpp).
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "free", Sites[Pc - 1]->loc());
    ++R.Rc.Frees;
    Value V = RF[I.C];
    if (V.Kind == ValueKind::HeapRef) {
      H.freeMemoryOnly(V.Ref);
    } else if (V.Kind == ValueKind::Token) {
      if (V.Tok)
        H.freeMemoryOnly(V.Tok);
    }
    VM_NEXT();
  }
  VM_CASE(DecRef) {
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "decref", Sites[Pc - 1]->loc());
    ++R.Rc.DecRefs;
    H.decref(RF[I.C]);
    VM_NEXT();
  }
  VM_CASE(IsUniqueBr) {
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "is-unique", Sites[Pc - 1]->loc());
    ++R.Rc.IsUniques;
    if (!H.isUnique(RF[I.C]))
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(DropReuse) {
    Value V = RF[I.C];
    if (V.Kind != ValueKind::HeapRef)
      VM_TRAP("drop-reuse of a non-heap value", TrapKind::RuntimeError);
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "drop-reuse", Sites[Pc - 1]->loc());
    ++R.Rc.DropReuses;
    ++R.Rc.IsUniques; // the probe below is a real is-unique test
    if (H.isUnique(V)) {
      R.Rc.ImplicitDrops += V.Ref->H.Arity; // dropChildren drops each
      H.dropChildren(V.Ref);
      RF[I.D] = Value::makeToken(V.Ref);
    } else {
      ++R.Rc.ImplicitDecRefs;
      H.decref(V);
      RF[I.D] = Value::makeToken(nullptr);
    }
    VM_NEXT();
  }
  VM_CASE(ReuseAddr) {
    Value V = RF[I.C];
    if (V.Kind != ValueKind::HeapRef)
      VM_TRAP("reuse-addr of a non-heap value", TrapKind::RuntimeError);
    RF[I.B] = Value::makeToken(V.Ref);
    VM_NEXT();
  }
  VM_CASE(IsNullTokenBr) {
    // Blind union read, like the CEK machine: layout guarantees the slot
    // holds a token here.
    if (RF[I.C].Tok == nullptr) {
      // The reuse-specialized fresh path: the pairing missed.
      ++R.ReuseMisses;
      if (Sink) {
        Sink->setSite(Sites[Pc - 1], "is-null-token", Sites[Pc - 1]->loc());
        Sink->record(RcEvent::ReuseMiss, 0);
      }
    } else {
      Pc = I.E;
    }
    VM_NEXT();
  }
  VM_CASE(SetField) {
    Value Tok = RF[I.C];
    if (Tok.Kind != ValueKind::Token || !Tok.Tok)
      VM_TRAP("field assignment through a null token", TrapKind::RuntimeError);
    Tok.Tok->fields()[I.A] = RF[I.D];
    VM_NEXT();
  }
  VM_CASE(TokenValue) {
    Value V = RF[I.C];
    if (V.Kind != ValueKind::Token || !V.Tok)
      VM_TRAP("token value of a null or non-token", TrapKind::RuntimeError);
    Cell *C = V.Tok;
    C->H.Tag = static_cast<uint8_t>(I.D);
    C->H.Kind = CellKind::Ctor;
    ++R.ReuseHits;
    if (Sink) {
      Sink->setSite(Sites[Pc - 1], "token-value", Sites[Pc - 1]->loc());
      Sink->record(RcEvent::ReuseHit, Cell::allocSize(C->H.Arity));
    }
    RF[I.B] = Value::makeRef(C);
    VM_NEXT();
  }

  //===--- Primitives -----------------------------------------------------===//
  VM_CASE(Add) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(A.Int + B.Int);
    VM_NEXT();
  }
  VM_CASE(Sub) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(A.Int - B.Int);
    VM_NEXT();
  }
  VM_CASE(Mul) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(A.Int * B.Int);
    VM_NEXT();
  }
  VM_CASE(Div) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    if (B.Int == 0)
      VM_TRAP("division by zero", TrapKind::RuntimeError);
    if (A.Int == INT64_MIN && B.Int == -1)
      VM_TRAP("integer overflow in division", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(A.Int / B.Int);
    VM_NEXT();
  }
  VM_CASE(Mod) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    if (B.Int == 0)
      VM_TRAP("modulo by zero", TrapKind::RuntimeError);
    if (A.Int == INT64_MIN && B.Int == -1)
      VM_TRAP("integer overflow in modulo", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(A.Int % B.Int);
    VM_NEXT();
  }
  VM_CASE(Neg) {
    Value A = RF[I.C];
    if (A.Kind != ValueKind::Int)
      VM_TRAP("negation of a non-integer", TrapKind::RuntimeError);
    if (A.Int == INT64_MIN)
      VM_TRAP("integer overflow in negation", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(-A.Int);
    VM_NEXT();
  }
  VM_CASE(Lt) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    RF[I.B] = Value::makeBool(A.Int < B.Int);
    VM_NEXT();
  }
  VM_CASE(Le) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    RF[I.B] = Value::makeBool(A.Int <= B.Int);
    VM_NEXT();
  }
  VM_CASE(Gt) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    RF[I.B] = Value::makeBool(A.Int > B.Int);
    VM_NEXT();
  }
  VM_CASE(Ge) {
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    RF[I.B] = Value::makeBool(A.Int >= B.Int);
    VM_NEXT();
  }
  VM_CASE(EqVal) {
    Value A = RF[I.C], B = RF[I.D];
    bool Eq;
    if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
      Eq = A.Int == B.Int;
    else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
      Eq = (A.Int != 0) == (B.Int != 0);
    else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
      Eq = A.Bits == B.Bits;
    else
      VM_TRAP("equality on incompatible or heap values",
              TrapKind::RuntimeError);
    RF[I.B] = Value::makeBool(Eq);
    VM_NEXT();
  }
  VM_CASE(NeVal) {
    Value A = RF[I.C], B = RF[I.D];
    bool Eq;
    if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
      Eq = A.Int == B.Int;
    else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
      Eq = (A.Int != 0) == (B.Int != 0);
    else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
      Eq = A.Bits == B.Bits;
    else
      VM_TRAP("equality on incompatible or heap values",
              TrapKind::RuntimeError);
    RF[I.B] = Value::makeBool(!Eq);
    VM_NEXT();
  }
  VM_CASE(Not) {
    Value A = RF[I.C];
    if (A.Kind != ValueKind::Bool)
      VM_TRAP("negation of a non-boolean", TrapKind::RuntimeError);
    RF[I.B] = Value::makeBool(!A.asBool());
    VM_NEXT();
  }
  VM_CASE(PrintLn) {
    Value A = RF[I.C];
    if (A.Kind == ValueKind::Int)
      R.Output += std::to_string(A.Int);
    else if (A.Kind == ValueKind::Bool)
      R.Output += A.asBool() ? "True" : "False";
    else if (A.Kind == ValueKind::Unit)
      R.Output += "()";
    else
      VM_TRAP("println of a non-printable value", TrapKind::RuntimeError);
    R.Output += '\n';
    RF[I.B] = Value::unit();
    VM_NEXT();
  }
  VM_CASE(MarkSharedOp) {
    // tshare consumes its argument (the reference is transferred in).
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "tshare", Sites[Pc - 1]->loc());
    H.markShared(RF[I.C]);
    ++R.Rc.ImplicitDrops;
    H.drop(RF[I.C]);
    RF[I.B] = Value::unit();
    VM_NEXT();
  }
  VM_CASE(AbortOp) {
    VM_TRAP("abort: non-exhaustive match or explicit failure",
            TrapKind::RuntimeError);
  }
  VM_CASE(RefNew) {
    // Ownership of the content moves into the cell.
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "ref-new", Sites[Pc - 1]->loc());
    Cell *C = H.alloc(1, 0, CellKind::Ref);
    if (!C)
      VM_TRAP("out of memory allocating a reference", TrapKind::OutOfMemory);
    VM_REFRAME();
    C->fields()[0] = RF[I.C];
    RF[I.B] = Value::makeRef(C);
    VM_NEXT();
  }
  VM_CASE(RefGet) {
    Value Rv = RF[I.C];
    if (Rv.Kind != ValueKind::HeapRef || Rv.Ref->H.Kind != CellKind::Ref)
      VM_TRAP("deref of a non-reference", TrapKind::RuntimeError);
    Value Out = Rv.Ref->fields()[0];
    // The paper's read: dup the content, then release the handle.
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "ref-get", Sites[Pc - 1]->loc());
    ++R.Rc.ImplicitDups;
    H.dup(Out);
    ++R.Rc.ImplicitDrops;
    H.drop(Rv);
    RF[I.B] = Out;
    VM_NEXT();
  }
  VM_CASE(RefSet) {
    Value Rv = RF[I.C];
    if (Rv.Kind != ValueKind::HeapRef || Rv.Ref->H.Kind != CellKind::Ref)
      VM_TRAP("set-ref of a non-reference", TrapKind::RuntimeError);
    Value Old = Rv.Ref->fields()[0];
    Rv.Ref->fields()[0] = RF[I.D]; // content ownership moves in
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "ref-set", Sites[Pc - 1]->loc());
    R.Rc.ImplicitDrops += 2;
    H.drop(Old);
    H.drop(Rv); // release the handle
    RF[I.B] = Value::unit();
    VM_NEXT();
  }

  VM_CASE(TrapOp) {
    VM_TRAP(CP.Messages[I.E], TrapKind::RuntimeError);
  }

  //===--- Superinstructions (peephole tier) ------------------------------===//
  // Each handler is the literal concatenation of its component handlers:
  // same heap calls, same counter increments, same telemetry stamps,
  // same trap messages at the same points — one dispatch. Primary sites
  // live in Sites; per-component extras in Sites2/Sites3, which the
  // peephole pass populates on every chunk it rewrites.

  VM_CASE(DupMove) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.D]);
    RF[I.B] = RF[I.C];
    VM_NEXT();
  }
  VM_CASE(Dup2) {
    ++R.Rc.FusedOps;
    R.Rc.FusedRcOps += 2;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.C]);
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "dup", Sites2[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.D]);
    VM_NEXT();
  }
  VM_CASE(Drop2) {
    ++R.Rc.FusedOps;
    R.Rc.FusedRcOps += 2;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "drop", Sites[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.C]);
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "drop", Sites2[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.D]);
    VM_NEXT();
  }
  VM_CASE(Dup3) {
    ++R.Rc.FusedOps;
    R.Rc.FusedRcOps += 3;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.C]);
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "dup", Sites2[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.D]);
    if (Sink)
      Sink->setSite(Sites3[Pc - 1], "dup", Sites3[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[static_cast<uint16_t>(I.E)]);
    VM_NEXT();
  }
  VM_CASE(Drop3) {
    ++R.Rc.FusedOps;
    R.Rc.FusedRcOps += 3;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "drop", Sites[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.C]);
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "drop", Sites2[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.D]);
    if (Sink)
      Sink->setSite(Sites3[Pc - 1], "drop", Sites3[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[static_cast<uint16_t>(I.E)]);
    VM_NEXT();
  }
  VM_CASE(DupCallStatic) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.D]);
    const Chunk *T = &FuncTab[I.E];
    if (CallDepthLimit && CallDepth >= CallDepthLimit)
      VM_TRAP("call depth limit exceeded (stack overflow)",
              TrapKind::StackOverflow);
    ++CallDepth;
    if (CallDepth > R.MaxCallDepth)
      R.MaxCallDepth = CallDepth;
    Frames.push_back(Frame{Ch, Pc, BaseL, I.B});
    BaseL += I.C; // the argument window is the callee's parameter region
    Regs.reframe(BaseL + T->NumRegs, BaseL + I.A);
    if (Regs.size() > R.MaxLocalsSlots)
      R.MaxLocalsSlots = Regs.size();
    VM_SWITCH_CHUNK(T);
    VM_REFRAME();
    Pc = 0;
    VM_NEXT();
  }
  VM_CASE(DupCall) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "dup", Sites2[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.D]);
    Value Callee = RF[I.C];
    const Chunk *T;
    Cell *Clo = nullptr;
    if (Callee.Kind == ValueKind::FnRef) {
      T = &FuncTab[Callee.fnId()];
      if (T->NumParams != I.A)
        VM_TRAP("arity mismatch calling '" +
                    std::string(CP.Prog->symbols().name(T->Fn->Name)) + "'",
                TrapKind::RuntimeError);
    } else if (Callee.Kind == ValueKind::HeapRef &&
               Callee.Ref->H.Kind == CellKind::Closure) {
      Clo = Callee.Ref;
      const auto *Lm =
          static_cast<const LamExpr *>(Clo->fields()[0].rawPtr());
      T = &LamTab[Lm->lamId()];
      if (T->NumParams != I.A)
        VM_TRAP("arity mismatch calling a closure", TrapKind::RuntimeError);
    } else {
      VM_TRAP("calling a non-function value", TrapKind::RuntimeError);
    }
    if (CallDepthLimit && CallDepth >= CallDepthLimit)
      VM_TRAP("call depth limit exceeded (stack overflow)",
              TrapKind::StackOverflow);
    ++CallDepth;
    if (CallDepth > R.MaxCallDepth)
      R.MaxCallDepth = CallDepth;
    const Expr *SiteE = Sites[Pc - 1];
    Frames.push_back(Frame{Ch, Pc, BaseL, I.B});
    BaseL += I.C + 1; // arguments start one past the callee register
    Regs.reframe(BaseL + T->NumRegs, BaseL + I.A);
    if (Regs.size() > R.MaxLocalsSlots)
      R.MaxLocalsSlots = Regs.size();
    VM_SWITCH_CHUNK(T);
    VM_REFRAME();
    Pc = 0;
    if (Clo)
      applyClosure(T, Clo, SiteE, RF);
    VM_NEXT();
  }
  VM_CASE(IsUniqueReuse) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "is-unique", Sites[Pc - 1]->loc());
    ++R.Rc.IsUniques;
    Value V = RF[I.C];
    if (H.isUnique(V))
      RF[I.B] = Value::makeToken(V.Ref); // the fused ReuseAddr
    else
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(SetFieldToken) {
    ++R.Rc.FusedOps;
    Value Tok = RF[I.C];
    if (Tok.Kind != ValueKind::Token || !Tok.Tok)
      VM_TRAP("field assignment through a null token", TrapKind::RuntimeError);
    Cell *C = Tok.Tok;
    C->fields()[I.A] = RF[I.D];
    C->H.Tag = static_cast<uint8_t>(I.E);
    C->H.Kind = CellKind::Ctor;
    ++R.ReuseHits;
    if (Sink) {
      Sink->setSite(Sites[Pc - 1], "token-value", Sites[Pc - 1]->loc());
      Sink->record(RcEvent::ReuseHit, Cell::allocSize(C->H.Arity));
    }
    RF[I.B] = Value::makeRef(C);
    VM_NEXT();
  }
  VM_CASE(Move2) {
    ++R.Rc.FusedOps;
    RF[I.B] = RF[I.C];
    RF[I.D] = RF[static_cast<uint16_t>(I.E)];
    VM_NEXT();
  }
  VM_CASE(LoadConstMove) {
    ++R.Rc.FusedOps;
    RF[I.D] = Consts[I.E];
    RF[I.B] = RF[I.C];
    VM_NEXT();
  }
  VM_CASE(RetConst) {
    ++R.Rc.FusedOps;
    Value V = Consts[I.E];
    if (Frames.empty()) {
      Result = V;
      goto Done;
    }
    Frame F = Frames.back();
    Frames.pop_back();
    --CallDepth;
    BaseL = F.Base;
    Regs.resize(BaseL + F.Ch->NumRegs);
    VM_SWITCH_CHUNK(F.Ch);
    VM_REFRAME();
    Pc = F.Pc;
    RF[F.Dst] = V;
    VM_NEXT();
  }
  VM_CASE(LtBr) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    if (!(A.Int < B.Int))
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(LeBr) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    if (!(A.Int <= B.Int))
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(GtBr) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    if (!(A.Int > B.Int))
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(GeBr) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
    if (!(A.Int >= B.Int))
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(EqBr) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    bool Eq;
    if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
      Eq = A.Int == B.Int;
    else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
      Eq = (A.Int != 0) == (B.Int != 0);
    else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
      Eq = A.Bits == B.Bits;
    else
      VM_TRAP("equality on incompatible or heap values",
              TrapKind::RuntimeError);
    if (!Eq)
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(NeBr) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    bool Eq;
    if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
      Eq = A.Int == B.Int;
    else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
      Eq = (A.Int != 0) == (B.Int != 0);
    else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
      Eq = A.Bits == B.Bits;
    else
      VM_TRAP("equality on incompatible or heap values",
              TrapKind::RuntimeError);
    if (Eq)
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(CmpConstBr) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = Consts[I.D];
    CmpBrKind K = static_cast<CmpBrKind>(I.A);
    bool Res;
    if (K == CmpBrKind::Eq || K == CmpBrKind::Ne) {
      bool Eq;
      if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
        Eq = A.Int == B.Int;
      else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
        Eq = (A.Int != 0) == (B.Int != 0);
      else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
        Eq = A.Bits == B.Bits;
      else
        VM_TRAP("equality on incompatible or heap values",
                TrapKind::RuntimeError);
      Res = K == CmpBrKind::Eq ? Eq : !Eq;
    } else {
      if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
        VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
      switch (K) {
      case CmpBrKind::Lt:
        Res = A.Int < B.Int;
        break;
      case CmpBrKind::Le:
        Res = A.Int <= B.Int;
        break;
      case CmpBrKind::Gt:
        Res = A.Int > B.Int;
        break;
      default:
        Res = A.Int >= B.Int;
        break;
      }
    }
    if (!Res)
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(CmpJmp) {
    // compare + Jump + the target JumpIfFalse, threaded into one
    // two-way branch. The compare always yields a boolean, so the
    // skipped JumpIfFalse's non-boolean trap was unreachable, and its
    // condition temp is dead on this path (the write is elided).
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    CmpBrKind K = static_cast<CmpBrKind>(I.A);
    bool Res;
    if (K == CmpBrKind::Eq || K == CmpBrKind::Ne) {
      bool Eq;
      if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
        Eq = A.Int == B.Int;
      else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
        Eq = (A.Int != 0) == (B.Int != 0);
      else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
        Eq = A.Bits == B.Bits;
      else
        VM_TRAP("equality on incompatible or heap values",
                TrapKind::RuntimeError);
      Res = K == CmpBrKind::Eq ? Eq : !Eq;
    } else {
      if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
        VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
      switch (K) {
      case CmpBrKind::Lt:
        Res = A.Int < B.Int;
        break;
      case CmpBrKind::Le:
        Res = A.Int <= B.Int;
        break;
      case CmpBrKind::Gt:
        Res = A.Int > B.Int;
        break;
      default:
        Res = A.Int >= B.Int;
        break;
      }
    }
    Pc = Res ? I.B : I.E;
    VM_NEXT();
  }
  VM_CASE(MoveArith) {
    ++R.Rc.FusedOps;
    RF[static_cast<uint16_t>(I.E >> 16)] = RF[static_cast<uint16_t>(I.E)];
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(I.A == 0   ? A.Int + B.Int
                             : I.A == 1 ? A.Int - B.Int
                                        : A.Int * B.Int);
    VM_NEXT();
  }
  VM_CASE(ArithMove) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = RF[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    RF[I.B] = Value::makeInt(I.A == 0   ? A.Int + B.Int
                             : I.A == 1 ? A.Int - B.Int
                                        : A.Int * B.Int);
    RF[static_cast<uint16_t>(I.E >> 16)] = RF[static_cast<uint16_t>(I.E)];
    VM_NEXT();
  }
  VM_CASE(ArithConst) {
    // LoadConst into a dead temp + the arith consuming it; the trap
    // condition (either operand non-integer) is checked exactly as the
    // component arith did, constants included.
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = Consts[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    int64_t V;
    switch (I.A) {
    case 0:
      V = A.Int + B.Int;
      break;
    case 1:
      V = A.Int - B.Int;
      break;
    case 2:
      V = B.Int - A.Int;
      break;
    default:
      V = A.Int * B.Int;
      break;
    }
    RF[I.B] = Value::makeInt(V);
    VM_NEXT();
  }
  VM_CASE(Move3) {
    ++R.Rc.FusedOps;
    RF[I.B] = RF[I.C];
    RF[I.D] = RF[static_cast<uint16_t>(I.E)];
    RF[static_cast<uint16_t>(I.E >> 16)] = RF[I.A];
    VM_NEXT();
  }
  VM_CASE(MoveTailCallStatic) {
    ++R.Rc.FusedOps;
    RF[I.B] = RF[I.D]; // the fused move (an argument-window store)
    const Chunk *T = &FuncTab[I.E];
    ++R.TailCalls;
    for (uint32_t J = 0; J != I.A; ++J) // forward copy; window >= dst
      RF[J] = RF[I.C + J];
    Regs.reframe(BaseL + T->NumRegs, BaseL + I.A);
    if (Regs.size() > R.MaxLocalsSlots)
      R.MaxLocalsSlots = Regs.size();
    VM_SWITCH_CHUNK(T);
    VM_REFRAME();
    Pc = 0;
    VM_NEXT();
  }
  VM_CASE(IsUniqueBrDup2) {
    // The reuse-specialized match arm prologue: probe, then dup the two
    // fields — but only on the unique path, exactly like the unfused
    // IsUniqueBr whose else-branch skipped them.
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "is-unique", Sites[Pc - 1]->loc());
    ++R.Rc.IsUniques;
    if (H.isUnique(RF[I.C])) {
      R.Rc.FusedRcOps += 2;
      if (Sink)
        Sink->setSite(Sites2[Pc - 1], "dup", Sites2[Pc - 1]->loc());
      ++R.Rc.Dups;
      H.dup(RF[I.B]);
      if (Sink)
        Sink->setSite(Sites3[Pc - 1], "dup", Sites3[Pc - 1]->loc());
      ++R.Rc.Dups;
      H.dup(RF[I.D]);
    } else {
      Pc = I.E;
    }
    VM_NEXT();
  }
  VM_CASE(DecLoadConst) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "decref", Sites[Pc - 1]->loc());
    ++R.Rc.DecRefs;
    H.decref(RF[I.C]);
    RF[I.B] = Consts[I.E];
    VM_NEXT();
  }
  VM_CASE(JfMove) {
    ++R.Rc.FusedOps;
    Value V = RF[I.B];
    if (V.Kind != ValueKind::Bool)
      VM_TRAP("if condition is not a boolean", TrapKind::RuntimeError);
    if (!V.asBool())
      Pc = I.E;
    else
      RF[I.C] = RF[I.D];
    VM_NEXT();
  }
  VM_CASE(JfDrop) {
    ++R.Rc.FusedOps;
    Value V = RF[I.B];
    if (V.Kind != ValueKind::Bool)
      VM_TRAP("if condition is not a boolean", TrapKind::RuntimeError);
    if (!V.asBool()) {
      Pc = I.E;
    } else {
      ++R.Rc.FusedRcOps;
      if (Sink)
        Sink->setSite(Sites2[Pc - 1], "drop", Sites2[Pc - 1]->loc());
      ++R.Rc.Drops;
      H.drop(RF[I.C]);
    }
    VM_NEXT();
  }
  VM_CASE(DropLoadConst) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "drop", Sites[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.C]);
    RF[I.B] = Consts[I.E];
    VM_NEXT();
  }
  VM_CASE(DropRetConst) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "drop", Sites[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.C]);
    Value V = Consts[I.E];
    if (Frames.empty()) {
      Result = V;
      goto Done;
    }
    Frame F = Frames.back();
    Frames.pop_back();
    --CallDepth;
    BaseL = F.Base;
    Regs.resize(BaseL + F.Ch->NumRegs);
    VM_SWITCH_CHUNK(F.Ch);
    VM_REFRAME();
    Pc = F.Pc;
    RF[F.Dst] = V;
    VM_NEXT();
  }
  VM_CASE(DupDecLoadConst) {
    ++R.Rc.FusedOps;
    R.Rc.FusedRcOps += 2;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.C]);
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "decref", Sites2[Pc - 1]->loc());
    ++R.Rc.DecRefs;
    H.decref(RF[I.D]);
    RF[I.B] = Consts[I.E];
    VM_NEXT();
  }
  VM_CASE(Dup2DecLoadConst) {
    ++R.Rc.FusedOps;
    R.Rc.FusedRcOps += 3;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.C]);
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "dup", Sites2[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.D]);
    if (Sink)
      Sink->setSite(Sites3[Pc - 1], "decref", Sites3[Pc - 1]->loc());
    ++R.Rc.DecRefs;
    H.decref(RF[I.B]);
    RF[I.A] = Consts[I.E];
    VM_NEXT();
  }
  VM_CASE(Dup2Move2) {
    // Two "dup r; copy r into the frame slot" pairs — the binder
    // materialization every match arm opens with.
    ++R.Rc.FusedOps;
    R.Rc.FusedRcOps += 2;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.C]);
    RF[I.B] = RF[I.C];
    if (Sink)
      Sink->setSite(Sites2[Pc - 1], "dup", Sites2[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[static_cast<uint16_t>(I.E)]);
    RF[I.D] = RF[static_cast<uint16_t>(I.E)];
    VM_NEXT();
  }
  VM_CASE(MoveDupMove) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    RF[I.B] = RF[I.C];
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "dup", Sites[Pc - 1]->loc());
    ++R.Rc.Dups;
    H.dup(RF[I.D]);
    RF[static_cast<uint16_t>(I.E)] = RF[I.D];
    VM_NEXT();
  }
  VM_CASE(MoveArithConst) {
    ++R.Rc.FusedOps;
    RF[static_cast<uint16_t>(I.E >> 16)] = RF[static_cast<uint16_t>(I.E)];
    Value A = RF[I.C], B = Consts[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    int64_t V;
    switch (I.A) {
    case 0:
      V = A.Int + B.Int;
      break;
    case 1:
      V = A.Int - B.Int;
      break;
    case 2:
      V = B.Int - A.Int;
      break;
    default:
      V = A.Int * B.Int;
      break;
    }
    RF[I.B] = Value::makeInt(V);
    VM_NEXT();
  }
  VM_CASE(ArithConstMove) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = Consts[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    int64_t V;
    switch (I.A) {
    case 0:
      V = A.Int + B.Int;
      break;
    case 1:
      V = A.Int - B.Int;
      break;
    case 2:
      V = B.Int - A.Int;
      break;
    default:
      V = A.Int * B.Int;
      break;
    }
    RF[I.B] = Value::makeInt(V);
    RF[static_cast<uint16_t>(I.E >> 16)] = RF[static_cast<uint16_t>(I.E)];
    VM_NEXT();
  }
  VM_CASE(MoveCmpConstBr) {
    ++R.Rc.FusedOps;
    RF[I.C] = RF[I.B]; // the fused move feeds the compare's lhs
    Value A = RF[I.C], B = Consts[I.D];
    CmpBrKind K = static_cast<CmpBrKind>(I.A);
    bool Res;
    if (K == CmpBrKind::Eq || K == CmpBrKind::Ne) {
      bool Eq;
      if (A.Kind == ValueKind::Int && B.Kind == ValueKind::Int)
        Eq = A.Int == B.Int;
      else if (A.Kind == ValueKind::Bool && B.Kind == ValueKind::Bool)
        Eq = (A.Int != 0) == (B.Int != 0);
      else if (A.Kind == ValueKind::Enum && B.Kind == ValueKind::Enum)
        Eq = A.Bits == B.Bits;
      else
        VM_TRAP("equality on incompatible or heap values",
                TrapKind::RuntimeError);
      Res = K == CmpBrKind::Eq ? Eq : !Eq;
    } else {
      if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
        VM_TRAP("comparison of non-integers", TrapKind::RuntimeError);
      switch (K) {
      case CmpBrKind::Lt:
        Res = A.Int < B.Int;
        break;
      case CmpBrKind::Le:
        Res = A.Int <= B.Int;
        break;
      case CmpBrKind::Gt:
        Res = A.Int > B.Int;
        break;
      default:
        Res = A.Int >= B.Int;
        break;
      }
    }
    if (!Res)
      Pc = I.E;
    VM_NEXT();
  }
  VM_CASE(ConRet) {
    ++R.Rc.FusedOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "con", Sites[Pc - 1]->loc());
    Cell *C = H.alloc(I.A, I.D, CellKind::Ctor);
    if (!C)
      VM_TRAP("out of memory allocating a constructor", TrapKind::OutOfMemory);
    VM_REFRAME();
    Value *Fields = C->fields();
    for (uint32_t J = 0; J != I.A; ++J)
      Fields[J] = RF[I.C + J];
    Value V = Value::makeRef(C);
    RF[I.B] = V; // kept live for a clean unwind should the pop not happen
    if (Frames.empty()) {
      Result = V;
      goto Done;
    }
    Frame F = Frames.back();
    Frames.pop_back();
    --CallDepth;
    BaseL = F.Base;
    Regs.resize(BaseL + F.Ch->NumRegs);
    VM_SWITCH_CHUNK(F.Ch);
    VM_REFRAME();
    Pc = F.Pc;
    RF[F.Dst] = V;
    VM_NEXT();
  }
  VM_CASE(DropMove) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "drop", Sites[Pc - 1]->loc());
    ++R.Rc.Drops;
    H.drop(RF[I.C]);
    RF[I.B] = RF[I.D];
    VM_NEXT();
  }
  VM_CASE(ArithConstRet) {
    ++R.Rc.FusedOps;
    Value A = RF[I.C], B = Consts[I.D];
    if (A.Kind != ValueKind::Int || B.Kind != ValueKind::Int)
      VM_TRAP("arithmetic on a non-integer", TrapKind::RuntimeError);
    int64_t VI;
    switch (I.A) {
    case 0:
      VI = A.Int + B.Int;
      break;
    case 1:
      VI = A.Int - B.Int;
      break;
    case 2:
      VI = B.Int - A.Int;
      break;
    default:
      VI = A.Int * B.Int;
      break;
    }
    Value V = Value::makeInt(VI);
    if (Frames.empty()) {
      Result = V;
      goto Done;
    }
    Frame F = Frames.back();
    Frames.pop_back();
    --CallDepth;
    BaseL = F.Base;
    Regs.resize(BaseL + F.Ch->NumRegs);
    VM_SWITCH_CHUNK(F.Ch);
    VM_REFRAME();
    Pc = F.Pc;
    RF[F.Dst] = V;
    VM_NEXT();
  }
  VM_CASE(IsUniqueReuseJmp) {
    ++R.Rc.FusedOps;
    ++R.Rc.FusedRcOps;
    if (Sink)
      Sink->setSite(Sites[Pc - 1], "is-unique", Sites[Pc - 1]->loc());
    ++R.Rc.IsUniques;
    Value V = RF[I.C];
    if (H.isUnique(V)) {
      RF[I.B] = Value::makeToken(V.Ref); // the fused ReuseAddr
      Pc = I.D;                          // the fused unique-path Jump
    } else {
      Pc = I.E;
    }
    VM_NEXT();
  }

#if !PERCEUS_VM_COMPUTED_GOTO
  }
  VM_TRAP("corrupt opcode", TrapKind::RuntimeError);
#endif

Done:
  R.Steps = Steps;
  return;
Exit:
  R.Steps = Steps;
  return;

#undef VM_CASE
#undef VM_NEXT
#undef VM_TRAP
#undef VM_FUEL_CHECK
#undef VM_REFRAME
#undef VM_SWITCH_CHUNK
}

void VM::enumerateRoots(const std::function<void(Value)> &Fn) const {
  for (const Value &V : Regs)
    Fn(V);
  Fn(Result);
}
