//===- bytecode/VM.h - Register bytecode interpreter ------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode execution engine: a register-machine interpreter over
/// bytecode/Bytecode.h chunks, dispatching with computed goto where the
/// compiler supports it (GCC/Clang) and a portable switch otherwise
/// (forced with -DPERCEUS_VM_FORCE_SWITCH for testing the fallback).
///
/// The VM implements the same Engine interface as the CEK machine and is
/// observably identical to it (see the parity contract in Bytecode.h):
/// same heap-operation sequence, same telemetry sites, same trap
/// messages, same clean-unwind guarantee. Call frames overlap Lua-style
/// in one register stack — a call's operand window becomes the callee's
/// parameter registers, so argument binding is free — and tail calls are
/// resolved statically by the compiler and reuse the frame in place.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BYTECODE_VM_H
#define PERCEUS_BYTECODE_VM_H

#include "bytecode/Bytecode.h"
#include "eval/Engine.h"
#include "runtime/Heap.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <functional>
#include <string>
#include <vector>

namespace perceus {

/// The flat register stack backing all frames: a drop-in for
/// std::vector<Value> whose size changes stay inline. Frames grow and
/// shrink on every call and return, and libstdc++'s out-of-line
/// default-append path showed up at ~5% of VM time on the Figure 9 set.
/// Value is trivially copyable, so reframing is a size update plus a
/// unit-fill of the fresh slots; only capacity growth leaves the fast
/// path.
class RegStack {
public:
  Value *data() { return Mem.get(); }
  const Value *begin() const { return Mem.get(); }
  const Value *end() const { return Mem.get() + Sz; }
  size_t size() const { return Sz; }
  Value &operator[](size_t I) { return Mem[I]; }
  void clear() { Sz = 0; }

  void assign(const Value *First, const Value *Last) {
    size_t N = static_cast<size_t>(Last - First);
    if (N > Cap)
      grow(N);
    std::copy(First, Last, Mem.get());
    Sz = N;
  }
  void assign(size_t N, Value V) {
    if (N > Cap)
      grow(N);
    std::fill(Mem.get(), Mem.get() + N, V);
    Sz = N;
  }

  /// Sets the stack to \p N slots with slots [From, N) unit-initialized
  /// — the combined frame-resize + argument-window-clear every call
  /// executes. \p From never exceeds \p N (arguments fit the frame).
  void reframe(size_t N, size_t From) {
    if (N > Cap)
      grow(N);
    Value *D = Mem.get();
    for (size_t I = From; I < N; ++I)
      D[I] = Value::unit();
    Sz = N;
  }

  /// vector::resize semantics: growth unit-initializes, shrink truncates.
  void resize(size_t N) { reframe(N, Sz < N ? Sz : N); }

private:
  void grow(size_t N);

  std::unique_ptr<Value[]> Mem;
  size_t Sz = 0, Cap = 0;
};

/// Executes compiled programs; see the file comment. One VM per thread:
/// the CompiledProgram is immutable and shareable, the VM is not.
class VM : public Engine {
public:
  /// \p CP must outlive the VM and have been compiled from the program
  /// whose cells \p H manages.
  VM(const CompiledProgram &CP, Heap &H) : CP(CP), H(H) {}

  RunResult run(FuncId F, std::vector<Value> Args) override;

  /// Fuel is measured in bytecode instructions here (the VM's dispatch
  /// granularity), not expression nodes.
  void setStepLimit(uint64_t Limit) override { StepLimit = Limit; }

  void setCallDepthLimit(uint64_t Limit) override { CallDepthLimit = Limit; }

  /// Wall-clock budget per run (0 = none); armed at run() entry and
  /// checked every DeadlineCheckInterval instructions.
  void setDeadline(uint64_t Ms) override { DeadlineMs = Ms; }

  /// Enumerates every register of every live frame, plus the pending
  /// result.
  void enumerateRoots(const std::function<void(Value)> &Fn) const override;

  void setResultInspector(std::function<void(Value)> Fn) override {
    ResultInspector = std::move(Fn);
  }

  Heap &heap() override { return H; }

private:
  /// A suspended caller: where to resume and where the callee's value
  /// goes.
  struct Frame {
    const Chunk *Ch;
    uint32_t Pc;   ///< resume pc
    uint32_t Base; ///< the caller frame's first register
    uint32_t Dst;  ///< caller register receiving the return value
  };

  void execute(const Chunk *Entry, RunResult &R);
  void applyClosure(const Chunk *T, Cell *Clo, const Expr *CallSite,
                    Value *RF);
  void trap(std::string Msg, TrapKind Kind = TrapKind::RuntimeError);
  void unwind();

  const CompiledProgram &CP;
  Heap &H;

  RegStack Regs; ///< one overlapped register stack, all frames
  std::vector<Frame> Frames;
  Value Result;

  RunResult *Run = nullptr;
  StatsSink *Sink = nullptr; // cached from H.statsSink() at run() entry
  uint64_t StepLimit = 0;
  uint64_t CallDepthLimit = 0;
  uint64_t CallDepth = 0; // live non-tail frames
  uint64_t DeadlineMs = 0;
  std::chrono::steady_clock::time_point DeadlineAt{};
  bool Trapped = false;
  /// True while the current run executes the pre-peephole chunk tables.
  /// Set at run() entry when the program is peepholed but an entry
  /// argument is a heap reference (e.g. a thread-shared segment), which
  /// voids the immediacy analysis's whole-program assumptions — see
  /// CompiledProgram::Peepholed.
  bool UseRawChunks = false;
  std::function<void(Value)> ResultInspector;
};

} // namespace perceus

#endif // PERCEUS_BYTECODE_VM_H
