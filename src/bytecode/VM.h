//===- bytecode/VM.h - Register bytecode interpreter ------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode execution engine: a register-machine interpreter over
/// bytecode/Bytecode.h chunks, dispatching with computed goto where the
/// compiler supports it (GCC/Clang) and a portable switch otherwise
/// (forced with -DPERCEUS_VM_FORCE_SWITCH for testing the fallback).
///
/// The VM implements the same Engine interface as the CEK machine and is
/// observably identical to it (see the parity contract in Bytecode.h):
/// same heap-operation sequence, same telemetry sites, same trap
/// messages, same clean-unwind guarantee. Call frames overlap Lua-style
/// in one register stack — a call's operand window becomes the callee's
/// parameter registers, so argument binding is free — and tail calls are
/// resolved statically by the compiler and reuse the frame in place.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BYTECODE_VM_H
#define PERCEUS_BYTECODE_VM_H

#include "bytecode/Bytecode.h"
#include "eval/Engine.h"
#include "runtime/Heap.h"

#include <chrono>
#include <functional>
#include <string>
#include <vector>

namespace perceus {

/// Executes compiled programs; see the file comment. One VM per thread:
/// the CompiledProgram is immutable and shareable, the VM is not.
class VM : public Engine {
public:
  /// \p CP must outlive the VM and have been compiled from the program
  /// whose cells \p H manages.
  VM(const CompiledProgram &CP, Heap &H) : CP(CP), H(H) {}

  RunResult run(FuncId F, std::vector<Value> Args) override;

  /// Fuel is measured in bytecode instructions here (the VM's dispatch
  /// granularity), not expression nodes.
  void setStepLimit(uint64_t Limit) override { StepLimit = Limit; }

  void setCallDepthLimit(uint64_t Limit) override { CallDepthLimit = Limit; }

  /// Wall-clock budget per run (0 = none); armed at run() entry and
  /// checked every DeadlineCheckInterval instructions.
  void setDeadline(uint64_t Ms) override { DeadlineMs = Ms; }

  /// Enumerates every register of every live frame, plus the pending
  /// result.
  void enumerateRoots(const std::function<void(Value)> &Fn) const override;

  void setResultInspector(std::function<void(Value)> Fn) override {
    ResultInspector = std::move(Fn);
  }

  Heap &heap() override { return H; }

private:
  /// A suspended caller: where to resume and where the callee's value
  /// goes.
  struct Frame {
    const Chunk *Ch;
    uint32_t Pc;   ///< resume pc
    uint32_t Base; ///< the caller frame's first register
    uint32_t Dst;  ///< caller register receiving the return value
  };

  void execute(const Chunk *Entry, RunResult &R);
  void applyClosure(const Chunk *T, Cell *Clo, const Expr *CallSite,
                    Value *RF);
  void trap(std::string Msg, TrapKind Kind = TrapKind::RuntimeError);
  void unwind();

  const CompiledProgram &CP;
  Heap &H;

  std::vector<Value> Regs; ///< one overlapped register stack, all frames
  std::vector<Frame> Frames;
  Value Result;

  RunResult *Run = nullptr;
  StatsSink *Sink = nullptr; // cached from H.statsSink() at run() entry
  uint64_t StepLimit = 0;
  uint64_t CallDepthLimit = 0;
  uint64_t CallDepth = 0; // live non-tail frames
  uint64_t DeadlineMs = 0;
  std::chrono::steady_clock::time_point DeadlineAt{};
  bool Trapped = false;
  std::function<void(Value)> ResultInspector;
};

} // namespace perceus

#endif // PERCEUS_BYTECODE_VM_H
