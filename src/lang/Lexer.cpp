//===- lang/Lexer.cpp - Surface language lexer ------------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>

using namespace perceus;

const char *perceus::tokKindName(TokKind K) {
  switch (K) {
  case TokKind::Eof:
    return "end of input";
  case TokKind::Ident:
    return "identifier";
  case TokKind::CtorIdent:
    return "constructor name";
  case TokKind::IntLit:
    return "integer literal";
  case TokKind::KwFun:
    return "'fun'";
  case TokKind::KwType:
    return "'type'";
  case TokKind::KwVal:
    return "'val'";
  case TokKind::KwMatch:
    return "'match'";
  case TokKind::KwIf:
    return "'if'";
  case TokKind::KwThen:
    return "'then'";
  case TokKind::KwElif:
    return "'elif'";
  case TokKind::KwElse:
    return "'else'";
  case TokKind::KwFn:
    return "'fn'";
  case TokKind::KwTrue:
    return "'True'";
  case TokKind::KwFalse:
    return "'False'";
  case TokKind::LParen:
    return "'('";
  case TokKind::RParen:
    return "')'";
  case TokKind::LBrace:
    return "'{'";
  case TokKind::RBrace:
    return "'}'";
  case TokKind::Comma:
    return "','";
  case TokKind::Semi:
    return "';'";
  case TokKind::Arrow:
    return "'->'";
  case TokKind::Assign:
    return "'='";
  case TokKind::Underscore:
    return "'_'";
  case TokKind::Plus:
    return "'+'";
  case TokKind::Minus:
    return "'-'";
  case TokKind::Star:
    return "'*'";
  case TokKind::Slash:
    return "'/'";
  case TokKind::Percent:
    return "'%'";
  case TokKind::Lt:
    return "'<'";
  case TokKind::Le:
    return "'<='";
  case TokKind::Gt:
    return "'>'";
  case TokKind::Ge:
    return "'>='";
  case TokKind::EqEq:
    return "'=='";
  case TokKind::NotEq:
    return "'!='";
  case TokKind::Bang:
    return "'!'";
  case TokKind::AndAnd:
    return "'&&'";
  case TokKind::OrOr:
    return "'||'";
  }
  return "?";
}

namespace {

class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Src(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Toks;
    for (;;) {
      skipTrivia();
      Token T = next();
      Toks.push_back(T);
      if (T.Kind == TokKind::Eof)
        break;
    }
    return Toks;
  }

private:
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  SourceLoc here() const { return {Line, Col}; }

  void skipTrivia() {
    for (;;) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (Pos < Src.size() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = here();
        advance();
        advance();
        unsigned Depth = 1;
        while (Pos < Src.size() && Depth != 0) {
          if (peek() == '/' && peek(1) == '*') {
            advance();
            advance();
            ++Depth;
          } else if (peek() == '*' && peek(1) == '/') {
            advance();
            advance();
            --Depth;
          } else {
            advance();
          }
        }
        if (Depth != 0)
          Diags.error(Start, "unterminated block comment");
        continue;
      }
      return;
    }
  }

  static bool isIdentStart(char C) { return std::isalpha(uint8_t(C)) || C == '_'; }
  static bool isIdentCont(char C) {
    return std::isalnum(uint8_t(C)) || C == '_' || C == '\'';
  }

  Token make(TokKind K, SourceLoc Loc, size_t Start) {
    Token T;
    T.Kind = K;
    T.Loc = Loc;
    T.Text = Src.substr(Start, Pos - Start);
    return T;
  }

  Token next() {
    SourceLoc Loc = here();
    size_t Start = Pos;
    if (Pos >= Src.size())
      return make(TokKind::Eof, Loc, Start);

    char C = advance();

    if (std::isdigit(uint8_t(C))) {
      int64_t V = C - '0';
      while (std::isdigit(uint8_t(peek())))
        V = V * 10 + (advance() - '0');
      Token T = make(TokKind::IntLit, Loc, Start);
      T.IntValue = V;
      return T;
    }

    if (isIdentStart(C)) {
      // Identifiers may contain single dashes between alphanumerics
      // ("bal-left", "is-red"), as in the paper's Koka programs.
      for (;;) {
        if (isIdentCont(peek())) {
          advance();
          continue;
        }
        if (peek() == '-' && isIdentStart(peek(1))) {
          advance();
          advance();
          continue;
        }
        break;
      }
      std::string_view Text = Src.substr(Start, Pos - Start);
      if (Text == "_")
        return make(TokKind::Underscore, Loc, Start);
      if (Text == "fun")
        return make(TokKind::KwFun, Loc, Start);
      if (Text == "type")
        return make(TokKind::KwType, Loc, Start);
      if (Text == "val")
        return make(TokKind::KwVal, Loc, Start);
      if (Text == "match")
        return make(TokKind::KwMatch, Loc, Start);
      if (Text == "if")
        return make(TokKind::KwIf, Loc, Start);
      if (Text == "then")
        return make(TokKind::KwThen, Loc, Start);
      if (Text == "elif")
        return make(TokKind::KwElif, Loc, Start);
      if (Text == "else")
        return make(TokKind::KwElse, Loc, Start);
      if (Text == "fn")
        return make(TokKind::KwFn, Loc, Start);
      if (Text == "True")
        return make(TokKind::KwTrue, Loc, Start);
      if (Text == "False")
        return make(TokKind::KwFalse, Loc, Start);
      return make(std::isupper(uint8_t(Text[0])) ? TokKind::CtorIdent
                                                 : TokKind::Ident,
                  Loc, Start);
    }

    switch (C) {
    case '(':
      return make(TokKind::LParen, Loc, Start);
    case ')':
      return make(TokKind::RParen, Loc, Start);
    case '{':
      return make(TokKind::LBrace, Loc, Start);
    case '}':
      return make(TokKind::RBrace, Loc, Start);
    case ',':
      return make(TokKind::Comma, Loc, Start);
    case ';':
      return make(TokKind::Semi, Loc, Start);
    case '+':
      return make(TokKind::Plus, Loc, Start);
    case '*':
      return make(TokKind::Star, Loc, Start);
    case '/':
      return make(TokKind::Slash, Loc, Start);
    case '%':
      return make(TokKind::Percent, Loc, Start);
    case '-':
      if (peek() == '>') {
        advance();
        return make(TokKind::Arrow, Loc, Start);
      }
      return make(TokKind::Minus, Loc, Start);
    case '<':
      if (peek() == '=') {
        advance();
        return make(TokKind::Le, Loc, Start);
      }
      return make(TokKind::Lt, Loc, Start);
    case '>':
      if (peek() == '=') {
        advance();
        return make(TokKind::Ge, Loc, Start);
      }
      return make(TokKind::Gt, Loc, Start);
    case '=':
      if (peek() == '=') {
        advance();
        return make(TokKind::EqEq, Loc, Start);
      }
      return make(TokKind::Assign, Loc, Start);
    case '!':
      if (peek() == '=') {
        advance();
        return make(TokKind::NotEq, Loc, Start);
      }
      return make(TokKind::Bang, Loc, Start);
    case '&':
      if (peek() == '&') {
        advance();
        return make(TokKind::AndAnd, Loc, Start);
      }
      break;
    case '|':
      if (peek() == '|') {
        advance();
        return make(TokKind::OrOr, Loc, Start);
      }
      break;
    default:
      break;
    }
    Diags.error(Loc, std::string("unexpected character '") + C + "'");
    return next();
  }

  std::string_view Src;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace

std::vector<Token> perceus::lex(std::string_view Source,
                                DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}
