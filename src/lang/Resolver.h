//===- lang/Resolver.h - Surface to core IR lowering ------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed surface module into the core IR:
///
///   * declares data types and (mutually recursive) functions,
///   * alpha-renames every binder to a program-unique symbol,
///   * compiles nested patterns into single-level matches
///     (pattern-matrix specialization), naming binders after the
///     source patterns where possible,
///   * let-binds non-variable match scrutinees (the smatch rule of
///     Figure 8 requires variable scrutinees),
///   * desugars blocks, `if`/`elif`, `&&`/`||`, and operators,
///   * computes lambda capture lists (the `ys` annotation of Figure 4).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_LANG_RESOLVER_H
#define PERCEUS_LANG_RESOLVER_H

#include "ir/Program.h"
#include "lang/Ast.h"

namespace perceus {

/// Lowers \p M into \p P. Returns false (with diagnostics) on error.
bool resolveModule(const SModule &M, Program &P, DiagnosticEngine &Diags);

/// Convenience: parse + resolve in one step.
bool compileSource(std::string_view Source, Program &P,
                   DiagnosticEngine &Diags);

} // namespace perceus

#endif // PERCEUS_LANG_RESOLVER_H
