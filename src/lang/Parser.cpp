//===- lang/Parser.cpp - Surface language parser -----------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

#include <cassert>

using namespace perceus;

namespace {

class ParserImpl {
public:
  ParserImpl(std::vector<Token> Toks, DiagnosticEngine &Diags)
      : Toks(std::move(Toks)), Diags(Diags) {}

  SModule parse() {
    SModule M;
    while (!at(TokKind::Eof)) {
      if (at(TokKind::KwType)) {
        M.Types.push_back(parseTypeDecl());
      } else if (at(TokKind::KwFun)) {
        M.Funs.push_back(parseFunDecl());
      } else {
        error("expected 'type' or 'fun' at top level");
        recoverToDecl();
      }
    }
    return M;
  }

private:
  //===--- Token plumbing --------------------------------------------------//

  const Token &cur() const { return Toks[Pos]; }
  bool at(TokKind K) const { return cur().Kind == K; }
  bool atAhead(TokKind K, size_t N) const {
    return Pos + N < Toks.size() && Toks[Pos + N].Kind == K;
  }

  Token advance() { return Toks[Pos == Toks.size() - 1 ? Pos : Pos++]; }

  bool accept(TokKind K) {
    if (!at(K))
      return false;
    advance();
    return true;
  }

  Token expect(TokKind K, const char *Context) {
    if (at(K))
      return advance();
    error(std::string("expected ") + tokKindName(K) + " " + Context +
          ", found " + tokKindName(cur().Kind));
    return cur();
  }

  void error(std::string Msg) { Diags.error(cur().Loc, std::move(Msg)); }

  void recoverToDecl() {
    while (!at(TokKind::Eof) && !at(TokKind::KwFun) && !at(TokKind::KwType))
      advance();
  }

  SExprPtr makeExpr(SExpr::K Kind, SourceLoc Loc) {
    auto E = std::make_unique<SExpr>();
    E->Kind = Kind;
    E->Loc = Loc;
    return E;
  }

  //===--- Declarations ----------------------------------------------------//

  STypeDecl parseTypeDecl() {
    STypeDecl D;
    D.Loc = cur().Loc;
    expect(TokKind::KwType, "to begin a type declaration");
    // Type names are lowercase in the paper's programs ("type list"),
    // but uppercase is accepted too.
    if (at(TokKind::Ident) || at(TokKind::CtorIdent)) {
      D.Name = std::string(advance().Text);
    } else {
      error("expected a type name");
    }
    expect(TokKind::LBrace, "to begin the constructor list");
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      if (accept(TokKind::Semi))
        continue;
      if (!at(TokKind::CtorIdent)) {
        error("expected a constructor name");
        advance();
        continue;
      }
      SCtorDecl C;
      C.Loc = cur().Loc;
      C.Name = std::string(advance().Text);
      if (accept(TokKind::LParen)) {
        if (!at(TokKind::RParen)) {
          do {
            // Field entries are `name` or `name : type`; types are
            // accepted and ignored (the core language is untyped).
            Token F = expect(TokKind::Ident, "as a field name");
            C.Fields.push_back(std::string(F.Text));
            skipOptionalTypeAnnotation();
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "to close the field list");
      }
      D.Ctors.push_back(std::move(C));
    }
    expect(TokKind::RBrace, "to close the type declaration");
    return D;
  }

  /// Accepts and discards `: ident` / `: Ctor` style annotations.
  void skipOptionalTypeAnnotation() {
    // The lexer has no ':' token; annotations are not part of the core
    // grammar. Kept as a hook for future extension.
  }

  SFunDecl parseFunDecl() {
    SFunDecl D;
    D.Loc = cur().Loc;
    expect(TokKind::KwFun, "to begin a function");
    D.Name =
        std::string(expect(TokKind::Ident, "as the function name").Text);
    expect(TokKind::LParen, "to begin the parameter list");
    if (!at(TokKind::RParen)) {
      do {
        Token Pm = expect(TokKind::Ident, "as a parameter name");
        D.Params.push_back(std::string(Pm.Text));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "to close the parameter list");
    D.Body = parseBlock();
    return D;
  }

  //===--- Expressions -----------------------------------------------------//

  SExprPtr parseBlock() {
    SourceLoc Loc = cur().Loc;
    expect(TokKind::LBrace, "to begin a block");
    auto B = makeExpr(SExpr::K::Block, Loc);
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      if (accept(TokKind::Semi))
        continue;
      SStmt S;
      S.Loc = cur().Loc;
      if (accept(TokKind::KwVal)) {
        S.IsVal = true;
        S.Name = std::string(
            expect(TokKind::Ident, "as the binding name").Text);
        expect(TokKind::Assign, "after the binding name");
        S.E = parseExpr();
      } else {
        S.E = parseExpr();
      }
      B->Stmts.push_back(std::move(S));
    }
    expect(TokKind::RBrace, "to close the block");
    if (B->Stmts.empty()) {
      SStmt S;
      S.Loc = Loc;
      S.E = makeExpr(SExpr::K::Unit, Loc);
      B->Stmts.push_back(std::move(S));
    }
    return B;
  }

  SExprPtr parseExpr() {
    if (at(TokKind::KwIf))
      return parseIf();
    if (at(TokKind::KwMatch))
      return parseMatch();
    if (at(TokKind::KwFn))
      return parseLambda();
    return parseBinary(0);
  }

  SExprPtr parseIf() {
    SourceLoc Loc = cur().Loc;
    expect(TokKind::KwIf, "to begin an if");
    auto E = makeExpr(SExpr::K::If, Loc);
    E->A = parseExpr();
    if (at(TokKind::LBrace)) {
      E->B = parseBlock();
    } else {
      expect(TokKind::KwThen, "after the if condition");
      E->B = parseExpr();
    }
    if (accept(TokKind::KwElif)) {
      // Desugar `elif` to a nested if by rewinding one token is awkward;
      // instead build the nested if directly.
      --Pos; // step back onto 'elif'
      Toks[Pos].Kind = TokKind::KwIf;
      E->C = parseIf();
      return E;
    }
    if (accept(TokKind::KwElse)) {
      E->C = at(TokKind::LBrace) ? parseBlock() : parseExpr();
    } else {
      E->C = makeExpr(SExpr::K::Unit, Loc);
    }
    return E;
  }

  SExprPtr parseMatch() {
    SourceLoc Loc = cur().Loc;
    expect(TokKind::KwMatch, "to begin a match");
    auto E = makeExpr(SExpr::K::Match, Loc);
    // Scrutinee: parenthesized or bare expression.
    if (accept(TokKind::LParen)) {
      E->A = parseExpr();
      expect(TokKind::RParen, "to close the scrutinee");
    } else {
      E->A = parseBinary(0);
    }
    expect(TokKind::LBrace, "to begin the match arms");
    while (!at(TokKind::RBrace) && !at(TokKind::Eof)) {
      if (accept(TokKind::Semi) || accept(TokKind::Comma))
        continue;
      SMatchArm Arm;
      Arm.Pat = parsePattern();
      expect(TokKind::Arrow, "after the pattern");
      Arm.Body = at(TokKind::LBrace) ? parseBlock() : parseExpr();
      E->Arms.push_back(std::move(Arm));
    }
    expect(TokKind::RBrace, "to close the match");
    if (E->Arms.empty())
      error("match must have at least one arm");
    return E;
  }

  SPatPtr parsePattern() {
    auto P = std::make_unique<SPat>();
    P->Loc = cur().Loc;
    switch (cur().Kind) {
    case TokKind::CtorIdent: {
      P->Kind = SPat::K::Ctor;
      P->Name = std::string(advance().Text);
      if (accept(TokKind::LParen)) {
        if (!at(TokKind::RParen)) {
          do {
            P->Sub.push_back(parsePattern());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "to close the pattern");
      }
      return P;
    }
    case TokKind::Ident:
      P->Kind = SPat::K::Var;
      P->Name = std::string(advance().Text);
      return P;
    case TokKind::Underscore:
      P->Kind = SPat::K::Wild;
      advance();
      return P;
    case TokKind::IntLit:
      P->Kind = SPat::K::Int;
      P->Int = advance().IntValue;
      return P;
    case TokKind::Minus: {
      advance();
      P->Kind = SPat::K::Int;
      P->Int = -expect(TokKind::IntLit, "after '-' in a pattern").IntValue;
      return P;
    }
    case TokKind::KwTrue:
      P->Kind = SPat::K::Bool;
      P->Int = 1;
      advance();
      return P;
    case TokKind::KwFalse:
      P->Kind = SPat::K::Bool;
      P->Int = 0;
      advance();
      return P;
    default:
      error(std::string("expected a pattern, found ") +
            tokKindName(cur().Kind));
      advance();
      return P;
    }
  }

  /// Operator precedence, higher binds tighter. Returns -1 for
  /// non-operators.
  static int precedenceOf(TokKind K) {
    switch (K) {
    case TokKind::OrOr:
      return 1;
    case TokKind::AndAnd:
      return 2;
    case TokKind::EqEq:
    case TokKind::NotEq:
      return 3;
    case TokKind::Lt:
    case TokKind::Le:
    case TokKind::Gt:
    case TokKind::Ge:
      return 4;
    case TokKind::Plus:
    case TokKind::Minus:
      return 5;
    case TokKind::Star:
    case TokKind::Slash:
    case TokKind::Percent:
      return 6;
    default:
      return -1;
    }
  }

  SExprPtr parseBinary(int MinPrec) {
    SExprPtr Lhs = parseUnary();
    for (;;) {
      int Prec = precedenceOf(cur().Kind);
      if (Prec < 0 || Prec < MinPrec)
        return Lhs;
      Token Op = advance();
      SExprPtr Rhs = parseBinary(Prec + 1);
      auto E = makeExpr(SExpr::K::Binop, Op.Loc);
      E->Op = Op.Kind;
      E->A = std::move(Lhs);
      E->B = std::move(Rhs);
      Lhs = std::move(E);
    }
  }

  SExprPtr parseUnary() {
    if (at(TokKind::Bang) || at(TokKind::Minus)) {
      Token Op = advance();
      auto E = makeExpr(SExpr::K::Unop, Op.Loc);
      E->Op = Op.Kind;
      E->A = parseUnary();
      return E;
    }
    return parsePostfix();
  }

  SExprPtr parsePostfix() {
    SExprPtr E = parsePrimary();
    while (at(TokKind::LParen)) {
      SourceLoc Loc = cur().Loc;
      advance();
      auto Call = makeExpr(SExpr::K::Call, Loc);
      Call->A = std::move(E);
      if (!at(TokKind::RParen)) {
        do {
          Call->Args.push_back(parseExpr());
        } while (accept(TokKind::Comma));
      }
      expect(TokKind::RParen, "to close the argument list");
      E = std::move(Call);
    }
    return E;
  }

  SExprPtr parsePrimary() {
    SourceLoc Loc = cur().Loc;
    switch (cur().Kind) {
    case TokKind::IntLit: {
      auto E = makeExpr(SExpr::K::IntLit, Loc);
      E->Int = advance().IntValue;
      return E;
    }
    case TokKind::KwTrue: {
      advance();
      auto E = makeExpr(SExpr::K::BoolLit, Loc);
      E->Int = 1;
      return E;
    }
    case TokKind::KwFalse: {
      advance();
      auto E = makeExpr(SExpr::K::BoolLit, Loc);
      E->Int = 0;
      return E;
    }
    case TokKind::Ident: {
      auto E = makeExpr(SExpr::K::Var, Loc);
      E->Name = std::string(advance().Text);
      return E;
    }
    case TokKind::CtorIdent: {
      auto E = makeExpr(SExpr::K::Ctor, Loc);
      E->Name = std::string(advance().Text);
      if (at(TokKind::LParen)) {
        advance();
        if (!at(TokKind::RParen)) {
          do {
            E->Args.push_back(parseExpr());
          } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "to close the constructor arguments");
      }
      return E;
    }
    case TokKind::LParen: {
      advance();
      if (accept(TokKind::RParen))
        return makeExpr(SExpr::K::Unit, Loc);
      SExprPtr E = parseExpr();
      expect(TokKind::RParen, "to close the parenthesized expression");
      return E;
    }
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwMatch:
      return parseMatch();
    case TokKind::KwFn:
      return parseLambda();
    default:
      error(std::string("expected an expression, found ") +
            tokKindName(cur().Kind));
      advance();
      return makeExpr(SExpr::K::Unit, Loc);
    }
  }

  SExprPtr parseLambda() {
    SourceLoc Loc = cur().Loc;
    expect(TokKind::KwFn, "to begin a lambda");
    auto E = makeExpr(SExpr::K::Lambda, Loc);
    expect(TokKind::LParen, "to begin the lambda parameters");
    if (!at(TokKind::RParen)) {
      do {
        Token Pm = expect(TokKind::Ident, "as a lambda parameter");
        E->Params.push_back(std::string(Pm.Text));
      } while (accept(TokKind::Comma));
    }
    expect(TokKind::RParen, "to close the lambda parameters");
    E->A = at(TokKind::LBrace) ? parseBlock() : parseExpr();
    return E;
  }

  std::vector<Token> Toks;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace

SModule perceus::parseModule(std::string_view Source,
                             DiagnosticEngine &Diags) {
  std::vector<Token> Toks = lex(Source, Diags);
  return ParserImpl(std::move(Toks), Diags).parse();
}
