//===- lang/Parser.h - Surface language parser ------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the surface language. On error it reports
/// to the DiagnosticEngine and attempts to recover at declaration
/// boundaries; callers must check `Diags.hasErrors()`.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_LANG_PARSER_H
#define PERCEUS_LANG_PARSER_H

#include "lang/Ast.h"

namespace perceus {

/// Parses \p Source into a module.
SModule parseModule(std::string_view Source, DiagnosticEngine &Diags);

} // namespace perceus

#endif // PERCEUS_LANG_PARSER_H
