//===- lang/Ast.h - Surface language syntax tree ----------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parse tree of the surface language. Deliberately separate from the
/// core IR: surface constructs (nested patterns, if-elif chains, operator
/// expressions, blocks) are lowered by the resolver.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_LANG_AST_H
#define PERCEUS_LANG_AST_H

#include "lang/Lexer.h"

#include <memory>
#include <string>
#include <vector>

namespace perceus {

struct SExpr;
using SExprPtr = std::unique_ptr<SExpr>;

/// A surface pattern (possibly nested).
struct SPat {
  enum class K { Ctor, Var, Wild, Int, Bool } Kind = K::Wild;
  SourceLoc Loc;
  std::string Name;                       // Ctor / Var
  int64_t Int = 0;                        // Int / Bool payload
  std::vector<std::unique_ptr<SPat>> Sub; // Ctor subpatterns
};
using SPatPtr = std::unique_ptr<SPat>;

/// One statement of a block: either `val name = expr` or a bare expr.
struct SStmt {
  bool IsVal = false;
  std::string Name; // for val
  SourceLoc Loc;
  SExprPtr E;
};

/// One arm of a surface match.
struct SMatchArm {
  SPatPtr Pat;
  SExprPtr Body;
};

/// A surface expression.
struct SExpr {
  enum class K {
    IntLit,
    BoolLit,
    Unit,
    Var,    // lowercase identifier (variable or function)
    Ctor,   // constructor application (possibly nullary)
    Call,   // A(Args...)
    Binop,  // A Op B
    Unop,   // Op A
    If,     // A ? B : C
    Match,  // match A { Arms }
    Lambda, // fn(Params) A
    Block,  // { Stmts }
  } Kind = K::Unit;

  SourceLoc Loc;
  int64_t Int = 0;       // IntLit / BoolLit
  std::string Name;      // Var / Ctor
  TokKind Op = TokKind::Eof; // Binop / Unop
  SExprPtr A, B, C;
  std::vector<SExprPtr> Args;      // Call / Ctor arguments
  std::vector<std::string> Params; // Lambda
  std::vector<SStmt> Stmts;        // Block
  std::vector<SMatchArm> Arms;     // Match
};

/// A constructor declaration inside a type declaration.
struct SCtorDecl {
  std::string Name;
  std::vector<std::string> Fields; // field names (may repeat "_")
  SourceLoc Loc;
};

/// `type name { ctors }`.
struct STypeDecl {
  std::string Name;
  std::vector<SCtorDecl> Ctors;
  SourceLoc Loc;
};

/// `fun name(params) { body }`.
struct SFunDecl {
  std::string Name;
  std::vector<std::string> Params;
  SExprPtr Body;
  SourceLoc Loc;
};

/// A parsed source file.
struct SModule {
  std::vector<STypeDecl> Types;
  std::vector<SFunDecl> Funs;
};

} // namespace perceus

#endif // PERCEUS_LANG_AST_H
