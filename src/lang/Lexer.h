//===- lang/Lexer.h - Surface language lexer --------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the Koka-like surface language. Identifiers starting with
/// an uppercase letter are constructor names; lowercase identifiers are
/// variables and functions. Supports `//` line and `/* */` block comments
/// and dashes inside identifiers (`bal-left`, as in the paper's programs).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_LANG_LEXER_H
#define PERCEUS_LANG_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace perceus {

/// Token kinds of the surface language.
enum class TokKind : uint8_t {
  Eof,
  Ident,      // lowercase identifier
  CtorIdent,  // Uppercase identifier
  IntLit,
  // Keywords.
  KwFun,
  KwType,
  KwVal,
  KwMatch,
  KwIf,
  KwThen,
  KwElif,
  KwElse,
  KwFn,
  KwTrue,
  KwFalse,
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  Comma,
  Semi,
  Arrow,    // ->
  Assign,   // =
  Underscore,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  Bang,
  AndAnd,
  OrOr,
};

/// One lexed token.
struct Token {
  TokKind Kind = TokKind::Eof;
  SourceLoc Loc;
  std::string_view Text; // points into the source buffer
  int64_t IntValue = 0;  // for IntLit
};

/// Returns a printable name for \p K (used in parse errors).
const char *tokKindName(TokKind K);

/// Tokenizes \p Source. Errors are reported to \p Diags; lexing continues
/// past errors where possible.
std::vector<Token> lex(std::string_view Source, DiagnosticEngine &Diags);

} // namespace perceus

#endif // PERCEUS_LANG_LEXER_H
