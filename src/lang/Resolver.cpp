//===- lang/Resolver.cpp - Surface to core IR lowering ----------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "lang/Resolver.h"

#include "analysis/FreeVars.h"
#include "ir/Builder.h"
#include "lang/Parser.h"
#include "support/Casting.h"

#include <unordered_map>
#include <unordered_set>

using namespace perceus;

namespace {

class ResolverImpl {
public:
  ResolverImpl(const SModule &M, Program &P, DiagnosticEngine &Diags)
      : M(M), P(P), B(P), Diags(Diags) {}

  bool run() {
    declareTypes();
    declareFunctions();
    if (Diags.hasErrors())
      return false;
    for (const SFunDecl &F : M.Funs)
      resolveFunction(F);
    return !Diags.hasErrors();
  }

private:
  //===--- Declarations ----------------------------------------------------//

  void declareTypes() {
    for (const STypeDecl &T : M.Types) {
      Symbol TypeName = P.symbols().intern(T.Name);
      if (P.findData(TypeName) != InvalidId) {
        Diags.error(T.Loc, "duplicate type '" + T.Name + "'");
        continue;
      }
      uint32_t DataId = P.addData(TypeName);
      for (const SCtorDecl &C : T.Ctors) {
        Symbol CtorName = P.symbols().intern(C.Name);
        if (P.findCtor(CtorName) != InvalidId) {
          Diags.error(C.Loc, "duplicate constructor '" + C.Name + "'");
          continue;
        }
        std::vector<Symbol> Fields;
        for (const std::string &F : C.Fields)
          Fields.push_back(P.symbols().intern(F));
        P.addCtor(DataId, CtorName, static_cast<uint32_t>(C.Fields.size()),
                  std::move(Fields));
      }
    }
  }

  void declareFunctions() {
    for (const SFunDecl &F : M.Funs) {
      Symbol Name = P.symbols().intern(F.Name);
      if (P.findFunction(Name) != InvalidId) {
        Diags.error(F.Loc, "duplicate function '" + F.Name + "'");
        continue;
      }
      std::vector<Symbol> Params;
      std::unordered_set<std::string> Seen;
      for (const std::string &Pm : F.Params) {
        if (!Seen.insert(Pm).second)
          Diags.error(F.Loc, "duplicate parameter '" + Pm + "'");
        Params.push_back(makeBinder(Pm));
      }
      P.addFunction(Name, std::move(Params));
    }
  }

  //===--- Scope management -------------------------------------------------//

  /// A binder symbol: the bare name on first use, a fresh dotted name on
  /// any later use (keeping program-wide binder uniqueness while keeping
  /// the common case readable, e.g. the Figure 1 goldens).
  Symbol makeBinder(const std::string &Name) {
    if (UsedBinderNames.insert(Name).second)
      return P.symbols().intern(Name);
    return P.symbols().fresh(Name);
  }

  struct ScopeEntry {
    std::string Name;
    Symbol Sym;
  };

  void pushScope(const std::string &Name, Symbol Sym) {
    Scope.push_back({Name, Sym});
  }
  void popScope(size_t Mark) { Scope.resize(Mark); }
  size_t scopeMark() const { return Scope.size(); }

  Symbol lookupLocal(const std::string &Name) const {
    for (auto It = Scope.rbegin(); It != Scope.rend(); ++It)
      if (It->Name == Name)
        return It->Sym;
    return Symbol();
  }

  //===--- Functions --------------------------------------------------------//

  void resolveFunction(const SFunDecl &F) {
    FuncId Id = P.findFunction(P.symbols().intern(F.Name));
    if (Id == InvalidId)
      return; // duplicate reported earlier
    const FunctionDecl &Fn = P.function(Id);
    size_t Mark = scopeMark();
    for (size_t I = 0; I != F.Params.size(); ++I)
      pushScope(F.Params[I], Fn.Params[I]);
    const Expr *Body = resolveExpr(*F.Body);
    popScope(Mark);
    P.setBody(Id, Body);
  }

  //===--- Expressions ------------------------------------------------------//

  const Expr *resolveExpr(const SExpr &E) {
    switch (E.Kind) {
    case SExpr::K::IntLit:
      return B.litInt(E.Int, E.Loc);
    case SExpr::K::BoolLit:
      return B.litBool(E.Int != 0, E.Loc);
    case SExpr::K::Unit:
      return B.unit(E.Loc);
    case SExpr::K::Var: {
      if (Symbol S = lookupLocal(E.Name))
        return B.var(S, E.Loc);
      FuncId F = P.findFunction(P.symbols().intern(E.Name));
      if (F != InvalidId)
        return B.global(F, E.Loc);
      Diags.error(E.Loc, "unknown variable '" + E.Name + "'");
      return B.unit(E.Loc);
    }
    case SExpr::K::Ctor:
      return resolveCtorApp(E);
    case SExpr::K::Call:
      return resolveCall(E);
    case SExpr::K::Binop:
      return resolveBinop(E);
    case SExpr::K::Unop:
      return resolveUnop(E);
    case SExpr::K::If: {
      const Expr *Cond = resolveExpr(*E.A);
      const Expr *Then = resolveExpr(*E.B);
      const Expr *Else = resolveExpr(*E.C);
      return B.iff(Cond, Then, Else, E.Loc);
    }
    case SExpr::K::Match:
      return resolveMatch(E);
    case SExpr::K::Lambda:
      return resolveLambda(E);
    case SExpr::K::Block:
      return resolveBlock(E, 0);
    }
    return B.unit(E.Loc);
  }

  const Expr *resolveBlock(const SExpr &E, size_t Index) {
    assert(Index < E.Stmts.size());
    const SStmt &S = E.Stmts[Index];
    bool Last = Index + 1 == E.Stmts.size();
    if (S.IsVal) {
      const Expr *Bound = resolveExpr(*S.E);
      Symbol X = makeBinder(S.Name);
      size_t Mark = scopeMark();
      pushScope(S.Name, X);
      const Expr *Body = Last ? B.unit(S.Loc) : resolveBlock(E, Index + 1);
      popScope(Mark);
      return B.let(X, Bound, Body, S.Loc);
    }
    const Expr *First = resolveExpr(*S.E);
    if (Last)
      return First;
    return B.seq(First, resolveBlock(E, Index + 1), S.Loc);
  }

  const Expr *resolveCtorApp(const SExpr &E) {
    CtorId C = P.findCtor(P.symbols().intern(E.Name));
    if (C == InvalidId) {
      Diags.error(E.Loc, "unknown constructor '" + E.Name + "'");
      return B.unit(E.Loc);
    }
    const CtorDecl &D = P.ctor(C);
    if (E.Args.size() != D.Arity) {
      Diags.error(E.Loc, "constructor '" + E.Name + "' expects " +
                             std::to_string(D.Arity) + " argument(s), got " +
                             std::to_string(E.Args.size()));
      return B.unit(E.Loc);
    }
    std::vector<const Expr *> Args;
    for (const SExprPtr &A : E.Args)
      Args.push_back(resolveExpr(*A));
    return B.con(C, std::span<const Expr *const>(Args.data(), Args.size()),
                 Symbol(), E.Loc);
  }

  const Expr *resolveCall(const SExpr &E) {
    // Builtins take precedence unless shadowed by a local.
    if (E.A->Kind == SExpr::K::Var && !lookupLocal(E.A->Name)) {
      const std::string &Name = E.A->Name;
      if (Name == "println" || Name == "tshare" || Name == "abort" ||
          Name == "ref" || Name == "deref" || Name == "set-ref") {
        PrimOp Op = Name == "println"  ? PrimOp::PrintLn
                    : Name == "tshare" ? PrimOp::MarkShared
                    : Name == "ref"    ? PrimOp::RefNew
                    : Name == "deref"  ? PrimOp::RefGet
                    : Name == "set-ref" ? PrimOp::RefSet
                                        : PrimOp::Abort;
        unsigned Want = Name == "abort" ? 0 : (Name == "set-ref" ? 2 : 1);
        if (E.Args.size() != Want) {
          Diags.error(E.Loc, "'" + Name + "' expects " +
                                 std::to_string(Want) + " argument(s)");
          return B.unit(E.Loc);
        }
        std::vector<const Expr *> Args;
        for (const SExprPtr &A : E.Args)
          Args.push_back(resolveExpr(*A));
        return B.prim(Op,
                      std::span<const Expr *const>(Args.data(), Args.size()),
                      E.Loc);
      }
      FuncId F = P.findFunction(P.symbols().intern(Name));
      if (F != InvalidId &&
          P.function(F).Params.size() != E.Args.size()) {
        Diags.error(E.Loc, "function '" + Name + "' expects " +
                               std::to_string(P.function(F).Params.size()) +
                               " argument(s), got " +
                               std::to_string(E.Args.size()));
        return B.unit(E.Loc);
      }
    }
    const Expr *Fn = resolveExpr(*E.A);
    std::vector<const Expr *> Args;
    for (const SExprPtr &A : E.Args)
      Args.push_back(resolveExpr(*A));
    return B.app(Fn, std::span<const Expr *const>(Args.data(), Args.size()),
                 E.Loc);
  }

  const Expr *resolveBinop(const SExpr &E) {
    // Short-circuiting boolean operators become conditionals.
    if (E.Op == TokKind::AndAnd) {
      return B.iff(resolveExpr(*E.A), resolveExpr(*E.B), B.litBool(false),
                   E.Loc);
    }
    if (E.Op == TokKind::OrOr) {
      return B.iff(resolveExpr(*E.A), B.litBool(true), resolveExpr(*E.B),
                   E.Loc);
    }
    PrimOp Op;
    switch (E.Op) {
    case TokKind::Plus:
      Op = PrimOp::Add;
      break;
    case TokKind::Minus:
      Op = PrimOp::Sub;
      break;
    case TokKind::Star:
      Op = PrimOp::Mul;
      break;
    case TokKind::Slash:
      Op = PrimOp::Div;
      break;
    case TokKind::Percent:
      Op = PrimOp::Mod;
      break;
    case TokKind::Lt:
      Op = PrimOp::Lt;
      break;
    case TokKind::Le:
      Op = PrimOp::Le;
      break;
    case TokKind::Gt:
      Op = PrimOp::Gt;
      break;
    case TokKind::Ge:
      Op = PrimOp::Ge;
      break;
    case TokKind::EqEq:
      Op = PrimOp::EqInt;
      break;
    case TokKind::NotEq:
      Op = PrimOp::NeInt;
      break;
    default:
      Diags.error(E.Loc, "unsupported binary operator");
      return B.unit(E.Loc);
    }
    return B.prim(Op, {resolveExpr(*E.A), resolveExpr(*E.B)}, E.Loc);
  }

  const Expr *resolveUnop(const SExpr &E) {
    if (E.Op == TokKind::Bang)
      return B.prim(PrimOp::Not, {resolveExpr(*E.A)}, E.Loc);
    // Unary minus: fold into literals, otherwise negate.
    if (E.A->Kind == SExpr::K::IntLit)
      return B.litInt(-E.A->Int, E.Loc);
    return B.prim(PrimOp::Neg, {resolveExpr(*E.A)}, E.Loc);
  }

  const Expr *resolveLambda(const SExpr &E) {
    std::vector<Symbol> Params;
    size_t Mark = scopeMark();
    for (const std::string &Pm : E.Params) {
      Symbol S = makeBinder(Pm);
      Params.push_back(S);
      pushScope(Pm, S);
    }
    const Expr *Body = resolveExpr(*E.A);
    popScope(Mark);
    // Captures: free variables of the body minus the parameters
    // (Figure 4: lambda_ys x. e with ys = fv(lambda)).
    FreeVarAnalysis FV;
    VarSet Free = FV.freeVars(Body);
    for (Symbol Pm : Params)
      Free.erase(Pm);
    std::vector<Symbol> Captures(Free.begin(), Free.end());
    return B.lam(std::span<const Symbol>(Params.data(), Params.size()),
                 std::span<const Symbol>(Captures.data(), Captures.size()),
                 Body, E.Loc);
  }

  //===--- Pattern-matrix compilation ---------------------------------------//

  struct Row {
    std::vector<const SPat *> Pats; // parallel to the variable vector
    const SExpr *Body = nullptr;
    std::vector<ScopeEntry> Bindings; // accumulated var-pattern aliases
    SourceLoc Loc;
  };

  static bool isRefutable(const SPat *Pat) {
    return Pat->Kind == SPat::K::Ctor || Pat->Kind == SPat::K::Int ||
           Pat->Kind == SPat::K::Bool;
  }

  const SPat *wildPat() {
    static SPat Wild; // Kind defaults to Wild
    return &Wild;
  }

  const Expr *resolveMatch(const SExpr &E) {
    const Expr *Scrut = resolveExpr(*E.A);
    std::vector<Row> Rows;
    for (const SMatchArm &Arm : E.Arms) {
      Row R;
      R.Pats.push_back(Arm.Pat.get());
      R.Body = Arm.Body.get();
      R.Loc = Arm.Pat->Loc;
      Rows.push_back(std::move(R));
    }
    // The smatch rule needs a variable scrutinee; let-bind otherwise.
    if (const auto *V = dyn_cast<VarExpr>(Scrut))
      return compileMatch({V->name()}, std::move(Rows), E.Loc);
    Symbol Tmp = makeBinder("match-scrutinee");
    size_t Mark = scopeMark();
    pushScope("", Tmp); // unnamed: unreachable from source code
    const Expr *Inner = compileMatch({Tmp}, std::move(Rows), E.Loc);
    popScope(Mark);
    return B.let(Tmp, Scrut, Inner, E.Loc);
  }

  const Expr *compileMatch(std::vector<Symbol> Vars, std::vector<Row> Rows,
                           SourceLoc Loc) {
    if (Rows.empty())
      return B.prim(PrimOp::Abort, {}, Loc);

    // If the first row is irrefutable it wins: bind its variables and
    // resolve its body.
    Row &First = Rows.front();
    assert(First.Pats.size() == Vars.size() && "ragged pattern matrix");
    bool Irrefutable = true;
    for (const SPat *Pat : First.Pats)
      if (isRefutable(Pat)) {
        Irrefutable = false;
        break;
      }
    if (Irrefutable) {
      size_t Mark = scopeMark();
      for (const ScopeEntry &Bind : First.Bindings)
        pushScope(Bind.Name, Bind.Sym);
      for (size_t I = 0; I != Vars.size(); ++I)
        if (First.Pats[I]->Kind == SPat::K::Var)
          pushScope(First.Pats[I]->Name, Vars[I]);
      const Expr *Body = resolveExpr(*First.Body);
      popScope(Mark);
      return Body;
    }

    // Pick the leftmost column where the first row is refutable.
    size_t Col = 0;
    while (!isRefutable(First.Pats[Col]))
      ++Col;
    Symbol ScrutVar = Vars[Col];

    // Literal column?
    if (First.Pats[Col]->Kind == SPat::K::Int ||
        First.Pats[Col]->Kind == SPat::K::Bool)
      return compileLiteralColumn(Vars, Rows, Col, Loc);

    // Constructor column: determine the data type.
    CtorId FirstCtor =
        P.findCtor(P.symbols().intern(First.Pats[Col]->Name));
    if (FirstCtor == InvalidId) {
      Diags.error(First.Pats[Col]->Loc,
                  "unknown constructor '" + First.Pats[Col]->Name +
                      "' in pattern");
      return B.unit(Loc);
    }
    uint32_t DataId = P.ctor(FirstCtor).DataId;
    const DataDecl &Data = P.data(DataId);

    // Gather which constructors appear in this column, in data-decl order.
    std::vector<bool> Appears(Data.Ctors.size(), false);
    bool HasIrrefutableRow = false;
    for (Row &R : Rows) {
      const SPat *Pat = R.Pats[Col];
      if (Pat->Kind == SPat::K::Ctor) {
        CtorId C = P.findCtor(P.symbols().intern(Pat->Name));
        if (C == InvalidId || P.ctor(C).DataId != DataId) {
          Diags.error(Pat->Loc, "constructor '" + Pat->Name +
                                    "' does not belong to type '" +
                                    std::string(P.symbols().name(Data.Name)) +
                                    "'");
          return B.unit(Loc);
        }
        if (P.ctor(C).Arity != Pat->Sub.size()) {
          Diags.error(Pat->Loc,
                      "pattern arity mismatch for '" + Pat->Name + "'");
          return B.unit(Loc);
        }
        Appears[P.ctor(C).Tag] = true;
      } else if (Pat->Kind == SPat::K::Var || Pat->Kind == SPat::K::Wild) {
        HasIrrefutableRow = true;
      } else {
        Diags.error(Pat->Loc, "mixed literal and constructor patterns");
        return B.unit(Loc);
      }
    }

    bool AllCovered = true;
    for (size_t T = 0; T != Appears.size(); ++T)
      if (!Appears[T])
        AllCovered = false;

    std::vector<MatchArm> Arms;
    for (size_t T = 0; T != Data.Ctors.size(); ++T) {
      if (!Appears[T])
        continue;
      CtorId C = Data.Ctors[T];
      const CtorDecl &CD = P.ctor(C);

      // Name the fresh binders after the first matching row's variable
      // subpatterns (so `Cons(x, xx)` produces binders `x`, `xx`), falling
      // back to declared field names.
      std::vector<Symbol> Binders;
      const SPat *NamePat = nullptr;
      for (Row &R : Rows)
        if (R.Pats[Col]->Kind == SPat::K::Ctor &&
            P.findCtor(P.symbols().intern(R.Pats[Col]->Name)) == C) {
          NamePat = R.Pats[Col];
          break;
        }
      for (uint32_t I = 0; I != CD.Arity; ++I) {
        std::string BaseName;
        if (NamePat && NamePat->Sub[I]->Kind == SPat::K::Var)
          BaseName = NamePat->Sub[I]->Name;
        else if (I < CD.FieldNames.size() && CD.FieldNames[I].isValid())
          BaseName = std::string(P.symbols().name(CD.FieldNames[I]));
        else
          BaseName = "field";
        Binders.push_back(makeBinder(BaseName));
      }

      // Specialized submatrix.
      std::vector<Symbol> SubVars;
      SubVars.insert(SubVars.end(), Vars.begin(), Vars.begin() + Col);
      SubVars.insert(SubVars.end(), Binders.begin(), Binders.end());
      SubVars.insert(SubVars.end(), Vars.begin() + Col + 1, Vars.end());

      std::vector<Row> SubRows;
      for (Row &R : Rows) {
        const SPat *Pat = R.Pats[Col];
        Row NR;
        NR.Body = R.Body;
        NR.Bindings = R.Bindings;
        NR.Loc = R.Loc;
        NR.Pats.insert(NR.Pats.end(), R.Pats.begin(), R.Pats.begin() + Col);
        if (Pat->Kind == SPat::K::Ctor) {
          if (P.findCtor(P.symbols().intern(Pat->Name)) != C)
            continue; // this row cannot match this constructor
          for (const SPatPtr &Sub : Pat->Sub)
            NR.Pats.push_back(Sub.get());
        } else { // Var or Wild: matches any constructor
          if (Pat->Kind == SPat::K::Var)
            NR.Bindings.push_back({Pat->Name, ScrutVar});
          for (uint32_t I = 0; I != CD.Arity; ++I)
            NR.Pats.push_back(wildPat());
        }
        NR.Pats.insert(NR.Pats.end(), R.Pats.begin() + Col + 1,
                       R.Pats.end());
        SubRows.push_back(std::move(NR));
      }

      const Expr *Body = compileMatch(SubVars, std::move(SubRows), Loc);
      Arms.push_back(
          B.ctorArm(C, std::span<const Symbol>(Binders.data(),
                                               Binders.size()),
                    Body));
    }

    if (!AllCovered) {
      // Default arm: rows with an irrefutable pattern in this column.
      std::vector<Symbol> SubVars;
      SubVars.insert(SubVars.end(), Vars.begin(), Vars.begin() + Col);
      SubVars.insert(SubVars.end(), Vars.begin() + Col + 1, Vars.end());
      std::vector<Row> SubRows;
      for (Row &R : Rows) {
        const SPat *Pat = R.Pats[Col];
        if (Pat->Kind == SPat::K::Ctor)
          continue;
        Row NR;
        NR.Body = R.Body;
        NR.Bindings = R.Bindings;
        NR.Loc = R.Loc;
        if (Pat->Kind == SPat::K::Var)
          NR.Bindings.push_back({Pat->Name, ScrutVar});
        NR.Pats.insert(NR.Pats.end(), R.Pats.begin(), R.Pats.begin() + Col);
        NR.Pats.insert(NR.Pats.end(), R.Pats.begin() + Col + 1,
                       R.Pats.end());
        SubRows.push_back(std::move(NR));
      }
      if (!HasIrrefutableRow) {
        Arms.push_back(B.defaultArm(B.prim(PrimOp::Abort, {}, Loc)));
      } else {
        Arms.push_back(
            B.defaultArm(compileMatch(SubVars, std::move(SubRows), Loc)));
      }
    }

    return B.match(ScrutVar,
                   std::span<const MatchArm>(Arms.data(), Arms.size()), Loc);
  }

  const Expr *compileLiteralColumn(std::vector<Symbol> &Vars,
                                   std::vector<Row> &Rows, size_t Col,
                                   SourceLoc Loc) {
    Symbol ScrutVar = Vars[Col];
    bool IsBool = Rows.front().Pats[Col]->Kind == SPat::K::Bool;

    // Distinct literal values in first-occurrence order.
    std::vector<int64_t> Values;
    bool HasIrrefutableRow = false;
    for (Row &R : Rows) {
      const SPat *Pat = R.Pats[Col];
      if (Pat->Kind == SPat::K::Var || Pat->Kind == SPat::K::Wild) {
        HasIrrefutableRow = true;
        continue;
      }
      if ((IsBool && Pat->Kind != SPat::K::Bool) ||
          (!IsBool && Pat->Kind != SPat::K::Int)) {
        Diags.error(Pat->Loc, "mixed literal pattern kinds");
        return B.unit(Loc);
      }
      if (std::find(Values.begin(), Values.end(), Pat->Int) == Values.end())
        Values.push_back(Pat->Int);
    }

    std::vector<Symbol> SubVars;
    SubVars.insert(SubVars.end(), Vars.begin(), Vars.begin() + Col);
    SubVars.insert(SubVars.end(), Vars.begin() + Col + 1, Vars.end());

    auto subRowsFor = [&](int64_t Value, bool ForDefault) {
      std::vector<Row> SubRows;
      for (Row &R : Rows) {
        const SPat *Pat = R.Pats[Col];
        bool RowMatches;
        if (Pat->Kind == SPat::K::Var || Pat->Kind == SPat::K::Wild)
          RowMatches = true;
        else
          RowMatches = !ForDefault && Pat->Int == Value;
        if (!RowMatches)
          continue;
        Row NR;
        NR.Body = R.Body;
        NR.Bindings = R.Bindings;
        NR.Loc = R.Loc;
        if (Pat->Kind == SPat::K::Var)
          NR.Bindings.push_back({Pat->Name, ScrutVar});
        NR.Pats.insert(NR.Pats.end(), R.Pats.begin(), R.Pats.begin() + Col);
        NR.Pats.insert(NR.Pats.end(), R.Pats.begin() + Col + 1,
                       R.Pats.end());
        SubRows.push_back(std::move(NR));
      }
      return SubRows;
    };

    std::vector<MatchArm> Arms;
    for (int64_t V : Values) {
      const Expr *Body = compileMatch(SubVars, subRowsFor(V, false), Loc);
      Arms.push_back(IsBool ? B.boolArm(V != 0, Body) : B.intArm(V, Body));
    }
    // Bool matches covering both values need no default.
    bool Covered = IsBool && Values.size() == 2;
    if (!Covered) {
      const Expr *Body = HasIrrefutableRow
                             ? compileMatch(SubVars, subRowsFor(0, true), Loc)
                             : B.prim(PrimOp::Abort, {}, Loc);
      Arms.push_back(B.defaultArm(Body));
    }
    return B.match(ScrutVar,
                   std::span<const MatchArm>(Arms.data(), Arms.size()), Loc);
  }

  const SModule &M;
  Program &P;
  IRBuilder B;
  DiagnosticEngine &Diags;
  std::vector<ScopeEntry> Scope;
  std::unordered_set<std::string> UsedBinderNames;
};

} // namespace

bool perceus::resolveModule(const SModule &M, Program &P,
                            DiagnosticEngine &Diags) {
  return ResolverImpl(M, P, Diags).run();
}

bool perceus::compileSource(std::string_view Source, Program &P,
                            DiagnosticEngine &Diags) {
  SModule M = parseModule(Source, Diags);
  if (Diags.hasErrors())
    return false;
  return resolveModule(M, P, Diags);
}
