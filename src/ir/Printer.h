//===- ir/Printer.h - IR pretty printer -------------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders IR expressions and whole programs in a paper-like concrete
/// syntax. Deterministic output; used by the golden tests that reproduce
/// the transformation stages of Figure 1.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_IR_PRINTER_H
#define PERCEUS_IR_PRINTER_H

#include "ir/Program.h"

#include <string>

namespace perceus {

/// Renders \p E with \p Indent leading levels (two spaces each).
std::string printExpr(const Program &P, const Expr *E, unsigned Indent = 0);

/// Renders the function \p F including its header.
std::string printFunction(const Program &P, FuncId F);

/// Renders the whole program (data decls then functions).
std::string printProgram(const Program &P);

/// Structural equality of expression trees (ignores source locations).
bool exprEquals(const Expr *A, const Expr *B);

} // namespace perceus

#endif // PERCEUS_IR_PRINTER_H
