//===- ir/Builder.h - Convenience IR construction ---------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// IRBuilder constructs arena-allocated expression trees with a compact
/// API. Used by the resolver, all rewriting passes, tests and examples.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_IR_BUILDER_H
#define PERCEUS_IR_BUILDER_H

#include "ir/Program.h"

#include <initializer_list>

namespace perceus {

/// Builds expressions into a Program's arena.
class IRBuilder {
public:
  explicit IRBuilder(Program &P) : P(P) {}

  Program &program() { return P; }
  SymbolTable &symbols() { return P.symbols(); }

  /// Interns \p Name.
  Symbol sym(std::string_view Name) { return P.symbols().intern(Name); }
  /// Mints a fresh symbol based on \p Base.
  Symbol freshSym(std::string_view Base) { return P.symbols().fresh(Base); }

  //===--- Leaves ----------------------------------------------------------//

  const Expr *litInt(int64_t V, SourceLoc L = {}) {
    return P.arena().make<LitExpr>(LitValue::makeInt(V), L);
  }
  const Expr *litBool(bool V, SourceLoc L = {}) {
    return P.arena().make<LitExpr>(LitValue::makeBool(V), L);
  }
  const Expr *unit(SourceLoc L = {}) {
    return P.arena().make<LitExpr>(LitValue::makeUnit(), L);
  }
  const Expr *var(Symbol Name, SourceLoc L = {}) {
    return P.arena().make<VarExpr>(Name, L);
  }
  const Expr *var(std::string_view Name, SourceLoc L = {}) {
    return var(sym(Name), L);
  }
  const Expr *global(FuncId F, SourceLoc L = {}) {
    return P.arena().make<GlobalExpr>(P.function(F).Name, F, L);
  }

  //===--- Compound --------------------------------------------------------//

  const Expr *app(const Expr *Fn, std::span<const Expr *const> Args,
                  SourceLoc L = {}) {
    return P.arena().make<AppExpr>(Fn, copyExprs(Args), L);
  }
  const Expr *app(const Expr *Fn, std::initializer_list<const Expr *> Args,
                  SourceLoc L = {}) {
    return app(Fn, std::span<const Expr *const>(Args.begin(), Args.size()), L);
  }
  /// Calls top-level function \p F.
  const Expr *call(FuncId F, std::initializer_list<const Expr *> Args,
                   SourceLoc L = {}) {
    return app(global(F, L), Args, L);
  }

  const Expr *lam(std::span<const Symbol> Params,
                  std::span<const Symbol> Captures, const Expr *Body,
                  SourceLoc L = {}) {
    return P.arena().make<LamExpr>(copySyms(Params), copySyms(Captures), Body,
                                   P.nextLamId(), L);
  }
  /// Rebuilds a lambda keeping its existing LamId (for pass rewrites).
  const Expr *lamWithId(uint32_t LamId, std::span<const Symbol> Params,
                        std::span<const Symbol> Captures, const Expr *Body,
                        SourceLoc L = {}) {
    return P.arena().make<LamExpr>(copySyms(Params), copySyms(Captures), Body,
                                   LamId, L);
  }

  const Expr *let(Symbol Name, const Expr *Bound, const Expr *Body,
                  SourceLoc L = {}) {
    return P.arena().make<LetExpr>(Name, Bound, Body, L);
  }
  const Expr *seq(const Expr *First, const Expr *Second, SourceLoc L = {}) {
    return P.arena().make<SeqExpr>(First, Second, L);
  }
  const Expr *iff(const Expr *Cond, const Expr *Then, const Expr *Else,
                  SourceLoc L = {}) {
    return P.arena().make<IfExpr>(Cond, Then, Else, L);
  }

  const Expr *match(Symbol Scrutinee, std::span<const MatchArm> Arms,
                    SourceLoc L = {}) {
    return P.arena().make<MatchExpr>(
        Scrutinee,
        std::span<const MatchArm>(
            P.arena().copyArray(Arms.data(), Arms.size()), Arms.size()),
        L);
  }

  /// A constructor arm; \p Binders must cover every field.
  MatchArm ctorArm(CtorId C, std::span<const Symbol> Binders,
                   const Expr *Body) {
    assert(Binders.size() == P.ctor(C).Arity && "arity mismatch in pattern");
    MatchArm A;
    A.Kind = ArmKind::Ctor;
    A.Ctor = C;
    A.Binders = copySyms(Binders);
    A.Body = Body;
    return A;
  }
  MatchArm ctorArm(CtorId C, std::initializer_list<Symbol> Binders,
                   const Expr *Body) {
    return ctorArm(C, std::span<const Symbol>(Binders.begin(), Binders.size()),
                   Body);
  }
  MatchArm intArm(int64_t V, const Expr *Body) {
    MatchArm A;
    A.Kind = ArmKind::IntLit;
    A.Lit = LitValue::makeInt(V);
    A.Body = Body;
    return A;
  }
  MatchArm boolArm(bool V, const Expr *Body) {
    MatchArm A;
    A.Kind = ArmKind::BoolLit;
    A.Lit = LitValue::makeBool(V);
    A.Body = Body;
    return A;
  }
  MatchArm defaultArm(const Expr *Body) {
    MatchArm A;
    A.Kind = ArmKind::Default;
    A.Body = Body;
    return A;
  }

  const Expr *con(CtorId C, std::span<const Expr *const> Args,
                  Symbol ReuseToken = Symbol(), SourceLoc L = {}) {
    assert(Args.size() == P.ctor(C).Arity && "arity mismatch in constructor");
    return P.arena().make<ConExpr>(C, copyExprs(Args), ReuseToken, L);
  }
  const Expr *con(CtorId C, std::initializer_list<const Expr *> Args,
                  Symbol ReuseToken = Symbol(), SourceLoc L = {}) {
    return con(C, std::span<const Expr *const>(Args.begin(), Args.size()),
               ReuseToken, L);
  }

  const Expr *prim(PrimOp Op, std::initializer_list<const Expr *> Args,
                   SourceLoc L = {}) {
    return prim(Op, std::span<const Expr *const>(Args.begin(), Args.size()),
                L);
  }
  const Expr *prim(PrimOp Op, std::span<const Expr *const> Args,
                   SourceLoc L = {}) {
    return P.arena().make<PrimExpr>(Op, copyExprs(Args), L);
  }

  //===--- RC internal forms ------------------------------------------------//

  const Expr *dup(Symbol X, const Expr *Rest, SourceLoc L = {}) {
    return P.arena().make<DupExpr>(X, Rest, L);
  }
  const Expr *drop(Symbol X, const Expr *Rest, SourceLoc L = {}) {
    return P.arena().make<DropExpr>(X, Rest, L);
  }
  const Expr *freeCell(Symbol X, const Expr *Rest, SourceLoc L = {}) {
    return P.arena().make<FreeExpr>(X, Rest, L);
  }
  const Expr *decref(Symbol X, const Expr *Rest, SourceLoc L = {}) {
    return P.arena().make<DecRefExpr>(X, Rest, L);
  }
  const Expr *isUnique(Symbol X, const Expr *Then, const Expr *Else,
                       SourceLoc L = {}) {
    return P.arena().make<IsUniqueExpr>(X, Then, Else, L);
  }
  const Expr *dropReuse(Symbol X, Symbol Token, const Expr *Rest,
                        SourceLoc L = {}) {
    return P.arena().make<DropReuseExpr>(X, Token, Rest, L);
  }
  const Expr *reuseAddr(Symbol X, SourceLoc L = {}) {
    return P.arena().make<ReuseAddrExpr>(X, L);
  }
  const Expr *nullToken(SourceLoc L = {}) {
    return P.arena().make<NullTokenExpr>(L);
  }
  const Expr *isNullToken(Symbol Token, const Expr *Then, const Expr *Else,
                          SourceLoc L = {}) {
    return P.arena().make<IsNullTokenExpr>(Token, Then, Else, L);
  }
  const Expr *setField(Symbol Token, uint32_t Index, const Expr *Value,
                       const Expr *Rest, SourceLoc L = {}) {
    return P.arena().make<SetFieldExpr>(Token, Index, Value, Rest, L);
  }
  const Expr *tokenValue(Symbol Token, CtorId Ctor,
                         std::span<const Symbol> Kept = {}, SourceLoc L = {}) {
    return P.arena().make<TokenValueExpr>(Token, Ctor, copySyms(Kept), L);
  }

  //===--- Helpers ---------------------------------------------------------//

  std::span<const Symbol> copySyms(std::span<const Symbol> Syms) {
    return {P.arena().copyArray(Syms.data(), Syms.size()), Syms.size()};
  }
  std::span<const Expr *const> copyExprs(std::span<const Expr *const> Es) {
    return {P.arena().copyArray(Es.data(), Es.size()), Es.size()};
  }

private:
  Program &P;
};

} // namespace perceus

#endif // PERCEUS_IR_BUILDER_H
