//===- ir/Rewrite.cpp - Generic child-rewriting helper ----------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Rewrite.h"

#include "support/Casting.h"

using namespace perceus;

const Expr *perceus::mapChildren(
    IRBuilder &B, const Expr *E,
    const std::function<const Expr *(const Expr *)> &Fn) {
  switch (E->kind()) {
  case ExprKind::Lit:
  case ExprKind::Var:
  case ExprKind::Global:
  case ExprKind::ReuseAddr:
  case ExprKind::NullToken:
  case ExprKind::TokenValue:
    return E;

  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    const Expr *Body = Fn(L->body());
    if (Body == L->body())
      return E;
    return B.lamWithId(L->lamId(), L->params(), L->captures(), Body,
                       E->loc());
  }

  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    const Expr *FnE = Fn(A->fn());
    bool Changed = FnE != A->fn();
    std::vector<const Expr *> Args;
    for (const Expr *Arg : A->args()) {
      Args.push_back(Fn(Arg));
      Changed |= Args.back() != Arg;
    }
    if (!Changed)
      return E;
    return B.app(FnE, std::span<const Expr *const>(Args.data(), Args.size()),
                 E->loc());
  }

  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    const Expr *Bound = Fn(L->bound());
    const Expr *Body = Fn(L->body());
    if (Bound == L->bound() && Body == L->body())
      return E;
    return B.let(L->name(), Bound, Body, E->loc());
  }

  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    const Expr *First = Fn(S->first());
    const Expr *Second = Fn(S->second());
    if (First == S->first() && Second == S->second())
      return E;
    return B.seq(First, Second, E->loc());
  }

  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    const Expr *C = Fn(I->cond());
    const Expr *T = Fn(I->thenExpr());
    const Expr *El = Fn(I->elseExpr());
    if (C == I->cond() && T == I->thenExpr() && El == I->elseExpr())
      return E;
    return B.iff(C, T, El, E->loc());
  }

  case ExprKind::Match: {
    const auto *M = cast<MatchExpr>(E);
    bool Changed = false;
    std::vector<MatchArm> Arms;
    for (const MatchArm &Arm : M->arms()) {
      MatchArm NewArm = Arm;
      NewArm.Body = Fn(Arm.Body);
      Changed |= NewArm.Body != Arm.Body;
      Arms.push_back(NewArm);
    }
    if (!Changed)
      return E;
    return B.match(M->scrutinee(),
                   std::span<const MatchArm>(Arms.data(), Arms.size()),
                   E->loc());
  }

  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    bool Changed = false;
    std::vector<const Expr *> Args;
    for (const Expr *Arg : C->args()) {
      Args.push_back(Fn(Arg));
      Changed |= Args.back() != Arg;
    }
    if (!Changed)
      return E;
    return B.con(C->ctor(),
                 std::span<const Expr *const>(Args.data(), Args.size()),
                 C->reuseToken(), E->loc());
  }

  case ExprKind::Prim: {
    const auto *Pr = cast<PrimExpr>(E);
    bool Changed = false;
    std::vector<const Expr *> Args;
    for (const Expr *Arg : Pr->args()) {
      Args.push_back(Fn(Arg));
      Changed |= Args.back() != Arg;
    }
    if (!Changed)
      return E;
    return B.prim(Pr->op(),
                  std::span<const Expr *const>(Args.data(), Args.size()),
                  E->loc());
  }

  case ExprKind::Dup: {
    const auto *D = cast<DupExpr>(E);
    const Expr *Rest = Fn(D->rest());
    return Rest == D->rest() ? E : B.dup(D->var(), Rest, E->loc());
  }
  case ExprKind::Drop: {
    const auto *D = cast<DropExpr>(E);
    const Expr *Rest = Fn(D->rest());
    return Rest == D->rest() ? E : B.drop(D->var(), Rest, E->loc());
  }
  case ExprKind::Free: {
    const auto *D = cast<FreeExpr>(E);
    const Expr *Rest = Fn(D->rest());
    return Rest == D->rest() ? E : B.freeCell(D->var(), Rest, E->loc());
  }
  case ExprKind::DecRef: {
    const auto *D = cast<DecRefExpr>(E);
    const Expr *Rest = Fn(D->rest());
    return Rest == D->rest() ? E : B.decref(D->var(), Rest, E->loc());
  }

  case ExprKind::IsUnique: {
    const auto *U = cast<IsUniqueExpr>(E);
    const Expr *T = Fn(U->thenExpr());
    const Expr *El = Fn(U->elseExpr());
    if (T == U->thenExpr() && El == U->elseExpr())
      return E;
    return B.isUnique(U->var(), T, El, E->loc());
  }

  case ExprKind::DropReuse: {
    const auto *D = cast<DropReuseExpr>(E);
    const Expr *Rest = Fn(D->rest());
    return Rest == D->rest() ? E
                             : B.dropReuse(D->var(), D->token(), Rest,
                                           E->loc());
  }

  case ExprKind::IsNullToken: {
    const auto *N = cast<IsNullTokenExpr>(E);
    const Expr *T = Fn(N->thenExpr());
    const Expr *El = Fn(N->elseExpr());
    if (T == N->thenExpr() && El == N->elseExpr())
      return E;
    return B.isNullToken(N->token(), T, El, E->loc());
  }

  case ExprKind::SetField: {
    const auto *F = cast<SetFieldExpr>(E);
    const Expr *V = Fn(F->value());
    const Expr *Rest = Fn(F->rest());
    if (V == F->value() && Rest == F->rest())
      return E;
    return B.setField(F->token(), F->index(), V, Rest, E->loc());
  }
  }
  return E;
}
