//===- ir/Program.h - Datatypes, functions, whole programs ------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Declarations surrounding expressions: algebraic data types with their
/// constructors, top-level functions, and the Program that owns them all
/// (together with the arena the expression trees live in and the symbol
/// table binders are interned in).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_IR_PROGRAM_H
#define PERCEUS_IR_PROGRAM_H

#include "ir/Expr.h"
#include "support/Arena.h"
#include "support/Symbol.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace perceus {

/// One constructor of an algebraic data type.
///
/// Nullary constructors (like `Nil`, `Red`, `Black`) are *enum-like*: they
/// are represented as unboxed immediates at runtime and never allocate,
/// mirroring how Koka treats value constructors.
struct CtorDecl {
  Symbol Name;
  uint32_t DataId = InvalidId;
  uint32_t Tag = 0;   // unique within the data type
  uint32_t Arity = 0; // number of fields
  std::vector<Symbol> FieldNames; // optional; empty symbols allowed

  bool isEnumLike() const { return Arity == 0; }
};

/// An algebraic data type declaration.
struct DataDecl {
  Symbol Name;
  uint32_t Id = InvalidId;
  std::vector<CtorId> Ctors;
};

/// A top-level function. Top-level functions capture nothing; references
/// to them are static values (no heap cell, rc ops are no-ops).
struct FunctionDecl {
  Symbol Name;
  FuncId Id = InvalidId;
  std::vector<Symbol> Params;
  const Expr *Body = nullptr;
};

/// A whole program: data types, functions, and the arena/symbols backing
/// the expression trees. Passes rewrite function bodies in place (the
/// trees themselves are immutable; rewritten trees share the arena).
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  Arena &arena() { return A; }
  const Arena &arena() const { return A; }
  SymbolTable &symbols() { return Syms; }
  const SymbolTable &symbols() const { return Syms; }

  //===--- Data types -----------------------------------------------------===//

  /// Creates a data type named \p Name; returns its id.
  uint32_t addData(Symbol Name) {
    uint32_t Id = static_cast<uint32_t>(Datas.size());
    Datas.push_back({Name, Id, {}});
    DataByName.emplace(Name, Id);
    return Id;
  }

  /// Adds a constructor to data type \p DataId.
  CtorId addCtor(uint32_t DataId, Symbol Name, uint32_t Arity,
                 std::vector<Symbol> FieldNames = {}) {
    CtorId Id = static_cast<CtorId>(Ctors.size());
    CtorDecl C;
    C.Name = Name;
    C.DataId = DataId;
    C.Tag = static_cast<uint32_t>(Datas[DataId].Ctors.size());
    C.Arity = Arity;
    C.FieldNames = std::move(FieldNames);
    Ctors.push_back(std::move(C));
    Datas[DataId].Ctors.push_back(Id);
    CtorByName.emplace(Name, Id);
    return Id;
  }

  const DataDecl &data(uint32_t Id) const { return Datas[Id]; }
  const CtorDecl &ctor(CtorId Id) const { return Ctors[Id]; }
  size_t numDatas() const { return Datas.size(); }
  size_t numCtors() const { return Ctors.size(); }

  /// Looks up a constructor by name; returns InvalidId if absent.
  CtorId findCtor(Symbol Name) const {
    auto It = CtorByName.find(Name);
    return It == CtorByName.end() ? InvalidId : It->second;
  }

  /// Looks up a data type by name; returns InvalidId if absent.
  uint32_t findData(Symbol Name) const {
    auto It = DataByName.find(Name);
    return It == DataByName.end() ? InvalidId : It->second;
  }

  //===--- Functions ------------------------------------------------------===//

  /// Declares a function (body may be set later); returns its id.
  FuncId addFunction(Symbol Name, std::vector<Symbol> Params,
                     const Expr *Body = nullptr) {
    FuncId Id = static_cast<FuncId>(Funcs.size());
    Funcs.push_back({Name, Id, std::move(Params), Body});
    FuncByName.emplace(Name, Id);
    return Id;
  }

  FunctionDecl &function(FuncId Id) { return Funcs[Id]; }
  const FunctionDecl &function(FuncId Id) const { return Funcs[Id]; }
  size_t numFunctions() const { return Funcs.size(); }

  /// Looks up a function by name; returns InvalidId if absent.
  FuncId findFunction(Symbol Name) const {
    auto It = FuncByName.find(Name);
    return It == FuncByName.end() ? InvalidId : It->second;
  }

  /// Replaces the body of \p Id (used by the rewriting passes).
  void setBody(FuncId Id, const Expr *Body) { Funcs[Id].Body = Body; }

  //===--- Lambdas --------------------------------------------------------===//

  /// Mints a program-unique lambda id (used by LamExpr and frame layout).
  uint32_t nextLamId() { return LamCounter++; }
  uint32_t numLamIds() const { return LamCounter; }

private:
  Arena A;
  SymbolTable Syms;
  std::vector<DataDecl> Datas;
  std::vector<CtorDecl> Ctors;
  std::vector<FunctionDecl> Funcs;
  std::unordered_map<Symbol, uint32_t> DataByName;
  std::unordered_map<Symbol, CtorId> CtorByName;
  std::unordered_map<Symbol, FuncId> FuncByName;
  uint32_t LamCounter = 0;
};

} // namespace perceus

#endif // PERCEUS_IR_PROGRAM_H
