//===- ir/Printer.cpp - IR pretty printer ----------------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/Casting.h"

#include <cassert>

using namespace perceus;

const char *perceus::primOpName(PrimOp Op) {
  switch (Op) {
  case PrimOp::Add:
    return "+";
  case PrimOp::Sub:
    return "-";
  case PrimOp::Mul:
    return "*";
  case PrimOp::Div:
    return "/";
  case PrimOp::Mod:
    return "%";
  case PrimOp::Neg:
    return "neg";
  case PrimOp::Lt:
    return "<";
  case PrimOp::Le:
    return "<=";
  case PrimOp::Gt:
    return ">";
  case PrimOp::Ge:
    return ">=";
  case PrimOp::EqInt:
    return "==";
  case PrimOp::NeInt:
    return "!=";
  case PrimOp::Not:
    return "!";
  case PrimOp::PrintLn:
    return "println";
  case PrimOp::MarkShared:
    return "tshare";
  case PrimOp::Abort:
    return "abort";
  case PrimOp::RefNew:
    return "ref";
  case PrimOp::RefGet:
    return "deref";
  case PrimOp::RefSet:
    return "set-ref";
  }
  return "?";
}

namespace {

/// Recursive printing helper. Statement-like forms (let, seq, rc ops)
/// print one step per line; small leaves print inline.
class PrinterImpl {
public:
  PrinterImpl(const Program &P) : P(P) {}

  std::string Out;

  void line(unsigned Indent) {
    Out += '\n';
    Out.append(Indent * 2, ' ');
  }

  std::string name(Symbol S) const { return std::string(P.symbols().name(S)); }

  /// Prints an expression inline (used for atoms and call arguments).
  void inlineExpr(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lit: {
      const LitValue &V = cast<LitExpr>(E)->value();
      switch (V.Kind) {
      case LitKind::Int:
        Out += std::to_string(V.Int);
        return;
      case LitKind::Bool:
        Out += V.Int ? "True" : "False";
        return;
      case LitKind::Unit:
        Out += "()";
        return;
      }
      return;
    }
    case ExprKind::Var:
      Out += name(cast<VarExpr>(E)->name());
      return;
    case ExprKind::Global:
      Out += name(cast<GlobalExpr>(E)->name());
      return;
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      // RC chains parenthesize themselves.
      bool NeedParens = !isa<VarExpr>(A->fn()) && !isa<GlobalExpr>(A->fn()) &&
                        !isa<RcStmtExpr>(A->fn());
      if (NeedParens)
        Out += '(';
      inlineExpr(A->fn());
      if (NeedParens)
        Out += ')';
      Out += '(';
      bool First = true;
      for (const Expr *Arg : A->args()) {
        if (!First)
          Out += ", ";
        First = false;
        inlineExpr(Arg);
      }
      Out += ')';
      return;
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      Out += name(P.ctor(C->ctor()).Name);
      if (C->hasReuseToken()) {
        Out += '@';
        Out += name(C->reuseToken());
      }
      if (!C->args().empty()) {
        Out += '(';
        bool First = true;
        for (const Expr *Arg : C->args()) {
          if (!First)
            Out += ", ";
          First = false;
          inlineExpr(Arg);
        }
        Out += ')';
      }
      return;
    }
    case ExprKind::Prim: {
      const auto *Pr = cast<PrimExpr>(E);
      auto Args = Pr->args();
      if (Args.size() == 2) {
        Out += '(';
        inlineExpr(Args[0]);
        Out += ' ';
        Out += primOpName(Pr->op());
        Out += ' ';
        inlineExpr(Args[1]);
        Out += ')';
        return;
      }
      Out += primOpName(Pr->op());
      Out += '(';
      bool First = true;
      for (const Expr *Arg : Args) {
        if (!First)
          Out += ", ";
        First = false;
        inlineExpr(Arg);
      }
      Out += ')';
      return;
    }
    case ExprKind::ReuseAddr:
      Out += '&';
      Out += name(cast<ReuseAddrExpr>(E)->var());
      return;
    case ExprKind::NullToken:
      Out += "NULL";
      return;
    case ExprKind::TokenValue: {
      const auto *T = cast<TokenValueExpr>(E);
      Out += name(T->token());
      Out += '@';
      Out += name(P.ctor(T->ctor()).Name);
      if (!T->keptFields().empty()) {
        Out += "[keep ";
        bool First = true;
        for (Symbol K : T->keptFields()) {
          if (!First)
            Out += ", ";
          First = false;
          Out += name(K);
        }
        Out += ']';
      }
      return;
    }
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef: {
      // RC chains in value position print inline: `(dup f; f)`.
      const auto *R = cast<RcStmtExpr>(E);
      const char *Op = E->kind() == ExprKind::Dup    ? "dup "
                       : E->kind() == ExprKind::Drop ? "drop "
                       : E->kind() == ExprKind::Free ? "free "
                                                     : "decref ";
      Out += '(';
      Out += Op;
      Out += name(R->var());
      Out += "; ";
      inlineExpr(R->rest());
      Out += ')';
      return;
    }
    default:
      // A statement-like form in argument position: parenthesize and
      // print it block-style on one logical line.
      Out += "{ ";
      blockExpr(E, /*Indent=*/0, /*SameLine=*/true);
      Out += " }";
      return;
    }
  }

  /// Prints an expression block-style at \p Indent. If \p SameLine, the
  /// first line continues the current line.
  void blockExpr(const Expr *E, unsigned Indent, bool SameLine = false) {
    switch (E->kind()) {
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      Out += "val " + name(L->name()) + " = ";
      if (isInline(L->bound())) {
        inlineExpr(L->bound());
      } else {
        blockExpr(L->bound(), Indent + 1, /*SameLine=*/true);
      }
      Out += ';';
      line(Indent);
      blockExpr(L->body(), Indent, true);
      return;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      if (isInline(S->first())) {
        inlineExpr(S->first());
      } else {
        blockExpr(S->first(), Indent, true);
      }
      Out += ';';
      line(Indent);
      blockExpr(S->second(), Indent, true);
      return;
    }
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef: {
      const auto *R = cast<RcStmtExpr>(E);
      switch (E->kind()) {
      case ExprKind::Dup:
        Out += "dup ";
        break;
      case ExprKind::Drop:
        Out += "drop ";
        break;
      case ExprKind::Free:
        Out += "free ";
        break;
      default:
        Out += "decref ";
        break;
      }
      Out += name(R->var());
      Out += ';';
      line(Indent);
      blockExpr(R->rest(), Indent, true);
      return;
    }
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      Out += "val " + name(D->token()) + " = drop-reuse(" + name(D->var()) +
             ");";
      line(Indent);
      blockExpr(D->rest(), Indent, true);
      return;
    }
    case ExprKind::SetField: {
      const auto *S = cast<SetFieldExpr>(E);
      Out += name(S->token()) + "[" + std::to_string(S->index()) + "] := ";
      inlineExpr(S->value());
      Out += ';';
      line(Indent);
      blockExpr(S->rest(), Indent, true);
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      Out += "if ";
      inlineExpr(I->cond());
      printBranchPair(I->thenExpr(), I->elseExpr(), Indent);
      return;
    }
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(E);
      Out += "if is-unique(" + name(U->var()) + ")";
      printBranchPair(U->thenExpr(), U->elseExpr(), Indent);
      return;
    }
    case ExprKind::IsNullToken: {
      const auto *N = cast<IsNullTokenExpr>(E);
      Out += "if " + name(N->token()) + " == NULL";
      printBranchPair(N->thenExpr(), N->elseExpr(), Indent);
      return;
    }
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      Out += "match " + name(M->scrutinee()) + " {";
      for (const MatchArm &Arm : M->arms()) {
        line(Indent + 1);
        switch (Arm.Kind) {
        case ArmKind::Ctor: {
          Out += name(P.ctor(Arm.Ctor).Name);
          if (!Arm.Binders.empty()) {
            Out += '(';
            bool First = true;
            for (Symbol B : Arm.Binders) {
              if (!First)
                Out += ", ";
              First = false;
              Out += name(B);
            }
            Out += ')';
          }
          break;
        }
        case ArmKind::IntLit:
          Out += std::to_string(Arm.Lit.Int);
          break;
        case ArmKind::BoolLit:
          Out += Arm.Lit.Int ? "True" : "False";
          break;
        case ArmKind::Default:
          Out += '_';
          break;
        }
        Out += " -> ";
        if (isInline(Arm.Body)) {
          inlineExpr(Arm.Body);
        } else {
          line(Indent + 2);
          blockExpr(Arm.Body, Indent + 2, true);
        }
      }
      line(Indent);
      Out += '}';
      return;
    }
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      Out += "fn[";
      bool First = true;
      for (Symbol C : L->captures()) {
        if (!First)
          Out += ", ";
        First = false;
        Out += name(C);
      }
      Out += "](";
      First = true;
      for (Symbol Pm : L->params()) {
        if (!First)
          Out += ", ";
        First = false;
        Out += name(Pm);
      }
      Out += ") {";
      line(Indent + 1);
      blockExpr(L->body(), Indent + 1, true);
      line(Indent);
      Out += '}';
      return;
    }
    default:
      inlineExpr(E);
      return;
    }
  }

  void printBranchPair(const Expr *Then, const Expr *Else, unsigned Indent) {
    Out += " then {";
    line(Indent + 1);
    blockExpr(Then, Indent + 1, true);
    line(Indent);
    Out += "} else {";
    line(Indent + 1);
    blockExpr(Else, Indent + 1, true);
    line(Indent);
    Out += '}';
  }

  /// True when \p E renders naturally on a single line.
  static bool isInline(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Var:
    case ExprKind::Global:
    case ExprKind::App:
    case ExprKind::Con:
    case ExprKind::Prim:
    case ExprKind::ReuseAddr:
    case ExprKind::NullToken:
    case ExprKind::TokenValue:
      return true;
    default:
      return false;
    }
  }

private:
  const Program &P;
};

} // namespace

std::string perceus::printExpr(const Program &P, const Expr *E,
                               unsigned Indent) {
  PrinterImpl Impl(P);
  Impl.Out.append(Indent * 2, ' ');
  Impl.blockExpr(E, Indent, true);
  return std::move(Impl.Out);
}

std::string perceus::printFunction(const Program &P, FuncId F) {
  const FunctionDecl &Fn = P.function(F);
  PrinterImpl Impl(P);
  Impl.Out += "fun " + Impl.name(Fn.Name) + "(";
  bool First = true;
  for (Symbol Pm : Fn.Params) {
    if (!First)
      Impl.Out += ", ";
    First = false;
    Impl.Out += Impl.name(Pm);
  }
  Impl.Out += ") {";
  Impl.line(1);
  Impl.blockExpr(Fn.Body, 1, true);
  Impl.line(0);
  Impl.Out += "}\n";
  return std::move(Impl.Out);
}

std::string perceus::printProgram(const Program &P) {
  std::string Out;
  for (uint32_t D = 0; D != P.numDatas(); ++D) {
    const DataDecl &Data = P.data(D);
    Out += "type " + std::string(P.symbols().name(Data.Name)) + " { ";
    bool First = true;
    for (CtorId C : Data.Ctors) {
      if (!First)
        Out += "; ";
      First = false;
      const CtorDecl &Ctor = P.ctor(C);
      Out += std::string(P.symbols().name(Ctor.Name));
      if (Ctor.Arity != 0)
        Out += "/" + std::to_string(Ctor.Arity);
    }
    Out += " }\n";
  }
  for (uint32_t F = 0; F != P.numFunctions(); ++F) {
    Out += printFunction(P, F);
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

bool perceus::exprEquals(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::Lit:
    return cast<LitExpr>(A)->value() == cast<LitExpr>(B)->value();
  case ExprKind::Var:
    return cast<VarExpr>(A)->name() == cast<VarExpr>(B)->name();
  case ExprKind::Global:
    return cast<GlobalExpr>(A)->func() == cast<GlobalExpr>(B)->func();
  case ExprKind::Lam: {
    const auto *LA = cast<LamExpr>(A);
    const auto *LB = cast<LamExpr>(B);
    if (LA->params().size() != LB->params().size() ||
        LA->captures().size() != LB->captures().size())
      return false;
    for (size_t I = 0; I != LA->params().size(); ++I)
      if (LA->params()[I] != LB->params()[I])
        return false;
    for (size_t I = 0; I != LA->captures().size(); ++I)
      if (LA->captures()[I] != LB->captures()[I])
        return false;
    return exprEquals(LA->body(), LB->body());
  }
  case ExprKind::App: {
    const auto *AA = cast<AppExpr>(A);
    const auto *AB = cast<AppExpr>(B);
    if (AA->args().size() != AB->args().size() ||
        !exprEquals(AA->fn(), AB->fn()))
      return false;
    for (size_t I = 0; I != AA->args().size(); ++I)
      if (!exprEquals(AA->args()[I], AB->args()[I]))
        return false;
    return true;
  }
  case ExprKind::Let: {
    const auto *LA = cast<LetExpr>(A);
    const auto *LB = cast<LetExpr>(B);
    return LA->name() == LB->name() &&
           exprEquals(LA->bound(), LB->bound()) &&
           exprEquals(LA->body(), LB->body());
  }
  case ExprKind::Seq: {
    const auto *SA = cast<SeqExpr>(A);
    const auto *SB = cast<SeqExpr>(B);
    return exprEquals(SA->first(), SB->first()) &&
           exprEquals(SA->second(), SB->second());
  }
  case ExprKind::If: {
    const auto *IA = cast<IfExpr>(A);
    const auto *IB = cast<IfExpr>(B);
    return exprEquals(IA->cond(), IB->cond()) &&
           exprEquals(IA->thenExpr(), IB->thenExpr()) &&
           exprEquals(IA->elseExpr(), IB->elseExpr());
  }
  case ExprKind::Match: {
    const auto *MA = cast<MatchExpr>(A);
    const auto *MB = cast<MatchExpr>(B);
    if (MA->scrutinee() != MB->scrutinee() ||
        MA->arms().size() != MB->arms().size())
      return false;
    for (size_t I = 0; I != MA->arms().size(); ++I) {
      const MatchArm &X = MA->arms()[I];
      const MatchArm &Y = MB->arms()[I];
      if (X.Kind != Y.Kind || X.Ctor != Y.Ctor || !(X.Lit == Y.Lit) ||
          X.Binders.size() != Y.Binders.size())
        return false;
      for (size_t J = 0; J != X.Binders.size(); ++J)
        if (X.Binders[J] != Y.Binders[J])
          return false;
      if (!exprEquals(X.Body, Y.Body))
        return false;
    }
    return true;
  }
  case ExprKind::Con: {
    const auto *CA = cast<ConExpr>(A);
    const auto *CB = cast<ConExpr>(B);
    if (CA->ctor() != CB->ctor() || CA->reuseToken() != CB->reuseToken() ||
        CA->args().size() != CB->args().size())
      return false;
    for (size_t I = 0; I != CA->args().size(); ++I)
      if (!exprEquals(CA->args()[I], CB->args()[I]))
        return false;
    return true;
  }
  case ExprKind::Prim: {
    const auto *PA = cast<PrimExpr>(A);
    const auto *PB = cast<PrimExpr>(B);
    if (PA->op() != PB->op() || PA->args().size() != PB->args().size())
      return false;
    for (size_t I = 0; I != PA->args().size(); ++I)
      if (!exprEquals(PA->args()[I], PB->args()[I]))
        return false;
    return true;
  }
  case ExprKind::Dup:
  case ExprKind::Drop:
  case ExprKind::Free:
  case ExprKind::DecRef: {
    const auto *RA = cast<RcStmtExpr>(A);
    const auto *RB = cast<RcStmtExpr>(B);
    return RA->var() == RB->var() && exprEquals(RA->rest(), RB->rest());
  }
  case ExprKind::IsUnique: {
    const auto *UA = cast<IsUniqueExpr>(A);
    const auto *UB = cast<IsUniqueExpr>(B);
    return UA->var() == UB->var() &&
           exprEquals(UA->thenExpr(), UB->thenExpr()) &&
           exprEquals(UA->elseExpr(), UB->elseExpr());
  }
  case ExprKind::DropReuse: {
    const auto *DA = cast<DropReuseExpr>(A);
    const auto *DB = cast<DropReuseExpr>(B);
    return DA->var() == DB->var() && DA->token() == DB->token() &&
           exprEquals(DA->rest(), DB->rest());
  }
  case ExprKind::ReuseAddr:
    return cast<ReuseAddrExpr>(A)->var() == cast<ReuseAddrExpr>(B)->var();
  case ExprKind::NullToken:
    return true;
  case ExprKind::IsNullToken: {
    const auto *NA = cast<IsNullTokenExpr>(A);
    const auto *NB = cast<IsNullTokenExpr>(B);
    return NA->token() == NB->token() &&
           exprEquals(NA->thenExpr(), NB->thenExpr()) &&
           exprEquals(NA->elseExpr(), NB->elseExpr());
  }
  case ExprKind::SetField: {
    const auto *SA = cast<SetFieldExpr>(A);
    const auto *SB = cast<SetFieldExpr>(B);
    return SA->token() == SB->token() && SA->index() == SB->index() &&
           exprEquals(SA->value(), SB->value()) &&
           exprEquals(SA->rest(), SB->rest());
  }
  case ExprKind::TokenValue: {
    const auto *TA = cast<TokenValueExpr>(A);
    const auto *TB = cast<TokenValueExpr>(B);
    if (TA->token() != TB->token() || TA->ctor() != TB->ctor() ||
        TA->keptFields().size() != TB->keptFields().size())
      return false;
    for (size_t I = 0; I != TA->keptFields().size(); ++I)
      if (TA->keptFields()[I] != TB->keptFields()[I])
        return false;
    return true;
  }
  }
  return false;
}
