//===- ir/Rewrite.h - Generic child-rewriting helper ------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `mapChildren` rebuilds an expression applying a callback to each direct
/// child. Passes use it for the uninteresting cases and special-case only
/// the nodes they transform.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_IR_REWRITE_H
#define PERCEUS_IR_REWRITE_H

#include "ir/Builder.h"

#include <functional>

namespace perceus {

/// Rebuilds \p E with every direct child expression replaced by
/// `Fn(child)`. Returns \p E itself when nothing changed.
const Expr *mapChildren(IRBuilder &B, const Expr *E,
                        const std::function<const Expr *(const Expr *)> &Fn);

} // namespace perceus

#endif // PERCEUS_IR_REWRITE_H
