//===- ir/Expr.h - Core IR expressions --------------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The expression IR of the linear resource calculus lambda-1 from
/// "Perceus: Garbage Free Reference Counting with Reuse" (Reinking, Xie,
/// de Moura, Leijen; PLDI 2021), Figure 4, extended with the internal
/// reference-counting constructs the paper introduces during compilation
/// (Sections 2.2-2.5):
///
///   dup x; e            DupExpr        increment refcount
///   drop x; e           DropExpr       decrement / recursively free
///   free x; e           FreeExpr       release memory only (drop-spec)
///   decref x; e         DecRefExpr     decrement only (drop-spec)
///   if is-unique(x)     IsUniqueExpr   drop-specialized refcount test
///   val ru=drop-reuse x DropReuseExpr  reuse-token acquisition (2.4)
///   Con@ru(...)         ConExpr w/ token   reuse-allocated constructor
///   &x                  ReuseAddrExpr  the address of x as a token
///   NULL                NullTokenExpr  the empty reuse token
///   if ru != NULL       IsNullTokenExpr reuse-specialized dispatch (2.5)
///   ru->f[i] := e; e    SetFieldExpr   in-place field update (2.5)
///   ru (as value)       TokenValueExpr the reused cell as a constructor
///
/// All nodes are immutable and arena-allocated; passes build rewritten
/// trees rather than mutating in place.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_IR_EXPR_H
#define PERCEUS_IR_EXPR_H

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Symbol.h"

#include <cstdint>
#include <span>

namespace perceus {

class Arena;

/// Identifies a constructor within a Program (index into Program ctors).
using CtorId = uint32_t;
/// Identifies a top-level function within a Program.
using FuncId = uint32_t;

constexpr uint32_t InvalidId = ~0u;

/// Kinds of IR expression nodes.
enum class ExprKind : uint8_t {
  Lit,
  Var,
  Global,
  Lam,
  App,
  Let,
  Seq,
  If,
  Match,
  Con,
  Prim,
  // Internal reference-counting forms (the paper's "gray" constructs).
  Dup,
  Drop,
  Free,
  DecRef,
  IsUnique,
  DropReuse,
  ReuseAddr,
  NullToken,
  IsNullToken,
  SetField,
  TokenValue,
};

/// Primitive operations. All operate on unboxed integers/booleans.
enum class PrimOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Neg,
  Lt,
  Le,
  Gt,
  Ge,
  EqInt,
  NeInt,
  Not,
  PrintLn,       // prints an integer; returns unit
  MarkShared,    // the paper's `tshare`: marks a value thread-shared
  Abort,         // non-exhaustive match / explicit failure; traps
  // First-class mutable reference cells (Section 2.7.3). These are the
  // only source of cycles (Section 2.7.4); breaking cycles is the
  // programmer's responsibility under reference counting.
  RefNew,        // ref(v): allocates a mutable cell holding v
  RefGet,        // deref(r): duplicates and returns the content
  RefSet,        // set-ref(r, v): drops the old content, stores v
};

/// Returns the surface-syntax spelling of \p Op.
const char *primOpName(PrimOp Op);

/// Literal payloads.
enum class LitKind : uint8_t { Int, Bool, Unit };

struct LitValue {
  LitKind Kind = LitKind::Unit;
  int64_t Int = 0;

  static LitValue makeInt(int64_t V) { return {LitKind::Int, V}; }
  static LitValue makeBool(bool V) { return {LitKind::Bool, V ? 1 : 0}; }
  static LitValue makeUnit() { return {LitKind::Unit, 0}; }

  friend bool operator==(const LitValue &A, const LitValue &B) {
    return A.Kind == B.Kind && A.Int == B.Int;
  }
};

//===----------------------------------------------------------------------===//
// Expr base
//===----------------------------------------------------------------------===//

/// Base class of all IR expressions.
///
/// `layoutA`/`layoutB` are scratch annotations owned by the frame-layout
/// pass of the abstract machine (slot indices, list table indices). They
/// are not part of the IR's semantics; a fresh layout run overwrites
/// them. Keeping them inline avoids a hash lookup per interpreted node.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  uint32_t layoutA() const { return LayoutA; }
  uint32_t layoutB() const { return LayoutB; }
  void setLayout(uint32_t A, uint32_t B) const {
    LayoutA = A;
    LayoutB = B;
  }

protected:
  Expr(ExprKind K, SourceLoc Loc) : Kind(K), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
  mutable uint32_t LayoutA = ~0u;
  mutable uint32_t LayoutB = ~0u;
};

/// An integer/boolean/unit literal. Never heap allocated at runtime
/// (value types, Section 2.7.1 of the paper).
class LitExpr : public Expr {
public:
  LitExpr(LitValue V, SourceLoc Loc) : Expr(ExprKind::Lit, Loc), Value(V) {}

  const LitValue &value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lit; }

private:
  LitValue Value;
};

/// A local variable occurrence.
class VarExpr : public Expr {
public:
  VarExpr(Symbol Name, SourceLoc Loc) : Expr(ExprKind::Var, Loc), Name(Name) {}

  Symbol name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  Symbol Name;
};

/// A reference to a top-level function. Top-level functions are static
/// (capture nothing) so this is a non-heap value; dup/drop on it are no-ops.
class GlobalExpr : public Expr {
public:
  GlobalExpr(Symbol Name, FuncId Func, SourceLoc Loc)
      : Expr(ExprKind::Global, Loc), Name(Name), Func(Func) {}

  Symbol name() const { return Name; }
  FuncId func() const { return Func; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Global; }

private:
  Symbol Name;
  FuncId Func;
};

/// An anonymous function. `captures()` is the multiset ys of Figure 4's
/// annotated lambda; it is computed by the resolver (= free variables) and
/// preserved by the passes. At runtime a Lam allocates a closure cell
/// holding the captured values.
class LamExpr : public Expr {
public:
  LamExpr(std::span<const Symbol> Params, std::span<const Symbol> Captures,
          const Expr *Body, uint32_t LamId, SourceLoc Loc)
      : Expr(ExprKind::Lam, Loc), Params(Params), Captures(Captures),
        Body(Body), LamId(LamId) {}

  std::span<const Symbol> params() const { return Params; }
  std::span<const Symbol> captures() const { return Captures; }
  const Expr *body() const { return Body; }
  /// A program-unique id used by the frame-layout pass and the machine.
  uint32_t lamId() const { return LamId; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lam; }

private:
  std::span<const Symbol> Params;
  std::span<const Symbol> Captures;
  const Expr *Body;
  uint32_t LamId;
};

/// N-ary application `f(a1, ..., an)`.
class AppExpr : public Expr {
public:
  AppExpr(const Expr *Fn, std::span<const Expr *const> Args, SourceLoc Loc)
      : Expr(ExprKind::App, Loc), Fn(Fn), Args(Args) {}

  const Expr *fn() const { return Fn; }
  std::span<const Expr *const> args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }

private:
  const Expr *Fn;
  std::span<const Expr *const> Args;
};

/// `val x = bound; body`.
class LetExpr : public Expr {
public:
  LetExpr(Symbol Name, const Expr *Bound, const Expr *Body, SourceLoc Loc)
      : Expr(ExprKind::Let, Loc), Name(Name), Bound(Bound), Body(Body) {}

  Symbol name() const { return Name; }
  const Expr *bound() const { return Bound; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Let; }

private:
  Symbol Name;
  const Expr *Bound;
  const Expr *Body;
};

/// `first; second` — evaluate \c first for its effect, discard, continue.
class SeqExpr : public Expr {
public:
  SeqExpr(const Expr *First, const Expr *Second, SourceLoc Loc)
      : Expr(ExprKind::Seq, Loc), First(First), Second(Second) {}

  const Expr *first() const { return First; }
  const Expr *second() const { return Second; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Seq; }

private:
  const Expr *First;
  const Expr *Second;
};

/// `if cond then thenE else elseE` over an unboxed boolean.
class IfExpr : public Expr {
public:
  IfExpr(const Expr *Cond, const Expr *Then, const Expr *Else, SourceLoc Loc)
      : Expr(ExprKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  const Expr *cond() const { return Cond; }
  const Expr *thenExpr() const { return Then; }
  const Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::If; }

private:
  const Expr *Cond;
  const Expr *Then;
  const Expr *Else;
};

/// What a match arm matches on.
enum class ArmKind : uint8_t { Ctor, IntLit, BoolLit, Default };

/// One arm of a match. For Ctor arms every field has a binder (wildcards
/// are resolved to fresh symbols so drop specialization can name them).
struct MatchArm {
  ArmKind Kind = ArmKind::Default;
  CtorId Ctor = InvalidId;          // for Ctor arms
  LitValue Lit;                     // for IntLit/BoolLit arms
  std::span<const Symbol> Binders;  // for Ctor arms
  const Expr *Body = nullptr;
};

/// `match x { arms }`. The scrutinee is always a variable: the resolver
/// let-binds non-trivial scrutinees first, which is what makes the smatch
/// rule of Figure 8 directly implementable.
class MatchExpr : public Expr {
public:
  MatchExpr(Symbol Scrutinee, std::span<const MatchArm> Arms, SourceLoc Loc)
      : Expr(ExprKind::Match, Loc), Scrutinee(Scrutinee), Arms(Arms) {}

  Symbol scrutinee() const { return Scrutinee; }
  std::span<const MatchArm> arms() const { return Arms; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Match; }

private:
  Symbol Scrutinee;
  std::span<const MatchArm> Arms;
};

/// A constructor application `C(e1..en)`, optionally carrying a reuse
/// token variable (`Con@ru(...)`, Section 2.4). At runtime, if the token
/// is NULL the cell is allocated fresh; otherwise the token's memory is
/// reused in place.
class ConExpr : public Expr {
public:
  ConExpr(CtorId Ctor, std::span<const Expr *const> Args, Symbol ReuseToken,
          SourceLoc Loc)
      : Expr(ExprKind::Con, Loc), Ctor(Ctor), Args(Args),
        ReuseToken(ReuseToken) {}

  CtorId ctor() const { return Ctor; }
  std::span<const Expr *const> args() const { return Args; }
  /// Invalid symbol when this is a plain (non-reuse) allocation.
  Symbol reuseToken() const { return ReuseToken; }
  bool hasReuseToken() const { return ReuseToken.isValid(); }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Con; }

private:
  CtorId Ctor;
  std::span<const Expr *const> Args;
  Symbol ReuseToken;
};

/// A primitive operation over unboxed values.
class PrimExpr : public Expr {
public:
  PrimExpr(PrimOp Op, std::span<const Expr *const> Args, SourceLoc Loc)
      : Expr(ExprKind::Prim, Loc), Op(Op), Args(Args) {}

  PrimOp op() const { return Op; }
  std::span<const Expr *const> args() const { return Args; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Prim; }

private:
  PrimOp Op;
  std::span<const Expr *const> Args;
};

//===----------------------------------------------------------------------===//
// Internal reference-counting forms
//===----------------------------------------------------------------------===//

/// Common shape of the unary statement-like RC ops `op x; rest`.
class RcStmtExpr : public Expr {
public:
  Symbol var() const { return Var; }
  const Expr *rest() const { return Rest; }

  static bool classof(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef:
      return true;
    default:
      return false;
    }
  }

protected:
  RcStmtExpr(ExprKind K, Symbol Var, const Expr *Rest, SourceLoc Loc)
      : Expr(K, Loc), Var(Var), Rest(Rest) {}

private:
  Symbol Var;
  const Expr *Rest;
};

/// `dup x; rest`.
class DupExpr : public RcStmtExpr {
public:
  DupExpr(Symbol Var, const Expr *Rest, SourceLoc Loc)
      : RcStmtExpr(ExprKind::Dup, Var, Rest, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Dup; }
};

/// `drop x; rest` — the generic recursive drop.
class DropExpr : public RcStmtExpr {
public:
  DropExpr(Symbol Var, const Expr *Rest, SourceLoc Loc)
      : RcStmtExpr(ExprKind::Drop, Var, Rest, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Drop; }
};

/// `free x; rest` — releases the cell's memory without touching children.
/// Only valid when the cell is unique and its field ownership has been
/// transferred (drop specialization, Section 2.3).
class FreeExpr : public RcStmtExpr {
public:
  FreeExpr(Symbol Var, const Expr *Rest, SourceLoc Loc)
      : RcStmtExpr(ExprKind::Free, Var, Rest, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Free; }
};

/// `decref x; rest` — decrements without the zero check. Only valid on the
/// shared path of an is-unique test (drop specialization, Section 2.3).
class DecRefExpr : public RcStmtExpr {
public:
  DecRefExpr(Symbol Var, const Expr *Rest, SourceLoc Loc)
      : RcStmtExpr(ExprKind::DecRef, Var, Rest, Loc) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::DecRef; }
};

/// `if is-unique(x) then thenE else elseE` — expression-valued so the
/// drop-reuse specialization (Figure 1f) can bind its result.
class IsUniqueExpr : public Expr {
public:
  IsUniqueExpr(Symbol Var, const Expr *Then, const Expr *Else, SourceLoc Loc)
      : Expr(ExprKind::IsUnique, Loc), Var(Var), Then(Then), Else(Else) {}

  Symbol var() const { return Var; }
  const Expr *thenExpr() const { return Then; }
  const Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IsUnique;
  }

private:
  Symbol Var;
  const Expr *Then;
  const Expr *Else;
};

/// `val token = drop-reuse(x); rest` (Section 2.4). At runtime: if x is
/// unique, drop its children and yield its address as a token; otherwise
/// decrement and yield NULL.
class DropReuseExpr : public Expr {
public:
  DropReuseExpr(Symbol Var, Symbol Token, const Expr *Rest, SourceLoc Loc)
      : Expr(ExprKind::DropReuse, Loc), Var(Var), Token(Token), Rest(Rest) {}

  Symbol var() const { return Var; }
  Symbol token() const { return Token; }
  const Expr *rest() const { return Rest; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::DropReuse;
  }

private:
  Symbol Var;
  Symbol Token;
  const Expr *Rest;
};

/// `&x` — x's cell address as a reuse token. Only valid where x is known
/// unique and logically freed (then-branch of a specialized drop-reuse).
class ReuseAddrExpr : public Expr {
public:
  ReuseAddrExpr(Symbol Var, SourceLoc Loc)
      : Expr(ExprKind::ReuseAddr, Loc), Var(Var) {}

  Symbol var() const { return Var; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::ReuseAddr;
  }

private:
  Symbol Var;
};

/// The NULL reuse token.
class NullTokenExpr : public Expr {
public:
  explicit NullTokenExpr(SourceLoc Loc) : Expr(ExprKind::NullToken, Loc) {}

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::NullToken;
  }
};

/// `if token == NULL then thenE else elseE` (reuse specialization, 2.5).
class IsNullTokenExpr : public Expr {
public:
  IsNullTokenExpr(Symbol Token, const Expr *Then, const Expr *Else,
                  SourceLoc Loc)
      : Expr(ExprKind::IsNullToken, Loc), Token(Token), Then(Then),
        Else(Else) {}

  Symbol token() const { return Token; }
  /// Taken when the token IS null (must allocate fresh).
  const Expr *thenExpr() const { return Then; }
  /// Taken when the token is a reusable cell (fast path).
  const Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::IsNullToken;
  }

private:
  Symbol Token;
  const Expr *Then;
  const Expr *Else;
};

/// `token->field[index] := value; rest` — writes one field of the cell a
/// non-null token designates (reuse specialization, Section 2.5).
class SetFieldExpr : public Expr {
public:
  SetFieldExpr(Symbol Token, uint32_t Index, const Expr *Value,
               const Expr *Rest, SourceLoc Loc)
      : Expr(ExprKind::SetField, Loc), Token(Token), Index(Index),
        Value(Value), Rest(Rest) {}

  Symbol token() const { return Token; }
  uint32_t index() const { return Index; }
  const Expr *value() const { return Value; }
  const Expr *rest() const { return Rest; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::SetField;
  }

private:
  Symbol Token;
  uint32_t Index;
  const Expr *Value;
  const Expr *Rest;
};

/// A non-null token used as the resulting constructor value; sets the
/// cell's tag to \p Ctor (reuse specialization fast path, Section 2.5).
///
/// `keptFields()` lists the pattern binders whose values remain in the
/// reused cell's unwritten fields. They have no runtime effect (the cell
/// keeps both the value and its reference), but they statically consume
/// the binders' ownership, keeping the linear accounting exact.
class TokenValueExpr : public Expr {
public:
  TokenValueExpr(Symbol Token, CtorId Ctor, std::span<const Symbol> Kept,
                 SourceLoc Loc)
      : Expr(ExprKind::TokenValue, Loc), Token(Token), Ctor(Ctor),
        Kept(Kept) {}

  Symbol token() const { return Token; }
  CtorId ctor() const { return Ctor; }
  std::span<const Symbol> keptFields() const { return Kept; }

  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::TokenValue;
  }

private:
  Symbol Token;
  CtorId Ctor;
  std::span<const Symbol> Kept;
};

} // namespace perceus

#endif // PERCEUS_IR_EXPR_H
