//===- perceus/Perceus.cpp - Precise dup/drop insertion ---------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "perceus/Perceus.h"

#include "analysis/FreeVars.h"
#include "ir/Builder.h"
#include "support/Casting.h"

#include <cassert>

using namespace perceus;

namespace {

/// True when \p E always evaluates to unit (so a discarding sequence
/// needs no drop of the discarded value).
bool producesUnit(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Lit:
    return cast<LitExpr>(E)->value().Kind == LitKind::Unit;
  case ExprKind::Prim: {
    PrimOp Op = cast<PrimExpr>(E)->op();
    return Op == PrimOp::PrintLn || Op == PrimOp::MarkShared ||
           Op == PrimOp::Abort || Op == PrimOp::RefSet;
  }
  case ExprKind::Seq:
    return producesUnit(cast<SeqExpr>(E)->second());
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Perceus insertion (Figure 8)
//===----------------------------------------------------------------------===//

class PerceusInserter {
public:
  PerceusInserter(Program &P, const BorrowSignatures *Borrow)
      : P(P), B(P), Borrow(Borrow) {}

  void runOnFunction(FuncId F) {
    FunctionDecl &Fn = P.function(F);
    assert(Fn.Body && "function has no body");
    // Function entry: Gamma = owned params that occur free in the body;
    // unused owned parameters are dropped immediately (the function-level
    // analogue of rule slam-drop). Borrowed parameters (Section 6
    // extension) live in Delta: the caller retains ownership, so they
    // are never consumed nor dropped here.
    const VarSet &BodyFree = FV.freeVars(Fn.Body);
    VarSet Gamma, Delta;
    for (size_t I = 0; I != Fn.Params.size(); ++I) {
      Symbol Pm = Fn.Params[I];
      if (isBorrowedParam(F, I))
        Delta.insert(Pm);
      else if (BodyFree.contains(Pm))
        Gamma.insert(Pm);
    }
    const Expr *Body = transform(Fn.Body, Delta, Gamma);
    for (auto It = Fn.Params.rbegin(); It != Fn.Params.rend(); ++It)
      if (!BodyFree.contains(*It) && !Delta.contains(*It))
        Body = B.drop(*It, Body);
    P.setBody(F, Body);
  }

  bool isBorrowedParam(FuncId F, size_t I) const {
    return Borrow && I < (*Borrow)[F].size() && (*Borrow)[F][I];
  }

private:
  /// The syntax-directed derivation `Delta | Gamma |-s e ~> e'`.
  const Expr *transform(const Expr *E, const VarSet &Delta,
                        const VarSet &Gamma) {
#ifndef NDEBUG
    const VarSet &Free = FV.freeVars(E);
    assert(Gamma.minus(Free).empty() && "Gamma must be within fv(e)");
    assert(Free.minus(Delta.unite(Gamma)).empty() &&
           "fv(e) must be within Delta,Gamma");
    assert(Delta.intersect(Gamma).empty() && "Delta and Gamma overlap");
#endif
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Global:
      assert(Gamma.empty() && "leaf with owned variables");
      return E;

    case ExprKind::Var: {
      Symbol X = cast<VarExpr>(E)->name();
      if (Gamma.contains(X)) { // [svar]: consume the owned reference
        assert(Gamma.size() == 1 && "svar with extra owned variables");
        return E;
      }
      return B.dup(X, E, E->loc()); // [svar-dup]: borrow needs a dup
    }

    case ExprKind::Lam: {
      // [slam] / [slam-drop].
      const auto *L = cast<LamExpr>(E);
      VarSet Ys;
      for (Symbol C : L->captures())
        Ys.insert(C);
      VarSet Delta1 = Ys.minus(Gamma); // borrowed captures need a dup
      assert(Gamma.minus(Ys).empty() && "owned vars not captured by lambda");

      const VarSet &BodyFree = FV.freeVars(L->body());
      VarSet BodyOwned = Ys; // every capture is free in the body
      for (Symbol Pm : L->params())
        if (BodyFree.contains(Pm))
          BodyOwned.insert(Pm);
      const Expr *Body = transform(L->body(), VarSet(), BodyOwned);
      for (auto It = L->params().rbegin(); It != L->params().rend(); ++It)
        if (!BodyFree.contains(*It))
          Body = B.drop(*It, Body, E->loc());

      const Expr *Result =
          B.lamWithId(L->lamId(), L->params(), L->captures(), Body, E->loc());
      // Wrap dups so they print in ascending order.
      std::vector<Symbol> Dups(Delta1.begin(), Delta1.end());
      for (auto It = Dups.rbegin(); It != Dups.rend(); ++It)
        Result = B.dup(*It, Result, E->loc());
      return Result;
    }

    case ExprKind::App: {
      // [sapp] generalized to n-ary: ownership is claimed right-to-left
      // so dups happen as late as possible; earlier components borrow
      // the owned sets of later ones.
      const auto *A = cast<AppExpr>(E);
      const auto *G = dyn_cast<GlobalExpr>(A->fn());

      // Section 6 extension: direct calls at borrowed positions.
      if (Borrow && G) {
        const std::vector<bool> &Sig = (*Borrow)[G->func()];
        bool AnyBorrowed = false;
        bool NeedHoist = false;
        for (size_t I = 0; I != A->args().size() && I < Sig.size(); ++I) {
          if (!Sig[I])
            continue;
          AnyBorrowed = true;
          if (!isa<VarExpr>(A->args()[I]))
            NeedHoist = true;
        }
        if (NeedHoist) {
          // Normalize complex borrowed arguments to let-bound variables
          // (pre-insertion IR), then transform the whole let chain.
          std::vector<const Expr *> Args(A->args().begin(), A->args().end());
          std::vector<std::pair<Symbol, const Expr *>> Hoisted;
          for (size_t I = 0; I != Args.size() && I < Sig.size(); ++I) {
            if (!Sig[I] || isa<VarExpr>(Args[I]))
              continue;
            Symbol Tmp = P.symbols().fresh("barg");
            Hoisted.push_back({Tmp, Args[I]});
            Args[I] = B.var(Tmp, E->loc());
          }
          const Expr *NewApp =
              B.app(A->fn(),
                    std::span<const Expr *const>(Args.data(), Args.size()),
                    E->loc());
          for (size_t I = Hoisted.size(); I-- > 0;)
            NewApp = B.let(Hoisted[I].first, Hoisted[I].second, NewApp,
                           E->loc());
          // No cache invalidation: the rewritten nodes are fresh, and
          // callers hold references into the memo table.
          return transform(NewApp, Delta, Gamma);
        }
        if (AnyBorrowed) {
          // Borrowed variable arguments: the caller keeps ownership. If
          // this was the variable's last owned use, it is dropped right
          // after the call returns (losing strict garbage-freedom for
          // the call's duration — the paper's stated trade-off).
          VarSet BorrowArgs;
          for (size_t I = 0; I != A->args().size() && I < Sig.size(); ++I)
            if (Sig[I])
              BorrowArgs.insert(cast<VarExpr>(A->args()[I])->name());
          VarSet PostDrop = Gamma.intersect(BorrowArgs);
          VarSet Gamma2 = Gamma.minus(PostDrop);
          VarSet Delta2 = Delta.unite(PostDrop);

          std::vector<const Expr *> Comps;
          Comps.push_back(A->fn());
          for (const Expr *Arg : A->args())
            Comps.push_back(Arg);
          std::vector<bool> PassThrough(Comps.size(), false);
          for (size_t I = 0; I != A->args().size() && I < Sig.size(); ++I)
            if (Sig[I])
              PassThrough[I + 1] = true;
          std::vector<const Expr *> Out =
              splitAndTransform(Comps, Delta2, Gamma2, &PassThrough);
          const Expr *Call =
              B.app(Out[0],
                    std::span<const Expr *const>(Out.data() + 1,
                                                 Out.size() - 1),
                    E->loc());
          if (PostDrop.empty())
            return Call;
          Symbol R = P.symbols().fresh("bres");
          const Expr *Rest = B.var(R, E->loc());
          std::vector<Symbol> Drops(PostDrop.begin(), PostDrop.end());
          for (auto It = Drops.rbegin(); It != Drops.rend(); ++It)
            Rest = B.drop(*It, Rest, E->loc());
          return B.let(R, Call, Rest, E->loc());
        }
      }

      std::vector<const Expr *> Comps;
      Comps.push_back(A->fn());
      for (const Expr *Arg : A->args())
        Comps.push_back(Arg);
      std::vector<const Expr *> Out = splitAndTransform(Comps, Delta, Gamma);
      return B.app(Out[0],
                   std::span<const Expr *const>(Out.data() + 1,
                                                Out.size() - 1),
                   E->loc());
    }

    case ExprKind::Con: {
      // [scon].
      const auto *C = cast<ConExpr>(E);
      assert(!C->hasReuseToken() && "reuse tokens appear only after reuse "
                                    "analysis");
      std::vector<const Expr *> Comps(C->args().begin(), C->args().end());
      std::vector<const Expr *> Out = splitAndTransform(Comps, Delta, Gamma);
      return B.con(C->ctor(),
                   std::span<const Expr *const>(Out.data(), Out.size()),
                   Symbol(), E->loc());
    }

    case ExprKind::Prim: {
      const auto *Pr = cast<PrimExpr>(E);
      std::vector<const Expr *> Comps(Pr->args().begin(), Pr->args().end());
      std::vector<const Expr *> Out = splitAndTransform(Comps, Delta, Gamma);
      return B.prim(Pr->op(),
                    std::span<const Expr *const>(Out.data(), Out.size()),
                    E->loc());
    }

    case ExprKind::Let: {
      // [sbind] / [sbind-drop].
      const auto *L = cast<LetExpr>(E);
      const VarSet &BodyFree = FV.freeVars(L->body());
      bool Used = BodyFree.contains(L->name());
      VarSet BodyClaim = BodyFree;
      BodyClaim.erase(L->name());
      VarSet Gamma2 = Gamma.intersect(BodyClaim);
      const Expr *Bound =
          transform(L->bound(), Delta.unite(Gamma2), Gamma.minus(Gamma2));
      VarSet BodyOwned = Gamma2;
      if (Used)
        BodyOwned.insert(L->name());
      const Expr *Body = transform(L->body(), Delta, BodyOwned);
      if (!Used)
        Body = B.drop(L->name(), Body, E->loc());
      return B.let(L->name(), Bound, Body, E->loc());
    }

    case ExprKind::Seq: {
      // `a; b` is `val tmp = a; b` with tmp unused (sbind-drop), so the
      // discarded value is dropped and cannot leak. When `a` is provably
      // unit-valued the binding is elided.
      const auto *S = cast<SeqExpr>(E);
      VarSet Gamma2 = Gamma.intersect(FV.freeVars(S->second()));
      const Expr *First =
          transform(S->first(), Delta.unite(Gamma2), Gamma.minus(Gamma2));
      const Expr *Second = transform(S->second(), Delta, Gamma2);
      if (producesUnit(S->first()))
        return B.seq(First, Second, E->loc());
      Symbol Tmp = P.symbols().fresh("seq");
      return B.let(Tmp, First, B.drop(Tmp, Second, E->loc()), E->loc());
    }

    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      VarSet BranchFree =
          FV.freeVars(I->thenExpr()).unite(FV.freeVars(I->elseExpr()));
      VarSet GammaBr = Gamma.intersect(BranchFree);
      const Expr *Cond =
          transform(I->cond(), Delta.unite(GammaBr), Gamma.minus(GammaBr));
      const Expr *Then = transformBranch(I->thenExpr(), Delta, GammaBr);
      const Expr *Else = transformBranch(I->elseExpr(), Delta, GammaBr);
      return B.iff(Cond, Then, Else, E->loc());
    }

    case ExprKind::Match: {
      // [smatch]: binders that the arm uses are dup'ed at arm entry, the
      // scrutinee is dropped if the arm no longer needs it, and owned
      // variables dead in this arm are dropped (Gamma'_i).
      const auto *M = cast<MatchExpr>(E);
      Symbol X = M->scrutinee();
      bool OwnedScrutinee = Gamma.contains(X);
      std::vector<MatchArm> Arms;
      for (const MatchArm &Arm : M->arms()) {
        const VarSet &BodyFree = FV.freeVars(Arm.Body);
        VarSet ArmOwned = Gamma;
        VarSet Binders;
        for (Symbol Bv : Arm.Binders) {
          ArmOwned.insert(Bv);
          Binders.insert(Bv);
        }
        VarSet GammaI = ArmOwned.intersect(BodyFree);
        VarSet DropSet = ArmOwned.minus(GammaI);

        // Section 6 extension: if the scrutinee outlives this arm (it is
        // borrowed, or still owned by the body), binders whose uses are
        // all borrow-compatible can themselves stay borrowed — no dup at
        // arm entry at all (e.g. the fields of a borrowed fold).
        VarSet ArmDelta = Delta;
        if (Borrow) {
          // Only when the scrutinee is itself borrowed (alive for the
          // whole enclosing scope) is a borrowed binder unconditionally
          // safe; an owned-but-live scrutinee could be consumed between
          // two binder uses.
          bool ScrutAlive = !OwnedScrutinee;
          if (ScrutAlive) {
            for (Symbol Bv : Arm.Binders) {
              if (GammaI.contains(Bv) &&
                  onlyBorrowUses(P, Arm.Body, Bv, *Borrow)) {
                GammaI.erase(Bv);
                ArmDelta.insert(Bv);
              }
            }
          }
        }

        const Expr *Body = transform(Arm.Body, ArmDelta, GammaI);

        // Emit: dup used binders; drop scrutinee; drop dead owned vars.
        // (Built in reverse since each op wraps the rest.)
        std::vector<Symbol> Drops;
        if (OwnedScrutinee && DropSet.contains(X))
          Drops.push_back(X);
        for (Symbol Z : DropSet)
          if (Z != X && !Binders.contains(Z))
            Drops.push_back(Z);
        for (auto It = Drops.rbegin(); It != Drops.rend(); ++It)
          Body = B.drop(*It, Body, E->loc());
        for (size_t BI = Arm.Binders.size(); BI-- > 0;)
          if (GammaI.contains(Arm.Binders[BI]))
            Body = B.dup(Arm.Binders[BI], Body, E->loc());

        MatchArm NewArm = Arm;
        NewArm.Body = Body;
        Arms.push_back(NewArm);
      }
      return B.match(X, std::span<const MatchArm>(Arms.data(), Arms.size()),
                     E->loc());
    }

    default:
      assert(false && "RC instruction in pre-insertion IR");
      return E;
    }
  }

  /// Handles the shared Gamma'_i-drop logic for if-branches.
  const Expr *transformBranch(const Expr *Branch, const VarSet &Delta,
                              const VarSet &GammaBr) {
    VarSet GammaI = GammaBr.intersect(FV.freeVars(Branch));
    VarSet DropSet = GammaBr.minus(GammaI);
    const Expr *Out = transform(Branch, Delta, GammaI);
    std::vector<Symbol> Drops(DropSet.begin(), DropSet.end());
    for (auto It = Drops.rbegin(); It != Drops.rend(); ++It)
      Out = B.drop(*It, Out, Branch->loc());
    return Out;
  }

  /// Splits Gamma over \p Comps (evaluated left-to-right; ownership
  /// claimed right-to-left) and transforms each component. Components
  /// flagged in \p PassThrough are whole-variable borrowed arguments:
  /// they are emitted verbatim (no dup, no ownership claim).
  std::vector<const Expr *> splitAndTransform(
      const std::vector<const Expr *> &Comps, const VarSet &Delta,
      const VarSet &Gamma, const std::vector<bool> *PassThrough = nullptr) {
    size_t N = Comps.size();
    auto isPass = [&](size_t I) {
      return PassThrough && (*PassThrough)[I];
    };
    std::vector<VarSet> Gammas(N);
    VarSet Rem = Gamma;
    for (size_t I = N; I-- > 0;) {
      if (isPass(I))
        continue;
      Gammas[I] = Rem.intersect(FV.freeVars(Comps[I]));
      Rem.eraseAll(Gammas[I]);
    }
    assert(Rem.empty() && "owned variable free in no component");
    std::vector<const Expr *> Out(N);
    VarSet Later; // owned sets of later components, borrowed by earlier
    for (size_t I = N; I-- > 0;) {
      if (isPass(I)) {
        Out[I] = Comps[I];
        continue;
      }
      VarSet D = Delta.unite(Later).minus(Gammas[I]);
      Out[I] = transform(Comps[I], D, Gammas[I]);
      Later.insertAll(Gammas[I]);
    }
    return Out;
  }

  Program &P;
  IRBuilder B;
  FreeVarAnalysis FV;
  const BorrowSignatures *Borrow;
};

//===----------------------------------------------------------------------===//
// Scoped-lifetime RC insertion (the Section 2.2 baseline)
//===----------------------------------------------------------------------===//

class ScopedInserter {
public:
  ScopedInserter(Program &P) : P(P), B(P) {}

  void runOnFunction(FuncId F) {
    FunctionDecl &Fn = P.function(F);
    assert(Fn.Body && "function has no body");
    const Expr *Body = transform(Fn.Body);
    P.setBody(F, wrapScopeEnd(Body, Fn.Params));
  }

private:
  /// `val r = body; drop x1; ...; drop xn; r` — release a scope's
  /// bindings only after its result is computed.
  const Expr *wrapScopeEnd(const Expr *Body, std::span<const Symbol> Owned) {
    if (Owned.empty())
      return Body;
    Symbol R = P.symbols().fresh("ret");
    const Expr *Out = B.var(R);
    for (size_t I = Owned.size(); I-- > 0;)
      Out = B.drop(Owned[I], Out);
    return B.let(R, Body, Out);
  }

  const Expr *transform(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Global:
      return E;

    case ExprKind::Var:
      // Every use copies its reference, shared_ptr style.
      return B.dup(cast<VarExpr>(E)->name(), E, E->loc());

    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      const Expr *Body = transform(L->body());
      std::vector<Symbol> Owned(L->params().begin(), L->params().end());
      Owned.insert(Owned.end(), L->captures().begin(), L->captures().end());
      Body = wrapScopeEnd(Body,
                          std::span<const Symbol>(Owned.data(), Owned.size()));
      const Expr *Result =
          B.lamWithId(L->lamId(), L->params(), L->captures(), Body, E->loc());
      // Closure construction copies each captured reference.
      for (size_t I = L->captures().size(); I-- > 0;)
        Result = B.dup(L->captures()[I], Result, E->loc());
      return Result;
    }

    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      std::vector<const Expr *> Args;
      for (const Expr *Arg : A->args())
        Args.push_back(transform(Arg));
      return B.app(transform(A->fn()),
                   std::span<const Expr *const>(Args.data(), Args.size()),
                   E->loc());
    }

    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      std::vector<const Expr *> Args;
      for (const Expr *Arg : C->args())
        Args.push_back(transform(Arg));
      return B.con(C->ctor(),
                   std::span<const Expr *const>(Args.data(), Args.size()),
                   Symbol(), E->loc());
    }

    case ExprKind::Prim: {
      const auto *Pr = cast<PrimExpr>(E);
      std::vector<const Expr *> Args;
      for (const Expr *Arg : Pr->args())
        Args.push_back(transform(Arg));
      return B.prim(Pr->op(),
                    std::span<const Expr *const>(Args.data(), Args.size()),
                    E->loc());
    }

    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      Symbol X = L->name();
      const Expr *Body = transform(L->body());
      Body = wrapScopeEnd(Body, std::span<const Symbol>(&X, 1));
      return B.let(X, transform(L->bound()), Body, E->loc());
    }

    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      const Expr *First = transform(S->first());
      const Expr *Second = transform(S->second());
      if (producesUnit(S->first()))
        return B.seq(First, Second, E->loc());
      Symbol Tmp = P.symbols().fresh("seq");
      const Expr *Body = wrapScopeEnd(Second, std::span<const Symbol>(&Tmp, 1));
      return B.let(Tmp, First, Body, E->loc());
    }

    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      return B.iff(transform(I->cond()), transform(I->thenExpr()),
                   transform(I->elseExpr()), E->loc());
    }

    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      std::vector<MatchArm> Arms;
      for (const MatchArm &Arm : M->arms()) {
        const Expr *Body = transform(Arm.Body);
        Body = wrapScopeEnd(Body, Arm.Binders);
        // Binding a field copies its reference.
        for (size_t I = Arm.Binders.size(); I-- > 0;)
          Body = B.dup(Arm.Binders[I], Body, E->loc());
        MatchArm NewArm = Arm;
        NewArm.Body = Body;
        Arms.push_back(NewArm);
      }
      return B.match(M->scrutinee(),
                     std::span<const MatchArm>(Arms.data(), Arms.size()),
                     E->loc());
    }

    default:
      assert(false && "RC instruction in pre-insertion IR");
      return E;
    }
  }

  Program &P;
  IRBuilder B;
};

} // namespace

void perceus::insertPerceus(Program &P, const BorrowSignatures *Borrow) {
  PerceusInserter I(P, Borrow);
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    I.runOnFunction(F);
}

void perceus::insertPerceus(Program &P, FuncId F,
                            const BorrowSignatures *Borrow) {
  PerceusInserter I(P, Borrow);
  I.runOnFunction(F);
}

void perceus::insertScopedRc(Program &P) {
  ScopedInserter I(P);
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    I.runOnFunction(F);
}

void perceus::insertScopedRc(Program &P, FuncId F) {
  ScopedInserter I(P);
  I.runOnFunction(F);
}
