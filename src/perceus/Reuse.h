//===- perceus/Reuse.h - Reuse analysis and specialization ------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reuse analysis (Section 2.4 of the paper): pairs dropped matched cells
/// with same-size constructor allocations, turning `drop x` into
/// `val ru = drop-reuse(x)` and the paired allocation into `Con@ru(...)`,
/// so a unique cell is updated in place instead of freed and reallocated.
///
/// Reuse specialization (Section 2.5): rewrites `Con@ru(...)` whose token
/// originates from the *same* constructor into an explicit null-token
/// dispatch that assigns only the fields that changed.
///
/// Both run on RC-instrumented IR (after Perceus insertion).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PERCEUS_REUSE_H
#define PERCEUS_PERCEUS_REUSE_H

#include "ir/Program.h"

namespace perceus {

/// Runs reuse analysis on every function (or one function).
void runReuseAnalysis(Program &P);
void runReuseAnalysis(Program &P, FuncId F);

/// Runs reuse specialization on every function (or one function).
/// Must run after reuse analysis and before drop specialization.
void runReuseSpecialization(Program &P);
void runReuseSpecialization(Program &P, FuncId F);

} // namespace perceus

#endif // PERCEUS_PERCEUS_REUSE_H
