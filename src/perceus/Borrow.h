//===- perceus/Borrow.h - Borrow inference (Section 6) ----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work extension (Section 6): "integrate selective
/// borrowing into Perceus — this would make certain programs no longer
/// garbage free, but we believe it could deliver further performance
/// improvements if judiciously applied." Ullrich and de Moura's Lean
/// implementation supports borrowed parameters; here we *infer* them.
///
/// A parameter is inferred borrowed when
///
///   (1) every occurrence is a borrow-compatible use: the scrutinee of a
///       match, or the whole argument of a direct call at a position that
///       is itself borrowed (computed as a greatest fixpoint over the
///       call graph); and
///   (2) the function allocates no reusable (arity > 0) constructor — the
///       "judicious" part: dropping an owned parameter is what funds
///       reuse analysis (Section 2.4), so borrowing a parameter in an
///       allocating function would trade guaranteed in-place reuse for
///       saved refcounts, a bad trade on the paper's benchmarks.
///
/// This captures the classic wins: predicates (`is-red`, `safe`), folds
/// (`count-true`, `sum`, `len`, `size`), and lookups run with *zero*
/// reference-count operations, while `ins`/`map` keep full reuse.
///
/// With borrowing enabled, a borrowed argument stays live in the caller
/// for the duration of the call, so the heap is no longer garbage free
/// in the paper's strict sense — soundness (and the empty-heap-at-exit
/// property) is preserved and tested.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PERCEUS_BORROW_H
#define PERCEUS_PERCEUS_BORROW_H

#include "ir/Program.h"

#include <vector>

namespace perceus {

/// Per-function, per-parameter borrow flags.
using BorrowSignatures = std::vector<std::vector<bool>>;

/// Infers borrowed parameters for every function of \p P (pre-insertion
/// IR only).
BorrowSignatures inferBorrowSignatures(const Program &P);

/// True when every free occurrence of \p X in \p E is borrow-compatible
/// under \p Sigs (see the file comment). Exposed for binder-level reuse
/// by the insertion pass and for the unit tests.
bool onlyBorrowUses(const Program &P, const Expr *E, Symbol X,
                    const BorrowSignatures &Sigs);

} // namespace perceus

#endif // PERCEUS_PERCEUS_BORROW_H
