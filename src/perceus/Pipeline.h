//===- perceus/Pipeline.h - Pass pipeline and configurations ----*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the Perceus passes into the configurations the paper
/// evaluates (Section 4):
///
///   perceus       insertion + reuse + reuse-spec + drop-spec + fusion
///   perceus-noopt insertion only ("Koka, no-opt": reuse analysis and
///                 drop/reuse specialization disabled)
///   scoped-rc     lexical-lifetime RC (the Swift / shared_ptr baseline)
///   gc            no RC instructions at all (bodies stay erased); the
///                 abstract machine pairs this with the tracing collector
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PERCEUS_PIPELINE_H
#define PERCEUS_PERCEUS_PIPELINE_H

#include "ir/Program.h"

#include <string>
#include <vector>

namespace perceus {

/// How reference-count instructions are inserted.
enum class RcMode { None, Perceus, Scoped };

/// Which passes run.
struct PassConfig {
  RcMode Mode = RcMode::Perceus;
  bool EnableReuse = true;     ///< reuse analysis (2.4)
  bool EnableReuseSpec = true; ///< reuse specialization (2.5)
  bool EnableDropSpec = true;  ///< drop + drop-reuse specialization (2.3)
  bool EnableFusion = true;    ///< dup push-down + fusion (2.3/2.4)
  bool EnableBorrow = false;   ///< borrow inference (Section 6 extension;
                               ///< trades strict garbage-freedom for
                               ///< fewer RC operations)

  /// Full Perceus (the paper's "Koka" configuration).
  static PassConfig perceusFull() { return {}; }

  /// Full Perceus plus inferred borrowing (the Section 6 extension).
  static PassConfig perceusBorrow() {
    PassConfig C;
    C.EnableBorrow = true;
    return C;
  }

  /// Precise RC without the optimizations (the paper's "Koka, no-opt").
  static PassConfig perceusNoOpt() {
    PassConfig C;
    C.EnableReuse = C.EnableReuseSpec = C.EnableDropSpec = C.EnableFusion =
        false;
    return C;
  }

  /// Scoped-lifetime RC (Section 2.2 baseline; Swift / shared_ptr).
  static PassConfig scoped() {
    PassConfig C;
    C.Mode = RcMode::Scoped;
    C.EnableReuse = C.EnableReuseSpec = C.EnableDropSpec = C.EnableFusion =
        false;
    return C;
  }

  /// No RC instructions; for use with the tracing collector.
  static PassConfig gc() {
    PassConfig C;
    C.Mode = RcMode::None;
    C.EnableReuse = C.EnableReuseSpec = C.EnableDropSpec = C.EnableFusion =
        false;
    return C;
  }

  /// Short name used in benchmark tables.
  const char *name() const;
};

/// Runs the configured pipeline over all functions of \p P.
void runPipeline(Program &P, const PassConfig &Config);

/// Static instruction counts over a whole program's IR — the per-pass
/// pipeline statistics behind `perc --pass-stats`. "Static" means
/// occurrences in the IR, not executions; the dynamic counterpart lives
/// in HeapStats / RunResult.
struct IrOpCounts {
  uint64_t Dups = 0;       ///< dup instructions
  uint64_t Drops = 0;      ///< drop instructions
  uint64_t Frees = 0;      ///< free instructions
  uint64_t DecRefs = 0;    ///< decref instructions
  uint64_t IsUniques = 0;  ///< is-unique tests
  uint64_t DropReuses = 0; ///< drop-reuse bindings
  uint64_t ReuseCons = 0;  ///< Con@ru constructors
  uint64_t TokenOps = 0;   ///< &x / NULL / token tests / field writes /
                           ///< token values
  uint64_t Nodes = 0;      ///< all expression nodes

  uint64_t rcTotal() const {
    return Dups + Drops + Frees + DecRefs + IsUniques + DropReuses;
  }
};

/// Walks every function body of \p P once.
IrOpCounts countIrOps(const Program &P);

/// The static counts captured after one pipeline stage.
struct PassStat {
  std::string Pass;  ///< "input", "perceus insertion (2.2)", ...
  IrOpCounts Counts; ///< program-wide counts after the stage ran
};

/// Like runPipeline, but snapshots countIrOps before the first pass
/// ("input") and after each pass that actually ran.
std::vector<PassStat> runPipelineWithStats(Program &P,
                                           const PassConfig &Config);

/// One captured intermediate stage of the pipeline for one function.
struct StageDump {
  std::string Stage; ///< e.g. "dup/drop insertion (2.2)"
  std::string Text;  ///< pretty-printed function
};

/// Runs the full-Perceus pipeline on function \p F only, capturing the
/// pretty-printed function after each stage — the Figure 1 reproduction.
std::vector<StageDump> runPipelineWithStages(Program &P, FuncId F);

} // namespace perceus

#endif // PERCEUS_PERCEUS_PIPELINE_H
