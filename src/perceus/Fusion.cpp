//===- perceus/Fusion.cpp - Dup push-down and dup/drop fusion ----------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "perceus/Fusion.h"

#include "analysis/VarSet.h"
#include "ir/Builder.h"
#include "ir/Rewrite.h"
#include "support/Casting.h"

#include <vector>

using namespace perceus;

namespace {

/// One straight-line RC instruction.
struct RcOp {
  ExprKind Kind;
  Symbol Var;
  SourceLoc Loc;
};

class Fuser {
public:
  Fuser(Program &P) : P(P), B(P) {}

  void runOnFunction(FuncId F) {
    FunctionDecl &Fn = P.function(F);
    P.setBody(F, fuse(Fn.Body));
  }

  const Expr *fuse(const Expr *E) {
    // 1. Collect the maximal leading chain of RC statements.
    std::vector<RcOp> Chain;
    const Expr *Tail = E;
    while (isa<RcStmtExpr>(Tail)) {
      const auto *R = cast<RcStmtExpr>(Tail);
      Chain.push_back({Tail->kind(), R->var(), Tail->loc()});
      Tail = R->rest();
    }

    // 2. Cancel dup/drop pairs: each drop matches the earliest preceding
    // unmatched dup of the same variable.
    std::vector<bool> Removed(Chain.size(), false);
    for (size_t J = 0; J != Chain.size(); ++J) {
      if (Chain[J].Kind != ExprKind::Drop)
        continue;
      for (size_t I = 0; I != J; ++I) {
        if (Removed[I] || Chain[I].Kind != ExprKind::Dup ||
            Chain[I].Var != Chain[J].Var)
          continue;
        Removed[I] = Removed[J] = true;
        break;
      }
    }
    std::vector<RcOp> Ops;
    for (size_t I = 0; I != Chain.size(); ++I)
      if (!Removed[I])
        Ops.push_back(Chain[I]);

    // 3. Dispatch on the tail form.
    const IsUniqueExpr *Uniq = nullptr;
    const Expr *Continuation = nullptr; // nullptr: no continuation
    enum { FormSeq, FormLet, FormBare, FormOther } Form = FormOther;
    Symbol LetToken;
    if (const auto *S = dyn_cast<SeqExpr>(Tail)) {
      if ((Uniq = dyn_cast<IsUniqueExpr>(S->first()))) {
        Form = FormSeq;
        Continuation = S->second();
      }
    } else if (const auto *L = dyn_cast<LetExpr>(Tail)) {
      if ((Uniq = dyn_cast<IsUniqueExpr>(L->bound()))) {
        Form = FormLet;
        LetToken = L->name();
        Continuation = L->body();
      }
    } else if ((Uniq = dyn_cast<IsUniqueExpr>(Tail))) {
      Form = FormBare;
    }

    const Expr *NewTail;
    if (Form != FormOther) {
      // Variables the unique path drops: dups of those are pushed into
      // both branches so they cancel on the fast path.
      VarSet ThenDrops;
      for (const Expr *T = Uniq->thenExpr(); isa<RcStmtExpr>(T);
           T = cast<RcStmtExpr>(T)->rest())
        if (T->kind() == ExprKind::Drop)
          ThenDrops.insert(cast<RcStmtExpr>(T)->var());

      std::vector<RcOp> Stay, Push, Sink;
      for (const RcOp &Op : Ops) {
        if (Op.Kind != ExprKind::Dup || Op.Var == Uniq->var()) {
          Stay.push_back(Op);
        } else if (ThenDrops.contains(Op.Var)) {
          Push.push_back(Op);
        } else if (Continuation) {
          Sink.push_back(Op); // delay past the test, toward its consumer
        } else {
          Push.push_back(Op);
        }
      }
      Ops = std::move(Stay);

      const Expr *Then = wrap(Push, Uniq->thenExpr());
      const Expr *Else = wrap(Push, Uniq->elseExpr());
      Then = fuse(Then);
      Else = fuse(Else);
      const Expr *NewUniq =
          B.isUnique(Uniq->var(), Then, Else, Uniq->loc());
      if (Form == FormSeq) {
        NewTail = B.seq(NewUniq, fuse(wrap(Sink, Continuation)),
                        Tail->loc());
      } else if (Form == FormLet) {
        NewTail = B.let(LetToken, NewUniq, fuse(wrap(Sink, Continuation)),
                        Tail->loc());
      } else {
        NewTail = NewUniq;
      }
    } else {
      NewTail = mapChildren(B, Tail, [&](const Expr *C) { return fuse(C); });
    }

    return wrap(Ops, NewTail);
  }

private:
  /// Wraps \p Ops (in order) around \p Rest.
  const Expr *wrap(const std::vector<RcOp> &Ops, const Expr *Rest) {
    const Expr *Out = Rest;
    for (size_t I = Ops.size(); I-- > 0;) {
      const RcOp &Op = Ops[I];
      switch (Op.Kind) {
      case ExprKind::Dup:
        Out = B.dup(Op.Var, Out, Op.Loc);
        break;
      case ExprKind::Drop:
        Out = B.drop(Op.Var, Out, Op.Loc);
        break;
      case ExprKind::Free:
        Out = B.freeCell(Op.Var, Out, Op.Loc);
        break;
      case ExprKind::DecRef:
        Out = B.decref(Op.Var, Out, Op.Loc);
        break;
      default:
        assert(false && "not an RC statement");
      }
    }
    return Out;
  }

  Program &P;
  IRBuilder B;
};

} // namespace

void perceus::runFusion(Program &P) {
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    runFusion(P, F);
}

void perceus::runFusion(Program &P, FuncId F) {
  Fuser F_(P);
  F_.runOnFunction(F);
}
