//===- perceus/Perceus.h - Precise dup/drop insertion -----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Perceus reference-count insertion algorithm: the syntax-directed
/// derivation of Figure 8 of the paper, implemented as an IR-to-IR pass.
/// Also provides the scoped-lifetime baseline inserter (the "many
/// compilers emit code similar to" strategy of Section 2.2: C++
/// shared_ptr / Swift-style lexical-scope reference counting).
///
/// Perceus invariants maintained during the derivation (Section 3.4):
///   (1) Delta and Gamma are disjoint;
///   (2) Gamma is a subset of fv(e);
///   (3) fv(e) is a subset of Delta union Gamma;
///   (4) every member of Delta, Gamma has multiplicity 1.
///
/// The output is precise ("garbage free"): dups are pushed to the leaves
/// of the derivation and drops are emitted as early as possible (right
/// after a binding or at the start of a branch).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PERCEUS_PERCEUS_H
#define PERCEUS_PERCEUS_PERCEUS_H

#include "ir/Program.h"
#include "perceus/Borrow.h"

namespace perceus {

/// Rewrites every function of \p P with precise Perceus dup/drop
/// instructions. Bodies must not already contain RC instructions.
/// With \p Borrow (from inferBorrowSignatures), borrowed parameters are
/// placed in the borrowed environment Delta instead of Gamma: callees
/// never consume them and call sites do not transfer ownership — the
/// Section 6 extension.
void insertPerceus(Program &P, const BorrowSignatures *Borrow = nullptr);

/// Rewrites one function.
void insertPerceus(Program &P, FuncId F,
                   const BorrowSignatures *Borrow = nullptr);

/// Rewrites every function of \p P with scoped-lifetime (lexical) RC:
/// every use copies (dup), every binding is released at the end of its
/// scope. No precision, no reuse — the baseline of Section 2.2.
void insertScopedRc(Program &P);

/// Rewrites one function with scoped-lifetime RC.
void insertScopedRc(Program &P, FuncId F);

} // namespace perceus

#endif // PERCEUS_PERCEUS_PERCEUS_H
