//===- perceus/Reuse.cpp - Reuse analysis and specialization ----------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "perceus/Reuse.h"

#include "analysis/FreeVars.h"
#include "ir/Builder.h"
#include "ir/Rewrite.h"
#include "support/Casting.h"

#include <unordered_map>

using namespace perceus;

namespace {

//===----------------------------------------------------------------------===//
// Reuse analysis
//===----------------------------------------------------------------------===//

class ReuseAnalyzer {
public:
  ReuseAnalyzer(Program &P) : P(P), B(P) {}

  void runOnFunction(FuncId F) {
    FunctionDecl &Fn = P.function(F);
    P.setBody(F, rewrite(Fn.Body));
  }

private:
  const Expr *rewrite(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      bool Changed = false;
      std::vector<MatchArm> Arms;
      for (const MatchArm &Arm : M->arms()) {
        MatchArm NewArm = Arm;
        if (Arm.Kind == ArmKind::Ctor) {
          // Inside this arm the scrutinee has a known shape.
          auto Saved = Shape.find(M->scrutinee());
          CtorId Old = Saved == Shape.end() ? InvalidId : Saved->second;
          Shape[M->scrutinee()] = Arm.Ctor;
          NewArm.Body = rewrite(Arm.Body);
          if (Old == InvalidId)
            Shape.erase(M->scrutinee());
          else
            Shape[M->scrutinee()] = Old;
        } else {
          NewArm.Body = rewrite(Arm.Body);
        }
        Changed |= NewArm.Body != Arm.Body;
        Arms.push_back(NewArm);
      }
      if (!Changed)
        return E;
      return B.match(M->scrutinee(),
                     std::span<const MatchArm>(Arms.data(), Arms.size()),
                     E->loc());
    }

    case ExprKind::Drop: {
      const auto *D = cast<DropExpr>(E);
      // Inner drops pair first (innermost pairing, as in Lean/Koka),
      // then this drop tries the remaining allocations.
      const Expr *Rest = rewrite(D->rest());
      auto It = Shape.find(D->var());
      if (It != Shape.end() && P.ctor(It->second).Arity > 0) {
        uint32_t Arity = P.ctor(It->second).Arity;
        Symbol Ru = P.symbols().fresh("ru");
        // Prefer pairing with the same constructor (better for reuse
        // specialization), then any same-size allocation.
        auto [WithToken, Used] =
            attach(Rest, Ru, Arity, It->second, /*SameCtorOnly=*/true);
        if (!Used)
          std::tie(WithToken, Used) =
              attach(Rest, Ru, Arity, It->second, /*SameCtorOnly=*/false);
        if (Used)
          return B.dropReuse(D->var(), Ru, WithToken, E->loc());
      }
      return Rest == D->rest() ? E : B.drop(D->var(), Rest, E->loc());
    }

    case ExprKind::Lam:
      // Reuse tokens cannot cross a closure boundary (the body runs in a
      // later activation), but the body gets its own analysis.
      return mapChildren(B, E,
                         [&](const Expr *C) { return rewrite(C); });

    default:
      return mapChildren(B, E,
                         [&](const Expr *C) { return rewrite(C); });
    }
  }

  /// Tries to attach reuse token \p Ru to a constructor allocation of
  /// arity \p Arity along every path of \p E. Branches without a use get
  /// an explicit `free ru` so the token cannot leak. Returns the new
  /// expression and whether the token was consumed (on all paths).
  std::pair<const Expr *, bool> attach(const Expr *E, Symbol Ru,
                                       uint32_t Arity, CtorId Origin,
                                       bool SameCtorOnly) {
    switch (E->kind()) {
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      // The cell itself is allocated after its arguments, but pairing
      // with the outermost eligible allocation keeps same-constructor
      // pairing stable under nesting (bal-left), so try self first.
      if (!C->hasReuseToken() && P.ctor(C->ctor()).Arity == Arity &&
          (!SameCtorOnly || C->ctor() == Origin)) {
        return {B.con(C->ctor(), C->args(), Ru, E->loc()), true};
      }
      for (size_t I = 0; I != C->args().size(); ++I) {
        auto [NewArg, Used] =
            attach(C->args()[I], Ru, Arity, Origin, SameCtorOnly);
        if (!Used)
          continue;
        std::vector<const Expr *> Args(C->args().begin(), C->args().end());
        Args[I] = NewArg;
        return {B.con(C->ctor(),
                      std::span<const Expr *const>(Args.data(), Args.size()),
                      C->reuseToken(), E->loc()),
                true};
      }
      return {E, false};
    }

    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      for (size_t I = 0; I != A->args().size(); ++I) {
        auto [NewArg, Used] =
            attach(A->args()[I], Ru, Arity, Origin, SameCtorOnly);
        if (!Used)
          continue;
        std::vector<const Expr *> Args(A->args().begin(), A->args().end());
        Args[I] = NewArg;
        return {B.app(A->fn(),
                      std::span<const Expr *const>(Args.data(), Args.size()),
                      E->loc()),
                true};
      }
      return {E, false};
    }

    case ExprKind::Prim: {
      const auto *Pr = cast<PrimExpr>(E);
      for (size_t I = 0; I != Pr->args().size(); ++I) {
        auto [NewArg, Used] =
            attach(Pr->args()[I], Ru, Arity, Origin, SameCtorOnly);
        if (!Used)
          continue;
        std::vector<const Expr *> Args(Pr->args().begin(), Pr->args().end());
        Args[I] = NewArg;
        return {B.prim(Pr->op(),
                       std::span<const Expr *const>(Args.data(), Args.size()),
                       E->loc()),
                true};
      }
      return {E, false};
    }

    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      auto [Bound, UsedB] = attach(L->bound(), Ru, Arity, Origin,
                                   SameCtorOnly);
      if (UsedB)
        return {B.let(L->name(), Bound, L->body(), E->loc()), true};
      auto [Body, UsedBody] =
          attach(L->body(), Ru, Arity, Origin, SameCtorOnly);
      if (UsedBody)
        return {B.let(L->name(), L->bound(), Body, E->loc()), true};
      return {E, false};
    }

    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      auto [First, UsedF] =
          attach(S->first(), Ru, Arity, Origin, SameCtorOnly);
      if (UsedF)
        return {B.seq(First, S->second(), E->loc()), true};
      auto [Second, UsedS] =
          attach(S->second(), Ru, Arity, Origin, SameCtorOnly);
      if (UsedS)
        return {B.seq(S->first(), Second, E->loc()), true};
      return {E, false};
    }

    case ExprKind::Dup:
    case ExprKind::Drop:
    case ExprKind::Free:
    case ExprKind::DecRef: {
      const auto *R = cast<RcStmtExpr>(E);
      auto [Rest, Used] = attach(R->rest(), Ru, Arity, Origin, SameCtorOnly);
      if (!Used)
        return {E, false};
      switch (E->kind()) {
      case ExprKind::Dup:
        return {B.dup(R->var(), Rest, E->loc()), true};
      case ExprKind::Drop:
        return {B.drop(R->var(), Rest, E->loc()), true};
      case ExprKind::Free:
        return {B.freeCell(R->var(), Rest, E->loc()), true};
      default:
        return {B.decref(R->var(), Rest, E->loc()), true};
      }
    }

    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      auto [Rest, Used] = attach(D->rest(), Ru, Arity, Origin, SameCtorOnly);
      if (!Used)
        return {E, false};
      return {B.dropReuse(D->var(), D->token(), Rest, E->loc()), true};
    }

    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      auto [Cond, UsedC] = attach(I->cond(), Ru, Arity, Origin, SameCtorOnly);
      if (UsedC)
        return {B.iff(Cond, I->thenExpr(), I->elseExpr(), E->loc()), true};
      auto [Then, UsedT] =
          attach(I->thenExpr(), Ru, Arity, Origin, SameCtorOnly);
      auto [Else, UsedE] =
          attach(I->elseExpr(), Ru, Arity, Origin, SameCtorOnly);
      if (!UsedT && !UsedE)
        return {E, false};
      if (!UsedT)
        Then = B.freeCell(Ru, Then, E->loc());
      if (!UsedE)
        Else = B.freeCell(Ru, Else, E->loc());
      return {B.iff(I->cond(), Then, Else, E->loc()), true};
    }

    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      std::vector<const Expr *> Bodies;
      bool Any = false;
      std::vector<bool> UsedArm;
      for (const MatchArm &Arm : M->arms()) {
        auto [Body, Used] = attach(Arm.Body, Ru, Arity, Origin, SameCtorOnly);
        Bodies.push_back(Body);
        UsedArm.push_back(Used);
        Any |= Used;
      }
      if (!Any)
        return {E, false};
      std::vector<MatchArm> Arms;
      for (size_t I = 0; I != M->arms().size(); ++I) {
        MatchArm NewArm = M->arms()[I];
        NewArm.Body =
            UsedArm[I] ? Bodies[I] : B.freeCell(Ru, Bodies[I], E->loc());
        Arms.push_back(NewArm);
      }
      return {B.match(M->scrutinee(),
                      std::span<const MatchArm>(Arms.data(), Arms.size()),
                      E->loc()),
              true};
    }

    default:
      // Leaves, lambdas (token must not escape into a closure), and
      // token forms: no attachment here.
      return {E, false};
    }
  }

  Program &P;
  IRBuilder B;
  std::unordered_map<Symbol, CtorId> Shape;
};

//===----------------------------------------------------------------------===//
// Reuse specialization
//===----------------------------------------------------------------------===//

class ReuseSpecializer {
public:
  ReuseSpecializer(Program &P) : P(P), B(P) {}

  void runOnFunction(FuncId F) {
    FunctionDecl &Fn = P.function(F);
    P.setBody(F, rewrite(Fn.Body));
  }

private:
  struct TokenOrigin {
    CtorId Ctor = InvalidId;
    std::span<const Symbol> Binders;
  };

  const Expr *rewrite(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      bool Changed = false;
      std::vector<MatchArm> Arms;
      for (const MatchArm &Arm : M->arms()) {
        MatchArm NewArm = Arm;
        if (Arm.Kind == ArmKind::Ctor) {
          auto Saved = Shape.find(M->scrutinee());
          bool Had = Saved != Shape.end();
          TokenOrigin Old = Had ? Saved->second : TokenOrigin();
          Shape[M->scrutinee()] = {Arm.Ctor, Arm.Binders};
          NewArm.Body = rewrite(Arm.Body);
          if (Had)
            Shape[M->scrutinee()] = Old;
          else
            Shape.erase(M->scrutinee());
        } else {
          NewArm.Body = rewrite(Arm.Body);
        }
        Changed |= NewArm.Body != Arm.Body;
        Arms.push_back(NewArm);
      }
      if (!Changed)
        return E;
      return B.match(M->scrutinee(),
                     std::span<const MatchArm>(Arms.data(), Arms.size()),
                     E->loc());
    }

    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      auto It = Shape.find(D->var());
      if (It != Shape.end())
        Tokens[D->token()] = It->second;
      const Expr *Rest = rewrite(D->rest());
      return Rest == D->rest() ? E
                               : B.dropReuse(D->var(), D->token(), Rest,
                                             E->loc());
    }

    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(E);
      // First rewrite the arguments themselves.
      const Expr *Rewritten =
          mapChildren(B, E, [&](const Expr *Ch) { return rewrite(Ch); });
      C = cast<ConExpr>(Rewritten);
      if (!C->hasReuseToken())
        return Rewritten;
      auto It = Tokens.find(C->reuseToken());
      if (It == Tokens.end() || It->second.Ctor != C->ctor())
        return Rewritten; // cross-constructor reuse: all fields change
      return specializeCon(C, It->second);
    }

    case ExprKind::Lam: {
      // Outer binders are out of scope inside a lambda body.
      std::unordered_map<Symbol, TokenOrigin> SavedShape;
      std::unordered_map<Symbol, TokenOrigin> SavedTokens;
      SavedShape.swap(Shape);
      SavedTokens.swap(Tokens);
      const Expr *Out =
          mapChildren(B, E, [&](const Expr *C) { return rewrite(C); });
      Shape.swap(SavedShape);
      Tokens.swap(SavedTokens);
      return Out;
    }

    default:
      return mapChildren(B, E, [&](const Expr *C) { return rewrite(C); });
    }
  }

  /// Is \p Arg the unchanged field \p Binder — either the bare variable
  /// (last use) or `dup b; b` (non-last use)?
  static bool isUnchangedField(const Expr *Arg, Symbol Binder, bool &HasDup) {
    if (const auto *V = dyn_cast<VarExpr>(Arg)) {
      HasDup = false;
      return V->name() == Binder;
    }
    if (const auto *D = dyn_cast<DupExpr>(Arg)) {
      if (D->var() != Binder)
        return false;
      if (const auto *V = dyn_cast<VarExpr>(D->rest())) {
        HasDup = true;
        return V->name() == Binder;
      }
    }
    return false;
  }

  const Expr *specializeCon(const ConExpr *C, const TokenOrigin &Origin) {
    auto Args = C->args();
    size_t N = Args.size();
    assert(Origin.Binders.size() == N && "token origin arity mismatch");

    FreeVarAnalysis FV;
    std::vector<bool> Unchanged(N, false);
    std::vector<bool> HasDup(N, false);
    unsigned NumUnchanged = 0;
    for (size_t I = 0; I != N; ++I) {
      bool Dup = false;
      if (!isUnchangedField(Args[I], Origin.Binders[I], Dup))
        continue;
      // A dup'ed unchanged field may not be hoisted past a later argument
      // that consumes the binder; demote it to "changed" in that case.
      if (Dup) {
        bool Escapes = false;
        for (size_t J = I + 1; J != N && !Escapes; ++J)
          Escapes = FV.freeVars(Args[J]).contains(Origin.Binders[I]);
        if (Escapes)
          continue;
      }
      Unchanged[I] = true;
      HasDup[I] = Dup;
      ++NumUnchanged;
    }
    // Specialization only pays off when a field can be kept (2.5).
    if (NumUnchanged == 0)
      return C;

    // Hoist the changed arguments (in evaluation order), then dispatch on
    // the token.
    std::vector<Symbol> Hoisted(N);
    std::vector<const Expr *> FreshArgs(N);
    for (size_t I = 0; I != N; ++I) {
      if (Unchanged[I]) {
        FreshArgs[I] = Args[I]; // evaluated only on the fresh path
        continue;
      }
      Hoisted[I] = P.symbols().fresh("fld");
      FreshArgs[I] = B.var(Hoisted[I], C->loc());
    }

    // Fresh path: allocate normally (token is NULL, nothing to release).
    const Expr *FreshPath =
        B.con(C->ctor(),
              std::span<const Expr *const>(FreshArgs.data(), FreshArgs.size()),
              Symbol(), C->loc());

    // Reuse path: assign only the changed fields; keep the rest.
    std::vector<Symbol> Kept;
    for (size_t I = 0; I != N; ++I)
      if (Unchanged[I])
        Kept.push_back(Origin.Binders[I]);
    const Expr *ReusePath =
        B.tokenValue(C->reuseToken(), C->ctor(),
                     std::span<const Symbol>(Kept.data(), Kept.size()),
                     C->loc());
    for (size_t I = N; I-- > 0;) {
      if (Unchanged[I]) {
        if (HasDup[I])
          ReusePath = B.dup(Origin.Binders[I], ReusePath, C->loc());
        continue;
      }
      ReusePath = B.setField(C->reuseToken(), static_cast<uint32_t>(I),
                             B.var(Hoisted[I], C->loc()), ReusePath,
                             C->loc());
    }

    const Expr *Out =
        B.isNullToken(C->reuseToken(), FreshPath, ReusePath, C->loc());
    for (size_t I = N; I-- > 0;)
      if (!Unchanged[I])
        Out = B.let(Hoisted[I], Args[I], Out, C->loc());
    return Out;
  }

  Program &P;
  IRBuilder B;
  std::unordered_map<Symbol, TokenOrigin> Shape;
  std::unordered_map<Symbol, TokenOrigin> Tokens;
};

} // namespace

void perceus::runReuseAnalysis(Program &P) {
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    runReuseAnalysis(P, F);
}

void perceus::runReuseAnalysis(Program &P, FuncId F) {
  ReuseAnalyzer A(P);
  A.runOnFunction(F);
}

void perceus::runReuseSpecialization(Program &P) {
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    runReuseSpecialization(P, F);
}

void perceus::runReuseSpecialization(Program &P, FuncId F) {
  ReuseSpecializer S(P);
  S.runOnFunction(F);
}
