//===- perceus/Pipeline.cpp - Pass pipeline ----------------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "perceus/Pipeline.h"

#include "ir/Printer.h"
#include "perceus/DropSpec.h"
#include "perceus/Fusion.h"
#include "perceus/Borrow.h"
#include "perceus/Perceus.h"
#include "perceus/Reuse.h"

using namespace perceus;

const char *PassConfig::name() const {
  switch (Mode) {
  case RcMode::None:
    return "gc";
  case RcMode::Scoped:
    return "scoped-rc";
  case RcMode::Perceus:
    break;
  }
  if (EnableBorrow)
    return "perceus-borrow";
  if (EnableReuse && EnableDropSpec)
    return "perceus";
  if (!EnableReuse && !EnableDropSpec && !EnableFusion)
    return "perceus-noopt";
  return "perceus-custom";
}

void perceus::runPipeline(Program &P, const PassConfig &Config) {
  switch (Config.Mode) {
  case RcMode::None:
    return; // erased program: the tracing collector manages memory
  case RcMode::Scoped:
    insertScopedRc(P);
    return;
  case RcMode::Perceus:
    break;
  }
  if (Config.EnableBorrow) {
    BorrowSignatures Sigs = inferBorrowSignatures(P);
    insertPerceus(P, &Sigs);
  } else {
    insertPerceus(P);
  }
  if (Config.EnableReuse)
    runReuseAnalysis(P);
  if (Config.EnableReuse && Config.EnableReuseSpec)
    runReuseSpecialization(P);
  if (Config.EnableDropSpec)
    runDropSpecialization(P);
  if (Config.EnableFusion)
    runFusion(P);
}

std::vector<StageDump> perceus::runPipelineWithStages(Program &P, FuncId F) {
  std::vector<StageDump> Dumps;
  auto dump = [&](const char *Stage) {
    Dumps.push_back({Stage, printFunction(P, F)});
  };

  dump("(a) original");
  insertPerceus(P, F);
  dump("(b) dup/drop insertion (2.2)");
  const Expr *Inserted = P.function(F).Body;

  // Left column of Figure 1: drop specialization without reuse.
  runDropSpecialization(P, F);
  dump("(c) drop specialization (2.3)");
  runFusion(P, F);
  dump("(d) push down dup and fusion (2.3)");

  // Right column of Figure 1: the reuse pipeline, from (b) again.
  P.setBody(F, Inserted);
  runReuseAnalysis(P, F);
  dump("(e) reuse token insertion (2.4)");
  runDropSpecialization(P, F);
  dump("(f) drop-reuse specialization (2.4)");
  runFusion(P, F);
  dump("(g) push down dup and fusion (2.4)");

  return Dumps;
}
