//===- perceus/Pipeline.cpp - Pass pipeline ----------------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "perceus/Pipeline.h"

#include "ir/Printer.h"
#include "perceus/DropSpec.h"
#include "perceus/Fusion.h"
#include "perceus/Borrow.h"
#include "perceus/Perceus.h"
#include "perceus/Reuse.h"

using namespace perceus;

const char *PassConfig::name() const {
  switch (Mode) {
  case RcMode::None:
    return "gc";
  case RcMode::Scoped:
    return "scoped-rc";
  case RcMode::Perceus:
    break;
  }
  if (EnableBorrow)
    return "perceus-borrow";
  if (EnableReuse && EnableDropSpec)
    return "perceus";
  if (!EnableReuse && !EnableDropSpec && !EnableFusion)
    return "perceus-noopt";
  return "perceus-custom";
}

IrOpCounts perceus::countIrOps(const Program &P) {
  IrOpCounts C;
  std::vector<const Expr *> Work;
  auto push = [&Work](const Expr *E) {
    if (E)
      Work.push_back(E);
  };
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    push(P.function(F).Body);
  while (!Work.empty()) {
    const Expr *E = Work.back();
    Work.pop_back();
    ++C.Nodes;
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Var:
    case ExprKind::Global:
      break;
    case ExprKind::Lam:
      push(cast<LamExpr>(E)->body());
      break;
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      push(A->fn());
      for (const Expr *Arg : A->args())
        push(Arg);
      break;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      push(L->bound());
      push(L->body());
      break;
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      push(S->first());
      push(S->second());
      break;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      push(I->cond());
      push(I->thenExpr());
      push(I->elseExpr());
      break;
    }
    case ExprKind::Match:
      for (const MatchArm &Arm : cast<MatchExpr>(E)->arms())
        push(Arm.Body);
      break;
    case ExprKind::Con: {
      const auto *Con = cast<ConExpr>(E);
      if (Con->hasReuseToken())
        ++C.ReuseCons;
      for (const Expr *Arg : Con->args())
        push(Arg);
      break;
    }
    case ExprKind::Prim:
      for (const Expr *Arg : cast<PrimExpr>(E)->args())
        push(Arg);
      break;
    case ExprKind::Dup:
      ++C.Dups;
      push(cast<RcStmtExpr>(E)->rest());
      break;
    case ExprKind::Drop:
      ++C.Drops;
      push(cast<RcStmtExpr>(E)->rest());
      break;
    case ExprKind::Free:
      ++C.Frees;
      push(cast<RcStmtExpr>(E)->rest());
      break;
    case ExprKind::DecRef:
      ++C.DecRefs;
      push(cast<RcStmtExpr>(E)->rest());
      break;
    case ExprKind::IsUnique: {
      ++C.IsUniques;
      const auto *U = cast<IsUniqueExpr>(E);
      push(U->thenExpr());
      push(U->elseExpr());
      break;
    }
    case ExprKind::DropReuse:
      ++C.DropReuses;
      push(cast<DropReuseExpr>(E)->rest());
      break;
    case ExprKind::ReuseAddr:
    case ExprKind::NullToken:
      ++C.TokenOps;
      break;
    case ExprKind::IsNullToken: {
      ++C.TokenOps;
      const auto *N = cast<IsNullTokenExpr>(E);
      push(N->thenExpr());
      push(N->elseExpr());
      break;
    }
    case ExprKind::SetField: {
      ++C.TokenOps;
      const auto *S = cast<SetFieldExpr>(E);
      push(S->value());
      push(S->rest());
      break;
    }
    case ExprKind::TokenValue:
      ++C.TokenOps;
      break;
    }
  }
  return C;
}

namespace {

/// Shared pass sequencing for runPipeline and runPipelineWithStats;
/// \p Stats is null on the plain (no-snapshot) path.
void runPasses(Program &P, const PassConfig &Config,
               std::vector<PassStat> *Stats) {
  auto snap = [&](const char *Pass) {
    if (Stats)
      Stats->push_back({Pass, countIrOps(P)});
  };
  snap("input");
  switch (Config.Mode) {
  case RcMode::None:
    return; // erased program: the tracing collector manages memory
  case RcMode::Scoped:
    insertScopedRc(P);
    snap("scoped rc insertion (2.2)");
    return;
  case RcMode::Perceus:
    break;
  }
  if (Config.EnableBorrow) {
    BorrowSignatures Sigs = inferBorrowSignatures(P);
    insertPerceus(P, &Sigs);
    snap("perceus insertion + borrow (6)");
  } else {
    insertPerceus(P);
    snap("perceus insertion (2.2)");
  }
  if (Config.EnableReuse) {
    runReuseAnalysis(P);
    snap("reuse analysis (2.4)");
  }
  if (Config.EnableReuse && Config.EnableReuseSpec) {
    runReuseSpecialization(P);
    snap("reuse specialization (2.5)");
  }
  if (Config.EnableDropSpec) {
    runDropSpecialization(P);
    snap("drop specialization (2.3)");
  }
  if (Config.EnableFusion) {
    runFusion(P);
    snap("dup push-down + fusion (2.3)");
  }
}

} // namespace

void perceus::runPipeline(Program &P, const PassConfig &Config) {
  runPasses(P, Config, nullptr);
}

std::vector<PassStat> perceus::runPipelineWithStats(Program &P,
                                                    const PassConfig &Config) {
  std::vector<PassStat> Stats;
  runPasses(P, Config, &Stats);
  return Stats;
}

std::vector<StageDump> perceus::runPipelineWithStages(Program &P, FuncId F) {
  std::vector<StageDump> Dumps;
  auto dump = [&](const char *Stage) {
    Dumps.push_back({Stage, printFunction(P, F)});
  };

  dump("(a) original");
  insertPerceus(P, F);
  dump("(b) dup/drop insertion (2.2)");
  const Expr *Inserted = P.function(F).Body;

  // Left column of Figure 1: drop specialization without reuse.
  runDropSpecialization(P, F);
  dump("(c) drop specialization (2.3)");
  runFusion(P, F);
  dump("(d) push down dup and fusion (2.3)");

  // Right column of Figure 1: the reuse pipeline, from (b) again.
  P.setBody(F, Inserted);
  runReuseAnalysis(P, F);
  dump("(e) reuse token insertion (2.4)");
  runDropSpecialization(P, F);
  dump("(f) drop-reuse specialization (2.4)");
  runFusion(P, F);
  dump("(g) push down dup and fusion (2.4)");

  return Dumps;
}
