//===- perceus/DropSpec.cpp - Drop specialization ----------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "perceus/DropSpec.h"

#include "analysis/FreeVars.h"
#include "ir/Builder.h"
#include "ir/Rewrite.h"
#include "support/Casting.h"

#include <unordered_map>

using namespace perceus;

namespace {

class DropSpecializer {
public:
  DropSpecializer(Program &P) : P(P), B(P) {}

  void runOnFunction(FuncId F) {
    FunctionDecl &Fn = P.function(F);
    P.setBody(F, rewrite(Fn.Body));
  }

private:
  struct ShapeInfo {
    CtorId Ctor = InvalidId;
    std::span<const Symbol> Binders;
    bool ChildrenUsed = false;
  };

  const Expr *rewrite(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(E);
      bool Changed = false;
      std::vector<MatchArm> Arms;
      for (const MatchArm &Arm : M->arms()) {
        MatchArm NewArm = Arm;
        if (Arm.Kind == ArmKind::Ctor && !Arm.Binders.empty()) {
          ShapeInfo Info;
          Info.Ctor = Arm.Ctor;
          Info.Binders = Arm.Binders;
          const VarSet &BodyFree = FV.freeVars(Arm.Body);
          for (Symbol Bv : Arm.Binders)
            if (BodyFree.contains(Bv)) {
              Info.ChildrenUsed = true;
              break;
            }
          auto Saved = Shape.find(M->scrutinee());
          bool Had = Saved != Shape.end();
          ShapeInfo Old = Had ? Saved->second : ShapeInfo();
          Shape[M->scrutinee()] = Info;
          NewArm.Body = rewrite(Arm.Body);
          if (Had)
            Shape[M->scrutinee()] = Old;
          else
            Shape.erase(M->scrutinee());
        } else {
          NewArm.Body = rewrite(Arm.Body);
        }
        Changed |= NewArm.Body != Arm.Body;
        Arms.push_back(NewArm);
      }
      if (!Changed)
        return E;
      return B.match(M->scrutinee(),
                     std::span<const MatchArm>(Arms.data(), Arms.size()),
                     E->loc());
    }

    case ExprKind::Drop: {
      const auto *D = cast<DropExpr>(E);
      const Expr *Rest = rewrite(D->rest());
      auto It = Shape.find(D->var());
      if (It == Shape.end() || !It->second.ChildrenUsed)
        return Rest == D->rest() ? E : B.drop(D->var(), Rest, E->loc());
      // if is-unique(x) then { drop children; free x } else decref x
      const ShapeInfo &Info = It->second;
      const Expr *Then = B.freeCell(D->var(), B.unit(E->loc()), E->loc());
      for (size_t I = Info.Binders.size(); I-- > 0;)
        Then = B.drop(Info.Binders[I], Then, E->loc());
      const Expr *Else = B.decref(D->var(), B.unit(E->loc()), E->loc());
      return B.seq(B.isUnique(D->var(), Then, Else, E->loc()), Rest,
                   E->loc());
    }

    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(E);
      const Expr *Rest = rewrite(D->rest());
      auto It = Shape.find(D->var());
      if (It == Shape.end())
        return Rest == D->rest()
                   ? E
                   : B.dropReuse(D->var(), D->token(), Rest, E->loc());
      // val ru = if is-unique(x) then { drop children; &x }
      //          else { decref x; NULL }
      const ShapeInfo &Info = It->second;
      const Expr *Then = B.reuseAddr(D->var(), E->loc());
      for (size_t I = Info.Binders.size(); I-- > 0;)
        Then = B.drop(Info.Binders[I], Then, E->loc());
      const Expr *Else =
          B.decref(D->var(), B.nullToken(E->loc()), E->loc());
      return B.let(D->token(),
                   B.isUnique(D->var(), Then, Else, E->loc()), Rest,
                   E->loc());
    }

    case ExprKind::Lam: {
      // A lambda body runs in its own activation: the enclosing match
      // binders are not in scope there, so specialization must not use
      // the outer shapes.
      std::unordered_map<Symbol, ShapeInfo> Saved;
      Saved.swap(Shape);
      const Expr *Out =
          mapChildren(B, E, [&](const Expr *C) { return rewrite(C); });
      Shape.swap(Saved);
      return Out;
    }

    default:
      return mapChildren(B, E, [&](const Expr *C) { return rewrite(C); });
    }
  }

  Program &P;
  IRBuilder B;
  FreeVarAnalysis FV;
  std::unordered_map<Symbol, ShapeInfo> Shape;
};

} // namespace

void perceus::runDropSpecialization(Program &P) {
  for (FuncId F = 0; F != P.numFunctions(); ++F)
    runDropSpecialization(P, F);
}

void perceus::runDropSpecialization(Program &P, FuncId F) {
  DropSpecializer S(P);
  S.runOnFunction(F);
}
