//===- perceus/DropSpec.h - Drop specialization -----------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drop specialization (Section 2.3): inlines `drop x` at a constructor
/// known from the enclosing match into an is-unique test —
///
///   drop x; e   ==>   if is-unique(x) then { drop children; free x }
///                     else decref x;
///                     e
///
/// and specializes `drop-reuse` the same way (Section 2.4, Figure 1f):
///
///   val ru = drop-reuse(x); e   ==>
///   val ru = if is-unique(x) then { drop children; &x }
///            else { decref x; NULL };
///   e
///
/// Specialization is applied only where the children are used in the
/// branch (the paper skips e.g. the Nil branch), so the generic recursive
/// drop handles the rest.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PERCEUS_DROPSPEC_H
#define PERCEUS_PERCEUS_DROPSPEC_H

#include "ir/Program.h"

namespace perceus {

/// Runs drop specialization on every function (or one function).
void runDropSpecialization(Program &P);
void runDropSpecialization(Program &P, FuncId F);

} // namespace perceus

#endif // PERCEUS_PERCEUS_DROPSPEC_H
