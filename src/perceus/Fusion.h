//===- perceus/Fusion.h - Dup push-down and dup/drop fusion -----*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "push down dup and fusion" step of Sections 2.3/2.4 (Figures 1d
/// and 1g):
///
///   * cancels matching `dup y; ...; drop y` pairs within straight-line
///     sequences of RC instructions (sound because all dups precede all
///     drops in Perceus output, so reference counts never transiently
///     reach zero);
///   * pushes remaining dups into the branches of a following is-unique
///     test when the unique path drops them (so they cancel there,
///     leaving the fast path free of RC operations);
///   * sinks unrelated dups past the is-unique test toward their
///     consumers ("delay a dup as late as possible").
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PERCEUS_FUSION_H
#define PERCEUS_PERCEUS_FUSION_H

#include "ir/Program.h"

namespace perceus {

/// Runs dup push-down + fusion on every function (or one function).
void runFusion(Program &P);
void runFusion(Program &P, FuncId F);

} // namespace perceus

#endif // PERCEUS_PERCEUS_FUSION_H
