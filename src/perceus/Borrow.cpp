//===- perceus/Borrow.cpp - Borrow inference (Section 6) ----------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "perceus/Borrow.h"

#include "analysis/FreeVars.h"
#include "support/Casting.h"

using namespace perceus;

namespace {

/// Does \p E contain a reusable (arity > 0) constructor application?
bool allocatesReusableCells(const Program &P, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Lit:
  case ExprKind::Var:
  case ExprKind::Global:
    return false;
  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    if (P.ctor(C->ctor()).Arity > 0)
      return true;
    for (const Expr *Arg : C->args())
      if (allocatesReusableCells(P, Arg))
        return true;
    return false;
  }
  case ExprKind::Lam:
    // Closures allocate, but in a later activation; what matters for
    // the reuse trade-off is this function's own allocations. Still,
    // creating a closure *stores* values, which onlyBorrowUses already
    // rejects, so we only need to scan for constructor allocations.
    return allocatesReusableCells(P, cast<LamExpr>(E)->body());
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    if (allocatesReusableCells(P, A->fn()))
      return true;
    for (const Expr *Arg : A->args())
      if (allocatesReusableCells(P, Arg))
        return true;
    return false;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    return allocatesReusableCells(P, L->bound()) ||
           allocatesReusableCells(P, L->body());
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    return allocatesReusableCells(P, S->first()) ||
           allocatesReusableCells(P, S->second());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return allocatesReusableCells(P, I->cond()) ||
           allocatesReusableCells(P, I->thenExpr()) ||
           allocatesReusableCells(P, I->elseExpr());
  }
  case ExprKind::Match: {
    for (const MatchArm &Arm : cast<MatchExpr>(E)->arms())
      if (allocatesReusableCells(P, Arm.Body))
        return true;
    return false;
  }
  case ExprKind::Prim: {
    for (const Expr *Arg : cast<PrimExpr>(E)->args())
      if (allocatesReusableCells(P, Arg))
        return true;
    return false;
  }
  default:
    // RC instructions never appear pre-insertion.
    return true; // be conservative on unexpected forms
  }
}

class BorrowUseChecker {
public:
  BorrowUseChecker(const Program &P, Symbol X, const BorrowSignatures &Sigs)
      : P(P), X(X), Sigs(Sigs) {}

  /// True when every free occurrence of X in E is borrow-compatible.
  bool check(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Global:
      return true;
    case ExprKind::Var:
      // A bare use: the value flows somewhere we cannot see — owned.
      return cast<VarExpr>(E)->name() != X;
    case ExprKind::Match: {
      // Scrutinizing a borrowed value is fine; the arms are checked
      // (binders shadowing X cannot occur thanks to unique binders).
      for (const MatchArm &Arm : cast<MatchExpr>(E)->arms())
        if (!check(Arm.Body))
          return false;
      return true;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      // Direct calls may receive X at a borrowed position.
      const auto *G = dyn_cast<GlobalExpr>(A->fn());
      if (!check(A->fn()))
        return false;
      for (size_t I = 0; I != A->args().size(); ++I) {
        const Expr *Arg = A->args()[I];
        if (G && I < Sigs[G->func()].size() && Sigs[G->func()][I]) {
          if (const auto *V = dyn_cast<VarExpr>(Arg); V && V->name() == X)
            continue; // whole-argument borrowed use
        }
        if (!check(Arg))
          return false;
      }
      return true;
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      return check(L->bound()) && check(L->body());
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return check(S->first()) && check(S->second());
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      return check(I->cond()) && check(I->thenExpr()) &&
             check(I->elseExpr());
    }
    case ExprKind::Con: {
      // Storing into a constructor is an owned use of whatever is
      // stored; nested occurrences are checked recursively (a bare Var
      // occurrence in an argument is rejected by the Var case).
      for (const Expr *Arg : cast<ConExpr>(E)->args())
        if (!check(Arg))
          return false;
      return true;
    }
    case ExprKind::Prim: {
      // Primitives either consume (tshare) or apply to unboxed values;
      // treat any occurrence as owned (rejected by the Var case).
      for (const Expr *Arg : cast<PrimExpr>(E)->args())
        if (!check(Arg))
          return false;
      return true;
    }
    case ExprKind::Lam:
      // Capturing X stores it in a closure: owned.
      return !FreeVarAnalysis().freeVars(E).contains(X);
    default:
      return false; // RC forms: not expected pre-insertion
    }
  }

private:
  const Program &P;
  Symbol X;
  const BorrowSignatures &Sigs;
};

} // namespace

bool perceus::onlyBorrowUses(const Program &P, const Expr *E, Symbol X,
                             const BorrowSignatures &Sigs) {
  return BorrowUseChecker(P, X, Sigs).check(E);
}

BorrowSignatures perceus::inferBorrowSignatures(const Program &P) {
  BorrowSignatures Sigs(P.numFunctions());
  std::vector<bool> Candidate(P.numFunctions());
  for (FuncId F = 0; F != P.numFunctions(); ++F) {
    const FunctionDecl &Fn = P.function(F);
    // The judicious-application heuristic: allocating functions keep all
    // parameters owned so reuse analysis keeps its fuel.
    Candidate[F] = Fn.Body && !allocatesReusableCells(P, Fn.Body);
    Sigs[F].assign(Fn.Params.size(), Candidate[F]);
  }

  // Greatest fixpoint: start optimistic, strike parameters whose uses
  // are not borrow-compatible under the current signatures.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (FuncId F = 0; F != P.numFunctions(); ++F) {
      if (!Candidate[F])
        continue;
      const FunctionDecl &Fn = P.function(F);
      for (size_t I = 0; I != Fn.Params.size(); ++I) {
        if (!Sigs[F][I])
          continue;
        if (!onlyBorrowUses(P, Fn.Body, Fn.Params[I], Sigs)) {
          Sigs[F][I] = false;
          Changed = true;
        }
      }
    }
  }
  return Sigs;
}
