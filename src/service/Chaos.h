//===- service/Chaos.h - Seeded fault injection at service scale -*-C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chaos configuration for the request service: threads the existing
/// FaultInjector machinery through the service boundaries so a soak run
/// can inject compile-time allocation faults, per-request heap OOM, fuel
/// and deadline squeezes, and worker stalls — all deterministically from
/// one seed. The plan for request N is a pure function of (Seed, N), so
/// a failing soak reproduces from its seed alone.
///
/// Chaos never changes *what* the service promises, only how often the
/// hard paths run: every injected fault must still produce a structured
/// trap or rejection, a clean unwind, and an empty worker heap — the
/// same garbage-free invariant the paper guarantees for normal traps.
/// Seed == 0 disables everything; the service's default config injects
/// nothing.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SERVICE_CHAOS_H
#define PERCEUS_SERVICE_CHAOS_H

#include "support/Rng.h"

#include <cstdint>

namespace perceus {

/// Probabilities are per-mille (0..1000) so configs stay integral and
/// deterministic across platforms. All zero = that fault class off.
struct ChaosConfig {
  uint64_t Seed = 0; ///< 0 disables chaos entirely

  /// Per-request probability (per-mille) of failing one allocation
  /// mid-run: the request gets failNth(k) for a small seeded k, driving
  /// the OOM unwind path.
  uint32_t AllocFaultPerMille = 0;
  /// Per-request probability (per-mille) of squeezing the fuel limit to
  /// a small seeded value, driving the out-of-fuel trap.
  uint32_t FuelSqueezePerMille = 0;
  /// Per-request probability (per-mille) of imposing a 1ms deadline,
  /// driving the deadline trap on anything nontrivial.
  uint32_t DeadlineSqueezePerMille = 0;
  /// Per-request probability (per-mille) of stalling the worker briefly
  /// before the run, widening queue-delay windows (shed-while-queued,
  /// breaker cooldowns) that are otherwise hard to hit.
  uint32_t WorkerStallPerMille = 0;
  /// Max stall per injection, in microseconds.
  uint32_t WorkerStallMaxUs = 500;
  /// Probability (per-mille) that a *compile* on a cache miss fails with
  /// an injected arena allocation fault. The failure is transient: it is
  /// reported as a compile-error response but never cached, so the next
  /// request for the key recompiles cleanly (distinguishing injected
  /// faults from genuinely bad sources, which are negative-cached).
  uint32_t CompileFaultPerMille = 0;

  bool enabled() const {
    return Seed != 0 &&
           (AllocFaultPerMille | FuelSqueezePerMille |
            DeadlineSqueezePerMille | WorkerStallPerMille |
            CompileFaultPerMille) != 0;
  }

  /// A moderately nasty preset used by the chaos soak suite.
  static ChaosConfig defaults(uint64_t Seed) {
    ChaosConfig C;
    C.Seed = Seed;
    C.AllocFaultPerMille = 100;    // 10% of requests lose an allocation
    C.FuelSqueezePerMille = 80;    // 8% run on fumes
    C.DeadlineSqueezePerMille = 60;// 6% get a 1ms deadline
    C.WorkerStallPerMille = 50;    // 5% of workers naps up to 500us
    C.CompileFaultPerMille = 50;   // 5% of cache-miss compiles fail once
    return C;
  }
};

/// What chaos does to one specific request, fully determined by
/// (config, request id). Zero fields mean "leave that axis alone".
struct ChaosPlan {
  uint64_t FailAllocNth = 0;   ///< failNth override when nonzero
  uint64_t FuelLimit = 0;      ///< fuel clamp when nonzero
  uint64_t DeadlineMs = 0;     ///< deadline clamp when nonzero
  uint32_t StallUs = 0;        ///< pre-run worker stall
  bool FailCompile = false;    ///< inject a transient compile fault

  bool any() const {
    return FailAllocNth || FuelLimit || DeadlineMs || StallUs || FailCompile;
  }
};

/// Derives the plan for request \p Id. Each request gets an independent
/// SplitMix64 stream keyed off the seed and the id, so plans do not
/// depend on arrival order or worker interleaving.
inline ChaosPlan planChaos(const ChaosConfig &C, uint64_t Id) {
  ChaosPlan P;
  if (!C.enabled())
    return P;
  Rng R(C.Seed ^ (Id * 0x9e3779b97f4a7c15ULL) ^ 0xc6a4a7935bd1e995ULL);
  if (C.AllocFaultPerMille && R.chance(C.AllocFaultPerMille, 1000))
    P.FailAllocNth = 1 + R.below(64); // fail early: small programs alloc few
  if (C.FuelSqueezePerMille && R.chance(C.FuelSqueezePerMille, 1000))
    P.FuelLimit = 1 + R.below(256);
  if (C.DeadlineSqueezePerMille && R.chance(C.DeadlineSqueezePerMille, 1000))
    P.DeadlineMs = 1;
  if (C.WorkerStallPerMille && R.chance(C.WorkerStallPerMille, 1000) &&
      C.WorkerStallMaxUs)
    P.StallUs = static_cast<uint32_t>(1 + R.below(C.WorkerStallMaxUs));
  if (C.CompileFaultPerMille && R.chance(C.CompileFaultPerMille, 1000))
    P.FailCompile = true;
  return P;
}

} // namespace perceus

#endif // PERCEUS_SERVICE_CHAOS_H
