//===- service/TenantGovernor.cpp - Per-tenant admission policy -----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/TenantGovernor.h"

#include "service/Service.h"

#include <algorithm>

using namespace perceus;

namespace {

/// Clamps one RunLimits field: a nonzero cap lowers the requested value
/// and imposes itself when the request asked for unlimited (0).
template <typename T> void clampField(T &Value, T Cap) {
  if (Cap != 0)
    Value = Value == 0 ? Cap : std::min(Value, Cap);
}

} // namespace

void TenantGovernor::setDefaultPolicy(const TenantPolicy &P) {
  std::lock_guard<std::mutex> Lock(M);
  Default = P;
}

void TenantGovernor::setPolicy(const std::string &Tenant,
                               const TenantPolicy &P) {
  std::lock_guard<std::mutex> Lock(M);
  State &S = Tenants[Tenant];
  S.Policy = P;
  S.HasPolicy = true;
  // Re-prime the bucket on the next admit so a rate change takes effect
  // with a full burst, not a stale token count.
  S.BucketPrimed = false;
}

TenantGovernor::State &TenantGovernor::stateFor(const std::string &Tenant) {
  return Tenants[Tenant];
}

TenantGovernor::Decision TenantGovernor::admit(const std::string &Tenant,
                                               TimePoint Now,
                                               size_t TenantQueued,
                                               size_t TotalQueued,
                                               size_t QueueCapacity) {
  std::lock_guard<std::mutex> Lock(M);
  State &S = stateFor(Tenant);
  const TenantPolicy &P = policyFor(S);
  ++S.C.Submitted;

  Decision D;

  // In-flight cap: queued + running requests this tenant already owns.
  if (P.MaxInFlight != 0 && S.InFlight >= P.MaxInFlight) {
    D.Reject = RejectKind::TenantQuota;
    D.Error = "tenant at max in-flight requests";
    // The slot frees when one of the tenant's own requests finishes;
    // its expected wait is its own average run time, best known to the
    // caller — hint one scheduling quantum.
    D.RetryAfterMs = 5;
    ++S.C.RejectedTenantQuota;
    return D;
  }

  // Fair-share shed under pressure: when the global queue is at or past
  // 3/4 capacity, a tenant holding more than QueueCapacity / active
  // tenants slots is refused even if its own quota admits it. This is
  // what keeps one abusive tenant from starving the polite ones.
  if (QueueCapacity != 0 && TotalQueued * 4 >= QueueCapacity * 3) {
    uint64_t Sharers = std::max<uint64_t>(1, ActiveTenants);
    size_t FairShare = std::max<size_t>(1, QueueCapacity / Sharers);
    if (TenantQueued >= FairShare) {
      D.Reject = RejectKind::TenantQuota;
      D.Error = "tenant over fair queue share under pressure";
      D.RetryAfterMs = 5;
      ++S.C.RejectedTenantQuota;
      return D;
    }
  }

  // Token bucket. Refill lazily from elapsed wall clock; a fresh (or
  // re-policied) bucket starts full so the first burst is admitted.
  if (P.RatePerSec > 0) {
    double Burst = P.Burst > 0 ? P.Burst : std::max(1.0, P.RatePerSec);
    if (!S.BucketPrimed) {
      S.Tokens = Burst;
      S.LastRefill = Now;
      S.BucketPrimed = true;
    } else {
      double Elapsed =
          std::chrono::duration<double>(Now - S.LastRefill).count();
      S.Tokens = std::min(Burst, S.Tokens + Elapsed * P.RatePerSec);
      S.LastRefill = Now;
    }
    if (S.Tokens < 1.0) {
      D.Reject = RejectKind::RateLimited;
      D.Error = "tenant request rate exceeded";
      double Deficit = (1.0 - S.Tokens) / P.RatePerSec;
      D.RetryAfterMs = std::max<uint64_t>(
          1, static_cast<uint64_t>(Deficit * 1e3 + 0.5));
      ++S.C.RejectedRateLimited;
      return D;
    }
    S.Tokens -= 1.0;
  }

  ++S.C.Admitted;
  if (S.InFlight++ == 0)
    ++ActiveTenants;
  return D;
}

void TenantGovernor::clampLimits(const std::string &Tenant,
                                 RunLimits &L) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Tenants.find(Tenant);
  const TenantPolicy &P =
      It != Tenants.end() && It->second.HasPolicy ? It->second.Policy
                                                  : Default;
  clampField(L.Fuel, P.Clamp.Fuel);
  clampField(L.MaxCallDepth, P.Clamp.MaxCallDepth);
  clampField(L.DeadlineMs, P.Clamp.DeadlineMs);
  clampField(L.Heap.MaxLiveBytes, P.Clamp.Heap.MaxLiveBytes);
  clampField(L.Heap.MaxLiveCells, P.Clamp.Heap.MaxLiveCells);
  clampField(L.Heap.AllocBudget, P.Clamp.Heap.AllocBudget);
}

void TenantGovernor::onOutcome(const std::string &Tenant,
                               const ServiceResponse &R) {
  std::lock_guard<std::mutex> Lock(M);
  State &S = stateFor(Tenant);
  if (S.InFlight > 0 && --S.InFlight == 0)
    --ActiveTenants;
  S.C.QueueSecondsTotal += R.QueueSeconds;
  S.C.RunSecondsTotal += R.RunSeconds;
  if (R.Executed) {
    ++S.C.Executed;
    if (!R.Run.Ok)
      ++S.C.Traps;
    // The tenant's resource ledger is the sum of its requests' HeapStats
    // deltas — the same counters the classification invariant pins.
    accumulate(S.C.Heap, R.Heap);
    S.C.RetainedPeakBytes = std::max(S.C.RetainedPeakBytes, R.RetainedBytes);
  } else {
    ++S.C.Shed;
  }
}

TenantCounters TenantGovernor::counters(const std::string &Tenant) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Tenants.find(Tenant);
  return It == Tenants.end() ? TenantCounters{} : It->second.C;
}

std::vector<std::string> TenantGovernor::tenants() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::string> Names;
  Names.reserve(Tenants.size());
  for (const auto &KV : Tenants)
    Names.push_back(KV.first);
  return Names;
}

//===--- CircuitBreaker -------------------------------------------------===//

CircuitBreaker::Decision CircuitBreaker::admit(const std::string &SourceKey,
                                               TimePoint Now) {
  Decision D;
  if (!enabled())
    return D;
  std::lock_guard<std::mutex> Lock(M);
  Entry &E = Entries[SourceKey];
  switch (E.St) {
  case State::Closed:
    return D;
  case State::Open: {
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       Now - E.OpenedAt)
                       .count();
    if (Elapsed >= static_cast<int64_t>(CooldownMs)) {
      E.St = State::HalfOpen;
      E.ProbeInFlight = true; // this request is the probe
      return D;
    }
    D.Allow = false;
    D.RetryAfterMs = CooldownMs - static_cast<uint64_t>(Elapsed);
    return D;
  }
  case State::HalfOpen:
    if (!E.ProbeInFlight) {
      E.ProbeInFlight = true;
      return D;
    }
    D.Allow = false;
    D.RetryAfterMs = std::max<uint64_t>(1, CooldownMs / 2);
    return D;
  }
  return D;
}

void CircuitBreaker::onOutcome(const std::string &SourceKey, bool Executed,
                               bool Trapped, TimePoint Now) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Lock(M);
  // Trap accounting must not depend on a prior admit() for the key —
  // the breaker learns from every executed run it is told about.
  Entry &E = Entries[SourceKey];
  if (!Executed) {
    // Shed before running: releases a half-open probe slot but is no
    // evidence either way.
    if (E.St == State::HalfOpen)
      E.ProbeInFlight = false;
    return;
  }
  if (Trapped) {
    if (E.St == State::HalfOpen) {
      // The probe trapped too: straight back to Open for a fresh
      // cooldown.
      E.St = State::Open;
      E.OpenedAt = Now;
      E.ProbeInFlight = false;
      E.ConsecutiveTraps = Threshold;
      return;
    }
    if (++E.ConsecutiveTraps >= Threshold && E.St == State::Closed) {
      E.St = State::Open;
      E.OpenedAt = Now;
    }
    return;
  }
  // Success closes from any state.
  E.St = State::Closed;
  E.ConsecutiveTraps = 0;
  E.ProbeInFlight = false;
}

CircuitBreaker::State
CircuitBreaker::state(const std::string &SourceKey) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Entries.find(SourceKey);
  return It == Entries.end() ? State::Closed : It->second.St;
}
