//===- service/Service.cpp - Long-lived request service -------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "bytecode/Compiler.h"
#include "bytecode/Peephole.h"
#include "bytecode/VM.h"
#include "eval/Machine.h"
#include "gc/MarkSweep.h"
#include "lang/Resolver.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>

using namespace perceus;

const char *perceus::rejectKindName(RejectKind K) {
  switch (K) {
  case RejectKind::None:
    return "ok";
  case RejectKind::QueueFull:
    return "queue-full";
  case RejectKind::Shedding:
    return "shedding";
  case RejectKind::CompileError:
    return "compile-error";
  case RejectKind::RateLimited:
    return "rate-limited";
  case RejectKind::TenantQuota:
    return "tenant-quota";
  case RejectKind::CircuitOpen:
    return "circuit-open";
  case RejectKind::BadRequest:
    return "bad-request";
  }
  return "unknown";
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

uint64_t toMicros(double Seconds) {
  return Seconds <= 0 ? 0 : static_cast<uint64_t>(Seconds * 1e6);
}

/// The artifact cache key: every PassConfig axis and the engine, then the
/// source verbatim. Field-by-field (not PassConfig::name()) because
/// name() collapses hand-built configurations onto the nearest stock one.
/// Deliberately tenant-free: tenants over the same program share one
/// artifact (and one circuit breaker — a trap storm is a property of the
/// source, not of who submits it).
std::string cacheKey(const ServiceRequest &R) {
  std::string Key;
  Key.reserve(R.Source.size() + 16);
  Key += engineKindName(R.Engine);
  Key += '|';
  Key += static_cast<char>('0' + static_cast<int>(R.Config.Mode));
  Key += static_cast<char>('0' + R.Config.EnableReuse);
  Key += static_cast<char>('0' + R.Config.EnableReuseSpec);
  Key += static_cast<char>('0' + R.Config.EnableDropSpec);
  Key += static_cast<char>('0' + R.Config.EnableFusion);
  Key += static_cast<char>('0' + R.Config.EnableBorrow);
  Key += '\n';
  Key += R.Source;
  return Key;
}

/// Estimated resident bytes of one artifact: the source, the IR arena
/// (which owns every expression tree), the layout side tables, and the
/// bytecode pools. An estimate — container headers and hash-map slack
/// are approximated by a flat per-entry overhead — but a *monotone* one:
/// bigger programs always report more, which is all LRU accounting needs.
size_t artifactFootprint(const CompiledArtifact &Art,
                         const std::string &Source) {
  size_t B = sizeof(CompiledArtifact) + Source.size();
  if (Art.Prog)
    B += Art.Prog->arena().bytesAllocated();
  if (Art.Layout) {
    B += Art.Layout->FuncFrameSize.size() * sizeof(uint32_t);
    for (const auto &Slots : Art.Layout->SlotLists)
      B += sizeof(std::vector<uint32_t>) + Slots.size() * sizeof(uint32_t);
  }
  if (Art.Code) {
    const CompiledProgram &C = *Art.Code;
    auto ChunkBytes = [](const Chunk &Ch) {
      return sizeof(Chunk) + Ch.Code.size() * sizeof(Instr) +
             Ch.Sites.size() * sizeof(const Expr *) +
             (Ch.CaptureSrc.size() + Ch.CaptureDst.size()) * sizeof(uint16_t);
    };
    for (const Chunk &Ch : C.Funcs)
      B += ChunkBytes(Ch);
    for (const Chunk &Ch : C.Lams)
      B += ChunkBytes(Ch);
    B += C.Consts.size() * sizeof(Value);
    for (const MatchTable &M : C.Matches)
      B += sizeof(MatchTable) + M.Arms.size() * sizeof(MatchArmCode);
    B += C.BinderSlots.size() * sizeof(uint16_t);
    for (const std::string &M : C.Messages)
      B += sizeof(std::string) + M.size();
  }
  for (const auto &KV : Art.Functions)
    B += sizeof(FuncId) + KV.first.size() + 32; // hash-map entry overhead
  return B;
}

/// Compiles one key into an immutable artifact. Runs on whichever worker
/// first needs the key; everyone else blocks on the shared_future.
std::shared_ptr<const CompiledArtifact>
compileArtifact(const ServiceRequest &R) {
  auto Art = std::make_shared<CompiledArtifact>();
  Art->Config = R.Config;
  Art->Engine = R.Engine;
  Art->Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  if (!compileSource(R.Source, *Art->Prog, Diags)) {
    Art->Error = "program failed to compile:\n" + Diags.str();
    Art->SizeBytes = artifactFootprint(*Art, R.Source);
    return Art;
  }
  runPipeline(*Art->Prog, R.Config);
  Art->Layout.emplace(layoutProgram(*Art->Prog));
  if (R.Engine == EngineKind::Vm) {
    Art->Code.emplace(compileProgram(*Art->Prog, *Art->Layout));
    // Unconditional: artifacts are cached by (source, config, engine),
    // so the peephole tier must not vary per request. Runs whose entry
    // arguments include heap references use the retained raw chunks.
    runPeephole(*Art->Code);
  }
  // Resolve every function name now, single-threaded: workers must not
  // intern into the shared symbol table on the request path.
  for (FuncId F = 0; F != Art->Prog->numFunctions(); ++F)
    Art->Functions.emplace(
        std::string(Art->Prog->symbols().name(Art->Prog->function(F).Name)),
        F);
  Art->Ok = true;
  Art->SizeBytes = artifactFootprint(*Art, R.Source);
  return Art;
}

/// Per-request view of the worker heap's cumulative counters. Counters
/// subtract; LiveBytes/LiveCells are the absolute post-request values
/// (zero when the run was garbage free) and PeakBytes is the per-request
/// peak (the caller rewinds the high-water mark before the run).
HeapStats diffStats(const HeapStats &After, const HeapStats &Before) {
  HeapStats D;
  D.Allocs = After.Allocs - Before.Allocs;
  D.Frees = After.Frees - Before.Frees;
  D.DupOps = After.DupOps - Before.DupOps;
  D.DropOps = After.DropOps - Before.DropOps;
  D.DecRefOps = After.DecRefOps - Before.DecRefOps;
  D.NonHeapRcOps = After.NonHeapRcOps - Before.NonHeapRcOps;
  D.AtomicRcOps = After.AtomicRcOps - Before.AtomicRcOps;
  D.IsUniqueTests = After.IsUniqueTests - Before.IsUniqueTests;
  D.Collections = After.Collections - Before.Collections;
  D.FailedAllocs = After.FailedAllocs - Before.FailedAllocs;
  D.EmergencyCollections =
      After.EmergencyCollections - Before.EmergencyCollections;
  D.UnwindFrees = After.UnwindFrees - Before.UnwindFrees;
  D.LiveBytes = After.LiveBytes;
  D.PeakBytes = After.PeakBytes;
  D.LiveCells = After.LiveCells;
  return D;
}

} // namespace

unsigned perceus::resolveAutoParallelism(unsigned Requested, unsigned Max) {
  if (Requested != 0)
    return Requested;
  unsigned HW = std::thread::hardware_concurrency(); // may be 0 (unknown)
  return std::clamp(HW, 1u, Max);
}

Service::Service(const ServiceConfig &C)
    : Config(C), Governor(C.DefaultTenantPolicy),
      Breaker(C.BreakerTrapThreshold, C.BreakerCooldownMs) {
  Config.Workers = resolveAutoParallelism(Config.Workers, /*Max=*/16);
  if (Config.QueueCapacity == 0)
    Config.QueueCapacity = 1;
  Workers.reserve(Config.Workers);
  for (unsigned W = 0; W != Config.Workers; ++W)
    Workers.emplace_back([this, W] { workerLoop(W); });
}

Service::~Service() { stop(); }

void Service::stop() {
  std::deque<Pending> Shed;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping && TotalQueued == 0 && Workers.empty())
      return;
    Stopping = true;
    for (auto &KV : TenantQueues)
      for (Pending &P : KV.second)
        Shed.push_back(std::move(P));
    TenantQueues.clear();
    RoundRobin.clear();
    TotalQueued = 0;
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  for (Pending &P : Shed) {
    ServiceResponse Resp;
    Resp.Id = P.Id;
    Resp.Tenant = P.Req.Tenant;
    Resp.Reject = RejectKind::Shedding;
    Resp.Error = "service stopping";
    Resp.QueueSeconds = secondsSince(P.Enqueued);
    finishRequest(P, std::move(Resp));
  }
}

void Service::submitWith(ServiceRequest R, ResponseCallback Done) {
  Pending P;
  P.Req = std::move(R);
  P.Done = std::move(Done);
  P.Enqueued = std::chrono::steady_clock::now();
  Stats.Submitted.fetch_add(1, std::memory_order_relaxed);

  RejectKind Reject = RejectKind::None;
  uint64_t RetryAfterMs = 0;
  std::string Error;
  bool GovernorAdmitted = false;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    P.Id = NextId++;
    if (Stopping) {
      Reject = RejectKind::Shedding;
      Error = "service stopping";
    } else if (P.Req.Source.empty() || P.Req.Entry.empty()) {
      // Structural validation first: a malformed request must not burn a
      // token or a queue slot.
      Reject = RejectKind::BadRequest;
      Error = P.Req.Source.empty() ? "request has empty source"
                                   : "request has empty entry point";
    } else if (TotalQueued >= Config.QueueCapacity) {
      Reject = RejectKind::QueueFull;
      Error = "request queue at capacity";
      RetryAfterMs = 5;
    } else {
      // Governor before breaker: a breaker rejection must release the
      // governor's in-flight slot (below), but the reverse — a breaker
      // probe granted and then thrown away by a governor rejection —
      // would wedge the breaker in half-open.
      auto Now = std::chrono::steady_clock::now();
      auto TQ = TenantQueues.find(P.Req.Tenant);
      size_t TenantQueued = TQ == TenantQueues.end() ? 0 : TQ->second.size();
      TenantGovernor::Decision GD = Governor.admit(
          P.Req.Tenant, Now, TenantQueued, TotalQueued, Config.QueueCapacity);
      if (GD.Reject != RejectKind::None) {
        Reject = GD.Reject;
        RetryAfterMs = GD.RetryAfterMs;
        Error = GD.Error;
      } else {
        GovernorAdmitted = true;
        P.Key = cacheKey(P.Req);
        CircuitBreaker::Decision BD = Breaker.admit(P.Key, Now);
        if (!BD.Allow) {
          Reject = RejectKind::CircuitOpen;
          RetryAfterMs = BD.RetryAfterMs;
          Error = "source circuit breaker open (recent trap storm)";
        } else {
          Governor.clampLimits(P.Req.Tenant, P.Req.Limits);
          P.Plan = planChaos(Config.Chaos, P.Id);
          if (P.Plan.any())
            Stats.ChaosInjected.fetch_add(1, std::memory_order_relaxed);
          std::deque<Pending> &Q = TenantQueues[P.Req.Tenant];
          if (Q.empty())
            RoundRobin.push_back(P.Req.Tenant);
          Q.push_back(std::move(P));
          ++TotalQueued;
        }
      }
    }
  }
  if (Reject == RejectKind::None) {
    QueueCv.notify_one();
    return;
  }

  ServiceResponse Resp;
  Resp.Id = P.Id;
  Resp.Tenant = P.Req.Tenant;
  Resp.Reject = Reject;
  Resp.RetryAfterMs = RetryAfterMs;
  Resp.Error = std::move(Error);
  switch (Reject) {
  case RejectKind::QueueFull:
    Stats.RejectedQueueFull.fetch_add(1, std::memory_order_relaxed);
    break;
  case RejectKind::Shedding:
    Stats.RejectedShedding.fetch_add(1, std::memory_order_relaxed);
    break;
  case RejectKind::RateLimited:
    Stats.RejectedRateLimited.fetch_add(1, std::memory_order_relaxed);
    break;
  case RejectKind::TenantQuota:
    Stats.RejectedTenantQuota.fetch_add(1, std::memory_order_relaxed);
    break;
  case RejectKind::CircuitOpen:
    Stats.RejectedCircuitOpen.fetch_add(1, std::memory_order_relaxed);
    break;
  case RejectKind::BadRequest:
    Stats.RejectedBadRequest.fetch_add(1, std::memory_order_relaxed);
    break;
  default:
    break;
  }
  if (GovernorAdmitted) // breaker rejected after admission: release slot
    Governor.onOutcome(Resp.Tenant, Resp);
  P.Done(std::move(Resp));
}

std::future<ServiceResponse> Service::submit(ServiceRequest R) {
  auto Prom = std::make_shared<std::promise<ServiceResponse>>();
  std::future<ServiceResponse> Fut = Prom->get_future();
  submitWith(std::move(R), [Prom](ServiceResponse Resp) {
    Prom->set_value(std::move(Resp));
  });
  return Fut;
}

ServiceResponse Service::call(ServiceRequest R) {
  return submit(std::move(R)).get();
}

bool Service::precompile(const std::string &Source, const PassConfig &Config,
                         EngineKind Engine, std::string *Error) {
  ServiceRequest R;
  R.Source = Source;
  R.Config = Config;
  R.Engine = Engine;
  std::string Key = cacheKey(R);
  bool Hit = false, Pinned = false;
  std::shared_ptr<const CompiledArtifact> Art =
      artifactFor(Key, R, Hit, Pinned, /*TransientFail=*/false);
  if (Pinned)
    unpinArtifact(Key);
  if (!Art->Ok && Error)
    *Error = Art->Error;
  return Art->Ok;
}

void Service::setTenantPolicy(const std::string &Tenant,
                              const TenantPolicy &P) {
  Governor.setPolicy(Tenant, P);
}

TenantCounters Service::tenantStats(const std::string &Tenant) const {
  return Governor.counters(Tenant);
}

std::vector<std::string> Service::tenants() const { return Governor.tenants(); }

std::shared_ptr<const CompiledArtifact>
Service::artifactFor(const std::string &Key, const ServiceRequest &R,
                     bool &CacheHit, bool &Pinned, bool TransientFail) {
  std::shared_future<std::shared_ptr<const CompiledArtifact>> Fut;
  std::promise<std::shared_ptr<const CompiledArtifact>> Mine;
  bool Compile = false;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      CacheHit = true;
      CacheEntry &E = It->second;
      ++E.Pins;
      Pinned = true;
      if (E.InLru)
        Lru.splice(Lru.begin(), Lru, E.LruIt); // touch: now most recent
      Fut = E.Fut;
    } else if (TransientFail) {
      // Injected compile fault on a miss: fail this request without
      // caching anything, so the key's next request compiles cleanly.
      // (Distinct from a genuinely bad source, which negative-caches.)
      CacheHit = false;
    } else {
      CacheHit = false;
      Compile = true;
      Fut = Mine.get_future().share();
      CacheEntry E;
      E.Fut = Fut;
      E.Pins = 1;
      Cache.emplace(Key, std::move(E));
      Pinned = true;
    }
  }
  if (CacheHit) {
    Stats.CacheHits.fetch_add(1, std::memory_order_relaxed);
    return Fut.get();
  }
  if (TransientFail) {
    auto Art = std::make_shared<CompiledArtifact>();
    Art->Config = R.Config;
    Art->Engine = R.Engine;
    Art->Error = "injected transient compile-time allocation fault";
    return Art;
  }
  Stats.CacheCompiles.fetch_add(1, std::memory_order_relaxed);
  if (Compile) {
    std::shared_ptr<const CompiledArtifact> Art = compileArtifact(R);
    {
      std::lock_guard<std::mutex> Lock(CacheMutex);
      settleCacheEntryLocked(Key, *Art);
    }
    Mine.set_value(Art);
  }
  return Fut.get();
}

void Service::unpinArtifact(const std::string &Key) {
  std::lock_guard<std::mutex> Lock(CacheMutex);
  auto It = Cache.find(Key);
  if (It == Cache.end())
    return;
  if (It->second.Pins > 0)
    --It->second.Pins;
  // A just-unpinned entry may be the one holding the cache over budget.
  evictToBudgetLocked();
}

void Service::settleCacheEntryLocked(const std::string &Key,
                                     const CompiledArtifact &Art) {
  auto It = Cache.find(Key);
  if (It == Cache.end())
    return; // unreachable: the compiling request holds a pin
  CacheEntry &E = It->second;
  E.Ready = true;
  E.Negative = !Art.Ok;
  // Negative entries still occupy their diagnostics; give everything a
  // floor so even empty entries have eviction weight.
  E.Bytes = std::max<size_t>(Art.SizeBytes, 64);
  CacheBytes += E.Bytes;
  E.LruIt = Lru.insert(Lru.begin(), Key);
  E.InLru = true;
  evictToBudgetLocked();
}

void Service::evictToBudgetLocked() {
  if (Config.MaxCacheBytes != 0) {
    // Pass 1: negative (failed-compile) entries, cheapest first. They
    // exist only to dedup diagnostics; recompiling one is cheap and
    // yields the same error.
    while (CacheBytes > Config.MaxCacheBytes) {
      auto Best = Cache.end();
      for (auto It = Cache.begin(); It != Cache.end(); ++It) {
        const CacheEntry &E = It->second;
        if (E.Ready && E.Negative && E.Pins == 0 &&
            (Best == Cache.end() || E.Bytes < Best->second.Bytes))
          Best = It;
      }
      if (Best == Cache.end())
        break;
      CacheBytes -= Best->second.Bytes;
      if (Best->second.InLru)
        Lru.erase(Best->second.LruIt);
      Cache.erase(Best);
      Stats.CacheEvictions.fetch_add(1, std::memory_order_relaxed);
    }
    // Pass 2: plain LRU from the cold end, skipping pinned entries.
    // Eviction is silent: the evicted key's next request recompiles; it
    // is never a rejection. Pinned-by-running entries can transiently
    // hold the cache over budget — they drain as their requests finish.
    auto It = Lru.end();
    while (CacheBytes > Config.MaxCacheBytes && It != Lru.begin()) {
      --It;
      auto CIt = Cache.find(*It);
      if (CIt == Cache.end()) { // stale name; drop it
        It = Lru.erase(It);
        continue;
      }
      CacheEntry &E = CIt->second;
      if (!E.Ready || E.Pins != 0)
        continue;
      CacheBytes -= E.Bytes;
      Cache.erase(CIt);
      It = Lru.erase(It);
      Stats.CacheEvictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  Stats.CacheBytes.store(CacheBytes, std::memory_order_relaxed);
}

void Service::finishRequest(Pending &P, ServiceResponse Resp) {
  // Admission-side bookkeeping: the governor releases the in-flight slot
  // and folds telemetry into the tenant ledger; the breaker hears the
  // verdict for the source key (non-executed outcomes release a probe
  // without tripping or healing).
  Governor.onOutcome(Resp.Tenant, Resp);
  if (!P.Key.empty())
    Breaker.onOutcome(P.Key, Resp.Executed, Resp.Executed && !Resp.Run.Ok,
                      std::chrono::steady_clock::now());
  if (Resp.Executed) {
    Stats.Executed.fetch_add(1, std::memory_order_relaxed);
    if (!Resp.Run.Ok)
      Stats.Traps.fetch_add(1, std::memory_order_relaxed);
  } else if (Resp.Reject == RejectKind::Shedding) {
    Stats.RejectedShedding.fetch_add(1, std::memory_order_relaxed);
  } else if (Resp.Reject == RejectKind::CompileError) {
    Stats.RejectedCompileError.fetch_add(1, std::memory_order_relaxed);
  }
  Stats.QueueMicrosTotal.fetch_add(toMicros(Resp.QueueSeconds),
                                   std::memory_order_relaxed);
  Stats.RunMicrosTotal.fetch_add(toMicros(Resp.RunSeconds),
                                 std::memory_order_relaxed);
  P.Done(std::move(Resp));
}

void perceus::accumulate(ServiceStats &Into, const ServiceStats &From) {
  Into.Submitted += From.Submitted;
  Into.Executed += From.Executed;
  Into.RejectedQueueFull += From.RejectedQueueFull;
  Into.RejectedShedding += From.RejectedShedding;
  Into.RejectedCompileError += From.RejectedCompileError;
  Into.RejectedRateLimited += From.RejectedRateLimited;
  Into.RejectedTenantQuota += From.RejectedTenantQuota;
  Into.RejectedCircuitOpen += From.RejectedCircuitOpen;
  Into.RejectedBadRequest += From.RejectedBadRequest;
  Into.Traps += From.Traps;
  Into.CacheHits += From.CacheHits;
  Into.CacheCompiles += From.CacheCompiles;
  Into.CacheEvictions += From.CacheEvictions;
  Into.CacheBytes += From.CacheBytes;
  Into.ChaosInjected += From.ChaosInjected;
  Into.TrimmedBytes += From.TrimmedBytes;
  Into.QueueSecondsTotal += From.QueueSecondsTotal;
  Into.RunSecondsTotal += From.RunSecondsTotal;
}

void Service::workerLoop(unsigned Index) {
  WorkerState WS;
  for (;;) {
    Pending P;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || TotalQueued != 0; });
      if (TotalQueued == 0)
        return; // Stopping; stop() sheds anything left
      // Round-robin across tenants: take the head of the next tenant's
      // FIFO, then rotate that tenant to the back if it has more work.
      std::string Tenant = std::move(RoundRobin.front());
      RoundRobin.pop_front();
      std::deque<Pending> &Q = TenantQueues[Tenant];
      P = std::move(Q.front());
      Q.pop_front();
      --TotalQueued;
      if (!Q.empty())
        RoundRobin.push_back(std::move(Tenant));
    }
    ServiceResponse Resp = execute(WS, P, Index);
    finishRequest(P, std::move(Resp));
  }
}

ServiceResponse Service::execute(WorkerState &WS, Pending &P, unsigned Index) {
  const ServiceRequest &Req = P.Req;
  ServiceResponse Resp;
  Resp.Id = P.Id;
  Resp.Tenant = Req.Tenant;
  Resp.Worker = Index;

  // Chaos: stall the worker before it looks at the clock, widening the
  // queue-delay window that shed-while-queued and breaker cooldowns
  // need. Counted as queue time, which is what it is.
  if (P.Plan.StallUs)
    std::this_thread::sleep_for(std::chrono::microseconds(P.Plan.StallUs));
  Resp.QueueSeconds = secondsSince(P.Enqueued);

  // Per-request limits: the tenant clamp was applied at submit; chaos
  // squeezes compose on top with the same min-semantics.
  RunLimits L = Req.Limits;
  if (P.Plan.FuelLimit)
    L.Fuel = L.Fuel ? std::min(L.Fuel, P.Plan.FuelLimit) : P.Plan.FuelLimit;
  if (P.Plan.DeadlineMs)
    L.DeadlineMs =
        L.DeadlineMs ? std::min(L.DeadlineMs, P.Plan.DeadlineMs)
                     : P.Plan.DeadlineMs;

  // Deadline already burned in the queue: shed without touching an
  // engine — the client stopped waiting, running would waste the worker.
  uint64_t QueueMs = static_cast<uint64_t>(Resp.QueueSeconds * 1e3);
  if (L.DeadlineMs && QueueMs >= L.DeadlineMs) {
    Resp.Reject = RejectKind::Shedding;
    Resp.Error = "deadline expired while queued";
    return Resp;
  }

  auto R0 = std::chrono::steady_clock::now();
  bool Pinned = false;
  std::shared_ptr<const CompiledArtifact> Art =
      artifactFor(P.Key, Req, Resp.CacheHit, Pinned, P.Plan.FailCompile);
  // Keep the cache entry pinned (ineligible for eviction) until this
  // request is done with the artifact.
  struct UnpinGuard {
    Service *S;
    const std::string *Key;
    bool Active;
    ~UnpinGuard() {
      if (Active)
        S->unpinArtifact(*Key);
    }
  } Guard{this, &P.Key, Pinned};

  if (!Art->Ok) {
    Resp.Reject = RejectKind::CompileError;
    Resp.Error = Art->Error;
    Resp.RunSeconds = secondsSince(R0);
    return Resp;
  }

  // Pooled heap for the key's mode; created on first use and kept warm.
  bool Gc = Art->Config.Mode == RcMode::None;
  std::unique_ptr<Heap> &Slot = Gc ? WS.GcHeap : WS.RcHeap;
  if (!Slot)
    Slot = std::make_unique<Heap>(Gc ? HeapMode::Gc : HeapMode::Rc,
                                  Config.GcThresholdBytes);
  Heap &H = *Slot;

  // Rebuild the engine only when the artifact or heap binding changed;
  // back-to-back requests on one session reuse the warm engine.
  if (WS.Art != Art || WS.EngHeap != &H || !WS.Eng) {
    if (Art->Engine == EngineKind::Vm)
      WS.Eng = std::make_unique<VM>(*Art->Code, H);
    else
      WS.Eng = std::make_unique<Machine>(*Art->Prog, *Art->Layout, H);
    WS.Art = Art;
    WS.EngHeap = &H;
    if (H.mode() == HeapMode::Gc) {
      Engine *E = WS.Eng.get();
      attachCollector(H, [E](const std::function<void(Value)> &Fn) {
        E->enumerateRoots(Fn);
      });
    }
  }

  auto It = Art->Functions.find(Req.Entry);
  if (It == Art->Functions.end()) {
    Resp.Executed = true;
    Resp.Run.Ok = false;
    Resp.Run.Trap = TrapKind::RuntimeError;
    Resp.Run.Error = "no such entry function: " + Req.Entry;
    Resp.Error = Resp.Run.Error;
    Resp.HeapEmpty = H.empty();
    Resp.RetainedBytes = H.retainedBytes();
    Resp.RunSeconds = secondsSince(R0);
    return Resp;
  }

  // Per-request installs: limits (deadline reduced by the queue wait),
  // fault injection, telemetry. All are uninstalled afterwards so the
  // pooled heap carries nothing from one request into the next.
  if (L.DeadlineMs)
    L.DeadlineMs -= QueueMs;
  H.setLimits(L.Heap);
  WS.Eng->setStepLimit(L.Fuel);
  WS.Eng->setCallDepthLimit(L.MaxCallDepth);
  WS.Eng->setDeadline(L.DeadlineMs);
  uint64_t FailAlloc = Req.FailAlloc ? Req.FailAlloc : P.Plan.FailAllocNth;
  FaultInjector FI = FaultInjector::failNth(FailAlloc);
  if (FailAlloc)
    H.setFaultInjector(&FI);
  CountingSink Sink;
  H.setStatsSink(&Sink);

  HeapStats Before = H.stats();
  H.stats().PeakBytes = H.stats().LiveBytes; // per-request peak
  Resp.Run = WS.Eng->run(It->second, Req.Args);
  Resp.Executed = true;

  // In GC mode a clean run leaves unreachable cells behind (drops are
  // no-ops); sweep them so the pooled heap is empty and reusable, the
  // same invariant RC mode gets for free.
  if (H.mode() == HeapMode::Gc) {
    H.reclaimAll();
    H.resetGcThreshold();
  }
  Resp.Heap = diffStats(H.stats(), Before);
  Resp.RcCalls = Sink.totalRcCalls();
  Resp.HeapEmpty = H.empty();
  H.setStatsSink(nullptr);
  H.setFaultInjector(nullptr);
  H.setLimits(HeapLimits{});

  // Retained-memory policy: a peaky request must not pin its slab
  // high-water for the life of the worker.
  if (H.empty() && H.retainedBytes() > Config.MaxRetainedBytes) {
    size_t Trimmed = H.trimRetained();
    Stats.TrimmedBytes.fetch_add(Trimmed, std::memory_order_relaxed);
  }
  Resp.RetainedBytes = H.retainedBytes();
  Resp.RunSeconds = secondsSince(R0);
  return Resp;
}

ServiceStats Service::stats() const {
  ServiceStats S;
  S.Submitted = Stats.Submitted.load(std::memory_order_relaxed);
  S.Executed = Stats.Executed.load(std::memory_order_relaxed);
  S.RejectedQueueFull = Stats.RejectedQueueFull.load(std::memory_order_relaxed);
  S.RejectedShedding = Stats.RejectedShedding.load(std::memory_order_relaxed);
  S.RejectedCompileError =
      Stats.RejectedCompileError.load(std::memory_order_relaxed);
  S.RejectedRateLimited =
      Stats.RejectedRateLimited.load(std::memory_order_relaxed);
  S.RejectedTenantQuota =
      Stats.RejectedTenantQuota.load(std::memory_order_relaxed);
  S.RejectedCircuitOpen =
      Stats.RejectedCircuitOpen.load(std::memory_order_relaxed);
  S.RejectedBadRequest =
      Stats.RejectedBadRequest.load(std::memory_order_relaxed);
  S.Traps = Stats.Traps.load(std::memory_order_relaxed);
  S.CacheHits = Stats.CacheHits.load(std::memory_order_relaxed);
  S.CacheCompiles = Stats.CacheCompiles.load(std::memory_order_relaxed);
  S.CacheEvictions = Stats.CacheEvictions.load(std::memory_order_relaxed);
  S.CacheBytes = Stats.CacheBytes.load(std::memory_order_relaxed);
  S.ChaosInjected = Stats.ChaosInjected.load(std::memory_order_relaxed);
  S.TrimmedBytes = Stats.TrimmedBytes.load(std::memory_order_relaxed);
  S.QueueSecondsTotal =
      Stats.QueueMicrosTotal.load(std::memory_order_relaxed) / 1e6;
  S.RunSecondsTotal =
      Stats.RunMicrosTotal.load(std::memory_order_relaxed) / 1e6;
  return S;
}
