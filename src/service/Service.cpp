//===- service/Service.cpp - Long-lived request service -------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "bytecode/Compiler.h"
#include "bytecode/VM.h"
#include "eval/Machine.h"
#include "gc/MarkSweep.h"
#include "lang/Resolver.h"
#include "support/Diagnostics.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <chrono>

using namespace perceus;

const char *perceus::rejectKindName(RejectKind K) {
  switch (K) {
  case RejectKind::None:
    return "ok";
  case RejectKind::QueueFull:
    return "queue-full";
  case RejectKind::Shedding:
    return "shedding";
  case RejectKind::CompileError:
    return "compile-error";
  }
  return "unknown";
}

namespace {

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// The artifact cache key: every PassConfig axis and the engine, then the
/// source verbatim. Field-by-field (not PassConfig::name()) because
/// name() collapses hand-built configurations onto the nearest stock one.
std::string cacheKey(const ServiceRequest &R) {
  std::string Key;
  Key.reserve(R.Source.size() + 16);
  Key += engineKindName(R.Engine);
  Key += '|';
  Key += static_cast<char>('0' + static_cast<int>(R.Config.Mode));
  Key += static_cast<char>('0' + R.Config.EnableReuse);
  Key += static_cast<char>('0' + R.Config.EnableReuseSpec);
  Key += static_cast<char>('0' + R.Config.EnableDropSpec);
  Key += static_cast<char>('0' + R.Config.EnableFusion);
  Key += static_cast<char>('0' + R.Config.EnableBorrow);
  Key += '\n';
  Key += R.Source;
  return Key;
}

/// Compiles one key into an immutable artifact. Runs on whichever worker
/// first needs the key; everyone else blocks on the shared_future.
std::shared_ptr<const CompiledArtifact>
compileArtifact(const ServiceRequest &R) {
  auto Art = std::make_shared<CompiledArtifact>();
  Art->Config = R.Config;
  Art->Engine = R.Engine;
  Art->Prog = std::make_unique<Program>();
  DiagnosticEngine Diags;
  if (!compileSource(R.Source, *Art->Prog, Diags)) {
    Art->Error = "program failed to compile:\n" + Diags.str();
    return Art;
  }
  runPipeline(*Art->Prog, R.Config);
  Art->Layout.emplace(layoutProgram(*Art->Prog));
  if (R.Engine == EngineKind::Vm)
    Art->Code.emplace(compileProgram(*Art->Prog, *Art->Layout));
  // Resolve every function name now, single-threaded: workers must not
  // intern into the shared symbol table on the request path.
  for (FuncId F = 0; F != Art->Prog->numFunctions(); ++F)
    Art->Functions.emplace(
        std::string(Art->Prog->symbols().name(Art->Prog->function(F).Name)),
        F);
  Art->Ok = true;
  return Art;
}

/// Per-request view of the worker heap's cumulative counters. Counters
/// subtract; LiveBytes/LiveCells are the absolute post-request values
/// (zero when the run was garbage free) and PeakBytes is the per-request
/// peak (the caller rewinds the high-water mark before the run).
HeapStats diffStats(const HeapStats &After, const HeapStats &Before) {
  HeapStats D;
  D.Allocs = After.Allocs - Before.Allocs;
  D.Frees = After.Frees - Before.Frees;
  D.DupOps = After.DupOps - Before.DupOps;
  D.DropOps = After.DropOps - Before.DropOps;
  D.DecRefOps = After.DecRefOps - Before.DecRefOps;
  D.NonHeapRcOps = After.NonHeapRcOps - Before.NonHeapRcOps;
  D.AtomicRcOps = After.AtomicRcOps - Before.AtomicRcOps;
  D.IsUniqueTests = After.IsUniqueTests - Before.IsUniqueTests;
  D.Collections = After.Collections - Before.Collections;
  D.FailedAllocs = After.FailedAllocs - Before.FailedAllocs;
  D.EmergencyCollections =
      After.EmergencyCollections - Before.EmergencyCollections;
  D.UnwindFrees = After.UnwindFrees - Before.UnwindFrees;
  D.LiveBytes = After.LiveBytes;
  D.PeakBytes = After.PeakBytes;
  D.LiveCells = After.LiveCells;
  return D;
}

} // namespace

Service::Service(const ServiceConfig &C) : Config(C) {
  if (Config.Workers == 0)
    Config.Workers = 1;
  if (Config.QueueCapacity == 0)
    Config.QueueCapacity = 1;
  Workers.reserve(Config.Workers);
  for (unsigned W = 0; W != Config.Workers; ++W)
    Workers.emplace_back([this, W] { workerLoop(W); });
}

Service::~Service() { stop(); }

void Service::stop() {
  std::deque<Pending> Shed;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    if (Stopping && Queue.empty() && Workers.empty())
      return;
    Stopping = true;
    Shed.swap(Queue);
  }
  QueueCv.notify_all();
  for (std::thread &T : Workers)
    T.join();
  Workers.clear();
  for (Pending &P : Shed) {
    ServiceResponse Resp;
    Resp.Id = P.Id;
    Resp.Reject = RejectKind::Shedding;
    Resp.Error = "service stopping";
    Resp.QueueSeconds = secondsSince(P.Enqueued);
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      ++Stats.RejectedShedding;
    }
    P.Promise.set_value(std::move(Resp));
  }
}

std::future<ServiceResponse> Service::submit(ServiceRequest R) {
  Pending P;
  P.Req = std::move(R);
  P.Enqueued = std::chrono::steady_clock::now();
  std::future<ServiceResponse> Fut = P.Promise.get_future();

  RejectKind Reject = RejectKind::None;
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    P.Id = NextId++;
    if (Stopping)
      Reject = RejectKind::Shedding;
    else if (Queue.size() >= Config.QueueCapacity)
      Reject = RejectKind::QueueFull;
    else
      Queue.push_back(std::move(P));
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Stats.Submitted;
    if (Reject == RejectKind::QueueFull)
      ++Stats.RejectedQueueFull;
    else if (Reject == RejectKind::Shedding)
      ++Stats.RejectedShedding;
  }
  if (Reject != RejectKind::None) {
    ServiceResponse Resp;
    Resp.Id = P.Id;
    Resp.Reject = Reject;
    Resp.Error = Reject == RejectKind::QueueFull
                     ? "request queue at capacity"
                     : "service stopping";
    P.Promise.set_value(std::move(Resp));
    return Fut;
  }
  QueueCv.notify_one();
  return Fut;
}

ServiceResponse Service::call(ServiceRequest R) {
  return submit(std::move(R)).get();
}

bool Service::precompile(const std::string &Source, const PassConfig &Config,
                         EngineKind Engine, std::string *Error) {
  ServiceRequest R;
  R.Source = Source;
  R.Config = Config;
  R.Engine = Engine;
  bool Hit = false;
  std::shared_ptr<const CompiledArtifact> Art = artifactFor(R, Hit);
  if (!Art->Ok && Error)
    *Error = Art->Error;
  return Art->Ok;
}

std::shared_ptr<const CompiledArtifact>
Service::artifactFor(const ServiceRequest &R, bool &CacheHit) {
  std::string Key = cacheKey(R);
  std::shared_future<std::shared_ptr<const CompiledArtifact>> Fut;
  std::promise<std::shared_ptr<const CompiledArtifact>> Mine;
  bool Compile = false;
  {
    std::lock_guard<std::mutex> Lock(CacheMutex);
    auto It = Cache.find(Key);
    if (It != Cache.end()) {
      CacheHit = true;
      Fut = It->second;
    } else {
      CacheHit = false;
      Compile = true;
      Fut = Mine.get_future().share();
      Cache.emplace(std::move(Key), Fut);
    }
  }
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    if (CacheHit)
      ++Stats.CacheHits;
    else
      ++Stats.CacheCompiles;
  }
  if (Compile)
    Mine.set_value(compileArtifact(R));
  return Fut.get();
}

void Service::workerLoop(unsigned Index) {
  WorkerState WS;
  for (;;) {
    Pending P;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping; stop() sheds anything left
      P = std::move(Queue.front());
      Queue.pop_front();
    }
    ServiceResponse Resp = execute(WS, P, Index);
    {
      std::lock_guard<std::mutex> Lock(StatsMutex);
      if (Resp.Executed) {
        ++Stats.Executed;
        if (!Resp.Run.Ok)
          ++Stats.Traps;
      } else if (Resp.Reject == RejectKind::Shedding) {
        ++Stats.RejectedShedding;
      } else if (Resp.Reject == RejectKind::CompileError) {
        ++Stats.RejectedCompileError;
      }
      Stats.QueueSecondsTotal += Resp.QueueSeconds;
      Stats.RunSecondsTotal += Resp.RunSeconds;
    }
    P.Promise.set_value(std::move(Resp));
  }
}

ServiceResponse Service::execute(WorkerState &WS, Pending &P, unsigned Index) {
  const ServiceRequest &Req = P.Req;
  ServiceResponse Resp;
  Resp.Id = P.Id;
  Resp.Worker = Index;
  Resp.QueueSeconds = secondsSince(P.Enqueued);

  // Deadline already burned in the queue: shed without touching an
  // engine — the client stopped waiting, running would waste the worker.
  uint64_t QueueMs = static_cast<uint64_t>(Resp.QueueSeconds * 1e3);
  if (Req.Limits.DeadlineMs && QueueMs >= Req.Limits.DeadlineMs) {
    Resp.Reject = RejectKind::Shedding;
    Resp.Error = "deadline expired while queued";
    return Resp;
  }

  auto R0 = std::chrono::steady_clock::now();
  std::shared_ptr<const CompiledArtifact> Art =
      artifactFor(Req, Resp.CacheHit);
  if (!Art->Ok) {
    Resp.Reject = RejectKind::CompileError;
    Resp.Error = Art->Error;
    Resp.RunSeconds = secondsSince(R0);
    return Resp;
  }

  // Pooled heap for the key's mode; created on first use and kept warm.
  bool Gc = Art->Config.Mode == RcMode::None;
  std::unique_ptr<Heap> &Slot = Gc ? WS.GcHeap : WS.RcHeap;
  if (!Slot)
    Slot = std::make_unique<Heap>(Gc ? HeapMode::Gc : HeapMode::Rc,
                                  Config.GcThresholdBytes);
  Heap &H = *Slot;

  // Rebuild the engine only when the artifact or heap binding changed;
  // back-to-back requests on one session reuse the warm engine.
  if (WS.Art != Art || WS.EngHeap != &H || !WS.Eng) {
    if (Art->Engine == EngineKind::Vm)
      WS.Eng = std::make_unique<VM>(*Art->Code, H);
    else
      WS.Eng = std::make_unique<Machine>(*Art->Prog, *Art->Layout, H);
    WS.Art = Art;
    WS.EngHeap = &H;
    if (H.mode() == HeapMode::Gc) {
      Engine *E = WS.Eng.get();
      attachCollector(H, [E](const std::function<void(Value)> &Fn) {
        E->enumerateRoots(Fn);
      });
    }
  }

  auto It = Art->Functions.find(Req.Entry);
  if (It == Art->Functions.end()) {
    Resp.Executed = true;
    Resp.Run.Ok = false;
    Resp.Run.Trap = TrapKind::RuntimeError;
    Resp.Run.Error = "no such entry function: " + Req.Entry;
    Resp.Error = Resp.Run.Error;
    Resp.HeapEmpty = H.empty();
    Resp.RetainedBytes = H.retainedBytes();
    Resp.RunSeconds = secondsSince(R0);
    return Resp;
  }

  // Per-request installs: limits (deadline reduced by the queue wait),
  // fault injection, telemetry. All are uninstalled afterwards so the
  // pooled heap carries nothing from one request into the next.
  RunLimits L = Req.Limits;
  if (L.DeadlineMs)
    L.DeadlineMs -= QueueMs;
  H.setLimits(L.Heap);
  WS.Eng->setStepLimit(L.Fuel);
  WS.Eng->setCallDepthLimit(L.MaxCallDepth);
  WS.Eng->setDeadline(L.DeadlineMs);
  FaultInjector FI = FaultInjector::failNth(Req.FailAlloc);
  if (Req.FailAlloc)
    H.setFaultInjector(&FI);
  CountingSink Sink;
  H.setStatsSink(&Sink);

  HeapStats Before = H.stats();
  H.stats().PeakBytes = H.stats().LiveBytes; // per-request peak
  Resp.Run = WS.Eng->run(It->second, Req.Args);
  Resp.Executed = true;

  // In GC mode a clean run leaves unreachable cells behind (drops are
  // no-ops); sweep them so the pooled heap is empty and reusable, the
  // same invariant RC mode gets for free.
  if (H.mode() == HeapMode::Gc) {
    H.reclaimAll();
    H.resetGcThreshold();
  }
  Resp.Heap = diffStats(H.stats(), Before);
  Resp.RcCalls = Sink.totalRcCalls();
  Resp.HeapEmpty = H.empty();
  H.setStatsSink(nullptr);
  H.setFaultInjector(nullptr);
  H.setLimits(HeapLimits{});

  // Retained-memory policy: a peaky request must not pin its slab
  // high-water for the life of the worker.
  if (H.empty() && H.retainedBytes() > Config.MaxRetainedBytes) {
    size_t Trimmed = H.trimRetained();
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Stats.TrimmedBytes += Trimmed;
  }
  Resp.RetainedBytes = H.retainedBytes();
  Resp.RunSeconds = secondsSince(R0);
  return Resp;
}

ServiceStats Service::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  return Stats;
}
