//===- service/Service.h - Long-lived request service -----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived session engine: a compile-once request service over the
/// existing engines. Where `Runner` couples one compilation to one heap
/// and one engine, `Service` separates the three lifetimes a server
/// actually has:
///
///   * a *program* is compiled once per (source, PassConfig, EngineKind)
///     key into an immutable CompiledArtifact (IR + layout for the CEK
///     machine, plus bytecode for the VM) and cached forever;
///   * a *worker* owns a persistent Heap (one per HeapMode, created
///     lazily) and an engine instance rebuilt only when the artifact or
///     heap mode changes — requests reuse warm slabs and free lists;
///   * a *request* carries its own RunLimits (including the wall-clock
///     DeadlineMs), optional fault injection, and per-request telemetry,
///     and leaves the worker heap empty again whether it completed or
///     trapped — the garbage-free guarantee is what makes pooling safe.
///
/// Admission control is a bounded queue: submit() rejects with QueueFull
/// when the queue is at capacity, and a queued request whose deadline
/// already expired while waiting is shed (RejectKind::Shedding) without
/// ever touching an engine. Rejections are structured responses, never
/// aborts. Between requests the worker trims retained slab memory back
/// to one warm slab whenever it exceeds ServiceConfig::MaxRetainedBytes,
/// so one peaky request cannot pin peak RSS for the life of the process.
///
/// Thread-safety note: workers share each artifact's Program read-only.
/// SymbolTable::intern() mutates, so entry-point lookup never interns on
/// the request path — the artifact carries a name → FuncId index built
/// once at compile time, single-threaded.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SERVICE_SERVICE_H
#define PERCEUS_SERVICE_SERVICE_H

#include "bytecode/Bytecode.h"
#include "eval/Engine.h"
#include "eval/EngineConfig.h"
#include "eval/Layout.h"
#include "perceus/Pipeline.h"

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace perceus {

/// One immutable compiled program, shared read-only by every worker that
/// executes requests against its key. When compilation fails, Ok is
/// false and Error carries the diagnostics — the failure is cached too,
/// so a bad source is diagnosed once, not once per request.
struct CompiledArtifact {
  bool Ok = false;
  std::string Error;
  PassConfig Config;
  EngineKind Engine = EngineKind::Cek;
  std::unique_ptr<Program> Prog;
  std::optional<ProgramLayout> Layout;
  std::optional<CompiledProgram> Code; ///< VM engine only
  /// Every top-level function by surface name, resolved at compile time
  /// so the request path never touches the (mutating) symbol table.
  std::unordered_map<std::string, FuncId> Functions;
};

/// One unit of work: which program (by source + configuration), which
/// entry point, and how the run is bounded. Args are immediates (ints,
/// unit) — heap values cannot cross the submission boundary.
struct ServiceRequest {
  std::string Source;
  PassConfig Config = PassConfig::perceusFull();
  EngineKind Engine = EngineKind::Cek;
  std::string Entry = "main";
  std::vector<Value> Args;
  RunLimits Limits;       ///< fuel, depth, governor, DeadlineMs
  uint64_t FailAlloc = 0; ///< failNth fault injection (0 = off)
};

/// Why a request was refused without executing. Rejections are structured
/// outcomes — the service never aborts on overload.
enum class RejectKind : uint8_t {
  None,         ///< not rejected (see Executed / Run)
  QueueFull,    ///< bounded queue at capacity at submit time
  Shedding,     ///< shed: stopping, or deadline expired while queued
  CompileError, ///< the (cached) compilation of the key failed
};

/// Short stable name ("ok", "queue-full", ...) for logs and JSON.
const char *rejectKindName(RejectKind K);

/// Everything the service reports about one request.
struct ServiceResponse {
  uint64_t Id = 0;        ///< submission order, 1-based
  bool Executed = false;  ///< an engine ran (Run is meaningful)
  RejectKind Reject = RejectKind::None;
  std::string Error;      ///< rejection / lookup diagnostics
  RunResult Run;          ///< engine result when Executed
  HeapStats Heap;         ///< this request's stats delta on its worker heap
  bool CacheHit = false;  ///< artifact served from cache
  bool HeapEmpty = true;  ///< worker heap empty after the request
  unsigned Worker = 0;    ///< worker index that executed it
  double QueueSeconds = 0;///< time spent queued before a worker took it
  double RunSeconds = 0;  ///< compile-wait + engine time on the worker
  size_t RetainedBytes = 0; ///< worker slab bytes held after the request
  uint64_t RcCalls = 0;   ///< telemetry: RC calls the sink observed
};

/// Service-wide tuning.
struct ServiceConfig {
  unsigned Workers = 1;        ///< worker threads (min 1)
  size_t QueueCapacity = 64;   ///< bounded queue; 0 means 1
  /// Trim a worker heap back to one warm slab whenever it retains more
  /// than this between requests (0 = trim after every request).
  size_t MaxRetainedBytes = 8u << 20;
  size_t GcThresholdBytes = 4u << 20; ///< per-worker GC threshold
};

/// Aggregate counters across the service lifetime.
struct ServiceStats {
  uint64_t Submitted = 0;
  uint64_t Executed = 0;
  uint64_t RejectedQueueFull = 0;
  uint64_t RejectedShedding = 0;
  uint64_t RejectedCompileError = 0;
  uint64_t Traps = 0;       ///< executed requests that trapped
  uint64_t CacheHits = 0;   ///< artifact lookups served from cache
  uint64_t CacheCompiles = 0; ///< distinct keys actually compiled
  uint64_t TrimmedBytes = 0;  ///< slab bytes returned to the OS
  double QueueSecondsTotal = 0;
  double RunSecondsTotal = 0;
};

/// See the file comment.
class Service {
public:
  explicit Service(const ServiceConfig &Config = {});
  ~Service(); ///< stops and joins; queued requests are shed
  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Enqueues a request. The future resolves when a worker finishes it
  /// (or immediately, with a structured rejection, when the queue is
  /// full or the service is stopping).
  std::future<ServiceResponse> submit(ServiceRequest R);

  /// submit() + get(): the blocking convenience for tests and the CLI.
  ServiceResponse call(ServiceRequest R);

  /// Compiles (or fetches) the artifact for a key without running
  /// anything — warms the cache off the request path. Returns false and
  /// fills \p Error when the source does not compile.
  bool precompile(const std::string &Source, const PassConfig &Config,
                  EngineKind Engine, std::string *Error = nullptr);

  /// Stops accepting work, sheds the queue, and joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  ServiceStats stats() const;
  const ServiceConfig &config() const { return Config; }

private:
  struct Pending {
    ServiceRequest Req;
    std::promise<ServiceResponse> Promise;
    uint64_t Id = 0;
    std::chrono::steady_clock::time_point Enqueued;
  };

  /// Per-worker persistent state: pooled heaps plus the currently
  /// instantiated (artifact, engine) pair.
  struct WorkerState {
    std::unique_ptr<Heap> RcHeap;
    std::unique_ptr<Heap> GcHeap;
    std::shared_ptr<const CompiledArtifact> Art; ///< engine's program
    std::unique_ptr<Engine> Eng;
    Heap *EngHeap = nullptr; ///< heap Eng is bound to
  };

  void workerLoop(unsigned Index);
  ServiceResponse execute(WorkerState &WS, Pending &P, unsigned Index);
  std::shared_ptr<const CompiledArtifact>
  artifactFor(const ServiceRequest &R, bool &CacheHit);

  ServiceConfig Config;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<Pending> Queue;
  bool Stopping = false;
  uint64_t NextId = 1;

  std::mutex CacheMutex;
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const CompiledArtifact>>>
      Cache;

  mutable std::mutex StatsMutex;
  ServiceStats Stats;

  std::vector<std::thread> Workers;
};

/// A client handle that pins one (source, PassConfig, EngineKind) key on
/// a Service, so callers submit by entry point alone — the "session" of
/// the session engine. Cheap; many sessions can share one Service, and
/// sessions over the same key share the cached artifact.
class Session {
public:
  Session(Service &S, std::string Source,
          PassConfig Config = PassConfig::perceusFull(),
          EngineKind Engine = EngineKind::Cek)
      : Svc(S), Source(std::move(Source)), Config(Config), Engine(Engine) {}

  /// Compiles the session's program now (off the request path). Returns
  /// false and fills \p Error when the source does not compile.
  bool warm(std::string *Error = nullptr) {
    return Svc.precompile(Source, Config, Engine, Error);
  }

  std::future<ServiceResponse> submit(std::string Entry,
                                      std::vector<Value> Args = {},
                                      const RunLimits &Limits = {},
                                      uint64_t FailAlloc = 0) {
    return Svc.submit(makeRequest(std::move(Entry), std::move(Args), Limits,
                                  FailAlloc));
  }

  ServiceResponse call(std::string Entry, std::vector<Value> Args = {},
                       const RunLimits &Limits = {}, uint64_t FailAlloc = 0) {
    return Svc.call(makeRequest(std::move(Entry), std::move(Args), Limits,
                                FailAlloc));
  }

  Service &service() { return Svc; }

private:
  ServiceRequest makeRequest(std::string Entry, std::vector<Value> Args,
                             const RunLimits &Limits, uint64_t FailAlloc) {
    ServiceRequest R;
    R.Source = Source;
    R.Config = Config;
    R.Engine = Engine;
    R.Entry = std::move(Entry);
    R.Args = std::move(Args);
    R.Limits = Limits;
    R.FailAlloc = FailAlloc;
    return R;
  }

  Service &Svc;
  std::string Source;
  PassConfig Config;
  EngineKind Engine;
};

} // namespace perceus

#endif // PERCEUS_SERVICE_SERVICE_H
