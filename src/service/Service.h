//===- service/Service.h - Long-lived request service -----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The long-lived session engine: a compile-once request service over the
/// existing engines. Where `Runner` couples one compilation to one heap
/// and one engine, `Service` separates the three lifetimes a server
/// actually has:
///
///   * a *program* is compiled once per (source, PassConfig, EngineKind)
///     key into an immutable CompiledArtifact (IR + layout for the CEK
///     machine, plus bytecode for the VM) and cached under an LRU byte
///     budget (ServiceConfig::MaxCacheBytes; 0 = unbounded). Artifacts
///     pinned by running requests are never evicted; negative entries
///     (cached compile failures) are evicted cheapest-first. Eviction is
///     silent — a re-requested evicted key just recompiles, it is never
///     a rejection kind;
///   * a *worker* owns a persistent Heap (one per HeapMode, created
///     lazily) and an engine instance rebuilt only when the artifact or
///     heap mode changes — requests reuse warm slabs and free lists;
///   * a *request* belongs to a *tenant* and carries its own RunLimits
///     (including the wall-clock DeadlineMs), optional fault injection,
///     and per-request telemetry, and leaves the worker heap empty again
///     whether it completed or trapped — the garbage-free guarantee is
///     what makes pooling safe.
///
/// Admission control is layered (see Reject.h for the closed vocabulary):
/// a bounded *global* queue rejects QueueFull at capacity; the
/// TenantGovernor rejects RateLimited / TenantQuota per tenant policy and
/// sheds over-fair-share tenants under pressure; the per-source
/// CircuitBreaker rejects CircuitOpen during a trap-storm cooldown.
/// Every rejection is a structured response with a RetryAfterMs hint,
/// never an abort. Queued requests dequeue round-robin *across tenants*,
/// so a tenant that fills its queue share cannot starve the others even
/// before the governor sheds it. Between requests the worker trims
/// retained slab memory back to one warm slab whenever it exceeds
/// ServiceConfig::MaxRetainedBytes.
///
/// ChaosConfig (off by default) threads seeded fault injection through
/// every boundary — transient compile faults, mid-run OOM, fuel/deadline
/// squeezes, worker stalls — without changing any invariant: a chaotic
/// request still unwinds cleanly to an empty heap.
///
/// Thread-safety note: workers share each artifact's Program read-only.
/// SymbolTable::intern() mutates, so entry-point lookup never interns on
/// the request path — the artifact carries a name → FuncId index built
/// once at compile time, single-threaded. ServiceStats counters are
/// atomics; stats() returns a snapshot without stopping the world.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SERVICE_SERVICE_H
#define PERCEUS_SERVICE_SERVICE_H

#include "bytecode/Bytecode.h"
#include "eval/Engine.h"
#include "eval/EngineConfig.h"
#include "eval/Layout.h"
#include "perceus/Pipeline.h"
#include "service/Chaos.h"
#include "service/Reject.h"
#include "service/TenantGovernor.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace perceus {

/// One immutable compiled program, shared read-only by every worker that
/// executes requests against its key. When compilation fails, Ok is
/// false and Error carries the diagnostics — the failure is cached too
/// (a negative entry), so a bad source is diagnosed once, not once per
/// request.
struct CompiledArtifact {
  bool Ok = false;
  std::string Error;
  PassConfig Config;
  EngineKind Engine = EngineKind::Cek;
  std::unique_ptr<Program> Prog;
  std::optional<ProgramLayout> Layout;
  std::optional<CompiledProgram> Code; ///< VM engine only
  /// Every top-level function by surface name, resolved at compile time
  /// so the request path never touches the (mutating) symbol table.
  std::unordered_map<std::string, FuncId> Functions;
  /// Estimated resident footprint: source + IR arena + layout tables +
  /// bytecode. Computed once at compile time; the cache's eviction
  /// accounting sums these against ServiceConfig::MaxCacheBytes.
  size_t SizeBytes = 0;
};

/// One unit of work: which tenant, which program (by source +
/// configuration), which entry point, and how the run is bounded. Args
/// are immediates (ints, unit) — heap values cannot cross the submission
/// boundary.
struct ServiceRequest {
  std::string Tenant = "default"; ///< policy + accounting identity
  std::string Source;
  PassConfig Config = PassConfig::perceusFull();
  EngineKind Engine = EngineKind::Cek;
  std::string Entry = "main";
  std::vector<Value> Args;
  RunLimits Limits;       ///< fuel, depth, governor, DeadlineMs
  uint64_t FailAlloc = 0; ///< failNth fault injection (0 = off)
};

/// Everything the service reports about one request.
struct ServiceResponse {
  uint64_t Id = 0;        ///< submission order, 1-based, per shard
  uint64_t Seq = 0;       ///< transport sequence: per-connection frame
                          ///< index (socket) or line number (stdin serve);
                          ///< 0 outside a transport
  unsigned Shard = 0;     ///< service shard that handled the request
                          ///< (0 on an unsharded Service)
  std::string Tenant;     ///< echoed from the request
  bool Executed = false;  ///< an engine ran (Run is meaningful)
  RejectKind Reject = RejectKind::None;
  uint64_t RetryAfterMs = 0; ///< backoff hint on rejections (0 = none)
  std::string Error;      ///< rejection / lookup diagnostics
  RunResult Run;          ///< engine result when Executed
  HeapStats Heap;         ///< this request's stats delta on its worker heap
  bool CacheHit = false;  ///< artifact served from cache
  bool HeapEmpty = true;  ///< worker heap empty after the request
  unsigned Worker = 0;    ///< worker index that executed it
  double QueueSeconds = 0;///< time spent queued before a worker took it
  double RunSeconds = 0;  ///< compile-wait + engine time on the worker
  size_t RetainedBytes = 0; ///< worker slab bytes held after the request
  uint64_t RcCalls = 0;   ///< telemetry: RC calls the sink observed
};

/// Resolves a 0 = "auto" parallelism knob to the hardware:
/// std::thread::hardware_concurrency() clamped to [1, Max] (the clamp
/// keeps a big machine from spawning an absurd pool by default, and a
/// hardware_concurrency() of 0 — unknown — resolves to 1). Non-zero
/// values pass through unchanged.
unsigned resolveAutoParallelism(unsigned Requested, unsigned Max);

/// Shard-level tuning: everything one `Service` shard owns — its worker
/// pool, queue, artifact cache, governor, breakers, and chaos plan. The
/// front-end-level knobs (shard count, framing, connection caps) live in
/// `FrontEndConfig` (net/ShardedService.h). The admission-policy fields
/// all default to "off", so a default-constructed service behaves
/// exactly like the single-tenant one it replaces.
struct ServiceConfig {
  /// Worker threads. 0 = one per hardware thread (hardware_concurrency
  /// clamped to [1, 16]); the default stays 1 so existing callers see no
  /// behavior change unless they ask for auto sizing explicitly.
  unsigned Workers = 1;
  size_t QueueCapacity = 64;   ///< bounded queue; 0 means 1
  /// Trim a worker heap back to one warm slab whenever it retains more
  /// than this between requests (0 = trim after every request).
  size_t MaxRetainedBytes = 8u << 20;
  size_t GcThresholdBytes = 4u << 20; ///< per-worker GC threshold
  /// Artifact-cache byte budget; LRU eviction keeps the cache at or
  /// under this (pinned entries excepted). 0 = unbounded (cache forever).
  size_t MaxCacheBytes = 0;
  /// Policy for tenants without an explicit setTenantPolicy() entry.
  /// Default is unlimited: existing single-tenant callers are unchanged.
  TenantPolicy DefaultTenantPolicy;
  /// Per-source circuit breaker: this many *consecutive* trapped runs of
  /// one source key open its breaker for BreakerCooldownMs. 0 = off.
  unsigned BreakerTrapThreshold = 0;
  uint64_t BreakerCooldownMs = 250;
  /// Seeded fault injection at every service boundary; Seed 0 = off.
  ChaosConfig Chaos;

  /// Fluent builders, mirroring the EngineConfig idiom: each returns
  /// *this so a config reads as one expression at the construction site.
  ServiceConfig &withWorkers(unsigned W) {
    Workers = W;
    return *this;
  }
  ServiceConfig &withQueueCapacity(size_t N) {
    QueueCapacity = N;
    return *this;
  }
  ServiceConfig &withMaxRetainedBytes(size_t B) {
    MaxRetainedBytes = B;
    return *this;
  }
  ServiceConfig &withGcThreshold(size_t B) {
    GcThresholdBytes = B;
    return *this;
  }
  ServiceConfig &withMaxCacheBytes(size_t B) {
    MaxCacheBytes = B;
    return *this;
  }
  ServiceConfig &withDefaultTenantPolicy(const TenantPolicy &P) {
    DefaultTenantPolicy = P;
    return *this;
  }
  ServiceConfig &withBreaker(unsigned TrapThreshold, uint64_t CooldownMs = 250) {
    BreakerTrapThreshold = TrapThreshold;
    BreakerCooldownMs = CooldownMs;
    return *this;
  }
  ServiceConfig &withChaos(const ChaosConfig &C) {
    Chaos = C;
    return *this;
  }
};

/// Aggregate counters across the service lifetime. A point-in-time
/// snapshot assembled from atomics — individual counters are exact,
/// cross-counter sums may be mid-update by one request.
struct ServiceStats {
  uint64_t Submitted = 0;
  uint64_t Executed = 0;
  uint64_t RejectedQueueFull = 0;
  uint64_t RejectedShedding = 0;
  uint64_t RejectedCompileError = 0;
  uint64_t RejectedRateLimited = 0;
  uint64_t RejectedTenantQuota = 0;
  uint64_t RejectedCircuitOpen = 0;
  uint64_t RejectedBadRequest = 0;
  uint64_t Traps = 0;       ///< executed requests that trapped
  uint64_t CacheHits = 0;   ///< artifact lookups served from cache
  uint64_t CacheCompiles = 0; ///< distinct keys actually compiled
  uint64_t CacheEvictions = 0; ///< artifacts evicted under MaxCacheBytes
  size_t CacheBytes = 0;    ///< gauge: bytes currently cached
  uint64_t ChaosInjected = 0; ///< requests that received a chaos plan
  uint64_t TrimmedBytes = 0;  ///< slab bytes returned to the OS
  double QueueSecondsTotal = 0;
  double RunSecondsTotal = 0;
};

/// Folds \p From into \p Into counter-by-counter (CacheBytes, a gauge,
/// sums too: the aggregate is "bytes cached across all shards"). This is
/// how ShardedService::stats() assembles its fleet-wide view.
void accumulate(ServiceStats &Into, const ServiceStats &From);

/// See the file comment.
class Service {
public:
  explicit Service(const ServiceConfig &Config = {});
  ~Service(); ///< stops and joins; queued requests are shed
  Service(const Service &) = delete;
  Service &operator=(const Service &) = delete;

  /// Completion callback for submitWith(). Runs exactly once per
  /// request, on the worker thread that finished it — or synchronously
  /// on the submitting thread for immediate rejections. Event-loop
  /// callers (the net front end) must therefore hand off to their own
  /// thread rather than block in the callback.
  using ResponseCallback = std::function<void(ServiceResponse)>;

  /// The submission primitive: enqueues a request and invokes \p Done
  /// with the structured response. Never throws the response away — a
  /// rejected, shed, or stop()-drained request still reaches \p Done.
  void submitWith(ServiceRequest R, ResponseCallback Done);

  /// Enqueues a request. The future resolves when a worker finishes it
  /// (or immediately, with a structured rejection, when admission
  /// refuses it or the service is stopping). A convenience over
  /// submitWith().
  std::future<ServiceResponse> submit(ServiceRequest R);

  /// submit() + get(): the blocking convenience for tests and the CLI.
  ServiceResponse call(ServiceRequest R);

  /// Compiles (or fetches) the artifact for a key without running
  /// anything — warms the cache off the request path. Returns false and
  /// fills \p Error when the source does not compile.
  bool precompile(const std::string &Source, const PassConfig &Config,
                  EngineKind Engine, std::string *Error = nullptr);

  /// Installs (or replaces) \p Tenant's admission policy.
  void setTenantPolicy(const std::string &Tenant, const TenantPolicy &P);

  /// Per-tenant lifetime counters (zeroes for an unknown tenant).
  TenantCounters tenantStats(const std::string &Tenant) const;

  /// Every tenant the governor has seen.
  std::vector<std::string> tenants() const;

  /// Stops accepting work, sheds the queue, and joins the workers.
  /// Idempotent; the destructor calls it.
  void stop();

  ServiceStats stats() const;
  const ServiceConfig &config() const { return Config; }

private:
  struct Pending {
    ServiceRequest Req;
    ResponseCallback Done;
    uint64_t Id = 0;
    std::string Key; ///< cache key, computed once at submit
    ChaosPlan Plan;  ///< per-request chaos, derived from (seed, id)
    std::chrono::steady_clock::time_point Enqueued;
  };

  /// Per-worker persistent state: pooled heaps plus the currently
  /// instantiated (artifact, engine) pair.
  struct WorkerState {
    std::unique_ptr<Heap> RcHeap;
    std::unique_ptr<Heap> GcHeap;
    std::shared_ptr<const CompiledArtifact> Art; ///< engine's program
    std::unique_ptr<Engine> Eng;
    Heap *EngHeap = nullptr; ///< heap Eng is bound to
  };

  /// One artifact-cache slot. The future decouples compile-wait from the
  /// cache lock; the bookkeeping fields drive LRU eviction: Bytes counts
  /// against MaxCacheBytes once Ready, Pins blocks eviction while any
  /// request is executing against the entry, Negative marks cached
  /// compile failures (evicted first — recompiling one is cheap and
  /// re-diagnosing is correct).
  struct CacheEntry {
    std::shared_future<std::shared_ptr<const CompiledArtifact>> Fut;
    size_t Bytes = 0;
    bool Ready = false;
    bool Negative = false;
    uint64_t Pins = 0;
    std::list<std::string>::iterator LruIt; ///< valid iff InLru
    bool InLru = false;
  };

  /// Lifetime counters as relaxed atomics so worker threads accumulate
  /// without a stats lock; time totals are microsecond integers (atomic
  /// double add is not portable). stats() converts back to seconds.
  struct AtomicStats {
    std::atomic<uint64_t> Submitted{0};
    std::atomic<uint64_t> Executed{0};
    std::atomic<uint64_t> RejectedQueueFull{0};
    std::atomic<uint64_t> RejectedShedding{0};
    std::atomic<uint64_t> RejectedCompileError{0};
    std::atomic<uint64_t> RejectedRateLimited{0};
    std::atomic<uint64_t> RejectedTenantQuota{0};
    std::atomic<uint64_t> RejectedCircuitOpen{0};
    std::atomic<uint64_t> RejectedBadRequest{0};
    std::atomic<uint64_t> Traps{0};
    std::atomic<uint64_t> CacheHits{0};
    std::atomic<uint64_t> CacheCompiles{0};
    std::atomic<uint64_t> CacheEvictions{0};
    std::atomic<size_t> CacheBytes{0};
    std::atomic<uint64_t> ChaosInjected{0};
    std::atomic<uint64_t> TrimmedBytes{0};
    std::atomic<uint64_t> QueueMicrosTotal{0};
    std::atomic<uint64_t> RunMicrosTotal{0};
  };

  void workerLoop(unsigned Index);
  ServiceResponse execute(WorkerState &WS, Pending &P, unsigned Index);
  /// Looks up or compiles \p Key. Pins the entry (caller must
  /// unpinArtifact). \p TransientFail injects a compile fault on a cache
  /// miss: the failed artifact is returned but never cached.
  std::shared_ptr<const CompiledArtifact>
  artifactFor(const std::string &Key, const ServiceRequest &R, bool &CacheHit,
              bool &Pinned, bool TransientFail);
  void unpinArtifact(const std::string &Key);
  /// Records a finished compile in the cache ledger and evicts LRU
  /// entries down to MaxCacheBytes. Called with CacheMutex held.
  void settleCacheEntryLocked(const std::string &Key,
                              const CompiledArtifact &Art);
  void evictToBudgetLocked();
  void finishRequest(Pending &P, ServiceResponse Resp);

  ServiceConfig Config;

  mutable std::mutex QueueMutex;
  std::condition_variable QueueCv;
  /// Fair queueing: one FIFO per tenant, dequeued round-robin across the
  /// tenants that have work. Capacity bounds the *total*.
  std::unordered_map<std::string, std::deque<Pending>> TenantQueues;
  std::deque<std::string> RoundRobin; ///< tenants with nonempty queues
  size_t TotalQueued = 0;
  bool Stopping = false;
  uint64_t NextId = 1;

  mutable std::mutex CacheMutex;
  std::unordered_map<std::string, CacheEntry> Cache;
  std::list<std::string> Lru; ///< front = most recently used
  size_t CacheBytes = 0;      ///< ready, counted entries only

  TenantGovernor Governor;
  CircuitBreaker Breaker;

  mutable AtomicStats Stats;

  std::vector<std::thread> Workers;
};

/// A client handle that pins one (tenant, source, PassConfig, EngineKind)
/// key on a Service, so callers submit by entry point alone — the
/// "session" of the session engine. Cheap; many sessions can share one
/// Service, and sessions over the same key share the cached artifact.
class Session {
public:
  Session(Service &S, std::string Source,
          PassConfig Config = PassConfig::perceusFull(),
          EngineKind Engine = EngineKind::Cek, std::string Tenant = "default")
      : Svc(S), Source(std::move(Source)), Config(Config), Engine(Engine),
        Tenant(std::move(Tenant)) {}

  /// Compiles the session's program now (off the request path). Returns
  /// false and fills \p Error when the source does not compile.
  bool warm(std::string *Error = nullptr) {
    return Svc.precompile(Source, Config, Engine, Error);
  }

  std::future<ServiceResponse> submit(std::string Entry,
                                      std::vector<Value> Args = {},
                                      const RunLimits &Limits = {},
                                      uint64_t FailAlloc = 0) {
    return Svc.submit(makeRequest(std::move(Entry), std::move(Args), Limits,
                                  FailAlloc));
  }

  ServiceResponse call(std::string Entry, std::vector<Value> Args = {},
                       const RunLimits &Limits = {}, uint64_t FailAlloc = 0) {
    return Svc.call(makeRequest(std::move(Entry), std::move(Args), Limits,
                                FailAlloc));
  }

  Service &service() { return Svc; }

private:
  ServiceRequest makeRequest(std::string Entry, std::vector<Value> Args,
                             const RunLimits &Limits, uint64_t FailAlloc) {
    ServiceRequest R;
    R.Tenant = Tenant;
    R.Source = Source;
    R.Config = Config;
    R.Engine = Engine;
    R.Entry = std::move(Entry);
    R.Args = std::move(Args);
    R.Limits = Limits;
    R.FailAlloc = FailAlloc;
    return R;
  }

  Service &Svc;
  std::string Source;
  PassConfig Config;
  EngineKind Engine;
  std::string Tenant;
};

} // namespace perceus

#endif // PERCEUS_SERVICE_SERVICE_H
