//===- service/ServiceJson.h - JSON emission for service results -*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The perceus-wire-v1 request/response schema: one JSON document per
/// request on the way in, one per response on the way out, shared by
/// stdin `--serve` and the socket front end (`--listen`) — both are
/// transports over the same dispatcher and the same documents. A
/// response document carries the same heap/run objects `perc
/// --stats-json` writes, plus a "service" object with the request's
/// admission and latency telemetry (status, tenant, shard, retry hint,
/// cache hit, worker, queue/run milliseconds, retained bytes). The
/// validation tests pin the key set and the closed status vocabulary.
///
/// The inverse direction, parseServiceRequestJson(), accepts one request
/// as a flat JSON object and validates it *structurally*: unknown keys,
/// wrong value types, truncated documents and oversized lines are all
/// rejected with a diagnostic, never ignored and never fatal — a
/// malformed line becomes a "bad-request" response, not an abort.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SERVICE_SERVICEJSON_H
#define PERCEUS_SERVICE_SERVICEJSON_H

#include <string>
#include <string_view>

namespace perceus {

class JsonWriter;
struct ServiceRequest;
struct ServiceResponse;

/// The wire schema this server speaks. Response documents carry it as
/// their "schema" member; a request may carry it too (then it must
/// match, or the request is a structured bad-request).
inline constexpr const char *kWireSchemaName = "perceus-wire-v1";

/// {"id":..,"seq":..,"shard":..,"tenant":"..",
///  "status":"ok"|"queue-full"|...,"executed":..,"cache_hit":..,
///  "worker":..,"queue_ms":..,"run_ms":..,"retry_after_ms":..,
///  "retained_bytes":..,"heap_empty":..,"rc_calls":..,"error":".."}
void writeServiceObjectJson(JsonWriter &W, const ServiceResponse &R);

/// One complete perceus-wire-v1 document for a response: schema marker,
/// the service object, and the heap/run objects (zeroed for requests
/// that were rejected before execution, so every line has one shape).
std::string wireResponseJson(const ServiceResponse &R);

/// Hard ceiling on one JSON request line; longer inputs are rejected
/// structurally (a client bug must not balloon server memory).
inline constexpr size_t MaxRequestJsonBytes = 64 * 1024;

/// Parses one JSON request object into \p R (on top of whatever defaults
/// \p R already carries). Accepted keys:
///
///   "entry": string (required)   "args": array of integers
///   "tenant": string             "engine": "cek" | "vm"
///   "config": pass-config name   "fuel", "deadline_ms", "max_depth",
///   "schema": must be            "fail_alloc", "max_heap", "max_cells",
///     "perceus-wire-v1"          "alloc_budget": non-negative integers
///
/// Returns true on success; on failure returns false and fills \p Error
/// with a one-line diagnostic (unknown key, wrong type, truncated input,
/// oversized line, trailing garbage). Never throws, never aborts.
bool parseServiceRequestJson(std::string_view Text, ServiceRequest &R,
                             std::string &Error);

} // namespace perceus

#endif // PERCEUS_SERVICE_SERVICEJSON_H
