//===- service/ServiceJson.h - JSON emission for service results -*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes ServiceResponse into the perceus-stats-v1 schema: the same
/// heap/run objects `perc --stats-json` writes, plus a "service" object
/// carrying the request's admission and latency telemetry (status,
/// cache hit, worker, queue/run milliseconds, retained bytes). One
/// document per request — `perc --serve` prints one per line, and the
/// validation tests pin the key set.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SERVICE_SERVICEJSON_H
#define PERCEUS_SERVICE_SERVICEJSON_H

#include <string>

namespace perceus {

class JsonWriter;
struct ServiceResponse;

/// {"id":..,"status":"ok"|"queue-full"|...,"executed":..,"cache_hit":..,
///  "worker":..,"queue_ms":..,"run_ms":..,"retained_bytes":..,
///  "heap_empty":..,"rc_calls":..,"error":".."}
void writeServiceObjectJson(JsonWriter &W, const ServiceResponse &R);

/// One complete perceus-stats-v1 document for a response: schema marker,
/// the service object, and the heap/run objects (zeroed for requests
/// that were rejected before execution, so every line has one shape).
std::string serviceResponseJson(const ServiceResponse &R);

} // namespace perceus

#endif // PERCEUS_SERVICE_SERVICEJSON_H
