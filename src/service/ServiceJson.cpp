//===- service/ServiceJson.cpp - JSON emission for service results --------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceJson.h"

#include "eval/StatsJson.h"
#include "service/Service.h"
#include "support/JsonWriter.h"

#include <cctype>
#include <cstdlib>

namespace perceus {

void writeServiceObjectJson(JsonWriter &W, const ServiceResponse &R) {
  W.beginObject()
      .member("id", R.Id)
      .member("seq", R.Seq)
      .member("shard", uint64_t(R.Shard))
      .member("tenant", std::string_view(R.Tenant))
      .member("status", rejectKindName(R.Reject))
      .member("executed", R.Executed)
      .member("cache_hit", R.CacheHit)
      .member("worker", uint64_t(R.Worker))
      .member("queue_ms", R.QueueSeconds * 1e3)
      .member("run_ms", R.RunSeconds * 1e3)
      .member("retry_after_ms", R.RetryAfterMs)
      .member("retained_bytes", R.RetainedBytes)
      .member("heap_empty", R.HeapEmpty)
      .member("rc_calls", R.RcCalls)
      .member("error", std::string_view(R.Error))
      .endObject();
}

std::string wireResponseJson(const ServiceResponse &R) {
  JsonWriter W;
  W.beginObject().member("schema", kWireSchemaName);
  W.key("service");
  writeServiceObjectJson(W, R);
  W.key("heap");
  writeHeapStatsJson(W, R.Heap);
  W.key("run");
  writeRunResultJson(W, R.Run);
  W.endObject();
  return W.take();
}

//===--- Request parsing --------------------------------------------------===//
//
// A tiny recursive-descent reader for exactly the shape a request line
// may take: one flat object of string / integer / integer-array members.
// Anything else — unknown keys included — is a structured parse error.
// No exceptions, no recursion on untrusted depth, no allocation beyond
// the strings extracted.

namespace {

class RequestReader {
public:
  RequestReader(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() && std::isspace((unsigned char)Text[Pos]))
      ++Pos;
  }

  bool atEnd() {
    skipWs();
    return Pos >= Text.size();
  }

  bool expect(char C) {
    skipWs();
    if (Pos >= Text.size())
      return fail(std::string("unexpected end of input, expected '") + C +
                  "'");
    if (Text[Pos] != C)
      return fail(std::string("expected '") + C + "', got '" + Text[Pos] +
                  "'");
    ++Pos;
    return true;
  }

  bool peek(char C) {
    skipWs();
    return Pos < Text.size() && Text[Pos] == C;
  }

  /// JSON string with the escapes the writer emits. Fills \p Out.
  bool parseString(std::string &Out) {
    if (!expect('"'))
      return false;
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        case 'r': Out += '\r'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          // Requests are ASCII-oriented; accept and keep only the low
          // byte of BMP escapes rather than full UTF-8 re-encoding.
          unsigned V = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos++];
            V <<= 4;
            if (H >= '0' && H <= '9') V += H - '0';
            else if (H >= 'a' && H <= 'f') V += 10 + H - 'a';
            else if (H >= 'A' && H <= 'F') V += 10 + H - 'A';
            else return fail("bad \\u escape");
          }
          Out += static_cast<char>(V & 0xff);
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
    }
  }

  /// Signed JSON integer (no fractions/exponents — requests carry counts
  /// and machine ints only).
  bool parseInt(int64_t &Out) {
    skipWs();
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    size_t Digits = Pos;
    while (Pos < Text.size() && std::isdigit((unsigned char)Text[Pos]))
      ++Pos;
    if (Pos == Digits) {
      Pos = Start;
      return fail("expected an integer");
    }
    if (Pos < Text.size() &&
        (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E')) {
      Pos = Start;
      return fail("expected an integer, got a fraction/exponent");
    }
    Out = std::strtoll(std::string(Text.substr(Start, Pos - Start)).c_str(),
                       nullptr, 10);
    return true;
  }

  /// Skips one value of any JSON type (for diagnostics on wrong-typed
  /// members we still want to report *unknown key* vs *wrong type*
  /// accurately). Bounded: arrays/objects nest at most MaxDepth deep.
  bool classifyValue(const char *&Kind) {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input, expected a value");
    char C = Text[Pos];
    if (C == '"') Kind = "string";
    else if (C == '[') Kind = "array";
    else if (C == '{') Kind = "object";
    else if (C == 't' || C == 'f') Kind = "bool";
    else if (C == 'n') Kind = "null";
    else Kind = "number";
    return true;
  }

  size_t Pos = 0;
  std::string_view Text;
  std::string &Error;
};

bool parsePassConfigName(const std::string &Name, PassConfig &Out) {
  if (Name == "perceus")
    Out = PassConfig::perceusFull();
  else if (Name == "perceus-noopt")
    Out = PassConfig::perceusNoOpt();
  else if (Name == "perceus-borrow")
    Out = PassConfig::perceusBorrow();
  else if (Name == "scoped-rc")
    Out = PassConfig::scoped();
  else if (Name == "gc")
    Out = PassConfig::gc();
  else
    return false;
  return true;
}

} // namespace

bool parseServiceRequestJson(std::string_view Text, ServiceRequest &R,
                             std::string &Error) {
  Error.clear();
  if (Text.size() > MaxRequestJsonBytes) {
    Error = "request line exceeds " + std::to_string(MaxRequestJsonBytes) +
            " bytes (" + std::to_string(Text.size()) + ")";
    return false;
  }
  RequestReader P(Text, Error);
  if (!P.expect('{'))
    return false;
  bool HaveEntry = false;
  bool First = true;
  while (!P.peek('}')) {
    if (!First && !P.expect(','))
      return false;
    First = false;
    std::string Key;
    if (!P.parseString(Key))
      return false;
    if (!P.expect(':'))
      return false;

    auto wantString = [&](std::string &Out) {
      const char *Kind = nullptr;
      if (!P.classifyValue(Kind))
        return false;
      if (std::string_view(Kind) != "string")
        return P.fail("key \"" + Key + "\" expects a string, got " + Kind);
      return P.parseString(Out);
    };
    auto wantCount = [&](uint64_t &Out) {
      const char *Kind = nullptr;
      if (!P.classifyValue(Kind))
        return false;
      if (std::string_view(Kind) != "number")
        return P.fail("key \"" + Key + "\" expects a number, got " + Kind);
      int64_t V = 0;
      if (!P.parseInt(V))
        return false;
      if (V < 0)
        return P.fail("key \"" + Key + "\" expects a non-negative integer");
      Out = static_cast<uint64_t>(V);
      return true;
    };

    if (Key == "entry") {
      if (!wantString(R.Entry))
        return false;
      HaveEntry = true;
    } else if (Key == "schema") {
      // Version negotiation: an explicit schema marker must name the one
      // wire version this server speaks; absence means "current".
      std::string Name;
      if (!wantString(Name))
        return false;
      if (Name != kWireSchemaName)
        return P.fail("unsupported schema \"" + Name + "\" (this server speaks " +
                      kWireSchemaName + ")");
    } else if (Key == "tenant") {
      if (!wantString(R.Tenant))
        return false;
    } else if (Key == "engine") {
      std::string Name;
      if (!wantString(Name))
        return false;
      if (!parseEngineKind(Name, R.Engine))
        return P.fail("unknown engine \"" + Name + "\"");
    } else if (Key == "config") {
      std::string Name;
      if (!wantString(Name))
        return false;
      if (!parsePassConfigName(Name, R.Config))
        return P.fail("unknown config \"" + Name + "\"");
    } else if (Key == "args") {
      const char *Kind = nullptr;
      if (!P.classifyValue(Kind))
        return false;
      if (std::string_view(Kind) != "array")
        return P.fail("key \"args\" expects an array, got " +
                      std::string(Kind));
      if (!P.expect('['))
        return false;
      R.Args.clear();
      bool FirstArg = true;
      while (!P.peek(']')) {
        if (!FirstArg && !P.expect(','))
          return false;
        FirstArg = false;
        const char *ElemKind = nullptr;
        if (!P.classifyValue(ElemKind))
          return false;
        if (std::string_view(ElemKind) != "number")
          return P.fail("key \"args\" expects integers only, got " +
                        std::string(ElemKind));
        int64_t V = 0;
        if (!P.parseInt(V))
          return P.fail("key \"args\" expects integers only");
        R.Args.push_back(Value::makeInt(V));
      }
      if (!P.expect(']'))
        return false;
    } else if (Key == "fuel") {
      if (!wantCount(R.Limits.Fuel))
        return false;
    } else if (Key == "deadline_ms") {
      if (!wantCount(R.Limits.DeadlineMs))
        return false;
    } else if (Key == "max_depth") {
      if (!wantCount(R.Limits.MaxCallDepth))
        return false;
    } else if (Key == "fail_alloc") {
      if (!wantCount(R.FailAlloc))
        return false;
    } else if (Key == "max_heap") {
      uint64_t V = 0;
      if (!wantCount(V))
        return false;
      R.Limits.Heap.MaxLiveBytes = static_cast<size_t>(V);
    } else if (Key == "max_cells") {
      uint64_t V = 0;
      if (!wantCount(V))
        return false;
      R.Limits.Heap.MaxLiveCells = static_cast<size_t>(V);
    } else if (Key == "alloc_budget") {
      uint64_t V = 0;
      if (!wantCount(V))
        return false;
      R.Limits.Heap.AllocBudget = static_cast<size_t>(V);
    } else {
      return P.fail("unknown key \"" + Key + "\"");
    }
  }
  if (!P.expect('}'))
    return false;
  if (!P.atEnd())
    return P.fail("trailing garbage after request object");
  if (!HaveEntry) {
    Error = "request object has no \"entry\" key";
    return false;
  }
  return true;
}

} // namespace perceus
