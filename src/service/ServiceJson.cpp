//===- service/ServiceJson.cpp - JSON emission for service results --------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/ServiceJson.h"

#include "eval/StatsJson.h"
#include "service/Service.h"
#include "support/JsonWriter.h"

namespace perceus {

void writeServiceObjectJson(JsonWriter &W, const ServiceResponse &R) {
  W.beginObject()
      .member("id", R.Id)
      .member("status", rejectKindName(R.Reject))
      .member("executed", R.Executed)
      .member("cache_hit", R.CacheHit)
      .member("worker", uint64_t(R.Worker))
      .member("queue_ms", R.QueueSeconds * 1e3)
      .member("run_ms", R.RunSeconds * 1e3)
      .member("retained_bytes", R.RetainedBytes)
      .member("heap_empty", R.HeapEmpty)
      .member("rc_calls", R.RcCalls)
      .member("error", std::string_view(R.Error))
      .endObject();
}

std::string serviceResponseJson(const ServiceResponse &R) {
  JsonWriter W;
  W.beginObject().member("schema", "perceus-stats-v1");
  W.key("service");
  writeServiceObjectJson(W, R);
  W.key("heap");
  writeHeapStatsJson(W, R.Heap);
  W.key("run");
  writeRunResultJson(W, R.Run);
  W.endObject();
  return W.take();
}

} // namespace perceus
