//===- service/TenantGovernor.h - Per-tenant admission policy ---*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-tenant admission policy and accounting for the request service,
/// plus the per-source circuit breaker. Together they are the overload
/// story: a noisy tenant is contained by its own token bucket, in-flight
/// cap and fair queue share instead of starving everyone, and a source
/// whose runs trap repeatedly is rejected fast instead of burning a
/// worker per attempt.
///
/// * TenantGovernor — one `TenantPolicy` per tenant (token-bucket request
///   rate, max in-flight, per-tenant `RunLimits` clamps) with a default
///   for tenants that have none. Admission is O(1) per request; every
///   rejection carries a `RetryAfterMs` hint. Under queue pressure (the
///   queue at or past 3/4 capacity) a tenant holding more than its fair
///   share of queue slots is shed even when its own quota would admit it
///   — graceful degradation favors the polite. Accounting deliberately
///   rides the *existing* heap/RC telemetry ledgers (HeapStats deltas per
///   request, accumulate()), not a parallel byte-count: Counting
///   Immutable Beans makes the same choice for the same reason — the RC
///   ledger is already exact.
///
/// * CircuitBreaker — per-source trap-storm protection. A source key
///   whose executed runs trap `TrapThreshold` times consecutively opens
///   for `CooldownMs`; while open, requests reject with `CircuitOpen`
///   and a precise `RetryAfterMs`. After the cooldown one probe runs
///   (half-open): success closes the breaker, another trap re-opens it.
///
/// Both are internally locked and safe to call from submit() and worker
/// threads concurrently; neither ever calls back into Service, so the
/// lock hierarchy stays one-way (Service locks may be held around calls
/// into these, never the reverse).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SERVICE_TENANTGOVERNOR_H
#define PERCEUS_SERVICE_TENANTGOVERNOR_H

#include "eval/EngineConfig.h"
#include "service/Reject.h"

#include <chrono>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace perceus {

/// What one tenant is allowed to do. Zero fields mean "unlimited", so a
/// default-constructed policy admits everything — existing single-tenant
/// callers see no behavior change until they opt in.
struct TenantPolicy {
  /// Token-bucket request rate (requests/second refill; 0 = unlimited).
  double RatePerSec = 0;
  /// Bucket capacity (burst). 0 derives max(1, RatePerSec).
  double Burst = 0;
  /// Cap on requests admitted but not yet finished (queued + running).
  uint64_t MaxInFlight = 0;
  /// Per-field *maximum* request limits: a nonzero clamp field lowers
  /// the request's corresponding RunLimits field (and imposes it when
  /// the request asked for unlimited). Fuel, call depth, deadline, and
  /// the heap governor caps all clamp.
  RunLimits Clamp;

  bool unlimited() const {
    return RatePerSec == 0 && MaxInFlight == 0 && Clamp.Fuel == 0 &&
           Clamp.MaxCallDepth == 0 && Clamp.DeadlineMs == 0 &&
           Clamp.Heap.unlimited();
  }
};

/// Per-tenant lifetime counters, all maintained by the governor. The heap
/// ledger is the sum of per-request HeapStats deltas (allocs, frees, RC
/// ops, peaks) — the same numbers the stats-classification invariant
/// cross-checks, so tenant accounting can never drift from the runtime's.
struct TenantCounters {
  uint64_t Submitted = 0;  ///< admission attempts seen
  uint64_t Admitted = 0;   ///< passed the governor
  uint64_t Executed = 0;   ///< ran on a worker
  uint64_t Traps = 0;      ///< executed and trapped
  uint64_t RejectedRateLimited = 0;
  uint64_t RejectedTenantQuota = 0;
  uint64_t Shed = 0;       ///< admitted but shed before running
  double QueueSecondsTotal = 0;
  double RunSecondsTotal = 0;
  HeapStats Heap;          ///< accumulated per-request stats deltas
  size_t RetainedPeakBytes = 0; ///< worst worker-retained bytes observed
};

struct ServiceResponse; // Service.h; onOutcome reads it

/// See the file comment.
class TenantGovernor {
public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// One admission verdict. Reject == None admits (and records the
  /// request in flight until onOutcome()).
  struct Decision {
    RejectKind Reject = RejectKind::None;
    uint64_t RetryAfterMs = 0;
    const char *Error = ""; ///< static diagnostic, "" when admitted
  };

  explicit TenantGovernor(TenantPolicy DefaultPolicy = {})
      : Default(DefaultPolicy) {}

  /// Policy for tenants without an explicit one.
  void setDefaultPolicy(const TenantPolicy &P);
  /// Installs (or replaces) \p Tenant's policy.
  void setPolicy(const std::string &Tenant, const TenantPolicy &P);

  /// Admission check for one request: token bucket, in-flight cap, and —
  /// when \p TotalQueued is at or past 3/4 of \p QueueCapacity — the
  /// fair-share shed (\p TenantQueued over QueueCapacity / active
  /// tenants). Admission consumes a token and counts in flight.
  Decision admit(const std::string &Tenant, TimePoint Now,
                 size_t TenantQueued, size_t TotalQueued,
                 size_t QueueCapacity);

  /// Applies the tenant's RunLimits clamps to \p L in place.
  void clampLimits(const std::string &Tenant, RunLimits &L) const;

  /// Terminal accounting for an admitted request (executed, shed in the
  /// queue, or rejected downstream): releases the in-flight slot and
  /// folds the response's telemetry into the tenant's ledgers.
  void onOutcome(const std::string &Tenant, const ServiceResponse &R);

  /// Snapshot of \p Tenant's counters (zeroes for an unknown tenant).
  TenantCounters counters(const std::string &Tenant) const;

  /// Every tenant the governor has seen, in no particular order.
  std::vector<std::string> tenants() const;

private:
  struct State {
    TenantPolicy Policy;
    bool HasPolicy = false; ///< false: track Default (including updates)
    double Tokens = 0;
    bool BucketPrimed = false;
    TimePoint LastRefill{};
    uint64_t InFlight = 0;
    TenantCounters C;
  };

  const TenantPolicy &policyFor(const State &S) const {
    return S.HasPolicy ? S.Policy : Default;
  }
  State &stateFor(const std::string &Tenant);

  mutable std::mutex M;
  TenantPolicy Default;
  std::unordered_map<std::string, State> Tenants;
  uint64_t ActiveTenants = 0; ///< tenants with InFlight > 0
};

/// See the file comment. TrapThreshold == 0 disables the breaker
/// entirely (every admit allows, no state is kept).
class CircuitBreaker {
public:
  using TimePoint = std::chrono::steady_clock::time_point;

  enum class State : uint8_t {
    Closed,   ///< normal operation
    Open,     ///< rejecting fast until the cooldown elapses
    HalfOpen, ///< cooldown elapsed; one probe request decides
  };

  struct Decision {
    bool Allow = true;
    uint64_t RetryAfterMs = 0; ///< when !Allow: remaining cooldown
  };

  CircuitBreaker(unsigned TrapThreshold, uint64_t CooldownMs)
      : Threshold(TrapThreshold), CooldownMs(CooldownMs) {}

  bool enabled() const { return Threshold != 0; }

  /// Admission check for \p SourceKey. An Open breaker whose cooldown
  /// elapsed transitions to HalfOpen and admits exactly one probe;
  /// everything else queues behind the probe's verdict.
  Decision admit(const std::string &SourceKey, TimePoint Now);

  /// Terminal verdict for an admitted request. \p Executed is false for
  /// requests shed before running — they release a half-open probe slot
  /// but neither trip nor heal the breaker.
  void onOutcome(const std::string &SourceKey, bool Executed, bool Trapped,
                 TimePoint Now);

  /// Test introspection: the breaker state for \p SourceKey.
  State state(const std::string &SourceKey) const;

private:
  struct Entry {
    State St = State::Closed;
    unsigned ConsecutiveTraps = 0;
    TimePoint OpenedAt{};
    bool ProbeInFlight = false;
  };

  mutable std::mutex M;
  unsigned Threshold;
  uint64_t CooldownMs;
  std::unordered_map<std::string, Entry> Entries;
};

} // namespace perceus

#endif // PERCEUS_SERVICE_TENANTGOVERNOR_H
