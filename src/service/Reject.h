//===- service/Reject.h - Structured admission outcomes ---------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The closed vocabulary of structured admission outcomes. A rejection is
/// a *response*, never an abort: every kind here maps to a stable name
/// ("queue-full", "rate-limited", ...) that flows into the
/// perceus-stats-v1 `service` object and the perceus-bench-v1 validator's
/// closed status set. Split out of Service.h so the admission-policy
/// layer (TenantGovernor, CircuitBreaker) can speak the same vocabulary
/// without a circular include.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_SERVICE_REJECT_H
#define PERCEUS_SERVICE_REJECT_H

#include <cstdint>

namespace perceus {

/// Why a request was refused without executing. Rejections are structured
/// outcomes — the service never aborts on overload.
enum class RejectKind : uint8_t {
  None,         ///< not rejected (see Executed / Run)
  QueueFull,    ///< bounded queue at capacity at submit time
  Shedding,     ///< shed: stopping, or deadline expired while queued
  CompileError, ///< the (cached) compilation of the key failed
  RateLimited,  ///< the tenant's token bucket is empty
  TenantQuota,  ///< tenant over max-in-flight or over fair share
  CircuitOpen,  ///< the source's circuit breaker is open (trap storm)
  BadRequest,   ///< structurally invalid request (empty entry, bad JSON)
};

/// Short stable name ("ok", "queue-full", ...) for logs and JSON.
const char *rejectKindName(RejectKind K);

} // namespace perceus

#endif // PERCEUS_SERVICE_REJECT_H
