//===- calculus/SubstEval.cpp - Standard semantics of lambda-1 ----------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "calculus/SubstEval.h"

#include "ir/Builder.h"
#include "support/Casting.h"

#include <functional>

using namespace perceus;

namespace {

class SubstInterp {
public:
  SubstInterp(Program &P, uint64_t Fuel) : P(P), B(P), Fuel(Fuel) {}

  Program &P;
  IRBuilder B;
  uint64_t Fuel;
  bool OutOfFuel = false;
  bool Stuck = false;

  /// Leaves only; compound forms are handled by the driver (eval2).
  const Expr *eval(const Expr *E) {
    if (OutOfFuel || Stuck)
      return nullptr;
    switch (E->kind()) {
    case ExprKind::Lit:
    case ExprKind::Lam:
    case ExprKind::Global:
      return E;
    default:
      // Open variables, RC instructions, and non-calculus forms are
      // stuck under the standard semantics.
      Stuck = true;
      return nullptr;
    }
  }

  bool spend() {
    if (Fuel == 0) {
      OutOfFuel = true;
      return false;
    }
    --Fuel;
    return true;
  }
};

} // namespace

/// Substitution must turn `match x {..}` whose scrutinee is substituted
/// into an applied match; since MatchExpr holds a Symbol we wrap the
/// value in a let with a fresh name instead, preserving semantics.
const Expr *perceus::substitute(Program &P, const Expr *E, Symbol X,
                                const Expr *V) {
  IRBuilder B(P);
  // Variable-for-variable substitution (the only kind the heap semantics
  // performs) also renames RC-instruction operands, match scrutinees and
  // token references.
  Symbol RenameTo;
  if (const auto *VV = dyn_cast<VarExpr>(V))
    RenameTo = VV->name();
  auto ren = [&](Symbol S) { return S == X && RenameTo ? RenameTo : S; };
  std::function<const Expr *(const Expr *)> Go =
      [&](const Expr *N) -> const Expr * {
    switch (N->kind()) {
    case ExprKind::Lit:
    case ExprKind::Global:
      return N;
    case ExprKind::Var:
      return cast<VarExpr>(N)->name() == X ? V : N;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(N);
      for (Symbol Pm : L->params())
        if (Pm == X)
          return N; // shadowed (cannot happen with unique binders)
      const Expr *Body = Go(L->body());
      bool CapsHit = false;
      for (Symbol C : L->captures())
        CapsHit |= C == X;
      if (Body == L->body() && !CapsHit)
        return N;
      // Update the capture annotation (the multiset ys of Figure 4):
      // var-for-var substitution renames the capture; substituting a
      // closed value removes it.
      std::vector<Symbol> Caps;
      for (Symbol C : L->captures()) {
        if (C != X)
          Caps.push_back(C);
        else if (RenameTo)
          Caps.push_back(RenameTo);
      }
      return B.lamWithId(L->lamId(), L->params(),
                         std::span<const Symbol>(Caps.data(), Caps.size()),
                         Body, N->loc());
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(N);
      const Expr *F = Go(A->fn());
      bool Changed = F != A->fn();
      std::vector<const Expr *> Args;
      for (const Expr *Arg : A->args()) {
        Args.push_back(Go(Arg));
        Changed |= Args.back() != Arg;
      }
      if (!Changed)
        return N;
      return B.app(F, std::span<const Expr *const>(Args.data(), Args.size()),
                   N->loc());
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(N);
      const Expr *Bound = Go(L->bound());
      const Expr *Body = L->name() == X ? L->body() : Go(L->body());
      if (Bound == L->bound() && Body == L->body())
        return N;
      return B.let(L->name(), Bound, Body, N->loc());
    }
    case ExprKind::Con: {
      const auto *C = cast<ConExpr>(N);
      Symbol Tok = C->hasReuseToken() ? ren(C->reuseToken())
                                      : C->reuseToken();
      bool Changed = Tok != C->reuseToken();
      std::vector<const Expr *> Args;
      for (const Expr *Arg : C->args()) {
        Args.push_back(Go(Arg));
        Changed |= Args.back() != Arg;
      }
      if (!Changed)
        return N;
      return B.con(C->ctor(),
                   std::span<const Expr *const>(Args.data(), Args.size()),
                   Tok, N->loc());
    }
    case ExprKind::Match: {
      const auto *M = cast<MatchExpr>(N);
      bool ScrutHit = M->scrutinee() == X;
      bool Changed = false;
      std::vector<MatchArm> Arms;
      for (const MatchArm &Arm : M->arms()) {
        bool Shadowed = false;
        for (Symbol Bv : Arm.Binders)
          if (Bv == X)
            Shadowed = true;
        MatchArm NewArm = Arm;
        if (!Shadowed)
          NewArm.Body = Go(Arm.Body);
        Changed |= NewArm.Body != Arm.Body;
        Arms.push_back(NewArm);
      }
      if (ScrutHit) {
        if (RenameTo) {
          return B.match(RenameTo,
                         std::span<const MatchArm>(Arms.data(), Arms.size()),
                         N->loc());
        }
        // The scrutinee variable is replaced by a value term: rebuild as
        // an immediate match via a fresh binding (rule (match) fires
        // once the bound value is in place).
        Symbol Tmp = P.symbols().fresh("scrut");
        const Expr *Inner = B.match(
            Tmp, std::span<const MatchArm>(Arms.data(), Arms.size()),
            N->loc());
        return B.let(Tmp, V, Inner, N->loc());
      }
      if (!Changed)
        return N;
      return B.match(M->scrutinee(),
                     std::span<const MatchArm>(Arms.data(), Arms.size()),
                     N->loc());
    }

    case ExprKind::Seq: {
      const auto *Q = cast<SeqExpr>(N);
      const Expr *First = Go(Q->first());
      const Expr *Second = Go(Q->second());
      if (First == Q->first() && Second == Q->second())
        return N;
      return B.seq(First, Second, N->loc());
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(N);
      const Expr *C = Go(I->cond());
      const Expr *T = Go(I->thenExpr());
      const Expr *El = Go(I->elseExpr());
      if (C == I->cond() && T == I->thenExpr() && El == I->elseExpr())
        return N;
      return B.iff(C, T, El, N->loc());
    }
    case ExprKind::Prim: {
      const auto *Pr = cast<PrimExpr>(N);
      bool Changed = false;
      std::vector<const Expr *> Args;
      for (const Expr *Arg : Pr->args()) {
        Args.push_back(Go(Arg));
        Changed |= Args.back() != Arg;
      }
      if (!Changed)
        return N;
      return B.prim(Pr->op(),
                    std::span<const Expr *const>(Args.data(), Args.size()),
                    N->loc());
    }

    //===--- RC instructions (variable renaming only) ---------------------===//
    case ExprKind::Dup: {
      const auto *D = cast<DupExpr>(N);
      const Expr *Rest = Go(D->rest());
      if (ren(D->var()) == D->var() && Rest == D->rest())
        return N;
      return B.dup(ren(D->var()), Rest, N->loc());
    }
    case ExprKind::Drop: {
      const auto *D = cast<DropExpr>(N);
      const Expr *Rest = Go(D->rest());
      if (ren(D->var()) == D->var() && Rest == D->rest())
        return N;
      return B.drop(ren(D->var()), Rest, N->loc());
    }
    case ExprKind::Free: {
      const auto *D = cast<FreeExpr>(N);
      const Expr *Rest = Go(D->rest());
      if (ren(D->var()) == D->var() && Rest == D->rest())
        return N;
      return B.freeCell(ren(D->var()), Rest, N->loc());
    }
    case ExprKind::DecRef: {
      const auto *D = cast<DecRefExpr>(N);
      const Expr *Rest = Go(D->rest());
      if (ren(D->var()) == D->var() && Rest == D->rest())
        return N;
      return B.decref(ren(D->var()), Rest, N->loc());
    }
    case ExprKind::IsUnique: {
      const auto *U = cast<IsUniqueExpr>(N);
      const Expr *T = Go(U->thenExpr());
      const Expr *El = Go(U->elseExpr());
      if (ren(U->var()) == U->var() && T == U->thenExpr() &&
          El == U->elseExpr())
        return N;
      return B.isUnique(ren(U->var()), T, El, N->loc());
    }
    case ExprKind::DropReuse: {
      const auto *D = cast<DropReuseExpr>(N);
      const Expr *Rest = D->token() == X ? D->rest() : Go(D->rest());
      if (ren(D->var()) == D->var() && Rest == D->rest())
        return N;
      return B.dropReuse(ren(D->var()), D->token(), Rest, N->loc());
    }
    case ExprKind::ReuseAddr:
      if (ren(cast<ReuseAddrExpr>(N)->var()) == cast<ReuseAddrExpr>(N)->var())
        return N;
      return B.reuseAddr(ren(cast<ReuseAddrExpr>(N)->var()), N->loc());
    case ExprKind::IsNullToken: {
      const auto *T = cast<IsNullTokenExpr>(N);
      const Expr *Th = Go(T->thenExpr());
      const Expr *El = Go(T->elseExpr());
      if (ren(T->token()) == T->token() && Th == T->thenExpr() &&
          El == T->elseExpr())
        return N;
      return B.isNullToken(ren(T->token()), Th, El, N->loc());
    }
    case ExprKind::SetField: {
      const auto *F = cast<SetFieldExpr>(N);
      const Expr *Vl = Go(F->value());
      const Expr *Rest = Go(F->rest());
      if (ren(F->token()) == F->token() && Vl == F->value() &&
          Rest == F->rest())
        return N;
      return B.setField(ren(F->token()), F->index(), Vl, Rest, N->loc());
    }
    case ExprKind::TokenValue: {
      const auto *T = cast<TokenValueExpr>(N);
      bool Changed = ren(T->token()) != T->token();
      std::vector<Symbol> Kept;
      for (Symbol K : T->keptFields()) {
        Kept.push_back(ren(K));
        Changed |= Kept.back() != K;
      }
      if (!Changed)
        return N;
      return B.tokenValue(ren(T->token()), T->ctor(),
                          std::span<const Symbol>(Kept.data(), Kept.size()),
                          N->loc());
    }
    default:
      // NullToken and other leaves.
      return N;
    }
  };
  return Go(E);
}

SubstResult perceus::substEval(Program &P, const Expr *E, uint64_t Fuel) {
  // The evaluator above treats `match` specially: because MatchExpr
  // scrutinees are symbols, substitute() rewrites a hit scrutinee into
  // `val tmp = v; match tmp {..}`; eval of Let then substitutes tmp and
  // hits the same case again. To break that cycle we implement match
  // here, on let-bound values.
  struct Interp : SubstInterp {
    using SubstInterp::SubstInterp;

    const Expr *eval2(const Expr *E) {
      if (OutOfFuel || Stuck)
        return nullptr;
      if (const auto *Lt = dyn_cast<LetExpr>(E)) {
        if (const auto *M = dyn_cast<MatchExpr>(Lt->body());
            M && M->scrutinee() == Lt->name()) {
          const Expr *V = eval2(Lt->bound());
          if (!V)
            return nullptr;
          return evalMatch(M, V);
        }
        const Expr *V = eval2(Lt->bound());
        if (!V)
          return nullptr;
        if (!spend())
          return nullptr;
        return eval2(substitute(P, Lt->body(), Lt->name(), V));
      }
      if (const auto *A = dyn_cast<AppExpr>(E)) {
        const Expr *F = eval2(A->fn());
        if (!F)
          return nullptr;
        std::vector<const Expr *> Args;
        for (const Expr *Arg : A->args()) {
          const Expr *V = eval2(Arg);
          if (!V)
            return nullptr;
          Args.push_back(V);
        }
        const auto *L = dyn_cast<LamExpr>(F);
        if (!L || L->params().size() != Args.size()) {
          Stuck = true;
          return nullptr;
        }
        if (!spend())
          return nullptr;
        const Expr *Body = L->body();
        for (size_t I = 0; I != Args.size(); ++I)
          Body = substitute(P, Body, L->params()[I], Args[I]);
        return eval2(Body);
      }
      if (const auto *C = dyn_cast<ConExpr>(E)) {
        std::vector<const Expr *> Args;
        for (const Expr *Arg : C->args()) {
          const Expr *V = eval2(Arg);
          if (!V)
            return nullptr;
          Args.push_back(V);
        }
        return B.con(C->ctor(),
                     std::span<const Expr *const>(Args.data(), Args.size()),
                     Symbol(), E->loc());
      }
      return eval(E); // leaves and errors
    }

    const Expr *evalMatch(const MatchExpr *M, const Expr *V) {
      const auto *C = dyn_cast<ConExpr>(V);
      if (!C) {
        Stuck = true;
        return nullptr;
      }
      for (const MatchArm &Arm : M->arms()) {
        bool Hit = false;
        if (Arm.Kind == ArmKind::Ctor)
          Hit = Arm.Ctor == C->ctor();
        else if (Arm.Kind == ArmKind::Default)
          Hit = true;
        if (!Hit)
          continue;
        if (!spend())
          return nullptr;
        const Expr *Body = Arm.Body;
        for (size_t I = 0; I != Arm.Binders.size(); ++I)
          Body = substitute(P, Body, Arm.Binders[I], C->args()[I]);
        return eval2(Body);
      }
      Stuck = true;
      return nullptr;
    }
  };

  Interp I(P, Fuel);
  SubstResult R;
  R.Value = I.eval2(E);
  R.OutOfFuel = I.OutOfFuel;
  R.Stuck = I.Stuck;
  return R;
}

bool perceus::valueEquals(const Program &P, const Expr *A, const Expr *B) {
  if (A->kind() != B->kind())
    return false;
  if (const auto *CA = dyn_cast<ConExpr>(A)) {
    const auto *CB = cast<ConExpr>(B);
    if (CA->ctor() != CB->ctor() || CA->args().size() != CB->args().size())
      return false;
    for (size_t I = 0; I != CA->args().size(); ++I)
      if (!valueEquals(P, CA->args()[I], CB->args()[I]))
        return false;
    return true;
  }
  if (const auto *LA = dyn_cast<LitExpr>(A))
    return LA->value() == cast<LitExpr>(B)->value();
  if (const auto *LA = dyn_cast<LamExpr>(A))
    return LA->params().size() == cast<LamExpr>(B)->params().size();
  return true;
}
