//===- calculus/SubstEval.h - Standard semantics of lambda-1 ----*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard strict semantics of lambda-1 (Figure 6 of the paper),
/// implemented as a big-step substitution-based evaluator over the pure
/// calculus subset of the IR (variables, lambdas, applications, let,
/// match, constructors). Used as the reference semantics in the
/// differential tests of Theorem 1 (soundness of the reference-counted
/// heap semantics).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_CALCULUS_SUBSTEVAL_H
#define PERCEUS_CALCULUS_SUBSTEVAL_H

#include "ir/Program.h"

#include <optional>

namespace perceus {

/// Result of substitution-based evaluation: a value term (Lam or Con of
/// values), or nullopt on stuck/fuel exhaustion.
struct SubstResult {
  const Expr *Value = nullptr;
  bool OutOfFuel = false;
  bool Stuck = false;

  bool ok() const { return Value != nullptr; }
};

/// Big-step evaluation of closed term \p E under Figure 6 with a fuel
/// bound (\p Fuel beta/match/let steps).
SubstResult substEval(Program &P, const Expr *E, uint64_t Fuel = 100000);

/// Capture-avoiding-by-uniqueness substitution e[X := V] where \p V is a
/// value term. Exposed for the unit tests of the semantics itself.
const Expr *substitute(Program &P, const Expr *E, Symbol X, const Expr *V);

/// Structural equality of two value terms, comparing constructor trees;
/// two lambda values compare equal if their bodies are alpha-equivalent
/// after erasing RC instructions (closures are compared conservatively).
bool valueEquals(const Program &P, const Expr *A, const Expr *B);

} // namespace perceus

#endif // PERCEUS_CALCULUS_SUBSTEVAL_H
