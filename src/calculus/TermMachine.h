//===- calculus/TermMachine.h - Figure 7 heap semantics ---------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful small-step implementation of the reference-counted heap
/// semantics of lambda-1 (Figure 7 of the paper): the state is
/// `H | e` with an explicit heap mapping variables to counted values,
/// evaluation contexts select the unique redex, and the rules (lam_r),
/// (con_r), (app_r), (match_r), (bind_r), (dup_r), (drop_r), (dlam_r),
/// (dcon_r) rewrite the term. The specialized instructions produced by
/// the optimization passes (is-unique, free, decref, drop-reuse, reuse
/// tokens) are supported with their refcount semantics, so the *whole*
/// optimized pipeline can be audited.
///
/// After every step the machine can audit the paper's meta-theory
/// dynamically:
///
///   * Theorem 2/4 (garbage-free): every heap entry is reachable
///     (Definition 1) from the erased current term — checked at every
///     state not at a dup/drop instruction;
///   * Appendix D.3 (exact counts): each entry's reference count equals
///     the number of references to it from the term and the heap.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_CALCULUS_TERMMACHINE_H
#define PERCEUS_CALCULUS_TERMMACHINE_H

#include "ir/Program.h"

#include <map>
#include <string>
#include <vector>

namespace perceus {

/// One heap entry: a counted constructor or closure value.
struct HeapEntry {
  int Rc = 0;
  bool IsClosure = false;
  CtorId Ctor = InvalidId;            // constructors
  const Expr *Lam = nullptr;          // closures: the lambda term
  std::vector<Symbol> Fields;         // ctor fields / closure environment
};

/// Result of running the term machine.
struct TermRunResult {
  bool Ok = false;
  std::string Error;
  Symbol Value;            ///< heap variable naming the final value
  uint64_t Steps = 0;
  uint64_t MaxHeapCells = 0;
  std::vector<std::string> AuditFailures; ///< garbage-free/exactness violations
};

/// The Figure 7 machine; see the file comment.
class TermMachine {
public:
  explicit TermMachine(Program &P) : P(P) {}

  /// When enabled, runs the reachability and exact-count audits after
  /// every step (quadratic; for small terms).
  void setAudit(bool Enabled) { Audit = Enabled; }

  /// Maximum steps before giving up.
  void setStepLimit(uint64_t Limit) { StepLimit = Limit; }

  /// Prints each state to stderr (debugging aid).
  void setTrace(bool Enabled) { Trace = Enabled; }

  /// Runs closed instrumented term \p E to a value.
  TermRunResult run(const Expr *E);

  /// The final heap (for readback); valid after run().
  const std::map<Symbol, HeapEntry> &heap() const { return H; }

  /// Reads the value named by \p X back into a constructor tree
  /// (closures appear as zero-argument lambdas). For comparing with the
  /// standard semantics.
  const Expr *readback(Symbol X) const;

private:
  const Expr *step(const Expr *E, bool &Progress, bool &AtRcOp);
  void auditExactCounts(Symbol Value);
  Symbol allocCon(CtorId C, std::vector<Symbol> Fields);
  Symbol allocClosure(const Expr *Lam, std::vector<Symbol> Env);
  void dropVar(Symbol X, std::vector<const Expr *> &Pending);
  void auditState(const Expr *E);
  std::string name(Symbol S) const;

  Program &P;
  std::map<Symbol, HeapEntry> H;
  Symbol NullTok; // the distinguished NULL token symbol
  bool Audit = true;
  bool Trace = false;
  uint64_t StepLimit = 200000;
  TermRunResult *Run = nullptr;
};

} // namespace perceus

#endif // PERCEUS_CALCULUS_TERMMACHINE_H
