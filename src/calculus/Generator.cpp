//===- calculus/Generator.cpp - Random lambda-1 program generator -------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "calculus/Generator.h"

#include "analysis/FreeVars.h"
#include "ir/Builder.h"

#include <vector>

using namespace perceus;

namespace {

/// Simple types: `box` or `box -> box` (rank-1 unary functions).
enum class Ty : uint8_t { Box, Fun };

class GeneratorImpl {
public:
  GeneratorImpl(Program &P, Rng &R) : P(P), B(P), R(R) {}

  Program &P;
  IRBuilder B;
  Rng &R;
  CtorId Atom = InvalidId, Wrap = InvalidId, Pair = InvalidId;
  std::vector<std::pair<Symbol, Ty>> Env;

  void setupTypes() {
    Symbol BoxName = P.symbols().intern("box");
    uint32_t DataId = P.findData(BoxName);
    if (DataId == InvalidId) {
      DataId = P.addData(BoxName);
      P.addCtor(DataId, P.symbols().intern("BAtom"), 0);
      P.addCtor(DataId, P.symbols().intern("BWrap"), 1);
      P.addCtor(DataId, P.symbols().intern("BPair"), 2);
    }
    Atom = P.findCtor(P.symbols().intern("BAtom"));
    Wrap = P.findCtor(P.symbols().intern("BWrap"));
    Pair = P.findCtor(P.symbols().intern("BPair"));
  }

  /// A random in-scope variable of type \p T, or invalid.
  Symbol pickVar(Ty T) {
    std::vector<Symbol> Cands;
    for (const auto &[S, VT] : Env)
      if (VT == T)
        Cands.push_back(S);
    if (Cands.empty())
      return Symbol();
    return Cands[R.below(Cands.size())];
  }

  const Expr *gen(Ty T, unsigned Depth) {
    if (T == Ty::Fun)
      return genFun(Depth);
    return genBox(Depth);
  }

  const Expr *genBox(unsigned Depth) {
    // Leaves when out of depth.
    if (Depth == 0) {
      if (Symbol V = pickVar(Ty::Box); V && R.chance(2, 3))
        return B.var(V);
      return B.con(Atom, {});
    }
    switch (R.below(10)) {
    case 0:
    case 1: { // variable or atom
      if (Symbol V = pickVar(Ty::Box); V && R.chance(1, 2))
        return B.var(V);
      return B.con(Atom, {});
    }
    case 2: // BWrap
      return B.con(Wrap, {genBox(Depth - 1)});
    case 3: // BPair
      return B.con(Pair, {genBox(Depth - 1), genBox(Depth - 1)});
    case 4: { // application
      const Expr *F = genFun(Depth - 1);
      const Expr *A = genBox(Depth - 1);
      return B.app(F, {A});
    }
    case 5: { // let of a box
      Symbol X = P.symbols().fresh("v");
      const Expr *Bound = genBox(Depth - 1);
      Env.push_back({X, Ty::Box});
      const Expr *Body = genBox(Depth - 1);
      Env.pop_back();
      return B.let(X, Bound, Body);
    }
    case 6: { // let of a function
      Symbol X = P.symbols().fresh("f");
      const Expr *Bound = genFun(Depth - 1);
      Env.push_back({X, Ty::Fun});
      const Expr *Body = genBox(Depth - 1);
      Env.pop_back();
      return B.let(X, Bound, Body);
    }
    default: { // match on a box
      Symbol S = P.symbols().fresh("s");
      const Expr *Scrut = genBox(Depth - 1);
      Env.push_back({S, Ty::Box});

      const Expr *AtomBody = genBox(Depth - 1);

      Symbol W = P.symbols().fresh("w");
      Env.push_back({W, Ty::Box});
      const Expr *WrapBody = genBox(Depth - 1);
      Env.pop_back();

      Symbol A = P.symbols().fresh("a");
      Symbol Bv = P.symbols().fresh("b");
      Env.push_back({A, Ty::Box});
      Env.push_back({Bv, Ty::Box});
      const Expr *PairBody = genBox(Depth - 1);
      Env.pop_back();
      Env.pop_back();

      Env.pop_back(); // S
      MatchArm Arms[3] = {
          B.ctorArm(Atom, {}, AtomBody),
          B.ctorArm(Wrap, {W}, WrapBody),
          B.ctorArm(Pair, {A, Bv}, PairBody),
      };
      return B.let(S, Scrut,
                   B.match(S, std::span<const MatchArm>(Arms, 3)));
    }
    }
  }

  const Expr *genFun(unsigned Depth) {
    if (Symbol V = pickVar(Ty::Fun); V && (Depth == 0 || R.chance(1, 3)))
      return B.var(V);
    // A fresh lambda box -> box.
    Symbol X = P.symbols().fresh("x");
    Env.push_back({X, Ty::Box});
    const Expr *Body = genBox(Depth == 0 ? 0 : Depth - 1);
    Env.pop_back();
    // Captures are the free variables of the body minus the parameter.
    FreeVarAnalysis FV;
    VarSet Free = FV.freeVars(Body);
    Free.erase(X);
    std::vector<Symbol> Caps(Free.begin(), Free.end());
    Symbol Params[1] = {X};
    return B.lam(std::span<const Symbol>(Params, 1),
                 std::span<const Symbol>(Caps.data(), Caps.size()), Body);
  }
};

} // namespace

GeneratedTerm perceus::generateTerm(Program &P, Rng &R, unsigned MaxDepth) {
  GeneratorImpl G(P, R);
  G.setupTypes();
  const Expr *Body = G.genBox(MaxDepth);
  Symbol Name = P.symbols().fresh("calc-main");
  FuncId F = P.addFunction(Name, {}, Body);
  return {F, Body};
}
