//===- calculus/Generator.h - Random lambda-1 program generator -*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random *closed, terminating* lambda-1 terms for the
/// property tests of the paper's meta-theory. Terms are simply typed
/// (one recursive data type `box` plus unary function types) and contain
/// no recursion, so every generated term normalizes; size and depth are
/// bounded. The generator drives:
///
///   * Theorem 1 (soundness): standard semantics vs. the RC'd machine;
///   * Theorems 2/4 (garbage-free): the per-step reachability audit;
///   * pass robustness: every pipeline configuration must produce
///     linear, well-formed code for every generated term.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_CALCULUS_GENERATOR_H
#define PERCEUS_CALCULUS_GENERATOR_H

#include "ir/Program.h"
#include "support/Rng.h"

namespace perceus {

/// A generated test case: a program with one nullary function whose body
/// is the generated closed term.
struct GeneratedTerm {
  FuncId Func = InvalidId;
  const Expr *Body = nullptr;
};

/// Generates a random closed term into \p P (declaring the `box` data
/// type on first use). \p MaxDepth bounds the expression tree depth.
GeneratedTerm generateTerm(Program &P, Rng &R, unsigned MaxDepth = 6);

} // namespace perceus

#endif // PERCEUS_CALCULUS_GENERATOR_H
