//===- calculus/TermMachine.cpp - Figure 7 heap semantics ---------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Conventions (documented divergences from the literal Figure 7 rules):
//
//  * (match_r) in the paper dups the fields and drops the scrutinee at
//    runtime because the Figure 8 translation emits neither. Our
//    compiler-oriented insertion emits those operations *explicitly*
//    (Figure 1b), so this machine's match only substitutes the binders —
//    the combined behaviour is identical, and it keeps one convention
//    across the term machine and the production abstract machine.
//
//  * The garbage-free audit follows Theorem 4: a state is audited only
//    when its redex is not a reference-counting instruction, and
//    reachability starts from the free variables of the *erased* term
//    (reuse tokens count as references: the token deliberately keeps the
//    dead cell's memory reachable until its paired allocation).
//
//===----------------------------------------------------------------------===//

#include "calculus/TermMachine.h"

#include "calculus/SubstEval.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "support/Casting.h"

#include <cstdio>
#include <set>

using namespace perceus;

namespace {

/// Values of the term machine: variables (heap locations) and literals.
/// (The NULL token literal is *not* a value: it reduces to the machine's
/// distinguished NULL-token variable so it can substitute into token
/// positions, which hold symbols.)
bool isVal(const Expr *E) {
  return E->kind() == ExprKind::Var || E->kind() == ExprKind::Lit;
}

Symbol valSym(const Expr *E) {
  if (const auto *V = dyn_cast<VarExpr>(E))
    return V->name();
  return Symbol();
}

/// Free variables of the erased term (see the file comment): RC
/// instruction operands do not count; token uses do.
void erasedFv(const Expr *E, std::set<Symbol> &Out,
              std::set<Symbol> Bound = {}) {
  auto Use = [&](Symbol X) {
    if (X.isValid() && !Bound.count(X))
      Out.insert(X);
  };
  switch (E->kind()) {
  case ExprKind::Lit:
  case ExprKind::Global:
  case ExprKind::NullToken:
    return;
  case ExprKind::Var:
    Use(cast<VarExpr>(E)->name());
    return;
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    std::set<Symbol> Inner = Bound;
    for (Symbol Pm : L->params())
      Inner.insert(Pm);
    erasedFv(L->body(), Out, Inner);
    return;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    erasedFv(A->fn(), Out, Bound);
    for (const Expr *Arg : A->args())
      erasedFv(Arg, Out, Bound);
    return;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    erasedFv(L->bound(), Out, Bound);
    Bound.insert(L->name());
    erasedFv(L->body(), Out, Bound);
    return;
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    erasedFv(S->first(), Out, Bound);
    erasedFv(S->second(), Out, Bound);
    return;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    erasedFv(I->cond(), Out, Bound);
    erasedFv(I->thenExpr(), Out, Bound);
    erasedFv(I->elseExpr(), Out, Bound);
    return;
  }
  case ExprKind::Match: {
    const auto *M = cast<MatchExpr>(E);
    Use(M->scrutinee());
    for (const MatchArm &Arm : M->arms()) {
      std::set<Symbol> Inner = Bound;
      for (Symbol B : Arm.Binders)
        Inner.insert(B);
      erasedFv(Arm.Body, Out, Inner);
    }
    return;
  }
  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    if (C->hasReuseToken())
      Use(C->reuseToken());
    for (const Expr *Arg : C->args())
      erasedFv(Arg, Out, Bound);
    return;
  }
  case ExprKind::Prim: {
    for (const Expr *Arg : cast<PrimExpr>(E)->args())
      erasedFv(Arg, Out, Bound);
    return;
  }
  // Erased RC instructions: the operand does not count.
  case ExprKind::Dup:
  case ExprKind::Drop:
  case ExprKind::Free:
  case ExprKind::DecRef:
    erasedFv(cast<RcStmtExpr>(E)->rest(), Out, Bound);
    return;
  case ExprKind::DropReuse: {
    const auto *D = cast<DropReuseExpr>(E);
    Bound.insert(D->token());
    erasedFv(D->rest(), Out, Bound);
    return;
  }
  case ExprKind::IsUnique: {
    const auto *U = cast<IsUniqueExpr>(E);
    erasedFv(U->thenExpr(), Out, Bound);
    erasedFv(U->elseExpr(), Out, Bound);
    return;
  }
  case ExprKind::ReuseAddr:
    Use(cast<ReuseAddrExpr>(E)->var());
    return;
  case ExprKind::IsNullToken: {
    const auto *N = cast<IsNullTokenExpr>(E);
    Use(N->token());
    erasedFv(N->thenExpr(), Out, Bound);
    erasedFv(N->elseExpr(), Out, Bound);
    return;
  }
  case ExprKind::SetField: {
    const auto *F = cast<SetFieldExpr>(E);
    Use(F->token());
    erasedFv(F->value(), Out, Bound);
    erasedFv(F->rest(), Out, Bound);
    return;
  }
  case ExprKind::TokenValue: {
    const auto *T = cast<TokenValueExpr>(E);
    Use(T->token());
    for (Symbol K : T->keptFields())
      Use(K);
    return;
  }
  }
}

/// The kind of the unique redex of \p E (or Var when \p E is a value).
ExprKind peekRedex(const Expr *E) {
  if (isVal(E))
    return ExprKind::Var;
  switch (E->kind()) {
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    if (!isVal(A->fn()))
      return peekRedex(A->fn());
    for (const Expr *Arg : A->args())
      if (!isVal(Arg))
        return peekRedex(Arg);
    return ExprKind::App;
  }
  case ExprKind::Con: {
    for (const Expr *Arg : cast<ConExpr>(E)->args())
      if (!isVal(Arg))
        return peekRedex(Arg);
    return ExprKind::Con;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    if (!isVal(L->bound()))
      return peekRedex(L->bound());
    return ExprKind::Let;
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    if (!isVal(S->first()))
      return peekRedex(S->first());
    return ExprKind::Seq;
  }
  case ExprKind::SetField: {
    const auto *F = cast<SetFieldExpr>(E);
    if (!isVal(F->value()))
      return peekRedex(F->value());
    return ExprKind::SetField;
  }
  default:
    return E->kind();
  }
}

/// Is auditing skipped for this redex? Theorem 4 excludes states whose
/// redex is a dup/drop; our statement encoding spreads the specialized
/// RC instructions over several administrative steps (the unit-valued
/// is-unique statement, the Seq that discards it, the let that binds a
/// reuse token, the NULL literal), so the whole administrative family is
/// excluded. This is conservative but loses nothing: these steps do not
/// allocate, so a genuinely garbage state persists to the next audited
/// redex (application, allocation, or match) unless an intervening —
/// legitimately pending — RC instruction frees it, which is exactly the
/// case the theorem's proviso exists for.
bool isRcRedex(ExprKind K) {
  switch (K) {
  case ExprKind::Dup:
  case ExprKind::Drop:
  case ExprKind::Free:
  case ExprKind::DecRef:
  case ExprKind::DropReuse:
  case ExprKind::IsUnique:
  case ExprKind::Seq:
  case ExprKind::Let:
  case ExprKind::NullToken:
    return true;
  default:
    return false;
  }
}

} // namespace

std::string TermMachine::name(Symbol S) const {
  return std::string(P.symbols().name(S));
}

Symbol TermMachine::allocCon(CtorId C, std::vector<Symbol> Fields) {
  Symbol L = P.symbols().fresh("loc");
  HeapEntry &E = H[L];
  E.Rc = 1;
  E.IsClosure = false;
  E.Ctor = C;
  E.Fields = std::move(Fields);
  return L;
}

Symbol TermMachine::allocClosure(const Expr *Lam, std::vector<Symbol> Env) {
  Symbol L = P.symbols().fresh("loc");
  HeapEntry &E = H[L];
  E.Rc = 1;
  E.IsClosure = true;
  E.Lam = Lam;
  E.Fields = std::move(Env);
  return L;
}

TermRunResult TermMachine::run(const Expr *E) {
  TermRunResult R;
  Run = &R;
  H.clear();
  if (!NullTok.isValid())
    NullTok = P.symbols().fresh("NULL-token");

  const Expr *Cur = E;
  while (!isVal(Cur)) {
    if (R.Steps >= StepLimit) {
      R.Error = "step limit exceeded";
      Run = nullptr;
      return R;
    }
    if (Trace) {
      fprintf(stderr, "--- step %llu (heap %zu)\n%s\n",
              (unsigned long long)R.Steps, H.size(),
              printExpr(P, Cur).c_str());
    }
    if (Audit && !isRcRedex(peekRedex(Cur)))
      auditState(Cur);
    bool Progress = false;
    bool AtRcOp = false;
    Cur = step(Cur, Progress, AtRcOp);
    if (!Cur) {
      Run = nullptr;
      return R; // Error already set
    }
    ++R.Steps;
    if (H.size() > R.MaxHeapCells)
      R.MaxHeapCells = H.size();
  }

  R.Ok = true;
  R.Value = valSym(Cur);
  if (Audit)
    auditExactCounts(R.Value);
  Run = nullptr;
  return R;
}

/// Appendix D.3: at a quiescent (final-value) state the reference count
/// of every live location equals the number of actual references to it —
/// one from the result variable, plus one per heap field that stores it.
void TermMachine::auditExactCounts(Symbol Value) {
  std::map<Symbol, int> Refs;
  if (Value.isValid())
    Refs[Value] += 1;
  for (const auto &[Loc, Entry] : H)
    for (Symbol F : Entry.Fields)
      if (F.isValid())
        Refs[F] += 1;
  for (const auto &[Loc, Entry] : H) {
    int Expected = Refs.count(Loc) ? Refs.at(Loc) : 0;
    if (Entry.Rc != Expected && Run->AuditFailures.size() < 16)
      Run->AuditFailures.push_back(
          "final state: location '" + name(Loc) + "' has rc " +
          std::to_string(Entry.Rc) + " but " + std::to_string(Expected) +
          " actual reference(s)");
  }
}

/// One reduction at the redex of \p E.
const Expr *TermMachine::step(const Expr *E, bool &Progress, bool &AtRcOp) {
  IRBuilder B(P);
  auto fail = [&](std::string Msg) -> const Expr * {
    Run->Error = std::move(Msg);
    return nullptr;
  };

  switch (E->kind()) {
  case ExprKind::Lam: {
    // (lam_r): allocate a closure holding the annotated environment ys.
    const auto *L = cast<LamExpr>(E);
    std::vector<Symbol> Env(L->captures().begin(), L->captures().end());
    for (Symbol Y : Env)
      if (!H.count(Y))
        return fail("closure captures unbound location '" + name(Y) + "'");
    return B.var(allocClosure(L, std::move(Env)));
  }

  case ExprKind::Con: {
    const auto *C = cast<ConExpr>(E);
    // Descend into the leftmost non-value argument.
    for (size_t I = 0; I != C->args().size(); ++I) {
      if (isVal(C->args()[I]))
        continue;
      const Expr *Arg = step(C->args()[I], Progress, AtRcOp);
      if (!Arg)
        return nullptr;
      std::vector<const Expr *> Args(C->args().begin(), C->args().end());
      Args[I] = Arg;
      return B.con(C->ctor(),
                   std::span<const Expr *const>(Args.data(), Args.size()),
                   C->reuseToken(), E->loc());
    }
    // (con_r), possibly with a reuse token.
    std::vector<Symbol> Fields;
    for (const Expr *Arg : C->args()) {
      Symbol S = valSym(Arg);
      if (!S.isValid())
        return fail("literal constructor field in the pure calculus");
      Fields.push_back(S);
    }
    if (C->hasReuseToken() && C->reuseToken() != NullTok) {
      Symbol Tok = C->reuseToken();
      auto It = H.find(Tok);
      if (It == H.end())
        return fail("reuse of a freed token cell");
      if (It->second.Rc != 1)
        return fail("reuse of a non-unique cell");
      It->second.IsClosure = false;
      It->second.Ctor = C->ctor();
      It->second.Fields = std::move(Fields);
      return B.var(Tok);
    }
    return B.var(allocCon(C->ctor(), std::move(Fields)));
  }

  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    if (!isVal(A->fn())) {
      const Expr *Fn = step(A->fn(), Progress, AtRcOp);
      if (!Fn)
        return nullptr;
      return B.app(Fn, A->args(), E->loc());
    }
    for (size_t I = 0; I != A->args().size(); ++I) {
      if (isVal(A->args()[I]))
        continue;
      const Expr *Arg = step(A->args()[I], Progress, AtRcOp);
      if (!Arg)
        return nullptr;
      std::vector<const Expr *> Args(A->args().begin(), A->args().end());
      Args[I] = Arg;
      return B.app(A->fn(),
                   std::span<const Expr *const>(Args.data(), Args.size()),
                   E->loc());
    }
    // (app_r): dup ys; drop f; body[params := args].
    Symbol F = valSym(A->fn());
    auto It = H.find(F);
    if (It == H.end() || !It->second.IsClosure)
      return fail("application of a non-closure");
    const auto *L = cast<LamExpr>(It->second.Lam);
    if (L->params().size() != A->args().size())
      return fail("arity mismatch in application");
    // Resolve the closure's stored environment against the lambda's
    // annotation: substitute captures first, then parameters.
    const Expr *Body = L->body();
    assert(It->second.Fields.size() == L->captures().size());
    for (size_t I = 0; I != L->captures().size(); ++I)
      if (L->captures()[I] != It->second.Fields[I])
        Body = substitute(P, Body, L->captures()[I],
                          B.var(It->second.Fields[I]));
    for (size_t I = 0; I != A->args().size(); ++I)
      Body = substitute(P, Body, L->params()[I], A->args()[I]);
    Body = B.drop(F, Body);
    std::vector<Symbol> Ys = It->second.Fields;
    for (size_t I = Ys.size(); I-- > 0;)
      Body = B.dup(Ys[I], Body);
    return Body;
  }

  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    if (!isVal(L->bound())) {
      const Expr *Bound = step(L->bound(), Progress, AtRcOp);
      if (!Bound)
        return nullptr;
      return B.let(L->name(), Bound, L->body(), E->loc());
    }
    // (bind_r).
    return substitute(P, L->body(), L->name(), L->bound());
  }

  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    if (!isVal(S->first())) {
      const Expr *First = step(S->first(), Progress, AtRcOp);
      if (!First)
        return nullptr;
      return B.seq(First, S->second(), E->loc());
    }
    return S->second(); // discard a unit-ish value
  }

  case ExprKind::Match: {
    const auto *M = cast<MatchExpr>(E);
    auto It = H.find(M->scrutinee());
    if (It == H.end() || It->second.IsClosure)
      return fail("match on a non-constructor location");
    for (const MatchArm &Arm : M->arms()) {
      bool Hit = Arm.Kind == ArmKind::Default ||
                 (Arm.Kind == ArmKind::Ctor && Arm.Ctor == It->second.Ctor);
      if (!Hit)
        continue;
      const Expr *Body = Arm.Body;
      for (size_t I = 0; I != Arm.Binders.size(); ++I)
        Body = substitute(P, Body, Arm.Binders[I],
                          IRBuilder(P).var(It->second.Fields[I]));
      return Body;
    }
    return fail("non-exhaustive match in the term machine");
  }

  //===--- RC instructions --------------------------------------------------//
  case ExprKind::Dup: {
    AtRcOp = true;
    const auto *D = cast<DupExpr>(E);
    auto It = H.find(D->var());
    if (It == H.end())
      return fail("dup of unbound location '" + name(D->var()) + "'");
    ++It->second.Rc; // (dup_r)
    return D->rest();
  }

  case ExprKind::Drop: {
    AtRcOp = true;
    const auto *D = cast<DropExpr>(E);
    std::vector<const Expr *> Pending;
    Symbol X = D->var();
    auto It = H.find(X);
    if (It == H.end())
      return fail("drop of unbound location '" + name(X) + "'");
    if (It->second.Rc > 1) {
      --It->second.Rc; // (drop_r)
      return D->rest();
    }
    // (dlam_r)/(dcon_r): free the entry, then drop its children.
    std::vector<Symbol> Ys = std::move(It->second.Fields);
    H.erase(It);
    IRBuilder B2(P);
    const Expr *Rest = D->rest();
    for (size_t I = Ys.size(); I-- > 0;)
      Rest = B2.drop(Ys[I], Rest);
    return Rest;
  }

  case ExprKind::Free: {
    AtRcOp = true;
    const auto *F = cast<FreeExpr>(E);
    if (F->var() == NullTok)
      return F->rest();
    auto It = H.find(F->var());
    if (It == H.end())
      return fail("free of unbound location '" + name(F->var()) + "'");
    if (It->second.Rc != 1)
      return fail("free of a shared cell '" + name(F->var()) + "'");
    // Field ownership was transferred (explicit child drops or binder
    // transfer); release the cell only.
    H.erase(It);
    return F->rest();
  }

  case ExprKind::DecRef: {
    AtRcOp = true;
    const auto *D = cast<DecRefExpr>(E);
    auto It = H.find(D->var());
    if (It == H.end())
      return fail("decref of unbound location");
    if (It->second.Rc <= 1)
      return fail("decref would free '" + name(D->var()) + "'");
    --It->second.Rc;
    return D->rest();
  }

  case ExprKind::IsUnique: {
    AtRcOp = true;
    const auto *U = cast<IsUniqueExpr>(E);
    auto It = H.find(U->var());
    if (It == H.end())
      return fail("is-unique on unbound location");
    return It->second.Rc == 1 ? U->thenExpr() : U->elseExpr();
  }

  case ExprKind::DropReuse: {
    AtRcOp = true;
    const auto *D = cast<DropReuseExpr>(E);
    auto It = H.find(D->var());
    if (It == H.end())
      return fail("drop-reuse of unbound location");
    if (It->second.Rc > 1) {
      --It->second.Rc;
      return substitute(P, D->rest(), D->token(),
                        IRBuilder(P).var(NullTok));
    }
    // Unique: the cell becomes a token (fields transferred out and
    // dropped explicitly); the token is the location itself.
    std::vector<Symbol> Ys = std::move(It->second.Fields);
    It->second.Fields.clear();
    const Expr *Rest =
        substitute(P, D->rest(), D->token(), IRBuilder(P).var(D->var()));
    IRBuilder B2(P);
    for (size_t I = Ys.size(); I-- > 0;)
      Rest = B2.drop(Ys[I], Rest);
    return Rest;
  }

  case ExprKind::NullToken:
    return IRBuilder(P).var(NullTok);

  case ExprKind::ReuseAddr: {
    const auto *R = cast<ReuseAddrExpr>(E);
    auto It = H.find(R->var());
    if (It == H.end())
      return fail("reuse-addr of unbound location");
    if (It->second.Rc != 1)
      return fail("reuse-addr of a shared cell");
    // Ownership of every field transfers to the pattern binders.
    It->second.Fields.clear();
    return IRBuilder(P).var(R->var());
  }

  case ExprKind::IsNullToken: {
    const auto *N = cast<IsNullTokenExpr>(E);
    return N->token() == NullTok ? N->thenExpr() : N->elseExpr();
  }

  case ExprKind::SetField: {
    const auto *F = cast<SetFieldExpr>(E);
    if (!isVal(F->value())) {
      const Expr *V = step(F->value(), Progress, AtRcOp);
      if (!V)
        return nullptr;
      return B.setField(F->token(), F->index(), V, F->rest(), E->loc());
    }
    auto It = H.find(F->token());
    if (It == H.end())
      return fail("field assignment through a freed token");
    Symbol V = valSym(F->value());
    if (!V.isValid())
      return fail("literal field value in the pure calculus");
    if (It->second.Fields.size() <= F->index())
      It->second.Fields.resize(F->index() + 1);
    It->second.Fields[F->index()] = V;
    return F->rest();
  }

  case ExprKind::TokenValue: {
    const auto *T = cast<TokenValueExpr>(E);
    auto It = H.find(T->token());
    if (It == H.end())
      return fail("token value of a freed token");
    const CtorDecl &C = P.ctor(T->ctor());
    It->second.IsClosure = false;
    It->second.Ctor = T->ctor();
    if (It->second.Fields.size() < C.Arity)
      It->second.Fields.resize(C.Arity);
    // Unwritten fields keep their values: restore them from the kept
    // binders, in field order.
    size_t KeptIdx = 0;
    for (uint32_t I = 0; I != C.Arity && KeptIdx != T->keptFields().size();
         ++I) {
      if (!It->second.Fields[I].isValid())
        It->second.Fields[I] = T->keptFields()[KeptIdx++];
    }
    return IRBuilder(P).var(T->token());
  }

  default:
    return fail("unsupported form in the term machine");
  }
}

void TermMachine::auditState(const Expr *E) {
  // Reachability (Definition 1) from the erased term.
  std::set<Symbol> Roots;
  erasedFv(E, Roots);
  std::set<Symbol> Reached;
  std::vector<Symbol> Work;
  for (Symbol R : Roots)
    if (H.count(R) && Reached.insert(R).second)
      Work.push_back(R);
  while (!Work.empty()) {
    Symbol X = Work.back();
    Work.pop_back();
    for (Symbol F : H.at(X).Fields)
      if (F.isValid() && H.count(F) && Reached.insert(F).second)
        Work.push_back(F);
  }
  for (const auto &[Loc, Entry] : H) {
    if (!Reached.count(Loc) && Run->AuditFailures.size() < 16)
      Run->AuditFailures.push_back(
          "step " + std::to_string(Run->Steps) + ": heap location '" +
          name(Loc) + "' (rc " + std::to_string(Entry.Rc) +
          ") is unreachable — the state is not garbage free");
    if (Entry.Rc <= 0 && Run->AuditFailures.size() < 16)
      Run->AuditFailures.push_back("step " + std::to_string(Run->Steps) +
                                   ": non-positive reference count on '" +
                                   name(Loc) + "'");
  }
}

const Expr *TermMachine::readback(Symbol X) const {
  IRBuilder B(const_cast<Program &>(P));
  auto It = H.find(X);
  if (It == H.end())
    return B.unit();
  const HeapEntry &E = It->second;
  if (E.IsClosure)
    return E.Lam;
  std::vector<const Expr *> Args;
  for (Symbol F : E.Fields)
    Args.push_back(readback(F));
  return B.con(E.Ctor,
               std::span<const Expr *const>(Args.data(), Args.size()));
}
