//===- gc/MarkSweep.cpp - Tracing collector baseline --------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/MarkSweep.h"

#include <vector>

using namespace perceus;

void perceus::collectMarkSweep(Heap &H, const RootEnumerator &Roots) {
  assert(H.mode() == HeapMode::Gc && "mark-sweep requires a GC-mode heap");
  ++H.stats().Collections;

  // Mark.
  std::vector<Cell *> Work;
  Roots([&](Value V) {
    if (V.isHeap() && !V.Ref->H.GcMark) {
      V.Ref->H.GcMark = 1;
      Work.push_back(V.Ref);
    }
  });
  while (!Work.empty()) {
    Cell *C = Work.back();
    Work.pop_back();
    Value *Fields = C->fields();
    for (uint32_t I = 0; I != C->H.Arity; ++I) {
      Value V = Fields[I];
      if (V.isHeap() && !V.Ref->H.GcMark) {
        V.Ref->H.GcMark = 1;
        Work.push_back(V.Ref);
      }
    }
  }

  // Sweep: release unmarked cells, unmark survivors.
  std::vector<Cell *> &All = H.allCells();
  size_t Live = 0;
  for (Cell *C : All) {
    if (C->H.GcMark) {
      C->H.GcMark = 0;
      All[Live++] = C;
    } else {
      H.releaseForSweep(C);
    }
  }
  All.resize(Live);
  H.resetGcThreshold();
}

void perceus::attachCollector(Heap &H, RootEnumerator Roots) {
  H.setCollectHook(
      [&H, Roots = std::move(Roots)] { collectMarkSweep(H, Roots); });
}
