//===- gc/MarkSweep.h - Tracing collector baseline --------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mark-sweep tracing garbage collector over the runtime heap. This is
/// the stand-in for the tracing-collector runtimes the paper benchmarks
/// against (OCaml/Haskell/Java; see DESIGN.md, substitutions): the IR is
/// run *without* any RC instructions and memory is reclaimed by tracing
/// from the abstract machine's stacks.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_GC_MARKSWEEP_H
#define PERCEUS_GC_MARKSWEEP_H

#include "runtime/Heap.h"

#include <functional>

namespace perceus {

/// Enumerates GC roots into a callback.
using RootEnumerator = std::function<void(const std::function<void(Value)> &)>;

/// Runs one mark-sweep collection of \p H using \p Roots.
void collectMarkSweep(Heap &H, const RootEnumerator &Roots);

/// Arms \p H (which must be in GC mode) to collect automatically when its
/// allocation threshold is crossed.
void attachCollector(Heap &H, RootEnumerator Roots);

} // namespace perceus

#endif // PERCEUS_GC_MARKSWEEP_H
