//===- runtime/Heap.cpp - Reference-counted heap ------------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include "runtime/SharedPool.h"
#include "support/FaultInjector.h"
#include "support/Telemetry.h"

#include <climits>
#include <cstring>

using namespace perceus;

namespace {
/// The canonical sticky count a saturating dup writes.
constexpr int32_t StickyRc = INT32_MIN;
/// Top of the sticky band (see CellHeader): any count at or below this
/// pins the cell alive, and is never updated. The 2^20 guard keeps racing
/// atomic decrements that passed the band check from wrapping the count
/// past INT32_MIN.
constexpr int32_t StickyBandTop = INT32_MIN + (1 << 20);
constexpr size_t SlabBytes = 256 * 1024;

/// Direct-mapped coalescing-buffer index. Fibonacci hashing: cells are
/// allocated at a constant stride (bump allocation of equal-size cells),
/// and a plain shift-xor of the address maps a strided sequence onto a
/// sub-lattice of the table — pairing nearly every cell with a conflict
/// partner that evicts it each round. Multiplying by the golden-ratio
/// constant spreads any stride uniformly; the well-mixed middle bits
/// select the slot.
size_t coalesceIndex(const Cell *C, size_t Slots) {
  auto Bits = static_cast<uint64_t>(reinterpret_cast<uintptr_t>(C) >> 4);
  return static_cast<size_t>((Bits * 0x9E3779B97F4A7C15ull) >> 32) &
         (Slots - 1);
}
} // namespace

Heap::Heap(HeapMode Mode, size_t GcThresholdBytes)
    : Mode(Mode), GcThreshold(GcThresholdBytes),
      GcThresholdMin(GcThresholdBytes) {}

Heap::~Heap() = default;

Cell *Heap::allocRaw(uint32_t Arity) {
  if (Arity < FreeLists.size() && FreeLists[Arity]) {
    Cell *C = FreeLists[Arity];
    FreeLists[Arity] = freeListNext(C);
    return C;
  }
  size_t Bytes = Cell::allocSize(Arity);
  // Compare remaining space, not `SlabCur + Bytes > SlabEnd`: on the
  // first allocation both pointers are null and arithmetic on a null
  // pointer is UB (UBSan flags it); the subtraction below is only formed
  // once a slab exists.
  if (!SlabCur || size_t(SlabEnd - SlabCur) < Bytes) {
    size_t Size = Bytes > SlabBytes ? Bytes : SlabBytes;
    Slabs.push_back({std::make_unique<char[]>(Size), Size});
    SlabBytesHeld += Size;
    SlabCur = Slabs.back().Mem.get();
    SlabEnd = SlabCur + Size;
  }
  Cell *C = reinterpret_cast<Cell *>(SlabCur);
  SlabCur += Bytes;
  return C;
}

Cell *Heap::alloc(uint32_t Arity, uint32_t Tag, CellKind Kind) {
  assert(Arity <= 255 && "constructor arity exceeds cell header capacity");
  if (Mode == HeapMode::Gc && !InCollect && CollectHook &&
      Stats.LiveBytes >= GcThreshold) {
    InCollect = true;
    CollectHook();
    InCollect = false;
  }
  if (Governed && !governedAllocAllowed(Arity)) {
    ++Stats.FailedAllocs;
    return nullptr;
  }
  Cell *C = allocRaw(Arity);
  C->H.Rc.store(1, std::memory_order_relaxed);
  C->H.Tag = static_cast<uint8_t>(Tag);
  C->H.Arity = static_cast<uint8_t>(Arity);
  C->H.Kind = Kind;
  C->H.GcMark = 0;
  ++Stats.Allocs;
  ++Stats.LiveCells;
  Stats.LiveBytes += Cell::allocSize(Arity);
  if (Stats.LiveBytes > Stats.PeakBytes)
    Stats.PeakBytes = Stats.LiveBytes;
  if (Mode == HeapMode::Gc || RegisterAllCells)
    AllCells.push_back(C);
  if (Sink)
    Sink->record(RcEvent::Alloc, Cell::allocSize(Arity));
  return C;
}

void Heap::release(Cell *C) {
  if (Sink)
    Sink->record(RcEvent::Free, Cell::allocSize(C->H.Arity));
  ++Stats.Frees;
  --Stats.LiveCells;
  Stats.LiveBytes -= Cell::allocSize(C->H.Arity);
  if (!LocallyShared.empty())
    LocallyShared.erase(C);
  uint32_t Arity = C->H.Arity;
  // rc == 0 is the freed marker; the trap-unwind walk relies on it to
  // skip stale references, so it is written in release builds too.
  C->H.Rc.store(0, std::memory_order_relaxed);
  if (Arity >= FreeLists.size())
    FreeLists.resize(Arity + 1, nullptr);
  freeListNext(C) = FreeLists[Arity];
  FreeLists[Arity] = C;
}

/// Slow path behind the single `Governed` branch in alloc: consults the
/// fault injector, then the limits; in GC mode a limit violation first
/// forces an emergency collection, since tracing may be sitting on
/// reclaimable garbage.
bool Heap::governedAllocAllowed(uint32_t Arity) {
  if (Injector && Injector->shouldFailAllocation())
    return false; // injected faults are deterministic: no rescue attempts
  if (Limits.unlimited())
    return true;
  auto withinLimits = [&] {
    if (Limits.MaxLiveBytes &&
        Stats.LiveBytes + Cell::allocSize(Arity) > Limits.MaxLiveBytes)
      return false;
    if (Limits.MaxLiveCells && Stats.LiveCells + 1 > Limits.MaxLiveCells)
      return false;
    if (Limits.AllocBudget && Stats.Allocs + 1 > Limits.AllocBudget)
      return false;
    return true;
  };
  if (withinLimits())
    return true;
  // An allocation budget counts history, not live data — no collection
  // can recover it. Live-data limits may be rescued by an emergency GC.
  if (Mode == HeapMode::Gc && CollectHook && !InCollect &&
      (Limits.MaxLiveBytes || Limits.MaxLiveCells)) {
    ++Stats.EmergencyCollections;
    InCollect = true;
    CollectHook();
    InCollect = false;
    if (withinLimits())
      return true;
  }
  return false;
}

void Heap::dupSlow(Value V) {
  if (Sink)
    Sink->record(RcEvent::DupCall, 0);
  if (Mode == HeapMode::Gc || !V.isHeap()) {
    // No-op: tracing configuration has no counts, immediates carry none.
    ++Stats.NonHeapRcOps;
    return;
  }
  ++Stats.DupOps;
  Cell *C = V.Ref;
  int32_t Rc = C->H.Rc.load(std::memory_order_relaxed);
  assert(Rc != 0 && "dup of freed cell");
  if (Rc > 0) {
    if (Rc == INT32_MAX) {
      // Count saturation: pin the cell alive forever instead of
      // overflowing into the shared encoding.
      C->H.Rc.store(StickyRc, std::memory_order_relaxed);
      return;
    }
    C->H.Rc.store(Rc + 1, std::memory_order_relaxed);
    return;
  }
  // Thread-shared: the count is negative; incrementing the count means
  // subtracting one, atomically. With coalescing the increment is
  // absorbed into the buffer instead (an eviction may flush another
  // slot, whose freed cells drainDropWork then disposes of).
  if (Coalescing) {
    ++Stats.CoalescedRcOps;
    bufferSharedDelta(C, +1);
    if (!SharedZero.empty() || !DropStack.empty())
      drainDropWork();
    return;
  }
  // Sticky counts (the band at the bottom of the range) stay untouched
  // — and since no RMW executes for them, they do not count as atomic
  // ops.
  if (Rc <= StickyBandTop)
    return;
  ++Stats.AtomicRcOps;
  C->H.Rc.fetch_sub(1, std::memory_order_relaxed);
}

/// Decrements the count of \p C; when it reaches zero, frees the cell and
/// (iteratively) drops its children.
void Heap::dropRef(Cell *C) {
  DropStack.push_back(C);
  drainDropWork();
}

/// The unified free-cascade loop: processes pending drops (DropStack) and
/// cells whose flushed shared count reached zero (SharedZero) until both
/// are empty. Freeing a cell pushes its children as drops; with coalescing
/// those may land back in the buffer rather than on a count.
void Heap::drainDropWork() {
  while (!DropStack.empty() || !SharedZero.empty()) {
    if (!SharedZero.empty()) {
      // A flushed delta took this shared count to zero: this heap holds
      // the last reference and must free. Children of a shared cell are
      // shared too (markShared is transitive), so the cascade stays on
      // shared paths.
      Cell *Cur = SharedZero.back();
      SharedZero.pop_back();
      Value *Fields = Cur->fields();
      for (uint32_t I = 0; I != Cur->H.Arity; ++I)
        if (Fields[I].isHeap())
          DropStack.push_back(Fields[I].Ref);
      if (SharedPool && !locallyShared(Cur))
        SharedPool->park(Cur);
      else
        release(Cur);
      continue;
    }
    Cell *Cur = DropStack.back();
    DropStack.pop_back();
    int32_t Rc = Cur->H.Rc.load(std::memory_order_relaxed);
    assert(Rc != 0 && "drop of freed cell");
    bool Foreign = false;
    if (Rc > 1) {
      Cur->H.Rc.store(Rc - 1, std::memory_order_relaxed);
      continue;
    }
    if (Rc < 0) {
      // Thread-shared slow path (single fused `rc <= 1` test, 2.7.2).
      // With coalescing the decrement is absorbed into the buffer; a
      // zero can then only surface at a flush (applySharedDelta).
      if (Coalescing) {
        ++Stats.CoalescedRcOps;
        bufferSharedDelta(Cur, -1);
        continue;
      }
      // Sticky counts are never updated, so no atomic op is recorded.
      if (Rc <= StickyBandTop)
        continue;
      ++Stats.AtomicRcOps;
      // Release on the decrement; the acquire *load* below (only on the
      // zero path) synchronizes with every other thread's decrement via
      // the release sequence — the shared_ptr pattern, far cheaper than
      // acq_rel on every decrement. A load (not a fence) so TSan models
      // the ordering.
      if (Cur->H.Rc.fetch_add(1, std::memory_order_release) != -1)
        continue;
      (void)Cur->H.Rc.load(std::memory_order_acquire);
      // The count reached zero: this thread holds the last reference and
      // must free. A shared cell owned by another heap cannot go on our
      // free lists — park it in the pool for the owner to absorb at
      // join.
      Foreign = SharedPool && !locallyShared(Cur);
    }
    // Unique (or last shared reference): free, then drop the children.
    Value *Fields = Cur->fields();
    for (uint32_t I = 0; I != Cur->H.Arity; ++I)
      if (Fields[I].isHeap())
        DropStack.push_back(Fields[I].Ref);
    if (Foreign)
      SharedPool->park(Cur);
    else
      release(Cur);
  }
}

void Heap::enableSharedCoalescing() {
  if (Coalescing)
    return;
  Coalescing = true;
  Coalesce = std::make_unique<CoalesceSlot[]>(CoalesceSlots);
}

/// Accumulates \p D into the direct-mapped slot for \p C, evicting (i.e.
/// applying) a conflicting resident first and auto-applying the slot when
/// its net delta saturates. May push freed cells onto SharedZero via
/// applySharedDelta; callers drain afterwards.
void Heap::bufferSharedDelta(Cell *C, int32_t D) {
  CoalesceSlot &S = Coalesce[coalesceIndex(C, CoalesceSlots)];
  if (S.C != C) {
    if (S.C && S.Delta != 0)
      applySharedDelta(S.C, S.Delta);
    S.C = C;
    S.Delta = 0;
  }
  S.Delta += D;
  if (S.Delta >= MaxCoalescedDelta || S.Delta <= -MaxCoalescedDelta) {
    int32_t Delta = S.Delta;
    S.Delta = 0;
    applySharedDelta(C, Delta);
  }
}

/// Applies a net delta to \p C's shared count with a single RMW. A
/// positive delta is net increments (count grows, rc decreases); a
/// negative delta is net decrements, and if the applied count reaches
/// zero the cell is queued on SharedZero for drainDropWork to free/park.
/// Sticky-band counts discard their deltas without any RMW.
void Heap::applySharedDelta(Cell *C, int32_t D) {
  if (D == 0)
    return;
  int32_t Rc = C->H.Rc.load(std::memory_order_relaxed);
  assert(Rc < 0 && "coalesced delta on a non-shared cell");
  if (Rc <= StickyBandTop)
    return;
  ++Stats.AtomicRcOps;
  if (D > 0) {
    C->H.Rc.fetch_sub(D, std::memory_order_relaxed);
    return;
  }
  int32_t Add = -D;
  int32_t Old = C->H.Rc.fetch_add(Add, std::memory_order_release);
  assert(Old + Add <= 0 && "coalesced decrements exceeded the shared count");
  if (Old + Add == 0) {
    (void)C->H.Rc.load(std::memory_order_acquire);
    SharedZero.push_back(C);
  }
}

void Heap::flushSharedDeltas() {
  if (!Coalescing)
    return;
  // Cascaded frees re-buffer child decrements, so loop until a full
  // sweep finds the buffer empty. Within each sweep, net increments
  // apply before net decrements (the deferred-RC flush rule): a pending
  // increment justified by a still-held reference lands before any
  // decrement can expose a zero.
  bool Any = true;
  while (Any) {
    Any = false;
    for (size_t I = 0; I != CoalesceSlots; ++I) {
      CoalesceSlot &S = Coalesce[I];
      if (S.C && S.Delta > 0) {
        int32_t D = S.Delta;
        S.Delta = 0;
        applySharedDelta(S.C, D);
        Any = true;
      }
    }
    for (size_t I = 0; I != CoalesceSlots; ++I) {
      CoalesceSlot &S = Coalesce[I];
      if (S.C && S.Delta < 0) {
        Cell *C = S.C;
        int32_t D = S.Delta;
        S.Delta = 0;
        applySharedDelta(C, D);
        Any = true;
      }
    }
    drainDropWork();
  }
}


void Heap::dropSlow(Value V) {
  if (Sink)
    Sink->record(RcEvent::DropCall, 0);
  if (Mode == HeapMode::Gc || !V.isHeap()) {
    ++Stats.NonHeapRcOps;
    return;
  }
  ++Stats.DropOps;
  dropRef(V.Ref);
}

void Heap::decrefSlow(Value V) {
  if (Sink)
    Sink->record(RcEvent::DecRefCall, 0);
  if (Mode == HeapMode::Gc || !V.isHeap()) {
    ++Stats.NonHeapRcOps;
    return;
  }
  ++Stats.DecRefOps;
  // Decref skips only the is-unique *fast path* of a specialized drop,
  // not the free: the decrement itself is drop's. In particular a
  // thread-local count of 1 must free the cell with its children
  // dropped — an earlier version asserted `Rc > 1` and, in release
  // builds where the assert vanished, stored the rc == 0 freed marker
  // without calling release(), leaking a cell the trap-unwind walk then
  // silently skipped (it treats rc == 0 as already freed).
  dropRef(V.Ref);
}

bool Heap::isUniqueSlow(Value V) {
  if (Sink)
    Sink->record(RcEvent::IsUniqueCall, 0);
  if (Mode == HeapMode::Gc || !V.isHeap()) {
    // Nothing is tested: classify with the other no-op RC operations
    // rather than inflating IsUniqueTests.
    ++Stats.NonHeapRcOps;
    return false;
  }
  ++Stats.IsUniqueTests;
  // Pending coalesced deltas never require a flush here: deltas exist
  // only for thread-shared cells (negative counts), and a shared cell is
  // never unique no matter what this heap privately owes its count — a
  // buffered decrement leaves the applied count too *negative*, and a
  // buffered increment cannot carry it to zero while the run is live
  // (the segment owner retains its root until after join). So the probe
  // reads the applied count directly; a stale delta can never make it
  // report true on a cell another thread holds.
  return V.Ref->H.Rc.load(std::memory_order_acquire) == 1;
}

void Heap::markShared(Value V) {
  if (!V.isHeap())
    return;
  std::vector<Cell *> Work{V.Ref};
  while (!Work.empty()) {
    Cell *C = Work.back();
    Work.pop_back();
    int32_t Rc = C->H.Rc.load(std::memory_order_relaxed);
    if (Rc < 0)
      continue; // already shared (children are too)
    assert(Rc > 0 && "tshare of freed cell");
    C->H.Rc.store(-Rc, std::memory_order_release);
    // With a pool installed, remember that *we* shared this cell: its
    // memory is ours, so its eventual free must not detour through the
    // foreign-cell pool.
    if (SharedPool)
      LocallyShared.insert(C);
    Value *Fields = C->fields();
    for (uint32_t I = 0; I != C->H.Arity; ++I)
      if (Fields[I].isHeap())
        Work.push_back(Fields[I].Ref);
  }
}

void Heap::freeMemoryOnly(Cell *C) {
  release(C);
}

void Heap::dropChildren(Cell *C) {
  Value *Fields = C->fields();
  for (uint32_t I = 0; I != C->H.Arity; ++I)
    drop(Fields[I]);
}

void Heap::resetGcThreshold() {
  size_t Next = Stats.LiveBytes * 2;
  GcThreshold = Next > GcThresholdMin ? Next : GcThresholdMin;
}

size_t Heap::reclaim(const std::vector<Value> &Roots) {
  // Trap unwind: buffered shared deltas are applied first,
  // unconditionally — a worker must never carry unflushed counts out of
  // a trapped run (the other workers and the joining owner read those
  // counts).
  flushSharedDeltas();
  // Mark-and-free over the machine's (over-approximate) root set. Slots
  // may hold stale references — to cells whose ownership already moved
  // elsewhere, or to cells already freed. The former are deduplicated
  // with the GcMark bit; the latter are skipped via the rc == 0 freed
  // marker, which release() maintains and whose header stays intact
  // because the free-list link lives past it. Reference counts are
  // otherwise ignored: at a trap, everything reachable is garbage.
  std::vector<Cell *> Work;
  auto push = [&](Value V) {
    Cell *C = nullptr;
    if (V.Kind == ValueKind::HeapRef)
      C = V.Ref;
    else if (V.Kind == ValueKind::Token)
      C = V.Tok;
    if (!C || C->H.GcMark)
      return;
    int32_t Rc = C->H.Rc.load(std::memory_order_relaxed);
    if (Rc == 0)
      return;
    // Foreign thread-shared cells are not ours to unwind: other threads
    // may still hold references (this heap's dups on them were already
    // balanced or are leaked *into* the shared segment, which its owner
    // sweeps after join). Touching them here would free live memory.
    if (Rc < 0 && SharedPool && !locallyShared(C))
      return;
    C->H.GcMark = 1;
    Work.push_back(C);
  };
  for (Value V : Roots)
    push(V);
  for (size_t I = 0; I != Work.size(); ++I) {
    Cell *C = Work[I];
    Value *Fields = C->fields();
    for (uint32_t F = 0; F != C->H.Arity; ++F)
      push(Fields[F]);
  }
  for (Cell *C : Work)
    release(C);
  Stats.UnwindFrees += Work.size();
  return Work.size();
}

size_t Heap::reclaimAll() {
  flushSharedDeltas();
  size_t N = AllCells.size();
  for (Cell *C : AllCells)
    release(C);
  AllCells.clear();
  Stats.UnwindFrees += N;
  return N;
}

size_t Heap::reclaimLeaked() {
  flushSharedDeltas();
  size_t N = 0;
  for (Cell *C : AllCells) {
    // Registry entries can repeat (free-list reuse re-registers the
    // address) and include already-freed cells; the rc == 0 marker
    // guards both.
    if (C->H.Rc.load(std::memory_order_relaxed) == 0)
      continue;
    release(C);
    ++N;
  }
  AllCells.clear();
  Stats.UnwindFrees += N;
  return N;
}

size_t Heap::trimRetained() {
  // Live cells pin their slabs (cells are carved out of slab interiors;
  // there is no per-slab occupancy map), so only an empty heap can give
  // memory back. Between service requests that is exactly the state the
  // garbage-free guarantee leaves the heap in.
  if (Stats.LiveCells != 0)
    return 0;
  size_t Before = SlabBytesHeld;
  // Every free-list entry and registry entry points into a slab that is
  // about to be released; drop them wholesale.
  FreeLists.clear();
  FreeLists.shrink_to_fit();
  AllCells.clear();
  AllCells.shrink_to_fit();
  DropStack.shrink_to_fit();
  // Keep one standard-size slab warm so the next run's first allocation
  // doesn't pay a fresh OS allocation; the bump pointer restarts at its
  // base (every cell in it is free — the heap is empty).
  std::unique_ptr<char[]> Warm;
  for (Slab &S : Slabs)
    if (!Warm && S.Size == SlabBytes)
      Warm = std::move(S.Mem);
  Slabs.clear();
  SlabCur = SlabEnd = nullptr;
  SlabBytesHeld = 0;
  if (Warm) {
    Slabs.push_back({std::move(Warm), SlabBytes});
    SlabBytesHeld = SlabBytes;
    SlabCur = Slabs.back().Mem.get();
    SlabEnd = SlabCur + SlabBytes;
  }
  return Before - SlabBytesHeld;
}

size_t Heap::absorbSharedFrees(SharedCellPool &Pool) {
  size_t N = 0;
  // Parked cells already carry the rc == 0 freed marker; release()
  // re-stores it harmlessly and does the stats + free-list work.
  Pool.drain([&](Cell *C) {
    release(C);
    ++N;
  });
  return N;
}

void perceus::accumulate(HeapStats &Into, const HeapStats &From) {
  Into.Allocs += From.Allocs;
  Into.Frees += From.Frees;
  Into.DupOps += From.DupOps;
  Into.DropOps += From.DropOps;
  Into.DecRefOps += From.DecRefOps;
  Into.NonHeapRcOps += From.NonHeapRcOps;
  Into.AtomicRcOps += From.AtomicRcOps;
  Into.CoalescedRcOps += From.CoalescedRcOps;
  Into.IsUniqueTests += From.IsUniqueTests;
  Into.Collections += From.Collections;
  Into.FailedAllocs += From.FailedAllocs;
  Into.EmergencyCollections += From.EmergencyCollections;
  Into.UnwindFrees += From.UnwindFrees;
  Into.LiveBytes += From.LiveBytes;
  Into.PeakBytes += From.PeakBytes;
  Into.LiveCells += From.LiveCells;
}
