//===- runtime/Heap.h - Reference-counted heap ------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime heap. In RC mode it implements the reference-counting
/// operations of the paper (dup, drop, decref, is-unique, free,
/// thread-shared marking with atomic negative counts); in GC mode it
/// registers every allocation so a tracing collector (src/gc) can
/// mark-and-sweep, and RC operations become no-ops that are never emitted
/// anyway. Both modes share the allocator: size-class (per-arity) free
/// lists over bump-allocated slabs, in the spirit of the mimalloc
/// allocator Koka uses.
///
/// The heap tracks precise statistics (allocations, frees, executed RC
/// operations, atomic operations, live/peak bytes) — these drive the
/// benchmark tables that reproduce the paper's Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_RUNTIME_HEAP_H
#define PERCEUS_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace perceus {

/// How the heap reclaims memory.
enum class HeapMode : uint8_t {
  Rc, ///< explicit reference counting (dup/drop in the program)
  Gc, ///< tracing mark-sweep collection (src/gc)
};

/// Counters the benchmarks and tests read.
struct HeapStats {
  uint64_t Allocs = 0;        ///< cells allocated (fresh, not reused)
  uint64_t Frees = 0;         ///< cells released
  uint64_t DupOps = 0;        ///< executed dups on heap values
  uint64_t DropOps = 0;       ///< executed drops on heap values
  uint64_t DecRefOps = 0;     ///< executed decrefs
  uint64_t NonHeapRcOps = 0;  ///< rc instructions that were no-ops
  uint64_t AtomicRcOps = 0;   ///< rc updates that had to be atomic
  uint64_t IsUniqueTests = 0; ///< executed is-unique tests
  uint64_t Collections = 0;   ///< tracing GC runs
  size_t LiveBytes = 0;       ///< currently allocated cell bytes
  size_t PeakBytes = 0;       ///< high-water mark of LiveBytes
  uint64_t LiveCells = 0;     ///< currently allocated cells
};

/// The runtime heap; see the file comment.
class Heap {
public:
  explicit Heap(HeapMode Mode = HeapMode::Rc,
                size_t GcThresholdBytes = 4u << 20);
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  HeapMode mode() const { return Mode; }
  HeapStats &stats() { return Stats; }
  const HeapStats &stats() const { return Stats; }

  /// Allocates a cell with \p Arity fields (fields uninitialized). In GC
  /// mode this may trigger a collection via the collect hook.
  Cell *alloc(uint32_t Arity, uint32_t Tag, CellKind Kind);

  /// Increments the reference count of \p V (no-op on immediates).
  void dup(Value V);

  /// Decrements; frees the cell and recursively drops its children when
  /// the count reaches zero.
  void drop(Value V);

  /// Decrements without the uniqueness fast path (the shared branch of a
  /// specialized drop). Still frees when a thread-shared count reaches 0.
  void decref(Value V);

  /// The `is-unique` test: true iff the count is exactly 1 and the value
  /// is not thread-shared.
  bool isUnique(Value V);

  /// Marks \p V and everything reachable from it thread-shared
  /// (the paper's `tshare`): counts become negative and all further RC
  /// operations on them are atomic.
  void markShared(Value V);

  /// Releases a cell's memory without touching its children (the `free`
  /// instruction after drop specialization, and token disposal).
  void freeMemoryOnly(Cell *C);

  /// Drops every field of \p C (the unique path of drop-reuse).
  void dropChildren(Cell *C);

  //===--- GC support (used by gc::MarkSweep) -------------------------------//

  /// Called when allocation crosses the GC threshold (GC mode only).
  void setCollectHook(std::function<void()> Hook) {
    CollectHook = std::move(Hook);
  }

  /// Every live-or-garbage cell (GC mode only).
  std::vector<Cell *> &allCells() { return AllCells; }

  /// Releases \p C during sweep (returns it to the free list).
  void releaseForSweep(Cell *C) { release(C); }

  /// Re-arms the collection threshold after a sweep.
  void resetGcThreshold();

  /// True when no cells are live — the garbage-free-at-exit check.
  bool empty() const { return Stats.LiveCells == 0; }

private:
  Cell *allocRaw(uint32_t Arity);
  void release(Cell *C);
  void dropRef(Cell *C);

  HeapMode Mode;
  HeapStats Stats;

  // Bump-allocated slabs.
  std::vector<std::unique_ptr<char[]>> Slabs;
  char *SlabCur = nullptr;
  char *SlabEnd = nullptr;

  // Per-arity free lists (the first word of a free cell is the next
  // pointer).
  std::vector<Cell *> FreeLists;

  // GC mode bookkeeping.
  std::vector<Cell *> AllCells;
  size_t GcThreshold;
  size_t GcThresholdMin;
  std::function<void()> CollectHook;
  bool InCollect = false;

  // Reused worklist for iterative recursive drops.
  std::vector<Cell *> DropStack;
};

} // namespace perceus

#endif // PERCEUS_RUNTIME_HEAP_H
