//===- runtime/Heap.h - Reference-counted heap ------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime heap. In RC mode it implements the reference-counting
/// operations of the paper (dup, drop, decref, is-unique, free,
/// thread-shared marking with atomic negative counts); in GC mode it
/// registers every allocation so a tracing collector (src/gc) can
/// mark-and-sweep, and RC operations become no-ops that are never emitted
/// anyway. Both modes share the allocator: size-class (per-arity) free
/// lists over bump-allocated slabs, in the spirit of the mimalloc
/// allocator Koka uses.
///
/// The heap tracks precise statistics (allocations, frees, executed RC
/// operations, atomic operations, live/peak bytes) — these drive the
/// benchmark tables that reproduce the paper's Figure 9.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_RUNTIME_HEAP_H
#define PERCEUS_RUNTIME_HEAP_H

#include "runtime/Value.h"

#include <cstddef>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

namespace perceus {

/// How the heap reclaims memory.
enum class HeapMode : uint8_t {
  Rc, ///< explicit reference counting (dup/drop in the program)
  Gc, ///< tracing mark-sweep collection (src/gc)
};

class FaultInjector;
class SharedCellPool;
class StatsSink;

/// Resource-governor limits. A zero field means "unlimited"; the default
/// value imposes no limits at all, and the governed checks are skipped
/// entirely (a single predicted-false branch) until a limit or a fault
/// injector is installed.
struct HeapLimits {
  size_t MaxLiveBytes = 0;   ///< cap on Stats.LiveBytes after an alloc
  uint64_t MaxLiveCells = 0; ///< cap on Stats.LiveCells after an alloc
  uint64_t AllocBudget = 0;  ///< cap on total allocations (Stats.Allocs)

  bool unlimited() const {
    return MaxLiveBytes == 0 && MaxLiveCells == 0 && AllocBudget == 0;
  }
};

/// Counters the benchmarks and tests read.
///
/// Classification invariant: every call of `dup`/`drop`/`decref`/
/// `isUnique` increments exactly one of DupOps, DropOps, DecRefOps,
/// IsUniqueTests, or NonHeapRcOps. A call lands in NonHeapRcOps when it
/// was a no-op — the operand is a non-heap immediate, or the heap is in
/// GC mode where RC state does not exist. Consequently
/// `DupOps + DropOps + DecRefOps + IsUniqueTests + NonHeapRcOps` equals
/// the number of RC operations the machine issued, which
/// tests/runtime/stats_invariant_test.cpp cross-checks against the
/// machine's own instruction counts for every program × config.
/// AtomicRcOps and CoalescedRcOps are overlay counters on top of that
/// classification (never extra operations): AtomicRcOps counts atomic
/// RMWs actually *issued* on shared counts — with coalescing enabled
/// that is one per buffer flush/eviction, not one per operation — and
/// CoalescedRcOps counts shared-count updates absorbed into the
/// coalescing buffer instead of being RMW'd immediately. A sticky count
/// is never updated, so it contributes to neither.
struct HeapStats {
  uint64_t Allocs = 0;        ///< cells allocated (fresh, not reused)
  uint64_t Frees = 0;         ///< cells released
  uint64_t DupOps = 0;        ///< executed dups on heap values
  uint64_t DropOps = 0;       ///< executed drops on heap values
  uint64_t DecRefOps = 0;     ///< executed decrefs
  uint64_t NonHeapRcOps = 0;  ///< rc ops that were no-ops (see invariant)
  uint64_t AtomicRcOps = 0;   ///< atomic RMWs issued (flushes, not ops)
  uint64_t CoalescedRcOps = 0;///< shared rc updates absorbed by the buffer
  uint64_t IsUniqueTests = 0; ///< executed is-unique tests
  uint64_t Collections = 0;   ///< tracing GC runs
  uint64_t FailedAllocs = 0;  ///< allocations refused by the governor
  uint64_t EmergencyCollections = 0; ///< GC runs forced by a limit
  uint64_t UnwindFrees = 0;   ///< cells reclaimed by trap unwinding
  size_t LiveBytes = 0;       ///< currently allocated cell bytes (rounded)
  size_t PeakBytes = 0;       ///< high-water mark of LiveBytes
  uint64_t LiveCells = 0;     ///< currently allocated cells
};

/// Accumulates \p From into \p Into (the parallel join: per-worker stats
/// are summed into one combined view). Every counter adds, including
/// PeakBytes — the combined peak is the pessimistic aggregate footprint,
/// as if every worker peaked simultaneously.
void accumulate(HeapStats &Into, const HeapStats &From);

/// The runtime heap; see the file comment.
class Heap {
public:
  explicit Heap(HeapMode Mode = HeapMode::Rc,
                size_t GcThresholdBytes = 4u << 20);
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  HeapMode mode() const { return Mode; }
  HeapStats &stats() { return Stats; }
  const HeapStats &stats() const { return Stats; }

  /// Allocates a cell with \p Arity fields (fields uninitialized). In GC
  /// mode this may trigger a collection via the collect hook.
  ///
  /// Returns null when the governor refuses the allocation: an installed
  /// fault injector fired, or a limit would be exceeded (after an
  /// emergency collection in GC mode). Callers must treat null as an
  /// out-of-memory trap, never dereference it.
  Cell *alloc(uint32_t Arity, uint32_t Tag, CellKind Kind);

  //===--- Resource governor ------------------------------------------------//

  /// Installs allocation limits (default: unlimited).
  void setLimits(const HeapLimits &L) {
    Limits = L;
    updateGoverned();
  }
  const HeapLimits &limits() const { return Limits; }

  /// Installs a fault injector (non-owning; null uninstalls). The
  /// injector sees every allocation attempt.
  void setFaultInjector(FaultInjector *FI) {
    Injector = FI;
    updateGoverned();
  }

  //===--- Telemetry --------------------------------------------------------//

  /// Installs a telemetry sink (non-owning; null uninstalls). When set,
  /// every dup/drop/decref/is-unique call and every alloc/free is
  /// reported to it before classification; when null (the default) each
  /// event site is a single predicted-false branch, like the governor.
  void setStatsSink(StatsSink *S) { Sink = S; }
  StatsSink *statsSink() const { return Sink; }

  /// Increments the reference count of \p V (no-op on immediates).
  ///
  /// The four RC entry points below inline their uncontended fast path
  /// (no sink, RC mode, heap operand, thread-local count) straight into
  /// the interpreter loops; everything else — telemetry, GC mode,
  /// immediates, shared counts, saturation, frees — takes the
  /// out-of-line *Slow twin, which re-derives the case from scratch.
  /// The split is profile-driven: these calls dominate the VM's
  /// non-dispatch time on the Figure 9 set.
  void dup(Value V) {
    if (Sink == nullptr && Mode == HeapMode::Rc) {
      if (!V.isHeap()) {
        ++Stats.NonHeapRcOps;
        return;
      }
      Cell *C = V.Ref;
      int32_t Rc = C->H.Rc.load(std::memory_order_relaxed);
      assert(Rc != 0 && "dup of freed cell");
      if (Rc > 0 && Rc != INT32_MAX) {
        ++Stats.DupOps;
        C->H.Rc.store(Rc + 1, std::memory_order_relaxed);
        return;
      }
    }
    dupSlow(V);
  }

  /// Decrements; frees the cell and recursively drops its children when
  /// the count reaches zero.
  void drop(Value V) {
    if (Sink == nullptr && Mode == HeapMode::Rc) {
      if (!V.isHeap()) {
        ++Stats.NonHeapRcOps;
        return;
      }
      Cell *C = V.Ref;
      int32_t Rc = C->H.Rc.load(std::memory_order_relaxed);
      assert(Rc != 0 && "drop of freed cell");
      if (Rc > 1) {
        ++Stats.DropOps;
        C->H.Rc.store(Rc - 1, std::memory_order_relaxed);
        return;
      }
    }
    dropSlow(V);
  }

  /// Decrements without the uniqueness fast path (the shared branch of a
  /// specialized drop). Still frees when a thread-shared count reaches 0.
  void decref(Value V) {
    if (Sink == nullptr && Mode == HeapMode::Rc) {
      if (!V.isHeap()) {
        ++Stats.NonHeapRcOps;
        return;
      }
      Cell *C = V.Ref;
      int32_t Rc = C->H.Rc.load(std::memory_order_relaxed);
      assert(Rc != 0 && "decref of freed cell");
      if (Rc > 1) {
        ++Stats.DecRefOps;
        C->H.Rc.store(Rc - 1, std::memory_order_relaxed);
        return;
      }
    }
    decrefSlow(V);
  }

  /// The `is-unique` test: true iff the count is exactly 1 and the value
  /// is not thread-shared.
  bool isUnique(Value V) {
    if (Sink == nullptr && Mode == HeapMode::Rc) {
      if (!V.isHeap()) {
        ++Stats.NonHeapRcOps;
        return false;
      }
      ++Stats.IsUniqueTests;
      return V.Ref->H.Rc.load(std::memory_order_acquire) == 1;
    }
    return isUniqueSlow(V);
  }

  /// Marks \p V and everything reachable from it thread-shared
  /// (the paper's `tshare`): counts become negative and all further RC
  /// operations on them are atomic.
  void markShared(Value V);

  //===--- Cross-thread sharing (src/parallel) -------------------------------//

  /// Installs the release path for *foreign* thread-shared cells
  /// (non-owning; null uninstalls). With a pool installed, when this
  /// heap's drop/decref observes the last reference to a shared cell it
  /// did not share itself, the cell is parked in the pool instead of
  /// being spliced into this heap's single-threaded free lists — the
  /// memory belongs to the heap that allocated it, which absorbs the
  /// pool at join via absorbSharedFrees(). Shared cells this heap marked
  /// with its own markShared() stay on the ordinary release path.
  void setSharedPool(SharedCellPool *P) { SharedPool = P; }
  SharedCellPool *sharedPool() const { return SharedPool; }

  //===--- Shared-count coalescing (deferred/batched RC traffic) -------------//

  /// Enables per-heap coalescing of shared-count traffic: dup/drop/decref
  /// on thread-shared cells accumulate *net deltas* in a small
  /// direct-mapped buffer instead of issuing one atomic RMW per
  /// operation (most RC traffic on shared structures cancels locally —
  /// the Counting Immutable Beans observation). Deltas are applied — one
  /// RMW per cell per flush — when a slot is evicted or saturates, on
  /// flushSharedDeltas() (engines call it on a safepoint cadence;
  /// ParallelRunner at join), and unconditionally on trap unwind
  /// (reclaim/reclaimAll flush first), so the heap-empty guarantee is
  /// untouched. isUnique probes need no flush: deltas exist only for
  /// shared cells, which are never unique regardless of what this heap
  /// privately owes their counts (see the comment in isUnique).
  ///
  /// Flush ordering contract: within a flush, net increments apply
  /// before net decrements (the classic deferred-RC rule), so a pending
  /// increment justified by a reference this thread still holds lands
  /// before any decrement can expose a zero. A shared cell's count can
  /// therefore only reach zero through deltas of references the program
  /// really gave up — provided the segment owner retains its root
  /// reference until every worker joined and flushed, which
  /// ParallelRunner guarantees (see DESIGN.md §7d).
  void enableSharedCoalescing();
  bool sharedCoalescingEnabled() const { return Coalescing; }

  /// Applies every buffered shared-count delta (one RMW per distinct
  /// cell), freeing/parking cells whose count reached zero, and loops
  /// until cascaded frees stop refilling the buffer. No-op when
  /// coalescing is off or the buffer is empty.
  void flushSharedDeltas();

  /// Drains \p Pool into this heap: every parked cell is released here —
  /// statistics reconciled, memory recycled through the per-arity free
  /// lists. Call on the owning heap after all foreign threads joined.
  /// Returns the number of cells absorbed.
  size_t absorbSharedFrees(SharedCellPool &Pool);

  /// Registers every allocation in allCells() even in RC mode, enabling
  /// reclaimLeaked(). Call before the first allocation.
  void enableCellRegistry() { RegisterAllCells = true; }

  /// Releases every registered cell that is still live (rc != 0),
  /// regardless of reachability. This is the shared-segment analogue of
  /// the trap unwind: after a worker trapped, counts on the shared
  /// segment are leaked *high*, and subtrees can be stranded with no
  /// path from any root — only a full registry sweep recovers them.
  /// Requires enableCellRegistry() before the cells were allocated; only
  /// meaningful once no other thread can touch the cells. Returns the
  /// number of cells freed.
  size_t reclaimLeaked();

  /// Releases a cell's memory without touching its children (the `free`
  /// instruction after drop specialization, and token disposal).
  void freeMemoryOnly(Cell *C);

  /// Drops every field of \p C (the unique path of drop-reuse).
  void dropChildren(Cell *C);

  //===--- GC support (used by gc::MarkSweep) -------------------------------//

  /// Called when allocation crosses the GC threshold (GC mode only).
  void setCollectHook(std::function<void()> Hook) {
    CollectHook = std::move(Hook);
  }

  /// Every live-or-garbage cell (GC mode, or enableCellRegistry()).
  std::vector<Cell *> &allCells() { return AllCells; }

  /// Releases \p C during sweep (returns it to the free list).
  void releaseForSweep(Cell *C) { release(C); }

  /// Re-arms the collection threshold after a sweep.
  void resetGcThreshold();

  /// True when no cells are live — the garbage-free-at-exit check.
  bool empty() const { return Stats.LiveCells == 0; }

  //===--- Retained-memory control (long-lived processes) -------------------//

  /// Bytes of slab memory this heap holds from the OS — live cells,
  /// free-listed cells and unbumped slab tails alike. This is what a
  /// long-lived process retains between runs even when the heap is
  /// empty: slabs and per-arity free lists are never returned by the
  /// ordinary release path.
  size_t retainedBytes() const { return SlabBytesHeld; }

  /// Releases retained memory back to the OS. Only an empty heap can
  /// trim (live cells pin their slabs; returns 0 otherwise): the free
  /// lists are dropped, every slab but one warm standard-size slab is
  /// released, and the bump pointer restarts in the kept slab. After a
  /// trim, retainedBytes() is bounded by one slab regardless of the
  /// previous peak — the long-lived-service contract (a peaky request
  /// must not pin peak RSS forever). Returns the bytes released.
  size_t trimRetained();

  //===--- Trap unwinding ---------------------------------------------------//

  /// Frees every live cell reachable from \p Roots (HeapRef and Token
  /// values; reuse tokens are freed without traversing their stale
  /// fields' ownership — every reachable live cell is released exactly
  /// once, regardless of its reference count). Used by the machine's
  /// clean-unwind path: at a trap everything the machine still references
  /// is garbage, and stale references to already-freed cells are skipped
  /// via the freed marker (rc == 0). Returns the number of cells freed.
  size_t reclaim(const std::vector<Value> &Roots);

  /// GC-mode unwind: releases every registered cell (at a trap there are
  /// no roots left, so all of them are garbage). Returns the count.
  size_t reclaimAll();

private:
  /// Out-of-line twins of the inline RC fast paths above. Each handles
  /// every case from scratch (telemetry sink, GC mode, immediates,
  /// shared/saturated counts, frees) so the inline wrappers can bail to
  /// them unconditionally without pre-classifying.
  void dupSlow(Value V);
  void dropSlow(Value V);
  void decrefSlow(Value V);
  bool isUniqueSlow(Value V);

  Cell *allocRaw(uint32_t Arity);
  void release(Cell *C);
  void dropRef(Cell *C);
  void drainDropWork();
  void bufferSharedDelta(Cell *C, int32_t D);
  void applySharedDelta(Cell *C, int32_t D);
  bool locallyShared(const Cell *C) const {
    return !LocallyShared.empty() && LocallyShared.count(C) != 0;
  }
  bool governedAllocAllowed(uint32_t Arity);
  void updateGoverned() {
    Governed = Injector != nullptr || !Limits.unlimited();
  }

  /// Free cells keep their header intact (rc == 0 marks them free, and
  /// the arity stays readable for the unwind walk); the free-list link
  /// lives in the first field slot — the shared cellFreeLink slot the
  /// SharedCellPool's Treiber shards also use (a cell is on at most one
  /// list at a time).
  static Cell *&freeListNext(Cell *C) { return cellFreeLink(C); }

  HeapMode Mode;
  HeapStats Stats;
  HeapLimits Limits;
  FaultInjector *Injector = nullptr;
  bool Governed = false;
  StatsSink *Sink = nullptr;
  SharedCellPool *SharedPool = nullptr;
  bool RegisterAllCells = false;

  /// Cells this heap itself passed to markShared() while a pool was
  /// installed. They are shared (negative count, atomic updates) but the
  /// memory is ours, so their frees bypass the pool. Consulted only on
  /// the rare shared-free path; erased on release.
  std::unordered_set<const Cell *> LocallyShared;

  // Bump-allocated slabs (size recorded so trimRetained can account
  // for oversized single-cell slabs too).
  struct Slab {
    std::unique_ptr<char[]> Mem;
    size_t Size;
  };
  std::vector<Slab> Slabs;
  char *SlabCur = nullptr;
  char *SlabEnd = nullptr;
  size_t SlabBytesHeld = 0;

  // Per-arity free lists (the first word of a free cell is the next
  // pointer).
  std::vector<Cell *> FreeLists;

  // GC mode bookkeeping.
  std::vector<Cell *> AllCells;
  size_t GcThreshold;
  size_t GcThresholdMin;
  std::function<void()> CollectHook;
  bool InCollect = false;

  // Reused worklist for iterative recursive drops.
  std::vector<Cell *> DropStack;

  // Shared-count coalescing. The buffer is a direct-mapped table of
  // (cell, net delta) slots, allocated on enableSharedCoalescing();
  // SharedZero collects cells whose flushed count reached zero, for
  // drainDropWork to free/park.
  struct CoalesceSlot {
    Cell *C = nullptr;
    int32_t Delta = 0;
  };
  /// Power-of-two slot count: sized so a hot working set coalesces well
  /// while the table stays cache-resident (2048 slots × 16 B = 32 KiB).
  /// Cross-round cancellation — this round's dup netting against last
  /// round's decref — needs the whole traversed structure resident, so
  /// the table is sized for thousands of distinct shared cells.
  static constexpr size_t CoalesceSlots = 2048;
  /// A slot auto-applies when its net delta saturates. Together with the
  /// worker count this bounds how far a racing flush can step a count
  /// past the sticky-band check: MaxCoalescedDelta × racers must stay
  /// well below the 2^20 band width (2^16 leaves room for 15 racers).
  static constexpr int32_t MaxCoalescedDelta = 1 << 16;
  bool Coalescing = false;
  std::unique_ptr<CoalesceSlot[]> Coalesce;
  std::vector<Cell *> SharedZero;
};

} // namespace perceus

#endif // PERCEUS_RUNTIME_HEAP_H
