//===- runtime/SharedPool.cpp - Lock-free shared-cell release ------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pool is header-only since the mutexed shards were replaced with
// lock-free Treiber free lists (park/drain are small enough to inline
// into the release hot path). This TU pins the layout contracts that
// the header's static_asserts cannot express about the completed type.
//
//===----------------------------------------------------------------------===//

#include "runtime/SharedPool.h"

namespace perceus {

// A freed cell must be able to carry the Treiber link in its first field
// slot: the 16-byte allocation rounding guarantees the slot exists even
// for arity-0 cells.
static_assert(sizeof(CellHeader) + sizeof(Cell *) <= 16,
              "free-link slot must fit the minimum cell allocation");

} // namespace perceus
