//===- runtime/SharedPool.cpp - Thread-safe shared-cell release ----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/SharedPool.h"

using namespace perceus;

void SharedCellPool::park(Cell *C) {
  // The parking thread holds the last reference: it may write the freed
  // marker without a RMW. Readers racing on stale references synchronize
  // through the acq_rel decrement that granted this thread exclusivity.
  C->H.Rc.store(0, std::memory_order_release);
  Shard &S = shardFor(C);
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.Parked.push_back(C);
}

uint64_t SharedCellPool::parkedCells() const {
  uint64_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Parked.size();
  }
  return N;
}
