//===- runtime/SharedPool.h - Lock-free shared-cell release -----*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The release path for thread-shared cells freed from foreign threads.
///
/// Under the paper's `tshare` contract (Section 2.7.2) a cell published
/// to other threads carries a negative count and every RC update on it is
/// atomic — but the *memory* still belongs to the heap that allocated it.
/// When a worker's drop takes a shared count to zero, the worker must not
/// splice the cell into its own free lists (they are single-threaded and
/// the slab belongs to another heap). Instead the freeing thread parks
/// the cell in a SharedCellPool. At join, the owning heap absorbs the
/// pool (Heap::absorbSharedFrees), reconciling its live-cell/live-byte
/// statistics and recycling the memory through its ordinary per-arity
/// free lists.
///
/// The pool is sharded by cell address, and each shard is a *lock-free
/// MPSC Treiber free list*: any number of workers push concurrently with
/// a release CAS (cells link through the off-header free-link slot, see
/// cellFreeLink), and the single consumer — the owning heap, after join —
/// detaches a whole shard with one acquire exchange. There is no pop of
/// individual cells, so the classic Treiber ABA hazard cannot arise.
/// Exactly one thread ever parks a given cell — the one whose atomic
/// decrement observed the last reference — so the cell's link word needs
/// no synchronization beyond the publishing CAS.
///
/// Shards are 64-byte aligned and padded so two shards never share a
/// cache line: under contention the per-shard heads and counters must
/// not bounce a line between cores that are parking into different
/// shards.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_RUNTIME_SHAREDPOOL_H
#define PERCEUS_RUNTIME_SHAREDPOOL_H

#include "runtime/Value.h"

#include <atomic>
#include <cassert>
#include <cstdint>

namespace perceus {

/// A thread-safe parking lot for freed thread-shared cells; see the file
/// comment. Sharded by cell address to keep unrelated frees off the same
/// shard head.
class SharedCellPool {
public:
  SharedCellPool() = default;
  SharedCellPool(const SharedCellPool &) = delete;
  SharedCellPool &operator=(const SharedCellPool &) = delete;

  /// Every shard is padded to (at least) a cache line; kept public so
  /// tests can pin the no-false-sharing property.
  static constexpr size_t ShardAlignment = 64;

  /// Parks \p C, which the calling thread just freed (it observed the
  /// last shared reference). Writes the rc == 0 freed marker so stale
  /// references and unwind walks skip the cell from here on, then
  /// publishes the cell with a release CAS push.
  void park(Cell *C) {
    assert(!Quiesced.load(std::memory_order_relaxed) &&
           "park into a quiesced pool: a worker outlived the join");
    C->H.Rc.store(0, std::memory_order_release);
    Shard &S = shardFor(C);
    Cell *Old = S.Head.load(std::memory_order_relaxed);
    do {
      cellFreeLink(C) = Old;
    } while (!S.Head.compare_exchange_weak(Old, C, std::memory_order_release,
                                           std::memory_order_relaxed));
    S.Count.fetch_add(1, std::memory_order_relaxed);
  }

  /// Number of cells currently parked. While workers are still freeing
  /// this is approximate (relaxed per-shard counters); once the pool is
  /// quiesced (setQuiesced after join) it is exact — no parker can be
  /// in flight, which the debug assert in park() enforces.
  uint64_t parkedCells() const {
    uint64_t N = 0;
    for (const Shard &S : Shards)
      N += S.Count.load(std::memory_order_relaxed);
    return N;
  }

  /// Marks the pool quiescent: every thread that could park has joined.
  /// From here parkedCells() is exact and park() asserts (debug builds)
  /// — the epoch flag turns the "exact after join" documentation into a
  /// checked contract. Pass false to re-arm the pool for another run.
  void setQuiesced(bool Q) { Quiesced.store(Q, std::memory_order_release); }
  bool quiesced() const { return Quiesced.load(std::memory_order_acquire); }

  /// Drains every parked cell into \p Consume. Each shard is detached
  /// with one acquire exchange (synchronizing with every parker's
  /// release CAS), then walked without any lock; Consume may re-link the
  /// cell through the same slot, so the successor is read first. Used by
  /// Heap::absorbSharedFrees, on the owning heap, after join.
  template <typename Fn> void drain(Fn Consume) {
    for (Shard &S : Shards) {
      Cell *C = S.Head.exchange(nullptr, std::memory_order_acquire);
      uint64_t Taken = 0;
      while (C) {
        Cell *Next = cellFreeLink(C);
        Consume(C);
        C = Next;
        ++Taken;
      }
      S.Count.fetch_sub(Taken, std::memory_order_relaxed);
    }
  }

private:
  static constexpr size_t NumShards = 8;

  struct alignas(ShardAlignment) Shard {
    std::atomic<Cell *> Head{nullptr};
    std::atomic<uint64_t> Count{0};
  };
  static_assert(alignof(Shard) >= 64 && sizeof(Shard) % 64 == 0,
                "shards must not share a cache line");

  Shard &shardFor(const Cell *C) {
    // Cells are 16-byte aligned; mix the significant address bits.
    auto Bits = reinterpret_cast<uintptr_t>(C) >> 4;
    return Shards[(Bits ^ (Bits >> 7)) % NumShards];
  }

  std::atomic<bool> Quiesced{false};
  Shard Shards[NumShards];
};

} // namespace perceus

#endif // PERCEUS_RUNTIME_SHAREDPOOL_H
