//===- runtime/SharedPool.h - Thread-safe shared-cell release ---*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The release path for thread-shared cells freed from foreign threads.
///
/// Under the paper's `tshare` contract (Section 2.7.2) a cell published
/// to other threads carries a negative count and every RC update on it is
/// atomic — but the *memory* still belongs to the heap that allocated it.
/// When a worker's drop takes a shared count to zero, the worker must not
/// splice the cell into its own free lists (they are single-threaded and
/// the slab belongs to another heap). Instead the freeing thread parks
/// the cell in a SharedCellPool: a sharded, mutex-protected free list.
/// At join, the owning heap absorbs the pool (Heap::absorbSharedFrees),
/// reconciling its live-cell/live-byte statistics and recycling the
/// memory through its ordinary per-arity free lists.
///
/// Exactly one thread ever parks a given cell — the one whose atomic
/// decrement observed the last reference — so the pool needs no per-cell
/// synchronization beyond the shard mutex.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_RUNTIME_SHAREDPOOL_H
#define PERCEUS_RUNTIME_SHAREDPOOL_H

#include "runtime/Value.h"

#include <cstdint>
#include <mutex>
#include <vector>

namespace perceus {

/// A thread-safe parking lot for freed thread-shared cells; see the file
/// comment. Sharded by cell address to keep unrelated frees off the same
/// mutex.
class SharedCellPool {
public:
  SharedCellPool() = default;
  SharedCellPool(const SharedCellPool &) = delete;
  SharedCellPool &operator=(const SharedCellPool &) = delete;

  /// Parks \p C, which the calling thread just freed (it observed the
  /// last shared reference). Writes the rc == 0 freed marker so stale
  /// references and unwind walks skip the cell from here on.
  void park(Cell *C);

  /// Number of cells currently parked (approximate while threads are
  /// still freeing; exact after join).
  uint64_t parkedCells() const;

  /// Drains every parked cell into \p Consume (called under no lock with
  /// the shard already detached). Used by Heap::absorbSharedFrees.
  template <typename Fn> void drain(Fn Consume) {
    for (Shard &S : Shards) {
      std::vector<Cell *> Taken;
      {
        std::lock_guard<std::mutex> Lock(S.Mu);
        Taken.swap(S.Parked);
      }
      for (Cell *C : Taken)
        Consume(C);
    }
  }

private:
  static constexpr size_t NumShards = 8;

  struct Shard {
    mutable std::mutex Mu;
    std::vector<Cell *> Parked;
  };

  Shard &shardFor(const Cell *C) {
    // Cells are 16-byte aligned; mix the significant address bits.
    auto Bits = reinterpret_cast<uintptr_t>(C) >> 4;
    return Shards[(Bits ^ (Bits >> 7)) % NumShards];
  }

  Shard Shards[NumShards];
};

} // namespace perceus

#endif // PERCEUS_RUNTIME_SHAREDPOOL_H
