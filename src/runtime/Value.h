//===- runtime/Value.h - Runtime values and heap cells ----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime value representation. Integers, booleans, unit, nullary
/// constructors and top-level function references are unboxed immediates
/// ("value types are not heap allocated", Section 2.7.1); constructor
/// applications and closures live in reference-counted heap cells.
///
/// The cell header encodes the reference count exactly as Section 2.7.2
/// describes: positive counts for thread-local objects, negative counts
/// for thread-shared ones (updated atomically), with a single fused
/// `rc <= 1` test covering both the free path and the atomic slow path,
/// and a sticky minimum value that pins an object alive.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_RUNTIME_VALUE_H
#define PERCEUS_RUNTIME_VALUE_H

#include <atomic>
#include <cassert>
#include <cstdint>

namespace perceus {

struct Cell;

/// Discriminates runtime values.
enum class ValueKind : uint8_t {
  Unit,
  Int,     ///< unboxed 64-bit integer
  Bool,    ///< unboxed boolean
  Enum,    ///< nullary constructor (tag immediate)
  FnRef,   ///< top-level function (static, never counted)
  HeapRef, ///< constructor cell or closure cell
  Token,   ///< reuse token (&cell or NULL), Section 2.4
  Raw,     ///< untraced pointer (closure code pointer)
};

/// A runtime value. 16 bytes, trivially copyable.
struct Value {
  ValueKind Kind = ValueKind::Unit;
  union {
    int64_t Int;      // Int / Bool
    uint64_t Bits;    // Enum: (dataId << 32) | tag; FnRef: function id
    Cell *Ref;        // HeapRef
    Cell *Tok;        // Token (may be null)
  };

  Value() : Int(0) {}

  static Value unit() { return Value(); }
  static Value makeInt(int64_t V) {
    Value R;
    R.Kind = ValueKind::Int;
    R.Int = V;
    return R;
  }
  static Value makeBool(bool V) {
    Value R;
    R.Kind = ValueKind::Bool;
    R.Int = V ? 1 : 0;
    return R;
  }
  static Value makeEnum(uint32_t DataId, uint32_t Tag) {
    Value R;
    R.Kind = ValueKind::Enum;
    R.Bits = (uint64_t(DataId) << 32) | Tag;
    return R;
  }
  static Value makeFnRef(uint32_t FuncId) {
    Value R;
    R.Kind = ValueKind::FnRef;
    R.Bits = FuncId;
    return R;
  }
  static Value makeRef(Cell *C) {
    Value R;
    R.Kind = ValueKind::HeapRef;
    R.Ref = C;
    return R;
  }
  static Value makeToken(Cell *C) {
    Value R;
    R.Kind = ValueKind::Token;
    R.Tok = C;
    return R;
  }
  static Value makeRaw(const void *P) {
    Value R;
    R.Kind = ValueKind::Raw;
    R.Bits = reinterpret_cast<uint64_t>(P);
    return R;
  }

  const void *rawPtr() const {
    assert(Kind == ValueKind::Raw);
    return reinterpret_cast<const void *>(Bits);
  }

  bool isHeap() const { return Kind == ValueKind::HeapRef; }
  uint32_t enumTag() const {
    assert(Kind == ValueKind::Enum);
    return static_cast<uint32_t>(Bits & 0xffffffffu);
  }
  uint32_t fnId() const {
    assert(Kind == ValueKind::FnRef);
    return static_cast<uint32_t>(Bits);
  }
  bool asBool() const {
    assert(Kind == ValueKind::Bool);
    return Int != 0;
  }
};

/// What a heap cell holds.
enum class CellKind : uint8_t {
  Ctor,    ///< constructor: fields are the constructor arguments
  Closure, ///< closure: field 0 is the code pointer, rest are captures
  Ref,     ///< mutable reference cell: field 0 is the content (2.7.3)
};

/// The reference count occupies the low 32 bits of the header.
///
/// Encoding (Section 2.7.2): `1..INT32_MAX` thread-local counts;
/// negative values are thread-shared counts (count = -rc), updated
/// atomically; `0` marks a freed cell (debug).
///
/// Sticky counts are a *band*, not a single value: every count at or
/// below `INT32_MIN + 2^20` pins the cell alive forever. A band is
/// required under real concurrency — racing `fetch_sub` dups that pass
/// the sticky check before another thread's update lands could step a
/// single sticky value past `INT32_MIN` and wrap to positive. With a
/// 2^20-wide guard band the count would need over a million in-flight
/// racers to escape, so saturation is permanent in practice. A
/// thread-local count that reaches `INT32_MAX` saturates the same way:
/// dup pins it into the sticky band instead of overflowing.
struct CellHeader {
  std::atomic<int32_t> Rc;
  uint8_t Tag = 0;
  uint8_t Arity = 0;
  CellKind Kind = CellKind::Ctor;
  uint8_t GcMark = 0;
};

/// A heap cell: header plus inline fields.
struct Cell {
  CellHeader H;
  // Fields follow the header inline; use fields() to access them.

  Value *fields() { return reinterpret_cast<Value *>(this + 1); }
  const Value *fields() const {
    return reinterpret_cast<const Value *>(this + 1);
  }

  /// Total byte size of a cell with \p Arity fields.
  static size_t byteSize(uint32_t Arity) {
    return sizeof(Cell) + Arity * sizeof(Value);
  }

  /// Slab bytes a cell with \p Arity fields actually consumes: byteSize
  /// rounded up to the 16-byte Value alignment the allocator bumps by.
  /// All live/peak-byte accounting uses this quantity so the statistics
  /// reflect real memory, not the unrounded struct size.
  static size_t allocSize(uint32_t Arity) {
    return (byteSize(Arity) + 15) & ~size_t(15);
  }
};

static_assert(sizeof(Value) == 16, "Value should stay two words");

/// The free-link of a freed cell. Free cells keep their header intact
/// (rc == 0 is the freed marker, and the arity stays readable for the
/// trap-unwind walk), so the link lives in the first field slot — which
/// every cell has thanks to the 16-byte allocation rounding. The same
/// slot serves the heap's single-threaded per-arity free lists and the
/// SharedCellPool's lock-free Treiber shards: a cell is on at most one
/// of them at a time (exactly one thread ever frees a given cell).
inline Cell *&cellFreeLink(Cell *C) {
  return *reinterpret_cast<Cell **>(reinterpret_cast<char *>(C) +
                                    sizeof(CellHeader));
}

} // namespace perceus

#endif // PERCEUS_RUNTIME_VALUE_H
