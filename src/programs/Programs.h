//===- programs/Programs.h - The paper's benchmark programs -----*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The five benchmark programs of the paper's Section 4 (rbtree,
/// rbtree-ck, deriv, nqueens, cfold), written in the surface language —
/// rbtree follows Appendix A (Figure 10) verbatim — plus the FBIP
/// tree-traversal programs of Section 2.6 (Figure 3). Shared by the
/// tests, the benchmarks, and the examples.
///
/// Every program exposes a `bench_*(n)` entry point returning an integer
/// checksum, so results can be validated against the native C++
/// implementations in bench/native.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_PROGRAMS_PROGRAMS_H
#define PERCEUS_PROGRAMS_PROGRAMS_H

namespace perceus {

/// Okasaki red-black tree insertion (Appendix A); entry
/// `bench_rbtree(n)`: inserts keys 0..n-1 (value: key divisible by 10)
/// and counts the true values.
const char *rbtreeSource();

/// rbtree variant retaining every 5th tree (persistent sharing); entry
/// `bench_rbtree_ck(n)`.
const char *rbtreeCkSource();

/// Symbolic differentiation with simplification; entry `bench_deriv(n)`:
/// differentiates x^n three times and counts the nodes.
const char *derivSource();

/// All n-queens solutions as shared lists; entry `bench_nqueens(n)`:
/// returns the number of solutions.
const char *nqueensSource();

/// Constant folding over a large symbolic expression; entry
/// `bench_cfold(n)`: folds a depth-n expression and evaluates it.
const char *cfoldSource();

/// Figure 3: FBIP in-order tree traversal with a visitor (tail-recursive,
/// constant stack) plus the naive recursive `tmap`; entries
/// `bench_tmap_fbip(n)` and `bench_tmap_naive(n)` map +1 over a perfect
/// tree of depth n and return its checksum.
const char *tmapSource();

/// Section 2.2's motivating example: build a large list, map over it,
/// sum it; entry `bench_mapsum(n)`. Under scoped RC the whole input list
/// is retained while the output is built; under Perceus it is freed (or
/// reused) incrementally.
const char *mapSumSource();

/// Bottom-up FBIP merge sort over a pseudo-random list; entry
/// `bench_msort(n)` returns the element sum when the output is sorted
/// (or -1). A unique list sorts almost entirely in place: split, merge
/// and the recursion all pair matched cells with same-size allocations.
const char *msortSource();

/// Okasaki's batched FIFO queue (front list + reversed back list);
/// entry `bench_queue(n)` interleaves n enqueues/dequeues and sums the
/// dequeued values. The queue rotation is a classic reuse workload.
const char *queueSource();

/// Contended traversal of a thread-shared input (Section 2.7.2's
/// workload shape): builder `build_tree(d)` returns a perfect binary
/// tree of depth d, and entry `bench_shared_sum(n, t)` sums the tree n
/// times while keeping it live, so every traversal dups/drops the
/// (shared) nodes. Designed for ParallelRunner's shared-input mode,
/// where the dups and drops become contended atomic RC updates.
const char *sharedTreeSource();

} // namespace perceus

#endif // PERCEUS_PROGRAMS_PROGRAMS_H
