//===- programs/Programs.cpp - The paper's benchmark programs -----------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "programs/Programs.h"

#include <string>

using namespace perceus;

//===----------------------------------------------------------------------===//
// rbtree (Appendix A, Figure 10)
//===----------------------------------------------------------------------===//

static const char *RbtreeCommon = R"(
type color {
  Red
  Black
}

type tree {
  Leaf
  Node(color, left, key, value, right)
}

fun is-red(t) {
  match t {
    Node(Red, l, k, v, r) -> True
    _ -> False
  }
}

fun bal-left(l, k, v, r) {
  match l {
    Leaf -> Leaf
    Node(c1, Node(Red, lx, kx, vx, rx), ky, vy, ry)
      -> Node(Red, Node(Black, lx, kx, vx, rx), ky, vy,
              Node(Black, ry, k, v, r))
    Node(c2, ly, ky, vy, Node(Red, lx, kx, vx, rx))
      -> Node(Red, Node(Black, ly, ky, vy, lx), kx, vx,
              Node(Black, rx, k, v, r))
    Node(c3, lx, kx, vx, rx)
      -> Node(Black, Node(Red, lx, kx, vx, rx), k, v, r)
  }
}

fun bal-right(l, k, v, r) {
  match r {
    Leaf -> Leaf
    Node(c1, Node(Red, lx, kx, vx, rx), ky, vy, ry)
      -> Node(Red, Node(Black, l, k, v, lx), kx, vx,
              Node(Black, rx, ky, vy, ry))
    Node(c2, lx, kx, vx, Node(Red, ly, ky, vy, ry))
      -> Node(Red, Node(Black, l, k, v, lx), kx, vx,
              Node(Black, ly, ky, vy, ry))
    Node(c3, lx, kx, vx, rx)
      -> Node(Black, l, k, v, Node(Red, lx, kx, vx, rx))
  }
}

fun ins(t, k, v) {
  match t {
    Leaf -> Node(Red, Leaf, k, v, Leaf)
    Node(Red, l, kx, vx, r)
      -> if k < kx then Node(Red, ins(l, k, v), kx, vx, r)
         elif k == kx then Node(Red, l, k, v, r)
         else Node(Red, l, kx, vx, ins(r, k, v))
    Node(Black, l, kx, vx, r)
      -> if k < kx then {
           if is-red(l) then bal-left(ins(l, k, v), kx, vx, r)
           else Node(Black, ins(l, k, v), kx, vx, r)
         }
         elif k == kx then Node(Black, l, k, v, r)
         elif is-red(r) then bal-right(l, kx, vx, ins(r, k, v))
         else Node(Black, l, kx, vx, ins(r, k, v))
  }
}

fun set-black(t) {
  match t {
    Node(c, l, k, v, r) -> Node(Black, l, k, v, r)
    _ -> t
  }
}

fun insert(t, k, v) {
  if is-red(t) then set-black(ins(t, k, v))
  else ins(t, k, v)
}

fun count-true(t, acc) {
  match t {
    Leaf -> acc
    Node(c, l, k, v, r)
      -> count-true(r, count-true(l, if v then acc + 1 else acc))
  }
}
)";

const char *perceus::rbtreeSource() {
  static const std::string Src = std::string(RbtreeCommon) + R"(
fun build(i, n, t) {
  if i >= n then t
  else build(i + 1, n, insert(t, i, i % 10 == 0))
}

fun bench_rbtree(n) {
  count-true(build(0, n, Leaf), 0)
}
)";
  return Src.c_str();
}

const char *perceus::rbtreeCkSource() {
  static const std::string Src = std::string(RbtreeCommon) + R"(
type treelist {
  TCons(thead, ttail)
  TNil
}

// Keep every 5th tree: the retained trees share most of their structure
// with the evolving tree, so many cells are not unique.
fun build-ck(i, n, t, acc) {
  if i >= n then TCons(t, acc)
  else {
    val t2 = insert(t, i, i % 10 == 0)
    if i % 5 == 0 then build-ck(i + 1, n, t2, TCons(t2, acc))
    else build-ck(i + 1, n, t2, acc)
  }
}

fun bench_rbtree_ck(n) {
  match build-ck(0, n, Leaf, TNil) {
    TCons(t, rest) -> count-true(t, 0)
    TNil -> 0
  }
}
)";
  return Src.c_str();
}

//===----------------------------------------------------------------------===//
// deriv (symbolic differentiation, after the Lean benchmark suite)
//===----------------------------------------------------------------------===//

const char *perceus::derivSource() {
  return R"(
type expr {
  Val(n)
  Varx
  Add(a, b)
  Mul(a, b)
  Pow(a, n)
}

// Smart constructors do algebraic simplification as the Lean/Koka
// benchmark does, so the derivative stays manageable.
fun mk-add(a, b) {
  match a {
    Val(x) -> match b {
      Val(y) -> Val(x + y)
      _ -> if x == 0 then b else Add(a, b)
    }
    _ -> match b {
      Val(y) -> if y == 0 then a else Add(a, b)
      _ -> Add(a, b)
    }
  }
}

fun mk-mul(a, b) {
  match a {
    Val(x) -> match b {
      Val(y) -> Val(x * y)
      _ -> if x == 0 then { Val(0) } elif x == 1 then b else Mul(a, b)
    }
    _ -> match b {
      Val(y) -> if y == 0 then { Val(0) } elif y == 1 then a else Mul(a, b)
      _ -> Mul(a, b)
    }
  }
}

fun mk-pow(a, n) {
  if n == 0 then Val(1)
  elif n == 1 then a
  else Pow(a, n)
}

fun d(e) {
  match e {
    Val(n) -> Val(0)
    Varx -> Val(1)
    Add(a, b) -> mk-add(d(a), d(b))
    Mul(a, b) -> mk-add(mk-mul(a, d(b)), mk-mul(d(a), b))
    Pow(a, n) -> mk-mul(mk-mul(Val(n), mk-pow(a, n - 1)), d(a))
  }
}

fun size(e, acc) {
  match e {
    Val(n) -> acc + 1
    Varx -> acc + 1
    Add(a, b) -> size(b, size(a, acc + 1))
    Mul(a, b) -> size(b, size(a, acc + 1))
    Pow(a, n) -> size(a, acc + 1)
  }
}

// (x + 1)^n, expanded as a product chain so the derivative is large.
fun mk-chain(i) {
  if i <= 0 then Val(1)
  else mk-mul(Add(Varx, Val(i)), mk-chain(i - 1))
}

fun bench_deriv(n) {
  size(d(d(d(mk-chain(n)))), 0)
}
)";
}

//===----------------------------------------------------------------------===//
// nqueens (all solutions, shared sub-solutions)
//===----------------------------------------------------------------------===//

const char *perceus::nqueensSource() {
  return R"(
type list {
  Cons(head, tail)
  Nil
}

fun safe(queen, diag, xs) {
  match xs {
    Nil -> True
    Cons(q, qs) ->
      queen != q && queen != q + diag && queen != q - diag &&
      safe(queen, diag + 1, qs)
  }
}

// Extend one partial solution with every safe row for the next column.
// Each new solution shares its tail with the partial solution.
fun append-safe(k, soln, solns) {
  if k <= 0 then solns
  elif safe(k, 1, soln) then
    append-safe(k - 1, soln, Cons(Cons(k, soln), solns))
  else append-safe(k - 1, soln, solns)
}

fun extend(n, acc, solns) {
  match solns {
    Nil -> acc
    Cons(soln, rest) -> extend(n, append-safe(n, soln, acc), rest)
  }
}

fun find-solutions(n, k) {
  if k == 0 then Cons(Nil, Nil)
  else extend(n, Nil, find-solutions(n, k - 1))
}

fun len(xs, acc) {
  match xs {
    Nil -> acc
    Cons(x, rest) -> len(rest, acc + 1)
  }
}

fun bench_nqueens(n) {
  len(find-solutions(n, n), 0)
}
)";
}

//===----------------------------------------------------------------------===//
// cfold (constant folding, after the Lean benchmark suite)
//===----------------------------------------------------------------------===//

const char *perceus::cfoldSource() {
  return R"(
type expr {
  Val(n)
  Varn(x)
  Add(a, b)
  Mul(a, b)
}

fun mk-expr(n, v) {
  if n == 0 then {
    if v == 0 then Varn(1) else Val(v)
  } else {
    Add(mk-expr(n - 1, v + 1), mk-expr(n - 1, if v == 0 then 0 else v - 1))
  }
}

fun append-add(e1, e2) {
  match e1 {
    Add(a, b) -> Add(a, append-add(b, e2))
    _ -> Add(e1, e2)
  }
}

fun append-mul(e1, e2) {
  match e1 {
    Mul(a, b) -> Mul(a, append-mul(b, e2))
    _ -> Mul(e1, e2)
  }
}

fun cfold(e) {
  match e {
    Add(a, b) -> {
      val a2 = cfold(a)
      val b2 = cfold(b)
      match a2 {
        Val(x) -> match b2 {
          Val(y) -> Val(x + y)
          Add(bb1, bb2) -> match bb1 {
            Val(y2) -> append-add(Val(x + y2), bb2)
            _ -> append-add(Add(bb1, bb2), Val(x))
          }
          _ -> Add(a2, b2)
        }
        _ -> Add(a2, b2)
      }
    }
    Mul(a, b) -> {
      val a2 = cfold(a)
      val b2 = cfold(b)
      match a2 {
        Val(x) -> match b2 {
          Val(y) -> Val(x * y)
          Mul(bb1, bb2) -> match bb1 {
            Val(y2) -> append-mul(Val(x * y2), bb2)
            _ -> append-mul(Mul(bb1, bb2), Val(x))
          }
          _ -> Mul(a2, b2)
        }
        _ -> Mul(a2, b2)
      }
    }
    _ -> e
  }
}

fun eval(e) {
  match e {
    Val(n) -> n
    Varn(x) -> 0
    Add(a, b) -> eval(a) + eval(b)
    Mul(a, b) -> eval(a) * eval(b)
  }
}

fun bench_cfold(n) {
  eval(cfold(mk-expr(n, 1)))
}
)";
}

//===----------------------------------------------------------------------===//
// tmap (Figure 3: FBIP visitor traversal vs naive recursion)
//===----------------------------------------------------------------------===//

const char *perceus::tmapSource() {
  return R"(
type tree {
  Tip
  Bin(left, value, right)
}

type visitor {
  Done
  BinR(right, value, visit)
  BinL(left, value, visit)
}

type direction {
  Up
  Down
}

// Figure 3, verbatim: in-order map via an explicit visitor. All calls
// are tail calls, and each matched cell pairs with a same-size
// allocation, so a unique tree is updated fully in place in constant
// stack space.
fun tmap-fbip(t, visit, d) {
  match d {
    Down -> match t {
      Bin(l, x, r) -> tmap-fbip(l, BinR(r, x, visit), Down)   // A
      Tip -> tmap-fbip(Tip, visit, Up)                        // B
    }
    Up -> match visit {
      Done -> t                                               // C
      BinR(r, x, v) -> tmap-fbip(r, BinL(t, x + 1, v), Down)  // D
      BinL(l, x, v) -> tmap-fbip(Bin(l, x, t), v, Up)         // E
    }
  }
}

// The naive recursive map: also reuses in place when unique, but needs
// stack proportional to the tree depth.
fun tmap-naive(t) {
  match t {
    Bin(l, x, r) -> Bin(tmap-naive(l), x + 1, tmap-naive(r))
    Tip -> Tip
  }
}

fun build-tree(depth, next) {
  if depth == 0 then Tip
  else Bin(build-tree(depth - 1, next * 2), next, build-tree(depth - 1, next * 2 + 1))
}

fun tree-sum(t, acc) {
  match t {
    Tip -> acc
    Bin(l, x, r) -> tree-sum(r, tree-sum(l, acc + x))
  }
}

fun bench_tmap_fbip(depth) {
  tree-sum(tmap-fbip(build-tree(depth, 1), Done, Down), 0)
}

fun bench_tmap_naive(depth) {
  tree-sum(tmap-naive(build-tree(depth, 1)), 0)
}

// A degenerate right spine of n nodes, built tail-recursively, to
// contrast stack usage: the naive map recurses n deep, the FBIP visitor
// stays in constant stack (Section 2.6's Knuth/Morris point).
fun build-spine(n, t) {
  if n == 0 then t else build-spine(n - 1, Bin(Tip, n, t))
}

fun bench_spine_fbip(n) {
  tree-sum(tmap-fbip(build-spine(n, Tip), Done, Down), 0)
}

fun bench_spine_naive(n) {
  tree-sum(tmap-naive(build-spine(n, Tip)), 0)
}
)";
}

//===----------------------------------------------------------------------===//
// map/sum (the Section 2.2 precision example)
//===----------------------------------------------------------------------===//

const char *perceus::mapSumSource() {
  return R"(
type list {
  Cons(head, tail)
  Nil
}

fun iota(n) {
  if n <= 0 then Nil else Cons(n, iota(n - 1))
}

fun map(xs, f) {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}

fun inc(x) { x + 1 }

fun sum(xs, acc) {
  match xs {
    Cons(x, xx) -> sum(xx, acc + x)
    Nil -> acc
  }
}

fun bench_mapsum(n) {
  sum(map(iota(n), inc), 0)
}
)";
}

//===----------------------------------------------------------------------===//
// msort (FBIP merge sort)
//===----------------------------------------------------------------------===//

const char *perceus::msortSource() {
  return R"(
type list {
  Cons(head, tail)
  Nil
}

type pair {
  P(fst, snd)
}

// Deterministic pseudo-random list (LCG; values below 2^31).
fun randlist(n, seed) {
  if n == 0 then Nil
  else {
    val next = (seed * 1103515245 + 12345) % 2147483648
    Cons(next % 100000, randlist(n - 1, next))
  }
}

// Unzip into two halves; every matched Cons pairs with a new Cons.
fun split(xs) {
  match xs {
    Nil -> P(Nil, Nil)
    Cons(x, rest) -> match split(rest) {
      P(a, b) -> P(Cons(x, b), a)
    }
  }
}

fun merge(xs, ys) {
  match xs {
    Nil -> ys
    Cons(x, xt) -> match ys {
      Nil -> Cons(x, xt)
      Cons(y, yt) ->
        if x <= y then Cons(x, merge(xt, Cons(y, yt)))
        else Cons(y, merge(Cons(x, xt), yt))
    }
  }
}

fun msort(xs) {
  match xs {
    Nil -> Nil
    Cons(x, Nil) -> Cons(x, Nil)
    _ -> match split(xs) {
      P(a, b) -> merge(msort(a), msort(b))
    }
  }
}

// Fold checking sortedness while summing; -1 when out of order.
fun checked-sum(xs, prev, acc) {
  match xs {
    Nil -> acc
    Cons(x, rest) ->
      if x < prev then 0 - 1
      else checked-sum(rest, x, acc + x)
  }
}

fun bench_msort(n) {
  checked-sum(msort(randlist(n, 42)), 0 - 1, 0)
}
)";
}

//===----------------------------------------------------------------------===//
// queue (Okasaki batched queue)
//===----------------------------------------------------------------------===//

const char *perceus::queueSource() {
  return R"(
type list {
  Cons(head, tail)
  Nil
}

type queue {
  Queue(front, back)
}

type dq {
  Deq(value, rest)
}

fun rev-onto(xs, acc) {
  match xs {
    Cons(x, xx) -> rev-onto(xx, Cons(x, acc))
    Nil -> acc
  }
}

fun enq(q, x) {
  match q {
    Queue(f, b) -> Queue(f, Cons(x, b))
  }
}

// Dequeue; rotates the back list into the front when needed. The
// rotation is in-place on a unique queue (rev-onto reuses every cell).
fun deq(q) {
  match q {
    Queue(f, b) -> match f {
      Cons(h, t) -> Deq(h, Queue(t, b))
      Nil -> match rev-onto(b, Nil) {
        Cons(h, t) -> Deq(h, Queue(t, Nil))
        Nil -> Deq(0 - 1, Queue(Nil, Nil))
      }
    }
  }
}

// Pump: enqueue two, dequeue one, n times; then drain.
fun pump(i, n, q, acc) {
  if i >= n then drain(q, acc)
  else {
    val q2 = enq(enq(q, i), i + n)
    match deq(q2) {
      Deq(v, q3) -> pump(i + 1, n, q3, acc + v)
    }
  }
}

fun drain(q, acc) {
  match q {
    Queue(f, b) -> match f {
      Cons(h, t) -> drain(Queue(t, b), acc + h)
      Nil -> match b {
        Cons(h, t) -> drain(Queue(rev-onto(Cons(h, t), Nil), Nil), acc)
        Nil -> acc
      }
    }
  }
}

fun bench_queue(n) {
  pump(0, n, Queue(Nil, Nil), 0)
}
)";
}

//===----------------------------------------------------------------------===//
// shared-tree (contended traversal of a tshare'd input, Section 2.7.2)
//===----------------------------------------------------------------------===//

const char *perceus::sharedTreeSource() {
  return R"(
type tree {
  Tip
  Bin(left, elem, right)
}

// Perfect binary tree of the given depth; the element depends on both
// the depth and the path so the checksum is position sensitive.
fun build(d, x) {
  if d == 0 then Tip
  else Bin(build(d - 1, x * 2), x + d, build(d - 1, x * 2 + 1))
}

fun build_tree(d) {
  build(d, 1)
}

fun sum-tree(t) {
  match t {
    Tip -> 0
    Bin(l, x, r) -> sum-tree(l) + x + sum-tree(r)
  }
}

// Each round keeps t live across the traversal (it is used again on the
// next iteration), so Perceus inserts dup/drop around every visit — on
// a thread-shared input those become contended atomic RC updates.
fun rounds(i, t, acc) {
  if i == 0 then acc
  else rounds(i - 1, t, acc + sum-tree(t))
}

fun bench_shared_sum(n, t) {
  rounds(n, t, 0)
}
)";
}
