//===- net/Server.cpp - TCP front end for the sharded service -------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Server.h"

#include "service/ServiceJson.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace perceus;

namespace {

/// A stalled or dead reader may not consume responses; cap what we will
/// buffer for it before declaring the connection unsalvageable.
constexpr size_t MaxOutBufBytes = 8u << 20;

bool setNonBlocking(int Fd) {
  int Flags = fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// "HOST:PORT" with an IPv4 host (or "localhost"). Port 0 = ephemeral.
bool parseHostPort(const std::string &HostPort, sockaddr_in &Addr,
                   std::string &Error) {
  size_t Colon = HostPort.rfind(':');
  if (Colon == std::string::npos) {
    Error = "expected HOST:PORT, got \"" + HostPort + "\"";
    return false;
  }
  std::string Host = HostPort.substr(0, Colon);
  std::string PortStr = HostPort.substr(Colon + 1);
  if (Host == "localhost")
    Host = "127.0.0.1";
  char *End = nullptr;
  long Port = std::strtol(PortStr.c_str(), &End, 10);
  if (PortStr.empty() || *End != '\0' || Port < 0 || Port > 65535) {
    Error = "bad port \"" + PortStr + "\"";
    return false;
  }
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(static_cast<uint16_t>(Port));
  if (inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Error = "bad IPv4 host \"" + Host + "\"";
    return false;
  }
  return true;
}

} // namespace

void Server::Mailbox::post(uint64_t ConnId, std::string Bytes) {
  std::lock_guard<std::mutex> Lock(M);
  if (!Alive)
    return;
  bool WasEmpty = Q.empty();
  Q.emplace_back(ConnId, std::move(Bytes));
  if (WasEmpty && WakeWr >= 0) {
    char B = 1;
    ssize_t Ignored = write(WakeWr, &B, 1);
    (void)Ignored; // pipe full just means a wakeup is already pending
  }
}

Server::Server(ShardedService &Sharded, const FrontEndConfig &FC,
               ServiceRequest Defaults)
    : Sharded(Sharded), Config(FC), Defaults(std::move(Defaults)),
      Mail(std::make_shared<Mailbox>()) {}

Server::~Server() { stop(); }

bool Server::listen(const std::string &HostPort, std::string *Error) {
  std::string Err;
  sockaddr_in Addr;
  if (!parseHostPort(HostPort, Addr, Err)) {
    if (Error)
      *Error = Err;
    return false;
  }
  ListenFd = socket(AF_INET, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    if (Error)
      *Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0 ||
      ::listen(ListenFd, Config.ListenBacklog) != 0 ||
      !setNonBlocking(ListenFd)) {
    if (Error)
      *Error = std::string("bind/listen: ") + std::strerror(errno);
    close(ListenFd);
    ListenFd = -1;
    return false;
  }
  sockaddr_in Bound;
  socklen_t Len = sizeof(Bound);
  if (getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Bound), &Len) == 0)
    Port = ntohs(Bound.sin_port);
  return true;
}

bool Server::start() {
  if (ListenFd < 0 || Started || !P.ok())
    return false;
  int Pipe[2];
  if (pipe(Pipe) != 0)
    return false;
  setNonBlocking(Pipe[0]);
  setNonBlocking(Pipe[1]);
  WakeRd = Pipe[0];
  {
    std::lock_guard<std::mutex> Lock(Mail->M);
    Mail->WakeWr = Pipe[1];
  }
  P.add(ListenFd, /*Read=*/true, /*Write=*/false);
  P.add(WakeRd, /*Read=*/true, /*Write=*/false);
  Started = true;
  LoopThread = std::thread([this] { loop(); });
  return true;
}

void Server::stop() {
  if (!Started) {
    if (ListenFd >= 0) {
      close(ListenFd);
      ListenFd = -1;
    }
    return;
  }
  StopFlag.store(true, std::memory_order_relaxed);
  Mail->post(0, ""); // any post wakes the loop; id 0 never matches
  LoopThread.join();
  Started = false;
  int WakeWr = -1;
  {
    // Dead mailbox first: a worker finishing now must see !Alive before
    // the pipe fd it would write to is closed (and possibly reused).
    std::lock_guard<std::mutex> Lock(Mail->M);
    Mail->Alive = false;
    WakeWr = Mail->WakeWr;
    Mail->WakeWr = -1;
    Mail->Q.clear();
  }
  if (WakeWr >= 0)
    close(WakeWr);
  if (WakeRd >= 0) {
    close(WakeRd);
    WakeRd = -1;
  }
  for (auto &KV : Conns)
    close(KV.second.Fd);
  Conns.clear();
  ConnById.clear();
  if (ListenFd >= 0) {
    close(ListenFd);
    ListenFd = -1;
  }
}

ServerStats Server::stats() const {
  ServerStats S;
  S.Accepted = Stats.Accepted.load(std::memory_order_relaxed);
  S.Refused = Stats.Refused.load(std::memory_order_relaxed);
  S.Closed = Stats.Closed.load(std::memory_order_relaxed);
  S.IdleClosed = Stats.IdleClosed.load(std::memory_order_relaxed);
  S.FramesIn = Stats.FramesIn.load(std::memory_order_relaxed);
  S.FramesOut = Stats.FramesOut.load(std::memory_order_relaxed);
  S.BadRequests = Stats.BadRequests.load(std::memory_order_relaxed);
  S.ProtocolErrors = Stats.ProtocolErrors.load(std::memory_order_relaxed);
  S.TruncatedFrames = Stats.TruncatedFrames.load(std::memory_order_relaxed);
  S.DroppedResponses = Stats.DroppedResponses.load(std::memory_order_relaxed);
  S.BytesIn = Stats.BytesIn.load(std::memory_order_relaxed);
  S.BytesOut = Stats.BytesOut.load(std::memory_order_relaxed);
  return S;
}

void Server::loop() {
  std::vector<PollEvent> Evs;
  while (!StopFlag.load(std::memory_order_relaxed)) {
    // A finite timeout backs up the wake-pipe (stop, idle sweep) so a
    // lost wakeup can only ever delay, not deadlock.
    P.wait(Evs, Config.IdleTimeoutMs ? 100 : 500);
    for (const PollEvent &Ev : Evs) {
      if (Ev.Fd == WakeRd) {
        char Buf[256];
        while (read(WakeRd, Buf, sizeof(Buf)) > 0)
          ;
        continue;
      }
      if (Ev.Fd == ListenFd) {
        acceptAll();
        continue;
      }
      auto It = Conns.find(Ev.Fd);
      if (It == Conns.end())
        continue; // closed earlier in this batch
      uint64_t Id = It->second.Id;
      if (Ev.Writable)
        flushOut(It->second);
      // flushOut may close; re-find before reading.
      if (Conn *C = connAt(Ev.Fd, Id))
        if (Ev.Readable || Ev.Hangup)
          readInput(*C);
    }
    drainMailbox();
    if (Config.IdleTimeoutMs)
      sweepIdle();
  }
}

void Server::acceptAll() {
  for (;;) {
    int Fd = accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN or transient error; the poller will re-arm
    if (Conns.size() >= Config.MaxConnections || !setNonBlocking(Fd)) {
      close(Fd);
      Stats.Refused.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    int One = 1;
    setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    Conn C(Config.MaxFrameBytes);
    C.Id = NextConnId++;
    C.Fd = Fd;
    C.LastActivity = std::chrono::steady_clock::now();
    ConnById.emplace(C.Id, Fd);
    Conns.emplace(Fd, std::move(C));
    P.add(Fd, /*Read=*/true, /*Write=*/false);
    Stats.Accepted.fetch_add(1, std::memory_order_relaxed);
  }
}

Server::Conn *Server::connAt(int Fd, uint64_t Id) {
  auto It = Conns.find(Fd);
  return It != Conns.end() && It->second.Id == Id ? &It->second : nullptr;
}

void Server::readInput(Conn &C0) {
  // queueResponse/flushOut on the paths below can erase the connection;
  // revalidate by (fd, id) after every call that might.
  const int Fd = C0.Fd;
  const uint64_t Id = C0.Id;
  char Buf[16384];
  for (;;) {
    Conn *C = connAt(Fd, Id);
    if (!C)
      return;
    ssize_t N = recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Stats.BytesIn.fetch_add(uint64_t(N), std::memory_order_relaxed);
      C->LastActivity = std::chrono::steady_clock::now();
      C->Dec.feed(std::string_view(Buf, size_t(N)));
      processFrames(*C);
      C = connAt(Fd, Id);
      if (!C || C->ReadClosed)
        return; // closed, or protocol error: ignore further input
      continue;
    }
    if (N == 0) {
      // Orderly shutdown from the peer. Half-close is honored: anything
      // already dispatched still gets written back. A partial frame in
      // the buffer means the peer died mid-send.
      if (C->Dec.hasPartial())
        Stats.TruncatedFrames.fetch_add(1, std::memory_order_relaxed);
      C->ReadClosed = true;
      updateInterest(*C);
      maybeClose(*C);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    if (errno == EINTR)
      continue;
    closeConn(*C); // ECONNRESET and friends
    return;
  }
}

void Server::processFrames(Conn &C0) {
  const int Fd = C0.Fd;
  const uint64_t Id = C0.Id;
  std::string Payload;
  for (;;) {
    Conn *C = connAt(Fd, Id);
    if (!C)
      return;
    FrameStatus St = C->Dec.next(Payload);
    if (St == FrameStatus::NeedMore)
      return;
    if (St == FrameStatus::Error) {
      // The byte stream itself is broken; answer once, then close.
      Stats.ProtocolErrors.fetch_add(1, std::memory_order_relaxed);
      ServiceResponse Bad;
      Bad.Seq = C->NextSeq++;
      Bad.Tenant = Defaults.Tenant;
      Bad.Reject = RejectKind::BadRequest;
      Bad.Error = "malformed frame: " + C->Dec.error();
      C->ReadClosed = true;
      C->CloseAfterFlush = true;
      queueResponse(*C, wireResponseJson(Bad));
      if ((C = connAt(Fd, Id)))
        maybeClose(*C);
      return;
    }
    Stats.FramesIn.fetch_add(1, std::memory_order_relaxed);
    dispatch(*C, Payload);
  }
}

void Server::dispatch(Conn &C, const std::string &Payload) {
  uint64_t Seq = C.NextSeq++;
  ServiceRequest R = Defaults;
  std::string Err;
  if (!parseServiceRequestJson(Payload, R, Err)) {
    // A malformed document, not a malformed stream: answer structurally
    // and keep the connection.
    Stats.BadRequests.fetch_add(1, std::memory_order_relaxed);
    ServiceResponse Bad;
    Bad.Seq = Seq;
    Bad.Tenant = R.Tenant;
    Bad.Reject = RejectKind::BadRequest;
    Bad.Error = Err;
    queueResponse(C, wireResponseJson(Bad));
    return;
  }
  ++C.InFlight;
  auto MB = Mail;
  uint64_t ConnId = C.Id;
  FrameMode Mode = C.Dec.mode();
  Sharded.submitWith(std::move(R),
                     [MB, ConnId, Seq, Mode](ServiceResponse Resp) {
                       Resp.Seq = Seq;
                       // Serialize on the worker: the loop thread only
                       // moves bytes.
                       MB->post(ConnId,
                                encodeFrame(Mode, wireResponseJson(Resp)));
                     });
}

void Server::queueResponse(Conn &C, const std::string &Doc) {
  FrameMode Mode =
      C.Dec.mode() == FrameMode::Unknown ? FrameMode::Line : C.Dec.mode();
  C.Out += encodeFrame(Mode, Doc);
  Stats.FramesOut.fetch_add(1, std::memory_order_relaxed);
  if (C.Out.size() - C.OutOff > MaxOutBufBytes) {
    closeConn(C);
    return;
  }
  flushOut(C);
}

void Server::flushOut(Conn &C) {
  while (C.OutOff < C.Out.size()) {
    ssize_t N = send(C.Fd, C.Out.data() + C.OutOff, C.Out.size() - C.OutOff,
                     MSG_NOSIGNAL);
    if (N > 0) {
      Stats.BytesOut.fetch_add(uint64_t(N), std::memory_order_relaxed);
      C.OutOff += size_t(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      updateInterest(C);
      return;
    }
    if (N < 0 && errno == EINTR)
      continue;
    closeConn(C); // EPIPE: the peer is gone
    return;
  }
  C.Out.clear();
  C.OutOff = 0;
  updateInterest(C);
  maybeClose(C);
}

void Server::drainMailbox() {
  std::deque<std::pair<uint64_t, std::string>> Q;
  {
    std::lock_guard<std::mutex> Lock(Mail->M);
    Q.swap(Mail->Q);
  }
  for (auto &Item : Q) {
    auto IdIt = ConnById.find(Item.first);
    if (IdIt == ConnById.end()) {
      if (Item.first != 0) // 0 is the stop() wake sentinel
        Stats.DroppedResponses.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Conn &C = Conns.at(IdIt->second);
    if (C.InFlight > 0)
      --C.InFlight;
    C.Out += Item.second;
    Stats.FramesOut.fetch_add(1, std::memory_order_relaxed);
    if (C.Out.size() - C.OutOff > MaxOutBufBytes) {
      closeConn(C);
      continue;
    }
    flushOut(C);
  }
}

void Server::sweepIdle() {
  auto Now = std::chrono::steady_clock::now();
  std::vector<int> Victims;
  for (auto &KV : Conns) {
    Conn &C = KV.second;
    if (C.InFlight != 0 || C.OutOff < C.Out.size())
      continue;
    auto IdleMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Now - C.LastActivity)
                      .count();
    if (IdleMs >= 0 && uint64_t(IdleMs) >= Config.IdleTimeoutMs)
      Victims.push_back(KV.first);
  }
  for (int Fd : Victims) {
    auto It = Conns.find(Fd);
    if (It != Conns.end())
      closeConn(It->second, /*Idle=*/true);
  }
}

void Server::updateInterest(Conn &C) {
  bool WantWrite = C.OutOff < C.Out.size();
  if (WantWrite == C.WantWrite)
    return;
  C.WantWrite = WantWrite;
  P.update(C.Fd, /*Read=*/!C.ReadClosed, WantWrite);
}

void Server::closeConn(Conn &C, bool Idle) {
  P.remove(C.Fd);
  close(C.Fd);
  ConnById.erase(C.Id);
  Stats.Closed.fetch_add(1, std::memory_order_relaxed);
  if (Idle)
    Stats.IdleClosed.fetch_add(1, std::memory_order_relaxed);
  Conns.erase(C.Fd); // invalidates C; must be last
}

void Server::maybeClose(Conn &C) {
  bool Flushed = C.OutOff >= C.Out.size();
  if (Flushed && (C.CloseAfterFlush || (C.ReadClosed && C.InFlight == 0)))
    closeConn(C);
}
