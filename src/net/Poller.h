//===- net/Poller.h - epoll/poll readiness abstraction ----------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one readiness primitive the event loop needs: register a file
/// descriptor for read and/or write interest, wait, get back which fds
/// are ready. Backed by epoll(7) on Linux (O(ready) wakeups, interest
/// list kept in the kernel) and by poll(2) everywhere else — and on
/// Linux too when PERCEUS_NET_FORCE_POLL is defined, which is how CI
/// exercises the fallback without a second OS. Level-triggered in both
/// backends, so the server may leave bytes unconsumed and be re-woken.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_NET_POLLER_H
#define PERCEUS_NET_POLLER_H

#include <vector>

#if defined(__linux__) && !defined(PERCEUS_NET_FORCE_POLL)
#define PERCEUS_NET_USE_EPOLL 1
#else
#define PERCEUS_NET_USE_EPOLL 0
#endif

#if !PERCEUS_NET_USE_EPOLL
#include <poll.h>
#endif

namespace perceus {

/// One ready fd out of wait().
struct PollEvent {
  int Fd = -1;
  bool Readable = false;
  bool Writable = false;
  /// Peer hung up or the fd errored; treat as readable-to-EOF.
  bool Hangup = false;
};

/// See the file comment.
class Poller {
public:
  Poller();
  ~Poller();
  Poller(const Poller &) = delete;
  Poller &operator=(const Poller &) = delete;

  bool ok() const;

  bool add(int Fd, bool Read, bool Write);
  bool update(int Fd, bool Read, bool Write);
  void remove(int Fd);

  /// Blocks up to \p TimeoutMs (-1 = forever) and fills \p Out with the
  /// ready set. Returns the count, 0 on timeout or EINTR.
  int wait(std::vector<PollEvent> &Out, int TimeoutMs);

  /// "epoll" or "poll"; surfaced in the listen banner so a log line
  /// says which backend handled the traffic.
  static const char *backendName();

private:
#if PERCEUS_NET_USE_EPOLL
  int EpFd = -1;
#else
  std::vector<pollfd> Fds; ///< interest list, compacted on remove
#endif
};

} // namespace perceus

#endif // PERCEUS_NET_POLLER_H
