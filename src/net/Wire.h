//===- net/Wire.h - perceus-wire-v1 framing -------------------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-stream framing for the perceus-wire-v1 protocol. A connection
/// speaks one of two framings, auto-detected from its first
/// non-whitespace byte and fixed for the connection's lifetime:
///
///   * *line mode*: one JSON document per newline-terminated line (the
///     same shape `perc --serve` reads on stdin) — the first byte is
///     '{';
///   * *length-prefixed mode*: a 4-byte big-endian payload length
///     followed by that many bytes of JSON — unambiguous against line
///     mode because MaxFrameBytes is far below 2^24, so the first
///     prefix byte is always 0x00, never '{' (0x7b).
///
/// Responses are framed the same way the connection's requests were.
/// The decoder is a pure push-parser over an internal buffer: feed()
/// bytes as they arrive, then drain complete frames with next(). It
/// never throws and never reads beyond its buffer; oversized frames
/// (payload or line longer than MaxFrameBytes) surface as a structured
/// error the server turns into a "bad-request" response before closing.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_NET_WIRE_H
#define PERCEUS_NET_WIRE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace perceus {

/// How a connection frames its JSON documents.
enum class FrameMode {
  Unknown, ///< nothing decisive received yet
  Line,    ///< newline-delimited JSON
  Length,  ///< 4-byte big-endian length prefix + JSON payload
};

/// One next() outcome.
enum class FrameStatus {
  Frame,    ///< a complete payload was produced
  NeedMore, ///< the buffer holds no complete frame; feed() more bytes
  Error,    ///< protocol violation; error() describes it, close after
};

/// See the file comment. One decoder per connection; Mode latches on
/// the first decisive byte.
class FrameDecoder {
public:
  explicit FrameDecoder(size_t MaxFrameBytes) : MaxFrame(MaxFrameBytes) {}

  /// Appends newly received bytes.
  void feed(std::string_view Data) { Buf.append(Data.data(), Data.size()); }

  /// Extracts the next complete JSON payload into \p Payload. Call
  /// repeatedly until it stops returning Frame. After Error the decoder
  /// is poisoned: every further call returns Error.
  FrameStatus next(std::string &Payload);

  FrameMode mode() const { return Mode; }
  const std::string &error() const { return Err; }

  /// True when undecoded bytes are buffered — at EOF that means the
  /// peer disconnected mid-frame (a truncated length prefix or an
  /// unterminated line).
  bool hasPartial() const { return !Buf.empty(); }

private:
  FrameStatus poison(std::string Msg) {
    Err = std::move(Msg);
    Poisoned = true;
    return FrameStatus::Error;
  }

  size_t MaxFrame;
  FrameMode Mode = FrameMode::Unknown;
  std::string Buf;
  std::string Err;
  bool Poisoned = false;
};

/// Wraps \p Payload in \p Mode's framing (appends '\n', or prepends the
/// 4-byte big-endian length). Mode must not be Unknown.
std::string encodeFrame(FrameMode Mode, std::string_view Payload);

} // namespace perceus

#endif // PERCEUS_NET_WIRE_H
