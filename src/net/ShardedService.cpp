//===- net/ShardedService.cpp - Hash-routed service shards ----------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/ShardedService.h"

#include <algorithm>

using namespace perceus;

ShardedService::ShardedService(const FrontEndConfig &FC) : Config(FC) {
  Config.Shards = resolveAutoParallelism(Config.Shards, /*Max=*/8);
  Shards.reserve(Config.Shards);
  for (unsigned I = 0; I != Config.Shards; ++I)
    Shards.emplace_back(std::make_unique<Service>(Config.Shard));
}

ShardedService::~ShardedService() { stop(); }

void ShardedService::stop() {
  for (auto &S : Shards)
    S->stop();
}

size_t ShardedService::shardFor(std::string_view Tenant,
                                std::string_view Source) const {
  // FNV-1a 64, tenant then a non-text separator then source, so
  // ("ab", "c") and ("a", "bc") hash apart.
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](std::string_view S) {
    for (unsigned char C : S) {
      H ^= C;
      H *= 1099511628211ull;
    }
  };
  Mix(Tenant);
  H ^= 0x1f;
  H *= 1099511628211ull;
  Mix(Source);
  return static_cast<size_t>(H % Shards.size());
}

void ShardedService::submitWith(ServiceRequest R, ResponseCallback Done) {
  size_t Idx = shardFor(R.Tenant, R.Source);
  Shards[Idx]->submitWith(
      std::move(R), [Idx, Done = std::move(Done)](ServiceResponse Resp) {
        Resp.Shard = static_cast<unsigned>(Idx);
        Done(std::move(Resp));
      });
}

std::future<ServiceResponse> ShardedService::submit(ServiceRequest R) {
  auto Prom = std::make_shared<std::promise<ServiceResponse>>();
  std::future<ServiceResponse> Fut = Prom->get_future();
  submitWith(std::move(R), [Prom](ServiceResponse Resp) {
    Prom->set_value(std::move(Resp));
  });
  return Fut;
}

ServiceResponse ShardedService::call(ServiceRequest R) {
  return submit(std::move(R)).get();
}

bool ShardedService::precompile(const std::string &Tenant,
                                const std::string &Source,
                                const PassConfig &Config, EngineKind Engine,
                                std::string *Error) {
  return Shards[shardFor(Tenant, Source)]->precompile(Source, Config, Engine,
                                                      Error);
}

void ShardedService::setTenantPolicy(const std::string &Tenant,
                                     const TenantPolicy &P) {
  for (auto &S : Shards)
    S->setTenantPolicy(Tenant, P);
}

TenantCounters ShardedService::tenantStats(const std::string &Tenant) const {
  TenantCounters Sum;
  for (const auto &S : Shards) {
    TenantCounters C = S->tenantStats(Tenant);
    Sum.Submitted += C.Submitted;
    Sum.Admitted += C.Admitted;
    Sum.Executed += C.Executed;
    Sum.Traps += C.Traps;
    Sum.RejectedRateLimited += C.RejectedRateLimited;
    Sum.RejectedTenantQuota += C.RejectedTenantQuota;
    Sum.Shed += C.Shed;
    Sum.QueueSecondsTotal += C.QueueSecondsTotal;
    Sum.RunSecondsTotal += C.RunSecondsTotal;
    Sum.Heap.Allocs += C.Heap.Allocs;
    Sum.Heap.Frees += C.Heap.Frees;
    Sum.Heap.DupOps += C.Heap.DupOps;
    Sum.Heap.DropOps += C.Heap.DropOps;
    Sum.RetainedPeakBytes = std::max(Sum.RetainedPeakBytes, C.RetainedPeakBytes);
  }
  return Sum;
}

ServiceStats ShardedService::stats() const {
  ServiceStats Sum;
  for (const auto &S : Shards)
    accumulate(Sum, S->stats());
  return Sum;
}
