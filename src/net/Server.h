//===- net/Server.h - TCP front end for the sharded service -----*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The socket transport of `perc --listen`: one event-loop thread
/// (Poller: epoll, or poll as fallback) accepting TCP connections and
/// speaking perceus-wire-v1 in either framing (Wire.h auto-detects per
/// connection). The loop never executes a request — it decodes frames,
/// parses them over the CLI's default-request template, and hands them
/// to ShardedService::submitWith. Shard workers finish requests and
/// post serialized responses back through a mailbox + wake-pipe; the
/// loop owns every socket exclusively, so there is no per-connection
/// locking anywhere.
///
/// Back-pressure and robustness model:
///   * admission pressure is the service's job — queue-full, shedding,
///     rate-limit and breaker verdicts come back as structured
///     responses with RetryAfterMs, never as dropped bytes;
///   * a malformed *document* (bad JSON, unknown key, schema mismatch)
///     is a "bad-request" response; the connection lives on;
///   * a malformed *stream* (oversized frame or line, zero-length
///     frame) gets one final "bad-request" response and the connection
///     closes — framing is no longer trustworthy;
///   * a peer that disconnects with requests in flight just stops
///     receiving: its responses are dropped by connection-id lookup
///     when the workers finish (counted in DroppedResponses), and the
///     heap-empty guarantee is untouched because it never depended on
///     the client reading anything;
///   * a slow-loris peer is bounded by FrontEndConfig::IdleTimeoutMs
///     and by MaxFrameBytes of buffered input; a peer that stops
///     reading is bounded by a fixed output-buffer cap.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_NET_SERVER_H
#define PERCEUS_NET_SERVER_H

#include "net/Poller.h"
#include "net/ShardedService.h"
#include "net/Wire.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

namespace perceus {

/// Transport-level counters (the service layer keeps its own). Atomics;
/// stats() snapshots without stopping the loop.
struct ServerStats {
  uint64_t Accepted = 0;         ///< connections accepted
  uint64_t Refused = 0;          ///< closed at accept (MaxConnections)
  uint64_t Closed = 0;           ///< connections fully closed
  uint64_t IdleClosed = 0;       ///< closed by the idle sweep
  uint64_t FramesIn = 0;         ///< complete frames decoded
  uint64_t FramesOut = 0;        ///< responses queued for send
  uint64_t BadRequests = 0;      ///< malformed documents (conn survives)
  uint64_t ProtocolErrors = 0;   ///< malformed streams (conn closes)
  uint64_t TruncatedFrames = 0;  ///< disconnects mid-frame
  uint64_t DroppedResponses = 0; ///< finished after their conn died
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
};

/// See the file comment.
class Server {
public:
  /// \p Defaults is the request template CLI flags establish (source,
  /// config, engine, limits, tenant); each frame's JSON overlays it.
  Server(ShardedService &Sharded, const FrontEndConfig &FC,
         ServiceRequest Defaults);
  ~Server(); ///< stop()s
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Binds and listens on "HOST:PORT" (IPv4; port 0 picks an ephemeral
  /// port — read it back with port()). Returns false and fills
  /// \p Error on failure.
  bool listen(const std::string &HostPort, std::string *Error);

  /// The bound port (after listen()).
  uint16_t port() const { return Port; }

  /// Spawns the event-loop thread. listen() must have succeeded.
  bool start();

  /// Stops the loop, joins, closes every connection. Responses still in
  /// flight inside the service are dropped on arrival. Idempotent.
  void stop();

  ServerStats stats() const;

private:
  struct Conn {
    uint64_t Id = 0;
    int Fd = -1;
    FrameDecoder Dec;
    std::string Out;      ///< encoded responses awaiting send
    size_t OutOff = 0;    ///< sent prefix of Out
    uint64_t NextSeq = 1; ///< per-connection frame counter
    uint64_t InFlight = 0;
    bool ReadClosed = false;
    bool CloseAfterFlush = false;
    bool WantWrite = false;
    std::chrono::steady_clock::time_point LastActivity;

    explicit Conn(size_t MaxFrame) : Dec(MaxFrame) {}
  };

  /// Worker→loop handoff. Workers outlive neither the service nor this
  /// mailbox's shared_ptr, so a response finishing after stop() lands
  /// on a dead mailbox and is dropped, never on freed memory.
  struct Mailbox {
    std::mutex M;
    bool Alive = true;
    int WakeWr = -1;
    std::deque<std::pair<uint64_t, std::string>> Q; ///< (conn id, bytes)
    void post(uint64_t ConnId, std::string Bytes);
  };

  struct AtomicStats {
    std::atomic<uint64_t> Accepted{0}, Refused{0}, Closed{0}, IdleClosed{0},
        FramesIn{0}, FramesOut{0}, BadRequests{0}, ProtocolErrors{0},
        TruncatedFrames{0}, DroppedResponses{0}, BytesIn{0}, BytesOut{0};
  };

  void loop();
  Conn *connAt(int Fd, uint64_t Id);
  void acceptAll();
  void readInput(Conn &C);
  void processFrames(Conn &C);
  void dispatch(Conn &C, const std::string &Payload);
  void queueResponse(Conn &C, const std::string &Doc);
  void flushOut(Conn &C);
  void drainMailbox();
  void sweepIdle();
  void updateInterest(Conn &C);
  void closeConn(Conn &C, bool Idle = false);
  void maybeClose(Conn &C);

  ShardedService &Sharded;
  FrontEndConfig Config;
  ServiceRequest Defaults;

  Poller P;
  int ListenFd = -1;
  int WakeRd = -1;
  uint16_t Port = 0;
  std::shared_ptr<Mailbox> Mail;

  std::unordered_map<int, Conn> Conns;         ///< by fd
  std::unordered_map<uint64_t, int> ConnById;  ///< id -> fd
  uint64_t NextConnId = 1;

  mutable AtomicStats Stats;
  std::atomic<bool> StopFlag{false};
  std::thread LoopThread;
  bool Started = false;
};

} // namespace perceus

#endif // PERCEUS_NET_SERVER_H
