//===- net/Wire.cpp - perceus-wire-v1 framing -----------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Wire.h"

#include <cctype>

using namespace perceus;

FrameStatus FrameDecoder::next(std::string &Payload) {
  if (Poisoned)
    return FrameStatus::Error;

  if (Mode == FrameMode::Unknown) {
    // Skip inter-frame whitespace (clients that send "\n{...}" or blank
    // lines before committing to a mode), then latch on the first
    // decisive byte. A length prefix's first byte is 0x00 for any sane
    // MaxFrameBytes, which isspace() rejects, so the skip cannot eat it.
    size_t I = 0;
    while (I < Buf.size() && std::isspace(static_cast<unsigned char>(Buf[I])))
      ++I;
    Buf.erase(0, I);
    if (Buf.empty())
      return FrameStatus::NeedMore;
    Mode = Buf[0] == '{' ? FrameMode::Line : FrameMode::Length;
  }

  if (Mode == FrameMode::Line) {
    size_t Nl = Buf.find('\n');
    if (Nl == std::string::npos) {
      if (Buf.size() > MaxFrame)
        return poison("line exceeds " + std::to_string(MaxFrame) + " bytes");
      return FrameStatus::NeedMore;
    }
    if (Nl > MaxFrame)
      return poison("line exceeds " + std::to_string(MaxFrame) + " bytes");
    Payload.assign(Buf, 0, Nl);
    if (!Payload.empty() && Payload.back() == '\r')
      Payload.pop_back();
    Buf.erase(0, Nl + 1);
    // Blank lines between frames are tolerated, not frames themselves.
    if (Payload.find_first_not_of(" \t\r") == std::string::npos)
      return next(Payload);
    return FrameStatus::Frame;
  }

  // Length-prefixed mode.
  if (Buf.size() < 4)
    return FrameStatus::NeedMore;
  uint32_t Len = (uint32_t(uint8_t(Buf[0])) << 24) |
                 (uint32_t(uint8_t(Buf[1])) << 16) |
                 (uint32_t(uint8_t(Buf[2])) << 8) | uint32_t(uint8_t(Buf[3]));
  if (Len == 0)
    return poison("zero-length frame");
  if (Len > MaxFrame)
    return poison("frame declares " + std::to_string(Len) + " bytes, limit " +
                  std::to_string(MaxFrame));
  if (Buf.size() < 4 + size_t(Len))
    return FrameStatus::NeedMore;
  Payload.assign(Buf, 4, Len);
  Buf.erase(0, 4 + size_t(Len));
  return FrameStatus::Frame;
}

std::string perceus::encodeFrame(FrameMode Mode, std::string_view Payload) {
  std::string Out;
  if (Mode == FrameMode::Length) {
    uint32_t Len = static_cast<uint32_t>(Payload.size());
    Out.reserve(Payload.size() + 4);
    Out += static_cast<char>((Len >> 24) & 0xff);
    Out += static_cast<char>((Len >> 16) & 0xff);
    Out += static_cast<char>((Len >> 8) & 0xff);
    Out += static_cast<char>(Len & 0xff);
    Out += Payload;
  } else {
    Out.reserve(Payload.size() + 1);
    Out += Payload;
    Out += '\n';
  }
  return Out;
}
