//===- net/Poller.cpp - epoll/poll readiness abstraction ------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "net/Poller.h"

#include <algorithm>

#if PERCEUS_NET_USE_EPOLL
#include <sys/epoll.h>
#include <unistd.h>
#else
#include <poll.h>
#endif

using namespace perceus;

#if PERCEUS_NET_USE_EPOLL

Poller::Poller() { EpFd = epoll_create1(0); }

Poller::~Poller() {
  if (EpFd >= 0)
    close(EpFd);
}

bool Poller::ok() const { return EpFd >= 0; }

static uint32_t toEpoll(bool Read, bool Write) {
  uint32_t E = 0;
  if (Read)
    E |= EPOLLIN;
  if (Write)
    E |= EPOLLOUT;
  return E;
}

bool Poller::add(int Fd, bool Read, bool Write) {
  epoll_event Ev{};
  Ev.events = toEpoll(Read, Write);
  Ev.data.fd = Fd;
  return epoll_ctl(EpFd, EPOLL_CTL_ADD, Fd, &Ev) == 0;
}

bool Poller::update(int Fd, bool Read, bool Write) {
  epoll_event Ev{};
  Ev.events = toEpoll(Read, Write);
  Ev.data.fd = Fd;
  return epoll_ctl(EpFd, EPOLL_CTL_MOD, Fd, &Ev) == 0;
}

void Poller::remove(int Fd) { epoll_ctl(EpFd, EPOLL_CTL_DEL, Fd, nullptr); }

int Poller::wait(std::vector<PollEvent> &Out, int TimeoutMs) {
  epoll_event Evs[64];
  int N = epoll_wait(EpFd, Evs, 64, TimeoutMs);
  Out.clear();
  if (N <= 0)
    return N < 0 ? 0 : 0; // EINTR and timeout both mean "nothing ready"
  for (int I = 0; I != N; ++I) {
    PollEvent E;
    E.Fd = Evs[I].data.fd;
    E.Readable = (Evs[I].events & EPOLLIN) != 0;
    E.Writable = (Evs[I].events & EPOLLOUT) != 0;
    E.Hangup = (Evs[I].events & (EPOLLHUP | EPOLLERR)) != 0;
    Out.push_back(E);
  }
  return N;
}

const char *Poller::backendName() { return "epoll"; }

#else // poll(2) fallback

Poller::Poller() = default;
Poller::~Poller() = default;

bool Poller::ok() const { return true; }

static short toPoll(bool Read, bool Write) {
  short E = 0;
  if (Read)
    E |= POLLIN;
  if (Write)
    E |= POLLOUT;
  return E;
}

bool Poller::add(int Fd, bool Read, bool Write) {
  pollfd P{};
  P.fd = Fd;
  P.events = toPoll(Read, Write);
  Fds.push_back(P);
  return true;
}

bool Poller::update(int Fd, bool Read, bool Write) {
  for (pollfd &P : Fds)
    if (P.fd == Fd) {
      P.events = toPoll(Read, Write);
      return true;
    }
  return false;
}

void Poller::remove(int Fd) {
  Fds.erase(std::remove_if(Fds.begin(), Fds.end(),
                           [Fd](const pollfd &P) { return P.fd == Fd; }),
            Fds.end());
}

int Poller::wait(std::vector<PollEvent> &Out, int TimeoutMs) {
  Out.clear();
  if (Fds.empty())
    return 0;
  int N = ::poll(Fds.data(), Fds.size(), TimeoutMs);
  if (N <= 0)
    return 0;
  for (const pollfd &P : Fds) {
    if (!P.revents)
      continue;
    PollEvent E;
    E.Fd = P.fd;
    E.Readable = (P.revents & POLLIN) != 0;
    E.Writable = (P.revents & POLLOUT) != 0;
    E.Hangup = (P.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    Out.push_back(E);
  }
  return N;
}

const char *Poller::backendName() { return "poll"; }

#endif
