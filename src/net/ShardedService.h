//===- net/ShardedService.h - Hash-routed service shards --------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// N independent `Service` shards behind one submission surface. Each
/// shard owns everything `ServiceConfig` describes — its worker pool,
/// bounded tenant queues, artifact cache, TenantGovernor, and circuit
/// breakers — so no mutex, governor map, or cache ledger is shared
/// between shards: a request contends only with the traffic its own
/// shard carries. Requests route by an FNV-1a hash of (tenant, source),
/// which keeps one tenant's runs of one program on one shard — warm
/// caches and a coherent breaker/governor view — while spreading
/// distinct (tenant, program) pairs across the fleet.
///
/// The cost of that isolation is deliberate and visible: two shards
/// that both see a source key compile it independently (per-shard
/// caches don't share artifacts), and per-tenant quotas are enforced
/// per shard. The aggregated stats() view sums shard counters;
/// shardStats() exposes the per-shard breakdown the bench harness and
/// `--stats` report use.
///
/// This is the *shard level* of the configuration split: ServiceConfig
/// tunes one shard, FrontEndConfig (below) tunes the fleet and the
/// socket front end that feeds it (Server.h).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_NET_SHARDEDSERVICE_H
#define PERCEUS_NET_SHARDEDSERVICE_H

#include "service/Service.h"

#include <memory>
#include <string_view>
#include <vector>

namespace perceus {

/// Front-end-level tuning: how many shards, and how the socket listener
/// frames and bounds its connections. The per-shard knobs live in the
/// embedded ServiceConfig; `perc --listen` builds one of these from the
/// CLI and hands it to ShardedService + Server.
struct FrontEndConfig {
  /// Service shards. 0 = one per hardware thread (hardware_concurrency
  /// clamped to [1, 8]); the default stays 1 so single-shard behavior
  /// is what you get unless you ask.
  unsigned Shards = 1;
  /// Applied to every shard (each gets its own workers, queue, cache,
  /// governor, and breakers at these settings).
  ServiceConfig Shard;
  /// Ceiling on one framed request (line or length-prefixed payload).
  /// A frame over this is a structured bad-request and the connection
  /// closes. Also bounds per-connection buffering.
  size_t MaxFrameBytes = 64 * 1024;
  /// listen(2) backlog for the accept socket.
  int ListenBacklog = 64;
  /// Accepted-connection cap; further accepts are closed immediately
  /// (counted, never serviced) until a slot frees.
  size_t MaxConnections = 1024;
  /// Close a connection that has been idle (no bytes in, nothing
  /// buffered out, nothing in flight) this long. 0 = never. This is the
  /// slow-loris backstop: a peer dribbling a frame forever holds a
  /// connection slot only until this expires.
  uint64_t IdleTimeoutMs = 0;

  FrontEndConfig &withShards(unsigned N) {
    Shards = N;
    return *this;
  }
  FrontEndConfig &withShard(const ServiceConfig &C) {
    Shard = C;
    return *this;
  }
  FrontEndConfig &withMaxFrameBytes(size_t B) {
    MaxFrameBytes = B;
    return *this;
  }
  FrontEndConfig &withListenBacklog(int N) {
    ListenBacklog = N;
    return *this;
  }
  FrontEndConfig &withMaxConnections(size_t N) {
    MaxConnections = N;
    return *this;
  }
  FrontEndConfig &withIdleTimeoutMs(uint64_t Ms) {
    IdleTimeoutMs = Ms;
    return *this;
  }
};

/// See the file comment.
class ShardedService {
public:
  using ResponseCallback = Service::ResponseCallback;

  explicit ShardedService(const FrontEndConfig &FC = {});
  ~ShardedService(); ///< stops every shard
  ShardedService(const ShardedService &) = delete;
  ShardedService &operator=(const ShardedService &) = delete;

  size_t shardCount() const { return Shards.size(); }

  /// The shard (tenant, source) routes to: FNV-1a over tenant, a
  /// separator, then source, mod the shard count. Stable for the
  /// process lifetime — stats and caches stay attributable.
  size_t shardFor(std::string_view Tenant, std::string_view Source) const;

  /// Direct access to shard \p I (tests and the stats report).
  Service &shard(size_t I) { return *Shards[I]; }

  /// Routes \p R to its shard and submits. \p Done sees the response
  /// with ServiceResponse::Shard stamped; the same callback-threading
  /// caveats as Service::submitWith apply.
  void submitWith(ServiceRequest R, ResponseCallback Done);

  /// Future-returning convenience over submitWith().
  std::future<ServiceResponse> submit(ServiceRequest R);

  /// submit() + get().
  ServiceResponse call(ServiceRequest R);

  /// Warms (tenant, source)'s owning shard.
  bool precompile(const std::string &Tenant, const std::string &Source,
                  const PassConfig &Config, EngineKind Engine,
                  std::string *Error = nullptr);

  /// Installs \p Tenant's policy on every shard (a tenant's requests
  /// may route to any shard depending on source).
  void setTenantPolicy(const std::string &Tenant, const TenantPolicy &P);

  /// Sums \p Tenant's counters across shards.
  TenantCounters tenantStats(const std::string &Tenant) const;

  /// Fleet-wide aggregate (accumulate() over every shard).
  ServiceStats stats() const;

  /// Shard \p I's own counters.
  ServiceStats shardStats(size_t I) const { return Shards[I]->stats(); }

  /// Stops every shard. Idempotent; the destructor calls it.
  void stop();

  const FrontEndConfig &config() const { return Config; }

private:
  FrontEndConfig Config;
  std::vector<std::unique_ptr<Service>> Shards;
};

} // namespace perceus

#endif // PERCEUS_NET_SHARDEDSERVICE_H
