//===- bench/bench_heap.cpp - Substrate microbenchmarks -----------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the runtime substrate (google-benchmark):
/// allocator throughput (fresh vs free-list vs reuse-token paths), the
/// recursive drop of a long list, and end-to-end abstract-machine
/// dispatch. These characterize the simulator so the Figure 9 relative
/// numbers can be interpreted (see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "eval/Runner.h"
#include "programs/Programs.h"
#include "runtime/Heap.h"

#include <benchmark/benchmark.h>

using namespace perceus;

namespace {

void BM_AllocFree(benchmark::State &State) {
  Heap H;
  for (auto _ : State) {
    Cell *C = H.alloc(2, 0, CellKind::Ctor);
    C->fields()[0] = Value::makeInt(1);
    C->fields()[1] = Value::unit();
    H.drop(Value::makeRef(C));
  }
}
BENCHMARK(BM_AllocFree);

void BM_AllocChainThenDrop(benchmark::State &State) {
  Heap H;
  const int64_t N = State.range(0);
  for (auto _ : State) {
    // Build a list of N cells, then drop the head (recursive free).
    Value Tail = Value::unit();
    for (int64_t I = 0; I != N; ++I) {
      Cell *C = H.alloc(2, 0, CellKind::Ctor);
      C->fields()[0] = Value::makeInt(I);
      C->fields()[1] = Tail;
      Tail = Value::makeRef(C);
    }
    H.drop(Tail);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_AllocChainThenDrop)->Arg(1024)->Arg(65536);

void BM_MachineMapSum(benchmark::State &State) {
  Runner R(mapSumSource(), PassConfig::perceusFull());
  const int64_t N = State.range(0);
  for (auto _ : State) {
    RunResult Res = R.callInt("bench_mapsum", {N});
    benchmark::DoNotOptimize(Res.Result.Int);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_MachineMapSum)->Arg(1000)->Arg(10000);

void BM_MachineRbtreeInsert(benchmark::State &State) {
  Runner R(rbtreeSource(), PassConfig::perceusFull());
  const int64_t N = State.range(0);
  for (auto _ : State) {
    RunResult Res = R.callInt("bench_rbtree", {N});
    benchmark::DoNotOptimize(Res.Result.Int);
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_MachineRbtreeInsert)->Arg(1000)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
