//===- bench/Common.cpp - Shared benchmark harness helpers ---------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "native/Native.h"

#include <algorithm>
#include <cmath>

using namespace perceus;
using namespace perceus::bench;

std::vector<BenchProgram> perceus::bench::figure9Programs(double Scale) {
  auto scaled = [&](int64_t Base) {
    return std::max<int64_t>(1, static_cast<int64_t>(Base * Scale));
  };
  // nqueens and cfold scale with problem size, not iteration count;
  // bump them by steps instead of multiplying.
  int64_t NQ = 8, CF = 14, DV = 12;
  if (Scale >= 4) {
    NQ = 10;
    CF = 17;
    DV = 18;
  } else if (Scale >= 2) {
    NQ = 9;
    CF = 16;
    DV = 15;
  } else if (Scale < 1) {
    NQ = 6;
    CF = 10;
    DV = 8;
  }
  return {
      {"rbtree", rbtreeSource(), "bench_rbtree", scaled(100000),
       native::rbtree},
      {"rbtree-ck", rbtreeCkSource(), "bench_rbtree_ck", scaled(20000),
       nullptr /* no C++ version, as in the paper */},
      {"deriv", derivSource(), "bench_deriv", DV, native::deriv},
      {"nqueens", nqueensSource(), "bench_nqueens", NQ, native::nqueens},
      {"cfold", cfoldSource(), "bench_cfold", CF, native::cfold},
  };
}

Measurement perceus::bench::measure(const BenchProgram &Prog,
                                    const PassConfig &Config) {
  Measurement M;
  Runner R(Prog.Source, Config);
  if (!R.ok())
    return M;
  auto T0 = std::chrono::steady_clock::now();
  RunResult Res = R.callInt(Prog.Entry, {Prog.BaseScale});
  auto T1 = std::chrono::steady_clock::now();
  if (!Res.Ok)
    return M;
  M.Ran = true;
  M.Seconds = std::chrono::duration<double>(T1 - T0).count();
  M.PeakBytes = R.heap().stats().PeakBytes;
  M.Checksum = Res.Result.Int;
  M.Heap = R.heap().stats();
  M.Run = Res;
  return M;
}

Measurement perceus::bench::measureNative(const BenchProgram &Prog) {
  Measurement M;
  if (!Prog.Native)
    return M;
  auto T0 = std::chrono::steady_clock::now();
  int64_t Result = Prog.Native(Prog.BaseScale);
  auto T1 = std::chrono::steady_clock::now();
  M.Ran = true;
  M.Seconds = std::chrono::duration<double>(T1 - T0).count();
  M.Checksum = Result;
  return M;
}

void perceus::bench::printRelativeTable(
    const char *Title, const char *Unit,
    const std::vector<std::string> &RowNames,
    const std::vector<std::string> &ColNames,
    const std::vector<std::vector<double>> &Values) {
  std::printf("\n%s (relative to %s = 1.00; lower is better; x = not "
              "available; absolute %s in brackets)\n",
              Title, RowNames.empty() ? "?" : RowNames[0].c_str(), Unit);
  std::printf("%-14s", "");
  for (const std::string &C : ColNames)
    std::printf(" %20s", C.c_str());
  std::printf("\n");
  for (size_t R = 0; R != RowNames.size(); ++R) {
    std::printf("%-14s", RowNames[R].c_str());
    for (size_t C = 0; C != ColNames.size(); ++C) {
      double Base = Values[0][C];
      double V = Values[R][C];
      if (V < 0 || Base <= 0) {
        std::printf(" %20s", "x");
        continue;
      }
      char Buf[64];
      if (Unit[0] == 's') // seconds
        std::snprintf(Buf, sizeof(Buf), "%.2f [%.3fs]", V / Base, V);
      else // bytes
        std::snprintf(Buf, sizeof(Buf), "%.2f [%.1fMB]", V / Base,
                      V / 1048576.0);
      std::printf(" %20s", Buf);
    }
    std::printf("\n");
  }
}

double perceus::bench::parseScale(int Argc, char **Argv, double Default) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--scale=", 8) == 0)
      return std::atof(Argv[I] + 8);
  }
  return Default;
}
