//===- bench/Common.cpp - Shared benchmark harness helpers ---------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "eval/StatsJson.h"
#include "native/Native.h"
#include "support/JsonWriter.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace perceus;
using namespace perceus::bench;

std::vector<BenchProgram> perceus::bench::figure9Programs(double Scale) {
  auto scaled = [&](int64_t Base) {
    return std::max<int64_t>(1, static_cast<int64_t>(Base * Scale));
  };
  // nqueens and cfold scale with problem size, not iteration count;
  // bump them by steps instead of multiplying.
  int64_t NQ = 8, CF = 14, DV = 12;
  if (Scale >= 4) {
    NQ = 10;
    CF = 17;
    DV = 18;
  } else if (Scale >= 2) {
    NQ = 9;
    CF = 16;
    DV = 15;
  } else if (Scale < 1) {
    NQ = 6;
    CF = 10;
    DV = 8;
  }
  return {
      {"rbtree", rbtreeSource(), "bench_rbtree", scaled(100000),
       native::rbtree},
      {"rbtree-ck", rbtreeCkSource(), "bench_rbtree_ck", scaled(20000),
       nullptr /* no C++ version, as in the paper */},
      {"deriv", derivSource(), "bench_deriv", DV, native::deriv},
      {"nqueens", nqueensSource(), "bench_nqueens", NQ, native::nqueens},
      {"cfold", cfoldSource(), "bench_cfold", CF, native::cfold},
  };
}

Measurement perceus::bench::measure(const BenchProgram &Prog,
                                    const PassConfig &Config,
                                    const EngineConfig &EC) {
  Measurement M;
  Runner R(Prog.Source, Config, EC);
  if (!R.ok())
    return M;
  auto T0 = std::chrono::steady_clock::now();
  RunResult Res = R.callInt(Prog.Entry, {Prog.BaseScale});
  auto T1 = std::chrono::steady_clock::now();
  if (!Res.Ok)
    return M;
  M.Ran = true;
  M.Seconds = std::chrono::duration<double>(T1 - T0).count();
  M.PeakBytes = R.heap().stats().PeakBytes;
  M.Checksum = Res.Result.Int;
  M.Heap = R.heap().stats();
  M.Run = Res;
  return M;
}

Measurement perceus::bench::measure(const BenchProgram &Prog,
                                    const PassConfig &Config,
                                    StatsSink *Sink) {
  return measure(Prog, Config, EngineConfig{}.withSink(Sink));
}

Measurement perceus::bench::measureNative(const BenchProgram &Prog) {
  Measurement M;
  if (!Prog.Native)
    return M;
  auto T0 = std::chrono::steady_clock::now();
  int64_t Result = Prog.Native(Prog.BaseScale);
  auto T1 = std::chrono::steady_clock::now();
  M.Ran = true;
  M.Seconds = std::chrono::duration<double>(T1 - T0).count();
  M.Checksum = Result;
  return M;
}

void perceus::bench::printRelativeTable(
    const char *Title, const char *Unit,
    const std::vector<std::string> &RowNames,
    const std::vector<std::string> &ColNames,
    const std::vector<std::vector<double>> &Values) {
  std::printf("\n%s (relative to %s = 1.00; lower is better; x = not "
              "available; absolute %s in brackets)\n",
              Title, RowNames.empty() ? "?" : RowNames[0].c_str(), Unit);
  std::printf("%-14s", "");
  for (const std::string &C : ColNames)
    std::printf(" %20s", C.c_str());
  std::printf("\n");
  for (size_t R = 0; R != RowNames.size(); ++R) {
    std::printf("%-14s", RowNames[R].c_str());
    for (size_t C = 0; C != ColNames.size(); ++C) {
      double Base = Values[0][C];
      double V = Values[R][C];
      if (V < 0 || Base <= 0) {
        std::printf(" %20s", "x");
        continue;
      }
      char Buf[64];
      if (Unit[0] == 's') // seconds
        std::snprintf(Buf, sizeof(Buf), "%.2f [%.3fs]", V / Base, V);
      else // bytes
        std::snprintf(Buf, sizeof(Buf), "%.2f [%.1fMB]", V / Base,
                      V / 1048576.0);
      std::printf(" %20s", Buf);
    }
    std::printf("\n");
  }
}

double perceus::bench::parseScale(int Argc, char **Argv, double Default) {
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--scale=", 8) == 0)
      return std::atof(Argv[I] + 8);
  }
  return Default;
}

EngineKind perceus::bench::parseEngine(int Argc, char **Argv,
                                       EngineKind Default) {
  EngineKind K = Default;
  for (int I = 1; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--engine=", 9) == 0 &&
        !parseEngineKind(Argv[I] + 9, K)) {
      std::fprintf(stderr, "bench: unknown engine '%s' (cek or vm)\n",
                   Argv[I] + 9);
      std::exit(2);
    }
  }
  return K;
}

BenchReport::BenchReport(std::string Bench, double Scale)
    : Bench(std::move(Bench)), Scale(Scale) {}

void BenchReport::add(std::string Benchmark, std::string Config,
                      const Measurement &M) {
  Rows.push_back({std::move(Benchmark), std::move(Config), M});
}

std::string BenchReport::json() const {
  JsonWriter W;
  W.beginObject()
      .member("schema", "perceus-bench-v1")
      .member("bench", std::string_view(Bench))
      .member("scale", Scale);
  W.key("results").beginArray();
  for (const Row &R : Rows) {
    W.beginObject()
        .member("benchmark", std::string_view(R.Benchmark))
        .member("config", std::string_view(R.Config))
        .member("ok", R.M.Ran)
        .member("seconds", R.M.Seconds)
        .member("checksum", R.M.Checksum)
        .member("peak_bytes", R.M.PeakBytes);
    W.key("heap");
    writeHeapStatsJson(W, R.M.Heap);
    W.key("run");
    writeRunResultJson(W, R.M.Run);
    if (R.M.Svc.Present) {
      W.key("service")
          .beginObject()
          .member("status", std::string_view(R.M.Svc.Status))
          .member("tenant", std::string_view(R.M.Svc.Tenant))
          .member("executed", R.M.Svc.Executed)
          .member("cache_hit", R.M.Svc.CacheHit)
          .member("worker", R.M.Svc.Worker)
          .member("queue_ms", R.M.Svc.QueueMs)
          .member("run_ms", R.M.Svc.RunMs)
          .member("retry_after_ms", R.M.Svc.RetryAfterMs)
          .member("retained_bytes", R.M.Svc.RetainedBytes)
          .member("heap_empty", R.M.Svc.HeapEmpty)
          .endObject();
    }
    if (R.M.Shard.Present) {
      W.key("shard")
          .beginObject()
          .member("shard", R.M.Shard.Shard)
          .member("requests", R.M.Shard.Requests)
          .member("executed", R.M.Shard.Executed)
          .member("cache_hits", R.M.Shard.CacheHits)
          .member("cache_compiles", R.M.Shard.CacheCompiles)
          .member("cache_evictions", R.M.Shard.CacheEvictions)
          .member("sheds", R.M.Shard.Sheds)
          .member("qps", R.M.Shard.Qps)
          .endObject();
    }
    if (R.M.Ov.Present) {
      W.key("overload")
          .beginObject()
          .member("tenant", std::string_view(R.M.Ov.Tenant))
          .member("abusive", R.M.Ov.Abusive)
          .member("requests", R.M.Ov.Requests)
          .member("executed", R.M.Ov.Executed)
          .member("shed", R.M.Ov.Shed)
          .member("rejected_rate_limited", R.M.Ov.RejectedRateLimited)
          .member("rejected_tenant_quota", R.M.Ov.RejectedTenantQuota)
          .member("rejected_queue_full", R.M.Ov.RejectedQueueFull)
          .member("rejected_circuit_open", R.M.Ov.RejectedCircuitOpen)
          .member("shed_rate", R.M.Ov.ShedRate)
          .member("p50_ms", R.M.Ov.P50Ms)
          .member("p99_ms", R.M.Ov.P99Ms)
          .member("mean_ms", R.M.Ov.MeanMs)
          .member("retained_peak_bytes", R.M.Ov.RetainedPeakBytes)
          .endObject();
    }
    W.endObject();
  }
  W.endArray().endObject();
  return W.take();
}

std::string BenchReport::defaultPath(const std::string &Bench) {
#ifdef PERCEUS_REPO_ROOT
  return std::string(PERCEUS_REPO_ROOT) + "/BENCH_" + Bench + ".json";
#else
  return "BENCH_" + Bench + ".json";
#endif
}

bool BenchReport::write(const std::string &Path) const {
  std::string Out = Path.empty() ? defaultPath(Bench) : Path;
  std::string Text = json();
  std::FILE *F = std::fopen(Out.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "bench: cannot write '%s'\n", Out.c_str());
    return false;
  }
  std::fwrite(Text.data(), 1, Text.size(), F);
  std::fputc('\n', F);
  std::fclose(F);
  std::printf("\nwrote %s\n", Out.c_str());
  return true;
}

std::string perceus::bench::parseJsonPath(const char *Bench, int Argc,
                                          char **Argv) {
  std::string Path = BenchReport::defaultPath(Bench);
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--no-json") == 0)
      return std::string();
    if (std::strncmp(Argv[I], "--json=", 7) == 0)
      Path = Argv[I] + 7;
  }
  return Path;
}

namespace {

/// Checks that \p Obj has a member \p Key of kind \p K; appends to Err.
bool requireKey(const JsonValue &Obj, const char *Key, JsonValue::Kind K,
                const char *Where, std::string &Err) {
  if (Obj.find(Key, K))
    return true;
  Err = std::string("missing or mistyped '") + Key + "' in " + Where;
  return false;
}

/// The closed set of trap names both schemas may carry; a typo'd or
/// unknown kind must be diagnosed, not silently accepted downstream.
bool knownTrapName(std::string_view Name) {
  for (const char *K : {"ok", "out-of-memory", "out-of-fuel",
                        "stack-overflow", "runtime-error", "deadline"})
    if (Name == K)
      return true;
  return false;
}

/// The closed set of admission outcomes a 'service' object may report —
/// the rejectKindName() vocabulary. Extending RejectKind requires
/// extending this list (and telemetry_test pins both directions).
bool knownServiceStatus(std::string_view Name) {
  for (const char *K : {"ok", "queue-full", "shedding", "compile-error",
                        "rate-limited", "tenant-quota", "circuit-open",
                        "bad-request"})
    if (Name == K)
      return true;
  return false;
}

} // namespace

std::string perceus::bench::validateBenchJson(std::string_view Text) {
  std::string Err;
  std::optional<JsonValue> Doc = parseJson(Text, &Err);
  if (!Doc)
    return "parse error: " + Err;
  using K = JsonValue::Kind;
  if (!Doc->isObject())
    return "top level is not an object";
  const JsonValue *Schema = Doc->find("schema", K::String);
  if (!Schema || Schema->Str != "perceus-bench-v1")
    return "missing or unknown 'schema' (want perceus-bench-v1)";
  if (!requireKey(*Doc, "bench", K::String, "document", Err) ||
      !requireKey(*Doc, "scale", K::Number, "document", Err))
    return Err;
  const JsonValue *Results = Doc->find("results", K::Array);
  if (!Results)
    return "missing or mistyped 'results'";
  if (Results->Items.empty())
    return "'results' is empty";
  static const char *HeapKeys[] = {
      "allocs",          "frees",         "dup_ops",
      "drop_ops",        "decref_ops",    "non_heap_rc_ops",
      "atomic_rc_ops",   "coalesced_rc_ops", "is_unique_tests",
      "live_bytes",      "peak_bytes",    "live_cells"};
  static const char *RunKeys[] = {"steps",      "reuse_hits",
                                  "reuse_misses", "tail_calls",
                                  "max_stack_depth", "max_call_depth",
                                  "max_locals_slots", "unwound_cells"};
  static const char *RcKeys[] = {"dups",       "drops",         "frees",
                                 "decrefs",    "is_uniques",
                                 "drop_reuses", "implicit_dups",
                                 "implicit_drops", "implicit_decrefs"};
  for (const JsonValue &R : Results->Items) {
    if (!R.isObject())
      return "result row is not an object";
    if (!requireKey(R, "benchmark", K::String, "result", Err) ||
        !requireKey(R, "config", K::String, "result", Err) ||
        !requireKey(R, "ok", K::Bool, "result", Err) ||
        !requireKey(R, "seconds", K::Number, "result", Err) ||
        !requireKey(R, "checksum", K::Number, "result", Err) ||
        !requireKey(R, "peak_bytes", K::Number, "result", Err))
      return Err;
    const JsonValue *Heap = R.find("heap", K::Object);
    if (!Heap)
      return "missing or mistyped 'heap' in result";
    for (const char *Key : HeapKeys)
      if (!requireKey(*Heap, Key, K::Number, "heap", Err))
        return Err;
    const JsonValue *Run = R.find("run", K::Object);
    if (!Run)
      return "missing or mistyped 'run' in result";
    if (!requireKey(*Run, "ok", K::Bool, "run", Err) ||
        !requireKey(*Run, "trap", K::String, "run", Err))
      return Err;
    if (!knownTrapName(Run->find("trap", K::String)->Str))
      return "unknown trap kind '" + Run->find("trap", K::String)->Str +
             "' in run";
    // Service-mode rows (bench_service) carry an optional admission /
    // latency object; when present its shape is pinned too.
    if (const JsonValue *Svc = R.find("service", K::Object)) {
      if (!requireKey(*Svc, "status", K::String, "service", Err) ||
          !requireKey(*Svc, "executed", K::Bool, "service", Err) ||
          !requireKey(*Svc, "cache_hit", K::Bool, "service", Err) ||
          !requireKey(*Svc, "worker", K::Number, "service", Err) ||
          !requireKey(*Svc, "queue_ms", K::Number, "service", Err) ||
          !requireKey(*Svc, "run_ms", K::Number, "service", Err) ||
          !requireKey(*Svc, "retained_bytes", K::Number, "service", Err) ||
          !requireKey(*Svc, "heap_empty", K::Bool, "service", Err))
        return Err;
      if (!knownServiceStatus(Svc->find("status", K::String)->Str))
        return "unknown service status '" +
               Svc->find("status", K::String)->Str + "'";
      // Multi-tenant fields: optional for back-compat with pre-tenancy
      // documents, type-pinned when present.
      if (Svc->find("tenant") && !Svc->find("tenant", K::String))
        return "mistyped 'tenant' in service";
      if (Svc->find("retry_after_ms") &&
          !Svc->find("retry_after_ms", K::Number))
        return "mistyped 'retry_after_ms' in service";
    }
    // Sharded-front-end rows (bench_net) carry one per-shard isolation
    // object each; when present its shape is pinned too.
    if (const JsonValue *Sh = R.find("shard", K::Object)) {
      if (!requireKey(*Sh, "shard", K::Number, "shard", Err) ||
          !requireKey(*Sh, "requests", K::Number, "shard", Err) ||
          !requireKey(*Sh, "executed", K::Number, "shard", Err) ||
          !requireKey(*Sh, "cache_hits", K::Number, "shard", Err) ||
          !requireKey(*Sh, "cache_compiles", K::Number, "shard", Err) ||
          !requireKey(*Sh, "cache_evictions", K::Number, "shard", Err) ||
          !requireKey(*Sh, "sheds", K::Number, "shard", Err) ||
          !requireKey(*Sh, "qps", K::Number, "shard", Err))
        return Err;
    }
    // Overload-mix rows (bench_overload) carry per-tenant open-loop
    // latency/shedding telemetry; when present its shape is pinned too.
    if (const JsonValue *Ov = R.find("overload", K::Object)) {
      if (!requireKey(*Ov, "tenant", K::String, "overload", Err) ||
          !requireKey(*Ov, "abusive", K::Bool, "overload", Err) ||
          !requireKey(*Ov, "requests", K::Number, "overload", Err) ||
          !requireKey(*Ov, "executed", K::Number, "overload", Err) ||
          !requireKey(*Ov, "shed", K::Number, "overload", Err) ||
          !requireKey(*Ov, "rejected_rate_limited", K::Number, "overload",
                      Err) ||
          !requireKey(*Ov, "rejected_tenant_quota", K::Number, "overload",
                      Err) ||
          !requireKey(*Ov, "rejected_queue_full", K::Number, "overload",
                      Err) ||
          !requireKey(*Ov, "rejected_circuit_open", K::Number, "overload",
                      Err) ||
          !requireKey(*Ov, "shed_rate", K::Number, "overload", Err) ||
          !requireKey(*Ov, "p50_ms", K::Number, "overload", Err) ||
          !requireKey(*Ov, "p99_ms", K::Number, "overload", Err) ||
          !requireKey(*Ov, "mean_ms", K::Number, "overload", Err) ||
          !requireKey(*Ov, "retained_peak_bytes", K::Number, "overload",
                      Err))
        return Err;
    }
    for (const char *Key : RunKeys)
      if (!requireKey(*Run, Key, K::Number, "run", Err))
        return Err;
    const JsonValue *Rc = Run->find("rc_instrs", K::Object);
    if (!Rc)
      return "missing or mistyped 'rc_instrs' in run";
    for (const char *Key : RcKeys)
      if (!requireKey(*Rc, Key, K::Number, "rc_instrs", Err))
        return Err;
  }
  return std::string();
}
