//===- bench/bench_governor.cpp - Resource governor overhead ------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the happy-path cost of the resource governor: the same
/// allocate/drop loops and end-to-end machine runs with the governor
/// disarmed (no limits, the default) versus armed with limits far too
/// large to ever fire. The acceptance bar is that the armed column is
/// within noise of the disarmed one — the governor is a single
/// predicted-false branch on the allocation path.
///
//===----------------------------------------------------------------------===//

#include "Common.h"
#include "eval/Runner.h"
#include "programs/Programs.h"
#include "runtime/Heap.h"
#include "support/FaultInjector.h"

#include <benchmark/benchmark.h>

using namespace perceus;

namespace {

HeapLimits hugeLimits() {
  HeapLimits L;
  L.MaxLiveBytes = size_t(1) << 40;
  L.MaxLiveCells = uint64_t(1) << 40;
  L.AllocBudget = uint64_t(1) << 60;
  return L;
}

void allocDropLoop(benchmark::State &State, Heap &H) {
  for (auto _ : State) {
    Cell *C = H.alloc(2, 0, CellKind::Ctor);
    C->fields()[0] = Value::makeInt(1);
    C->fields()[1] = Value::unit();
    H.drop(Value::makeRef(C));
  }
}

void BM_AllocFree_Disarmed(benchmark::State &State) {
  Heap H;
  allocDropLoop(State, H);
}
BENCHMARK(BM_AllocFree_Disarmed);

void BM_AllocFree_ArmedLimits(benchmark::State &State) {
  Heap H;
  H.setLimits(hugeLimits());
  allocDropLoop(State, H);
}
BENCHMARK(BM_AllocFree_ArmedLimits);

void BM_AllocFree_ArmedInjector(benchmark::State &State) {
  // A fault injector that never fires (fail attempt 2^62).
  Heap H;
  FaultInjector FI = FaultInjector::failNth(uint64_t(1) << 62);
  H.setFaultInjector(&FI);
  allocDropLoop(State, H);
  H.setFaultInjector(nullptr);
}
BENCHMARK(BM_AllocFree_ArmedInjector);

void machineRun(benchmark::State &State, bool Armed) {
  Runner R(mapSumSource(), PassConfig::perceusFull());
  if (Armed) {
    RunLimits L;
    L.Heap = hugeLimits();
    L.Fuel = uint64_t(1) << 60;
    L.MaxCallDepth = uint64_t(1) << 40;
    R.setLimits(L);
  }
  const int64_t N = State.range(0);
  for (auto _ : State) {
    RunResult Res = R.callInt("bench_mapsum", {N});
    benchmark::DoNotOptimize(Res.Result.Int);
  }
  State.SetItemsProcessed(State.iterations() * N);
}

void BM_MachineMapSum_Disarmed(benchmark::State &State) {
  machineRun(State, false);
}
BENCHMARK(BM_MachineMapSum_Disarmed)->Arg(10000);

void BM_MachineMapSum_Armed(benchmark::State &State) {
  machineRun(State, true);
}
BENCHMARK(BM_MachineMapSum_Armed)->Arg(10000);

/// One timed end-to-end mapsum run for the JSON report; \p Armed turns
/// on never-firing limits (the configuration BM_MachineMapSum_Armed
/// times via google-benchmark).
bench::Measurement measureMapSum(bool Armed) {
  bench::Measurement M;
  Runner R(mapSumSource(), PassConfig::perceusFull());
  if (!R.ok())
    return M;
  if (Armed) {
    RunLimits L;
    L.Heap = hugeLimits();
    L.Fuel = uint64_t(1) << 60;
    L.MaxCallDepth = uint64_t(1) << 40;
    R.setLimits(L);
  }
  auto T0 = std::chrono::steady_clock::now();
  RunResult Res = R.callInt("bench_mapsum", {10000});
  auto T1 = std::chrono::steady_clock::now();
  if (!Res.Ok)
    return M;
  M.Ran = true;
  M.Seconds = std::chrono::duration<double>(T1 - T0).count();
  M.PeakBytes = R.heap().stats().PeakBytes;
  M.Checksum = Res.Result.Int;
  M.Heap = R.heap().stats();
  M.Run = Res;
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = bench::parseJsonPath("governor", Argc, Argv);
  // benchmark::Initialize aborts on flags it does not know; strip ours.
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--json=", 7) != 0 &&
        std::strcmp(Argv[I], "--no-json") != 0)
      Args.push_back(Argv[I]);
  int BenchArgc = int(Args.size());
  benchmark::Initialize(&BenchArgc, Args.data());
  if (benchmark::ReportUnrecognizedArguments(BenchArgc, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  if (JsonPath.empty())
    return 0;
  bench::BenchReport Report("governor", 1.0);
  Report.add("mapsum", "disarmed", measureMapSum(false));
  Report.add("mapsum", "armed", measureMapSum(true));
  return Report.write(JsonPath) ? 0 : 1;
}
