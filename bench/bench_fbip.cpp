//===- bench/bench_fbip.cpp - Section 2.6: functional but in-place ------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the FBIP claims of Section 2.6 (Figures 2 and 3): the
/// visitor-based tree map is purely functional yet, on a unique tree,
/// runs with zero fresh allocations in the steady state (every matched
/// cell pairs with a same-size allocation) and — unlike the naive
/// recursive map — in constant stack space, like Morris's in-place
/// traversal. We compare:
///
///   tmap-fbip    Figure 3, under the full Perceus pipeline
///   tmap-naive   plain recursion (also reuses, but stack ~ depth)
///   morris (C++) Figure 2, the native mutating algorithm
///   recursive (C++) native recursion baseline
///
/// Usage: bench_fbip [--depth=D] [--json=PATH | --no-json]
///
//===----------------------------------------------------------------------===//

#include "Common.h"
#include "native/Native.h"

using namespace perceus;
using namespace perceus::bench;

int main(int Argc, char **Argv) {
  int64_t Depth = 16;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--depth=", 8) == 0)
      Depth = std::atoll(Argv[I] + 8);
  std::string JsonPath = parseJsonPath("fbip", Argc, Argv);
  BenchReport Report("fbip", double(Depth));

  std::printf("FBIP tree traversal, perfect tree of depth %lld "
              "(%lld nodes)\n",
              (long long)Depth, (long long)((1ll << Depth) - 1));
  std::printf("  %-22s %10s %12s %12s %14s %10s\n", "variant", "time",
              "allocs", "reuse-hits", "net-allocs*", "stack");
  std::printf("  (*allocations after the initial tree build; 0 = fully "
              "in-place)\n");

  int64_t TreeNodes = (1ll << Depth) - 1;
  int64_t Expected = native::tmapMorris(Depth);

  for (const char *Entry : {"bench_tmap_fbip", "bench_tmap_naive"}) {
    BenchProgram Prog{Entry, tmapSource(), Entry, Depth, nullptr};
    Measurement M = measure(Prog, PassConfig::perceusFull());
    Report.add(Entry, "perceus", M);
    if (!M.Ran) {
      std::printf("  %-22s failed\n", Entry);
      continue;
    }
    if (M.Checksum != Expected)
      std::printf("  WARNING: %s checksum %lld != native %lld\n", Entry,
                  (long long)M.Checksum, (long long)Expected);
    int64_t NetAllocs = int64_t(M.Heap.Allocs) - TreeNodes;
    std::printf("  %-22s %9.3fs %12llu %12llu %14lld %10llu\n", Entry,
                M.Seconds, (unsigned long long)M.Heap.Allocs,
                (unsigned long long)M.Run.ReuseHits, (long long)NetAllocs,
                (unsigned long long)M.Run.MaxLocalsSlots);
  }

  {
    auto T0 = std::chrono::steady_clock::now();
    int64_t R = native::tmapMorris(Depth);
    auto Dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    std::printf("  %-22s %9.3fs %12s %12s %14s %10s   (checksum %lld)\n",
                "morris (native C++)", Dt, "-", "-", "0", "O(1)",
                (long long)R);
    Measurement M;
    M.Ran = true;
    M.Seconds = Dt;
    M.Checksum = R;
    Report.add("tmap_morris", "native-c++", M);
  }
  {
    auto T0 = std::chrono::steady_clock::now();
    int64_t R = native::tmapRecursive(Depth);
    auto Dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
            .count();
    std::printf("  %-22s %9.3fs %12s %12s %14s %10s   (checksum %lld)\n",
                "recursive (native C++)", Dt, "-", "-", "0", "O(depth)",
                (long long)R);
    Measurement M;
    M.Ran = true;
    M.Seconds = Dt;
    M.Checksum = R;
    Report.add("tmap_recursive", "native-c++", M);
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
