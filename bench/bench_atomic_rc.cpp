//===- bench/bench_atomic_rc.cpp - Section 2.7.2: atomic RC costs -------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the concurrency story of Section 2.7.2 as google-benchmark
/// microbenchmarks: dup/drop on thread-local cells use the plain
/// fast path; marking an object thread-shared (the paper's `tshare`)
/// flips its count negative and all further operations take the atomic
/// slow path, through the single fused `rc <= 1` test. Ungar et al.
/// report up to 50% slowdown when every operation must be atomic — the
/// Local/Shared ratio below is our measurement of that gap, and the
/// Mixed benchmark shows why the static thread-sharing information
/// matters.
///
//===----------------------------------------------------------------------===//

#include "runtime/Heap.h"

#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

using namespace perceus;

namespace {

void BM_DupDropLocal(benchmark::State &State) {
  Heap H;
  Cell *C = H.alloc(2, 0, CellKind::Ctor);
  C->fields()[0] = Value::unit();
  C->fields()[1] = Value::unit();
  Value V = Value::makeRef(C);
  for (auto _ : State) {
    H.dup(V);
    H.drop(V);
  }
  benchmark::DoNotOptimize(C);
  H.drop(V);
}
BENCHMARK(BM_DupDropLocal);

void BM_DupDropShared(benchmark::State &State) {
  Heap H;
  Cell *C = H.alloc(2, 0, CellKind::Ctor);
  C->fields()[0] = Value::unit();
  C->fields()[1] = Value::unit();
  Value V = Value::makeRef(C);
  H.markShared(V); // the paper's tshare: all further RC ops are atomic
  for (auto _ : State) {
    H.dup(V);
    H.drop(V);
  }
  benchmark::DoNotOptimize(C);
}
BENCHMARK(BM_DupDropShared);

/// The realistic mixture the paper argues for: most objects stay
/// thread-local; only the explicitly shared ones pay for atomics.
void BM_DupDropMixed(benchmark::State &State) {
  Heap H;
  constexpr int N = 64;
  std::vector<Value> Vals;
  for (int I = 0; I != N; ++I) {
    Cell *C = H.alloc(1, 0, CellKind::Ctor);
    C->fields()[0] = Value::unit();
    Value V = Value::makeRef(C);
    if (I % 16 == 0) // 1 in 16 objects is thread-shared
      H.markShared(V);
    Vals.push_back(V);
  }
  size_t I = 0;
  for (auto _ : State) {
    Value V = Vals[I++ % N];
    H.dup(V);
    H.drop(V);
  }
}
BENCHMARK(BM_DupDropMixed);

/// Contended atomic counting from several threads — the case unrestricted
/// multithreading (Swift) must assume everywhere.
void BM_SharedContended(benchmark::State &State) {
  static Heap H;
  // Thread-safe one-time setup (all benchmark threads enter here).
  static Cell *C = [] {
    Cell *New = H.alloc(1, 0, CellKind::Ctor);
    New->fields()[0] = Value::unit();
    H.markShared(Value::makeRef(New));
    return New;
  }();
  Value V = Value::makeRef(C);
  for (auto _ : State) {
    H.dup(V);
    H.drop(V);
  }
}
// Fixed iteration count: google-benchmark's auto-timing converges very
// slowly for multi-threaded runs on a single hardware core.
BENCHMARK(BM_SharedContended)->Threads(2)->UseRealTime()->Iterations(1 << 21);

/// The sticky count: saturated objects skip all updates entirely.
void BM_DupDropSticky(benchmark::State &State) {
  Heap H;
  Cell *C = H.alloc(1, 0, CellKind::Ctor);
  C->fields()[0] = Value::unit();
  C->H.Rc.store(INT32_MIN, std::memory_order_relaxed); // sticky
  Value V = Value::makeRef(C);
  for (auto _ : State) {
    H.dup(V);
    H.drop(V);
  }
}
BENCHMARK(BM_DupDropSticky);

} // namespace

BENCHMARK_MAIN();
