//===- bench/bench_parallel.cpp - Worker-pool scaling curve --------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scaling curve for the parallel execution layer (src/parallel): runs
/// 1/2/4/8 concurrent machine instances on three embarrassingly-parallel
/// Section 4 programs (rbtree, deriv, nqueens — private heaps, zero
/// cross-thread RC traffic) plus the contended shared-tree traversal,
/// where every worker hammers one tshare'd input and all RC updates on
/// it are atomic (Section 2.7.2).
///
/// Reported per cell: wall-clock seconds for N workers each executing
/// the *same* workload once. Perfect scaling keeps the wall clock flat
/// as workers grow, i.e. aggregate throughput (runs/second) grows
/// linearly — expect ~N× up to the host's core count and flat beyond it
/// (a single-core host shows ~1× everywhere, honestly).
///
///   bench_parallel [--scale=X] [--engine=cek|vm] [--json=PATH | --no-json]
///
/// Writes BENCH_parallel.json ("perceus-bench-v1"; config = workers=N).
///
//===----------------------------------------------------------------------===//

#include "Common.h"
#include "parallel/ParallelRunner.h"

#include <cstdio>
#include <thread>

using namespace perceus;
using namespace perceus::bench;

namespace {

struct ParallelWorkload {
  const char *Name;
  const char *Source;
  const char *Entry;
  int64_t Arg;             ///< entry argument (scaled)
  const char *Builder;     ///< shared-input builder, or null
  int64_t BuilderArg;      ///< builder argument (unscaled: tree shape)
};

/// True when two workers' heap statistics differ on any counter that the
/// workload determines. Every worker runs identical code on an identical
/// input, so the RC-operation classification and allocation counts must
/// match exactly, worker to worker and worker-count to worker-count.
/// Race-dependent counters are excluded: which worker frees a parked
/// shared cell, and how shared-count updates batch into atomic RMWs
/// (AtomicRcOps/CoalescedRcOps), legitimately vary with scheduling.
bool statsDiverge(const HeapStats &A, const HeapStats &B) {
  return A.Allocs != B.Allocs || A.DupOps != B.DupOps ||
         A.DropOps != B.DropOps || A.DecRefOps != B.DecRefOps ||
         A.IsUniqueTests != B.IsUniqueTests ||
         A.NonHeapRcOps != B.NonHeapRcOps;
}

/// Runs one workload cell. With \p CaptureBaseline set (the workers=1
/// run), records the single worker's stats as the workload's baseline;
/// with \p Baseline set (every other run), refuses — returns a
/// not-ran Measurement — if any worker's stats diverge from it: a
/// speedup over differently-counted work would be meaningless.
Measurement runOnce(ParallelRunner &PR, const ParallelWorkload &W,
                    unsigned Workers, EngineKind Engine,
                    const HeapStats *Baseline, HeapStats *CaptureBaseline) {
  EngineConfig EC;
  EC.Engine = Engine;
  EC.Workers = Workers;
  if (W.Builder) {
    EC.SharedBuilder = W.Builder;
    EC.SharedArgs = {Value::makeInt(W.BuilderArg)};
  }
  ParallelOutcome Out = PR.run(EC, W.Entry, {Value::makeInt(W.Arg)});
  Measurement M;
  if (!Out.Ok || !Out.AllHeapsEmpty) {
    if (!Out.Error.empty())
      std::fprintf(stderr, "%s: %s\n", W.Name, Out.Error.c_str());
    return M;
  }
  // Workers run identical code on identical inputs: one checksum.
  for (const WorkerOutcome &WO : Out.Workers)
    if (WO.Run.Result.Int != Out.Workers[0].Run.Result.Int) {
      std::fprintf(stderr, "%s: checksum mismatch across workers\n",
                   W.Name);
      return M;
    }
  if (Baseline)
    for (size_t I = 0; I != Out.Workers.size(); ++I)
      if (statsDiverge(Out.Workers[I].Heap, *Baseline)) {
        std::fprintf(stderr,
                     "%s: workers=%u worker %zu stats diverge from the "
                     "1-worker run — refusing to report a speedup\n",
                     W.Name, Workers, I);
        return M;
      }
  if (CaptureBaseline)
    *CaptureBaseline = Out.Workers[0].Heap;
  M.Ran = true;
  M.Seconds = Out.Seconds;
  M.Checksum = Out.Workers[0].Run.Result.Int;
  M.Heap = Out.Combined;
  accumulate(M.Heap, Out.Shared);
  M.PeakBytes = M.Heap.PeakBytes;
  M.Run = Out.Workers[0].Run;
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  std::string JsonPath = parseJsonPath("parallel", Argc, Argv);
  EngineKind Engine = parseEngine(Argc, Argv);
  const unsigned WorkerCounts[] = {1, 2, 4, 8};

  const ParallelWorkload Workloads[] = {
      {"rbtree", rbtreeSource(), "bench_rbtree",
       int64_t(42000 * Scale), nullptr, 0},
      {"deriv", derivSource(), "bench_deriv", int64_t(8 * Scale),
       nullptr, 0},
      {"nqueens", nqueensSource(), "bench_nqueens", int64_t(8 + Scale),
       nullptr, 0},
      {"shared-tree", sharedTreeSource(), "bench_shared_sum",
       int64_t(400 * Scale), "build_tree", 10},
  };

  std::printf("Parallel scaling (workers x same workload; wall seconds; "
              "host has %u hardware threads)\n\n",
              std::thread::hardware_concurrency());

  BenchReport Report("parallel", Scale);
  std::vector<std::string> RowNames, ColNames;
  std::vector<std::vector<double>> Seconds;
  for (unsigned N : WorkerCounts)
    RowNames.push_back("workers=" + std::to_string(N));

  // One compile per workload, reused across every worker count — the
  // Program and layout are read-only at run time by design.
  std::vector<std::vector<Measurement>> Cells(std::size(WorkerCounts));
  for (const ParallelWorkload &W : Workloads) {
    ParallelRunner PR(W.Source, PassConfig::perceusFull());
    if (!PR.ok()) {
      std::fprintf(stderr, "%s failed to compile:\n%s", W.Name,
                   PR.diagnostics().str().c_str());
      return 1;
    }
    ColNames.push_back(W.Name);
    HeapStats Baseline;
    for (size_t R = 0; R != std::size(WorkerCounts); ++R) {
      bool First = R == 0;
      Measurement M =
          runOnce(PR, W, WorkerCounts[R], Engine,
                  First ? nullptr : &Baseline, First ? &Baseline : nullptr);
      if (!M.Ran)
        return 1;
      Report.add(W.Name, RowNames[R], M);
      Cells[R].push_back(M);
    }
  }

  for (size_t R = 0; R != std::size(WorkerCounts); ++R) {
    Seconds.emplace_back();
    for (const Measurement &M : Cells[R])
      Seconds.back().push_back(M.Seconds);
  }
  printRelativeTable("wall clock vs 1 worker (1.0 = perfect scaling)",
                     "s", RowNames, ColNames, Seconds);

  std::printf("\nAggregate throughput speedup (runs/second vs 1 worker; "
              "ideal = worker count):\n");
  for (size_t R = 1; R != std::size(WorkerCounts); ++R) {
    std::printf("  workers=%u:", WorkerCounts[R]);
    for (size_t C = 0; C != ColNames.size(); ++C) {
      double Speedup = (WorkerCounts[R] * Cells[0][C].Seconds) /
                       Cells[R][C].Seconds;
      std::printf("  %s=%.2fx", ColNames[C].c_str(), Speedup);
    }
    std::printf("\n");
  }

  // The report must satisfy the same schema CI validates for every
  // other harness; checking in-process keeps the failure local.
  std::string SchemaErr = validateBenchJson(Report.json());
  if (!SchemaErr.empty()) {
    std::fprintf(stderr, "BENCH_parallel.json schema violation: %s\n",
                 SchemaErr.c_str());
    return 1;
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
