//===- bench/bench_vm.cpp - CEK vs bytecode VM speedup -------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Head-to-head of the two execution engines on the Figure 9 benchmark
/// set under the full Perceus configuration: the tree-walking CEK
/// machine vs the flat register-based bytecode VM. Both engines run the
/// same instrumented IR against the same heap, so the only variable is
/// dispatch — the table isolates what flattening the tree walk buys.
///
/// Beyond time, every row cross-checks the observable-equivalence
/// contract: checksums, allocs/frees, dup/drop, and reuse hits must be
/// bit-identical across engines (steps are engine-specific and exempt).
/// A mismatch fails the run — this harness doubles as a smoke test.
///
///   bench_vm [--scale=X] [--reps=N] [--json=PATH | --no-json]
///
/// Writes BENCH_vm.json ("perceus-bench-v1"; config = cek | vm-nopeep |
/// vm) and prints the per-benchmark speedup plus the geometric mean —
/// the vm-nopeep rows isolate the superinstruction/RC-elision tier from
/// the flattening itself.
///
//===----------------------------------------------------------------------===//

#include "Common.h"

#include <cmath>

using namespace perceus;
using namespace perceus::bench;

namespace {

uint64_t parseReps(int Argc, char **Argv, uint64_t Default) {
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--reps=", 7) == 0)
      return std::max(1l, std::atol(Argv[I] + 7));
  return Default;
}

/// Best-of-N wall clock; the stats come from the last rep (they are
/// identical across reps by determinism).
Measurement measureBest(const BenchProgram &Prog, const EngineConfig &EC,
                        uint64_t Reps) {
  Measurement Best;
  for (uint64_t I = 0; I != Reps; ++I) {
    Measurement M = measure(Prog, PassConfig::perceusFull(), EC);
    if (!M.Ran)
      return M;
    if (!Best.Ran || M.Seconds < Best.Seconds)
      Best = M;
  }
  return Best;
}

bool statsMatch(const BenchProgram &P, const Measurement &A,
                const Measurement &B) {
  auto check = [&](const char *What, uint64_t X, uint64_t Y) {
    if (X == Y)
      return true;
    std::fprintf(stderr, "%s: %s diverge across engines: cek=%llu vm=%llu\n",
                 P.Name, What, (unsigned long long)X, (unsigned long long)Y);
    return false;
  };
  bool Ok = check("checksums", A.Checksum, B.Checksum);
  Ok &= check("allocs", A.Heap.Allocs, B.Heap.Allocs);
  Ok &= check("frees", A.Heap.Frees, B.Heap.Frees);
  Ok &= check("dups", A.Heap.DupOps, B.Heap.DupOps);
  Ok &= check("drops", A.Heap.DropOps, B.Heap.DropOps);
  Ok &= check("reuse hits", A.Run.ReuseHits, B.Run.ReuseHits);
  Ok &= check("peak bytes", A.PeakBytes, B.PeakBytes);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  uint64_t Reps = parseReps(Argc, Argv, 3);
  std::string JsonPath = parseJsonPath("vm", Argc, Argv);
  std::vector<BenchProgram> Programs = figure9Programs(Scale);
  BenchReport Report("vm", Scale);

  std::printf("Engine comparison: CEK tree-walker vs bytecode VM "
              "(perceus config, --scale=%.2f, best of %llu)\n\n",
              Scale, (unsigned long long)Reps);
  std::printf("%-12s %12s %12s %12s %10s %10s\n", "benchmark", "cek [s]",
              "vm-raw [s]", "vm [s]", "vs cek", "vs raw");

  double LogSum = 0, RawLogSum = 0;
  size_t N = 0;
  bool Parity = true;
  for (const BenchProgram &P : Programs) {
    Measurement Cek =
        measureBest(P, EngineConfig{}.withEngine(EngineKind::Cek), Reps);
    // The raw VM row pins what the peephole tier itself buys, holding
    // everything else (compiler, heap, dispatch loop) constant.
    Measurement Raw = measureBest(
        P, EngineConfig{}.withEngine(EngineKind::Vm).withPeephole(false),
        Reps);
    Measurement Vm =
        measureBest(P, EngineConfig{}.withEngine(EngineKind::Vm), Reps);
    if (!Cek.Ran || !Raw.Ran || !Vm.Ran) {
      std::fprintf(stderr, "%s failed to run\n", P.Name);
      return 1;
    }
    Parity = statsMatch(P, Cek, Vm) && Parity;
    Parity = statsMatch(P, Cek, Raw) && Parity;
    Report.add(P.Name, "cek", Cek);
    Report.add(P.Name, "vm-nopeep", Raw);
    Report.add(P.Name, "vm", Vm);
    double Speedup = Cek.Seconds / Vm.Seconds;
    double RawSpeedup = Raw.Seconds / Vm.Seconds;
    LogSum += std::log(Speedup);
    RawLogSum += std::log(RawSpeedup);
    ++N;
    std::printf("%-12s %12.4f %12.4f %12.4f %9.2fx %9.2fx\n", P.Name,
                Cek.Seconds, Raw.Seconds, Vm.Seconds, Speedup, RawSpeedup);
  }
  double Geomean = std::exp(LogSum / double(N));
  double RawGeomean = std::exp(RawLogSum / double(N));
  std::printf("%-12s %12s %12s %12s %9.2fx %9.2fx  (geomean)\n", "", "", "",
              "", Geomean, RawGeomean);

  if (!Parity) {
    std::fprintf(stderr, "\nengine parity violated — see above\n");
    return 1;
  }

  // The report must satisfy the same schema CI validates for every
  // other harness; checking in-process keeps the failure local.
  std::string SchemaErr = validateBenchJson(Report.json());
  if (!SchemaErr.empty()) {
    std::fprintf(stderr, "BENCH_vm.json schema violation: %s\n",
                 SchemaErr.c_str());
    return 1;
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
