//===- bench/bench_reuse.cpp - Section 2.5: reuse on unique vs shared data ----===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's reuse claims (Sections 2.4-2.5): on a unique
/// red-black tree, "every Node is reused in the fast path without doing
/// any allocations" — insertion becomes an in-place rebalancing
/// algorithm; when the tree is used persistently (rbtree-ck retains
/// every 5th tree), the algorithm "adapts to copying exactly the shared
/// spine". We report the reuse hit rate and the fresh-allocation rate
/// per insert for both workloads, plus the ablation with reuse disabled.
///
/// Usage: bench_reuse [--scale=X] [--json=PATH | --no-json]
///
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace perceus;
using namespace perceus::bench;

namespace {

BenchReport *Report;

void report(const char *Label, const char *ConfigName,
            const BenchProgram &Prog, const PassConfig &Config) {
  Measurement M = measure(Prog, Config);
  Report->add(Prog.Name, ConfigName, M);
  if (!M.Ran) {
    std::printf("  %-34s failed\n", Label);
    return;
  }
  uint64_t Attempts = M.Run.ReuseHits + M.Run.ReuseMisses;
  double HitRate = Attempts ? 100.0 * M.Run.ReuseHits / Attempts : 0.0;
  std::printf("  %-34s allocs=%-10llu reuse-hits=%-10llu hit-rate=%5.1f%% "
              "peak=%.2fMB\n",
              Label, (unsigned long long)M.Heap.Allocs,
              (unsigned long long)M.Run.ReuseHits, HitRate,
              M.PeakBytes / 1048576.0);
}

/// Feeds every event to both a shadow byte ledger and a per-site table.
struct DualSink : StatsSink {
  CountingSink Counts;
  SiteTableSink Sites;
  void record(RcEvent E, size_t Bytes) override {
    Counts.record(E, Bytes);
    Sites.setSite(CurSite, CurLabel, CurLoc);
    Sites.record(E, Bytes);
  }
};

/// The byte-accounting check behind the reuse claim: a drop-reuse that
/// feeds a Con@ru must leave live bytes unchanged — the reused cell is
/// neither freed nor allocated, so the shadow ledger built from Alloc
/// and Free events alone has to agree exactly with the heap's own
/// LiveBytes/PeakBytes. A reuse hit that double-counted bytes (counted
/// as an alloc without the matching free, or vice versa) shows up here.
bool verifyReuseByteAccounting(const char *Label, const BenchProgram &Prog,
                               const PassConfig &Config, bool PrintSites) {
  DualSink Sink;
  Measurement M = measure(Prog, Config, &Sink);
  if (!M.Ran) {
    std::printf("  %-34s failed (accounting run)\n", Label);
    return false;
  }
  if (PrintSites)
    std::printf("\nper-site RC events, %s under perceus:\n%s", Prog.Name,
                Sink.Sites.toText().c_str());
  bool Ok = true;
  if (Sink.Counts.shadowPeakBytes() != M.Heap.PeakBytes) {
    std::printf("  BYTE ACCOUNTING MISMATCH (%s): shadow peak %zu != heap "
                "peak %zu\n",
                Prog.Name, Sink.Counts.shadowPeakBytes(), M.Heap.PeakBytes);
    Ok = false;
  }
  if (Sink.Counts.shadowLiveBytes() != M.Heap.LiveBytes) {
    std::printf("  BYTE ACCOUNTING MISMATCH (%s): shadow live %zu != heap "
                "live %zu\n",
                Prog.Name, Sink.Counts.shadowLiveBytes(), M.Heap.LiveBytes);
    Ok = false;
  }
  if (Ok)
    std::printf("  %-34s byte ledger exact: %llu reuse hits left "
                "live/peak bytes untouched\n",
                Label, (unsigned long long)M.Run.ReuseHits);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv, 0.5);
  std::string JsonPath = parseJsonPath("reuse", Argc, Argv);
  std::vector<BenchProgram> Programs = figure9Programs(Scale);
  BenchReport Rep("reuse", Scale);
  Report = &Rep;

  PassConfig Full = PassConfig::perceusFull();
  PassConfig NoReuse = PassConfig::perceusFull();
  NoReuse.EnableReuse = false;
  NoReuse.EnableReuseSpec = false;
  PassConfig NoReuseSpec = PassConfig::perceusFull();
  NoReuseSpec.EnableReuseSpec = false;

  std::printf("Reuse analysis effectiveness (--scale=%.2f)\n", Scale);
  std::printf("\nrbtree: unique tree -> in-place rebalancing "
              "(high reuse, low allocation)\n");
  report("perceus (reuse + reuse-spec)", "perceus", Programs[0], Full);
  report("perceus (reuse, no reuse-spec)", "perceus-no-reuse-spec",
         Programs[0], NoReuseSpec);
  report("perceus (no reuse)", "perceus-no-reuse", Programs[0], NoReuse);

  std::printf("\nrbtree-ck: every 5th tree retained -> shared spines are "
              "copied, unshared parts still reused\n");
  report("perceus (reuse + reuse-spec)", "perceus", Programs[1], Full);
  report("perceus (reuse, no reuse-spec)", "perceus-no-reuse-spec",
         Programs[1], NoReuseSpec);
  report("perceus (no reuse)", "perceus-no-reuse", Programs[1], NoReuse);

  std::printf("\nmap over a 100k list (Figure 1): every Cons reused\n");
  BenchProgram MapSum{"mapsum", mapSumSource(), "bench_mapsum", 100000,
                      nullptr};
  report("perceus", "perceus", MapSum, Full);
  report("perceus (no reuse)", "perceus-no-reuse", MapSum, NoReuse);

  std::printf("\nmerge sort of 20k random elements (FBIP): in-place "
              "split/merge\n");
  BenchProgram Sort{"msort", msortSource(), "bench_msort", 20000, nullptr};
  report("perceus", "perceus", Sort, Full);
  report("perceus (no reuse)", "perceus-no-reuse", Sort, NoReuse);

  std::printf("\nbatched queue, 50k enqueue/dequeue pairs: in-place "
              "rotation\n");
  BenchProgram Queue{"queue", queueSource(), "bench_queue", 50000, nullptr};
  report("perceus", "perceus", Queue, Full);
  report("perceus (no reuse)", "perceus-no-reuse", Queue, NoReuse);

  std::printf("\nreuse byte accounting (shadow alloc/free ledger vs heap "
              "counters):\n");
  // Small mapsum keeps the Figure 1 site table readable; rbtree and
  // msort exercise the Con@ru fast path at depth.
  BenchProgram SmallMap{"mapsum", mapSumSource(), "bench_mapsum", 1000,
                        nullptr};
  bool Ok = verifyReuseByteAccounting("mapsum (perceus)", SmallMap, Full,
                                      /*PrintSites=*/true);
  Ok &= verifyReuseByteAccounting("rbtree (perceus)", Programs[0], Full,
                                  /*PrintSites=*/false);
  Ok &= verifyReuseByteAccounting("msort (perceus)", Sort, Full,
                                  /*PrintSites=*/false);

  if (!JsonPath.empty() && !Rep.write(JsonPath))
    return 1;
  return Ok ? 0 : 1;
}
