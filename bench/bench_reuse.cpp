//===- bench/bench_reuse.cpp - Section 2.5: reuse on unique vs shared data ----===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's reuse claims (Sections 2.4-2.5): on a unique
/// red-black tree, "every Node is reused in the fast path without doing
/// any allocations" — insertion becomes an in-place rebalancing
/// algorithm; when the tree is used persistently (rbtree-ck retains
/// every 5th tree), the algorithm "adapts to copying exactly the shared
/// spine". We report the reuse hit rate and the fresh-allocation rate
/// per insert for both workloads, plus the ablation with reuse disabled.
///
/// Usage: bench_reuse [--scale=X]
///
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace perceus;
using namespace perceus::bench;

namespace {

void report(const char *Label, const BenchProgram &Prog,
            const PassConfig &Config) {
  Measurement M = measure(Prog, Config);
  if (!M.Ran) {
    std::printf("  %-34s failed\n", Label);
    return;
  }
  uint64_t Attempts = M.Run.ReuseHits + M.Run.ReuseMisses;
  double HitRate = Attempts ? 100.0 * M.Run.ReuseHits / Attempts : 0.0;
  std::printf("  %-34s allocs=%-10llu reuse-hits=%-10llu hit-rate=%5.1f%% "
              "peak=%.2fMB\n",
              Label, (unsigned long long)M.Heap.Allocs,
              (unsigned long long)M.Run.ReuseHits, HitRate,
              M.PeakBytes / 1048576.0);
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv, 0.5);
  std::vector<BenchProgram> Programs = figure9Programs(Scale);

  PassConfig Full = PassConfig::perceusFull();
  PassConfig NoReuse = PassConfig::perceusFull();
  NoReuse.EnableReuse = false;
  NoReuse.EnableReuseSpec = false;
  PassConfig NoReuseSpec = PassConfig::perceusFull();
  NoReuseSpec.EnableReuseSpec = false;

  std::printf("Reuse analysis effectiveness (--scale=%.2f)\n", Scale);
  std::printf("\nrbtree: unique tree -> in-place rebalancing "
              "(high reuse, low allocation)\n");
  report("perceus (reuse + reuse-spec)", Programs[0], Full);
  report("perceus (reuse, no reuse-spec)", Programs[0], NoReuseSpec);
  report("perceus (no reuse)", Programs[0], NoReuse);

  std::printf("\nrbtree-ck: every 5th tree retained -> shared spines are "
              "copied, unshared parts still reused\n");
  report("perceus (reuse + reuse-spec)", Programs[1], Full);
  report("perceus (reuse, no reuse-spec)", Programs[1], NoReuseSpec);
  report("perceus (no reuse)", Programs[1], NoReuse);

  std::printf("\nmap over a 100k list (Figure 1): every Cons reused\n");
  BenchProgram MapSum{"mapsum", mapSumSource(), "bench_mapsum", 100000,
                      nullptr};
  report("perceus", MapSum, Full);
  report("perceus (no reuse)", MapSum, NoReuse);

  std::printf("\nmerge sort of 20k random elements (FBIP): in-place "
              "split/merge\n");
  BenchProgram Sort{"msort", msortSource(), "bench_msort", 20000, nullptr};
  report("perceus", Sort, Full);
  report("perceus (no reuse)", Sort, NoReuse);

  std::printf("\nbatched queue, 50k enqueue/dequeue pairs: in-place "
              "rotation\n");
  BenchProgram Queue{"queue", queueSource(), "bench_queue", 50000, nullptr};
  report("perceus", Queue, Full);
  report("perceus (no reuse)", Queue, NoReuse);
  return 0;
}
