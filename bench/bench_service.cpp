//===- bench/bench_service.cpp - Compile-once service vs cold start -------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// What the long-lived session engine (src/service) buys over a
/// cold-start per request: every request in the cold column constructs a
/// fresh Runner (parse, resolve, Perceus pipeline, layout, and for the
/// VM a bytecode compile), while the service column sends the same
/// requests through one Service whose artifact cache compiles each
/// (source, config, engine) key exactly once and whose pooled worker
/// heaps stay warm between requests.
///
/// Requests are interactive-sized (the Figure 9 programs at the
/// smallest meaningful workloads; --scale multiplies them): a request
/// service amortizes compilation, so the win shows where per-request
/// work does not drown it. Beyond time, every row cross-checks the
/// cold-vs-service and CEK-vs-VM parity of checksums and heap ops — the
/// pooled heaps and cached artifacts must be observably identical to
/// fresh ones — and the report rows carry the "service" telemetry object
/// (status, cache_hit, queue/run latency, retained bytes) the
/// perceus-bench-v1 validator pins.
///
///   bench_service [--scale=X] [--requests=N] [--json=PATH | --no-json]
///
/// Writes BENCH_service.json (config = cold-cek | service-cek | cold-vm
/// | service-vm) and prints per-program speedups plus the geomean.
///
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "service/Service.h"

#include <chrono>
#include <cmath>

using namespace perceus;
using namespace perceus::bench;

namespace {

uint64_t parseRequests(int Argc, char **Argv, uint64_t Default) {
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--requests=", 11) == 0)
      return std::max(1l, std::atol(Argv[I] + 11));
  return Default;
}

double secondsSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - T0)
      .count();
}

/// The Figure 9 programs at request-service workloads: one request is a
/// small interactive unit of work, not a batch benchmark, so the fixed
/// compile cost is a visible fraction of the cold path.
std::vector<BenchProgram> requestPrograms(double Scale) {
  auto scaled = [&](int64_t Base) {
    return std::max<int64_t>(1, static_cast<int64_t>(Base * Scale));
  };
  return {
      {"rbtree", rbtreeSource(), "bench_rbtree", scaled(50), nullptr},
      {"rbtree-ck", rbtreeCkSource(), "bench_rbtree_ck", scaled(20), nullptr},
      {"deriv", derivSource(), "bench_deriv", scaled(4), nullptr},
      {"nqueens", nqueensSource(), "bench_nqueens", scaled(4), nullptr},
      {"cfold", cfoldSource(), "bench_cfold", scaled(6), nullptr},
  };
}

/// N cold-start requests: a fresh Runner (full compile) per request.
/// Seconds is the whole batch; stats come from the last request.
Measurement measureCold(const BenchProgram &Prog, EngineKind Engine,
                        uint64_t Requests) {
  Measurement M;
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I != Requests; ++I) {
    Runner R(Prog.Source, PassConfig::perceusFull(),
             EngineConfig{}.withEngine(Engine));
    if (!R.ok())
      return M;
    RunResult Res = R.callInt(Prog.Entry, {Prog.BaseScale});
    if (!Res.Ok)
      return M;
    M.Checksum = Res.Result.Int;
    M.PeakBytes = R.heap().stats().PeakBytes;
    M.Heap = R.heap().stats();
    M.Run = Res;
  }
  M.Ran = true;
  M.Seconds = secondsSince(T0);
  return M;
}

/// The same N requests through one Service session (compile once, warm
/// pooled heap). Seconds includes the first request's compile — that is
/// the amortization being measured.
Measurement measureService(Service &S, const BenchProgram &Prog,
                           EngineKind Engine, uint64_t Requests) {
  Measurement M;
  Session Sess(S, Prog.Source, PassConfig::perceusFull(), Engine);
  auto T0 = std::chrono::steady_clock::now();
  for (uint64_t I = 0; I != Requests; ++I) {
    ServiceResponse Resp =
        Sess.call(Prog.Entry, {Value::makeInt(Prog.BaseScale)});
    if (!Resp.Executed || !Resp.Run.Ok)
      return M;
    M.Checksum = Resp.Run.Result.Int;
    M.PeakBytes = Resp.Heap.PeakBytes;
    M.Heap = Resp.Heap;
    M.Run = Resp.Run;
    M.Svc.Present = true;
    M.Svc.Status = rejectKindName(Resp.Reject);
    M.Svc.Executed = Resp.Executed;
    M.Svc.CacheHit = Resp.CacheHit;
    M.Svc.HeapEmpty = Resp.HeapEmpty;
    M.Svc.Worker = Resp.Worker;
    M.Svc.QueueMs = Resp.QueueSeconds * 1e3;
    M.Svc.RunMs = Resp.RunSeconds * 1e3;
    M.Svc.RetainedBytes = Resp.RetainedBytes;
  }
  M.Ran = true;
  M.Seconds = secondsSince(T0);
  return M;
}

bool statsMatch(const char *Prog, const char *What, const Measurement &A,
                const Measurement &B) {
  auto check = [&](const char *Field, uint64_t X, uint64_t Y) {
    if (X == Y)
      return true;
    std::fprintf(stderr, "%s: %s diverge (%s): %llu vs %llu\n", Prog, Field,
                 What, (unsigned long long)X, (unsigned long long)Y);
    return false;
  };
  bool Ok = check("checksums", A.Checksum, B.Checksum);
  Ok &= check("allocs", A.Heap.Allocs, B.Heap.Allocs);
  Ok &= check("frees", A.Heap.Frees, B.Heap.Frees);
  Ok &= check("dups", A.Heap.DupOps, B.Heap.DupOps);
  Ok &= check("drops", A.Heap.DropOps, B.Heap.DropOps);
  Ok &= check("reuse hits", A.Run.ReuseHits, B.Run.ReuseHits);
  Ok &= check("peak bytes", A.PeakBytes, B.PeakBytes);
  return Ok;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv, 1.0);
  uint64_t Requests = parseRequests(Argc, Argv, 50);
  std::string JsonPath = parseJsonPath("service", Argc, Argv);
  std::vector<BenchProgram> Programs = requestPrograms(Scale);
  BenchReport Report("service", Scale);

  std::printf("Request service vs cold start (perceus config, "
              "--scale=%.2f, %llu requests per cell)\n\n",
              Scale, (unsigned long long)Requests);
  std::printf("%-12s %-6s %12s %12s %10s\n", "benchmark", "engine",
              "cold [s]", "service [s]", "speedup");

  double LogSum = 0;
  size_t N = 0;
  bool Parity = true;
  Service S(ServiceConfig{});
  for (const BenchProgram &P : Programs) {
    for (EngineKind Engine : {EngineKind::Cek, EngineKind::Vm}) {
      const char *EngName = engineKindName(Engine);
      Measurement Cold = measureCold(P, Engine, Requests);
      Measurement Svc = measureService(S, P, Engine, Requests);
      if (!Cold.Ran || !Svc.Ran) {
        std::fprintf(stderr, "%s (%s) failed to run\n", P.Name, EngName);
        return 1;
      }
      Parity = statsMatch(P.Name, "cold vs service", Cold, Svc) && Parity;
      Report.add(P.Name, std::string("cold-") + EngName, Cold);
      Report.add(P.Name, std::string("service-") + EngName, Svc);
      double Speedup = Cold.Seconds / Svc.Seconds;
      LogSum += std::log(Speedup);
      ++N;
      std::printf("%-12s %-6s %12.4f %12.4f %9.2fx\n", P.Name, EngName,
                  Cold.Seconds, Svc.Seconds, Speedup);
    }
  }
  double Geomean = std::exp(LogSum / double(N));
  std::printf("%-12s %-6s %12s %12s %9.2fx  (geomean)\n", "", "", "", "",
              Geomean);

  ServiceStats ST = S.stats();
  std::printf("\nservice: executed=%llu cache-hits=%llu compiles=%llu "
              "trimmed=%lluB\n",
              (unsigned long long)ST.Executed,
              (unsigned long long)ST.CacheHits,
              (unsigned long long)ST.CacheCompiles,
              (unsigned long long)ST.TrimmedBytes);
  // Every request after each key's first must hit the artifact cache.
  if (ST.CacheHits < ST.Executed - ST.CacheCompiles) {
    std::fprintf(stderr, "artifact cache underperformed: %llu hits for "
                         "%llu requests over %llu keys\n",
                 (unsigned long long)ST.CacheHits,
                 (unsigned long long)ST.Executed,
                 (unsigned long long)ST.CacheCompiles);
    return 1;
  }

  if (!Parity) {
    std::fprintf(stderr, "\ncold/service parity violated — see above\n");
    return 1;
  }

  std::string SchemaErr = validateBenchJson(Report.json());
  if (!SchemaErr.empty()) {
    std::fprintf(stderr, "BENCH_service.json schema violation: %s\n",
                 SchemaErr.c_str());
    return 1;
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
