//===- bench/native/Native.h - Native C++ baselines -------------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written C++ implementations of the paper's benchmarks, mirroring
/// its methodology (Section 4): rbtree uses the in-place mutating
/// std::map; deriv, nqueens and cfold allocate the same objects as the
/// functional versions but never reclaim during the run (the paper's
/// C++ versions "do not reclaim memory at all"; we release everything in
/// one arena sweep at the end so tests stay leak-free). rbtree-ck has no
/// C++ version, exactly as in Figure 9 (persistence would require manual
/// reference counting).
///
/// Each function returns the same checksum as the corresponding
/// `bench_*` program, which the integration tests verify.
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BENCH_NATIVE_NATIVE_H
#define PERCEUS_BENCH_NATIVE_NATIVE_H

#include <cstdint>

namespace perceus {
namespace native {

/// std::map-based red-black insertion (the paper's rbtree baseline).
int64_t rbtree(int64_t N);

/// Symbolic differentiation, arena-allocated, no per-node reclamation.
int64_t deriv(int64_t N);

/// n-queens over shared cons lists, arena-allocated.
int64_t nqueens(int64_t N);

/// Constant folding, arena-allocated.
int64_t cfold(int64_t N);

/// Figure 2: Morris in-order traversal (stackless, pointer-rotating)
/// applying +1 to every node of a perfect tree of \p Depth, then
/// summing. The native counterpart of the FBIP tmap (Section 2.6).
int64_t tmapMorris(int64_t Depth);

/// Plain recursive in-place tree map + sum (stack proportional to depth).
int64_t tmapRecursive(int64_t Depth);

/// std::stable_sort over the same LCG-generated values; returns the
/// element sum (the `bench_msort` checksum).
int64_t msort(int64_t N);

/// Native deque-based counterpart of `bench_queue`.
int64_t queue(int64_t N);

} // namespace native
} // namespace perceus

#endif // PERCEUS_BENCH_NATIVE_NATIVE_H
