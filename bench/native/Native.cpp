//===- bench/native/Native.cpp - Native C++ baselines --------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Native.h"

#include <algorithm>
#include <deque>
#include <map>
#include <vector>

namespace {

/// A trivial arena: objects are allocated in slabs and all released at
/// once (the benchmark bodies never free, matching the paper's C++
/// methodology).
template <typename T> class Pool {
public:
  template <typename... Args> T *make(Args &&...As) {
    Items.emplace_back(std::forward<Args>(As)...);
    return &Items.back();
  }

private:
  std::deque<T> Items;
};

} // namespace

//===----------------------------------------------------------------------===//
// rbtree: std::map
//===----------------------------------------------------------------------===//

int64_t perceus::native::rbtree(int64_t N) {
  std::map<int64_t, bool> M;
  for (int64_t I = 0; I < N; ++I)
    M[I] = (I % 10 == 0);
  int64_t Count = 0;
  for (const auto &[K, V] : M)
    if (V)
      ++Count;
  return Count;
}

//===----------------------------------------------------------------------===//
// deriv
//===----------------------------------------------------------------------===//

namespace {

struct DExpr {
  enum class K { Val, Var, Add, Mul, Pow } Kind;
  int64_t N = 0;
  const DExpr *A = nullptr;
  const DExpr *B = nullptr;
};

struct DerivCtx {
  Pool<DExpr> P;

  const DExpr *val(int64_t N) {
    DExpr *E = P.make();
    E->Kind = DExpr::K::Val;
    E->N = N;
    return E;
  }
  const DExpr *var() {
    DExpr *E = P.make();
    E->Kind = DExpr::K::Var;
    return E;
  }
  const DExpr *node(DExpr::K Kind, const DExpr *A, const DExpr *B,
                    int64_t N = 0) {
    DExpr *E = P.make();
    E->Kind = Kind;
    E->A = A;
    E->B = B;
    E->N = N;
    return E;
  }

  const DExpr *mkAdd(const DExpr *A, const DExpr *B) {
    if (A->Kind == DExpr::K::Val && B->Kind == DExpr::K::Val)
      return val(A->N + B->N);
    if (A->Kind == DExpr::K::Val && A->N == 0)
      return B;
    if (B->Kind == DExpr::K::Val && B->N == 0)
      return A;
    return node(DExpr::K::Add, A, B);
  }

  const DExpr *mkMul(const DExpr *A, const DExpr *B) {
    if (A->Kind == DExpr::K::Val && B->Kind == DExpr::K::Val)
      return val(A->N * B->N);
    if (A->Kind == DExpr::K::Val) {
      if (A->N == 0)
        return val(0);
      if (A->N == 1)
        return B;
    }
    if (B->Kind == DExpr::K::Val) {
      if (B->N == 0)
        return val(0);
      if (B->N == 1)
        return A;
    }
    return node(DExpr::K::Mul, A, B);
  }

  const DExpr *mkPow(const DExpr *A, int64_t N) {
    if (N == 0)
      return val(1);
    if (N == 1)
      return A;
    return node(DExpr::K::Pow, A, nullptr, N);
  }

  const DExpr *d(const DExpr *E) {
    switch (E->Kind) {
    case DExpr::K::Val:
      return val(0);
    case DExpr::K::Var:
      return val(1);
    case DExpr::K::Add:
      return mkAdd(d(E->A), d(E->B));
    case DExpr::K::Mul:
      return mkAdd(mkMul(E->A, d(E->B)), mkMul(d(E->A), E->B));
    case DExpr::K::Pow:
      return mkMul(mkMul(val(E->N), mkPow(E->A, E->N - 1)), d(E->A));
    }
    return nullptr;
  }

  int64_t size(const DExpr *E, int64_t Acc) {
    switch (E->Kind) {
    case DExpr::K::Val:
    case DExpr::K::Var:
      return Acc + 1;
    case DExpr::K::Add:
    case DExpr::K::Mul:
      return size(E->B, size(E->A, Acc + 1));
    case DExpr::K::Pow:
      return size(E->A, Acc + 1);
    }
    return Acc;
  }

  const DExpr *mkChain(int64_t I) {
    if (I <= 0)
      return val(1);
    return mkMul(node(DExpr::K::Add, var(), val(I)), mkChain(I - 1));
  }
};

} // namespace

int64_t perceus::native::deriv(int64_t N) {
  DerivCtx C;
  return C.size(C.d(C.d(C.d(C.mkChain(N)))), 0);
}

//===----------------------------------------------------------------------===//
// nqueens
//===----------------------------------------------------------------------===//

namespace {

struct QList {
  int64_t Head;
  const QList *Tail;
};

struct QCtx {
  Pool<QList> P;

  const QList *cons(int64_t H, const QList *T) {
    QList *L = P.make();
    L->Head = H;
    L->Tail = T;
    return L;
  }

  static bool safe(int64_t Queen, int64_t Diag, const QList *Xs) {
    for (; Xs; Xs = Xs->Tail, ++Diag) {
      int64_t Q = Xs->Head;
      if (Queen == Q || Queen == Q + Diag || Queen == Q - Diag)
        return false;
    }
    return true;
  }

  // Solutions are lists of lists; the outer list is also a QList whose
  // heads index into Solns.
  std::vector<const QList *> findSolutions(int64_t N, int64_t K) {
    if (K == 0)
      return {nullptr}; // one empty placement
    std::vector<const QList *> Prev = findSolutions(N, K - 1);
    std::vector<const QList *> Out;
    for (const QList *Soln : Prev)
      for (int64_t Q = N; Q >= 1; --Q)
        if (safe(Q, 1, Soln))
          Out.push_back(cons(Q, Soln));
    return Out;
  }
};

} // namespace

int64_t perceus::native::nqueens(int64_t N) {
  QCtx C;
  return static_cast<int64_t>(C.findSolutions(N, N).size());
}

//===----------------------------------------------------------------------===//
// cfold
//===----------------------------------------------------------------------===//

namespace {

struct CExpr {
  enum class K { Val, Var, Add, Mul } Kind;
  int64_t N = 0;
  const CExpr *A = nullptr;
  const CExpr *B = nullptr;
};

struct CCtx {
  Pool<CExpr> P;

  const CExpr *mk(CExpr::K Kind, int64_t N, const CExpr *A = nullptr,
                  const CExpr *B = nullptr) {
    CExpr *E = P.make();
    E->Kind = Kind;
    E->N = N;
    E->A = A;
    E->B = B;
    return E;
  }

  const CExpr *mkExpr(int64_t N, int64_t V) {
    if (N == 0)
      return V == 0 ? mk(CExpr::K::Var, 1) : mk(CExpr::K::Val, V);
    return mk(CExpr::K::Add, 0, mkExpr(N - 1, V + 1),
              mkExpr(N - 1, V == 0 ? 0 : V - 1));
  }

  const CExpr *appendAdd(const CExpr *E1, const CExpr *E2) {
    if (E1->Kind == CExpr::K::Add)
      return mk(CExpr::K::Add, 0, E1->A, appendAdd(E1->B, E2));
    return mk(CExpr::K::Add, 0, E1, E2);
  }
  const CExpr *appendMul(const CExpr *E1, const CExpr *E2) {
    if (E1->Kind == CExpr::K::Mul)
      return mk(CExpr::K::Mul, 0, E1->A, appendMul(E1->B, E2));
    return mk(CExpr::K::Mul, 0, E1, E2);
  }

  const CExpr *cfold(const CExpr *E) {
    switch (E->Kind) {
    case CExpr::K::Add: {
      const CExpr *A = cfold(E->A);
      const CExpr *B = cfold(E->B);
      if (A->Kind == CExpr::K::Val) {
        if (B->Kind == CExpr::K::Val)
          return mk(CExpr::K::Val, A->N + B->N);
        if (B->Kind == CExpr::K::Add) {
          if (B->A->Kind == CExpr::K::Val)
            return appendAdd(mk(CExpr::K::Val, A->N + B->A->N), B->B);
          return appendAdd(mk(CExpr::K::Add, 0, B->A, B->B),
                           mk(CExpr::K::Val, A->N));
        }
      }
      return mk(CExpr::K::Add, 0, A, B);
    }
    case CExpr::K::Mul: {
      const CExpr *A = cfold(E->A);
      const CExpr *B = cfold(E->B);
      if (A->Kind == CExpr::K::Val) {
        if (B->Kind == CExpr::K::Val)
          return mk(CExpr::K::Val, A->N * B->N);
        if (B->Kind == CExpr::K::Mul) {
          if (B->A->Kind == CExpr::K::Val)
            return appendMul(mk(CExpr::K::Val, A->N * B->A->N), B->B);
          return appendMul(mk(CExpr::K::Mul, 0, B->A, B->B),
                           mk(CExpr::K::Val, A->N));
        }
      }
      return mk(CExpr::K::Mul, 0, A, B);
    }
    default:
      return E;
    }
  }

  int64_t eval(const CExpr *E) {
    switch (E->Kind) {
    case CExpr::K::Val:
      return E->N;
    case CExpr::K::Var:
      return 0;
    case CExpr::K::Add:
      return eval(E->A) + eval(E->B);
    case CExpr::K::Mul:
      return eval(E->A) * eval(E->B);
    }
    return 0;
  }
};

} // namespace

int64_t perceus::native::cfold(int64_t N) {
  CCtx C;
  return C.eval(C.cfold(C.mkExpr(N, 1)));
}

//===----------------------------------------------------------------------===//
// tmap: Morris traversal (Figure 2)
//===----------------------------------------------------------------------===//

namespace {

struct TNode {
  TNode *Left = nullptr;
  int64_t Value = 0;
  TNode *Right = nullptr;
};

struct TCtx {
  Pool<TNode> P;

  TNode *build(int64_t Depth, int64_t Next) {
    if (Depth == 0)
      return nullptr;
    TNode *N = P.make();
    N->Left = build(Depth - 1, Next * 2);
    N->Value = Next;
    N->Right = build(Depth - 1, Next * 2 + 1);
    return N;
  }
};

/// Figure 2, with f = "add one to the node's value". Stackless: threads
/// the tree through the predecessors' right pointers.
template <typename F> void morrisInorder(TNode *Root, F Visit) {
  TNode *Cursor = Root;
  while (Cursor != nullptr) {
    if (Cursor->Left == nullptr) {
      Visit(Cursor);
      Cursor = Cursor->Right;
    } else {
      TNode *Pre = Cursor->Left;
      while (Pre->Right != nullptr && Pre->Right != Cursor)
        Pre = Pre->Right;
      if (Pre->Right == nullptr) {
        Pre->Right = Cursor;
        Cursor = Cursor->Left;
      } else {
        Visit(Cursor);
        Pre->Right = nullptr;
        Cursor = Cursor->Right;
      }
    }
  }
}

int64_t recMapSum(TNode *N) {
  if (!N)
    return 0;
  N->Value += 1;
  return recMapSum(N->Left) + N->Value + recMapSum(N->Right);
}

} // namespace

int64_t perceus::native::tmapMorris(int64_t Depth) {
  TCtx C;
  TNode *Root = C.build(Depth, 1);
  morrisInorder(Root, [](TNode *N) { N->Value += 1; });
  int64_t Sum = 0;
  morrisInorder(Root, [&](TNode *N) { Sum += N->Value; });
  return Sum;
}

int64_t perceus::native::tmapRecursive(int64_t Depth) {
  TCtx C;
  TNode *Root = C.build(Depth, 1);
  return recMapSum(Root);
}

//===----------------------------------------------------------------------===//
// msort / queue checksum baselines
//===----------------------------------------------------------------------===//

int64_t perceus::native::msort(int64_t N) {
  std::vector<int64_t> V;
  int64_t Seed = 42;
  for (int64_t I = 0; I != N; ++I) {
    Seed = (Seed * 1103515245 + 12345) % 2147483648ll;
    V.push_back(Seed % 100000);
  }
  std::stable_sort(V.begin(), V.end());
  int64_t Sum = 0, Prev = -1;
  for (int64_t X : V) {
    if (X < Prev)
      return -1;
    Prev = X;
    Sum += X;
  }
  return Sum;
}

int64_t perceus::native::queue(int64_t N) {
  std::deque<int64_t> Q;
  int64_t Acc = 0;
  for (int64_t I = 0; I != N; ++I) {
    Q.push_back(I);
    Q.push_back(I + N);
    Acc += Q.front();
    Q.pop_front();
  }
  while (!Q.empty()) {
    Acc += Q.front();
    Q.pop_front();
  }
  return Acc;
}
