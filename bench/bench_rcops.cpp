//===- bench/bench_rcops.cpp - Section 2.3-2.5: RC operations vanish ----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's central optimization claim (Sections 2.3-2.5,
/// Figure 1): after drop specialization, fusion and reuse, almost all
/// reference-count operations disappear from the fast path. We report
/// the *dynamically executed* RC instruction counts per configuration
/// for each benchmark — the quantity the static transformations are
/// designed to minimize.
///
/// Usage: bench_rcops [--scale=X] [--json=PATH | --no-json]
///
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace perceus;
using namespace perceus::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv, 0.2);
  std::string JsonPath = parseJsonPath("rcops", Argc, Argv);
  std::vector<BenchProgram> Programs = figure9Programs(Scale);
  BenchReport Report("rcops", Scale);

  std::vector<std::pair<std::string, PassConfig>> Configs = {
      {"perceus", PassConfig::perceusFull()},
      {"perceus-noopt", PassConfig::perceusNoOpt()},
      {"scoped-rc", PassConfig::scoped()},
  };

  std::printf("Dynamically executed reference-count operations "
              "(--scale=%.2f)\n",
              Scale);
  for (const BenchProgram &Prog : Programs) {
    std::printf("\n%s (n=%lld):\n", Prog.Name, (long long)Prog.BaseScale);
    std::printf("  %-14s %12s %12s %12s %12s %12s %12s\n", "config", "dup",
                "drop", "decref", "is-unique", "allocs", "reuses");
    uint64_t BaselineOps = 0;
    for (const auto &[Name, Config] : Configs) {
      Measurement M = measure(Prog, Config);
      Report.add(Prog.Name, Name, M);
      if (!M.Ran) {
        std::printf("  %-14s failed\n", Name.c_str());
        continue;
      }
      uint64_t Total = M.Heap.DupOps + M.Heap.DropOps + M.Heap.DecRefOps;
      if (Name == "perceus")
        BaselineOps = Total;
      std::printf("  %-14s %12llu %12llu %12llu %12llu %12llu %12llu",
                  Name.c_str(), (unsigned long long)M.Heap.DupOps,
                  (unsigned long long)M.Heap.DropOps,
                  (unsigned long long)M.Heap.DecRefOps,
                  (unsigned long long)M.Heap.IsUniqueTests,
                  (unsigned long long)M.Heap.Allocs,
                  (unsigned long long)M.Run.ReuseHits);
      if (BaselineOps && Total)
        std::printf("   (%.2fx perceus rc-ops)", double(Total) / BaselineOps);
      std::printf("\n");
    }
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
