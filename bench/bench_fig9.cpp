//===- bench/bench_fig9.cpp - Figure 9: time and peak memory ------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the paper's Figure 9 (and Figure 11, which is the same
/// experiment on a second machine — run this binary there): relative
/// execution time and relative peak working set for the five benchmarks
/// under every memory-management configuration.
///
/// Configuration mapping (see DESIGN.md for the substitution argument):
///   perceus        <- Koka
///   perceus-noopt  <- Koka, no-opt
///   scoped-rc      <- Swift (lexical-lifetime RC)
///   gc             <- OCaml/Haskell/Java (tracing collection)
///   native-c++     <- C++ (std::map rbtree; no-reclaim others)
///
/// Times are interpreter times: comparable across rows (same machine,
/// same dispatch cost), not to the paper's absolute numbers. The
/// native-c++ row runs compiled code and is reported for completeness
/// with that caveat. Peak working set is exact live-heap bytes.
///
/// Usage: bench_fig9 [--scale=X] [--engine=cek|vm] [--json=PATH | --no-json]
///        (X=1 is the CI-friendly default; results also land in
///        BENCH_fig9.json at the repo root unless --no-json)
///
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace perceus;
using namespace perceus::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv);
  std::string JsonPath = parseJsonPath("fig9", Argc, Argv);
  EngineKind Engine = parseEngine(Argc, Argv);
  std::vector<BenchProgram> Programs = figure9Programs(Scale);
  BenchReport Report("fig9", Scale);

  struct Row {
    std::string Name;
    PassConfig Config;
    bool Native = false;
  };
  std::vector<Row> Rows = {
      {"perceus", PassConfig::perceusFull(), false},
      {"perceus-noopt", PassConfig::perceusNoOpt(), false},
      {"scoped-rc", PassConfig::scoped(), false},
      {"gc", PassConfig::gc(), false},
      {"native-c++", PassConfig::gc(), true},
  };

  std::printf("Figure 9 reproduction: %zu benchmarks x %zu configurations "
              "(--scale=%.2f)\n",
              Programs.size(), Rows.size(), Scale);

  std::vector<std::string> RowNames, ColNames;
  for (const Row &R : Rows)
    RowNames.push_back(R.Name);
  for (const BenchProgram &B : Programs)
    ColNames.push_back(B.Name);

  std::vector<std::vector<double>> Times(Rows.size()),
      Peaks(Rows.size());
  std::vector<int64_t> Checksums(Programs.size(), INT64_MIN);

  for (size_t RI = 0; RI != Rows.size(); ++RI) {
    for (size_t CI = 0; CI != Programs.size(); ++CI) {
      Measurement M = Rows[RI].Native
                          ? measureNative(Programs[CI])
                          : measure(Programs[CI], Rows[RI].Config,
                                    EngineConfig{}.withEngine(Engine));
      Report.add(Programs[CI].Name, Rows[RI].Name, M);
      Times[RI].push_back(M.Ran ? M.Seconds : -1);
      Peaks[RI].push_back(
          M.Ran && !Rows[RI].Native ? double(M.PeakBytes) : -1);
      if (M.Ran) {
        if (Checksums[CI] == INT64_MIN)
          Checksums[CI] = M.Checksum;
        else if (Checksums[CI] != M.Checksum)
          std::printf("WARNING: checksum mismatch on %s under %s: %lld vs "
                      "%lld\n",
                      Programs[CI].Name, Rows[RI].Name.c_str(),
                      (long long)M.Checksum, (long long)Checksums[CI]);
      }
    }
  }

  printRelativeTable("Figure 9 (top): execution time", "s", RowNames,
                     ColNames, Times);
  printRelativeTable("Figure 9 (bottom): peak working set", "bytes",
                     RowNames, ColNames, Peaks);

  std::printf("\nChecksums:");
  for (size_t CI = 0; CI != Programs.size(); ++CI)
    std::printf(" %s=%lld", Programs[CI].Name, (long long)Checksums[CI]);
  std::printf("\n");

  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
