//===- bench/bench_borrow.cpp - Section 6: selective borrowing ----------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work experiment, implemented: Section 6 proposes
/// integrating *selective borrowing* into Perceus ("no longer garbage
/// free, but ... further performance improvements if judiciously
/// applied"). We infer borrowed parameters (predicates, folds — never
/// allocating functions, so reuse analysis keeps its fuel) and measure
/// the executed RC operations and time against plain Perceus.
///
/// Usage: bench_borrow [--scale=X]
///
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace perceus;
using namespace perceus::bench;

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv, 0.5);
  std::vector<BenchProgram> Programs = figure9Programs(Scale);
  Programs.push_back(
      {"mapsum", mapSumSource(), "bench_mapsum",
       static_cast<int64_t>(100000 * Scale), nullptr});

  std::printf("Selective borrowing (Section 6 extension), --scale=%.2f\n",
              Scale);
  std::printf("  %-11s %22s %22s %10s %10s\n", "benchmark",
              "perceus rc-ops (time)", "borrow rc-ops (time)", "rc-ops",
              "reuse kept");
  for (const BenchProgram &Prog : Programs) {
    Measurement Base = measure(Prog, PassConfig::perceusFull());
    Measurement Bor = measure(Prog, PassConfig::perceusBorrow());
    if (!Base.Ran || !Bor.Ran) {
      std::printf("  %-11s failed\n", Prog.Name);
      continue;
    }
    if (Base.Checksum != Bor.Checksum)
      std::printf("  WARNING: %s checksum mismatch\n", Prog.Name);
    auto Ops = [](const Measurement &M) {
      return M.Heap.DupOps + M.Heap.DropOps + M.Heap.DecRefOps;
    };
    char L[64], R[64];
    std::snprintf(L, sizeof(L), "%llu (%.3fs)",
                  (unsigned long long)Ops(Base), Base.Seconds);
    std::snprintf(R, sizeof(R), "%llu (%.3fs)",
                  (unsigned long long)Ops(Bor), Bor.Seconds);
    std::printf("  %-11s %22s %22s %9.1f%% %9.1f%%\n", Prog.Name, L, R,
                Ops(Base) ? 100.0 * Ops(Bor) / Ops(Base) : 0.0,
                Base.Run.ReuseHits
                    ? 100.0 * Bor.Run.ReuseHits / Base.Run.ReuseHits
                    : 100.0);
  }
  std::printf("\n(rc-ops: executed dup+drop+decref, borrow relative to "
              "perceus; reuse kept: borrowing must not lose in-place "
              "reuse, so this stays at 100%%.)\n");
  return 0;
}
