//===- bench/bench_net.cpp - Sharded socket front-end throughput ----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop TCP mix against the sharded socket front end (`perc
/// --listen` internals, driven in-process): four tenants each hold
/// their own line-JSON connection and submit at a fixed rate,
/// independent of completions, while the harness measures end-to-end
/// (client-observed) latency per response seq.
///
/// Two phases over identical schedules:
///   1shard  — every tenant routes to the single shard (baseline)
///   Nshard  — N >= 4 shards; tenants spread by the (tenant, source)
///             hash, caches and governors isolated per shard
///
/// Per tenant and phase the harness reports p50/p99/mean latency and
/// the admission breakdown ("overload" row objects); the N-shard phase
/// additionally reports one "shard" row object per shard — requests,
/// cache hits/compiles/evictions, sheds, qps — proving cache isolation
/// (every shard that saw traffic compiled the one source exactly once).
/// Results land in BENCH_net.json ("perceus-bench-v1",
/// schema-validated before writing).
///
/// Acceptance (exit 1 on violation):
///   * N-shard aggregate p99 stays within 3x the 1-shard aggregate p50
///     (plus a small absolute floor to absorb scheduler jitter);
///   * every executed response's retained_bytes stays within the
///     per-worker retained-trim policy (RSS bound);
///   * per-shard cache isolation: each shard that received traffic
///     compiled exactly once, and no cross-shard artifact sharing.
///
///   bench_net [--scale=X] [--requests=N] [--shards=N]
///             [--json=PATH | --no-json]
///
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "net/Server.h"
#include "net/ShardedService.h"
#include "net/Wire.h"
#include "support/JsonWriter.h"

#include <algorithm>
#include <arpa/inet.h>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>

using namespace perceus;
using namespace perceus::bench;

namespace {

using Clock = std::chrono::steady_clock;

constexpr unsigned NumTenants = 4;
constexpr double RatePerSec = 30.0; // per tenant, open loop
constexpr size_t MaxRetained = 4u << 20;

uint64_t parseFlag(int Argc, char **Argv, const char *Name,
                   uint64_t Default) {
  size_t Len = std::strlen(Name);
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], Name, Len) == 0)
      return std::max(1l, std::atol(Argv[I] + Len));
  return Default;
}

/// Picks a per-request workload whose run time is around a millisecond
/// (measured through the service, cache warm), so the open-loop rates
/// stay feasible on one core yet latency dominates scheduler noise.
int64_t calibrateWorkload(const BenchProgram &P, double Scale) {
  int64_t Work = std::max<int64_t>(1, static_cast<int64_t>(50 * Scale));
  Service S(ServiceConfig{});
  S.precompile(P.Source, PassConfig::perceusFull(), EngineKind::Cek);
  for (int Round = 0; Round != 4; ++Round) {
    ServiceRequest R;
    R.Source = P.Source;
    R.Entry = P.Entry;
    R.Args = {Value::makeInt(Work)};
    ServiceResponse Resp = S.call(std::move(R));
    if (!Resp.Executed || !Resp.Run.Ok)
      break;
    double Ms = Resp.RunSeconds * 1e3;
    if (Ms >= 0.5 && Ms <= 2.0)
      break;
    double Factor = Ms > 0 ? 1.0 / Ms : 2.0;
    Factor = std::min(8.0, std::max(0.125, Factor));
    Work = std::max<int64_t>(1, static_cast<int64_t>(double(Work) * Factor));
  }
  return Work;
}

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(P * double(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

int connectTo(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  inet_pton(AF_INET, "127.0.0.1", &Addr.sin_addr);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off != Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, 0);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// One tenant's client-observed outcome for a phase.
struct TenantRun {
  OverloadInfo Ov;
  std::vector<double> LatMs;
  uint64_t RetainedMaxBytes = 0;
  bool RetainedViolation = false;
  bool TransportError = false;
};

/// Drives one tenant's connection: a sender pacing the open-loop
/// schedule and an in-thread reader matching responses back to send
/// times by seq (the server numbers frames per connection in arrival
/// order, which over one TCP stream is submission order).
void runTenant(uint16_t Port, const std::string &Tenant, const char *Entry,
               int64_t Work, uint64_t Requests, TenantRun &Out) {
  int Fd = connectTo(Port);
  if (Fd < 0) {
    Out.TransportError = true;
    return;
  }
  std::vector<Clock::time_point> SentAt(Requests + 1);
  std::thread Sender([&] {
    std::string Frame = std::string("{\"tenant\":\"") + Tenant +
                        "\",\"entry\":\"" + Entry +
                        "\",\"args\":[" + std::to_string(Work) + "]}\n";
    Clock::time_point T0 = Clock::now();
    for (uint64_t I = 0; I != Requests; ++I) {
      std::this_thread::sleep_until(
          T0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(double(I) / RatePerSec)));
      SentAt[I + 1] = Clock::now();
      if (!sendAll(Fd, Frame)) {
        Out.TransportError = true;
        return;
      }
      ++Out.Ov.Requests;
    }
  });

  std::string Buf;
  char Chunk[65536];
  uint64_t Got = 0;
  while (Got != Requests) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0) {
      Out.TransportError = true;
      break;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
    size_t Nl;
    while ((Nl = Buf.find('\n')) != std::string::npos) {
      Clock::time_point Now = Clock::now();
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      ++Got;
      std::optional<JsonValue> Doc = parseJson(Line);
      const JsonValue *Svc =
          Doc ? Doc->find("service", JsonValue::Kind::Object) : nullptr;
      if (!Svc) {
        Out.TransportError = true;
        continue;
      }
      uint64_t Seq =
          static_cast<uint64_t>(Svc->find("seq", JsonValue::Kind::Number)->Num);
      const JsonValue *Executed =
          Svc->find("executed", JsonValue::Kind::Bool);
      uint64_t Retained = static_cast<uint64_t>(
          Svc->find("retained_bytes", JsonValue::Kind::Number)->Num);
      Out.RetainedMaxBytes = std::max(Out.RetainedMaxBytes, Retained);
      if (Retained > MaxRetained)
        Out.RetainedViolation = true;
      if (Executed && Executed->B && Seq >= 1 && Seq <= Requests) {
        ++Out.Ov.Executed;
        Out.LatMs.push_back(
            std::chrono::duration<double>(Now - SentAt[Seq]).count() * 1e3);
      } else {
        ++Out.Ov.Shed;
      }
    }
  }
  Sender.join();
  ::close(Fd);
}

struct PhaseResult {
  std::vector<TenantRun> Tenants;
  std::vector<ServiceStats> ShardStats;
  ServerStats Net;
  double WallSec = 0;
  double P50 = 0, P99 = 0;
  double Qps = 0;
};

PhaseResult runPhase(const BenchProgram &Prog, int64_t Work,
                     uint64_t Requests, unsigned Shards) {
  FrontEndConfig FC;
  FC.withShards(Shards).withShard(
      ServiceConfig{}.withWorkers(1).withQueueCapacity(64).withMaxRetainedBytes(
          MaxRetained));
  ShardedService SS(FC);

  // Compile off the measured path, once per (tenant, source) shard —
  // the per-shard compile counters below must show exactly these.
  for (unsigned T = 0; T != NumTenants; ++T) {
    std::string Err;
    if (!SS.precompile("tenant-" + std::to_string(T + 1), Prog.Source,
                       PassConfig::perceusFull(), EngineKind::Cek, &Err)) {
      std::fprintf(stderr, "bench_net: %s\n", Err.c_str());
      std::exit(1);
    }
  }

  ServiceRequest Defaults;
  Defaults.Source = Prog.Source;
  Defaults.Entry = Prog.Entry;
  Server Srv(SS, FC, Defaults);
  std::string Err;
  if (!Srv.listen("127.0.0.1:0", &Err) || !Srv.start()) {
    std::fprintf(stderr, "bench_net: listen failed: %s\n", Err.c_str());
    std::exit(1);
  }

  PhaseResult PR;
  PR.Tenants.resize(NumTenants);
  Clock::time_point T0 = Clock::now();
  std::vector<std::thread> Drivers;
  for (unsigned T = 0; T != NumTenants; ++T)
    Drivers.emplace_back(runTenant, Srv.port(),
                         "tenant-" + std::to_string(T + 1), Prog.Entry, Work,
                         Requests, std::ref(PR.Tenants[T]));
  for (std::thread &D : Drivers)
    D.join();
  PR.WallSec = std::chrono::duration<double>(Clock::now() - T0).count();

  PR.Net = Srv.stats();
  for (size_t I = 0; I != SS.shardCount(); ++I)
    PR.ShardStats.push_back(SS.shardStats(I));
  Srv.stop();
  SS.stop();

  std::vector<double> All;
  uint64_t Executed = 0;
  for (unsigned I = 0; I != NumTenants; ++I) {
    TenantRun &T = PR.Tenants[I];
    T.Ov.Present = true;
    T.Ov.Tenant = "tenant-" + std::to_string(I + 1);
    T.Ov.P50Ms = percentile(T.LatMs, 0.50);
    T.Ov.P99Ms = percentile(T.LatMs, 0.99);
    double Sum = 0;
    for (double L : T.LatMs)
      Sum += L;
    T.Ov.MeanMs = T.LatMs.empty() ? 0 : Sum / double(T.LatMs.size());
    T.Ov.ShedRate = T.Ov.Requests
                        ? double(T.Ov.Requests - T.Ov.Executed) /
                              double(T.Ov.Requests)
                        : 0;
    T.Ov.RetainedPeakBytes = T.RetainedMaxBytes;
    Executed += T.Ov.Executed;
    All.insert(All.end(), T.LatMs.begin(), T.LatMs.end());
  }
  PR.P50 = percentile(All, 0.50);
  PR.P99 = percentile(All, 0.99);
  PR.Qps = PR.WallSec > 0 ? double(Executed) / PR.WallSec : 0;
  return PR;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv, 1.0);
  uint64_t Requests = parseFlag(Argc, Argv, "--requests=", 120);
  unsigned Shards = static_cast<unsigned>(
      std::max<uint64_t>(4, parseFlag(Argc, Argv, "--shards=", 4)));
  std::string JsonPath = parseJsonPath("net", Argc, Argv);
  BenchReport Report("net", Scale);

  BenchProgram Prog{"rbtree", rbtreeSource(), "bench_rbtree", 0, nullptr};
  int64_t Work = calibrateWorkload(Prog, Scale);

  std::printf("Sharded socket front end (%s): %u tenants @ %.0f req/s each, "
              "%llu requests/tenant, workload %lld\n\n",
              Poller::backendName(), NumTenants, RatePerSec,
              (unsigned long long)Requests, (long long)Work);

  PhaseResult Base = runPhase(Prog, Work, Requests, 1);
  PhaseResult Wide = runPhase(Prog, Work, Requests, Shards);
  std::string WideName = std::to_string(Shards) + "shard";

  auto printPhase = [&](const char *Name, const PhaseResult &PR) {
    std::printf("%-8s p50=%.2fms p99=%.2fms qps=%.0f frames_in=%llu "
                "bad=%llu dropped=%llu\n",
                Name, PR.P50, PR.P99, PR.Qps,
                (unsigned long long)PR.Net.FramesIn,
                (unsigned long long)PR.Net.BadRequests,
                (unsigned long long)PR.Net.DroppedResponses);
  };
  printPhase("1shard", Base);
  printPhase(WideName.c_str(), Wide);

  bool Violation = false;
  for (const PhaseResult *PR : {&Base, &Wide})
    for (const TenantRun &T : PR->Tenants) {
      if (T.TransportError) {
        std::fprintf(stderr, "%s: transport error\n", T.Ov.Tenant.c_str());
        Violation = true;
      }
      if (T.RetainedViolation) {
        std::fprintf(stderr,
                     "retained_bytes exceeded the %zuB trim policy "
                     "(peak %lluB)\n",
                     MaxRetained, (unsigned long long)T.RetainedMaxBytes);
        Violation = true;
      }
    }

  // Gate 1: scaling out must not cost tail latency. The absolute floor
  // absorbs scheduler jitter on loaded single-core CI machines.
  double Limit = std::max(3.0 * Base.P50, Base.P50 + 10.0);
  if (Wide.P99 > Limit) {
    std::fprintf(stderr,
                 "p99 at %u shards %.2fms exceeds limit %.2fms "
                 "(3x 1-shard p50 %.2fms)\n",
                 Shards, Wide.P99, Limit, Base.P50);
    Violation = true;
  }

  // Gate 2: per-shard cache isolation. Every shard that saw traffic
  // compiled the one source exactly once (its own cache, warmed by its
  // own precompile); idle shards compiled nothing.
  unsigned Active = 0;
  uint64_t TotalCompiles = 0;
  for (size_t I = 0; I != Wide.ShardStats.size(); ++I) {
    const ServiceStats &ST = Wide.ShardStats[I];
    TotalCompiles += ST.CacheCompiles;
    if (ST.Submitted == 0 && ST.CacheCompiles == 0)
      continue;
    ++Active;
    if (ST.CacheCompiles != 1) {
      std::fprintf(stderr,
                   "shard %zu compiled %llu times (want exactly 1)\n", I,
                   (unsigned long long)ST.CacheCompiles);
      Violation = true;
    }
  }
  if (Active < 2) {
    std::fprintf(stderr,
                 "tenant hash spread only %u active shards at %u shards\n",
                 Active, Shards);
    Violation = true;
  }

  // Rows: per-tenant latency ("overload" objects) for both phases, plus
  // one per-shard isolation row for the wide phase.
  auto addTenantRows = [&](const PhaseResult &PR, const std::string &Name) {
    for (unsigned T = 0; T != NumTenants; ++T) {
      Measurement M;
      M.Ran = !PR.Tenants[T].TransportError;
      M.Seconds = PR.Tenants[T].Ov.MeanMs / 1e3;
      M.Ov = PR.Tenants[T].Ov;
      Report.add(M.Ov.Tenant, Name, M);
    }
  };
  addTenantRows(Base, "1shard");
  addTenantRows(Wide, WideName);
  for (size_t I = 0; I != Wide.ShardStats.size(); ++I) {
    const ServiceStats &ST = Wide.ShardStats[I];
    Measurement M;
    M.Ran = true;
    M.Shard.Present = true;
    M.Shard.Shard = I;
    M.Shard.Requests = ST.Submitted;
    M.Shard.Executed = ST.Executed;
    M.Shard.CacheHits = ST.CacheHits;
    M.Shard.CacheCompiles = ST.CacheCompiles;
    M.Shard.CacheEvictions = ST.CacheEvictions;
    M.Shard.Sheds = ST.RejectedQueueFull + ST.RejectedShedding +
                    ST.RejectedRateLimited + ST.RejectedTenantQuota +
                    ST.RejectedCircuitOpen;
    M.Shard.Qps = Wide.WallSec > 0 ? double(ST.Executed) / Wide.WallSec : 0;
    Report.add("shard-" + std::to_string(I), WideName, M);
  }

  if (Violation) {
    std::fprintf(stderr, "\nsharded front-end acceptance violated — see "
                         "above\n");
    return 1;
  }
  std::printf("\n%u shards: p99 %.2fms within 3x 1-shard p50, retained "
              "<= %zuB, %u shards compiled once each\n",
              Shards, Wide.P99, MaxRetained, Active);

  std::string SchemaErr = validateBenchJson(Report.json());
  if (!SchemaErr.empty()) {
    std::fprintf(stderr, "BENCH_net.json schema violation: %s\n",
                 SchemaErr.c_str());
    return 1;
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
