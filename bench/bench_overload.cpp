//===- bench/bench_overload.cpp - Multi-tenant overload / degradation -----===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graceful degradation under a hostile tenant mix: N polite tenants
/// submit open-loop (timed arrivals, independent of completions) at a
/// modest rate while one abusive tenant floods the same service. The
/// abusive tenant is contained by policy — an in-flight cap and the
/// fair-share queue discipline — so the measurement is whether the
/// polite tenants notice.
///
/// Two phases over identical polite schedules:
///   baseline  — polite tenants only
///   abuse     — polite tenants + the abusive flood
///
/// Per tenant and phase the harness reports p50/p99/mean end-to-end
/// latency (queue + run, server-side), shed rate, the admission
/// rejection breakdown, and the worst worker-retained RSS, into
/// BENCH_overload.json ("overload" row objects, schema-validated).
///
/// Acceptance (exit 1 on violation):
///   * polite p99 under abuse stays within 3x the no-abuse baseline
///     (plus a small absolute floor to absorb scheduler jitter);
///   * polite shed rate under abuse stays below 1%.
///
///   bench_overload [--scale=X] [--requests=N] [--json=PATH | --no-json]
///
/// --requests sets the polite per-tenant request count (default 100);
/// --scale multiplies the per-request workload.
///
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "service/Service.h"
#include "support/Rng.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

using namespace perceus;
using namespace perceus::bench;

namespace {

using Clock = std::chrono::steady_clock;

uint64_t parseRequests(int Argc, char **Argv, uint64_t Default) {
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--requests=", 11) == 0)
      return std::max(1l, std::atol(Argv[I] + 11));
  return Default;
}

constexpr unsigned NumPolite = 3;
constexpr size_t QueueCap = 64;
constexpr double PoliteRatePerSec = 40.0; // per polite tenant

/// Workers never exceed the machine: oversubscribed workers timeslice
/// the engine runs themselves and the latency measurement stops meaning
/// queueing. The flood and the containment cap scale with the workers so
/// the abusive tenant saturates the service on any core count.
unsigned serviceWorkers() {
  unsigned HW = std::thread::hardware_concurrency();
  return std::max(1u, std::min(4u, HW == 0 ? 1u : HW));
}
double abuseRatePerSec() { return 1200.0 * serviceWorkers(); }
uint64_t abusiveMaxInFlight() { return 2 * serviceWorkers(); }

/// One tenant's aggregated outcome for a phase.
struct TenantOutcome {
  OverloadInfo Ov;
  HeapStats Heap;
  std::vector<double> LatenciesMs; ///< executed requests only
};

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(P * double(V.size() - 1) + 0.5);
  return V[std::min(I, V.size() - 1)];
}

/// Picks a per-request workload whose run time is a few milliseconds:
/// large enough that latency measurements dominate scheduler noise,
/// small enough that the open-loop rates stay feasible.
int64_t calibrateWorkload(const BenchProgram &P, double Scale) {
  int64_t Work = std::max<int64_t>(1, static_cast<int64_t>(50 * Scale));
  Service S(ServiceConfig{});
  // Warm the artifact cache first: the calibration rounds must measure
  // engine time, not the one-off compile.
  S.precompile(P.Source, PassConfig::perceusFull(), EngineKind::Cek);
  for (int Round = 0; Round != 4; ++Round) {
    ServiceRequest R;
    R.Source = P.Source;
    R.Entry = P.Entry;
    R.Args = {Value::makeInt(Work)};
    ServiceResponse Resp = S.call(std::move(R));
    if (!Resp.Executed || !Resp.Run.Ok)
      break;
    double Ms = Resp.RunSeconds * 1e3;
    if (Ms >= 0.5 && Ms <= 2.0)
      break;
    double Target = 1.0;
    double Factor = Ms > 0 ? Target / Ms : 2.0;
    Factor = std::min(8.0, std::max(0.125, Factor));
    Work = std::max<int64_t>(1, static_cast<int64_t>(double(Work) * Factor));
  }
  return Work;
}

/// Runs one phase: every polite tenant follows the same open-loop
/// schedule; when \p WithAbuse the abusive tenant floods concurrently.
/// Returns one outcome per tenant (polite first, abusive last when
/// present).
std::vector<TenantOutcome> runPhase(const BenchProgram &Prog, int64_t Work,
                                    uint64_t PoliteRequests, bool WithAbuse) {
  ServiceConfig SC;
  SC.Workers = serviceWorkers();
  SC.QueueCapacity = QueueCap;
  Service S(SC);

  TenantPolicy Abuse;
  Abuse.MaxInFlight = abusiveMaxInFlight();
  S.setTenantPolicy("abusive", Abuse);

  // Compile off the measured path; every request is then a cache hit.
  std::string CompileError;
  if (!S.precompile(Prog.Source, PassConfig::perceusFull(), EngineKind::Cek,
                    &CompileError)) {
    std::fprintf(stderr, "bench_overload: %s\n", CompileError.c_str());
    std::exit(1);
  }

  struct Event {
    double AtSec;
    unsigned Tenant; ///< 0..NumPolite-1 polite, NumPolite = abusive
  };
  std::vector<Event> Schedule;
  Rng Jitter(42);
  for (unsigned T = 0; T != NumPolite; ++T)
    for (uint64_t I = 0; I != PoliteRequests; ++I) {
      // Poisson-ish arrivals: uniform jitter of one inter-arrival slot.
      double Slot = double(I) / PoliteRatePerSec;
      double J = double(Jitter.below(1000)) / 1000.0 / PoliteRatePerSec;
      Schedule.push_back({Slot + J, T});
    }
  double PhaseSec = double(PoliteRequests) / PoliteRatePerSec;
  if (WithAbuse) {
    double AbuseRate = abuseRatePerSec();
    uint64_t AbuseRequests = static_cast<uint64_t>(PhaseSec * AbuseRate);
    for (uint64_t I = 0; I != AbuseRequests; ++I)
      Schedule.push_back({double(I) / AbuseRate, NumPolite});
  }
  std::sort(Schedule.begin(), Schedule.end(),
            [](const Event &A, const Event &B) { return A.AtSec < B.AtSec; });

  auto TenantName = [](unsigned T) {
    return T == NumPolite ? std::string("abusive")
                          : "polite-" + std::to_string(T + 1);
  };

  std::vector<TenantOutcome> Out(WithAbuse ? NumPolite + 1 : NumPolite);
  std::vector<std::pair<unsigned, std::future<ServiceResponse>>> InFlight;
  InFlight.reserve(Schedule.size());

  Clock::time_point T0 = Clock::now();
  for (const Event &E : Schedule) {
    std::this_thread::sleep_until(
        T0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(E.AtSec)));
    ServiceRequest R;
    R.Tenant = TenantName(E.Tenant);
    R.Source = Prog.Source;
    R.Entry = Prog.Entry;
    R.Args = {Value::makeInt(Work)};
    ++Out[E.Tenant].Ov.Requests;
    InFlight.emplace_back(E.Tenant, S.submit(std::move(R)));
  }
  for (auto &[T, Fut] : InFlight) {
    ServiceResponse Resp = Fut.get();
    TenantOutcome &O = Out[T];
    if (Resp.Executed) {
      ++O.Ov.Executed;
      O.LatenciesMs.push_back((Resp.QueueSeconds + Resp.RunSeconds) * 1e3);
    } else {
      switch (Resp.Reject) {
      case RejectKind::RateLimited:
        ++O.Ov.RejectedRateLimited;
        break;
      case RejectKind::TenantQuota:
        ++O.Ov.RejectedTenantQuota;
        break;
      case RejectKind::QueueFull:
        ++O.Ov.RejectedQueueFull;
        break;
      case RejectKind::CircuitOpen:
        ++O.Ov.RejectedCircuitOpen;
        break;
      default:
        ++O.Ov.Shed;
        break;
      }
    }
  }
  S.stop();

  for (unsigned T = 0; T != Out.size(); ++T) {
    TenantOutcome &O = Out[T];
    O.Ov.Present = true;
    O.Ov.Tenant = TenantName(T);
    O.Ov.Abusive = T == NumPolite;
    uint64_t NotExecuted = O.Ov.Requests - O.Ov.Executed;
    O.Ov.ShedRate =
        O.Ov.Requests ? double(NotExecuted) / double(O.Ov.Requests) : 0;
    O.Ov.P50Ms = percentile(O.LatenciesMs, 0.50);
    O.Ov.P99Ms = percentile(O.LatenciesMs, 0.99);
    double Sum = 0;
    for (double L : O.LatenciesMs)
      Sum += L;
    O.Ov.MeanMs = O.LatenciesMs.empty() ? 0 : Sum / O.LatenciesMs.size();
    TenantCounters C = S.tenantStats(O.Ov.Tenant);
    O.Ov.RetainedPeakBytes = C.RetainedPeakBytes;
    O.Heap = C.Heap;
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = parseScale(Argc, Argv, 1.0);
  uint64_t PoliteRequests = parseRequests(Argc, Argv, 100);
  std::string JsonPath = parseJsonPath("overload", Argc, Argv);
  BenchReport Report("overload", Scale);

  // One interactive-sized program; the contention is in the service, not
  // the workload, so one program suffices and keeps phases comparable.
  BenchProgram Prog{"rbtree", rbtreeSource(), "bench_rbtree", 0, nullptr};
  int64_t Work = calibrateWorkload(Prog, Scale);

  std::printf("Multi-tenant overload mix: %u polite @ %.0f req/s each "
              "(%llu requests), abusive @ %.0f req/s, %u workers, "
              "queue %zu, workload %lld\n\n",
              NumPolite, PoliteRatePerSec,
              (unsigned long long)PoliteRequests, abuseRatePerSec(),
              serviceWorkers(), QueueCap, (long long)Work);

  std::vector<TenantOutcome> Base =
      runPhase(Prog, Work, PoliteRequests, /*WithAbuse=*/false);
  std::vector<TenantOutcome> Abuse =
      runPhase(Prog, Work, PoliteRequests, /*WithAbuse=*/true);

  std::printf("%-10s %-9s %9s %9s %9s %9s %9s %10s\n", "tenant", "phase",
              "requests", "executed", "shedrate", "p50[ms]", "p99[ms]",
              "retained");
  auto printRow = [](const TenantOutcome &O, const char *Phase) {
    std::printf("%-10s %-9s %9llu %9llu %8.2f%% %9.2f %9.2f %9zuB\n",
                O.Ov.Tenant.c_str(), Phase,
                (unsigned long long)O.Ov.Requests,
                (unsigned long long)O.Ov.Executed, O.Ov.ShedRate * 100,
                O.Ov.P50Ms, O.Ov.P99Ms, (size_t)O.Ov.RetainedPeakBytes);
  };
  for (const TenantOutcome &O : Base)
    printRow(O, "baseline");
  for (const TenantOutcome &O : Abuse)
    printRow(O, "abuse");

  // Report rows: benchmark = tenant, config = phase.
  auto addRows = [&](const std::vector<TenantOutcome> &Phase,
                     const char *Name) {
    for (const TenantOutcome &O : Phase) {
      Measurement M;
      M.Ran = true;
      M.Seconds = O.Ov.MeanMs / 1e3;
      M.Heap = O.Heap;
      M.Ov = O.Ov;
      Report.add(O.Ov.Tenant, Name, M);
    }
  };
  addRows(Base, "baseline");
  addRows(Abuse, "abuse");

  // Acceptance: the polite tenants must not notice the abuse. p99 within
  // 3x baseline (with a 2ms absolute floor absorbing scheduler jitter on
  // loaded CI machines), shed rate under 1%.
  bool Violation = false;
  for (unsigned T = 0; T != NumPolite; ++T) {
    const OverloadInfo &B = Base[T].Ov;
    const OverloadInfo &A = Abuse[T].Ov;
    double Limit = std::max(3.0 * B.P99Ms, B.P99Ms + 2.0);
    if (A.P99Ms > Limit) {
      std::fprintf(stderr,
                   "%s: p99 degraded %.2fms -> %.2fms (limit %.2fms)\n",
                   A.Tenant.c_str(), B.P99Ms, A.P99Ms, Limit);
      Violation = true;
    }
    if (A.ShedRate >= 0.01) {
      std::fprintf(stderr, "%s: shed rate %.2f%% under abuse (limit 1%%)\n",
                   A.Tenant.c_str(), A.ShedRate * 100);
      Violation = true;
    }
  }
  if (Violation) {
    std::fprintf(stderr, "\ngraceful degradation violated — see above\n");
    return 1;
  }
  std::printf("\npolite tenants: p99 within 3x baseline, shed rate < 1%% "
              "under abuse\n");

  std::string SchemaErr = validateBenchJson(Report.json());
  if (!SchemaErr.empty()) {
    std::fprintf(stderr, "BENCH_overload.json schema violation: %s\n",
                 SchemaErr.c_str());
    return 1;
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
