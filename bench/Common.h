//===- bench/Common.h - Shared benchmark harness helpers --------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table-producing benchmark binaries: the
/// benchmark/configuration matrix, timing, scaling, and aligned table
/// printing in the style of the paper's Figure 9 (values relative to the
/// `perceus` configuration; lower is better).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BENCH_COMMON_H
#define PERCEUS_BENCH_COMMON_H

#include "eval/Runner.h"
#include "programs/Programs.h"
#include "support/Telemetry.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace perceus {
namespace bench {

/// One benchmark program of the paper's Section 4.
struct BenchProgram {
  const char *Name;
  const char *Source;
  const char *Entry;
  int64_t BaseScale; ///< workload size at --scale=1
  std::function<int64_t(int64_t)> Native; ///< nullptr: no C++ version (×)
};

/// The five programs of Figure 9.
std::vector<BenchProgram> figure9Programs(double Scale);

/// Service-mode telemetry attached to a row (bench_service): admission
/// outcome and latency split. Rows with Present=false omit the object.
/// Mirrors the "service" object of perceus-stats-v1 without depending on
/// src/service — bench stays linkable without the service library.
struct ServiceInfo {
  bool Present = false;
  std::string Status = "ok"; ///< rejectKindName() vocabulary
  std::string Tenant = "default";
  bool Executed = true;
  bool CacheHit = false;
  bool HeapEmpty = true;
  uint64_t Worker = 0;
  double QueueMs = 0;
  double RunMs = 0;
  uint64_t RetryAfterMs = 0;
  uint64_t RetainedBytes = 0;
};

/// Per-tenant overload telemetry attached to a row (bench_overload):
/// open-loop latency percentiles, shed rate, and admission-rejection
/// breakdown for one tenant of a multi-tenant mix. Rows with
/// Present=false omit the object.
struct OverloadInfo {
  bool Present = false;
  std::string Tenant;
  bool Abusive = false;   ///< the tenant driving the overload
  uint64_t Requests = 0;  ///< submitted by this tenant
  uint64_t Executed = 0;  ///< ran on a worker
  uint64_t Shed = 0;      ///< admitted then shed (deadline in queue, stop)
  uint64_t RejectedRateLimited = 0;
  uint64_t RejectedTenantQuota = 0;
  uint64_t RejectedQueueFull = 0;
  uint64_t RejectedCircuitOpen = 0;
  double ShedRate = 0;    ///< (shed + rejections) / requests
  double P50Ms = 0;       ///< end-to-end latency of executed requests
  double P99Ms = 0;
  double MeanMs = 0;
  uint64_t RetainedPeakBytes = 0; ///< worst worker-retained bytes observed
};

/// Per-shard front-end telemetry attached to a row (bench_net): one
/// row per shard of the sharded socket dispatcher, showing that cache,
/// quota, and shed state stay isolated per shard. Rows with
/// Present=false omit the object.
struct ShardInfo {
  bool Present = false;
  uint64_t Shard = 0;          ///< shard index in the front end
  uint64_t Requests = 0;       ///< submitted to this shard
  uint64_t Executed = 0;       ///< ran on one of the shard's workers
  uint64_t CacheHits = 0;      ///< artifact-cache hits (shard-local cache)
  uint64_t CacheCompiles = 0;  ///< compiles (≥1 per shard touching a source)
  uint64_t CacheEvictions = 0; ///< shard-local LRU evictions
  uint64_t Sheds = 0;          ///< shed + admission rejections on this shard
  double Qps = 0;              ///< executed / wall-clock of the phase
};

/// One measured cell of the table.
struct Measurement {
  bool Ran = false;
  double Seconds = 0;
  size_t PeakBytes = 0;
  int64_t Checksum = 0;
  HeapStats Heap;
  RunResult Run;
  ServiceInfo Svc;  ///< service-mode rows only (see ServiceInfo)
  OverloadInfo Ov;  ///< overload-mix rows only (see OverloadInfo)
  ShardInfo Shard;  ///< sharded-front-end rows only (see ShardInfo)
};

/// Runs \p Prog under \p Config on the engine \p EC selects, once, and
/// measures it. When \p EC.Sink is non-null it is installed on the heap
/// for the run, so per-site RC event attribution rides along (note: the
/// hooked run is slower; don't compare its time against unhooked rows).
Measurement measure(const BenchProgram &Prog, const PassConfig &Config,
                    const EngineConfig &EC);

/// Back-compat overload: CEK engine, optional sink.
Measurement measure(const BenchProgram &Prog, const PassConfig &Config,
                    StatsSink *Sink = nullptr);

/// Runs the native C++ version (time only).
Measurement measureNative(const BenchProgram &Prog);

/// Prints one relative-value table (the Figure 9 format): rows =
/// configurations, columns = benchmarks, normalized to the first
/// configuration row.
void printRelativeTable(const char *Title, const char *Unit,
                        const std::vector<std::string> &RowNames,
                        const std::vector<std::string> &ColNames,
                        const std::vector<std::vector<double>> &Values);

/// Parses `--scale=X` (default 1.0) from argv.
double parseScale(int Argc, char **Argv, double Default = 1.0);

/// Parses `--engine=cek|vm` (default \p Default) from argv — the one
/// engine-selection flag every harness shares with the perc CLI. Prints
/// an error and exits on an unknown engine name.
EngineKind parseEngine(int Argc, char **Argv,
                       EngineKind Default = EngineKind::Cek);

/// Machine-readable results ("perceus-bench-v1"): every harness appends
/// one row per benchmark × configuration and writes `BENCH_<name>.json`
/// at the repository root — the artifact CI uploads and the bench
/// trajectory is built from.
class BenchReport {
public:
  /// \p Bench is the harness name ("fig9", "rcops", ...); \p Scale the
  /// workload scale the run used (0 when not applicable).
  BenchReport(std::string Bench, double Scale);

  /// Appends one measured cell.
  void add(std::string Benchmark, std::string Config, const Measurement &M);

  /// The complete JSON document.
  std::string json() const;

  /// Writes the document to \p Path, or to the default
  /// `<repo>/BENCH_<name>.json` when \p Path is empty. Returns false
  /// (with a message on stderr) when the file cannot be written.
  bool write(const std::string &Path = std::string()) const;

  /// Default output path for harness \p Bench.
  static std::string defaultPath(const std::string &Bench);

private:
  std::string Bench;
  double Scale;
  struct Row {
    std::string Benchmark;
    std::string Config;
    Measurement M;
  };
  std::vector<Row> Rows;
};

/// Parses `--json=PATH` / `--no-json` from argv. Returns the explicit
/// path, the default path for \p Bench when neither flag is given, or
/// an empty string when `--no-json` disables emission.
std::string parseJsonPath(const char *Bench, int Argc, char **Argv);

/// Checks \p Text against the "perceus-bench-v1" schema. Returns an
/// empty string when valid, else a description of the first violation.
std::string validateBenchJson(std::string_view Text);

} // namespace bench
} // namespace perceus

#endif // PERCEUS_BENCH_COMMON_H
