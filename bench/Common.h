//===- bench/Common.h - Shared benchmark harness helpers --------*- C++-*-===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table-producing benchmark binaries: the
/// benchmark/configuration matrix, timing, scaling, and aligned table
/// printing in the style of the paper's Figure 9 (values relative to the
/// `perceus` configuration; lower is better).
///
//===----------------------------------------------------------------------===//

#ifndef PERCEUS_BENCH_COMMON_H
#define PERCEUS_BENCH_COMMON_H

#include "eval/Runner.h"
#include "programs/Programs.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

namespace perceus {
namespace bench {

/// One benchmark program of the paper's Section 4.
struct BenchProgram {
  const char *Name;
  const char *Source;
  const char *Entry;
  int64_t BaseScale; ///< workload size at --scale=1
  std::function<int64_t(int64_t)> Native; ///< nullptr: no C++ version (×)
};

/// The five programs of Figure 9.
std::vector<BenchProgram> figure9Programs(double Scale);

/// One measured cell of the table.
struct Measurement {
  bool Ran = false;
  double Seconds = 0;
  size_t PeakBytes = 0;
  int64_t Checksum = 0;
  HeapStats Heap;
  RunResult Run;
};

/// Runs \p Prog under \p Config once and measures it.
Measurement measure(const BenchProgram &Prog, const PassConfig &Config);

/// Runs the native C++ version (time only).
Measurement measureNative(const BenchProgram &Prog);

/// Prints one relative-value table (the Figure 9 format): rows =
/// configurations, columns = benchmarks, normalized to the first
/// configuration row.
void printRelativeTable(const char *Title, const char *Unit,
                        const std::vector<std::string> &RowNames,
                        const std::vector<std::string> &ColNames,
                        const std::vector<std::vector<double>> &Values);

/// Parses `--scale=X` (default 1.0) from argv.
double parseScale(int Argc, char **Argv, double Default = 1.0);

} // namespace bench
} // namespace perceus

#endif // PERCEUS_BENCH_COMMON_H
