//===- bench/bench_fig11.cpp - Figure 11: the second machine -------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 11 of the paper is Figure 9 re-run on a second machine (an
/// Intel i9-7900X there). The experiment is identical; only the machine
/// differs — so this binary *is* the Figure 9 harness, and reproducing
/// Figure 11 means running it on different hardware. The paper's claim
/// carried by the figure (the relative shape is machine-independent) is
/// approximated here with a built-in scale sweep: the orderings must
/// agree across workload sizes on this machine.
///
//===----------------------------------------------------------------------===//

#include "Common.h"

using namespace perceus;
using namespace perceus::bench;

int main(int Argc, char **Argv) {
  std::printf("Figure 11 = Figure 9 on another machine. Running the "
              "scale-stability check instead\n(run bench_fig9 on a second "
              "machine for the literal reproduction).\n");
  std::string JsonPath = parseJsonPath("fig11", Argc, Argv);
  // The sweep visits several scales; the report's scale field carries
  // the largest one and each row is tagged "<benchmark>@<scale>".
  BenchReport Report("fig11", 1.0);

  std::vector<PassConfig> Configs = {
      PassConfig::perceusFull(), PassConfig::scoped(), PassConfig::gc()};
  const char *Names[] = {"perceus", "scoped-rc", "gc"};

  for (double Scale : {0.25, 0.5, 1.0}) {
    std::printf("\n--scale=%.2f (peak-memory ordering per benchmark):\n",
                Scale);
    for (const BenchProgram &Prog : figure9Programs(Scale)) {
      size_t Peaks[3] = {0, 0, 0};
      for (size_t I = 0; I != Configs.size(); ++I) {
        Measurement M = measure(Prog, Configs[I]);
        char Tag[64];
        std::snprintf(Tag, sizeof(Tag), "%s@%.2f", Prog.Name, Scale);
        Report.add(Tag, Names[I], M);
        Peaks[I] = M.Ran ? M.PeakBytes : 0;
      }
      bool PerceusBest = Peaks[0] <= Peaks[1] && Peaks[0] <= Peaks[2];
      std::printf("  %-10s perceus=%.2fMB scoped=%.2fMB gc=%.2fMB  %s\n",
                  Prog.Name, Peaks[0] / 1048576.0, Peaks[1] / 1048576.0,
                  Peaks[2] / 1048576.0,
                  PerceusBest ? "[perceus lowest: ok]"
                              : "[ORDERING CHANGED]");
    }
  }
  if (!JsonPath.empty() && !Report.write(JsonPath))
    return 1;
  return 0;
}
