//===- bench/bench_fig1_map.cpp - Figure 1: the map pipeline ------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 1: prints the seven transformation stages of the
/// polymorphic `map` function — (a) source, (b) dup/drop insertion,
/// (c) drop specialization, (d) fusion, (e) reuse token insertion,
/// (f) drop-reuse specialization, (g) fusion — and then, as the dynamic
/// counterpart, the executed RC-operation counts of `map` over a 100k
/// list under each ablation of the pass pipeline.
///
//===----------------------------------------------------------------------===//

#include "Common.h"

#include "lang/Resolver.h"

using namespace perceus;
using namespace perceus::bench;

int main(int Argc, char **Argv) {
  // Part 1: the static stages (Figure 1 a-g).
  {
    Program P;
    DiagnosticEngine Diags;
    if (!compileSource(mapSumSource(), P, Diags)) {
      std::printf("compile error:\n%s", Diags.str().c_str());
      return 1;
    }
    FuncId MapF = P.findFunction(P.symbols().intern("map"));
    std::vector<StageDump> Stages = runPipelineWithStages(P, MapF);
    std::printf("Figure 1: transformation stages of map\n");
    for (const StageDump &S : Stages) {
      std::printf("\n----- %s -----\n%s", S.Stage.c_str(), S.Text.c_str());
    }
  }

  // Part 2: dynamic RC-operation counts per ablation.
  int64_t N = 100000;
  BenchProgram Prog{"mapsum", mapSumSource(), "bench_mapsum", N, nullptr};

  struct Ablation {
    const char *Name;
    PassConfig Config;
  };
  PassConfig OnlyDropSpec = PassConfig::perceusNoOpt();
  OnlyDropSpec.EnableDropSpec = true;
  PassConfig DropSpecFusion = OnlyDropSpec;
  DropSpecFusion.EnableFusion = true;
  PassConfig ReuseNoSpec = PassConfig::perceusFull();
  ReuseNoSpec.EnableReuseSpec = false;

  std::vector<Ablation> Ablations = {
      {"(b) insertion only", PassConfig::perceusNoOpt()},
      {"(c) + drop specialization", OnlyDropSpec},
      {"(d) + fusion", DropSpecFusion},
      {"(e/f/g) + reuse", ReuseNoSpec},
      {"full (+ reuse spec)", PassConfig::perceusFull()},
  };

  std::printf("\nDynamic counts for map+sum over a %lld-element list:\n",
              (long long)N);
  std::printf("  %-28s %10s %10s %10s %10s %10s\n", "pipeline stage", "dup",
              "drop", "decref", "allocs", "reuses");
  for (const Ablation &A : Ablations) {
    Measurement M = measure(Prog, A.Config);
    if (!M.Ran) {
      std::printf("  %-28s failed\n", A.Name);
      continue;
    }
    std::printf("  %-28s %10llu %10llu %10llu %10llu %10llu\n", A.Name,
                (unsigned long long)M.Heap.DupOps,
                (unsigned long long)M.Heap.DropOps,
                (unsigned long long)M.Heap.DecRefOps,
                (unsigned long long)M.Heap.Allocs,
                (unsigned long long)M.Run.ReuseHits);
  }
  return 0;
}
