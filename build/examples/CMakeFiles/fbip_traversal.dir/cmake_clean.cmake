file(REMOVE_RECURSE
  "CMakeFiles/fbip_traversal.dir/fbip_traversal.cpp.o"
  "CMakeFiles/fbip_traversal.dir/fbip_traversal.cpp.o.d"
  "fbip_traversal"
  "fbip_traversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fbip_traversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
