# Empty dependencies file for fbip_traversal.
# This may be replaced when dependencies are built.
