file(REMOVE_RECURSE
  "CMakeFiles/perc.dir/perc.cpp.o"
  "CMakeFiles/perc.dir/perc.cpp.o.d"
  "perc"
  "perc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
