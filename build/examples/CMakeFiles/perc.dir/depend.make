# Empty dependencies file for perc.
# This may be replaced when dependencies are built.
