# Empty compiler generated dependencies file for persistent_rbtree.
# This may be replaced when dependencies are built.
