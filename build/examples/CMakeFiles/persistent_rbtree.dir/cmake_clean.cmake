file(REMOVE_RECURSE
  "CMakeFiles/persistent_rbtree.dir/persistent_rbtree.cpp.o"
  "CMakeFiles/persistent_rbtree.dir/persistent_rbtree.cpp.o.d"
  "persistent_rbtree"
  "persistent_rbtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_rbtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
