file(REMOVE_RECURSE
  "CMakeFiles/perceus_lang.dir/Lexer.cpp.o"
  "CMakeFiles/perceus_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/perceus_lang.dir/Parser.cpp.o"
  "CMakeFiles/perceus_lang.dir/Parser.cpp.o.d"
  "CMakeFiles/perceus_lang.dir/Resolver.cpp.o"
  "CMakeFiles/perceus_lang.dir/Resolver.cpp.o.d"
  "libperceus_lang.a"
  "libperceus_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
