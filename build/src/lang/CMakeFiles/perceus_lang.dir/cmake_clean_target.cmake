file(REMOVE_RECURSE
  "libperceus_lang.a"
)
