# Empty dependencies file for perceus_lang.
# This may be replaced when dependencies are built.
