
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/FreeVars.cpp" "src/analysis/CMakeFiles/perceus_analysis.dir/FreeVars.cpp.o" "gcc" "src/analysis/CMakeFiles/perceus_analysis.dir/FreeVars.cpp.o.d"
  "/root/repo/src/analysis/LinearCheck.cpp" "src/analysis/CMakeFiles/perceus_analysis.dir/LinearCheck.cpp.o" "gcc" "src/analysis/CMakeFiles/perceus_analysis.dir/LinearCheck.cpp.o.d"
  "/root/repo/src/analysis/Verifier.cpp" "src/analysis/CMakeFiles/perceus_analysis.dir/Verifier.cpp.o" "gcc" "src/analysis/CMakeFiles/perceus_analysis.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/perceus_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
