file(REMOVE_RECURSE
  "libperceus_analysis.a"
)
