# Empty compiler generated dependencies file for perceus_analysis.
# This may be replaced when dependencies are built.
