file(REMOVE_RECURSE
  "CMakeFiles/perceus_analysis.dir/FreeVars.cpp.o"
  "CMakeFiles/perceus_analysis.dir/FreeVars.cpp.o.d"
  "CMakeFiles/perceus_analysis.dir/LinearCheck.cpp.o"
  "CMakeFiles/perceus_analysis.dir/LinearCheck.cpp.o.d"
  "CMakeFiles/perceus_analysis.dir/Verifier.cpp.o"
  "CMakeFiles/perceus_analysis.dir/Verifier.cpp.o.d"
  "libperceus_analysis.a"
  "libperceus_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
