
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perceus/Borrow.cpp" "src/perceus/CMakeFiles/perceus_passes.dir/Borrow.cpp.o" "gcc" "src/perceus/CMakeFiles/perceus_passes.dir/Borrow.cpp.o.d"
  "/root/repo/src/perceus/DropSpec.cpp" "src/perceus/CMakeFiles/perceus_passes.dir/DropSpec.cpp.o" "gcc" "src/perceus/CMakeFiles/perceus_passes.dir/DropSpec.cpp.o.d"
  "/root/repo/src/perceus/Fusion.cpp" "src/perceus/CMakeFiles/perceus_passes.dir/Fusion.cpp.o" "gcc" "src/perceus/CMakeFiles/perceus_passes.dir/Fusion.cpp.o.d"
  "/root/repo/src/perceus/Perceus.cpp" "src/perceus/CMakeFiles/perceus_passes.dir/Perceus.cpp.o" "gcc" "src/perceus/CMakeFiles/perceus_passes.dir/Perceus.cpp.o.d"
  "/root/repo/src/perceus/Pipeline.cpp" "src/perceus/CMakeFiles/perceus_passes.dir/Pipeline.cpp.o" "gcc" "src/perceus/CMakeFiles/perceus_passes.dir/Pipeline.cpp.o.d"
  "/root/repo/src/perceus/Reuse.cpp" "src/perceus/CMakeFiles/perceus_passes.dir/Reuse.cpp.o" "gcc" "src/perceus/CMakeFiles/perceus_passes.dir/Reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/perceus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/perceus_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
