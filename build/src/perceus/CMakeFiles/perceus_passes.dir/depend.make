# Empty dependencies file for perceus_passes.
# This may be replaced when dependencies are built.
