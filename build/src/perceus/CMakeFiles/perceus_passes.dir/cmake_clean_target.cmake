file(REMOVE_RECURSE
  "libperceus_passes.a"
)
