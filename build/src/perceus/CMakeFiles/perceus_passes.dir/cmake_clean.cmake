file(REMOVE_RECURSE
  "CMakeFiles/perceus_passes.dir/Borrow.cpp.o"
  "CMakeFiles/perceus_passes.dir/Borrow.cpp.o.d"
  "CMakeFiles/perceus_passes.dir/DropSpec.cpp.o"
  "CMakeFiles/perceus_passes.dir/DropSpec.cpp.o.d"
  "CMakeFiles/perceus_passes.dir/Fusion.cpp.o"
  "CMakeFiles/perceus_passes.dir/Fusion.cpp.o.d"
  "CMakeFiles/perceus_passes.dir/Perceus.cpp.o"
  "CMakeFiles/perceus_passes.dir/Perceus.cpp.o.d"
  "CMakeFiles/perceus_passes.dir/Pipeline.cpp.o"
  "CMakeFiles/perceus_passes.dir/Pipeline.cpp.o.d"
  "CMakeFiles/perceus_passes.dir/Reuse.cpp.o"
  "CMakeFiles/perceus_passes.dir/Reuse.cpp.o.d"
  "libperceus_passes.a"
  "libperceus_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
