# Empty compiler generated dependencies file for perceus_ir.
# This may be replaced when dependencies are built.
