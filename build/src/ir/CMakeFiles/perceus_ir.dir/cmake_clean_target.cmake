file(REMOVE_RECURSE
  "libperceus_ir.a"
)
