file(REMOVE_RECURSE
  "CMakeFiles/perceus_ir.dir/Printer.cpp.o"
  "CMakeFiles/perceus_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/perceus_ir.dir/Rewrite.cpp.o"
  "CMakeFiles/perceus_ir.dir/Rewrite.cpp.o.d"
  "libperceus_ir.a"
  "libperceus_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
