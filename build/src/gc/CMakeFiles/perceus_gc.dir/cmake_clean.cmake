file(REMOVE_RECURSE
  "CMakeFiles/perceus_gc.dir/MarkSweep.cpp.o"
  "CMakeFiles/perceus_gc.dir/MarkSweep.cpp.o.d"
  "libperceus_gc.a"
  "libperceus_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
