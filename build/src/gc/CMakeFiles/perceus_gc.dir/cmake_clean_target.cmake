file(REMOVE_RECURSE
  "libperceus_gc.a"
)
