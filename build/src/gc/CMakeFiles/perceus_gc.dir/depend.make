# Empty dependencies file for perceus_gc.
# This may be replaced when dependencies are built.
