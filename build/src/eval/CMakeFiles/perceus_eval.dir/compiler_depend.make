# Empty compiler generated dependencies file for perceus_eval.
# This may be replaced when dependencies are built.
