file(REMOVE_RECURSE
  "libperceus_eval.a"
)
