
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/Layout.cpp" "src/eval/CMakeFiles/perceus_eval.dir/Layout.cpp.o" "gcc" "src/eval/CMakeFiles/perceus_eval.dir/Layout.cpp.o.d"
  "/root/repo/src/eval/Machine.cpp" "src/eval/CMakeFiles/perceus_eval.dir/Machine.cpp.o" "gcc" "src/eval/CMakeFiles/perceus_eval.dir/Machine.cpp.o.d"
  "/root/repo/src/eval/Runner.cpp" "src/eval/CMakeFiles/perceus_eval.dir/Runner.cpp.o" "gcc" "src/eval/CMakeFiles/perceus_eval.dir/Runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/perceus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/perceus_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/perceus_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/perceus/CMakeFiles/perceus_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/perceus_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/perceus_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
