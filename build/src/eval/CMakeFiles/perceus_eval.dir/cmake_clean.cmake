file(REMOVE_RECURSE
  "CMakeFiles/perceus_eval.dir/Layout.cpp.o"
  "CMakeFiles/perceus_eval.dir/Layout.cpp.o.d"
  "CMakeFiles/perceus_eval.dir/Machine.cpp.o"
  "CMakeFiles/perceus_eval.dir/Machine.cpp.o.d"
  "CMakeFiles/perceus_eval.dir/Runner.cpp.o"
  "CMakeFiles/perceus_eval.dir/Runner.cpp.o.d"
  "libperceus_eval.a"
  "libperceus_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
