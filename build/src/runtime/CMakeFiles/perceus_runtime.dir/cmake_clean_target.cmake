file(REMOVE_RECURSE
  "libperceus_runtime.a"
)
