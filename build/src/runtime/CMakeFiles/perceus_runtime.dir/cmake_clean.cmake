file(REMOVE_RECURSE
  "CMakeFiles/perceus_runtime.dir/Heap.cpp.o"
  "CMakeFiles/perceus_runtime.dir/Heap.cpp.o.d"
  "libperceus_runtime.a"
  "libperceus_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
