# Empty compiler generated dependencies file for perceus_runtime.
# This may be replaced when dependencies are built.
