
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/calculus/Generator.cpp" "src/calculus/CMakeFiles/perceus_calculus.dir/Generator.cpp.o" "gcc" "src/calculus/CMakeFiles/perceus_calculus.dir/Generator.cpp.o.d"
  "/root/repo/src/calculus/SubstEval.cpp" "src/calculus/CMakeFiles/perceus_calculus.dir/SubstEval.cpp.o" "gcc" "src/calculus/CMakeFiles/perceus_calculus.dir/SubstEval.cpp.o.d"
  "/root/repo/src/calculus/TermMachine.cpp" "src/calculus/CMakeFiles/perceus_calculus.dir/TermMachine.cpp.o" "gcc" "src/calculus/CMakeFiles/perceus_calculus.dir/TermMachine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/perceus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/perceus_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
