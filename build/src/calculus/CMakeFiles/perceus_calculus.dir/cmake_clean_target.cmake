file(REMOVE_RECURSE
  "libperceus_calculus.a"
)
