# Empty dependencies file for perceus_calculus.
# This may be replaced when dependencies are built.
