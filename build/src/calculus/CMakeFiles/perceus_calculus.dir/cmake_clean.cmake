file(REMOVE_RECURSE
  "CMakeFiles/perceus_calculus.dir/Generator.cpp.o"
  "CMakeFiles/perceus_calculus.dir/Generator.cpp.o.d"
  "CMakeFiles/perceus_calculus.dir/SubstEval.cpp.o"
  "CMakeFiles/perceus_calculus.dir/SubstEval.cpp.o.d"
  "CMakeFiles/perceus_calculus.dir/TermMachine.cpp.o"
  "CMakeFiles/perceus_calculus.dir/TermMachine.cpp.o.d"
  "libperceus_calculus.a"
  "libperceus_calculus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_calculus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
