# Empty dependencies file for perceus_programs.
# This may be replaced when dependencies are built.
