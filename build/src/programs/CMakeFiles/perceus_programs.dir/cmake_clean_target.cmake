file(REMOVE_RECURSE
  "libperceus_programs.a"
)
