file(REMOVE_RECURSE
  "CMakeFiles/perceus_programs.dir/Programs.cpp.o"
  "CMakeFiles/perceus_programs.dir/Programs.cpp.o.d"
  "libperceus_programs.a"
  "libperceus_programs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
