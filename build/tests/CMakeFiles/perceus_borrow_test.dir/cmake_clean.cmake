file(REMOVE_RECURSE
  "CMakeFiles/perceus_borrow_test.dir/perceus/borrow_test.cpp.o"
  "CMakeFiles/perceus_borrow_test.dir/perceus/borrow_test.cpp.o.d"
  "perceus_borrow_test"
  "perceus_borrow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_borrow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
