# Empty compiler generated dependencies file for perceus_borrow_test.
# This may be replaced when dependencies are built.
