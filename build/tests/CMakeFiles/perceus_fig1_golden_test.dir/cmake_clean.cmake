file(REMOVE_RECURSE
  "CMakeFiles/perceus_fig1_golden_test.dir/perceus/fig1_golden_test.cpp.o"
  "CMakeFiles/perceus_fig1_golden_test.dir/perceus/fig1_golden_test.cpp.o.d"
  "perceus_fig1_golden_test"
  "perceus_fig1_golden_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_fig1_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
