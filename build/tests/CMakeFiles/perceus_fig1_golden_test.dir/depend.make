# Empty dependencies file for perceus_fig1_golden_test.
# This may be replaced when dependencies are built.
