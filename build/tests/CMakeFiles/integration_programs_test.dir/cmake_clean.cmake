file(REMOVE_RECURSE
  "CMakeFiles/integration_programs_test.dir/integration/programs_test.cpp.o"
  "CMakeFiles/integration_programs_test.dir/integration/programs_test.cpp.o.d"
  "integration_programs_test"
  "integration_programs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_programs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
