# Empty compiler generated dependencies file for integration_programs_test.
# This may be replaced when dependencies are built.
