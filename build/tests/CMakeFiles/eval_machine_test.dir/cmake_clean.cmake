file(REMOVE_RECURSE
  "CMakeFiles/eval_machine_test.dir/eval/machine_test.cpp.o"
  "CMakeFiles/eval_machine_test.dir/eval/machine_test.cpp.o.d"
  "eval_machine_test"
  "eval_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
