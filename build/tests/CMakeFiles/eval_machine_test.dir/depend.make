# Empty dependencies file for eval_machine_test.
# This may be replaced when dependencies are built.
