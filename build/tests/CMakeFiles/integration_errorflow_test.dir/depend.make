# Empty dependencies file for integration_errorflow_test.
# This may be replaced when dependencies are built.
