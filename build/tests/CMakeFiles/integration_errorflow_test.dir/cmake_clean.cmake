file(REMOVE_RECURSE
  "CMakeFiles/integration_errorflow_test.dir/integration/errorflow_test.cpp.o"
  "CMakeFiles/integration_errorflow_test.dir/integration/errorflow_test.cpp.o.d"
  "integration_errorflow_test"
  "integration_errorflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_errorflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
