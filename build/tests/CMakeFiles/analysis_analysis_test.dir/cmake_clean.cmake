file(REMOVE_RECURSE
  "CMakeFiles/analysis_analysis_test.dir/analysis/analysis_test.cpp.o"
  "CMakeFiles/analysis_analysis_test.dir/analysis/analysis_test.cpp.o.d"
  "analysis_analysis_test"
  "analysis_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
