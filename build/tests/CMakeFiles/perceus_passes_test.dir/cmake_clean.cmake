file(REMOVE_RECURSE
  "CMakeFiles/perceus_passes_test.dir/perceus/passes_test.cpp.o"
  "CMakeFiles/perceus_passes_test.dir/perceus/passes_test.cpp.o.d"
  "perceus_passes_test"
  "perceus_passes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_passes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
