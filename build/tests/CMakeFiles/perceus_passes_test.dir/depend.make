# Empty dependencies file for perceus_passes_test.
# This may be replaced when dependencies are built.
