file(REMOVE_RECURSE
  "CMakeFiles/runtime_heap_test.dir/runtime/heap_test.cpp.o"
  "CMakeFiles/runtime_heap_test.dir/runtime/heap_test.cpp.o.d"
  "runtime_heap_test"
  "runtime_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
