file(REMOVE_RECURSE
  "CMakeFiles/calculus_metatheory_test.dir/calculus/metatheory_test.cpp.o"
  "CMakeFiles/calculus_metatheory_test.dir/calculus/metatheory_test.cpp.o.d"
  "calculus_metatheory_test"
  "calculus_metatheory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculus_metatheory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
