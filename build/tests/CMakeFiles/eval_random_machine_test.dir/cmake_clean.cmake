file(REMOVE_RECURSE
  "CMakeFiles/eval_random_machine_test.dir/eval/random_machine_test.cpp.o"
  "CMakeFiles/eval_random_machine_test.dir/eval/random_machine_test.cpp.o.d"
  "eval_random_machine_test"
  "eval_random_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_random_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
