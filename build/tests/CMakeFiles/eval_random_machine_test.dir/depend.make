# Empty dependencies file for eval_random_machine_test.
# This may be replaced when dependencies are built.
