# Empty dependencies file for calculus_termmachine_test.
# This may be replaced when dependencies are built.
