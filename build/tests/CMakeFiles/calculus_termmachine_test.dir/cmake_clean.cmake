file(REMOVE_RECURSE
  "CMakeFiles/calculus_termmachine_test.dir/calculus/termmachine_test.cpp.o"
  "CMakeFiles/calculus_termmachine_test.dir/calculus/termmachine_test.cpp.o.d"
  "calculus_termmachine_test"
  "calculus_termmachine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calculus_termmachine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
