file(REMOVE_RECURSE
  "CMakeFiles/lang_resolver_test.dir/lang/resolver_test.cpp.o"
  "CMakeFiles/lang_resolver_test.dir/lang/resolver_test.cpp.o.d"
  "lang_resolver_test"
  "lang_resolver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lang_resolver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
