# Empty dependencies file for lang_resolver_test.
# This may be replaced when dependencies are built.
