
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang/fuzz_test.cpp" "tests/CMakeFiles/lang_fuzz_test.dir/lang/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/lang_fuzz_test.dir/lang/fuzz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/perceus_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/perceus/CMakeFiles/perceus_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/perceus_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/perceus_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/perceus_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/perceus_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/perceus_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/calculus/CMakeFiles/perceus_calculus.dir/DependInfo.cmake"
  "/root/repo/build/src/programs/CMakeFiles/perceus_programs.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/perceus_native.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/perceus_bench_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
