file(REMOVE_RECURSE
  "CMakeFiles/eval_mutref_test.dir/eval/mutref_test.cpp.o"
  "CMakeFiles/eval_mutref_test.dir/eval/mutref_test.cpp.o.d"
  "eval_mutref_test"
  "eval_mutref_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_mutref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
