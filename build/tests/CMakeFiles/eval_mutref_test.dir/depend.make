# Empty dependencies file for eval_mutref_test.
# This may be replaced when dependencies are built.
