# Empty compiler generated dependencies file for perceus_bench_common.
# This may be replaced when dependencies are built.
