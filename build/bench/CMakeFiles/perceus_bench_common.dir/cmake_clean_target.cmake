file(REMOVE_RECURSE
  "libperceus_bench_common.a"
)
