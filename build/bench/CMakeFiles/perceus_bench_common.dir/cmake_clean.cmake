file(REMOVE_RECURSE
  "CMakeFiles/perceus_bench_common.dir/Common.cpp.o"
  "CMakeFiles/perceus_bench_common.dir/Common.cpp.o.d"
  "libperceus_bench_common.a"
  "libperceus_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
