file(REMOVE_RECURSE
  "CMakeFiles/bench_heap.dir/bench_heap.cpp.o"
  "CMakeFiles/bench_heap.dir/bench_heap.cpp.o.d"
  "bench_heap"
  "bench_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
