# Empty compiler generated dependencies file for bench_heap.
# This may be replaced when dependencies are built.
