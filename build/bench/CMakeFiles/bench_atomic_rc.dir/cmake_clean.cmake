file(REMOVE_RECURSE
  "CMakeFiles/bench_atomic_rc.dir/bench_atomic_rc.cpp.o"
  "CMakeFiles/bench_atomic_rc.dir/bench_atomic_rc.cpp.o.d"
  "bench_atomic_rc"
  "bench_atomic_rc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_atomic_rc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
