# Empty dependencies file for bench_atomic_rc.
# This may be replaced when dependencies are built.
