# Empty dependencies file for bench_rcops.
# This may be replaced when dependencies are built.
