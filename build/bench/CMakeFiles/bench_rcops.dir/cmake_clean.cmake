file(REMOVE_RECURSE
  "CMakeFiles/bench_rcops.dir/bench_rcops.cpp.o"
  "CMakeFiles/bench_rcops.dir/bench_rcops.cpp.o.d"
  "bench_rcops"
  "bench_rcops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rcops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
