file(REMOVE_RECURSE
  "CMakeFiles/bench_borrow.dir/bench_borrow.cpp.o"
  "CMakeFiles/bench_borrow.dir/bench_borrow.cpp.o.d"
  "bench_borrow"
  "bench_borrow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_borrow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
