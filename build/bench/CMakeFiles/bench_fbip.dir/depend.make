# Empty dependencies file for bench_fbip.
# This may be replaced when dependencies are built.
