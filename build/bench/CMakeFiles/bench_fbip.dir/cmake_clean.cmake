file(REMOVE_RECURSE
  "CMakeFiles/bench_fbip.dir/bench_fbip.cpp.o"
  "CMakeFiles/bench_fbip.dir/bench_fbip.cpp.o.d"
  "bench_fbip"
  "bench_fbip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fbip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
