file(REMOVE_RECURSE
  "libperceus_native.a"
)
