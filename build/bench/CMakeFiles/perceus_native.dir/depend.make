# Empty dependencies file for perceus_native.
# This may be replaced when dependencies are built.
