file(REMOVE_RECURSE
  "CMakeFiles/perceus_native.dir/native/Native.cpp.o"
  "CMakeFiles/perceus_native.dir/native/Native.cpp.o.d"
  "libperceus_native.a"
  "libperceus_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceus_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
