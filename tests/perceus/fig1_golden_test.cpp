//===- tests/perceus/fig1_golden_test.cpp - Figure 1, byte-for-byte -----------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the pretty-printed output of every transformation stage of the
/// paper's Figure 1 on the exact `map` function the figure uses. Each
/// golden below mirrors the corresponding sub-figure:
///
///   (b) dup/drop insertion      — dup x; dup xx; drop xs; dup f
///   (c) drop specialization     — the is-unique test with free/decref
///   (d) fusion                  — the bare `free xs` fast path
///   (e) reuse token insertion   — val ru = drop-reuse(xs); Cons@ru
///   (f) drop-reuse specialization
///   (g) fusion                  — `&xs` with no RC ops on the fast path
///
//===----------------------------------------------------------------------===//

#include "lang/Resolver.h"
#include "perceus/Pipeline.h"

#include <gtest/gtest.h>

using namespace perceus;

namespace {

const char *MapOnly = R"(
type list {
  Cons(head, tail)
  Nil
}

fun map(xs, f) {
  match xs {
    Cons(x, xx) -> Cons(f(x), map(xx, f))
    Nil -> Nil
  }
}
)";

std::vector<StageDump> stages() {
  Program P;
  DiagnosticEngine D;
  EXPECT_TRUE(compileSource(MapOnly, P, D)) << D.str();
  FuncId F = P.findFunction(P.symbols().intern("map"));
  EXPECT_NE(F, InvalidId);
  return runPipelineWithStages(P, F);
}

TEST(Fig1Golden, StageA_Original) {
  EXPECT_EQ(stages()[0].Text,
            "fun map(xs, f) {\n"
            "  match xs {\n"
            "    Cons(x, xx) -> Cons(f(x), map(xx, f))\n"
            "    Nil -> Nil\n"
            "  }\n"
            "}\n");
}

TEST(Fig1Golden, StageB_DupDropInsertion) {
  EXPECT_EQ(stages()[1].Text,
            "fun map(xs, f) {\n"
            "  match xs {\n"
            "    Cons(x, xx) -> \n"
            "      dup x;\n"
            "      dup xx;\n"
            "      drop xs;\n"
            "      Cons((dup f; f)(x), map(xx, f))\n"
            "    Nil -> \n"
            "      drop xs;\n"
            "      drop f;\n"
            "      Nil\n"
            "  }\n"
            "}\n");
}

TEST(Fig1Golden, StageC_DropSpecialization) {
  EXPECT_EQ(stages()[2].Text,
            "fun map(xs, f) {\n"
            "  match xs {\n"
            "    Cons(x, xx) -> \n"
            "      dup x;\n"
            "      dup xx;\n"
            "      if is-unique(xs) then {\n"
            "        drop x;\n"
            "        drop xx;\n"
            "        free xs;\n"
            "        ()\n"
            "      } else {\n"
            "        decref xs;\n"
            "        ()\n"
            "      };\n"
            "      Cons((dup f; f)(x), map(xx, f))\n"
            "    Nil -> \n"
            "      drop xs;\n"
            "      drop f;\n"
            "      Nil\n"
            "  }\n"
            "}\n");
}

TEST(Fig1Golden, StageD_Fusion) {
  EXPECT_EQ(stages()[3].Text,
            "fun map(xs, f) {\n"
            "  match xs {\n"
            "    Cons(x, xx) -> \n"
            "      if is-unique(xs) then {\n"
            "        free xs;\n"
            "        ()\n"
            "      } else {\n"
            "        dup x;\n"
            "        dup xx;\n"
            "        decref xs;\n"
            "        ()\n"
            "      };\n"
            "      Cons((dup f; f)(x), map(xx, f))\n"
            "    Nil -> \n"
            "      drop xs;\n"
            "      drop f;\n"
            "      Nil\n"
            "  }\n"
            "}\n");
}

TEST(Fig1Golden, StageE_ReuseTokenInsertion) {
  EXPECT_EQ(stages()[4].Text,
            "fun map(xs, f) {\n"
            "  match xs {\n"
            "    Cons(x, xx) -> \n"
            "      dup x;\n"
            "      dup xx;\n"
            "      val ru.0 = drop-reuse(xs);\n"
            "      Cons@ru.0((dup f; f)(x), map(xx, f))\n"
            "    Nil -> \n"
            "      drop xs;\n"
            "      drop f;\n"
            "      Nil\n"
            "  }\n"
            "}\n");
}

TEST(Fig1Golden, StageF_DropReuseSpecialization) {
  EXPECT_EQ(stages()[5].Text,
            "fun map(xs, f) {\n"
            "  match xs {\n"
            "    Cons(x, xx) -> \n"
            "      dup x;\n"
            "      dup xx;\n"
            "      val ru.0 = if is-unique(xs) then {\n"
            "          drop x;\n"
            "          drop xx;\n"
            "          &xs\n"
            "        } else {\n"
            "          decref xs;\n"
            "          NULL\n"
            "        };\n"
            "      Cons@ru.0((dup f; f)(x), map(xx, f))\n"
            "    Nil -> \n"
            "      drop xs;\n"
            "      drop f;\n"
            "      Nil\n"
            "  }\n"
            "}\n");
}

TEST(Fig1Golden, StageG_FinalFusion) {
  // The paper's punchline: in the fast path, where xs is uniquely
  // owned, there are no more reference counting operations at all.
  EXPECT_EQ(stages()[6].Text,
            "fun map(xs, f) {\n"
            "  match xs {\n"
            "    Cons(x, xx) -> \n"
            "      val ru.0 = if is-unique(xs) then {\n"
            "          &xs\n"
            "        } else {\n"
            "          dup x;\n"
            "          dup xx;\n"
            "          decref xs;\n"
            "          NULL\n"
            "        };\n"
            "      Cons@ru.0((dup f; f)(x), map(xx, f))\n"
            "    Nil -> \n"
            "      drop xs;\n"
            "      drop f;\n"
            "      Nil\n"
            "  }\n"
            "}\n");
}

} // namespace
