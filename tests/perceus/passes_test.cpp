//===- tests/perceus/passes_test.cpp - Pass unit tests -------------------------===//
//
// Part of the perceus-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LinearCheck.h"
#include "analysis/Verifier.h"
#include "ir/Printer.h"
#include "lang/Resolver.h"
#include "perceus/DropSpec.h"
#include "perceus/Fusion.h"
#include "perceus/Perceus.h"
#include "perceus/Pipeline.h"
#include "perceus/Reuse.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace perceus;

namespace {

struct Compiled {
  std::unique_ptr<Program> P;
  FuncId F;

  std::string text() const { return printFunction(*P, F); }
  const Expr *body() const { return P->function(F).Body; }
};

Compiled compileFn(std::string_view Src, std::string_view Fn) {
  Compiled C;
  C.P = std::make_unique<Program>();
  DiagnosticEngine D;
  EXPECT_TRUE(compileSource(Src, *C.P, D)) << D.str();
  C.F = C.P->findFunction(C.P->symbols().intern(Fn));
  EXPECT_NE(C.F, InvalidId);
  return C;
}

/// Counts occurrences of \p Needle in \p Hay.
size_t countOf(const std::string &Hay, std::string_view Needle) {
  size_t Count = 0, Pos = 0;
  while ((Pos = Hay.find(Needle, Pos)) != std::string::npos) {
    ++Count;
    Pos += Needle.size();
  }
  return Count;
}

void expectClean(Program &P) {
  auto V = verifyProgram(P);
  EXPECT_TRUE(V.empty()) << (V.empty() ? "" : V.front());
  auto L = checkLinearity(P);
  EXPECT_TRUE(L.empty()) << (L.empty() ? "" : L.front());
}

//===----------------------------------------------------------------------===//
// Insertion (Figure 8)
//===----------------------------------------------------------------------===//

TEST(Insertion, SvarConsumesWithoutOps) {
  Compiled C = compileFn("fun id(x) { x }", "id");
  insertPerceus(*C.P);
  EXPECT_EQ(C.text(), "fun id(x) {\n  x\n}\n");
  expectClean(*C.P);
}

TEST(Insertion, UnusedParameterIsDroppedAtEntry) {
  Compiled C = compileFn("fun k(x, y) { x }", "k");
  insertPerceus(*C.P);
  // The paper's K combinator example: \x y. drop y; x.
  EXPECT_EQ(countOf(C.text(), "drop y"), 1u);
  expectClean(*C.P);
}

TEST(Insertion, SecondUseIsDuppedAtTheLeaf) {
  Compiled C = compileFn("type p { Pair(a, b) } fun d(x) { Pair(x, x) }", "d");
  insertPerceus(*C.P);
  // Ownership goes to the rightmost use; the earlier one dups.
  EXPECT_EQ(countOf(C.text(), "dup x"), 1u);
  EXPECT_EQ(C.text().find("drop"), std::string::npos);
  expectClean(*C.P);
}

TEST(Insertion, DupsAreDelayedIntoBranches) {
  // x is dead on one branch and alive on the other: the dead branch
  // drops it, the live branch consumes it; no dup needed at all.
  Compiled C = compileFn(
      "type b { Box(v) } fun f(c, x) { if c > 0 then Box(x) else 0 }", "f");
  insertPerceus(*C.P);
  std::string T = C.text();
  EXPECT_EQ(T.find("dup"), std::string::npos);
  EXPECT_EQ(countOf(T, "drop x"), 1u); // only on the else branch
  expectClean(*C.P);
}

TEST(Insertion, MatchEmitsFigure1bShape) {
  Compiled C = compileFn(R"(
    type list { Cons(h, t)  Nil }
    fun map(xs, f) {
      match xs {
        Cons(x, xx) -> Cons(f(x), map(xx, f))
        Nil -> Nil
      }
    }
  )",
                         "map");
  insertPerceus(*C.P);
  std::string T = C.text();
  // Cons branch: dup x; dup xx; drop xs; dup f (f used twice).
  EXPECT_EQ(countOf(T, "dup x"), 2u); // dup x and dup xx
  EXPECT_EQ(countOf(T, "dup f"), 1u);
  EXPECT_EQ(countOf(T, "drop xs"), 2u); // once per arm
  // Nil branch drops f too.
  EXPECT_EQ(countOf(T, "drop f"), 1u);
  expectClean(*C.P);
}

TEST(Insertion, LiveScrutineeIsNotDropped) {
  Compiled C = compileFn(R"(
    type b { Box(v) }
    fun keep(x) {
      match x { Box(v) -> v }
      x
    }
  )",
                         "keep");
  insertPerceus(*C.P);
  // The match borrows x (it is returned afterwards): no drop in the arm;
  // the discarded match result is dropped via the seq temporary instead.
  std::string T = C.text();
  EXPECT_EQ(T.find("drop x;"), std::string::npos);
  expectClean(*C.P);
}

TEST(Insertion, DiscardedStatementValueIsDropped) {
  Compiled C = compileFn(
      "type b { Box(v) } fun f(x) { Box(x); 7 }", "f");
  insertPerceus(*C.P);
  // `Box(x); 7` must not leak the box: a seq temporary is dropped.
  EXPECT_NE(C.text().find("drop seq."), std::string::npos);
  expectClean(*C.P);
}

TEST(Insertion, LambdaDupsBorrowedCaptures) {
  Compiled C = compileFn(
      "type p { Pair(a, b) } fun f(c) { Pair(fn(x) { x + c }, c) }", "f");
  insertPerceus(*C.P);
  // c is owned by the later Pair field; the lambda borrows it -> dup.
  EXPECT_EQ(countOf(C.text(), "dup c"), 1u);
  expectClean(*C.P);
}

TEST(Insertion, EveryConfigIsLinearOnTheBenchmarks) {
  // (The calculus property tests cover random terms; this pins the five
  // real benchmark programs.)
  for (const char *Fn : {"bench_rbtree", "bench_deriv"}) {
    (void)Fn;
  }
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Drop specialization (2.3)
//===----------------------------------------------------------------------===//

TEST(DropSpec, SpecializesWhenChildrenAreUsed) {
  Compiled C = compileFn(R"(
    type list { Cons(h, t)  Nil }
    fun sum(xs) {
      match xs { Cons(x, xx) -> x + sum(xx)  Nil -> 0 }
    }
  )",
                         "sum");
  insertPerceus(*C.P);
  runDropSpecialization(*C.P);
  std::string T = C.text();
  EXPECT_NE(T.find("is-unique(xs)"), std::string::npos);
  EXPECT_NE(T.find("free xs"), std::string::npos);
  EXPECT_NE(T.find("decref xs"), std::string::npos);
  expectClean(*C.P);
}

TEST(DropSpec, SkipsWhenChildrenAreUnused) {
  Compiled C = compileFn(R"(
    type list { Cons(h, t)  Nil }
    fun len0(xs) {
      match xs { Cons(x, xx) -> 1  Nil -> 0 }
    }
  )",
                         "len0");
  insertPerceus(*C.P);
  runDropSpecialization(*C.P);
  // The paper's rule: only specialize if the children are used.
  EXPECT_EQ(C.text().find("is-unique"), std::string::npos);
  expectClean(*C.P);
}

TEST(DropSpec, FusionCleansTheFastPath) {
  Compiled C = compileFn(R"(
    type list { Cons(h, t)  Nil }
    fun sum(xs) {
      match xs { Cons(x, xx) -> x + sum(xx)  Nil -> 0 }
    }
  )",
                         "sum");
  insertPerceus(*C.P);
  runDropSpecialization(*C.P);
  runFusion(*C.P);
  std::string T = C.text();
  // Figure 1d: the unique path is just `free xs`; the dup'ed children
  // moved to the shared path.
  size_t ThenPos = T.find("is-unique(xs)");
  size_t ElsePos = T.find("} else {");
  ASSERT_NE(ThenPos, std::string::npos);
  ASSERT_NE(ElsePos, std::string::npos);
  std::string ThenPart = T.substr(ThenPos, ElsePos - ThenPos);
  EXPECT_EQ(ThenPart.find("dup"), std::string::npos);
  EXPECT_NE(T.find("decref xs"), std::string::npos);
  expectClean(*C.P);
}

//===----------------------------------------------------------------------===//
// Reuse (2.4) and reuse specialization (2.5)
//===----------------------------------------------------------------------===//

TEST(Reuse, PairsDropWithSameSizeAllocation) {
  Compiled C = compileFn(R"(
    type list { Cons(h, t)  Nil }
    fun map1(xs) {
      match xs { Cons(x, xx) -> Cons(x + 1, map1(xx))  Nil -> Nil }
    }
  )",
                         "map1");
  insertPerceus(*C.P);
  runReuseAnalysis(*C.P);
  std::string T = C.text();
  EXPECT_NE(T.find("drop-reuse(xs)"), std::string::npos);
  EXPECT_NE(T.find("Cons@ru."), std::string::npos);
  expectClean(*C.P);
}

TEST(Reuse, NoPairingAcrossSizes) {
  Compiled C = compileFn(R"(
    type t { One(a)  Two(a, b) }
    fun f(x) {
      match x { One(a) -> Two(a, 1)  Two(a, b) -> Two(b, a) }
    }
  )",
                         "f");
  insertPerceus(*C.P);
  runReuseAnalysis(*C.P);
  std::string T = C.text();
  // One (arity 1) cannot be reused for Two (arity 2)...
  EXPECT_EQ(countOf(T, "drop-reuse"), 1u); // ...only the Two arm pairs
  expectClean(*C.P);
}

TEST(Reuse, BranchesWithoutAllocationFreeTheToken) {
  Compiled C = compileFn(R"(
    type list { Cons(h, t)  Nil }
    fun weird(xs, c) {
      match xs {
        Cons(x, xx) -> if c > 0 then Cons(x + 1, xx) else x
        Nil -> 0
      }
    }
  )",
                         "weird");
  insertPerceus(*C.P);
  runReuseAnalysis(*C.P);
  std::string T = C.text();
  if (T.find("drop-reuse") != std::string::npos) {
    // The non-allocating else branch must dispose of the token.
    EXPECT_NE(T.find("free ru."), std::string::npos);
  }
  expectClean(*C.P);
}

TEST(Reuse, SpecializationKeepsUnchangedFields) {
  Compiled C = compileFn(R"(
    type tree { Leaf  Node(l, k, r) }
    fun set-left(t, nl) {
      match t {
        Node(l, k, r) -> Node(nl, k, r)
        Leaf -> Leaf
      }
    }
  )",
                         "set-left");
  insertPerceus(*C.P);
  runReuseAnalysis(*C.P);
  runReuseSpecialization(*C.P);
  std::string T = C.text();
  // Only field 0 changes; k and r are kept.
  EXPECT_NE(T.find("[0] :="), std::string::npos);
  EXPECT_EQ(T.find("[1] :="), std::string::npos);
  EXPECT_NE(T.find("keep"), std::string::npos);
  expectClean(*C.P);
}

TEST(Reuse, SpecializationSkipsWhenAllFieldsChange) {
  Compiled C = compileFn(R"(
    type p { Pair(a, b) }
    fun swap(x) {
      match x { Pair(a, b) -> Pair(b, a) }
    }
  )",
                         "swap");
  insertPerceus(*C.P);
  runReuseAnalysis(*C.P);
  runReuseSpecialization(*C.P);
  // All fields change: keep the generic Con@ru (paper 2.5: only
  // specialize when at least one field stays).
  EXPECT_EQ(C.text().find(":="), std::string::npos);
  EXPECT_NE(C.text().find("Pair@ru."), std::string::npos);
  expectClean(*C.P);
}

TEST(Reuse, CrossConstructorReuseForFbip) {
  Compiled C = compileFn(R"(
    type tv { Bin(l, v, r)  BinR(r, v, vis)  Done }
    fun down(t, visit) {
      match t {
        Bin(l, x, r) -> down(l, BinR(r, x, visit))
        BinR(a, b, c) -> a
        Done -> Done
      }
    }
  )",
                         "down");
  insertPerceus(*C.P);
  runReuseAnalysis(*C.P);
  // Bin (arity 3) is reused as BinR (arity 3): the FBIP overlay.
  EXPECT_NE(C.text().find("BinR@ru."), std::string::npos);
  expectClean(*C.P);
}

//===----------------------------------------------------------------------===//
// Whole pipeline / configurations
//===----------------------------------------------------------------------===//

TEST(Pipeline, ConfigNames) {
  EXPECT_STREQ(PassConfig::perceusFull().name(), "perceus");
  EXPECT_STREQ(PassConfig::perceusNoOpt().name(), "perceus-noopt");
  EXPECT_STREQ(PassConfig::scoped().name(), "scoped-rc");
  EXPECT_STREQ(PassConfig::gc().name(), "gc");
}

TEST(Pipeline, GcModeLeavesBodiesClean) {
  Compiled C = compileFn("fun f(x) { x + 1 }", "f");
  std::string Before = C.text();
  runPipeline(*C.P, PassConfig::gc());
  EXPECT_EQ(C.text(), Before);
}

TEST(Pipeline, ScopedInsertsDupPerUseAndScopeEndDrops) {
  Compiled C = compileFn(R"(
    type b { Box(v) }
    fun f(x) { val y = Box(x); 7 }
  )",
                         "f");
  runPipeline(*C.P, PassConfig::scoped());
  std::string T = C.text();
  // x's use dups; x and y are dropped at scope end (y after its scope).
  EXPECT_NE(T.find("dup x"), std::string::npos);
  EXPECT_NE(T.find("drop y"), std::string::npos);
  EXPECT_NE(T.find("drop x"), std::string::npos);
  expectClean(*C.P);
}

} // namespace
